// Tests for the performance layer (src/perf, src/util/thread_pool.h) and
// its integration: interner identity, memo hit semantics, cached-vs-naive
// bit-for-bit equivalence, thread-count determinism, strong-link cache
// epoch invalidation, and the hashed path index.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "core/cupid_matcher.h"
#include "eval/synthetic.h"
#include "linguistic/linguistic_matcher.h"
#include "perf/interned_names.h"
#include "perf/strong_link_cache.h"
#include "perf/token_interner.h"
#include "schema/schema_builder.h"
#include "structural/tree_match.h"
#include "thesaurus/default_thesaurus.h"
#include "tree/tree_builder.h"
#include "util/thread_pool.h"

namespace cupid {
namespace {

// ---------------------------------------------------------------- interner --

TEST(TokenInternerTest, EqualTokensShareAnId) {
  TokenInterner interner;
  TokenId a = interner.Intern({"price", TokenType::kContent});
  TokenId b = interner.Intern({"price", TokenType::kContent});
  TokenId c = interner.Intern({"cost", TokenType::kContent});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.token(a).text, "price");
  EXPECT_EQ(interner.token(c).text, "cost");
}

TEST(TokenInternerTest, TypeIsPartOfTheIdentity) {
  TokenInterner interner;
  TokenId content = interner.Intern({"of", TokenType::kContent});
  TokenId common = interner.Intern({"of", TokenType::kCommon});
  EXPECT_NE(content, common);
  EXPECT_EQ(interner.token(common).type, TokenType::kCommon);
}

// -------------------------------------------------------------------- memo --

TEST(TokenPairMemoTest, MissesOncePerDistinctPairThenHits) {
  Thesaurus th = DefaultThesaurus();
  TokenInterner interner;
  TokenId price = interner.Intern({"price", TokenType::kContent});
  TokenId cost = interner.Intern({"cost", TokenType::kContent});
  SubstringSimilarityOptions opts;
  TokenPairMemo memo(&interner, &th, opts);

  double first = memo.Similarity(price, cost);
  EXPECT_EQ(memo.misses(), 1);
  EXPECT_EQ(memo.hits(), 0);

  double again = memo.Similarity(price, cost);
  // Keys are unordered: the swapped pair is the same entry.
  double swapped = memo.Similarity(cost, price);
  EXPECT_EQ(memo.misses(), 1);
  EXPECT_EQ(memo.hits(), 2);
  EXPECT_EQ(first, again);
  EXPECT_EQ(first, swapped);

  // The memoized value IS the naive TokenSimilarity.
  EXPECT_EQ(first, TokenSimilarity({"price", TokenType::kContent},
                                   {"cost", TokenType::kContent}, th, opts));
}

TEST(InternedNamesTest, SimilarityMatchesNaiveElementNameSimilarity) {
  Thesaurus th = DefaultThesaurus();
  NameNormalizer normalizer(&th);
  TokenInterner interner;
  SubstringSimilarityOptions opts;
  TokenTypeWeights weights;

  const char* names[] = {"UnitPrice", "unit_cost#2", "POShipTo",
                         "InvoiceAmount", "Qty"};
  for (const char* a : names) {
    for (const char* b : names) {
      NormalizedName na = normalizer.Normalize(a);
      NormalizedName nb = normalizer.Normalize(b);
      InternedName ia = InternName(na, &interner);
      InternedName ib = InternName(nb, &interner);
      TokenPairMemo memo(&interner, &th, opts);
      EXPECT_EQ(InternedNameSimilarity(ia, ib, weights, &memo),
                ElementNameSimilarity(na, nb, th, weights, opts))
          << a << " vs " << b;
    }
  }
}

// ------------------------------------------------------------- thread pool --

TEST(ThreadPoolTest, EffectiveThreadsResolvesZeroToHardware) {
  EXPECT_GE(ThreadPool::EffectiveThreads(0), 1);
  EXPECT_EQ(ThreadPool::EffectiveThreads(3), 3);
}

TEST(ThreadPoolTest, ParallelForCoversTheRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> counts(1000, 0);
  ParallelFor(&pool, 1000, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) counts[static_cast<size_t>(i)]++;
  });
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, ParallelForRunsInlineWithoutPool) {
  std::atomic<int64_t> sum{0};
  ParallelFor(nullptr, 100, [&](int64_t begin, int64_t end) {
    sum += end - begin;
  });
  EXPECT_EQ(sum.load(), 100);
}

// ------------------------------------------- cached vs naive lsim equality --

LinguisticOptions NaiveLinguistic() {
  LinguisticOptions o;
  o.use_perf_cache = false;
  return o;
}

TEST(PerfEquivalenceTest, CachedLsimEqualsNaiveBitForBit) {
  SyntheticOptions sopt;
  sopt.num_elements = 120;
  sopt.seed = 7;
  SyntheticPair p = GenerateSyntheticPair(sopt);
  Thesaurus th = DefaultThesaurus();

  LinguisticMatcher naive(&th, NaiveLinguistic());
  LinguisticOptions cached_opts;
  cached_opts.num_threads = 1;
  LinguisticMatcher cached(&th, cached_opts);

  auto rn = naive.Match(p.source, p.target);
  auto rc = cached.Match(p.source, p.target);
  ASSERT_TRUE(rn.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_EQ(rn->comparisons, rc->comparisons);
  ASSERT_EQ(rn->lsim.rows(), rc->lsim.rows());
  ASSERT_EQ(rn->lsim.cols(), rc->lsim.cols());
  for (int64_t i = 0; i < rn->lsim.rows(); ++i) {
    for (int64_t j = 0; j < rn->lsim.cols(); ++j) {
      ASSERT_EQ(rn->lsim(i, j), rc->lsim(i, j)) << "at (" << i << "," << j
                                                << ")";
    }
  }
}

TEST(PerfEquivalenceTest, LsimIsIdenticalAtAnyThreadCount) {
  SyntheticOptions sopt;
  sopt.num_elements = 90;
  sopt.seed = 21;
  SyntheticPair p = GenerateSyntheticPair(sopt);
  Thesaurus th = DefaultThesaurus();

  LinguisticOptions one;
  one.num_threads = 1;
  LinguisticOptions four;
  four.num_threads = 4;
  auto r1 = LinguisticMatcher(&th, one).Match(p.source, p.target);
  auto r4 = LinguisticMatcher(&th, four).Match(p.source, p.target);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r1->comparisons, r4->comparisons);
  for (int64_t i = 0; i < r1->lsim.rows(); ++i) {
    for (int64_t j = 0; j < r1->lsim.cols(); ++j) {
      ASSERT_EQ(r1->lsim(i, j), r4->lsim(i, j));
    }
  }
}

// ------------------------------------- cached vs naive TreeMatch equality --

TEST(PerfEquivalenceTest, StrongLinkCacheLeavesSimilaritiesUnchanged) {
  SyntheticOptions sopt;
  // Wide and flat, so leaf sets exceed the cache's minimum-scan gate and
  // the bitsets actually serve queries.
  sopt.num_elements = 300;
  sopt.max_children = 100;
  sopt.max_depth = 3;
  sopt.seed = 13;
  SyntheticPair p = GenerateSyntheticPair(sopt);
  Thesaurus th = DefaultThesaurus();
  LinguisticOptions lo;
  lo.num_threads = 1;
  auto lres = LinguisticMatcher(&th, lo).Match(p.source, p.target);
  ASSERT_TRUE(lres.ok());
  auto t1 = BuildSchemaTree(p.source);
  auto t2 = BuildSchemaTree(p.target);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  TypeCompatibilityTable types = TypeCompatibilityTable::Default();

  TreeMatchOptions cached_opts;
  cached_opts.use_strong_link_cache = true;
  cached_opts.num_threads = 1;
  TreeMatchOptions naive_opts = cached_opts;
  naive_opts.use_strong_link_cache = false;

  auto rc = TreeMatch(*t1, *t2, lres->lsim, types, cached_opts);
  auto rn = TreeMatch(*t1, *t2, lres->lsim, types, naive_opts);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rn.ok());
  EXPECT_GT(rc->stats.strong_link_queries, 0);
  EXPECT_EQ(rn->stats.strong_link_queries, 0);
  EXPECT_EQ(rn->stats.pairs_compared, rc->stats.pairs_compared);
  for (TreeNodeId s = 0; s < t1->num_nodes(); ++s) {
    for (TreeNodeId t = 0; t < t2->num_nodes(); ++t) {
      ASSERT_EQ(rn->sims.ssim(s, t), rc->sims.ssim(s, t))
          << "ssim at (" << s << "," << t << ")";
      ASSERT_EQ(rn->sims.wsim(s, t), rc->sims.wsim(s, t))
          << "wsim at (" << s << "," << t << ")";
    }
  }
}

TEST(PerfEquivalenceTest, EndToEndMatchIsIdenticalWithAndWithoutCaches) {
  SyntheticOptions sopt;
  sopt.num_elements = 60;
  sopt.seed = 99;
  SyntheticPair p = GenerateSyntheticPair(sopt);
  Thesaurus th = DefaultThesaurus();

  CupidConfig cached_cfg;
  cached_cfg.SetPerfCacheEnabled(true);  // linguistic AND strong-link cache
  cached_cfg.SetNumThreads(1);
  CupidConfig naive_cfg = cached_cfg;
  naive_cfg.SetPerfCacheEnabled(false);

  auto rc = CupidMatcher(&th, cached_cfg).Match(p.source, p.target);
  auto rn = CupidMatcher(&th, naive_cfg).Match(p.source, p.target);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rn.ok());
  const NodeSimilarities& sc = rc->tree_match.sims;
  const NodeSimilarities& sn = rn->tree_match.sims;
  ASSERT_EQ(sc.source_nodes(), sn.source_nodes());
  ASSERT_EQ(sc.target_nodes(), sn.target_nodes());
  for (TreeNodeId s = 0; s < sc.source_nodes(); ++s) {
    for (TreeNodeId t = 0; t < sc.target_nodes(); ++t) {
      ASSERT_EQ(sn.lsim(s, t), sc.lsim(s, t));
      ASSERT_EQ(sn.wsim(s, t), sc.wsim(s, t));
    }
  }
}

// ------------------------------------------------------- strong-link cache --

class StrongLinkCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XmlSchemaBuilder b1("S1");
    ElementId item = b1.AddElement(b1.root(), "Item");
    b1.AddAttribute(item, "Qty", DataType::kDecimal);
    b1.AddAttribute(item, "Price", DataType::kMoney);
    s1_ = std::move(b1).Build();
    XmlSchemaBuilder b2("S2");
    ElementId item2 = b2.AddElement(b2.root(), "Item");
    b2.AddAttribute(item2, "Quantity", DataType::kDecimal);
    b2.AddAttribute(item2, "Cost", DataType::kMoney);
    s2_ = std::move(b2).Build();
    t1_ = std::move(BuildSchemaTree(s1_)).ValueOrDie();
    t2_ = std::move(BuildSchemaTree(s2_)).ValueOrDie();
  }

  TreeNodeId Node(const SchemaTree& t, const std::string& path) {
    TreeNodeId n = t.FindNodeByPath(path);
    EXPECT_NE(n, kNoTreeNode) << path;
    return n;
  }

  Schema s1_{""}, s2_{""};
  SchemaTree t1_{nullptr}, t2_{nullptr};
};

TEST_F(StrongLinkCacheTest, InvalidationAfterScaleSubtreeLeaves) {
  // th_accept 0.5, wstruct_leaf 0.5: strength = 0.5*ssim + 0.5*lsim.
  StrongLinkCache cache(t1_, t2_, /*th_accept=*/0.5, /*wstruct_leaf=*/0.5);
  NodeSimilarities sims(t1_.num_nodes(), t2_.num_nodes());

  TreeNodeId qty = Node(t1_, "S1.Item.Qty");
  TreeNodeId quantity = Node(t2_, "S2.Item.Quantity");
  TreeNodeId item_s = Node(t1_, "S1.Item");
  TreeNodeId item_t = Node(t2_, "S2.Item");

  sims.set_ssim(qty, quantity, 0.8);
  sims.set_lsim(qty, quantity, 0.8);  // strength 0.8 >= 0.5: linked
  EXPECT_TRUE(cache.SourceLeafHasLink(sims, qty, item_t));
  EXPECT_TRUE(cache.TargetLeafHasLink(sims, quantity, item_s));
  int64_t rebuilds = cache.stats().rebuilds;

  // Served from the bitsets now: no further rebuilds.
  EXPECT_TRUE(cache.SourceLeafHasLink(sims, qty, item_t));
  EXPECT_EQ(cache.stats().rebuilds, rebuilds);

  // Mutating ssim WITHOUT invalidation leaves the cached answer stale...
  sims.set_ssim(qty, quantity, 0.0);
  sims.set_lsim(qty, quantity, 0.0);
  EXPECT_TRUE(cache.SourceLeafHasLink(sims, qty, item_t));

  // ...and InvalidateBlock makes the next query rebuild and see the change,
  // exactly what TreeMatch does after ScaleSubtreeLeaves.
  cache.InvalidateBlock(item_s, item_t);
  EXPECT_FALSE(cache.SourceLeafHasLink(sims, qty, item_t));
  EXPECT_FALSE(cache.TargetLeafHasLink(sims, quantity, item_s));
  EXPECT_GT(cache.stats().rebuilds, rebuilds);
}

TEST_F(StrongLinkCacheTest, InvalidateAllDropsEveryBitset) {
  StrongLinkCache cache(t1_, t2_, 0.5, 0.5);
  NodeSimilarities sims(t1_.num_nodes(), t2_.num_nodes());
  TreeNodeId price = Node(t1_, "S1.Item.Price");
  TreeNodeId cost = Node(t2_, "S2.Item.Cost");
  TreeNodeId item_t = Node(t2_, "S2.Item");

  sims.set_lsim(price, cost, 1.0);
  EXPECT_TRUE(cache.SourceLeafHasLink(sims, price, item_t));
  sims.set_lsim(price, cost, 0.0);
  cache.InvalidateAll();
  EXPECT_FALSE(cache.SourceLeafHasLink(sims, price, item_t));
}

// -------------------------------------------------------------- path index --

TEST(PathIndexTest, FindNodeByPathMatchesLinearScan) {
  SyntheticOptions sopt;
  sopt.num_elements = 50;
  sopt.seed = 5;
  Schema s = GenerateSyntheticSchema(sopt);
  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok());
  for (TreeNodeId n = 0; n < tree->num_nodes(); ++n) {
    std::string path = tree->PathName(n);
    TreeNodeId found = tree->FindNodeByPath(path);
    // The index returns the first node with this path, like a scan would.
    EXPECT_EQ(tree->PathName(found), path);
    EXPECT_LE(found, n);
  }
  EXPECT_EQ(tree->FindNodeByPath("No.Such.Path"), kNoTreeNode);
}

TEST(PathIndexTest, WsimByPathAndBestTargetForStillResolve) {
  XmlSchemaBuilder b1("S1");
  ElementId item = b1.AddElement(b1.root(), "Item");
  b1.AddAttribute(item, "Price", DataType::kMoney);
  Schema s1 = std::move(b1).Build();
  XmlSchemaBuilder b2("S2");
  ElementId item2 = b2.AddElement(b2.root(), "Item");
  b2.AddAttribute(item2, "Cost", DataType::kMoney);
  Schema s2 = std::move(b2).Build();

  Thesaurus th = DefaultThesaurus();
  auto r = CupidMatcher(&th).Match(s1, s2);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->WsimByPath("S1.Item.Price", "S2.Item.Cost"), 0.0);
  EXPECT_EQ(r->WsimByPath("S1.No.Such", "S2.Item.Cost"), 0.0);
  EXPECT_EQ(r->BestTargetFor("S1.Item.Price"), "S2.Item.Cost");
  EXPECT_EQ(r->BestTargetFor("S1.Bogus"), "");
}

}  // namespace
}  // namespace cupid
