// Tests for src/net: the wakeup pipe and poll-based line reader, the
// SocketServer (framing, boundary validation, backpressure, disconnect
// handling), the SubscriptionBroker (delta pushes, ordering, lifecycle),
// and the validation-audit satellites (IsValidUtf8 at the boundary,
// JobScheduler::Options::Validate).
//
// Socket tests run a real server on an ephemeral loopback port with its
// Run() loop on a background thread; clients are plain blocking sockets
// with a read deadline so a missing response fails the test instead of
// hanging it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "incremental/schema_edit.h"
#include "net/poll_reader.h"
#include "net/protocol.h"
#include "net/socket_server.h"
#include "net/subscription.h"
#include "net/wakeup.h"
#include "obs/metrics.h"
#include "service/corpus_search.h"
#include "service/job_scheduler.h"
#include "service/match_service.h"
#include "service/schema_repository.h"
#include "thesaurus/default_thesaurus.h"
#include "util/json.h"
#include "util/strings.h"

namespace cupid {
namespace {

constexpr char kSchemaA[] =
    "schema A\n"
    "node R\n"
    "  leaf Qty decimal\n"
    "  leaf City string\n"
    "  leaf Street string\n";

constexpr char kSchemaB[] =
    "schema B\n"
    "node R\n"
    "  leaf Quantity decimal\n"
    "  leaf City string\n"
    "  leaf Street string\n";

// ---------------------------------------------------------------------------
// Boundary validation satellites
// ---------------------------------------------------------------------------

TEST(Utf8Test, AcceptsWellFormedSequences) {
  EXPECT_TRUE(IsValidUtf8(""));
  EXPECT_TRUE(IsValidUtf8("plain ascii"));
  EXPECT_TRUE(IsValidUtf8("caf\xC3\xA9"));              // U+00E9, 2 bytes
  EXPECT_TRUE(IsValidUtf8("\xE2\x82\xAC"));             // U+20AC, 3 bytes
  EXPECT_TRUE(IsValidUtf8("\xF0\x9F\x92\xA1"));         // U+1F4A1, 4 bytes
  EXPECT_TRUE(IsValidUtf8(std::string("nul\0byte", 8)));  // NUL is fine
}

TEST(Utf8Test, RejectsMalformedSequences) {
  EXPECT_FALSE(IsValidUtf8("\x80"));              // stray continuation
  EXPECT_FALSE(IsValidUtf8("\xC3"));              // truncated 2-byte
  EXPECT_FALSE(IsValidUtf8("\xE2\x82"));          // truncated 3-byte
  EXPECT_FALSE(IsValidUtf8("\xC0\xAF"));          // overlong '/'
  EXPECT_FALSE(IsValidUtf8("\xE0\x80\xAF"));      // overlong, 3 bytes
  EXPECT_FALSE(IsValidUtf8("\xED\xA0\x80"));      // UTF-16 surrogate
  EXPECT_FALSE(IsValidUtf8("\xF4\x90\x80\x80"));  // above U+10FFFF
  EXPECT_FALSE(IsValidUtf8("\xFF\xFE"));          // not UTF-8 at all
  EXPECT_FALSE(IsValidUtf8("ok\xC3then bad"));    // bad continuation byte
}

TEST(SchedulerOptionsTest, ValidateRejectsOutOfDomainKnobs) {
  JobScheduler::Options options;
  EXPECT_TRUE(options.Validate().ok());

  options.max_pending = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.max_pending = -5;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);

  options = JobScheduler::Options();
  options.num_threads = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SchedulerOptionsTest, SubmitFailsLoudlyOnBadOptions) {
  // Regression: max_pending=0 used to be silently clamped to 1; it now
  // surfaces as InvalidArgument on the first submission instead of
  // mysteriously rejecting load as "queue full".
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  MatchService service(&thesaurus, &repo);
  JobScheduler::Options options;
  options.num_threads = 1;
  options.max_pending = 0;
  JobScheduler scheduler(&service, options);
  auto job = scheduler.Submit(MatchRequest{});
  ASSERT_FALSE(job.ok());
  EXPECT_EQ(job.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// WakeupFd + PollLineReader
// ---------------------------------------------------------------------------

TEST(PollLineReaderTest, DeliversLinesAndTrailingTail) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  WakeupFd wakeup;
  ASSERT_TRUE(wakeup.ok());
  PollLineReader reader(fds[0], &wakeup);

  ASSERT_EQ(write(fds[1], "one\ntwo\n", 8), 8);
  std::string line;
  EXPECT_EQ(reader.Next(&line), PollLineReader::Event::kLine);
  EXPECT_EQ(line, "one");
  EXPECT_EQ(reader.Next(&line), PollLineReader::Event::kLine);
  EXPECT_EQ(line, "two");

  // An unterminated tail is delivered at EOF (std::getline parity).
  ASSERT_EQ(write(fds[1], "tail", 4), 4);
  close(fds[1]);
  EXPECT_EQ(reader.Next(&line), PollLineReader::Event::kLine);
  EXPECT_EQ(line, "tail");
  EXPECT_EQ(reader.Next(&line), PollLineReader::Event::kEof);
  close(fds[0]);
}

TEST(PollLineReaderTest, WakeupInterruptsBlockedRead) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  WakeupFd wakeup;
  ASSERT_TRUE(wakeup.ok());
  PollLineReader reader(fds[0], &wakeup);

  // Nothing written to the pipe: without the wakeup, Next would block
  // indefinitely; the notifier thread unblocks it.
  std::thread notifier([&wakeup] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    wakeup.Notify();
  });
  std::string line;
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(reader.Next(&line), PollLineReader::Event::kWakeup);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  notifier.join();
  close(fds[0]);
  close(fds[1]);
}

// ---------------------------------------------------------------------------
// Socket test scaffolding
// ---------------------------------------------------------------------------

/// Blocking loopback client with a receive deadline.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                         sizeof(addr)) == 0;
    struct timeval tv = {};
    tv.tv_sec = 10;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~TestClient() { Close(); }

  bool connected() const { return connected_; }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  bool Send(const std::string& line) {
    std::string framed = line + "\n";
    return write(fd_, framed.data(), framed.size()) ==
           static_cast<ssize_t>(framed.size());
  }

  /// Reads one line; empty string on timeout/EOF.
  std::string ReadLine() {
    for (;;) {
      size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      ssize_t n = read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return "";
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Reads one line with a short deadline; empty string when nothing comes.
  std::string TryReadLine(int timeout_ms) {
    struct timeval tv = {};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    std::string line = ReadLine();
    tv.tv_sec = 10;
    tv.tv_usec = 0;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return line;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

/// Full server stack (repository, service, scheduler, broker, executor,
/// socket server with Run() on a background thread) over two registered
/// schemas, with a private metrics registry for isolated assertions.
class ServerFixture {
 public:
  explicit ServerFixture(SocketServer::Options server_options =
                             SocketServer::Options()) {
    thesaurus_ = DefaultThesaurus();
    EXPECT_TRUE(
        repo_.RegisterText("a", SchemaFormat::kNative, kSchemaA).ok());
    EXPECT_TRUE(
        repo_.RegisterText("b", SchemaFormat::kNative, kSchemaB).ok());
    MatchService::Options service_options;
    service_options.metrics = &metrics_;
    service_ = std::make_unique<MatchService>(&thesaurus_, &repo_,
                                              service_options);
    JobScheduler::Options scheduler_options;
    scheduler_options.num_threads = 2;
    scheduler_ = std::make_unique<JobScheduler>(service_.get(),
                                                scheduler_options);

    server_options.metrics = &metrics_;
    server_ = std::make_unique<SocketServer>(server_options,
                                             scheduler_.get());

    SubscriptionBroker::Options broker_options;
    broker_options.metrics = &metrics_;
    broker_ = std::make_unique<SubscriptionBroker>(
        service_.get(), scheduler_.get(),
        [this](uint64_t client_id, const std::string& frame) {
          return server_->PushFrame(client_id, frame);
        },
        broker_options);
    broker_->set_idle_exempt_fn([this](uint64_t client_id, bool exempt) {
      server_->SetIdleExempt(client_id, exempt);
    });
    broker_->AttachTo(&repo_);

    ProtocolExecutor::Options exec_options;
    exec_options.socket_mode = true;
    executor_ = std::make_unique<ProtocolExecutor>(
        &thesaurus_, &repo_, service_.get(), scheduler_.get(),
        /*search=*/nullptr, broker_.get(), exec_options);

    server_->set_handler(
        [this](uint64_t client_id, const std::string& line,
               const std::function<void(const std::string&)>& sink) {
          executor_->Execute(client_id, line, sink);
        });
    server_->set_disconnect_hook([this](uint64_t client_id) {
      broker_->DropClient(client_id);
    });
    server_->set_drain_hook([this] { broker_->Stop(); });

    EXPECT_TRUE(server_->Start().ok());
    run_thread_ = std::thread([this] { server_->Run(); });
  }

  ~ServerFixture() {
    server_->RequestShutdown();
    run_thread_.join();
    broker_->Stop();
  }

  int port() const { return server_->port(); }
  SchemaRepository* repo() { return &repo_; }
  SocketServer* server() { return server_.get(); }
  SubscriptionBroker* broker() { return broker_.get(); }
  obs::MetricsRegistry* metrics() { return &metrics_; }

  int64_t CounterValue(const char* name) {
    return metrics_.GetCounter(name, "")->value();
  }

 private:
  Thesaurus thesaurus_;
  SchemaRepository repo_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<MatchService> service_;
  std::unique_ptr<JobScheduler> scheduler_;
  std::unique_ptr<SocketServer> server_;
  std::unique_ptr<SubscriptionBroker> broker_;
  std::unique_ptr<ProtocolExecutor> executor_;
  std::thread run_thread_;
};

std::string JsonField(const std::string& json, const char* key) {
  auto parsed = ParseJson(json);
  if (!parsed.ok()) return "<unparseable>";
  return parsed->GetString(key);
}

// ---------------------------------------------------------------------------
// SocketServer protocol behavior
// ---------------------------------------------------------------------------

TEST(SocketServerTest, ServesRequestsAndKeepsRequestOrder) {
  ServerFixture fx;
  TestClient client(fx.port());
  ASSERT_TRUE(client.connected());

  // Pipeline several requests at once; responses must come back in order.
  ASSERT_TRUE(client.Send("{\"cmd\":\"stats\"}"));
  ASSERT_TRUE(client.Send(
      "{\"cmd\":\"match\",\"source\":\"a\",\"target\":\"b\"}"));
  ASSERT_TRUE(client.Send("{\"cmd\":\"stats\"}"));
  EXPECT_EQ(JsonField(client.ReadLine(), "cmd"), "stats");
  std::string match = client.ReadLine();
  EXPECT_EQ(JsonField(match, "source"), "a");
  EXPECT_EQ(JsonField(match, "status"), "ok");
  EXPECT_EQ(JsonField(client.ReadLine(), "cmd"), "stats");
}

TEST(SocketServerTest, BoundaryRejectionsKeepConnectionAlive) {
  SocketServer::Options options;
  options.max_frame_bytes = 512;
  ServerFixture fx(options);
  TestClient client(fx.port());
  ASSERT_TRUE(client.connected());

  // Invalid JSON.
  ASSERT_TRUE(client.Send("{nope"));
  std::string r = client.ReadLine();
  EXPECT_EQ(JsonField(r, "status"), "error");

  // Invalid UTF-8 (boundary check, never reaches the parser).
  ASSERT_TRUE(client.Send("{\"cmd\":\"stats\xC0\xAF\"}"));
  r = client.ReadLine();
  ASSERT_TRUE(ParseJson(r).ok()) << r;
  EXPECT_NE(r.find("not valid UTF-8"), std::string::npos) << r;

  // Unknown command.
  ASSERT_TRUE(client.Send("{\"cmd\":\"frobnicate\"}"));
  r = client.ReadLine();
  EXPECT_NE(r.find("\"InvalidArgument\""), std::string::npos) << r;

  // Not an object.
  ASSERT_TRUE(client.Send("[1,2,3]"));
  r = client.ReadLine();
  EXPECT_NE(r.find("must be a JSON object"), std::string::npos) << r;

  // Out-of-domain numeric knob (search validates top_k).
  ASSERT_TRUE(client.Send(
      "{\"cmd\":\"match\",\"source\":\"a\",\"target\":\"b\","
      "\"config\":{\"th_accept\":1e99}}"));
  r = client.ReadLine();
  EXPECT_EQ(JsonField(r, "status"), "error") << r;

  // Oversized frame: structured OutOfRange, then the connection still
  // serves the next (normal) request.
  std::string big = "{\"cmd\":\"stats\",\"pad\":\"";
  big.append(2048, 'x');
  big += "\"}";
  ASSERT_TRUE(client.Send(big));
  r = client.ReadLine();
  EXPECT_NE(r.find("\"OutOfRange\""), std::string::npos) << r;
  ASSERT_TRUE(client.Send("{\"cmd\":\"stats\"}"));
  EXPECT_EQ(JsonField(client.ReadLine(), "cmd"), "stats");
  EXPECT_GE(fx.CounterValue("cupid.net.frames_rejected"), 1);
}

TEST(SocketServerTest, LoadIsRejectedInSocketMode) {
  ServerFixture fx;
  TestClient client(fx.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("{\"cmd\":\"load\",\"dir\":\"/tmp/nowhere\"}"));
  std::string r = client.ReadLine();
  EXPECT_NE(r.find("\"Unsupported\""), std::string::npos) << r;
}

TEST(SocketServerTest, ClientDisconnectMidPushClosesOnlyThatConnection) {
  ServerFixture fx;
  TestClient victim(fx.port());
  TestClient survivor(fx.port());
  ASSERT_TRUE(victim.connected());
  ASSERT_TRUE(survivor.connected());

  // Subscribe the victim, then kill it and edit: the push hits a dead
  // socket (EPIPE/ECONNRESET path), which must close only that connection.
  ASSERT_TRUE(victim.Send(
      "{\"cmd\":\"subscribe\",\"source\":\"a\",\"target\":\"b\"}"));
  EXPECT_EQ(JsonField(victim.ReadLine(), "cmd"), "subscribe");
  victim.Close();

  for (int i = 0; i < 50 && fx.broker()->subscriptions() > 0; ++i) {
    // The I/O thread reaps the dead socket and the disconnect hook drops
    // the subscription; an edit before that just pushes into the void.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  auto edited = fx.repo()->ApplyEdit(
      "a",
      SchemaEdit::RenameElement(EditSide::kSource, "A.R.Qty", "Quantity"));
  ASSERT_TRUE(edited.ok()) << edited.status().ToString();

  // The survivor is unaffected: requests keep working.
  ASSERT_TRUE(survivor.Send("{\"cmd\":\"stats\"}"));
  EXPECT_EQ(JsonField(survivor.ReadLine(), "cmd"), "stats");
  EXPECT_EQ(fx.broker()->subscriptions(), 0);
}

// ---------------------------------------------------------------------------
// Subscription semantics
// ---------------------------------------------------------------------------

TEST(SubscriptionTest, PushMatchesFreshMatchBitForBit) {
  ServerFixture fx;
  TestClient subscriber(fx.port());
  TestClient editor(fx.port());
  ASSERT_TRUE(subscriber.connected());
  ASSERT_TRUE(editor.connected());

  ASSERT_TRUE(subscriber.Send(
      "{\"cmd\":\"subscribe\",\"source\":\"a\",\"target\":\"b\"}"));
  EXPECT_EQ(JsonField(subscriber.ReadLine(), "cmd"), "subscribe");

  ASSERT_TRUE(editor.Send(
      "{\"cmd\":\"edit\",\"name\":\"a\",\"op\":\"rename\","
      "\"path\":\"A.R.Qty\",\"to\":\"Quantity\"}"));
  EXPECT_EQ(JsonField(editor.ReadLine(), "cmd"), "edit");

  std::string push = subscriber.ReadLine();
  ASSERT_FALSE(push.empty());
  auto parsed = ParseJson(push);
  ASSERT_TRUE(parsed.ok()) << push;
  EXPECT_EQ(parsed->GetString("event"), "push");
  const JsonValue* response = parsed->Find("response");
  ASSERT_NE(response, nullptr);
  EXPECT_TRUE(response->GetBool("incremental"));

  // A fresh match of the same pair/version must produce the identical
  // mapping payload: extract the embedded response object verbatim and
  // compare mapping substrings against a fresh uncached match.
  ASSERT_TRUE(editor.Send(
      "{\"cmd\":\"match\",\"source\":\"a\",\"target\":\"b\","
      "\"use_result_cache\":false}"));
  std::string fresh = editor.ReadLine();
  auto fresh_parsed = ParseJson(fresh);
  ASSERT_TRUE(fresh_parsed.ok()) << fresh;

  // Byte-level comparison of the serialized mappings: locate the
  // leaf_mapping object in both payloads and brace-match it out.
  auto extract = [](const std::string& json, const char* key) {
    size_t start = json.find(std::string("\"") + key + "\":{");
    EXPECT_NE(start, std::string::npos) << json;
    if (start == std::string::npos) return std::string();
    size_t depth = 0, i = json.find('{', start);
    for (size_t j = i; j < json.size(); ++j) {
      if (json[j] == '{') ++depth;
      if (json[j] == '}' && --depth == 0) return json.substr(i, j - i + 1);
    }
    return std::string();
  };
  EXPECT_EQ(extract(push, "leaf_mapping"), extract(fresh, "leaf_mapping"));
  EXPECT_EQ(extract(push, "nonleaf_mapping"),
            extract(fresh, "nonleaf_mapping"));

  // Subscribe primed the baseline with the pre-edit mapping, so the rename
  // shows up as a real delta: the renamed leaf's pair is added, the old
  // pair removed.
  const JsonValue* delta = parsed->Find("delta");
  ASSERT_NE(delta, nullptr);
  const JsonValue* added = delta->Find("added");
  ASSERT_NE(added, nullptr);
  EXPECT_FALSE(added->array.empty());
  const JsonValue* removed = delta->Find("removed");
  ASSERT_NE(removed, nullptr);
  EXPECT_FALSE(removed->array.empty());
}

TEST(SubscriptionTest, NoPushAfterUnsubscribe) {
  ServerFixture fx;
  TestClient subscriber(fx.port());
  ASSERT_TRUE(subscriber.connected());

  ASSERT_TRUE(subscriber.Send(
      "{\"cmd\":\"subscribe\",\"src\":\"a\",\"tgt\":\"b\"}"));  // aliases
  EXPECT_EQ(JsonField(subscriber.ReadLine(), "cmd"), "subscribe");
  ASSERT_TRUE(subscriber.Send(
      "{\"cmd\":\"unsubscribe\",\"source\":\"a\",\"target\":\"b\"}"));
  EXPECT_EQ(JsonField(subscriber.ReadLine(), "cmd"), "unsubscribe");

  ASSERT_TRUE(fx.repo()
                  ->ApplyEdit("a", SchemaEdit::RenameElement(
                                       EditSide::kSource, "A.R.Qty",
                                       "Quantity"))
                  .ok());
  EXPECT_EQ(subscriber.TryReadLine(300), "");
  EXPECT_EQ(fx.CounterValue("cupid.net.pushes"), 0);
}

TEST(SubscriptionTest, PushesOrderedPerConnectionUnderConcurrentEdits) {
  ServerFixture fx;
  TestClient subscriber(fx.port());
  ASSERT_TRUE(subscriber.connected());
  ASSERT_TRUE(subscriber.Send(
      "{\"cmd\":\"subscribe\",\"source\":\"a\",\"target\":\"b\"}"));
  EXPECT_EQ(JsonField(subscriber.ReadLine(), "cmd"), "subscribe");

  // Hammer edits from two threads; every mutation is a distinct repository
  // version, and the subscriber must observe pushes with strictly
  // increasing edited-versions (the broker consumes events in mutation
  // order and delivers through one FIFO write queue).
  constexpr int kEditsPerThread = 4;
  auto edit_loop = [&fx](const char* from, const char* to) {
    for (int i = 0; i < kEditsPerThread; ++i) {
      std::string src = std::string("A.R.") + (i % 2 == 0 ? from : to);
      std::string dst = (i % 2 == 0 ? to : from);
      auto edit = SchemaEdit::RenameElement(EditSide::kSource, src, dst);
      ASSERT_TRUE(fx.repo()->ApplyEdit("a", edit).ok());
    }
  };
  std::thread t1(edit_loop, "Qty", "Quantity");
  std::thread t2(edit_loop, "City", "Town");
  t1.join();
  t2.join();

  int last_version = 1;
  for (int i = 0; i < 2 * kEditsPerThread; ++i) {
    std::string push = subscriber.ReadLine();
    ASSERT_FALSE(push.empty()) << "push " << i << " missing";
    auto parsed = ParseJson(push);
    ASSERT_TRUE(parsed.ok()) << push;
    ASSERT_EQ(parsed->GetString("event"), "push");
    const JsonValue* edited = parsed->Find("edited");
    ASSERT_NE(edited, nullptr);
    int version = static_cast<int>(edited->GetInt("version"));
    EXPECT_GT(version, last_version) << "out-of-order push";
    last_version = version;
  }
}

TEST(SubscriptionTest, SlowSubscriberIsDroppedNotWaitedOn) {
  SocketServer::Options options;
  options.write_queue_limit_bytes = 2048;  // a couple of pushes at most
  ServerFixture fx(options);
  TestClient subscriber(fx.port());
  ASSERT_TRUE(subscriber.connected());
  ASSERT_TRUE(subscriber.Send(
      "{\"cmd\":\"subscribe\",\"source\":\"a\",\"target\":\"b\"}"));
  EXPECT_EQ(JsonField(subscriber.ReadLine(), "cmd"), "subscribe");

  // The subscriber stops reading; edits keep flowing. The edit path must
  // never block — overflow drops the laggard and counts it.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  const char* from = "Qty";
  const char* to = "Quantity";
  while (fx.CounterValue("cupid.net.slow_subscriber_drops") == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "slow subscriber never dropped";
    auto edit = SchemaEdit::RenameElement(EditSide::kSource,
                                          std::string("A.R.") + from, to);
    ASSERT_TRUE(fx.repo()->ApplyEdit("a", edit).ok());
    std::swap(from, to);
  }
  EXPECT_GE(fx.CounterValue("cupid.net.slow_subscriber_drops"), 1);
  // The connection is reaped and its subscriptions dropped.
  for (int i = 0; i < 500 && fx.broker()->subscriptions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fx.broker()->subscriptions(), 0);
}

TEST(SubscriptionTest, SubscribeValidatesPair) {
  ServerFixture fx;
  TestClient client(fx.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(
      "{\"cmd\":\"subscribe\",\"source\":\"nope\",\"target\":\"b\"}"));
  std::string r = client.ReadLine();
  EXPECT_NE(r.find("\"NotFound\""), std::string::npos) << r;
  ASSERT_TRUE(client.Send("{\"cmd\":\"subscribe\",\"source\":\"a\"}"));
  r = client.ReadLine();
  EXPECT_NE(r.find("\"InvalidArgument\""), std::string::npos) << r;
}

}  // namespace
}  // namespace cupid
