// Tests for the thesaurus substrate (src/thesaurus).

#include <gtest/gtest.h>

#include <cstdio>

#include "thesaurus/default_thesaurus.h"
#include "thesaurus/thesaurus.h"
#include "thesaurus/thesaurus_io.h"

namespace cupid {
namespace {

TEST(ThesaurusTest, IdenticalWordsScoreOne) {
  Thesaurus t;
  EXPECT_DOUBLE_EQ(t.Relationship("street", "street"), 1.0);
  EXPECT_DOUBLE_EQ(t.Relationship("Street", "STREET"), 1.0);
}

TEST(ThesaurusTest, StemmedEqualityScoresOne) {
  Thesaurus t;
  EXPECT_DOUBLE_EQ(t.Relationship("items", "item"), 1.0);
  EXPECT_DOUBLE_EQ(t.Relationship("Lines", "line"), 1.0);
  EXPECT_DOUBLE_EQ(t.Relationship("cities", "city"), 1.0);
}

TEST(ThesaurusTest, SynonymLookupIsSymmetric) {
  Thesaurus t;
  t.AddSynonym("invoice", "bill", 0.9);
  EXPECT_DOUBLE_EQ(t.Relationship("invoice", "bill"), 0.9);
  EXPECT_DOUBLE_EQ(t.Relationship("bill", "invoice"), 0.9);
}

TEST(ThesaurusTest, SynonymLookupStemsArguments) {
  Thesaurus t;
  t.AddSynonym("invoice", "bill", 0.9);
  EXPECT_DOUBLE_EQ(t.Relationship("invoices", "bills"), 0.9);
}

TEST(ThesaurusTest, StrongerEntryWinsOnCollision) {
  Thesaurus t;
  t.AddSynonym("a", "b", 0.4);
  t.AddSynonym("a", "b", 0.8);
  t.AddSynonym("a", "b", 0.2);
  EXPECT_DOUBLE_EQ(t.Relationship("a", "b"), 0.8);
}

TEST(ThesaurusTest, StrengthClamped) {
  Thesaurus t;
  t.AddSynonym("a", "b", 7.0);
  EXPECT_DOUBLE_EQ(t.Relationship("a", "b"), 1.0);
}

TEST(ThesaurusTest, UnrelatedWordsScoreZero) {
  Thesaurus t = DefaultThesaurus();
  EXPECT_DOUBLE_EQ(t.Relationship("street", "quantity"), 0.0);
}

TEST(ThesaurusTest, AbbreviationExpansion) {
  Thesaurus t;
  t.AddAbbreviation("po", {"purchase", "order"});
  auto exp = t.ExpandAbbreviation("PO");
  ASSERT_TRUE(exp.has_value());
  ASSERT_EQ(exp->size(), 2u);
  EXPECT_EQ((*exp)[0], "purchase");
  EXPECT_EQ((*exp)[1], "order");
  EXPECT_FALSE(t.ExpandAbbreviation("xyz").has_value());
}

TEST(ThesaurusTest, StopWords) {
  Thesaurus t;
  t.AddStopWord("of");
  EXPECT_TRUE(t.IsStopWord("of"));
  EXPECT_TRUE(t.IsStopWord("OF"));
  EXPECT_FALSE(t.IsStopWord("order"));
}

TEST(ThesaurusTest, ConceptTriggers) {
  Thesaurus t;
  t.AddConcept("money", {"price", "cost", "value"});
  EXPECT_EQ(*t.ConceptOf("price"), "money");
  EXPECT_EQ(*t.ConceptOf("Costs"), "money");  // stemmed
  EXPECT_EQ(*t.ConceptOf("money"), "money");  // self-trigger
  EXPECT_FALSE(t.ConceptOf("street").has_value());
}

TEST(ThesaurusTest, MergeCombinesEntries) {
  Thesaurus a;
  a.AddSynonym("x", "y", 0.5);
  a.AddStopWord("of");
  Thesaurus b;
  b.AddSynonym("x", "y", 0.8);
  b.AddAbbreviation("qty", {"quantity"});
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Relationship("x", "y"), 0.8);
  EXPECT_TRUE(a.ExpandAbbreviation("qty").has_value());
  EXPECT_TRUE(a.IsStopWord("of"));
}

// ------------------------------------------------------ default datasets --

TEST(DefaultThesaurusTest, PaperVocabulary) {
  Thesaurus t = DefaultThesaurus();
  EXPECT_DOUBLE_EQ(t.Relationship("invoice", "bill"), 1.0);
  EXPECT_DOUBLE_EQ(t.Relationship("ship", "deliver"), 1.0);
  EXPECT_GT(t.Relationship("quantity", "count"), 0.8);
  EXPECT_TRUE(t.ExpandAbbreviation("uom").has_value());
  EXPECT_TRUE(t.ExpandAbbreviation("po").has_value());
  EXPECT_EQ(*t.ConceptOf("price"), "money");
}

TEST(DefaultThesaurusTest, CidxExcelIsExactlyThePaperInput) {
  Thesaurus t = CidxExcelThesaurus();
  // 4 abbreviations, 2 synonym entries (Section 9.2).
  EXPECT_EQ(t.num_abbreviations(), 4u);
  EXPECT_EQ(t.num_relation_entries(), 2u);
  EXPECT_DOUBLE_EQ(t.Relationship("invoice", "bill"), 1.0);
  EXPECT_DOUBLE_EQ(t.Relationship("ship", "deliver"), 1.0);
  // phone~telephone is NOT in the experiment's thesaurus.
  EXPECT_DOUBLE_EQ(t.Relationship("phone", "telephone"), 0.0);
}

TEST(DefaultThesaurusTest, RdbStarHasNoRelations) {
  Thesaurus t = RdbStarThesaurus();
  EXPECT_EQ(t.num_relation_entries(), 0u);
  EXPECT_EQ(t.num_abbreviations(), 0u);
}

// ------------------------------------------------------------------- IO --

TEST(ThesaurusIoTest, ParseAllEntryKinds) {
  auto r = ParseThesaurus(
      "# comment\n"
      "abbr po purchase order\n"
      "syn invoice bill 0.9\n"
      "hyp customer person 0.7\n"
      "stop of\n"
      "concept money price cost\n"
      "\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Thesaurus& t = *r;
  EXPECT_TRUE(t.ExpandAbbreviation("po").has_value());
  EXPECT_DOUBLE_EQ(t.Relationship("invoice", "bill"), 0.9);
  EXPECT_DOUBLE_EQ(t.Relationship("customer", "person"), 0.7);
  EXPECT_TRUE(t.IsStopWord("of"));
  EXPECT_EQ(*t.ConceptOf("price"), "money");
}

TEST(ThesaurusIoTest, ParseErrorsReportLine) {
  auto r = ParseThesaurus("syn a b\n");  // missing strength
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);

  EXPECT_FALSE(ParseThesaurus("syn a b 1.5\n").ok());   // out of range
  EXPECT_FALSE(ParseThesaurus("bogus x y\n").ok());     // unknown kind
  EXPECT_FALSE(ParseThesaurus("abbr q\n").ok());        // no expansion
  EXPECT_FALSE(ParseThesaurus("stop a b\n").ok());      // extra word
  EXPECT_FALSE(ParseThesaurus("concept money\n").ok()); // no trigger
}

TEST(ThesaurusIoTest, SaveLoadRoundTrip) {
  Thesaurus t;
  t.AddAbbreviation("po", {"purchase", "order"});
  t.AddSynonym("invoice", "bill", 0.9);
  t.AddStopWord("of");
  t.AddConcept("money", {"price"});

  std::string path = testing::TempDir() + "/cupid_thesaurus_test.txt";
  ASSERT_TRUE(SaveThesaurus(t, path).ok());
  auto r = LoadThesaurus(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->Relationship("invoice", "bill"), 0.9);
  EXPECT_TRUE(r->ExpandAbbreviation("po").has_value());
  EXPECT_TRUE(r->IsStopWord("of"));
  EXPECT_EQ(*r->ConceptOf("price"), "money");
  std::remove(path.c_str());
}

TEST(ThesaurusIoTest, LoadMissingFileIsIoError) {
  auto r = LoadThesaurus("/nonexistent/path/thesaurus.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace cupid
