// Tests for the future-work extensions: annotation similarity, mapping
// composition/inversion, and parameter auto-tuning.

#include <gtest/gtest.h>

#include "core/cupid_matcher.h"
#include "eval/autotune.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "importers/xml_schema_loader.h"
#include "linguistic/annotations.h"
#include "mapping/compose.h"
#include "mapping/mapping_io.h"
#include "thesaurus/default_thesaurus.h"

namespace cupid {
namespace {

// ------------------------------------------------------------ annotations --

TEST(AnnotationsTest, VectorBuildingStemsAndFilters) {
  Thesaurus th = DefaultThesaurus();
  AnnotationVector v =
      BuildAnnotationVector("The quantities of the ordered items", th);
  EXPECT_TRUE(v.contains("quantity"));
  EXPECT_TRUE(v.contains("item"));
  EXPECT_FALSE(v.contains("the"));
  EXPECT_FALSE(v.contains("of"));
}

TEST(AnnotationsTest, CosineProperties) {
  Thesaurus th = DefaultThesaurus();
  AnnotationVector a = BuildAnnotationVector("total order value", th);
  AnnotationVector b = BuildAnnotationVector("value total order", th);
  AnnotationVector c = BuildAnnotationVector("shipping street city", th);
  EXPECT_NEAR(AnnotationCosine(a, b), 1.0, 1e-9);  // order-insensitive
  EXPECT_DOUBLE_EQ(AnnotationCosine(a, c), 0.0);
  EXPECT_DOUBLE_EQ(AnnotationCosine(a, AnnotationVector{}), 0.0);
  double partial = AnnotationSimilarity("total order value",
                                        "order grand total", th);
  EXPECT_GT(partial, 0.3);
  EXPECT_LT(partial, 1.0);
}

TEST(AnnotationsTest, DocumentationDisambiguatesEqualNames) {
  // Two "Code" leaves; documentation decides which side matches which.
  auto s1 = LoadXmlSchema(R"(
<schema name="A">
  <element name="Box">
    <attribute name="Code" type="string" doc="postal routing code of the delivery address"/>
    <attribute name="Kode" type="string" doc="internal product identifier code"/>
  </element>
</schema>)");
  auto s2 = LoadXmlSchema(R"(
<schema name="B">
  <element name="Box">
    <attribute name="Code" type="string" doc="identifier code of the product"/>
  </element>
</schema>)");
  ASSERT_TRUE(s1.ok() && s2.ok());

  Thesaurus th = DefaultThesaurus();
  CupidConfig with;
  with.linguistic.annotation_weight = 0.5;
  CupidConfig without;
  without.linguistic.annotation_weight = 0.0;

  CupidMatcher m_with(&th, with);
  CupidMatcher m_without(&th, without);
  auto r_with = m_with.Match(*s1, *s2);
  auto r_without = m_without.Match(*s1, *s2);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());

  // With annotations, the product-identifier doc pulls Kode up and pushes
  // the (name-identical but doc-dissimilar) Code down.
  double kode_with = r_with->WsimByPath("A.Box.Kode", "B.Box.Code");
  double kode_without = r_without->WsimByPath("A.Box.Kode", "B.Box.Code");
  EXPECT_GT(kode_with, kode_without);
  double code_with = r_with->WsimByPath("A.Box.Code", "B.Box.Code");
  double code_without = r_without->WsimByPath("A.Box.Code", "B.Box.Code");
  EXPECT_LT(code_with, code_without);
}

TEST(AnnotationsTest, WeightZeroIsNoOp) {
  auto s1 = LoadXmlSchema(
      "<schema name=\"A\"><element name=\"T\">"
      "<attribute name=\"x\" type=\"int\" doc=\"alpha beta\"/>"
      "</element></schema>");
  auto s2 = LoadXmlSchema(
      "<schema name=\"B\"><element name=\"T\">"
      "<attribute name=\"x\" type=\"int\" doc=\"alpha beta\"/>"
      "</element></schema>");
  ASSERT_TRUE(s1.ok() && s2.ok());
  Thesaurus th = DefaultThesaurus();
  // weight 0 with docs present == docs absent with any weight: the
  // annotation path must not perturb lsim at all.
  CupidConfig off;
  off.linguistic.annotation_weight = 0.0;
  CupidMatcher m_off(&th, off);
  auto r_off = m_off.Match(*s1, *s2);
  ASSERT_TRUE(r_off.ok());

  Schema s1_nodoc = *s1;
  Schema s2_nodoc = *s2;
  s1_nodoc.mutable_element(s1_nodoc.FindByPath("A.T.x"))->documentation = "";
  s2_nodoc.mutable_element(s2_nodoc.FindByPath("B.T.x"))->documentation = "";
  CupidConfig on;
  on.linguistic.annotation_weight = 0.5;
  CupidMatcher m_on(&th, on);
  auto r_nodoc = m_on.Match(s1_nodoc, s2_nodoc);
  ASSERT_TRUE(r_nodoc.ok());

  EXPECT_DOUBLE_EQ(r_off->WsimByPath("A.T.x", "B.T.x"),
                   r_nodoc->WsimByPath("A.T.x", "B.T.x"));
  EXPECT_GT(r_off->WsimByPath("A.T.x", "B.T.x"), 0.8);
}

TEST(AnnotationsTest, InvalidWeightRejected) {
  Thesaurus th;
  CupidConfig bad;
  bad.linguistic.annotation_weight = 1.5;
  CupidMatcher m(&th, bad);
  Schema a("A"), b("B");
  EXPECT_TRUE(m.Match(a, b).status().IsInvalidArgument());
}

// ------------------------------------------------------------ composition --

Mapping MakeMapping(const std::string& from, const std::string& to,
                    std::vector<std::tuple<std::string, std::string, double>>
                        triples) {
  Mapping m;
  m.source_schema = from;
  m.target_schema = to;
  for (auto& [s, t, w] : triples) {
    MappingElement e;
    e.source_path = s;
    e.target_path = t;
    e.wsim = e.ssim = e.lsim = w;
    m.elements.push_back(std::move(e));
  }
  return m;
}

TEST(ComposeTest, TwoHopComposition) {
  Mapping ab = MakeMapping("A", "B", {{"A.x", "B.u", 0.9}, {"A.y", "B.v", 0.8}});
  Mapping bc = MakeMapping("B", "C", {{"B.u", "C.p", 0.9}, {"B.v", "C.q", 0.5}});
  auto ac = ComposeMappings(ab, bc);
  ASSERT_TRUE(ac.ok()) << ac.status().ToString();
  EXPECT_EQ(ac->source_schema, "A");
  EXPECT_EQ(ac->target_schema, "C");
  ASSERT_EQ(ac->size(), 2u);
  EXPECT_TRUE(ac->ContainsPair("A.x", "C.p"));
  EXPECT_TRUE(ac->ContainsPair("A.y", "C.q"));
  for (const MappingElement& e : ac->elements) {
    if (e.source_path == "A.x") {
      EXPECT_NEAR(e.wsim, 0.81, 1e-9);
    }
    if (e.source_path == "A.y") {
      EXPECT_NEAR(e.wsim, 0.40, 1e-9);
    }
  }
}

TEST(ComposeTest, ThresholdDropsWeakChains) {
  Mapping ab = MakeMapping("A", "B", {{"A.x", "B.u", 0.5}});
  Mapping bc = MakeMapping("B", "C", {{"B.u", "C.p", 0.4}});
  ComposeOptions opt;
  opt.min_wsim = 0.25;
  auto ac = ComposeMappings(ab, bc, opt);
  ASSERT_TRUE(ac.ok());
  EXPECT_TRUE(ac->empty());  // 0.5*0.4 = 0.2 < 0.25
}

TEST(ComposeTest, StrongestDerivationWins) {
  Mapping ab = MakeMapping("A", "B",
                           {{"A.x", "B.u", 0.9}, {"A.x", "B.v", 0.8}});
  Mapping bc = MakeMapping("B", "C",
                           {{"B.u", "C.p", 0.5}, {"B.v", "C.p", 0.9}});
  auto ac = ComposeMappings(ab, bc);
  ASSERT_TRUE(ac.ok());
  ASSERT_EQ(ac->size(), 1u);
  // Via v: 0.8*0.9 = 0.72 beats via u: 0.9*0.5 = 0.45.
  EXPECT_NEAR(ac->elements[0].wsim, 0.72, 1e-9);
}

TEST(ComposeTest, MiddleSchemaMismatchRejected) {
  Mapping ab = MakeMapping("A", "B", {});
  Mapping xc = MakeMapping("X", "C", {});
  EXPECT_TRUE(ComposeMappings(ab, xc).status().IsInvalidArgument());
}

TEST(ComposeTest, InvertSwapsEndpoints) {
  Mapping ab = MakeMapping("A", "B", {{"A.x", "B.u", 0.9}});
  Mapping ba = InvertMapping(ab);
  EXPECT_EQ(ba.source_schema, "B");
  EXPECT_EQ(ba.target_schema, "A");
  EXPECT_TRUE(ba.ContainsPair("B.u", "A.x"));
}

TEST(ComposeTest, RealPipelineComposition) {
  // A -> B -> A via two real matches composes to (a subset of) identity.
  Dataset d = Fig2Dataset();
  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto forward = m.Match(d.source, d.target);
  ASSERT_TRUE(forward.ok());
  Mapping backward = InvertMapping(forward->leaf_mapping);
  auto round = ComposeMappings(forward->leaf_mapping, backward);
  ASSERT_TRUE(round.ok());
  for (const MappingElement& e : round->elements) {
    if (e.source_path == e.target_path) continue;
    // Any non-identity pair must come from a genuine 1:n ambiguity.
    ADD_FAILURE() << "non-identity roundtrip: " << e.source_path << " -> "
                  << e.target_path;
  }
}

// ------------------------------------------------------------- mapping IO --

TEST(MappingIoTest, SerializeParseRoundTrip) {
  Mapping m = MakeMapping("PO", "PurchaseOrder",
                          {{"PO.a.b", "PurchaseOrder.x.y", 0.875},
                           {"PO.c", "PurchaseOrder.z", 0.5}});
  auto parsed = ParseMapping(SerializeMapping(m));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->source_schema, "PO");
  EXPECT_EQ(parsed->target_schema, "PurchaseOrder");
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_TRUE(parsed->ContainsPair("PO.a.b", "PurchaseOrder.x.y"));
  EXPECT_NEAR(parsed->elements[0].wsim, 0.875, 1e-6);
}

TEST(MappingIoTest, ParseRejectsMalformed) {
  EXPECT_TRUE(ParseMapping("").status().IsParseError());
  EXPECT_TRUE(ParseMapping("a|b|1|1|1\n").status().IsParseError());
  EXPECT_TRUE(
      ParseMapping("mapping A -> B\na|b|1|1\n").status().IsParseError());
  EXPECT_TRUE(
      ParseMapping("mapping A -> B\na|b|2.0|1|1\n").status().IsParseError());
  EXPECT_TRUE(
      ParseMapping("mapping A -> B\na|b|x|1|1\n").status().IsParseError());
  EXPECT_TRUE(ParseMapping("mapping A\n").status().IsParseError());
}

TEST(MappingIoTest, HandEditedFilesTolerated) {
  // No version header, blank lines, comments.
  auto m = ParseMapping(
      "\n# reviewed by alice\nmapping A -> B\n\n"
      "A.x|B.y|0.9|0.8|1.0\n");
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->size(), 1u);
}

TEST(MappingIoTest, SaveLoadRoundTrip) {
  Mapping m = MakeMapping("A", "B", {{"A.x", "B.y", 0.75}});
  std::string path = testing::TempDir() + "/cupid_mapping_test.map";
  ASSERT_TRUE(SaveMapping(m, path).ok());
  auto loaded = LoadMapping(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->ContainsPair("A.x", "B.y"));
  std::remove(path.c_str());
  EXPECT_TRUE(LoadMapping("/nonexistent/m.map").status().code() ==
              StatusCode::kIoError);
}

TEST(MappingIoTest, StoredMappingsCompose) {
  // The reuse workflow: match A->B today, B->C tomorrow, compose the stored
  // files into A->C without re-matching.
  Mapping ab = MakeMapping("A", "B", {{"A.x", "B.u", 0.9}});
  Mapping bc = MakeMapping("B", "C", {{"B.u", "C.p", 0.8}});
  auto ab2 = ParseMapping(SerializeMapping(ab));
  auto bc2 = ParseMapping(SerializeMapping(bc));
  ASSERT_TRUE(ab2.ok() && bc2.ok());
  auto ac = ComposeMappings(*ab2, *bc2);
  ASSERT_TRUE(ac.ok());
  EXPECT_TRUE(ac->ContainsPair("A.x", "C.p"));
}

// --------------------------------------------------------------- autotune --

TEST(AutoTuneTest, FindsAConfigAtLeastAsGoodAsDefault) {
  Dataset fig2 = Fig2Dataset();
  Thesaurus th = DefaultThesaurus();
  std::vector<TuningCase> cases{{&fig2, &th}};
  auto r = AutoTune(cases);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->surface.size(), 27u);  // 3x3x3 grid

  CupidMatcher def(&th);
  auto rd = def.Match(fig2.source, fig2.target);
  ASSERT_TRUE(rd.ok());
  double default_f1 = Evaluate(rd->leaf_mapping, fig2.gold).f1();
  EXPECT_GE(r->best.mean_f1, default_f1);

  // The winning config reproduces its reported score.
  CupidMatcher best(&th, r->best_config);
  auto rb = best.Match(fig2.source, fig2.target);
  ASSERT_TRUE(rb.ok());
  EXPECT_NEAR(Evaluate(rb->leaf_mapping, fig2.gold).f1(), r->best.mean_f1,
              1e-9);
}

TEST(AutoTuneTest, MultipleCasesAveraged) {
  Dataset fig2 = Fig2Dataset();
  Dataset canonical = std::move(*CanonicalExample(5));
  Thesaurus th = DefaultThesaurus();
  std::vector<TuningCase> cases{{&fig2, &th}, {&canonical, &th}};
  TuningGrid grid;
  grid.th_accept = {0.5};
  grid.wstruct_leaf = {0.5};
  grid.c_inc = {1.3};
  auto r = AutoTune(cases, {}, grid);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->surface.size(), 1u);
  EXPECT_GT(r->best.mean_f1, 0.8);
}

TEST(AutoTuneTest, Validation) {
  EXPECT_TRUE(AutoTune({}).status().IsInvalidArgument());
  Dataset fig2 = Fig2Dataset();
  std::vector<TuningCase> null_case{{&fig2, nullptr}};
  EXPECT_TRUE(AutoTune(null_case).status().IsInvalidArgument());
  Thesaurus th;
  std::vector<TuningCase> ok_case{{&fig2, &th}};
  TuningGrid empty;
  empty.c_inc.clear();
  EXPECT_TRUE(AutoTune(ok_case, {}, empty).status().IsInvalidArgument());
}

}  // namespace
}  // namespace cupid
