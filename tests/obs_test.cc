// Observability layer correctness: histogram bucket math, snapshot
// determinism across updater thread counts, span nesting/ordering through
// the trace sink, the guaranteed no-op disabled path, env-toggle parsing —
// and the load-bearing property of the whole subsystem: tracing on vs off
// is bit-identical through the full incremental match pipeline.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "eval/synthetic.h"
#include "incremental/match_session.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/match_diff_testutil.h"
#include "thesaurus/default_thesaurus.h"
#include "util/env.h"
#include "util/json.h"
#include "util/random.h"

namespace cupid {
namespace {

TEST(HistogramTest, BucketMathAndPercentiles) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.GetHistogram("test.latency", "test", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket 0 (<= 1)
  h->Observe(5.0);    // bucket 1 (<= 10)
  h->Observe(50.0);   // bucket 2 (<= 100)
  h->Observe(500.0);  // +Inf bucket
  EXPECT_EQ(h->count(), 4);
  EXPECT_DOUBLE_EQ(h->sum_ms(), 555.5);

  std::vector<obs::MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const obs::MetricSnapshot& m = snapshot[0];
  EXPECT_EQ(m.type, obs::MetricType::kHistogram);
  ASSERT_EQ(m.buckets.size(), 4u);  // three bounds + the +Inf bucket
  EXPECT_EQ(m.buckets[0], 1);
  EXPECT_EQ(m.buckets[1], 1);
  EXPECT_EQ(m.buckets[2], 1);
  EXPECT_EQ(m.buckets[3], 1);
  // rank(p50) = 2 lands at the top of the second bucket; observations in
  // the +Inf bucket report the last finite bound as a floor.
  EXPECT_DOUBLE_EQ(m.p50, 10.0);
  EXPECT_DOUBLE_EQ(m.p95, 100.0);
  EXPECT_DOUBLE_EQ(m.p99, 100.0);
}

TEST(HistogramTest, BoundaryValuesLandInTheLowerBucket) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test.b", "test", {1.0, 10.0});
  h->Observe(1.0);   // exactly a bound: first bucket whose bound >= value
  h->Observe(10.0);
  std::vector<obs::MetricSnapshot> snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot[0].buckets[0], 1);
  EXPECT_EQ(snapshot[0].buckets[1], 1);
  EXPECT_EQ(snapshot[0].buckets[2], 0);
}

TEST(HistogramTest, DefaultBucketsAreAscending) {
  const std::vector<double>& bounds = obs::DefaultLatencyBucketsMs();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "bound " << i;
  }
}

TEST(MetricsRegistryTest, HandlesAreIdempotentAndSnapshotKeepsOrder) {
  obs::MetricsRegistry registry;
  obs::Counter* z = registry.GetCounter("test.z", "first help");
  obs::Gauge* a = registry.GetGauge("test.a", "gauge");
  obs::Counter* m = registry.GetCounter("test.m", "counter");
  EXPECT_EQ(registry.GetCounter("test.z", "other help"), z);  // same handle
  z->Add(3);
  a->Set(-7);
  m->Increment();

  std::vector<obs::MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  // Registration order, never hash order.
  EXPECT_EQ(snapshot[0].name, "test.z");
  EXPECT_EQ(snapshot[1].name, "test.a");
  EXPECT_EQ(snapshot[2].name, "test.m");
  EXPECT_EQ(snapshot[0].help, "first help");  // first registration wins
  EXPECT_EQ(snapshot[0].value, 3);
  EXPECT_EQ(snapshot[1].value, -7);
  EXPECT_EQ(snapshot[2].value, 1);
}

/// The same logical workload split over 1, 2, and 4 updater threads must
/// snapshot to identical values: counters are additive, and histogram sums
/// accumulate in integer microseconds, so no interleaving can change any
/// total.
TEST(MetricsRegistryTest, SnapshotDeterministicAcrossThreadCounts) {
  constexpr int kOps = 1200;  // divisible by every thread count below
  auto run = [](int num_threads) {
    obs::MetricsRegistry registry;
    obs::Counter* counter = registry.GetCounter("test.ops", "ops");
    obs::Histogram* h =
        registry.GetHistogram("test.ms", "ms", {0.5, 5.0, 50.0});
    std::vector<std::thread> threads;
    const int per_thread = kOps / num_threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([counter, h, per_thread, t] {
        for (int i = 0; i < per_thread; ++i) {
          counter->Add(2);
          // Keyed on the global op index so every split observes the same
          // multiset of values.
          const int g = t * per_thread + i;
          h->Observe(0.1 + 0.001 * (g % 7));
          h->Observe(3.25);
          h->Observe(75.5);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    return registry.Snapshot();
  };

  std::vector<obs::MetricSnapshot> one = run(1);
  for (int num_threads : {2, 4}) {
    std::vector<obs::MetricSnapshot> many = run(num_threads);
    ASSERT_EQ(many.size(), one.size());
    for (size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(many[i].name, one[i].name);
      EXPECT_EQ(many[i].value, one[i].value) << one[i].name;
      EXPECT_EQ(many[i].count, one[i].count) << one[i].name;
      EXPECT_EQ(many[i].sum_ms, one[i].sum_ms) << one[i].name;
      EXPECT_EQ(many[i].buckets, one[i].buckets) << one[i].name;
    }
  }
}

TEST(MetricsRegistryTest, RenderJsonIsParseableAndComplete) {
  obs::MetricsRegistry registry;
  registry.GetCounter("test.count", "a counter")->Add(41);
  registry.GetHistogram("test.ms", "a histogram", {1.0})->Observe(2.0);
  auto parsed = ParseJson(registry.RenderJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_array());
  ASSERT_EQ(parsed->array.size(), 2u);
  EXPECT_EQ(parsed->array[0].GetString("name"), "test.count");
  EXPECT_EQ(parsed->array[0].GetInt("value", -1), 41);
  EXPECT_EQ(parsed->array[1].GetString("type"), "histogram");
  EXPECT_EQ(parsed->array[1].GetInt("count", -1), 1);
}

TEST(MetricsRegistryTest, RenderPrometheusUsesCumulativeBuckets) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("test.hist-ms", "h", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  std::string text = registry.RenderPrometheus();
  // '.' and '-' both map to '_'; bucket counts are cumulative.
  EXPECT_NE(text.find("test_hist_ms_bucket{le=\"1\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_hist_ms_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("test_hist_ms_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_hist_ms_count 2\n"), std::string::npos);
}

/// Installs `sink` for the scope and always restores the disabled state.
class ScopedSink {
 public:
  explicit ScopedSink(obs::TraceSink* sink) { obs::SetGlobalTraceSink(sink); }
  ~ScopedSink() { obs::SetGlobalTraceSink(nullptr); }
};

TEST(TraceTest, SpansNestAndEmitInCloseOrder) {
  obs::VectorTraceSink sink;
  ScopedSink installed(&sink);
  obs::TraceContext ctx("unit");
  obs::ScopedTraceContext scoped(&ctx);
  {
    obs::ScopedSpan outer("outer");
    ASSERT_TRUE(outer.enabled());
    outer.Attr("k", 1.5);
    {
      obs::ScopedSpan inner("inner");
      inner.Attr("rows", 42);
    }
  }
  std::vector<obs::SpanRecord> spans = sink.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order: the inner span lands in the stream first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_STREQ(spans[0].label, "unit");
  EXPECT_STREQ(spans[1].label, "unit");
  ASSERT_EQ(spans[0].attr_count, 1u);
  EXPECT_STREQ(spans[0].attrs[0].key, "rows");
  EXPECT_EQ(spans[0].attrs[0].value, 42.0);
  // The inner span starts no earlier than the outer and fits inside it.
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
  EXPECT_LE(spans[0].start_us + spans[0].duration_us,
            spans[1].start_us + spans[1].duration_us);
}

TEST(TraceTest, FormatSpanJsonIsOneParseableLine) {
  obs::SpanRecord span;
  span.name = "phase";
  span.label = "req";
  span.depth = 2;
  span.start_us = 10;
  span.duration_us = 250;
  span.attrs[0] = {"count", 3.0};
  span.attrs[1] = {"ms", 1.2345};
  span.attr_count = 2;
  char buf[512];
  size_t n = obs::FormatSpanJson(span, buf, sizeof(buf));
  std::string line(buf, n);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  line.pop_back();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(parsed->GetString("span"), "phase");
  EXPECT_EQ(parsed->GetString("label"), "req");
  EXPECT_EQ(parsed->GetInt("depth", -1), 2);
  EXPECT_EQ(parsed->GetInt("dur_us", -1), 250);
  const JsonValue* attrs = parsed->Find("attrs");
  ASSERT_NE(attrs, nullptr);
  EXPECT_EQ(attrs->GetInt("count", -1), 3);  // integral values print as ints
  EXPECT_NEAR(attrs->GetNumber("ms", 0.0), 1.234, 1e-3);
}

TEST(TraceTest, DisabledPathIsANoop) {
  obs::SetGlobalTraceSink(nullptr);
  obs::VectorTraceSink sink;  // never installed
  {
    obs::ScopedSpan span("ghost");
    EXPECT_FALSE(span.enabled());
    span.Attr("k", 1.0);  // must be safely ignorable
  }
  EXPECT_EQ(sink.size(), 0u);
  EXPECT_FALSE(obs::TracingEnabledFast());
}

TEST(TraceTest, AttrsBeyondCapacityAreDroppedSilently) {
  obs::VectorTraceSink sink;
  ScopedSink installed(&sink);
  {
    obs::ScopedSpan span("wide");
    for (size_t i = 0; i < obs::SpanRecord::kMaxAttrs + 5; ++i) {
      span.Attr("k", static_cast<double>(i));
    }
  }
  std::vector<obs::SpanRecord> spans = sink.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].attr_count, obs::SpanRecord::kMaxAttrs);
}

TEST(EnvTest, FlagParsingContract) {
  unsetenv("CUPID_TEST_FLAG");
  EXPECT_FALSE(EnvFlag("CUPID_TEST_FLAG"));
  EXPECT_TRUE(EnvFlag("CUPID_TEST_FLAG", true));  // unset -> default
  for (const char* on : {"1", "true", "yes", "anything"}) {
    setenv("CUPID_TEST_FLAG", on, 1);
    EXPECT_TRUE(EnvFlag("CUPID_TEST_FLAG")) << on;
  }
  for (const char* off : {"", "0", "false", "FALSE", "off", "Off", "no"}) {
    setenv("CUPID_TEST_FLAG", off, 1);
    EXPECT_FALSE(EnvFlag("CUPID_TEST_FLAG", true)) << "'" << off << "'";
  }
  unsetenv("CUPID_TEST_FLAG");
  EXPECT_EQ(EnvString("CUPID_TEST_FLAG", "fallback"), "fallback");
  setenv("CUPID_TEST_FLAG", "value", 1);
  EXPECT_EQ(EnvString("CUPID_TEST_FLAG", "fallback"), "value");
  unsetenv("CUPID_TEST_FLAG");
}

/// The tentpole guarantee: tracing must never influence match results.
/// Two sessions run the same edit stream — one with a sink installed, one
/// with tracing disabled — and every Rematch must be bit-identical.
TEST(TraceTest, TracingOnOffIsBitIdentical) {
  SyntheticOptions opt;
  opt.num_elements = 50;
  opt.seed = 20260808;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();
  CupidConfig config;
  config.SetNumThreads(1);

  MatchSession traced_session(&thesaurus, pair.source, pair.target, config);
  MatchSession plain_session(&thesaurus, pair.source, pair.target, config);
  obs::VectorTraceSink sink;
  SplitMix64 rng(97);

  for (int step = 0; step <= 6; ++step) {
    if (step > 0) {
      SchemaEdit edit = RandomSessionEdit(&rng, plain_session.source(),
                                          plain_session.target(), step);
      ASSERT_TRUE(plain_session.ApplyEdit(edit).ok()) << "step " << step;
      ASSERT_TRUE(traced_session.ApplyEdit(edit).ok()) << "step " << step;
    }
    obs::SetGlobalTraceSink(nullptr);
    auto plain = plain_session.Rematch();
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    obs::SetGlobalTraceSink(&sink);
    auto traced = traced_session.Rematch();
    obs::SetGlobalTraceSink(nullptr);
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();

    ExpectIdenticalResults(**traced, **plain,
                           "traced-vs-plain step " + std::to_string(step));
    if (::testing::Test::HasFatalFailure()) return;
  }
  // The traced run must actually have traced: every Rematch emits at least
  // the session.rematch span.
  EXPECT_GE(sink.size(), 7u);
}

}  // namespace
}  // namespace cupid
