// MatchSession correctness: after any edit stream, Rematch() must be
// bit-identical to a from-scratch CupidMatcher run on the edited schemas —
// the warm start may only skip work, never change results. Random edit
// streams drive every edit kind through the session and compare lsim, node
// similarities and both mappings value-for-value at every step, at 1 and N
// threads, with and without the strong-link cache.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cupid_matcher.h"
#include "eval/datasets.h"
#include "eval/synthetic.h"
#include "incremental/match_session.h"
#include "thesaurus/default_thesaurus.h"
#include "util/random.h"

namespace cupid {
namespace {

/// Bitwise comparison of a session result against a from-scratch run.
/// Returns on the first mismatch to keep failure output readable.
void ExpectIdentical(const MatchResult& inc, const MatchResult& ref,
                     const std::string& context) {
  ASSERT_EQ(inc.linguistic.lsim.rows(), ref.linguistic.lsim.rows()) << context;
  ASSERT_EQ(inc.linguistic.lsim.cols(), ref.linguistic.lsim.cols()) << context;
  for (int64_t i = 0; i < inc.linguistic.lsim.rows(); ++i) {
    for (int64_t j = 0; j < inc.linguistic.lsim.cols(); ++j) {
      ASSERT_EQ(inc.linguistic.lsim(i, j), ref.linguistic.lsim(i, j))
          << context << " element lsim(" << i << "," << j << ")";
    }
  }
  const NodeSimilarities& a = inc.tree_match.sims;
  const NodeSimilarities& b = ref.tree_match.sims;
  ASSERT_EQ(a.source_nodes(), b.source_nodes()) << context;
  ASSERT_EQ(a.target_nodes(), b.target_nodes()) << context;
  for (TreeNodeId s = 0; s < a.source_nodes(); ++s) {
    for (TreeNodeId t = 0; t < a.target_nodes(); ++t) {
      ASSERT_EQ(a.lsim(s, t), b.lsim(s, t))
          << context << " lsim(" << s << "," << t << ")";
      ASSERT_EQ(a.ssim(s, t), b.ssim(s, t))
          << context << " ssim(" << s << "," << t << ") "
          << inc.source_tree.PathName(s) << " / "
          << inc.target_tree.PathName(t);
      ASSERT_EQ(a.wsim(s, t), b.wsim(s, t))
          << context << " wsim(" << s << "," << t << ") "
          << inc.source_tree.PathName(s) << " / "
          << inc.target_tree.PathName(t);
    }
  }
  auto expect_mapping = [&](const Mapping& m1, const Mapping& m2,
                            const char* which) {
    ASSERT_EQ(m1.size(), m2.size()) << context << " " << which;
    for (size_t i = 0; i < m1.size(); ++i) {
      ASSERT_EQ(m1.elements[i].source_path, m2.elements[i].source_path)
          << context << " " << which << "[" << i << "]";
      ASSERT_EQ(m1.elements[i].target_path, m2.elements[i].target_path)
          << context << " " << which << "[" << i << "]";
      ASSERT_EQ(m1.elements[i].wsim, m2.elements[i].wsim)
          << context << " " << which << "[" << i << "]";
      ASSERT_EQ(m1.elements[i].ssim, m2.elements[i].ssim)
          << context << " " << which << "[" << i << "]";
      ASSERT_EQ(m1.elements[i].lsim, m2.elements[i].lsim)
          << context << " " << which << "[" << i << "]";
    }
  };
  expect_mapping(inc.leaf_mapping, ref.leaf_mapping, "leaf mapping");
  expect_mapping(inc.nonleaf_mapping, ref.nonleaf_mapping, "nonleaf mapping");
}

/// A random edit over the current schemas: every kind is exercised,
/// including renames onto vocabulary words (thesaurus hits), type drift,
/// fresh subtrees, and removals.
SchemaEdit RandomEdit(SplitMix64* rng, const Schema& source,
                      const Schema& target, int counter) {
  EditSide side = rng->NextBounded(2) == 0 ? EditSide::kSource
                                           : EditSide::kTarget;
  const Schema& schema = side == EditSide::kSource ? source : target;
  auto random_element = [&](bool allow_root) {
    // Root is id 0; non-root elements start at 1 (if any exist).
    if (schema.num_elements() <= 1) return allow_root ? ElementId{0} : kNoElement;
    return allow_root
               ? static_cast<ElementId>(rng->NextBounded(
                     static_cast<uint64_t>(schema.num_elements())))
               : static_cast<ElementId>(
                     1 + rng->NextBounded(
                             static_cast<uint64_t>(schema.num_elements() - 1)));
  };
  static const char* kNames[] = {"Qty",        "CustomerNumber", "UnitPrice",
                                 "ShipToCity", "OrderDate",      "Amount",
                                 "ContactPhone", "PostalCode"};
  static const DataType kTypes[] = {DataType::kString,  DataType::kInteger,
                                    DataType::kDecimal, DataType::kMoney,
                                    DataType::kDate,    DataType::kBoolean};
  switch (rng->NextBounded(4)) {
    case 0: {  // rename: occasionally onto a vocabulary name (collisions OK)
      ElementId id = random_element(/*allow_root=*/false);
      if (id == kNoElement || schema.FindByPath(schema.PathName(id)) != id) {
        break;  // path-ambiguous element (duplicate sibling names): skip
      }
      std::string name =
          rng->NextBernoulli(0.5)
              ? std::string(kNames[rng->NextBounded(8)])
              : schema.element(id).name + "X" + std::to_string(counter);
      return SchemaEdit::RenameElement(side, schema.PathName(id),
                                       std::move(name));
    }
    case 1: {  // retype a random element
      ElementId id = random_element(/*allow_root=*/false);
      if (id == kNoElement || schema.FindByPath(schema.PathName(id)) != id) {
        break;
      }
      return SchemaEdit::ChangeDataType(side, schema.PathName(id),
                                        kTypes[rng->NextBounded(6)]);
    }
    case 2: {  // add a leaf under a random element (leaves become containers)
      ElementId parent = random_element(/*allow_root=*/true);
      if (schema.FindByPath(schema.PathName(parent)) != parent) break;
      Element leaf;
      leaf.name = std::string(kNames[rng->NextBounded(8)]) +
                  std::to_string(counter);
      leaf.kind = ElementKind::kAtomic;
      leaf.data_type = kTypes[rng->NextBounded(6)];
      leaf.optional = rng->NextBernoulli(0.3);
      return SchemaEdit::AddElement(side, schema.PathName(parent),
                                    std::move(leaf));
    }
    default: {  // remove a random subtree (keep schemas from emptying out)
      if (schema.num_elements() > 10) {
        ElementId id = random_element(/*allow_root=*/false);
        if (schema.FindByPath(schema.PathName(id)) != id) break;
        return SchemaEdit::RemoveElement(side, schema.PathName(id));
      }
      break;
    }
  }
  // Fallback: benign rename of the root (dirties everything — also a case
  // worth covering).
  return SchemaEdit::RenameElement(side, schema.PathName(0),
                                   schema.name() + "R");
}

/// Drives `num_edits` random edits through a session, asserting bitwise
/// equality with from-scratch matching after every Rematch.
void RunEditStream(const CupidConfig& config, uint64_t seed, int num_edits) {
  SyntheticOptions opt;
  opt.num_elements = 60;
  opt.seed = seed;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();

  MatchSession session(&thesaurus, pair.source, pair.target, config);
  CupidMatcher scratch(&thesaurus, config);
  SplitMix64 rng(seed * 7919 + 13);

  for (int step = 0; step <= num_edits; ++step) {
    if (step > 0) {
      SchemaEdit edit =
          RandomEdit(&rng, session.source(), session.target(), step);
      ASSERT_TRUE(session.ApplyEdit(edit).ok())
          << "seed " << seed << " step " << step << " path " << edit.path;
    }
    auto inc = session.Rematch();
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    auto ref = scratch.Match(session.source(), session.target());
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ExpectIdentical(**inc, *ref,
                    "seed " + std::to_string(seed) + " step " +
                        std::to_string(step));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

CupidConfig SingleThreaded() {
  CupidConfig config;
  config.SetNumThreads(1);
  return config;
}

TEST(MatchSessionPropertyTest, EditStreamBitIdenticalSingleThread) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    RunEditStream(SingleThreaded(), seed, 12);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MatchSessionPropertyTest, EditStreamBitIdenticalMultiThread) {
  CupidConfig config;
  config.SetNumThreads(4);
  RunEditStream(config, 11, 12);
}

TEST(MatchSessionPropertyTest, EditStreamBitIdenticalStrongLinkCache) {
  CupidConfig config = SingleThreaded();
  config.tree_match.use_strong_link_cache = true;
  RunEditStream(config, 21, 12);
}

TEST(MatchSessionPropertyTest, EditStreamBitIdenticalNaiveLinguistic) {
  // The session always runs the cached linguistic pipeline; a scratch run
  // configured with the naive reference path must still agree bit for bit.
  CupidConfig config = SingleThreaded();
  config.linguistic.use_perf_cache = false;
  RunEditStream(config, 31, 8);
}

TEST(MatchSessionPropertyTest, UnsupportedOptionsFallBackToFullRecompute) {
  CupidConfig config = SingleThreaded();
  config.tree_match.lazy_expansion = true;  // outside the warm-start subset
  SyntheticOptions opt;
  opt.num_elements = 40;
  opt.seed = 5;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();
  MatchSession session(&thesaurus, pair.source, pair.target, config);
  ASSERT_TRUE(session.Rematch().ok());
  ASSERT_TRUE(session
                  .ApplyEdit(SchemaEdit::RenameElement(
                      EditSide::kSource, session.source().PathName(1), "Qty"))
                  .ok());
  auto r = session.Rematch();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(session.last_stats().incremental);
  CupidMatcher scratch(&thesaurus, config);
  auto ref = scratch.Match(session.source(), session.target());
  ASSERT_TRUE(ref.ok());
  ExpectIdentical(**r, *ref, "lazy-expansion fallback");
}

TEST(MatchSessionTest, SingleRenameUsesWarmStartAndReusesPairs) {
  SyntheticOptions opt;
  opt.num_elements = 80;
  opt.seed = 9;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();
  MatchSession session(&thesaurus, pair.source, pair.target,
                       SingleThreaded());
  ASSERT_TRUE(session.Rematch().ok());
  EXPECT_FALSE(session.last_stats().incremental);  // cold start

  ElementId leaf = kNoElement;
  for (ElementId id = 1; id < session.source().num_elements(); ++id) {
    if (session.source().IsLeaf(id)) leaf = id;
  }
  ASSERT_NE(leaf, kNoElement);
  ASSERT_TRUE(session
                  .ApplyEdit(SchemaEdit::RenameElement(
                      EditSide::kSource, session.source().PathName(leaf),
                      "RenamedLeaf"))
                  .ok());
  ASSERT_TRUE(session.Rematch().ok());
  EXPECT_TRUE(session.last_stats().incremental);
  EXPECT_GT(session.last_stats().tree_match.pairs_reused, 0);
  // Most of the name-level similarity table must have survived the edit.
  EXPECT_GT(session.last_stats().lsim_cached_pairs, 0);
}

TEST(MatchSessionTest, ServesCachedResultWhenUnedited) {
  SyntheticOptions opt;
  opt.num_elements = 30;
  opt.seed = 4;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();
  MatchSession session(&thesaurus, pair.source, pair.target,
                       SingleThreaded());
  auto r1 = session.Rematch();
  ASSERT_TRUE(r1.ok());
  auto r2 = session.Rematch();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);  // same owned object, no recompute
}

TEST(MatchSessionTest, EditErrors) {
  Thesaurus thesaurus = DefaultThesaurus();
  SyntheticOptions opt;
  opt.num_elements = 20;
  opt.seed = 6;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  std::string root = pair.source.name();
  MatchSession session(&thesaurus, std::move(pair.source),
                       std::move(pair.target), SingleThreaded());

  EXPECT_FALSE(session
                   .ApplyEdit(SchemaEdit::RenameElement(
                       EditSide::kSource, "No.Such.Path", "X"))
                   .ok());
  EXPECT_FALSE(
      session.ApplyEdit(SchemaEdit::RemoveElement(EditSide::kSource, root))
          .ok());
  EXPECT_FALSE(session
                   .ApplyEdit(SchemaEdit::RenameElement(EditSide::kSource,
                                                        root, ""))
                   .ok());
  // RefInt elements cannot get reference edges through SchemaEdit, so
  // adding one must fail up front instead of detonating at Rematch.
  Element refint;
  refint.name = "DanglingRef";
  refint.kind = ElementKind::kRefInt;
  EXPECT_FALSE(
      session.ApplyEdit(SchemaEdit::AddElement(EditSide::kSource, root,
                                               std::move(refint)))
          .ok());
  // Errors must not have corrupted the schemas.
  EXPECT_TRUE(session.Rematch().ok());
}

TEST(MatchSessionTest, FailedRematchKeepsEditedSchemas) {
  SyntheticOptions opt;
  opt.num_elements = 20;
  opt.seed = 8;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();
  CupidConfig config = SingleThreaded();
  MatchSession session(&thesaurus, pair.source, pair.target, config);
  ASSERT_TRUE(session.Rematch().ok());

  std::string renamed = session.source().PathName(1);
  ASSERT_TRUE(session
                  .ApplyEdit(SchemaEdit::RenameElement(EditSide::kSource,
                                                       renamed, "Kept"))
                  .ok());
  // Sabotage the config so the next Rematch fails before matching.
  const_cast<CupidConfig&>(session.config()).tree_match.th_accept = 7.0;
  EXPECT_FALSE(session.Rematch().ok());
  // The queued edit must survive the failure...
  EXPECT_EQ(session.source().element(1).name, "Kept");
  // ...and a repaired config must pick it up.
  const_cast<CupidConfig&>(session.config()).tree_match.th_accept = 0.5;
  auto r = session.Rematch();
  ASSERT_TRUE(r.ok());
  CupidMatcher scratch(&thesaurus, session.config());
  auto ref = scratch.Match(session.source(), session.target());
  ASSERT_TRUE(ref.ok());
  ExpectIdentical(**r, *ref, "post-failure rematch");
}

TEST(MatchSessionTest, JoinViewSchemasFallBackButStayCorrect) {
  // RDB-style schemas carry referential constraints; their trees get
  // join-view nodes, which the warm start conservatively refuses — results
  // must still match from-scratch exactly.
  Thesaurus thesaurus = RdbStarThesaurus();
  auto rdb = RdbSchema();
  auto star = StarSchema();
  ASSERT_TRUE(rdb.ok() && star.ok());
  CupidConfig config = SingleThreaded();
  MatchSession session(&thesaurus, *rdb, *star, config);
  ASSERT_TRUE(session.Rematch().ok());
  ASSERT_TRUE(session
                  .ApplyEdit(SchemaEdit::RenameElement(
                      EditSide::kSource, "RDB.Products.ProductName",
                      "ItemName"))
                  .ok());
  auto r = session.Rematch();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(session.last_stats().incremental);
  CupidMatcher scratch(&thesaurus, config);
  auto ref = scratch.Match(session.source(), session.target());
  ASSERT_TRUE(ref.ok());
  ExpectIdentical(**r, *ref, "join-view fallback");
}

}  // namespace
}  // namespace cupid
