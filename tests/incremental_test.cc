// MatchSession correctness: after any edit stream, Rematch() must be
// bit-identical to a from-scratch CupidMatcher run on the edited schemas —
// the warm start may only skip work, never change results. Random edit
// streams drive every edit kind through the session and compare lsim, node
// similarities and both mappings value-for-value at every step, at 1 and N
// threads, with and without the strong-link cache.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cupid_matcher.h"
#include "eval/datasets.h"
#include "eval/synthetic.h"
#include "incremental/match_session.h"
#include "tests/match_diff_testutil.h"
#include "thesaurus/default_thesaurus.h"
#include "util/random.h"

namespace cupid {
namespace {

/// Drives `num_edits` random edits through a session, asserting bitwise
/// equality with from-scratch matching after every Rematch.
void RunEditStream(const CupidConfig& config, uint64_t seed, int num_edits) {
  SyntheticOptions opt;
  opt.num_elements = 60;
  opt.seed = seed;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();

  MatchSession session(&thesaurus, pair.source, pair.target, config);
  CupidMatcher scratch(&thesaurus, config);
  SplitMix64 rng(seed * 7919 + 13);

  for (int step = 0; step <= num_edits; ++step) {
    if (step > 0) {
      SchemaEdit edit =
          RandomSessionEdit(&rng, session.source(), session.target(), step);
      ASSERT_TRUE(session.ApplyEdit(edit).ok())
          << "seed " << seed << " step " << step << " path " << edit.path;
    }
    auto inc = session.Rematch();
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    auto ref = scratch.Match(session.source(), session.target());
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ExpectIdenticalResults(**inc, *ref,
                    "seed " + std::to_string(seed) + " step " +
                        std::to_string(step));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

CupidConfig SingleThreaded() {
  CupidConfig config;
  config.SetNumThreads(1);
  return config;
}

TEST(MatchSessionPropertyTest, EditStreamBitIdenticalSingleThread) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    RunEditStream(SingleThreaded(), seed, 12);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(MatchSessionPropertyTest, EditStreamBitIdenticalMultiThread) {
  CupidConfig config;
  config.SetNumThreads(4);
  RunEditStream(config, 11, 12);
}

TEST(MatchSessionPropertyTest, EditStreamBitIdenticalStrongLinkCache) {
  CupidConfig config = SingleThreaded();
  config.tree_match.use_strong_link_cache = true;
  RunEditStream(config, 21, 12);
}

TEST(MatchSessionPropertyTest, EditStreamBitIdenticalNaiveLinguistic) {
  // The session always runs the cached linguistic pipeline; a scratch run
  // configured with the naive reference path must still agree bit for bit.
  CupidConfig config = SingleThreaded();
  config.linguistic.use_perf_cache = false;
  RunEditStream(config, 31, 8);
}

TEST(MatchSessionPropertyTest, UnsupportedOptionsFallBackToFullRecompute) {
  CupidConfig config = SingleThreaded();
  config.tree_match.lazy_expansion = true;  // outside the warm-start subset
  SyntheticOptions opt;
  opt.num_elements = 40;
  opt.seed = 5;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();
  MatchSession session(&thesaurus, pair.source, pair.target, config);
  ASSERT_TRUE(session.Rematch().ok());
  ASSERT_TRUE(session
                  .ApplyEdit(SchemaEdit::RenameElement(
                      EditSide::kSource, session.source().PathName(1), "Qty"))
                  .ok());
  auto r = session.Rematch();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(session.last_stats().incremental);
  CupidMatcher scratch(&thesaurus, config);
  auto ref = scratch.Match(session.source(), session.target());
  ASSERT_TRUE(ref.ok());
  ExpectIdenticalResults(**r, *ref, "lazy-expansion fallback");
}

TEST(MatchSessionTest, SingleRenameUsesWarmStartAndReusesPairs) {
  SyntheticOptions opt;
  opt.num_elements = 80;
  opt.seed = 9;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();
  MatchSession session(&thesaurus, pair.source, pair.target,
                       SingleThreaded());
  ASSERT_TRUE(session.Rematch().ok());
  EXPECT_FALSE(session.last_stats().incremental);  // cold start

  ElementId leaf = kNoElement;
  for (ElementId id = 1; id < session.source().num_elements(); ++id) {
    if (session.source().IsLeaf(id)) leaf = id;
  }
  ASSERT_NE(leaf, kNoElement);
  ASSERT_TRUE(session
                  .ApplyEdit(SchemaEdit::RenameElement(
                      EditSide::kSource, session.source().PathName(leaf),
                      "RenamedLeaf"))
                  .ok());
  ASSERT_TRUE(session.Rematch().ok());
  EXPECT_TRUE(session.last_stats().incremental);
  EXPECT_GT(session.last_stats().tree_match.pairs_reused, 0);
  // Most of the name-level similarity table must have survived the edit.
  EXPECT_GT(session.last_stats().lsim_cached_pairs, 0);
}

TEST(MatchSessionTest, ServesCachedResultWhenUnedited) {
  SyntheticOptions opt;
  opt.num_elements = 30;
  opt.seed = 4;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();
  MatchSession session(&thesaurus, pair.source, pair.target,
                       SingleThreaded());
  auto r1 = session.Rematch();
  ASSERT_TRUE(r1.ok());
  auto r2 = session.Rematch();
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);  // same owned object, no recompute
}

TEST(MatchSessionTest, EditErrors) {
  Thesaurus thesaurus = DefaultThesaurus();
  SyntheticOptions opt;
  opt.num_elements = 20;
  opt.seed = 6;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  std::string root = pair.source.name();
  MatchSession session(&thesaurus, std::move(pair.source),
                       std::move(pair.target), SingleThreaded());

  EXPECT_FALSE(session
                   .ApplyEdit(SchemaEdit::RenameElement(
                       EditSide::kSource, "No.Such.Path", "X"))
                   .ok());
  EXPECT_FALSE(
      session.ApplyEdit(SchemaEdit::RemoveElement(EditSide::kSource, root))
          .ok());
  EXPECT_FALSE(session
                   .ApplyEdit(SchemaEdit::RenameElement(EditSide::kSource,
                                                        root, ""))
                   .ok());
  // RefInt elements cannot get reference edges through SchemaEdit, so
  // adding one must fail up front instead of detonating at Rematch.
  Element refint;
  refint.name = "DanglingRef";
  refint.kind = ElementKind::kRefInt;
  EXPECT_FALSE(
      session.ApplyEdit(SchemaEdit::AddElement(EditSide::kSource, root,
                                               std::move(refint)))
          .ok());
  // Errors must not have corrupted the schemas.
  EXPECT_TRUE(session.Rematch().ok());
}

TEST(MatchSessionTest, FailedRematchKeepsEditedSchemas) {
  SyntheticOptions opt;
  opt.num_elements = 20;
  opt.seed = 8;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();
  CupidConfig config = SingleThreaded();
  MatchSession session(&thesaurus, pair.source, pair.target, config);
  ASSERT_TRUE(session.Rematch().ok());

  std::string renamed = session.source().PathName(1);
  ASSERT_TRUE(session
                  .ApplyEdit(SchemaEdit::RenameElement(EditSide::kSource,
                                                       renamed, "Kept"))
                  .ok());
  // Sabotage the config so the next Rematch fails before matching.
  const_cast<CupidConfig&>(session.config()).tree_match.th_accept = 7.0;
  EXPECT_FALSE(session.Rematch().ok());
  // The queued edit must survive the failure...
  EXPECT_EQ(session.source().element(1).name, "Kept");
  // ...and a repaired config must pick it up.
  const_cast<CupidConfig&>(session.config()).tree_match.th_accept = 0.5;
  auto r = session.Rematch();
  ASSERT_TRUE(r.ok());
  CupidMatcher scratch(&thesaurus, session.config());
  auto ref = scratch.Match(session.source(), session.target());
  ASSERT_TRUE(ref.ok());
  ExpectIdenticalResults(**r, *ref, "post-failure rematch");
}

TEST(MatchSessionTest, JoinViewSchemasFallBackButStayCorrect) {
  // RDB-style schemas carry referential constraints; their trees get
  // join-view nodes, which the warm start conservatively refuses — results
  // must still match from-scratch exactly.
  Thesaurus thesaurus = RdbStarThesaurus();
  auto rdb = RdbSchema();
  auto star = StarSchema();
  ASSERT_TRUE(rdb.ok() && star.ok());
  CupidConfig config = SingleThreaded();
  MatchSession session(&thesaurus, *rdb, *star, config);
  ASSERT_TRUE(session.Rematch().ok());
  ASSERT_TRUE(session
                  .ApplyEdit(SchemaEdit::RenameElement(
                      EditSide::kSource, "RDB.Products.ProductName",
                      "ItemName"))
                  .ok());
  auto r = session.Rematch();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(session.last_stats().incremental);
  CupidMatcher scratch(&thesaurus, config);
  auto ref = scratch.Match(session.source(), session.target());
  ASSERT_TRUE(ref.ok());
  ExpectIdenticalResults(**r, *ref, "join-view fallback");
}

}  // namespace
}  // namespace cupid
