// Tests for mapping generation and rendering (src/mapping).

#include <gtest/gtest.h>

#include "linguistic/linguistic_matcher.h"
#include "mapping/mapping_generator.h"
#include "mapping/mapping_render.h"
#include "schema/schema_builder.h"
#include "structural/tree_match.h"
#include "thesaurus/default_thesaurus.h"
#include "tree/tree_builder.h"

namespace cupid {
namespace {

/// S1 has one "Amount" that matches two targets; exercises cardinality
/// policies.
struct MappingFixture {
  MappingFixture() {
    XmlSchemaBuilder b1("S1");
    ElementId box = b1.AddElement(b1.root(), "Pay");
    b1.AddAttribute(box, "Amount", DataType::kMoney);
    b1.AddAttribute(box, "Date", DataType::kDate);
    s1 = std::move(b1).Build();
    XmlSchemaBuilder b2("S2");
    ElementId box2 = b2.AddElement(b2.root(), "Pay");
    b2.AddAttribute(box2, "Amount", DataType::kMoney);
    b2.AddAttribute(box2, "AmountValue", DataType::kMoney);
    b2.AddAttribute(box2, "Date", DataType::kDate);
    s2 = std::move(b2).Build();

    thesaurus = DefaultThesaurus();
    LinguisticMatcher lm(&thesaurus, {});
    auto lres = lm.Match(s1, s2);
    t1 = BuildSchemaTree(s1).ValueOrDie();
    t2 = BuildSchemaTree(s2).ValueOrDie();
    result = TreeMatch(*t1, *t2, lres->lsim,
                       TypeCompatibilityTable::Default(), {})
                 .ValueOrDie();
    RecomputeNonLeafSimilarities(*t1, *t2, {}, &result.value());
  }

  Schema s1{"S1"}, s2{"S2"};
  Thesaurus thesaurus;
  std::optional<SchemaTree> t1, t2;
  std::optional<TreeMatchResult> result;
};

TEST(MappingGeneratorTest, OneToManyAllowsRepeatedSources) {
  MappingFixture f;
  MappingGeneratorOptions opt;
  opt.cardinality = MappingCardinality::kOneToMany;
  auto m = GenerateMapping(*f.t1, *f.t2, *f.result, opt);
  ASSERT_TRUE(m.ok());
  // S1.Pay.Amount maps to both S2 Amount-ish targets.
  EXPECT_TRUE(m->ContainsPair("S1.Pay.Amount", "S2.Pay.Amount"));
  EXPECT_TRUE(m->ContainsPair("S1.Pay.Amount", "S2.Pay.AmountValue"));
  EXPECT_TRUE(m->ContainsPair("S1.Pay.Date", "S2.Pay.Date"));
  EXPECT_EQ(m->ForTarget("S2.Pay.Amount").size(), 1u);
}

TEST(MappingGeneratorTest, OneToOneGreedyUsesEachEndpointOnce) {
  MappingFixture f;
  MappingGeneratorOptions opt;
  opt.cardinality = MappingCardinality::kOneToOneGreedy;
  auto m = GenerateMapping(*f.t1, *f.t2, *f.result, opt);
  ASSERT_TRUE(m.ok());
  std::set<std::string> sources, targets;
  for (const MappingElement& e : m->elements) {
    EXPECT_TRUE(sources.insert(e.source_path).second)
        << "source reused: " << e.source_path;
    EXPECT_TRUE(targets.insert(e.target_path).second)
        << "target reused: " << e.target_path;
  }
  // The exact-name pair wins over the affixed variant.
  EXPECT_TRUE(m->ContainsPair("S1.Pay.Amount", "S2.Pay.Amount"));
}

TEST(MappingGeneratorTest, OneToOneStableIsOneToOne) {
  MappingFixture f;
  MappingGeneratorOptions opt;
  opt.cardinality = MappingCardinality::kOneToOneStable;
  auto m = GenerateMapping(*f.t1, *f.t2, *f.result, opt);
  ASSERT_TRUE(m.ok());
  std::set<std::string> sources, targets;
  for (const MappingElement& e : m->elements) {
    EXPECT_TRUE(sources.insert(e.source_path).second);
    EXPECT_TRUE(targets.insert(e.target_path).second);
    EXPECT_GE(e.wsim, opt.th_accept);
  }
  EXPECT_TRUE(m->ContainsPair("S1.Pay.Amount", "S2.Pay.Amount"));
}

TEST(MappingGeneratorTest, StableHasNoBlockingPair) {
  MappingFixture f;
  MappingGeneratorOptions opt;
  opt.cardinality = MappingCardinality::kOneToOneStable;
  auto m = GenerateMapping(*f.t1, *f.t2, *f.result, opt);
  ASSERT_TRUE(m.ok());
  const NodeSimilarities& sims = f.result->sims;
  // For every matched pair (s,t) and every other matched pair (s',t'):
  // not (wsim(s,t') > wsim(s,t) and wsim(s,t') > wsim(s',t')).
  for (const MappingElement& e1 : m->elements) {
    for (const MappingElement& e2 : m->elements) {
      if (e1.source == e2.source) continue;
      double cross = sims.wsim(e1.source, e2.target);
      if (cross < opt.th_accept) continue;
      EXPECT_FALSE(cross > e1.wsim && cross > e2.wsim)
          << "blocking pair: " << e1.source_path << " prefers "
          << e2.target_path;
    }
  }
}

TEST(MappingGeneratorTest, ThresholdFiltersWeakPairs) {
  MappingFixture f;
  MappingGeneratorOptions strict;
  strict.th_accept = 0.99;
  auto m = GenerateMapping(*f.t1, *f.t2, *f.result, strict);
  ASSERT_TRUE(m.ok());
  for (const MappingElement& e : m->elements) {
    EXPECT_GE(e.wsim, 0.99);
  }
  MappingGeneratorOptions invalid;
  invalid.th_accept = 1.5;
  EXPECT_TRUE(GenerateMapping(*f.t1, *f.t2, *f.result, invalid)
                  .status()
                  .IsInvalidArgument());
}

TEST(MappingGeneratorTest, ScopeSelectsLevels) {
  MappingFixture f;
  MappingGeneratorOptions leaves;
  leaves.scope = MappingScope::kLeaves;
  MappingGeneratorOptions nonleaves;
  nonleaves.scope = MappingScope::kNonLeaves;
  auto ml = GenerateMapping(*f.t1, *f.t2, *f.result, leaves);
  auto mn = GenerateMapping(*f.t1, *f.t2, *f.result, nonleaves);
  ASSERT_TRUE(ml.ok());
  ASSERT_TRUE(mn.ok());
  for (const MappingElement& e : ml->elements) {
    EXPECT_TRUE(f.t1->IsLeaf(e.source));
    EXPECT_TRUE(f.t2->IsLeaf(e.target));
  }
  for (const MappingElement& e : mn->elements) {
    EXPECT_FALSE(f.t1->IsLeaf(e.source));
    EXPECT_FALSE(f.t2->IsLeaf(e.target));
  }
  EXPECT_TRUE(mn->ContainsPair("S1.Pay", "S2.Pay"));
}

// ---------------------------------------------------------------- render --

TEST(MappingRenderTest, TextFormat) {
  Mapping m;
  m.source_schema = "A";
  m.target_schema = "B";
  m.elements.push_back({0, 0, "A.x", "B.y", 0.75, 0.5, 1.0});
  std::string text = RenderMappingText(m);
  EXPECT_NE(text.find("Mapping A -> B (1 elements)"), std::string::npos);
  EXPECT_NE(text.find("A.x -> B.y"), std::string::npos);
  EXPECT_NE(text.find("wsim=0.750"), std::string::npos);
}

TEST(MappingRenderTest, JsonEscapesAndStructure) {
  Mapping m;
  m.source_schema = "A\"quote";
  m.target_schema = "B";
  m.elements.push_back({0, 0, "A.x", "B.y", 0.75, 0.5, 1.0});
  std::string json = RenderMappingJson(m);
  EXPECT_NE(json.find("\\\"quote"), std::string::npos);
  EXPECT_NE(json.find("\"elements\": ["), std::string::npos);
  EXPECT_NE(json.find("\"wsim\": 0.750000"), std::string::npos);
}

TEST(MappingTest, HelpersWork) {
  Mapping m;
  m.elements.push_back({0, 0, "a", "b", 1, 1, 1});
  m.elements.push_back({0, 0, "c", "b", 1, 1, 1});
  EXPECT_TRUE(m.ContainsPair("a", "b"));
  EXPECT_FALSE(m.ContainsPair("a", "c"));
  EXPECT_EQ(m.ForTarget("b").size(), 2u);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_FALSE(m.empty());
}

}  // namespace
}  // namespace cupid
