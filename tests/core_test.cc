// Tests for the CupidMatcher facade and CupidConfig (src/core).

#include <gtest/gtest.h>

#include <set>

#include "core/config.h"
#include "core/cupid_matcher.h"
#include "eval/datasets.h"
#include "schema/schema_builder.h"
#include "thesaurus/default_thesaurus.h"

namespace cupid {
namespace {

TEST(CupidConfigTest, DefaultsValidate) {
  CupidConfig c;
  EXPECT_TRUE(c.Validate().ok());
}

TEST(CupidConfigTest, RejectsOutOfRangeParameters) {
  CupidConfig c;
  c.linguistic.thns = -0.1;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = CupidConfig{};
  c.tree_match.th_accept = 0.9;  // above th_high 0.6
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = CupidConfig{};
  c.mapping.th_accept = 2.0;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
  c = CupidConfig{};
  c.initial_mapping_boost = 1.5;
  EXPECT_TRUE(c.Validate().IsInvalidArgument());
}

TEST(CupidConfigTest, DescribeParametersListsTable1) {
  std::string text = DescribeParameters(CupidConfig{});
  for (const char* param : {"thns", "thhigh", "thlow", "cinc", "cdec",
                            "thaccept", "wstruct"}) {
    EXPECT_NE(text.find(param), std::string::npos) << param;
  }
}

TEST(CupidMatcherTest, InvalidConfigFailsMatch) {
  Thesaurus th;
  CupidConfig c;
  c.tree_match.c_inc = 0.0;
  CupidMatcher m(&th, c);
  Schema a("A"), b("B");
  EXPECT_TRUE(m.Match(a, b).status().IsInvalidArgument());
}

TEST(CupidMatcherTest, EmptySchemasProduceEmptyMapping) {
  Thesaurus th;
  CupidMatcher m(&th);
  Schema a("A"), b("B");
  auto r = m.Match(a, b);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->leaf_mapping.empty());
}

TEST(CupidMatcherTest, WsimByPathAndBestTarget) {
  Dataset d = Fig2Dataset();
  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(d.source, d.target);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->WsimByPath("PO.POLines.Item.Qty",
                          "PurchaseOrder.Items.Item.Quantity"),
            0.9);
  EXPECT_DOUBLE_EQ(r->WsimByPath("PO.Nope", "PurchaseOrder"), 0.0);
  EXPECT_EQ(r->BestTargetFor("PO.POLines.Item.Qty"),
            "PurchaseOrder.Items.Item.Quantity");
  EXPECT_EQ(r->BestTargetFor("PO.Nope"), "");
}

TEST(CupidMatcherTest, InitialMappingBoostsPair) {
  // Two unrelated names that an initial mapping pins together (Section 8.4).
  Dataset d = Fig2Dataset();
  Thesaurus th;  // empty thesaurus: Qty/Quantity no longer obviously equal
  CupidMatcher m(&th);

  auto plain = m.Match(d.source, d.target);
  ASSERT_TRUE(plain.ok());
  double before = plain->WsimByPath("PO.POLines.Item.UoM",
                                    "PurchaseOrder.Items.Item.UnitOfMeasure");

  InitialMapping hints{{"PO.POLines.Item.UoM",
                        "PurchaseOrder.Items.Item.UnitOfMeasure"}};
  auto hinted = m.Match(d.source, d.target, hints);
  ASSERT_TRUE(hinted.ok());
  double after = hinted->WsimByPath(
      "PO.POLines.Item.UoM", "PurchaseOrder.Items.Item.UnitOfMeasure");
  EXPECT_GT(after, before);
  EXPECT_TRUE(hinted->leaf_mapping.ContainsPair(
      "PO.POLines.Item.UoM", "PurchaseOrder.Items.Item.UnitOfMeasure"));
}

TEST(CupidMatcherTest, InitialMappingWithBadPathFails) {
  Dataset d = Fig2Dataset();
  Thesaurus th;
  CupidMatcher m(&th);
  InitialMapping bad{{"PO.DoesNotExist", "PurchaseOrder.Items"}};
  EXPECT_TRUE(m.Match(d.source, d.target, bad).status().IsNotFound());
  InitialMapping bad2{{"PO.POLines", "PurchaseOrder.DoesNotExist"}};
  EXPECT_TRUE(m.Match(d.source, d.target, bad2).status().IsNotFound());
}

TEST(CupidMatcherTest, UserCorrectionLoopImprovesMapping) {
  // Section 8.4: "The user can make corrections to a generated result map,
  // and then re-run the match with the corrected input map".
  Dataset d = std::move(*CanonicalExample(3));
  Thesaurus th;  // no affix tolerance from the thesaurus
  CupidMatcher m(&th);
  auto first = m.Match(d.source, d.target);
  ASSERT_TRUE(first.ok());

  // The user pins one correspondence; reinforcement should not lose the
  // previously found ones.
  InitialMapping corrections{
      {"Schema1.Customer.Address", "Schema2.Customer.StreetAddress"}};
  auto second = m.Match(d.source, d.target, corrections);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->leaf_mapping.ContainsPair(
      "Schema1.Customer.Address", "Schema2.Customer.StreetAddress"));
  EXPECT_GE(second->leaf_mapping.size(), first->leaf_mapping.size());
}

TEST(CupidMatcherTest, CyclicSchemaReportsCycle) {
  XmlSchemaBuilder b("S");
  ElementId t = b.AddComplexType("T");
  ElementId child = b.AddElement(t, "Child");
  b.SetType(child, t);
  ElementId e = b.AddElement(b.root(), "E");
  b.SetType(e, t);
  Schema cyclic = std::move(b).Build();
  Schema plain("Flat");

  Thesaurus th;
  CupidMatcher m(&th);
  EXPECT_TRUE(m.Match(cyclic, plain).status().IsCycleDetected());
  EXPECT_TRUE(m.Match(plain, cyclic).status().IsCycleDetected());
}

TEST(CupidMatcherTest, MappingCardinalityConfigurable) {
  Dataset d = Fig2Dataset();
  Thesaurus th = DefaultThesaurus();
  CupidConfig cfg;
  cfg.mapping.cardinality = MappingCardinality::kOneToOneStable;
  CupidMatcher m(&th, cfg);
  auto r = m.Match(d.source, d.target);
  ASSERT_TRUE(r.ok());
  std::set<std::string> sources;
  for (const auto& e : r->leaf_mapping.elements) {
    EXPECT_TRUE(sources.insert(e.source_path).second);
  }
}

}  // namespace
}  // namespace cupid
