// Tests for src/service/corpus_search.h: the ranked one-vs-N search must be
// bit-identical to an exhaustive per-pair CupidMatcher sweep — same order,
// same scores — no matter how it is executed (serial, sharded over a
// scheduler, shared LsimCache on or off, admission-rejected inline
// fallback), repeated searches must be bit-identical, pruning must keep the
// planted best match, and out-of-domain requests must be rejected loudly.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/cupid_matcher.h"
#include "eval/synthetic.h"
#include "obs/metrics.h"
#include "service/corpus_search.h"
#include "service/job_scheduler.h"
#include "service/match_service.h"
#include "service/schema_repository.h"
#include "thesaurus/default_thesaurus.h"

namespace cupid {
namespace {

SyntheticCorpusOptions SmallCorpusOptions() {
  SyntheticCorpusOptions opt;
  opt.num_targets = 24;
  opt.source_elements = 50;
  opt.min_target_elements = 30;
  opt.max_target_elements = 70;
  opt.seed = 7;
  return opt;
}

/// Registers the corpus in `repo`; the probe goes in as "probe".
void RegisterCorpus(const SyntheticCorpus& corpus, SchemaRepository* repo) {
  ASSERT_TRUE(repo->Register("probe", corpus.source).ok());
  for (size_t i = 0; i < corpus.targets.size(); ++i) {
    ASSERT_TRUE(repo->Register(corpus.names[i], corpus.targets[i]).ok());
  }
}

/// The reference ranking: full CupidMatcher::Match against every stored
/// schema, scored and ordered with the public helpers the service uses.
std::vector<SearchHit> NaiveSweep(const Thesaurus* thesaurus,
                                  const CupidConfig& config,
                                  SchemaRepository* repo,
                                  const std::string& source_name,
                                  int top_k) {
  std::vector<SearchHit> hits;
  CupidMatcher matcher(thesaurus, config);
  auto source = repo->Resolve(source_name);
  EXPECT_TRUE(source.ok());
  for (const std::string& name : repo->Names()) {
    if (name == source_name) continue;
    auto target = repo->Resolve(name);
    EXPECT_TRUE(target.ok());
    auto result = matcher.Match(*source->schema, *target->schema);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    SearchHit hit;
    hit.target = name;
    hit.target_version = target->version;
    hit.score = CorpusRankingScore(*result);
    hit.leaf_elements = static_cast<int64_t>(result->leaf_mapping.size());
    hits.push_back(std::move(hit));
  }
  std::sort(hits.begin(), hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.target != b.target) return a.target < b.target;
              return a.target_version < b.target_version;
            });
  if (hits.size() > static_cast<size_t>(top_k)) {
    hits.resize(static_cast<size_t>(top_k));
  }
  return hits;
}

void ExpectHitsEqual(const std::vector<SearchHit>& got,
                     const std::vector<SearchHit>& want,
                     const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].target, want[i].target) << context << " [" << i << "]";
    EXPECT_EQ(got[i].target_version, want[i].target_version)
        << context << " [" << i << "]";
    // Bitwise score equality: the search pipeline must reproduce the naive
    // sweep's doubles exactly, not approximately.
    EXPECT_EQ(got[i].score, want[i].score) << context << " [" << i << "]";
    EXPECT_EQ(got[i].leaf_elements, want[i].leaf_elements)
        << context << " [" << i << "]";
  }
}

TEST(CorpusSearch, ExhaustiveEqualsNaiveSweepAcrossExecutionModes) {
  Thesaurus thesaurus = DefaultThesaurus();
  SyntheticCorpus corpus = GenerateSyntheticCorpus(SmallCorpusOptions());
  SchemaRepository repo;
  RegisterCorpus(corpus, &repo);

  SearchRequest request;
  request.source = "probe";
  request.top_k = 10;
  request.exhaustive = true;

  std::vector<SearchHit> want = NaiveSweep(&thesaurus, request.config, &repo,
                                           "probe", request.top_k);

  for (bool shared_cache : {false, true}) {
    for (int threads : {0, 1, 4}) {  // 0 = no scheduler (serial path)
      MatchService match_service(&thesaurus, &repo);
      std::unique_ptr<JobScheduler> scheduler;
      if (threads > 0) {
        JobScheduler::Options sched_opt;
        sched_opt.num_threads = threads;
        scheduler = std::make_unique<JobScheduler>(&match_service, sched_opt);
      }
      CorpusSearchService::Options opt;
      opt.share_lsim_cache = shared_cache;
      CorpusSearchService search(&thesaurus, &repo, scheduler.get(), opt);

      auto response = search.Search(request);
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      std::string context = std::string("shared_cache=") +
                            (shared_cache ? "1" : "0") +
                            " threads=" + std::to_string(threads);
      EXPECT_EQ(response->candidates_total,
                static_cast<int64_t>(corpus.targets.size()))
          << context;
      EXPECT_EQ(response->candidates_pruned, 0) << context;
      EXPECT_EQ(response->full_matches, response->candidates_total)
          << context;
      EXPECT_EQ(response->shared_cache, shared_cache) << context;
      ExpectHitsEqual(response->hits, want, context);
    }
  }
}

TEST(CorpusSearch, RepeatedSearchesAreBitIdentical) {
  Thesaurus thesaurus = DefaultThesaurus();
  SyntheticCorpus corpus = GenerateSyntheticCorpus(SmallCorpusOptions());
  SchemaRepository repo;
  RegisterCorpus(corpus, &repo);

  MatchService match_service(&thesaurus, &repo);
  JobScheduler::Options sched_opt;
  sched_opt.num_threads = 4;
  JobScheduler scheduler(&match_service, sched_opt);
  CorpusSearchService search(&thesaurus, &repo, &scheduler);

  SearchRequest request;
  request.source = "probe";
  request.top_k = 8;

  auto first = search.Search(request);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The second and third searches serve name-pair work from the warmed
  // shared cache (first run filled it); results must not move by a bit.
  for (int run = 0; run < 2; ++run) {
    auto again = search.Search(request);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ExpectHitsEqual(again->hits, first->hits,
                    "repeat run " + std::to_string(run));
    EXPECT_EQ(again->candidates_pruned, first->candidates_pruned);
    EXPECT_EQ(again->full_matches, first->full_matches);
  }
}

/// Default-registry value of a corpus counter (0 before first use).
int64_t CorpusCounter(const std::string& name) {
  for (const obs::MetricSnapshot& m :
       obs::MetricsRegistry::Default()->Snapshot()) {
    if (m.name == name) return m.value;
  }
  return 0;
}

TEST(CorpusSearch, PrunedSearchKeepsThePlantedBestMatch) {
  Thesaurus thesaurus = DefaultThesaurus();
  SyntheticCorpusOptions opt = SmallCorpusOptions();
  opt.num_targets = 40;
  SyntheticCorpus corpus = GenerateSyntheticCorpus(opt);
  ASSERT_EQ(corpus.closest_target, 0);
  SchemaRepository repo;
  RegisterCorpus(corpus, &repo);
  CorpusSearchService search(&thesaurus, &repo);

  SearchRequest exhaustive;
  exhaustive.source = "probe";
  exhaustive.top_k = 5;
  exhaustive.exhaustive = true;
  auto full = search.Search(exhaustive);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_FALSE(full->hits.empty());

  SearchRequest pruned = exhaustive;
  pruned.exhaustive = false;
  pruned.prune = true;
  pruned.prune_fraction = 0.2;
  pruned.prune_min_keep = 5;
  const int64_t searches_before = CorpusCounter("cupid.corpus.searches");
  const int64_t pruned_before = CorpusCounter("cupid.corpus.candidates_pruned");
  const int64_t matched_before =
      CorpusCounter("cupid.corpus.candidates_matched");
  auto quick = search.Search(pruned);
  ASSERT_TRUE(quick.ok()) << quick.status().ToString();
  ASSERT_FALSE(quick->hits.empty());

  // The screen must actually prune...
  EXPECT_GT(quick->candidates_pruned, 0);
  EXPECT_LT(quick->full_matches, quick->candidates_total);
  // ...and the registry counters must advance by exactly what the
  // response reports (the metrics endpoint and the API tell one story).
  EXPECT_EQ(CorpusCounter("cupid.corpus.searches") - searches_before, 1);
  EXPECT_EQ(CorpusCounter("cupid.corpus.candidates_pruned") - pruned_before,
            quick->candidates_pruned);
  EXPECT_EQ(CorpusCounter("cupid.corpus.candidates_matched") - matched_before,
            quick->full_matches);
  // ...while keeping the overall best hit: top-1 equality with the
  // exhaustive ranking (the property the CI corpus smoke also gates).
  EXPECT_EQ(quick->hits[0].target, full->hits[0].target);
  EXPECT_EQ(quick->hits[0].score, full->hits[0].score);
  // Every pruned hit must appear in the exhaustive ranking with an
  // identical score (pruning changes the candidate set, never a score).
  for (const SearchHit& hit : quick->hits) {
    auto it = std::find_if(full->hits.begin(), full->hits.end(),
                           [&](const SearchHit& h) {
                             return h.target == hit.target;
                           });
    if (it != full->hits.end()) {
      EXPECT_EQ(hit.score, it->score) << hit.target;
    }
  }
  // The planted least-mutated relative is the expected winner.
  EXPECT_EQ(full->hits[0].target, corpus.names[0]);
}

TEST(CorpusSearch, RequestValidationRejectsOutOfDomainKnobs) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("probe", Schema("Probe")).ok());
  CorpusSearchService search(&thesaurus, &repo);

  SearchRequest ok_request;
  ok_request.source = "probe";

  SearchRequest bad = ok_request;
  bad.top_k = 0;
  EXPECT_TRUE(search.Search(bad).status().IsInvalidArgument());
  bad = ok_request;
  bad.top_k = -3;
  EXPECT_TRUE(search.Search(bad).status().IsInvalidArgument());
  bad = ok_request;
  bad.prune_fraction = 1.5;
  EXPECT_TRUE(search.Search(bad).status().IsInvalidArgument());
  bad = ok_request;
  bad.prune_fraction = -0.1;
  EXPECT_TRUE(search.Search(bad).status().IsInvalidArgument());
  bad = ok_request;
  bad.prune_min_keep = -1;
  EXPECT_TRUE(search.Search(bad).status().IsInvalidArgument());
  bad = ok_request;
  bad.source.clear();
  EXPECT_TRUE(search.Search(bad).status().IsInvalidArgument());

  // Unknown probe name surfaces as NotFound from the repository.
  bad = ok_request;
  bad.source = "nope";
  EXPECT_TRUE(search.Search(bad).status().IsNotFound());
}

TEST(CorpusSearch, ServiceOptionsValidationRejectsNegativeCapacities) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("a", Schema("A")).ok());
  ASSERT_TRUE(repo.Register("b", Schema("B")).ok());

  MatchService::Options bad_options;
  bad_options.result_cache_capacity = -1;
  MatchService service(&thesaurus, &repo, bad_options);
  MatchRequest request;
  request.source = "a";
  request.target = "b";
  EXPECT_TRUE(service.Match(request).status().IsInvalidArgument());

  bad_options = MatchService::Options();
  bad_options.session_capacity = -7;
  MatchService service2(&thesaurus, &repo, bad_options);
  EXPECT_TRUE(service2.Match(request).status().IsInvalidArgument());
}

TEST(CorpusSearch, QueueFullInlineFallbackStaysDeterministic) {
  Thesaurus thesaurus = DefaultThesaurus();
  SyntheticCorpusOptions opt = SmallCorpusOptions();
  opt.num_targets = 12;
  SyntheticCorpus corpus = GenerateSyntheticCorpus(opt);
  SchemaRepository repo;
  RegisterCorpus(corpus, &repo);

  SearchRequest request;
  request.source = "probe";
  request.top_k = 6;
  request.exhaustive = true;

  // Reference: no scheduler at all.
  CorpusSearchService serial(&thesaurus, &repo);
  auto want = serial.Search(request);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  // A scheduler with a tiny admission bound: most submissions bounce with
  // OutOfRange and run inline on the coordinator — results must not move.
  MatchService match_service(&thesaurus, &repo);
  JobScheduler::Options sched_opt;
  sched_opt.num_threads = 2;
  sched_opt.max_pending = 1;
  JobScheduler scheduler(&match_service, sched_opt);
  CorpusSearchService tiny(&thesaurus, &repo, &scheduler);
  auto got = tiny.Search(request);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectHitsEqual(got->hits, want->hits, "tiny admission bound");
}

TEST(CorpusSearch, ResponseJsonCarriesScoresAndCounts) {
  Thesaurus thesaurus = DefaultThesaurus();
  SyntheticCorpusOptions opt = SmallCorpusOptions();
  opt.num_targets = 6;
  SyntheticCorpus corpus = GenerateSyntheticCorpus(opt);
  SchemaRepository repo;
  RegisterCorpus(corpus, &repo);
  CorpusSearchService search(&thesaurus, &repo);

  SearchRequest request;
  request.source = "probe";
  request.top_k = 3;
  request.exhaustive = true;
  auto response = search.Search(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  std::string json = response->ToJson();
  EXPECT_NE(json.find("\"source\":\"probe\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"candidates_total\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hits\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"score\":"), std::string::npos) << json;
}

}  // namespace
}  // namespace cupid
