// Integration tests over the shipped data files (data/): the file-based
// loaders must reproduce the programmatically built datasets, and the
// end-to-end file workflow (the cupid_cli path) must work.

#include <gtest/gtest.h>

#include <string>

#include "core/cupid_matcher.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "importers/dtd_parser.h"
#include "importers/native_format.h"
#include "importers/sql_ddl_parser.h"
#include "importers/xml_schema_loader.h"
#include "schema/schema_printer.h"
#include "thesaurus/thesaurus_io.h"

#ifndef CUPID_DATA_DIR
#define CUPID_DATA_DIR "data"
#endif

namespace cupid {
namespace {

std::string DataPath(const char* file) {
  return std::string(CUPID_DATA_DIR) + "/" + file;
}

TEST(DataFilesTest, CidxFileMatchesBuiltInDataset) {
  auto from_file = LoadXmlSchemaFile(DataPath("cidx.xml"));
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  auto built_in = CidxSchema();
  ASSERT_TRUE(built_in.ok());
  EXPECT_EQ(PrintSchema(*from_file), PrintSchema(*built_in));
}

TEST(DataFilesTest, ExcelFileMatchesBuiltInDataset) {
  auto from_file = LoadXmlSchemaFile(DataPath("excel.xml"));
  ASSERT_TRUE(from_file.ok()) << from_file.status().ToString();
  auto built_in = ExcelSchema();
  ASSERT_TRUE(built_in.ok());
  EXPECT_EQ(PrintSchema(*from_file), PrintSchema(*built_in));
}

TEST(DataFilesTest, SqlFilesMatchBuiltInDatasets) {
  auto rdb = LoadSqlDdlFile(DataPath("rdb.sql"));
  ASSERT_TRUE(rdb.ok()) << rdb.status().ToString();
  auto star = LoadSqlDdlFile(DataPath("star.sql"));
  ASSERT_TRUE(star.ok()) << star.status().ToString();
  // The file loader names the schema after the file stem ("rdb"), the
  // built-in dataset uses "RDB"; compare below the root line.
  auto below_root = [](const std::string& printed) {
    return printed.substr(printed.find('\n') + 1);
  };
  EXPECT_EQ(below_root(PrintSchema(*rdb)),
            below_root(PrintSchema(*RdbSchema())));
  EXPECT_EQ(below_root(PrintSchema(*star)),
            below_root(PrintSchema(*StarSchema())));
  EXPECT_EQ(PrintSchemaEdges(*rdb), PrintSchemaEdges(*RdbSchema()));
}

TEST(DataFilesTest, NativeFilesMatchFig2) {
  auto po = LoadNativeSchemaFile(DataPath("po.cupid"));
  ASSERT_TRUE(po.ok()) << po.status().ToString();
  auto purchase_order =
      LoadNativeSchemaFile(DataPath("purchase_order.cupid"));
  ASSERT_TRUE(purchase_order.ok()) << purchase_order.status().ToString();
  // Structure equals the built-in Figure 2 datasets up to the shared-type
  // naming; spot-check the essential paths.
  EXPECT_NE(po->FindByPath("PO.POLines.Item.Qty"), kNoElement);
  EXPECT_NE(purchase_order->FindByPath("PurchaseOrder.Items.Item.Quantity"),
            kNoElement);
}

TEST(DataFilesTest, ThesaurusFileIsThePaperInput) {
  auto th = LoadThesaurus(DataPath("cidx_excel.thesaurus"));
  ASSERT_TRUE(th.ok()) << th.status().ToString();
  EXPECT_EQ(th->num_abbreviations(), 4u);
  EXPECT_EQ(th->num_relation_entries(), 2u);
  EXPECT_DOUBLE_EQ(th->Relationship("invoice", "bill"), 1.0);
}

TEST(DataFilesTest, DtdFileLoadsWithRefInt) {
  auto dtd = LoadDtdFile(DataPath("order.dtd"));
  ASSERT_TRUE(dtd.ok()) << dtd.status().ToString();
  EXPECT_EQ(dtd->ElementsOfKind(ElementKind::kRefInt).size(), 1u);
  EXPECT_EQ(dtd->ElementsOfKind(ElementKind::kKey).size(), 1u);
  EXPECT_NE(dtd->FindByPath("order.order.orderline.qty"), kNoElement);
}

TEST(DataFilesTest, EndToEndFileWorkflow) {
  // The cupid_cli pipeline, from files to quality numbers.
  auto cidx = LoadXmlSchemaFile(DataPath("cidx.xml"));
  auto excel = LoadXmlSchemaFile(DataPath("excel.xml"));
  auto th = LoadThesaurus(DataPath("cidx_excel.thesaurus"));
  ASSERT_TRUE(cidx.ok() && excel.ok() && th.ok());

  CupidMatcher matcher(&*th);
  auto r = matcher.Match(*cidx, *excel);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  auto gold = CidxExcelDataset();
  ASSERT_TRUE(gold.ok());
  MatchQuality q = Evaluate(r->leaf_mapping, gold->gold);
  EXPECT_DOUBLE_EQ(q.recall(), 1.0) << FormatQuality(q);
}

}  // namespace
}  // namespace cupid
