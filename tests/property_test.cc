// Property-based tests: invariants of the matching pipeline checked across
// parameterized sweeps of synthetic schemas and configurations.

#include <gtest/gtest.h>

#include "core/cupid_matcher.h"
#include "eval/metrics.h"
#include "eval/synthetic.h"
#include "linguistic/linguistic_matcher.h"
#include "structural/tree_match.h"
#include "thesaurus/default_thesaurus.h"
#include "tree/tree_builder.h"

namespace cupid {
namespace {

// ------------------------------------------------- self-match is perfect --

class SelfMatchProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(SelfMatchProperty, SchemaMatchedAgainstItselfIsPerfect) {
  SyntheticOptions opt;
  opt.num_elements = 50;
  opt.seed = GetParam();
  // Identity pair: no mutations at all.
  opt.rename_probability = 0.0;
  opt.type_change_probability = 0.0;
  opt.flatten_probability = 0.0;
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(p.source, p.target);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  MatchQuality q = Evaluate(r->leaf_mapping, p.gold);
  // Near-perfect, not exactly perfect: token-set name similarity is
  // order-insensitive, so anagram names at different depths ("DateStatus"
  // vs a nested "StatusDate") can legitimately outscore the aligned pair.
  EXPECT_GE(q.recall(), 0.95) << "seed " << GetParam() << ": "
                              << FormatQuality(q);
  EXPECT_GE(q.precision(), 0.9) << "seed " << GetParam() << ": "
                                << FormatQuality(q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfMatchProperty,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ----------------------------------------- similarity values stay in [0,1] --

class RangeProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(RangeProperty, AllSimilaritiesWithinUnitInterval) {
  SyntheticOptions opt;
  opt.num_elements = 40;
  opt.seed = GetParam();
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  LinguisticMatcher lm(&th, {});
  auto lres = lm.Match(p.source, p.target);
  ASSERT_TRUE(lres.ok());
  for (ElementId a = 0; a < p.source.num_elements(); ++a) {
    for (ElementId b = 0; b < p.target.num_elements(); ++b) {
      EXPECT_GE(lres->lsim(a, b), 0.0f);
      EXPECT_LE(lres->lsim(a, b), 1.0f);
    }
  }
  auto t1 = BuildSchemaTree(p.source).ValueOrDie();
  auto t2 = BuildSchemaTree(p.target).ValueOrDie();
  auto r = TreeMatch(t1, t2, lres->lsim, TypeCompatibilityTable::Default(),
                     {});
  ASSERT_TRUE(r.ok());
  for (TreeNodeId a = 0; a < t1.num_nodes(); ++a) {
    for (TreeNodeId b = 0; b < t2.num_nodes(); ++b) {
      EXPECT_GE(r->sims.ssim(a, b), 0.0f);
      EXPECT_LE(r->sims.ssim(a, b), 1.0f);
      EXPECT_GE(r->sims.wsim(a, b), 0.0f);
      EXPECT_LE(r->sims.wsim(a, b), 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeProperty, testing::Values(4, 9, 16, 25));

// ------------------------------------------------ mapping postconditions --

struct CardinalityCase {
  MappingCardinality cardinality;
  uint64_t seed;
};

class MappingProperty : public testing::TestWithParam<CardinalityCase> {};

TEST_P(MappingProperty, AcceptanceThresholdAndCardinalityRespected) {
  SyntheticOptions opt;
  opt.num_elements = 45;
  opt.seed = GetParam().seed;
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  CupidConfig cfg;
  cfg.mapping.cardinality = GetParam().cardinality;
  CupidMatcher m(&th, cfg);
  auto r = m.Match(p.source, p.target);
  ASSERT_TRUE(r.ok());

  // Track node ids, not paths: the synthetic generator may produce
  // same-named siblings whose paths collide as strings.
  std::set<TreeNodeId> targets;
  std::set<TreeNodeId> sources;
  for (const MappingElement& e : r->leaf_mapping.elements) {
    EXPECT_GE(e.wsim, cfg.mapping.th_accept);
    EXPECT_TRUE(r->source_tree.IsLeaf(e.source));
    EXPECT_TRUE(r->target_tree.IsLeaf(e.target));
    // Target nodes are unique under every cardinality policy.
    EXPECT_TRUE(targets.insert(e.target).second) << e.target_path;
    if (GetParam().cardinality != MappingCardinality::kOneToMany) {
      EXPECT_TRUE(sources.insert(e.source).second) << e.source_path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MappingProperty,
    testing::Values(CardinalityCase{MappingCardinality::kOneToMany, 3},
                    CardinalityCase{MappingCardinality::kOneToOneGreedy, 3},
                    CardinalityCase{MappingCardinality::kOneToOneStable, 3},
                    CardinalityCase{MappingCardinality::kOneToMany, 17},
                    CardinalityCase{MappingCardinality::kOneToOneGreedy, 17},
                    CardinalityCase{MappingCardinality::kOneToOneStable, 17}));

// ---------------------------------------------- robustness to mutations --

class MutationProperty : public testing::TestWithParam<double> {};

TEST_P(MutationProperty, QualityDegradesGracefullyWithRenames) {
  // More renames should not crash and should keep F1 above a floor that a
  // pure name matcher could not sustain.
  SyntheticOptions opt;
  opt.num_elements = 60;
  opt.seed = 99;
  opt.rename_probability = GetParam();
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(p.source, p.target);
  ASSERT_TRUE(r.ok());
  MatchQuality q = Evaluate(r->leaf_mapping, p.gold);
  EXPECT_GE(q.recall(), 0.5) << "rename_p=" << GetParam() << " "
                             << FormatQuality(q);
}

INSTANTIATE_TEST_SUITE_P(RenameLevels, MutationProperty,
                         testing::Values(0.0, 0.2, 0.4, 0.6));

// ---------------------------------------- lazy expansion output equality --

class LazyProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(LazyProperty, LazyAndEagerLeafMappingsAgreeOnPlainTrees) {
  // Synthetic schemas have no shared types, so lazy expansion must be a
  // strict no-op.
  SyntheticOptions opt;
  opt.num_elements = 40;
  opt.seed = GetParam();
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  CupidConfig eager;
  CupidConfig lazy;
  lazy.tree_match.lazy_expansion = true;
  CupidMatcher me(&th, eager);
  CupidMatcher ml(&th, lazy);
  auto re = me.Match(p.source, p.target);
  auto rl = ml.Match(p.source, p.target);
  ASSERT_TRUE(re.ok());
  ASSERT_TRUE(rl.ok());
  ASSERT_EQ(re->leaf_mapping.size(), rl->leaf_mapping.size());
  for (size_t i = 0; i < re->leaf_mapping.size(); ++i) {
    EXPECT_EQ(re->leaf_mapping.elements[i].source_path,
              rl->leaf_mapping.elements[i].source_path);
    EXPECT_EQ(re->leaf_mapping.elements[i].target_path,
              rl->leaf_mapping.elements[i].target_path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyProperty, testing::Values(6, 7, 10));

// --------------------------------------------- threshold monotonicity ----

class ThresholdProperty : public testing::TestWithParam<double> {};

TEST_P(ThresholdProperty, HigherAcceptanceThresholdNeverAddsPairs) {
  SyntheticOptions opt;
  opt.num_elements = 50;
  opt.seed = 31;
  SyntheticPair p = GenerateSyntheticPair(opt);
  Thesaurus th = DefaultThesaurus();

  CupidConfig loose;
  loose.mapping.th_accept = 0.5;
  CupidConfig strict;
  strict.mapping.th_accept = GetParam();
  CupidMatcher m_loose(&th, loose);
  CupidMatcher m_strict(&th, strict);
  auto rl = m_loose.Match(p.source, p.target);
  auto rs = m_strict.Match(p.source, p.target);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LE(rs->leaf_mapping.size(), rl->leaf_mapping.size());
  // Every strict pair also appears in the loose mapping.
  for (const MappingElement& e : rs->leaf_mapping.elements) {
    EXPECT_TRUE(rl->leaf_mapping.ContainsPair(e.source_path, e.target_path));
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdProperty,
                         testing::Values(0.6, 0.7, 0.8, 0.9));

}  // namespace
}  // namespace cupid
