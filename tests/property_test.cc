// Property-based tests: invariants of the matching pipeline checked across
// parameterized sweeps of synthetic schemas and configurations.

#include <gtest/gtest.h>

#include <string>

#include "core/cupid_matcher.h"
#include "eval/metrics.h"
#include "eval/synthetic.h"
#include "incremental/match_session.h"
#include "linguistic/linguistic_matcher.h"
#include "structural/tree_match.h"
#include "tests/match_diff_testutil.h"
#include "thesaurus/default_thesaurus.h"
#include "tree/tree_builder.h"
#include "util/random.h"

namespace cupid {
namespace {

// ------------------------------------------------- self-match is perfect --

class SelfMatchProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(SelfMatchProperty, SchemaMatchedAgainstItselfIsPerfect) {
  SyntheticOptions opt;
  opt.num_elements = 50;
  opt.seed = GetParam();
  // Identity pair: no mutations at all.
  opt.rename_probability = 0.0;
  opt.type_change_probability = 0.0;
  opt.flatten_probability = 0.0;
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(p.source, p.target);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  MatchQuality q = Evaluate(r->leaf_mapping, p.gold);
  // Near-perfect, not exactly perfect: token-set name similarity is
  // order-insensitive, so anagram names at different depths ("DateStatus"
  // vs a nested "StatusDate") can legitimately outscore the aligned pair.
  EXPECT_GE(q.recall(), 0.95) << "seed " << GetParam() << ": "
                              << FormatQuality(q);
  EXPECT_GE(q.precision(), 0.9) << "seed " << GetParam() << ": "
                                << FormatQuality(q);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelfMatchProperty,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ----------------------------------------- similarity values stay in [0,1] --

class RangeProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(RangeProperty, AllSimilaritiesWithinUnitInterval) {
  SyntheticOptions opt;
  opt.num_elements = 40;
  opt.seed = GetParam();
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  LinguisticMatcher lm(&th, {});
  auto lres = lm.Match(p.source, p.target);
  ASSERT_TRUE(lres.ok());
  for (ElementId a = 0; a < p.source.num_elements(); ++a) {
    for (ElementId b = 0; b < p.target.num_elements(); ++b) {
      EXPECT_GE(lres->lsim(a, b), 0.0f);
      EXPECT_LE(lres->lsim(a, b), 1.0f);
    }
  }
  auto t1 = BuildSchemaTree(p.source).ValueOrDie();
  auto t2 = BuildSchemaTree(p.target).ValueOrDie();
  auto r = TreeMatch(t1, t2, lres->lsim, TypeCompatibilityTable::Default(),
                     {});
  ASSERT_TRUE(r.ok());
  for (TreeNodeId a = 0; a < t1.num_nodes(); ++a) {
    for (TreeNodeId b = 0; b < t2.num_nodes(); ++b) {
      EXPECT_GE(r->sims.ssim(a, b), 0.0f);
      EXPECT_LE(r->sims.ssim(a, b), 1.0f);
      EXPECT_GE(r->sims.wsim(a, b), 0.0f);
      EXPECT_LE(r->sims.wsim(a, b), 1.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeProperty, testing::Values(4, 9, 16, 25));

// ------------------------------------------------ mapping postconditions --

struct CardinalityCase {
  MappingCardinality cardinality;
  uint64_t seed;
};

class MappingProperty : public testing::TestWithParam<CardinalityCase> {};

TEST_P(MappingProperty, AcceptanceThresholdAndCardinalityRespected) {
  SyntheticOptions opt;
  opt.num_elements = 45;
  opt.seed = GetParam().seed;
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  CupidConfig cfg;
  cfg.mapping.cardinality = GetParam().cardinality;
  CupidMatcher m(&th, cfg);
  auto r = m.Match(p.source, p.target);
  ASSERT_TRUE(r.ok());

  // Track node ids, not paths: the synthetic generator may produce
  // same-named siblings whose paths collide as strings.
  std::set<TreeNodeId> targets;
  std::set<TreeNodeId> sources;
  for (const MappingElement& e : r->leaf_mapping.elements) {
    EXPECT_GE(e.wsim, cfg.mapping.th_accept);
    EXPECT_TRUE(r->source_tree.IsLeaf(e.source));
    EXPECT_TRUE(r->target_tree.IsLeaf(e.target));
    // Target nodes are unique under every cardinality policy.
    EXPECT_TRUE(targets.insert(e.target).second) << e.target_path;
    if (GetParam().cardinality != MappingCardinality::kOneToMany) {
      EXPECT_TRUE(sources.insert(e.source).second) << e.source_path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MappingProperty,
    testing::Values(CardinalityCase{MappingCardinality::kOneToMany, 3},
                    CardinalityCase{MappingCardinality::kOneToOneGreedy, 3},
                    CardinalityCase{MappingCardinality::kOneToOneStable, 3},
                    CardinalityCase{MappingCardinality::kOneToMany, 17},
                    CardinalityCase{MappingCardinality::kOneToOneGreedy, 17},
                    CardinalityCase{MappingCardinality::kOneToOneStable, 17}));

// ---------------------------------------------- robustness to mutations --

class MutationProperty : public testing::TestWithParam<double> {};

TEST_P(MutationProperty, QualityDegradesGracefullyWithRenames) {
  // More renames should not crash and should keep F1 above a floor that a
  // pure name matcher could not sustain.
  SyntheticOptions opt;
  opt.num_elements = 60;
  opt.seed = 99;
  opt.rename_probability = GetParam();
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(p.source, p.target);
  ASSERT_TRUE(r.ok());
  MatchQuality q = Evaluate(r->leaf_mapping, p.gold);
  EXPECT_GE(q.recall(), 0.5) << "rename_p=" << GetParam() << " "
                             << FormatQuality(q);
}

INSTANTIATE_TEST_SUITE_P(RenameLevels, MutationProperty,
                         testing::Values(0.0, 0.2, 0.4, 0.6));

// ---------------------------------------- lazy expansion output equality --

class LazyProperty : public testing::TestWithParam<uint64_t> {};

TEST_P(LazyProperty, LazyAndEagerLeafMappingsAgreeOnPlainTrees) {
  // Synthetic schemas have no shared types, so lazy expansion must be a
  // strict no-op.
  SyntheticOptions opt;
  opt.num_elements = 40;
  opt.seed = GetParam();
  SyntheticPair p = GenerateSyntheticPair(opt);

  Thesaurus th = DefaultThesaurus();
  CupidConfig eager;
  CupidConfig lazy;
  lazy.tree_match.lazy_expansion = true;
  CupidMatcher me(&th, eager);
  CupidMatcher ml(&th, lazy);
  auto re = me.Match(p.source, p.target);
  auto rl = ml.Match(p.source, p.target);
  ASSERT_TRUE(re.ok());
  ASSERT_TRUE(rl.ok());
  ASSERT_EQ(re->leaf_mapping.size(), rl->leaf_mapping.size());
  for (size_t i = 0; i < re->leaf_mapping.size(); ++i) {
    EXPECT_EQ(re->leaf_mapping.elements[i].source_path,
              rl->leaf_mapping.elements[i].source_path);
    EXPECT_EQ(re->leaf_mapping.elements[i].target_path,
              rl->leaf_mapping.elements[i].target_path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyProperty, testing::Values(6, 7, 10));

// --------------------------------------------- threshold monotonicity ----

class ThresholdProperty : public testing::TestWithParam<double> {};

TEST_P(ThresholdProperty, HigherAcceptanceThresholdNeverAddsPairs) {
  SyntheticOptions opt;
  opt.num_elements = 50;
  opt.seed = 31;
  SyntheticPair p = GenerateSyntheticPair(opt);
  Thesaurus th = DefaultThesaurus();

  CupidConfig loose;
  loose.mapping.th_accept = 0.5;
  CupidConfig strict;
  strict.mapping.th_accept = GetParam();
  CupidMatcher m_loose(&th, loose);
  CupidMatcher m_strict(&th, strict);
  auto rl = m_loose.Match(p.source, p.target);
  auto rs = m_strict.Match(p.source, p.target);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LE(rs->leaf_mapping.size(), rl->leaf_mapping.size());
  // Every strict pair also appears in the loose mapping.
  for (const MappingElement& e : rs->leaf_mapping.elements) {
    EXPECT_TRUE(rl->leaf_mapping.ContainsPair(e.source_path, e.target_path));
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdProperty,
                         testing::Values(0.6, 0.7, 0.8, 0.9));

// ------------------------------ incremental differential fuzz harness ----
//
// The gather/visit-list engine's contract: every warm Rematch is
// bit-identical to from-scratch matching — matrices AND mappings — under
// every cache combination (strong-link cache on/off, persistent lsim cache
// on/off) and at 1/N threads. Seeded random schemas take random 20-edit
// streams applied in batches of 1-3 edits per Rematch (incremental_test.cc
// covers the one-edit-per-rematch cadence), and the harness additionally
// asserts the gather fast paths actually engaged, so a silent fallback to
// the slow path cannot masquerade as coverage.

struct DiffCase {
  bool strong_link_cache;
  bool lsim_cache;  // persistent perf/lsim cache; off = naive reference
  int threads;
  uint64_t seed;
};

std::string DiffCaseName(const testing::TestParamInfo<DiffCase>& info) {
  const DiffCase& c = info.param;
  return std::string("sl") + (c.strong_link_cache ? "on" : "off") + "_lc" +
         (c.lsim_cache ? "on" : "off") + "_t" + std::to_string(c.threads) +
         "_seed" + std::to_string(c.seed);
}

class IncrementalDifferentialProperty
    : public testing::TestWithParam<DiffCase> {};

TEST_P(IncrementalDifferentialProperty, TwentyEditStreamBitIdentical) {
  const DiffCase& c = GetParam();
  CupidConfig config;
  config.SetNumThreads(c.threads);
  config.tree_match.use_strong_link_cache = c.strong_link_cache;
  config.linguistic.use_perf_cache = c.lsim_cache;

  SyntheticOptions opt;
  opt.num_elements = 55;
  opt.seed = c.seed;
  SyntheticPair pair = GenerateSyntheticPair(opt);
  Thesaurus thesaurus = DefaultThesaurus();

  MatchSession session(&thesaurus, pair.source, pair.target, config);
  CupidMatcher scratch(&thesaurus, config);
  SplitMix64 rng(c.seed * 104729 + 17);

  ASSERT_TRUE(session.Rematch().ok());
  bool gathered_lsim = false;
  bool warm_used = false;
  int edits_applied = 0;
  int step = 0;
  while (edits_applied < 20) {
    int batch = 1 + static_cast<int>(rng.NextBounded(3));
    for (int b = 0; b < batch && edits_applied < 20; ++b) {
      SchemaEdit edit = RandomSessionEdit(&rng, session.source(),
                                          session.target(), ++edits_applied);
      ASSERT_TRUE(session.ApplyEdit(edit).ok())
          << "seed " << c.seed << " edit " << edits_applied << " path "
          << edit.path;
    }
    auto inc = session.Rematch();
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    auto ref = scratch.Match(session.source(), session.target());
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    ExpectIdenticalResults(
        **inc, *ref,
        "seed " + std::to_string(c.seed) + " step " + std::to_string(++step) +
            " (edits " + std::to_string(edits_applied) + ")");
    if (::testing::Test::HasFatalFailure()) return;
    warm_used |= session.last_stats().incremental;
    gathered_lsim |= session.last_stats().lsim_gathered_rows > 0;
  }
  // The stream must have exercised the warm structural path, and — with the
  // persistent cache on — the lsim gather (copied rows on at least one
  // step). Otherwise the equality above proved nothing about the fast
  // paths under test.
  EXPECT_TRUE(warm_used) << "no Rematch took the incremental path";
  if (c.lsim_cache) {
    EXPECT_TRUE(gathered_lsim) << "no Rematch went down the lsim gather";
  }
}

INSTANTIATE_TEST_SUITE_P(
    CacheMatrix, IncrementalDifferentialProperty,
    testing::Values(
        // Every cache combination at one thread...
        DiffCase{false, false, 1, 101}, DiffCase{false, true, 1, 102},
        DiffCase{true, false, 1, 103}, DiffCase{true, true, 1, 104},
        // ...the full-cache and no-cache corners at N threads...
        DiffCase{true, true, 4, 105}, DiffCase{false, false, 4, 106},
        // ...and extra seeds on the production configuration.
        DiffCase{true, true, 1, 107}, DiffCase{false, true, 1, 108}),
    DiffCaseName);

}  // namespace
}  // namespace cupid
