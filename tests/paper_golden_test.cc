// Golden regression tests for the paper experiments: the Figure 2 running
// example (Section 4) and the Table 3 CIDX/Excel study (Section 9.2),
// promoted from bench_fig2_running_example / bench_table3_cidx_excel into
// ctest so a paper-fidelity break fails CI instead of only changing bench
// output nobody reads. Assertions encode the claims the paper makes plus
// the quality this implementation is known to reach: recall may not drop,
// precision may not fall below the current measurement (improvements pass).

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>

#include "core/cupid_matcher.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "thesaurus/default_thesaurus.h"

namespace cupid {
namespace {

// ------------------------------------ Figure 2 running example (Section 4) --

TEST(PaperGoldenTest, Fig2Section4Claims) {
  Dataset d = Fig2Dataset();
  Thesaurus th = DefaultThesaurus();
  CupidMatcher matcher(&th);
  auto r = matcher.Match(d.source, d.target);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // The Section 4 walkthrough pairs.
  EXPECT_TRUE(r->leaf_mapping.ContainsPair(
      "PO.POLines.Item.Qty", "PurchaseOrder.Items.Item.Quantity"))
      << "Qty -> Quantity (thesaurus short-form)";
  EXPECT_TRUE(r->leaf_mapping.ContainsPair(
      "PO.POLines.Item.UoM", "PurchaseOrder.Items.Item.UnitOfMeasure"))
      << "UoM -> UnitOfMeasure (acronym)";
  EXPECT_TRUE(r->leaf_mapping.ContainsPair(
      "PO.POLines.Item.Line", "PurchaseOrder.Items.Item.ItemNumber"))
      << "Line -> ItemNumber (structure only)";

  // Context binding: the identically-named City leaves must bind to the
  // structurally right addresses (the paper's key structural claim).
  EXPECT_GT(r->WsimByPath("PO.POBillTo.City",
                          "PurchaseOrder.InvoiceTo.Address.City"),
            r->WsimByPath("PO.POBillTo.City",
                          "PurchaseOrder.DeliverTo.Address.City"))
      << "POBillTo city must bind to the InvoiceTo context";
  EXPECT_GT(r->WsimByPath("PO.POShipTo.City",
                          "PurchaseOrder.DeliverTo.Address.City"),
            r->WsimByPath("PO.POShipTo.City",
                          "PurchaseOrder.InvoiceTo.Address.City"))
      << "POShipTo city must bind to the DeliverTo context";
}

TEST(PaperGoldenTest, Fig2LeafMappingIsPerfect) {
  Dataset d = Fig2Dataset();
  Thesaurus th = DefaultThesaurus();
  CupidMatcher matcher(&th);
  auto r = matcher.Match(d.source, d.target);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  MatchQuality q = Evaluate(r->leaf_mapping, d.gold);
  EXPECT_EQ(q.false_negatives, 0) << FormatQuality(q);
  EXPECT_EQ(q.false_positives, 0) << FormatQuality(q);
  EXPECT_EQ(q.true_positives, 8) << FormatQuality(q);
}

// --------------------------------- Table 3: CIDX vs Excel (Section 9.2) --

class Table3Golden : public testing::Test {
 protected:
  void SetUp() override {
    auto dr = CidxExcelDataset();
    ASSERT_TRUE(dr.ok()) << dr.status().ToString();
    dataset_.emplace(*std::move(dr));
    thesaurus_ = CidxExcelThesaurus();
    CupidMatcher matcher(&thesaurus_);
    auto r = matcher.Match(dataset_->source, dataset_->target);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    result_.emplace(*std::move(r));
  }

  std::optional<Dataset> dataset_;
  Thesaurus thesaurus_;
  std::optional<MatchResult> result_;
};

TEST_F(Table3Golden, CupidElementMappingsMatchThePaper) {
  // Table 3's Cupid column: every element pair the paper reports Cupid
  // finding, as best-target matches above the acceptance threshold.
  const struct {
    const char* src;
    const char* tgt;
  } rows[] = {
      {"PO.POHeader", "PurchaseOrder.Header"},
      {"PO.POLines.Item", "PurchaseOrder.Items.Item"},
      {"PO.POLines", "PurchaseOrder.Items"},
      {"PO.POBillTo", "PurchaseOrder.InvoiceTo"},
      {"PO.POShipTo", "PurchaseOrder.DeliverTo"},
      {"PO.Contact", "PurchaseOrder.DeliverTo.Contact"},
      {"PO", "PurchaseOrder"},
  };
  for (const auto& row : rows) {
    EXPECT_EQ(result_->BestTargetFor(row.src), row.tgt) << row.src;
    EXPECT_GE(result_->WsimByPath(row.src, row.tgt), 0.5)
        << row.src << " -> " << row.tgt;
  }
}

TEST_F(Table3Golden, LineToItemNumberFoundWithoutThesaurusSupport) {
  // Section 9.2 highlights line -> itemNumber as a purely structural match
  // (no thesaurus entry relates the two names).
  EXPECT_TRUE(result_->leaf_mapping.ContainsPair(
      "PO.POLines.Item.line", "PurchaseOrder.Items.Item.itemNumber"));
}

TEST_F(Table3Golden, AttributeMappingQualityHolds) {
  // The paper: all correct attribute pairs found (recall 1), with a couple
  // of naive-generator false positives. Guard recall exactly and cap the
  // false positives at today's measurement so precision cannot silently
  // erode (currently 30 tp, 6 fp).
  MatchQuality q = Evaluate(result_->leaf_mapping, dataset_->gold);
  EXPECT_EQ(q.false_negatives, 0) << FormatQuality(q);
  EXPECT_EQ(q.true_positives, 30) << FormatQuality(q);
  EXPECT_LE(q.false_positives, 6) << FormatQuality(q);
}

}  // namespace
}  // namespace cupid
