// LINT-PATH: src/importers/fixture.cc
// unordered-iteration scoping: the rule covers core match code only, so an
// importer iterating a hash map for non-result bookkeeping is clean.
#include <string>
#include <unordered_map>

int CountEntries(const std::unordered_map<std::string, int>& index) {
  int n = 0;
  for (const auto& entry : index) {
    (void)entry;
    ++n;
  }
  return n;
}
