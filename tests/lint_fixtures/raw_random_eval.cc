// LINT-PATH: src/eval/fixture.cc
// raw-random scoping: eval/synthetic code may randomize freely.
#include <cstdlib>
#include <random>

int SampleWorkload() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}
