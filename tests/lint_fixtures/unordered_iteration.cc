// LINT-PATH: src/linguistic/fixture.cc
// unordered-iteration: positive, alias, multi-line-decl, suppressed and
// clean cases. Not compiled — scanned by lint_determinism --selftest.
#include <string>
#include <unordered_map>
#include <vector>

using GroupMap = std::unordered_map<std::string, int>;

struct Holder {
  std::unordered_map<int,
                     std::vector<int>>
      groups;
};

double SumParam(const std::unordered_map<int, double>& totals) {
  double sum = 0.0;
  for (const auto& t : totals) {  // EXPECT-FINDING: unordered-iteration
    sum += t.second;
  }
  return sum;
}

double Accumulate(const Holder& h) {
  std::unordered_map<int, double> weights;
  GroupMap by_name;
  double sum = 0.0;
  for (const auto& entry : weights) {  // EXPECT-FINDING: unordered-iteration
    sum += entry.second;
  }
  for (const auto& e : by_name) {  // EXPECT-FINDING: unordered-iteration
    sum += static_cast<double>(e.second);
  }
  for (const auto& g : h.groups) {  // EXPECT-FINDING: unordered-iteration
    sum += static_cast<double>(g.first);
  }
  // Order-independent: every entry writes a disjoint output slot.
  // NOLINTNEXTLINE(determinism:unordered-iteration)
  for (const auto& entry : weights) {
    (void)entry;
  }
  std::vector<double> sorted_weights;
  for (double w : sorted_weights) sum += w;  // vectors iterate in order
  return sum;
}
