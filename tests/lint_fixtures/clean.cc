// LINT-PATH: src/incremental/fixture.cc
// A fully clean core file: sorted iteration, steady_clock, no renames, no
// randomness. The selftest asserts zero findings here.
#include <chrono>
#include <string>
#include <utility>
#include <vector>

double SumSorted(const std::vector<std::pair<std::string, double>>& terms) {
  double sum = 0.0;
  for (const auto& term : terms) sum += term.second;
  auto t0 = std::chrono::steady_clock::now();
  (void)t0;
  return sum;
}
