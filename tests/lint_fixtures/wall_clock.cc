// LINT-PATH: src/structural/fixture.cc
// wall-clock: time-dependent logic in core match code; steady_clock trace
// timing is exempt by policy.
#include <chrono>
#include <ctime>

double Stamp() {
  auto wall = std::chrono::system_clock::now();  // EXPECT-FINDING: wall-clock
  (void)wall;
  std::time_t raw = time(nullptr);  // EXPECT-FINDING: wall-clock
  (void)raw;
  auto trace = std::chrono::steady_clock::now();  // exempt: trace timing
  (void)trace;
  // NOLINTNEXTLINE(determinism:wall-clock) cache-expiry knob, not a result
  auto ttl = std::chrono::system_clock::now();
  (void)ttl;
  return 0.0;
}
