// LINT-PATH: src/storage/fixture.cc
// rename-no-fsync: a RenameFile must be followed by a SyncDir within 10
// lines; raw rename() belongs in storage_env.cc only.
#include <cstdio>

struct Env {
  int RenameFile(const char* from, const char* to);
  int SyncDir(const char* dir);
};

// Durable: the rename is followed by a parent-directory fsync.
int DurableCommit(Env* env) {
  env->RenameFile("b.tmp", "b");
  return env->SyncDir(".");
}

int BestEffortSwap(Env* env) {
  // Best-effort scratch shuffle; loss on crash is acceptable here.
  // NOLINTNEXTLINE(determinism:rename-no-fsync)
  env->RenameFile("c.tmp", "c");
  return 0;
}

int Commit(Env* env) {
  env->RenameFile("a.tmp", "a");  // EXPECT-FINDING: rename-no-fsync
  return 0;
}

int RawMove() {
  return std::rename("x", "y");  // EXPECT-FINDING: rename-no-fsync
}
