// LINT-PATH: src/mapping/fixture.cc
// raw-random: unseeded randomness in result-bearing code.
#include <cstdlib>
#include <random>

int Jitter() {
  return rand() % 10;  // EXPECT-FINDING: raw-random
}

unsigned Seed() {
  std::random_device rd;  // EXPECT-FINDING: raw-random
  return rd();
}

int FixedSeedOk() {
  // util/random.h's seeded SplitMix64 is the sanctioned source; a fixed
  // operand expression does not trip the rule.
  int operand(int);
  return operand(7);
}
