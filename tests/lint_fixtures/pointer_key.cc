// LINT-PATH: src/service/fixture.cc
// pointer-key: pointer-keyed containers are flagged anywhere in src/;
// pointer *values* and stable-id keys are fine.
#include <map>
#include <unordered_map>

struct Node {};

std::unordered_map<Node*, int> degree;  // EXPECT-FINDING: pointer-key
std::map<const Node*, int> rank_of;     // EXPECT-FINDING: pointer-key
std::unordered_map<int, Node*> owner;   // pointer values are fine
std::map<Node*, int> legacy;  // NOLINT(determinism:pointer-key) migration pending
