// End-to-end integration tests: the paper's reported Cupid outcomes
// (Section 4 running example, Section 9.1 canonical examples, Section 9.2
// real-world schemas) must hold for the full pipeline.

#include <gtest/gtest.h>

#include "core/cupid_matcher.h"
#include "eval/datasets.h"
#include "eval/metrics.h"
#include "thesaurus/default_thesaurus.h"

namespace cupid {
namespace {

// ------------------------------------------------------ Fig. 2 (Section 4) --

TEST(Fig2Integration, PerfectLeafMapping) {
  Dataset d = Fig2Dataset();
  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(d.source, d.target);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  MatchQuality q = Evaluate(r->leaf_mapping, d.gold);
  EXPECT_DOUBLE_EQ(q.precision(), 1.0) << FormatQuality(q);
  EXPECT_DOUBLE_EQ(q.recall(), 1.0) << FormatQuality(q);
}

TEST(Fig2Integration, ContextBindingBillToInvoice) {
  // Section 4: "City and Street under POBillTo match City and Street under
  // InvoiceTo, rather than under DeliverTo, because Bill is a synonym of
  // Invoice but not of Deliver."
  Dataset d = Fig2Dataset();
  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(d.source, d.target);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->WsimByPath("PO.POBillTo.City",
                          "PurchaseOrder.InvoiceTo.Address.City"),
            r->WsimByPath("PO.POBillTo.City",
                          "PurchaseOrder.DeliverTo.Address.City"));
  EXPECT_GT(r->WsimByPath("PO.POShipTo.City",
                          "PurchaseOrder.DeliverTo.Address.City"),
            r->WsimByPath("PO.POShipTo.City",
                          "PurchaseOrder.InvoiceTo.Address.City"));
}

TEST(Fig2Integration, LineToItemNumberIsStructural) {
  // Section 4: "Line is mapped to ItemNumber because their parents, Item,
  // match and the other two children of Item already match."
  Dataset d = Fig2Dataset();
  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(d.source, d.target);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->leaf_mapping.ContainsPair(
      "PO.POLines.Item.Line", "PurchaseOrder.Items.Item.ItemNumber"));
  // Purely structural: zero linguistic similarity.
  for (const auto& e : r->leaf_mapping.elements) {
    if (e.source_path == "PO.POLines.Item.Line") {
      EXPECT_LT(e.lsim, 0.05);
      EXPECT_GT(e.ssim, 0.9);
    }
  }
}

TEST(Fig2Integration, NoThesaurusDegradesButIdenticalNamesSurvive) {
  Dataset d = Fig2Dataset();
  Thesaurus empty;
  CupidMatcher m(&empty);
  auto r = m.Match(d.source, d.target);
  ASSERT_TRUE(r.ok());
  // Street/City keep matching (identical names), abbreviation-dependent
  // pairs degrade — the Section 9.3 conclusion 2 observation.
  EXPECT_GT(r->WsimByPath("PO.POShipTo.Street",
                          "PurchaseOrder.DeliverTo.Address.Street"),
            0.5);
  MatchQuality q = Evaluate(r->leaf_mapping, d.gold);
  EXPECT_LT(q.recall(), 1.0);
}

// ---------------------------------------- Canonical examples (Section 9.1) --

class CanonicalCupid : public testing::TestWithParam<int> {};

TEST_P(CanonicalCupid, CupidSolvesAllSixExamples) {
  // Table 2: the Cupid column is Y for every canonical test.
  auto dr = CanonicalExample(GetParam());
  ASSERT_TRUE(dr.ok()) << dr.status().ToString();
  Dataset d = std::move(dr).ValueOrDie();
  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(d.source, d.target);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  MatchQuality q = Evaluate(r->leaf_mapping, d.gold);
  EXPECT_DOUBLE_EQ(q.recall(), 1.0)
      << d.description << "\n"
      << FormatQuality(q) << "\nmissed: "
      << (q.false_negative_pairs.empty()
              ? ""
              : q.false_negative_pairs[0].first + " -> " +
                    q.false_negative_pairs[0].second);
}

INSTANTIATE_TEST_SUITE_P(AllSix, CanonicalCupid, testing::Range(1, 7));

TEST(CanonicalIntegration, Test6ContextDependentPrecision) {
  // Beyond recall: the type-substitution case must bind each context to the
  // right target (ShippingAddress.Name to ShipTo's copy, not BillTo's).
  Dataset d = std::move(*CanonicalExample(6));
  Thesaurus th = DefaultThesaurus();
  CupidMatcher m(&th);
  auto r = m.Match(d.source, d.target);
  ASSERT_TRUE(r.ok());
  MatchQuality q = Evaluate(r->leaf_mapping, d.gold);
  EXPECT_DOUBLE_EQ(q.precision(), 1.0) << FormatQuality(q);
}

// ------------------------------------------- CIDX vs Excel (Section 9.2) --

class CidxExcelIntegration : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(std::move(*CidxExcelDataset()));
    thesaurus_ = new Thesaurus(CidxExcelThesaurus());
    CupidMatcher m(thesaurus_);
    result_ = new MatchResult(std::move(*m.Match(dataset_->source,
                                                 dataset_->target)));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete thesaurus_;
    delete dataset_;
    result_ = nullptr;
    thesaurus_ = nullptr;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
  static Thesaurus* thesaurus_;
  static MatchResult* result_;
};

Dataset* CidxExcelIntegration::dataset_ = nullptr;
Thesaurus* CidxExcelIntegration::thesaurus_ = nullptr;
MatchResult* CidxExcelIntegration::result_ = nullptr;

TEST_F(CidxExcelIntegration, AllCorrectAttributePairsFound) {
  // Section 9.2: "Cupid identifies all the correct XML-attribute matching
  // pairs (leaves in the example)."
  MatchQuality q = Evaluate(result_->leaf_mapping, dataset_->gold);
  EXPECT_DOUBLE_EQ(q.recall(), 1.0) << FormatQuality(q);
}

TEST_F(CidxExcelIntegration, LineToItemNumberWithoutThesaurusSupport) {
  // "Cupid is the only one to identify CIDX.line to correspond to
  // Excel.itemNumber (there were no supporting thesaurus entries)."
  EXPECT_TRUE(result_->leaf_mapping.ContainsPair(
      "PO.POLines.Item.line", "PurchaseOrder.Items.Item.itemNumber"));
}

TEST_F(CidxExcelIntegration, Table3ElementMappings) {
  // Table 3, Cupid column: all Yes.
  const std::pair<const char*, const char*> rows[] = {
      {"PO.POHeader", "PurchaseOrder.Header"},
      {"PO.POLines.Item", "PurchaseOrder.Items.Item"},
      {"PO.POLines", "PurchaseOrder.Items"},
      {"PO.POBillTo", "PurchaseOrder.InvoiceTo"},
      {"PO.POShipTo", "PurchaseOrder.DeliverTo"},
  };
  for (const auto& [src, tgt] : rows) {
    EXPECT_EQ(result_->BestTargetFor(src), tgt) << src;
    EXPECT_GE(result_->WsimByPath(src, tgt), 0.5) << src;
  }
  // PO -> PurchaseOrder (roots).
  EXPECT_GE(result_->WsimByPath("PO", "PurchaseOrder"), 0.5);
}

TEST_F(CidxExcelIntegration, ReproducesTheNaiveGeneratorFalsePositive) {
  // Section 9.2: "there are two false positives (e.g. CIDX.contactName is
  // mapped to both Excel.contactName and Excel.companyName)".
  MatchQuality q = Evaluate(result_->leaf_mapping, dataset_->gold);
  bool company_fp = false;
  for (const auto& [src, tgt] : q.false_positive_pairs) {
    if (src == "PO.Contact.ContactName" &&
        tgt.find("companyName") != std::string::npos) {
      company_fp = true;
    }
  }
  EXPECT_TRUE(company_fp);
}

// --------------------------------------------- RDB vs Star (Section 9.2) --

class RdbStarIntegration : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(std::move(*RdbStarDataset()));
    thesaurus_ = new Thesaurus(RdbStarThesaurus());
    CupidMatcher m(thesaurus_);
    result_ = new MatchResult(std::move(*m.Match(dataset_->source,
                                                 dataset_->target)));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete thesaurus_;
    delete dataset_;
    result_ = nullptr;
    thesaurus_ = nullptr;
    dataset_ = nullptr;
  }
  static Dataset* dataset_;
  static Thesaurus* thesaurus_;
  static MatchResult* result_;
};

Dataset* RdbStarIntegration::dataset_ = nullptr;
Thesaurus* RdbStarIntegration::thesaurus_ = nullptr;
MatchResult* RdbStarIntegration::result_ = nullptr;

TEST_F(RdbStarIntegration, HighQualityWithoutThesaurus) {
  MatchQuality q = Evaluate(result_->leaf_mapping, dataset_->gold);
  EXPECT_GE(q.recall(), 0.95) << FormatQuality(q);
  EXPECT_GE(q.precision(), 0.9) << FormatQuality(q);
}

TEST_F(RdbStarIntegration, ProductsAndCustomersColumnsMatched) {
  // "The columns of the two Products and two Customers tables are matched."
  EXPECT_TRUE(result_->leaf_mapping.ContainsPair("RDB.Products.ProductName",
                                                 "Star.PRODUCTS.ProductName"));
  EXPECT_TRUE(result_->leaf_mapping.ContainsPair(
      "RDB.Customers.CustomerID", "Star.CUSTOMERS.CustomerID"));
}

TEST_F(RdbStarIntegration, AllThreePostalCodesFromCustomers) {
  // "The three PostalCode columns in the Star Schema are all mapped to the
  // Customers.PostalCode column in the RDB schema."
  for (const char* target :
       {"Star.CUSTOMERS.PostalCode", "Star.GEOGRAPHY.PostalCode",
        "Star.SALES.PostalCode"}) {
    EXPECT_TRUE(result_->leaf_mapping.ContainsPair(
        "RDB.Customers.PostalCode", target))
        << target;
  }
}

TEST_F(RdbStarIntegration, GeographyAssembledFromTerritoriesAndRegion) {
  EXPECT_TRUE(result_->leaf_mapping.ContainsPair(
      "RDB.Territories.TerritoryDescription",
      "Star.GEOGRAPHY.TerritoryDescription"));
  EXPECT_TRUE(result_->leaf_mapping.ContainsPair(
      "RDB.Region.RegionDescription", "Star.GEOGRAPHY.RegionDescription"));
}

TEST_F(RdbStarIntegration, CustomerNameNotMatchedWithoutSynonym) {
  // "None of the systems matched the CustomerName column ... to either the
  // ContactFirstName or ContactLastName columns" — and in our encoding
  // CompanyName wins (which the gold accepts); the Contact* columns lose.
  EXPECT_FALSE(result_->leaf_mapping.ContainsPair(
      "RDB.Customers.ContactFirstName", "Star.CUSTOMERS.CustomerName"));
  EXPECT_FALSE(result_->leaf_mapping.ContainsPair(
      "RDB.Customers.ContactLastName", "Star.CUSTOMERS.CustomerName"));
}

TEST_F(RdbStarIntegration, JoinViewMatchesSalesBest) {
  // "Cupid matches the join of Orders and OrderDetails to the Sales table."
  // (Verified with the slightly relaxed leaf-count ratio the experiment
  // harness uses; the default 2.0 prunes the 20-vs-9-leaf comparison.)
  Thesaurus th = RdbStarThesaurus();
  CupidConfig cfg;
  cfg.tree_match.leaf_count_ratio = 2.5;
  CupidMatcher m(&th, cfg);
  auto r = m.Match(dataset_->source, dataset_->target);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->BestTargetFor("RDB.OrderDetails_Orders_fk"), "Star.SALES");
  EXPECT_GE(r->WsimByPath("RDB.OrderDetails_Orders_fk", "Star.SALES"), 0.5);
  // The Territories-Region join lines up with GEOGRAPHY better than
  // Territories alone does.
  EXPECT_GT(
      r->WsimByPath("RDB.TerritoryRegion_Territories_fk", "Star.GEOGRAPHY"),
      r->WsimByPath("RDB.Territories", "Star.GEOGRAPHY"));
}

}  // namespace
}  // namespace cupid
