// Tests for the linguistic matching phase (src/linguistic): tokenizer,
// normalizer, name similarity, categorization and the full lsim computation.

#include <gtest/gtest.h>

#include "linguistic/categorizer.h"
#include "linguistic/linguistic_matcher.h"
#include "linguistic/name_similarity.h"
#include "linguistic/normalizer.h"
#include "linguistic/tokenizer.h"
#include "schema/schema_builder.h"
#include "thesaurus/default_thesaurus.h"

namespace cupid {
namespace {

std::vector<std::string> Texts(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const Token& t : tokens) out.push_back(t.text);
  return out;
}

// -------------------------------------------------------------- tokenizer --

TEST(TokenizerTest, CamelCase) {
  EXPECT_EQ(Texts(TokenizeName("unitPrice")),
            (std::vector<std::string>{"unit", "price"}));
  EXPECT_EQ(Texts(TokenizeName("UnitOfMeasure")),
            (std::vector<std::string>{"unit", "of", "measure"}));
}

TEST(TokenizerTest, UpperRunFollowedByWord) {
  // "POLines" -> PO + Lines (the paper's Section 5.1 example).
  EXPECT_EQ(Texts(TokenizeName("POLines")),
            (std::vector<std::string>{"po", "lines"}));
  EXPECT_EQ(Texts(TokenizeName("SSN")), (std::vector<std::string>{"ssn"}));
}

TEST(TokenizerTest, SeparatorsAndPunctuation) {
  EXPECT_EQ(Texts(TokenizeName("unit_price")),
            (std::vector<std::string>{"unit", "price"}));
  EXPECT_EQ(Texts(TokenizeName("e-mail")),
            (std::vector<std::string>{"e", "mail"}));
  EXPECT_EQ(Texts(TokenizeName("a.b c/d")),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(TokenizerTest, DigitsAndSymbols) {
  auto tokens = TokenizeName("item#2");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kContent);
  EXPECT_EQ(tokens[1].type, TokenType::kSpecial);
  EXPECT_EQ(tokens[1].text, "#");
  EXPECT_EQ(tokens[2].type, TokenType::kNumber);
  EXPECT_EQ(tokens[2].text, "2");
}

TEST(TokenizerTest, LetterDigitTransition) {
  EXPECT_EQ(Texts(TokenizeName("Street4")),
            (std::vector<std::string>{"street", "4"}));
  EXPECT_EQ(Texts(TokenizeName("int8value")),
            (std::vector<std::string>{"int", "8", "value"}));
}

TEST(TokenizerTest, EmptyAndSeparatorOnly) {
  EXPECT_TRUE(TokenizeName("").empty());
  EXPECT_TRUE(TokenizeName("__--  ").empty());
}

// -------------------------------------------------------------- normalizer --

class NormalizerTest : public testing::Test {
 protected:
  NormalizerTest() : thesaurus_(DefaultThesaurus()), norm_(&thesaurus_) {}
  Thesaurus thesaurus_;
  NameNormalizer norm_;
};

TEST_F(NormalizerTest, ExpandsAbbreviationTokens) {
  NormalizedName n = norm_.Normalize("POLines");
  EXPECT_EQ(Texts(n.tokens),
            (std::vector<std::string>{"purchase", "order", "lines"}));
}

TEST_F(NormalizerTest, ExpandsWholeNameAcronym) {
  // Mixed-case acronym that tokenization alone would shred.
  NormalizedName n = norm_.Normalize("UoM");
  EXPECT_EQ(Texts(n.tokens),
            (std::vector<std::string>{"unit", "of", "measure"}));
  // "of" is a stop word -> kCommon.
  EXPECT_EQ(n.tokens[1].type, TokenType::kCommon);
}

TEST_F(NormalizerTest, MarksStopWordsCommon) {
  NormalizedName n = norm_.Normalize("DateOfBirth");
  ASSERT_EQ(n.tokens.size(), 3u);
  EXPECT_EQ(n.tokens[1].type, TokenType::kCommon);
}

TEST_F(NormalizerTest, TagsConcepts) {
  NormalizedName n = norm_.Normalize("UnitPrice");
  // "price" triggers concept money.
  ASSERT_EQ(n.concepts.size(), 1u);
  EXPECT_EQ(n.concepts[0], "money");
  EXPECT_EQ(n.tokens[1].type, TokenType::kConcept);
}

TEST_F(NormalizerTest, TokensOfTypeFilters) {
  NormalizedName n = norm_.Normalize("PriceOfItem2");
  EXPECT_EQ(n.TokensOfType(TokenType::kConcept).size(), 1u);  // price
  EXPECT_EQ(n.TokensOfType(TokenType::kCommon).size(), 1u);   // of
  EXPECT_EQ(n.TokensOfType(TokenType::kNumber).size(), 1u);   // 2
  EXPECT_EQ(n.TokensOfType(TokenType::kContent).size(), 1u);  // item
}

// -------------------------------------------------------- name similarity --

class NameSimTest : public testing::Test {
 protected:
  NameSimTest() : thesaurus_(DefaultThesaurus()), norm_(&thesaurus_) {}
  double Sim(const std::string& a, const std::string& b) {
    return ElementNameSimilarity(norm_.Normalize(a), norm_.Normalize(b),
                                 thesaurus_);
  }
  Thesaurus thesaurus_;
  NameNormalizer norm_;
};

TEST_F(NameSimTest, IdenticalNames) {
  EXPECT_DOUBLE_EQ(Sim("Street", "Street"), 1.0);
  EXPECT_DOUBLE_EQ(Sim("UnitPrice", "unit_price"), 1.0);
}

TEST_F(NameSimTest, AbbreviationsMatchExpansions) {
  EXPECT_DOUBLE_EQ(Sim("Qty", "Quantity"), 1.0);
  EXPECT_DOUBLE_EQ(Sim("UoM", "UnitOfMeasure"), 1.0);
  EXPECT_DOUBLE_EQ(Sim("PO", "PurchaseOrder"), 1.0);
}

TEST_F(NameSimTest, SynonymsScoreHigh) {
  EXPECT_GT(Sim("InvoiceTo", "BillTo"), 0.8);
  EXPECT_GT(Sim("ShipTo", "DeliverTo"), 0.8);
}

TEST_F(NameSimTest, PrefixSuffixVariationTolerated) {
  // Table 2 row 3: Cupid tolerates affix variation without thesaurus input.
  EXPECT_GT(Sim("Address", "StreetAddress"), 0.4);
  EXPECT_GT(Sim("Name", "CustomerName"), 0.4);
  EXPECT_LT(Sim("Address", "StreetAddress"), 1.0);
}

TEST_F(NameSimTest, UnrelatedNamesScoreLow) {
  EXPECT_LT(Sim("Line", "ItemNumber"), 0.2);
  EXPECT_LT(Sim("Country", "Quantity"), 0.4);
}

TEST_F(NameSimTest, SymmetricByConstruction) {
  const char* names[] = {"Qty", "UnitOfMeasure", "POLines", "InvoiceTo",
                         "StreetAddress"};
  for (const char* a : names) {
    for (const char* b : names) {
      EXPECT_DOUBLE_EQ(Sim(a, b), Sim(b, a)) << a << " vs " << b;
    }
  }
}

TEST_F(NameSimTest, RangeWithinUnitInterval) {
  const char* names[] = {"a", "Qty", "e-mail", "Item#2", "POLines", ""};
  for (const char* a : names) {
    for (const char* b : names) {
      double s = Sim(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
    }
  }
}

TEST(TokenSimilarityTest, NumbersMatchOnlyExactly) {
  Thesaurus t;
  Token n1{"2", TokenType::kNumber}, n2{"2", TokenType::kNumber},
      n3{"3", TokenType::kNumber}, w{"two", TokenType::kContent};
  EXPECT_DOUBLE_EQ(TokenSimilarity(n1, n2, t), 1.0);
  EXPECT_DOUBLE_EQ(TokenSimilarity(n1, n3, t), 0.0);
  EXPECT_DOUBLE_EQ(TokenSimilarity(n1, w, t), 0.0);
}

TEST(TokenSimilarityTest, SubstringFallbackRespectsMinAffix) {
  Thesaurus t;
  Token a{"ab", TokenType::kContent}, b{"ax", TokenType::kContent};
  // Common prefix length 1 < min_affix 2 -> 0.
  EXPECT_DOUBLE_EQ(TokenSimilarity(a, b, t), 0.0);
  Token c{"street", TokenType::kContent}, d{"streetaddress",
                                            TokenType::kContent};
  EXPECT_NEAR(TokenSimilarity(c, d, t), 0.75 * 6.0 / 13.0, 1e-9);
}

TEST(TokenSetSimilarityTest, PaperFormula) {
  Thesaurus t;
  std::vector<Token> t1 = {{"purchase", TokenType::kContent},
                           {"order", TokenType::kContent}};
  std::vector<Token> t2 = {{"purchase", TokenType::kContent}};
  // (1 + 0 + 1) / 3
  EXPECT_NEAR(TokenSetSimilarity(t1, t2, t), 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(TokenSetSimilarity({}, {}, t), 0.0);
}

// ----------------------------------------------------------- categorizer --

TEST(CategorizerTest, ConceptTypeContainerAndNameCategories) {
  Thesaurus th = DefaultThesaurus();
  NameNormalizer norm(&th);
  XmlSchemaBuilder b("S");
  ElementId addr = b.AddElement(b.root(), "Address");
  b.AddAttribute(addr, "Street", DataType::kString);
  b.AddAttribute(addr, "UnitPrice", DataType::kMoney);
  const Schema& s = b.schema();

  std::vector<NormalizedName> names;
  for (ElementId id : s.AllElements()) {
    names.push_back(norm.Normalize(s.element(id).name));
  }
  Categorization c = CategorizeSchema(s, names, norm);

  auto has_category = [&](const std::string& label) {
    for (const Category& cat : c.categories) {
      if (cat.label == label) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_category("concept:money"));     // UnitPrice
  EXPECT_TRUE(has_category("concept:location"));  // Street, Address
  EXPECT_TRUE(has_category("type:Text"));         // Street
  EXPECT_TRUE(has_category("type:Number"));       // UnitPrice
  EXPECT_TRUE(has_category("container:Address"));
  // "unit" is a plain content token -> name category. ("street" is tagged
  // with concept location, so it contributes to concept:location instead.)
  EXPECT_TRUE(has_category("name:unit"));
}

TEST(CategorizerTest, KeysAndRefIntsAreNotCategorized) {
  Thesaurus th = DefaultThesaurus();
  NameNormalizer norm(&th);
  RelationalSchemaBuilder b("S");
  ElementId t = b.AddTable("T");
  ElementId c1 = b.AddColumn(t, "id", DataType::kInteger);
  ElementId pk = b.SetPrimaryKey(t, {c1});
  const Schema& s = b.schema();
  std::vector<NormalizedName> names;
  for (ElementId id : s.AllElements()) {
    names.push_back(norm.Normalize(s.element(id).name));
  }
  Categorization c = CategorizeSchema(s, names, norm);
  EXPECT_TRUE(c.element_categories[static_cast<size_t>(pk)].empty());
  EXPECT_FALSE(c.element_categories[static_cast<size_t>(c1)].empty());
}

// ----------------------------------------------------- linguistic matcher --

TEST(LinguisticMatcherTest, LsimHighForEquivalentElements) {
  Thesaurus th = DefaultThesaurus();
  LinguisticMatcher m(&th, {});
  XmlSchemaBuilder b1("S1");
  ElementId i1 = b1.AddElement(b1.root(), "Item");
  ElementId q1 = b1.AddAttribute(i1, "Qty", DataType::kDecimal);
  Schema s1 = std::move(b1).Build();
  XmlSchemaBuilder b2("S2");
  ElementId i2 = b2.AddElement(b2.root(), "Item");
  ElementId q2 = b2.AddAttribute(i2, "Quantity", DataType::kDecimal);
  Schema s2 = std::move(b2).Build();

  auto r = m.Match(s1, s2);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->lsim(q1, q2), 0.9);
  EXPECT_GT(r->lsim(i1, i2), 0.9);
  // Cross pairs stay low.
  EXPECT_LT(r->lsim(q1, i2), 0.5);
}

TEST(LinguisticMatcherTest, IncompatibleCategoriesYieldZero) {
  Thesaurus th = DefaultThesaurus();
  LinguisticMatcher m(&th, {});
  XmlSchemaBuilder b1("S1");
  ElementId a = b1.AddAttribute(b1.root(), "Zebra", DataType::kString);
  Schema s1 = std::move(b1).Build();
  XmlSchemaBuilder b2("S2");
  ElementId x = b2.AddAttribute(b2.root(), "Quark", DataType::kInteger);
  Schema s2 = std::move(b2).Build();
  auto r = m.Match(s1, s2);
  ASSERT_TRUE(r.ok());
  // Different type classes, no shared names/concepts: either the pair is
  // pruned (lsim 0) or both sides share only the thin Text/Number overlap.
  EXPECT_LT(r->lsim(a, x), 0.2);
}

TEST(LinguisticMatcherTest, CategorizationPrunesComparisons) {
  Thesaurus th = DefaultThesaurus();
  auto pair_schemas = [] {
    XmlSchemaBuilder b1("S1");
    ElementId t1 = b1.AddElement(b1.root(), "Customer");
    b1.AddAttribute(t1, "Name", DataType::kString);
    b1.AddAttribute(t1, "Born", DataType::kDate);
    Schema s1 = std::move(b1).Build();
    XmlSchemaBuilder b2("S2");
    ElementId t2 = b2.AddElement(b2.root(), "Client");
    b2.AddAttribute(t2, "Name", DataType::kString);
    b2.AddAttribute(t2, "Age", DataType::kInteger);
    Schema s2 = std::move(b2).Build();
    return std::make_pair(std::move(s1), std::move(s2));
  };
  auto [s1, s2] = pair_schemas();

  LinguisticOptions with;
  LinguisticMatcher m1(&th, with);
  auto r1 = m1.Match(s1, s2);
  ASSERT_TRUE(r1.ok());

  LinguisticOptions without;
  without.use_categories = false;
  LinguisticMatcher m2(&th, without);
  auto r2 = m2.Match(s1, s2);
  ASSERT_TRUE(r2.ok());

  EXPECT_LT(r1->comparisons, r2->comparisons);
  // All-pairs mode compares everything (including roots).
  EXPECT_EQ(r2->comparisons, s1.num_elements() * s2.num_elements());
}

TEST(LinguisticMatcherTest, InvalidThnsRejected) {
  Thesaurus th;
  LinguisticOptions opt;
  opt.thns = 1.5;
  LinguisticMatcher m(&th, opt);
  Schema s1("A"), s2("B");
  EXPECT_TRUE(m.Match(s1, s2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace cupid
