// Tests for src/service: SchemaRepository (versioning, lineage,
// persistence), MatchService (bit-identical serving across the cached,
// session and direct paths, under concurrency), and JobScheduler
// (bounded admission, per-job stats).
//
// The service-level contract mirrors the incremental one: no matter which
// warm path served a request, the mappings must equal a from-scratch
// CupidMatcher::Match on the same schema versions value-for-value.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/cupid_matcher.h"
#include "eval/datasets.h"
#include "importers/native_format.h"
#include "schema/schema_printer.h"
#include "obs/metrics.h"
#include "service/job_scheduler.h"
#include "service/match_service.h"
#include "service/schema_repository.h"
#include "storage/fault_injection_env.h"
#include "thesaurus/default_thesaurus.h"
#include "util/strings.h"

namespace cupid {

/// Test backdoor into JobScheduler's generic admission path, used to pin
/// workers deterministically with closures the test controls.
class JobSchedulerTestPeer {
 public:
  static Result<std::shared_ptr<MatchJob>> SubmitTask(
      JobScheduler* scheduler,
      std::function<Result<MatchResponse>()> task) {
    return scheduler->SubmitTask(std::move(task));
  }
};

namespace {

void ExpectMappingEqual(const Mapping& got, const Mapping& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.elements[i].source_path, want.elements[i].source_path)
        << context << " [" << i << "]";
    ASSERT_EQ(got.elements[i].target_path, want.elements[i].target_path)
        << context << " [" << i << "]";
    ASSERT_EQ(got.elements[i].wsim, want.elements[i].wsim)
        << context << " [" << i << "]";
    ASSERT_EQ(got.elements[i].ssim, want.elements[i].ssim)
        << context << " [" << i << "]";
    ASSERT_EQ(got.elements[i].lsim, want.elements[i].lsim)
        << context << " [" << i << "]";
  }
}

/// Asserts `response` matches a from-scratch CupidMatcher run on the
/// request's schema versions, leaf and non-leaf alike.
void ExpectIdenticalToDirect(const MatchResponse& response,
                             const SchemaRepository& repo,
                             const Thesaurus& thesaurus,
                             const CupidConfig& config,
                             const std::string& context) {
  auto source = repo.Get(response.source, response.source_version);
  auto target = repo.Get(response.target, response.target_version);
  ASSERT_TRUE(source.ok() && target.ok()) << context;
  CupidMatcher matcher(&thesaurus, config);
  auto ref = matcher.Match(**source, **target);
  ASSERT_TRUE(ref.ok()) << context << ": " << ref.status().ToString();
  ExpectMappingEqual(response.leaf_mapping, ref->leaf_mapping,
                     context + " leaf");
  ExpectMappingEqual(response.nonleaf_mapping, ref->nonleaf_mapping,
                     context + " nonleaf");
}

CupidConfig SingleThreaded() {
  CupidConfig config;
  config.SetNumThreads(1);
  return config;
}

/// Edge lines sorted: reloading may renumber elements (a foreign key parsed
/// inline sits at a different id than one linked after all tables), which
/// permutes PrintSchemaEdges line order without changing the edge set.
std::vector<std::string> SortedEdges(const Schema& s) {
  std::vector<std::string> lines = SplitAny(PrintSchemaEdges(s), "\n");
  std::sort(lines.begin(), lines.end());
  return lines;
}

// ------------------------------------------------------------- repository --

TEST(SchemaRepositoryTest, RegisterResolveVersions) {
  SchemaRepository repo;
  ASSERT_EQ(*repo.Register("po", Fig2Po()), 1);
  ASSERT_EQ(*repo.Register("po", Fig2Po()), 2);
  EXPECT_EQ(repo.LatestVersion("po"), 2);
  EXPECT_EQ(repo.LatestVersion("nosuch"), 0);

  auto latest = repo.Resolve("po");
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->version, 2);
  auto v1 = repo.Resolve("po", 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->version, 1);
  EXPECT_TRUE(repo.Resolve("po", 3).status().IsNotFound());
  EXPECT_TRUE(repo.Resolve("nosuch").status().IsNotFound());
  EXPECT_FALSE(repo.Register("", Fig2Po()).ok());

  EXPECT_EQ(repo.Names(), std::vector<std::string>{"po"});
}

TEST(SchemaRepositoryTest, SnapshotsSurviveLaterMutations) {
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  auto v1 = repo.Get("po", 1);
  ASSERT_TRUE(v1.ok());
  std::string before = PrintSchema(**v1);
  ASSERT_TRUE(
      repo.ApplyEdit("po", SchemaEdit::RenameElement(EditSide::kSource,
                                                     "PO.POLines", "Lines"))
          .ok());
  // The v1 snapshot is immutable; only v2 carries the rename.
  EXPECT_EQ(PrintSchema(**v1), before);
  auto v2 = repo.Get("po", 2);
  ASSERT_TRUE(v2.ok());
  EXPECT_NE(PrintSchema(**v2), before);
}

TEST(SchemaRepositoryTest, EditChainLineage) {
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(
      repo.ApplyEdit("po", SchemaEdit::RenameElement(EditSide::kSource,
                                                     "PO.POLines", "Lines"))
          .ok());
  ASSERT_TRUE(repo.ApplyEdit("po", SchemaEdit::ChangeDataType(
                                       EditSide::kSource, "PO.POShipTo.City",
                                       DataType::kText))
                  .ok());
  auto chain = repo.EditChain("po", 1, 3);
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->size(), 2u);
  EXPECT_EQ((*chain)[0].kind, SchemaEdit::Kind::kRenameElement);
  EXPECT_EQ((*chain)[1].kind, SchemaEdit::Kind::kChangeDataType);
  auto empty = repo.EditChain("po", 2, 2);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
  EXPECT_FALSE(repo.EditChain("po", 3, 1).has_value());   // backwards
  EXPECT_FALSE(repo.EditChain("po", 0, 2).has_value());   // bad versions
  EXPECT_FALSE(repo.EditChain("nosuch", 1, 1).has_value());

  // A re-registration severs the lineage.
  ASSERT_EQ(*repo.Register("po", Fig2Po()), 4);
  EXPECT_FALSE(repo.EditChain("po", 3, 4).has_value());
  EXPECT_FALSE(repo.EditChain("po", 1, 4).has_value());
}

TEST(SchemaRepositoryTest, RejectsHostileNames) {
  // Names become session-key components ('\x1f'-joined) and on-disk file
  // names; control bytes and path separators must be rejected at the door.
  SchemaRepository repo;
  EXPECT_FALSE(repo.Register(std::string("a\x1f") + "b", Fig2Po()).ok());
  EXPECT_FALSE(repo.Register("../escape", Fig2Po()).ok());
  EXPECT_FALSE(repo.Register("a/b", Fig2Po()).ok());
  EXPECT_FALSE(repo.Register("a\\b", Fig2Po()).ok());
  EXPECT_FALSE(repo.Register(".", Fig2Po()).ok());
  EXPECT_FALSE(repo.Register("..", Fig2Po()).ok());
  EXPECT_TRUE(repo.Register("fine-name_2", Fig2Po()).ok());
}

TEST(SchemaRepositoryTest, LoadFromRejectsTraversingManifests) {
  std::string dir = (std::filesystem::path(::testing::TempDir()) /
                     "cupid_repo_hostile")
                        .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream manifest(std::filesystem::path(dir) / "MANIFEST.jsonl");
    manifest << R"({"name":"x","version":1,"file":"../outside.cupid"})"
             << "\n";
  }
  EXPECT_FALSE(SchemaRepository::LoadFrom(dir).ok());
}

TEST(SchemaRepositoryTest, ApplyEditErrors) {
  SchemaRepository repo;
  EXPECT_TRUE(repo.ApplyEdit("nosuch", SchemaEdit::RenameElement(
                                           EditSide::kSource, "X", "Y"))
                  .status()
                  .IsNotFound());
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  EXPECT_FALSE(
      repo.ApplyEdit("po", SchemaEdit::RenameElement(EditSide::kSource,
                                                     "No.Such.Path", "Y"))
          .ok());
  // Failed edits must not create versions.
  EXPECT_EQ(repo.LatestVersion("po"), 1);
}

TEST(SchemaRepositoryTest, PersistenceRoundTripAllImporterFormats) {
  std::string data = CUPID_DATA_DIR;
  SchemaRepository repo;
  // Every importer format, loaded exactly as a server would load them.
  ASSERT_TRUE(repo.RegisterFile("cidx", data + "/cidx.xml").ok());
  ASSERT_TRUE(repo.RegisterFile("excel", data + "/excel.xml").ok());
  ASSERT_TRUE(repo.RegisterFile("rdb", data + "/rdb.sql").ok());
  ASSERT_TRUE(repo.RegisterFile("star", data + "/star.sql").ok());
  ASSERT_TRUE(repo.RegisterFile("order", data + "/order.dtd").ok());
  ASSERT_TRUE(repo.RegisterFile("po", data + "/po.cupid").ok());
  // A second version so the manifest covers version chains.
  ASSERT_TRUE(
      repo.ApplyEdit("po", SchemaEdit::RenameElement(EditSide::kSource,
                                                     "PO.POLines", "Lines"))
          .ok());

  std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "cupid_repo").string();
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(repo.SaveTo(dir).ok());
  auto reloaded = SchemaRepository::LoadFrom(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  ASSERT_EQ(reloaded->Names(), repo.Names());
  for (const std::string& name : repo.Names()) {
    ASSERT_EQ(reloaded->LatestVersion(name), repo.LatestVersion(name));
    for (int v = 1; v <= repo.LatestVersion(name); ++v) {
      auto a = repo.Get(name, v);
      auto b = reloaded->Get(name, v);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(PrintSchema(**a), PrintSchema(**b)) << name << "@" << v;
      EXPECT_EQ(SortedEdges(**a), SortedEdges(**b)) << name << "@" << v;
    }
  }
  EXPECT_FALSE(SchemaRepository::LoadFrom(dir + "/nosuch").ok());
}

// ---------------------------------------------------------- match service --

struct ServiceFixture {
  ServiceFixture() : thesaurus(DefaultThesaurus()), service(&thesaurus, &repo) {
    EXPECT_TRUE(repo.Register("po", Fig2Po()).ok());
    EXPECT_TRUE(repo.Register("order", Fig2PurchaseOrder()).ok());
  }

  MatchRequest Request(const CupidConfig& config = SingleThreaded()) {
    MatchRequest request;
    request.source = "po";
    request.target = "order";
    request.config = config;
    return request;
  }

  Thesaurus thesaurus;
  SchemaRepository repo;
  MatchService service;
};

TEST(MatchServiceTest, ServesBitIdenticalMappings) {
  ServiceFixture fx;
  auto r1 = fx.service.Match(fx.Request());
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_FALSE(r1->result_cache_hit);
  EXPECT_FALSE(r1->session_reused);
  EXPECT_EQ(r1->source_version, 1);
  EXPECT_EQ(r1->target_version, 1);
  ExpectIdenticalToDirect(*r1, fx.repo, fx.thesaurus, SingleThreaded(),
                          "cold");

  // Identical request: served from the result cache, same mappings.
  auto r2 = fx.service.Match(fx.Request());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->result_cache_hit);
  ExpectMappingEqual(r2->leaf_mapping, r1->leaf_mapping, "cache hit leaf");

  // Cache opt-out: recomputed on the warm session, still identical.
  MatchRequest no_cache = fx.Request();
  no_cache.use_result_cache = false;
  auto r3 = fx.service.Match(no_cache);
  ASSERT_TRUE(r3.ok());
  EXPECT_FALSE(r3->result_cache_hit);
  EXPECT_TRUE(r3->session_reused);
  ExpectIdenticalToDirect(*r3, fx.repo, fx.thesaurus, SingleThreaded(),
                          "warm session");

  // Session opt-out: one-shot matcher, still identical.
  MatchRequest direct = fx.Request();
  direct.use_result_cache = false;
  direct.use_session = false;
  auto r4 = fx.service.Match(direct);
  ASSERT_TRUE(r4.ok());
  EXPECT_FALSE(r4->session_reused);
  ExpectIdenticalToDirect(*r4, fx.repo, fx.thesaurus, SingleThreaded(),
                          "direct");

  MatchService::CacheStats stats = fx.service.cache_stats();
  EXPECT_EQ(stats.result_hits, 1);
  EXPECT_EQ(stats.sessions_created, 1);
  EXPECT_EQ(stats.sessions_reused, 1);
}

TEST(MatchServiceTest, RepositoryEditTakesIncrementalPath) {
  ServiceFixture fx;
  ASSERT_TRUE(fx.service.Match(fx.Request()).ok());  // warm the session

  ASSERT_TRUE(fx.repo
                  .ApplyEdit("po", SchemaEdit::RenameElement(
                                       EditSide::kSource,
                                       "PO.POLines.Item.Qty", "Quantity"))
                  .ok());
  auto r = fx.service.Match(fx.Request());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->source_version, 2);
  EXPECT_TRUE(r->session_reused);
  EXPECT_TRUE(r->incremental);  // the edit chain warm-started Rematch
  EXPECT_FALSE(r->result_cache_hit);
  EXPECT_GT(r->stats.tree_match.pairs_reused, 0);
  ExpectIdenticalToDirect(*r, fx.repo, fx.thesaurus, SingleThreaded(),
                          "post-edit");

  // Multi-edit chain (two repository edits between requests).
  ASSERT_TRUE(fx.repo
                  .ApplyEdit("order", SchemaEdit::ChangeDataType(
                                          EditSide::kSource,
                                          "PurchaseOrder.Items.Item.Quantity",
                                          DataType::kInteger))
                  .ok());
  ASSERT_TRUE(fx.repo
                  .ApplyEdit("po", SchemaEdit::RenameElement(
                                       EditSide::kSource, "PO.POShipTo",
                                       "ShipDestination"))
                  .ok());
  auto r2 = fx.service.Match(fx.Request());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->incremental);
  ExpectIdenticalToDirect(*r2, fx.repo, fx.thesaurus, SingleThreaded(),
                          "post-edit-chain");
  EXPECT_GE(fx.service.cache_stats().incremental_rematches, 2);
}

TEST(MatchServiceTest, ReRegistrationRebuildsCold) {
  ServiceFixture fx;
  ASSERT_TRUE(fx.service.Match(fx.Request()).ok());
  // Re-register (no edit lineage): the warm session must be discarded, not
  // fed a schema it cannot reconcile.
  ASSERT_TRUE(fx.repo.Register("po", Fig2Po()).ok());
  auto r = fx.service.Match(fx.Request());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->source_version, 2);
  EXPECT_FALSE(r->session_reused);
  EXPECT_FALSE(r->incremental);
  ExpectIdenticalToDirect(*r, fx.repo, fx.thesaurus, SingleThreaded(),
                          "re-registered");
}

TEST(MatchServiceTest, ExplicitVersionsServeOldSnapshots) {
  ServiceFixture fx;
  ASSERT_TRUE(fx.repo
                  .ApplyEdit("po", SchemaEdit::RenameElement(
                                       EditSide::kSource,
                                       "PO.POLines.Item.Qty", "Quantity"))
                  .ok());
  MatchRequest old = fx.Request();
  old.source_version = 1;
  auto r = fx.service.Match(old);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->source_version, 1);
  ExpectIdenticalToDirect(*r, fx.repo, fx.thesaurus, SingleThreaded(),
                          "pinned version");
  // Distinct cache keys: latest is not served from the pinned entry.
  auto latest = fx.service.Match(fx.Request());
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->source_version, 2);
  EXPECT_FALSE(latest->result_cache_hit);
}

TEST(MatchServiceTest, RecoveredRepositoryRewarmsIncrementalSessions) {
  // The edit lineage written to WAL + snapshot must survive a crash well
  // enough for MatchService to keep taking the incremental path: a session
  // warmed on version 1 of the *recovered* repository fast-forwards along
  // the recovered edit chain instead of rebuilding cold.
  FaultInjectionEnv env;
  {
    DurabilityOptions options;
    options.env = &env;
    auto repo = SchemaRepository::Recover("wal", options);
    ASSERT_TRUE(repo.ok()) << repo.status().ToString();
    ASSERT_TRUE(repo->Register("po", Fig2Po()).ok());
    ASSERT_TRUE(repo->Register("order", Fig2PurchaseOrder()).ok());
    ASSERT_TRUE(repo->ApplyEdit("po", SchemaEdit::RenameElement(
                                          EditSide::kSource,
                                          "PO.POLines.Item.Qty", "Quantity"))
                    .ok());
    ASSERT_TRUE(repo->ApplyEdit("po", SchemaEdit::RenameElement(
                                          EditSide::kSource, "PO.POShipTo",
                                          "ShipDestination"))
                    .ok());
  }
  // The process dies without a clean shutdown; only synced bytes survive.
  env.Crash();
  env.Heal();

  DurabilityOptions options;
  options.env = &env;
  auto recovered = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->LatestVersion("po"), 3);

  Thesaurus thesaurus = DefaultThesaurus();
  MatchService service(&thesaurus, &*recovered);
  MatchRequest request;
  request.source = "po";
  request.target = "order";
  request.config = SingleThreaded();

  // Warm a session on the oldest version pair...
  MatchRequest pinned = request;
  pinned.source_version = 1;
  auto cold = service.Match(pinned);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->session_reused);

  // ...then ask for latest: the recovered lineage must carry the session
  // from v1 to v3 incrementally, and the result must still be identical
  // to a from-scratch match.
  auto warm = service.Match(request);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->source_version, 3);
  EXPECT_TRUE(warm->session_reused);
  EXPECT_TRUE(warm->incremental);
  ExpectIdenticalToDirect(*warm, *recovered, thesaurus, SingleThreaded(),
                          "post-recovery incremental");
  EXPECT_GE(service.cache_stats().incremental_rematches, 1);
}

TEST(MatchServiceTest, UnknownSchemasAndBadConfigsAreRejected) {
  ServiceFixture fx;
  MatchRequest unknown = fx.Request();
  unknown.source = "nosuch";
  EXPECT_TRUE(fx.service.Match(unknown).status().IsNotFound());
  MatchRequest bad = fx.Request();
  bad.config.tree_match.th_accept = 7.0;
  EXPECT_TRUE(fx.service.Match(bad).status().IsInvalidArgument());
}

TEST(MatchServiceTest, LruEvictionAtCapacity) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.Register("order", Fig2PurchaseOrder()).ok());
  MatchService::Options options;
  options.result_cache_capacity = 1;
  MatchService service(&thesaurus, &repo, options);

  MatchRequest forward;
  forward.source = "po";
  forward.target = "order";
  forward.config = SingleThreaded();
  MatchRequest backward = forward;
  backward.source = "order";
  backward.target = "po";

  ASSERT_TRUE(service.Match(forward).ok());
  ASSERT_TRUE(service.Match(backward).ok());  // evicts the forward entry
  auto again = service.Match(forward);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->result_cache_hit);
  EXPECT_GT(service.cache_stats().result_evictions, 0);
}

/// cache_stats() is a view over the metrics registry: the registry's
/// cupid.service.* counters and the per-instance stats must tell the same
/// story, and a second service on the same registry must start from zero
/// (baseline-delta semantics) while the shared counters keep accumulating.
TEST(MatchServiceTest, CacheStatsMirrorTheMetricsRegistry) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.Register("order", Fig2PurchaseOrder()).ok());
  obs::MetricsRegistry registry;
  MatchService::Options options;
  options.metrics = &registry;
  MatchService service(&thesaurus, &repo, options);

  MatchRequest request;
  request.source = "po";
  request.target = "order";
  request.config = SingleThreaded();
  ASSERT_TRUE(service.Match(request).ok());  // miss, creates a session
  ASSERT_TRUE(service.Match(request).ok());  // result-cache hit

  auto counter_value = [&](const std::string& name) -> int64_t {
    for (const obs::MetricSnapshot& m : registry.Snapshot()) {
      if (m.name == name) return m.value;
    }
    ADD_FAILURE() << "metric not registered: " << name;
    return -1;
  };
  MatchService::CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.result_hits, 1);
  EXPECT_EQ(stats.result_misses, 1);
  EXPECT_EQ(stats.sessions_created, 1);
  EXPECT_EQ(counter_value("cupid.service.result_cache.hits"),
            stats.result_hits);
  EXPECT_EQ(counter_value("cupid.service.result_cache.misses"),
            stats.result_misses);
  EXPECT_EQ(counter_value("cupid.service.sessions.created"),
            stats.sessions_created);

  // The request histogram saw every Match call.
  for (const obs::MetricSnapshot& m : registry.Snapshot()) {
    if (m.name == "cupid.service.request_ms") {
      EXPECT_EQ(m.count, 2);
    }
  }

  // A second service on the same registry baselines at construction: it
  // starts from zero while the shared counters keep accumulating. (Per the
  // CacheStats contract, instance views are exact only while the instance
  // is the counters' sole updater — the one-service-per-process topology.)
  MatchService second(&thesaurus, &repo, options);
  EXPECT_EQ(second.cache_stats().result_misses, 0);
  ASSERT_TRUE(second.Match(request).ok());
  EXPECT_EQ(second.cache_stats().result_misses, 1);
  EXPECT_EQ(second.cache_stats().result_hits, 0);
  EXPECT_EQ(counter_value("cupid.service.result_cache.misses"), 2);
}

TEST(MatchServiceTest, SessionLruEvictionRewarmsBitIdentically) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.Register("order", Fig2PurchaseOrder()).ok());
  MatchService::Options options;
  options.result_cache_capacity = 0;  // isolate session behavior
  options.session_capacity = 1;
  MatchService service(&thesaurus, &repo, options);

  MatchRequest forward;
  forward.source = "po";
  forward.target = "order";
  forward.config = SingleThreaded();
  MatchRequest backward = forward;
  backward.source = "order";
  backward.target = "po";

  // Warm (po, order); the reverse pair then evicts it at capacity 1.
  ASSERT_TRUE(service.Match(forward).ok());
  ASSERT_TRUE(service.Match(backward).ok());
  EXPECT_EQ(service.cache_stats().sessions_evicted, 1);

  // The evicted pair re-warms a fresh (cold) session — a new session is
  // created, and the result is still bit-identical to a direct match.
  auto rewarmed = service.Match(forward);
  ASSERT_TRUE(rewarmed.ok()) << rewarmed.status().ToString();
  EXPECT_FALSE(rewarmed->session_reused);
  EXPECT_EQ(service.cache_stats().sessions_created, 3);
  ExpectIdenticalToDirect(*rewarmed, repo, thesaurus, SingleThreaded(),
                          "re-warmed after eviction");

  // The re-warmed session keeps working incrementally: a repository edit
  // followed by a re-request goes down the warm path, bit-identically.
  ASSERT_TRUE(repo.ApplyEdit("po", SchemaEdit::RenameElement(
                                       EditSide::kSource,
                                       "PO.POLines.Item.Qty", "Quantity"))
                  .ok());
  auto after_edit = service.Match(forward);
  ASSERT_TRUE(after_edit.ok()) << after_edit.status().ToString();
  EXPECT_TRUE(after_edit->session_reused);
  EXPECT_TRUE(after_edit->incremental);
  ExpectIdenticalToDirect(*after_edit, repo, thesaurus, SingleThreaded(),
                          "incremental on re-warmed session");
}

TEST(MatchServiceTest, SessionLruTouchKeepsHotPairs) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.Register("order", Fig2PurchaseOrder()).ok());
  MatchService::Options options;
  options.result_cache_capacity = 0;
  options.session_capacity = 2;
  MatchService service(&thesaurus, &repo, options);

  MatchRequest ab;  // pair A
  ab.source = "po";
  ab.target = "order";
  ab.config = SingleThreaded();
  MatchRequest ba = ab;  // pair B
  ba.source = "order";
  ba.target = "po";
  MatchRequest aa = ab;  // pair C (self-match)
  aa.target = "po";

  ASSERT_TRUE(service.Match(ab).ok());  // A
  ASSERT_TRUE(service.Match(ba).ok());  // B
  ASSERT_TRUE(service.Match(ab).ok());  // touch A: B becomes LRU
  ASSERT_TRUE(service.Match(aa).ok());  // C evicts B, not A
  auto warm_a = service.Match(ab);
  ASSERT_TRUE(warm_a.ok());
  EXPECT_TRUE(warm_a->session_reused) << "touched pair must stay warm";
  auto cold_b = service.Match(ba);
  ASSERT_TRUE(cold_b.ok());
  EXPECT_FALSE(cold_b->session_reused) << "idle pair must have been evicted";
  EXPECT_EQ(service.cache_stats().sessions_evicted, 2);
}

TEST(MatchServiceTest, ConcurrentClientsBitIdentical) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.Register("order", Fig2PurchaseOrder()).ok());
  auto cidx = CidxSchema();
  auto excel = ExcelSchema();
  ASSERT_TRUE(cidx.ok() && excel.ok());
  ASSERT_TRUE(repo.Register("cidx", std::move(*cidx)).ok());
  ASSERT_TRUE(repo.Register("excel", std::move(*excel)).ok());
  MatchService service(&thesaurus, &repo);

  const CupidConfig config = SingleThreaded();
  struct Pair {
    const char* source;
    const char* target;
  };
  const Pair pairs[] = {{"po", "order"}, {"cidx", "excel"}, {"order", "po"}};

  // Reference mappings computed up front, single-threaded.
  std::vector<Mapping> want_leaf, want_nonleaf;
  for (const Pair& p : pairs) {
    CupidMatcher matcher(&thesaurus, config);
    auto ref = matcher.Match(**repo.Get(p.source), **repo.Get(p.target));
    ASSERT_TRUE(ref.ok());
    want_leaf.push_back(ref->leaf_mapping);
    want_nonleaf.push_back(ref->nonleaf_mapping);
  }

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 12;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        size_t which = static_cast<size_t>(c + i) % 3;
        MatchRequest request;
        request.source = pairs[which].source;
        request.target = pairs[which].target;
        request.config = config;
        // Mix cache hits, session reuse and one-shot paths.
        request.use_result_cache = (i % 3) != 1;
        request.use_session = (i % 4) != 3;
        auto r = service.Match(request);
        if (!r.ok()) {
          ++failures;
          continue;
        }
        const Mapping& leaf = want_leaf[which];
        if (r->leaf_mapping.size() != leaf.size()) {
          ++mismatches;
          continue;
        }
        for (size_t e = 0; e < leaf.size(); ++e) {
          if (r->leaf_mapping.elements[e].source_path !=
                  leaf.elements[e].source_path ||
              r->leaf_mapping.elements[e].target_path !=
                  leaf.elements[e].target_path ||
              r->leaf_mapping.elements[e].wsim != leaf.elements[e].wsim) {
            ++mismatches;
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  MatchService::CacheStats stats = service.cache_stats();
  EXPECT_GT(stats.result_hits, 0);   // the cache actually served traffic
  EXPECT_GT(stats.sessions_reused, 0);
}

// ----------------------------------------------------------- job scheduler --

TEST(JobSchedulerTest, BatchesAtOneAndManyWorkersBitIdentical) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.Register("order", Fig2PurchaseOrder()).ok());

  const CupidConfig config = SingleThreaded();
  CupidMatcher matcher(&thesaurus, config);
  auto ref = matcher.Match(**repo.Get("po"), **repo.Get("order"));
  ASSERT_TRUE(ref.ok());

  for (int workers : {1, 4}) {
    MatchService service(&thesaurus, &repo);
    JobScheduler::Options options;
    options.num_threads = workers;
    JobScheduler scheduler(&service, options);
    EXPECT_EQ(scheduler.num_threads(), workers);

    std::vector<MatchRequest> batch;
    for (int i = 0; i < 12; ++i) {
      MatchRequest request;
      request.source = "po";
      request.target = "order";
      request.config = config;
      request.use_result_cache = i % 2 == 0;
      batch.push_back(request);
    }
    std::vector<Result<MatchResponse>> results =
        scheduler.MatchBatch(std::move(batch));
    ASSERT_EQ(results.size(), 12u);
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << workers << " workers, job " << i << ": "
          << results[i].status().ToString();
      ExpectMappingEqual(results[i]->leaf_mapping, ref->leaf_mapping,
                         StringFormat("workers=%d job=%zu", workers, i));
      EXPECT_GE(results[i]->timings.queue_ms, 0.0);
    }
  }
}

TEST(JobSchedulerTest, BatchSurfacesPerRequestErrors) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.Register("order", Fig2PurchaseOrder()).ok());
  MatchService service(&thesaurus, &repo);
  JobScheduler scheduler(&service);

  MatchRequest good;
  good.source = "po";
  good.target = "order";
  good.config = SingleThreaded();
  MatchRequest bad = good;
  bad.target = "nosuch";
  auto results = scheduler.MatchBatch({good, bad, good});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].status().IsNotFound());
  EXPECT_TRUE(results[2].ok());
}

TEST(JobSchedulerTest, BoundedAdmissionAndShutdown) {
  Thesaurus thesaurus = DefaultThesaurus();
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  MatchService service(&thesaurus, &repo);
  JobScheduler::Options options;
  options.num_threads = 1;
  options.max_pending = 2;
  JobScheduler scheduler(&service, options);

  // Pin the single worker on a latch so admission counts are deterministic.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto blocking = [released]() -> Result<MatchResponse> {
    released.wait();
    return MatchResponse{};
  };
  auto quick = []() -> Result<MatchResponse> { return MatchResponse{}; };

  auto job1 = JobSchedulerTestPeer::SubmitTask(&scheduler, blocking);
  ASSERT_TRUE(job1.ok());
  auto job2 = JobSchedulerTestPeer::SubmitTask(&scheduler, quick);
  ASSERT_TRUE(job2.ok());  // queued behind the pinned worker
  auto job3 = JobSchedulerTestPeer::SubmitTask(&scheduler, quick);
  ASSERT_EQ(job3.status().code(), StatusCode::kOutOfRange);  // bound hit

  release.set_value();
  EXPECT_TRUE((*job1)->Wait().ok());
  EXPECT_TRUE((*job2)->Wait().ok());
  EXPECT_TRUE((*job1)->done());
  EXPECT_GE((*job2)->queue_ms(), 0.0);
  EXPECT_EQ(scheduler.pending(), 0);

  scheduler.Shutdown();
  auto after = JobSchedulerTestPeer::SubmitTask(&scheduler, quick);
  EXPECT_EQ(after.status().code(), StatusCode::kUnsupported);
  scheduler.Shutdown();  // idempotent
}

}  // namespace
}  // namespace cupid
