// Tests for the importers (src/importers): XML parser, XSD-lite loader,
// SQL DDL parser, native format, format auto-dispatch, and native-format
// persistence round trips over the shipped data/ fixtures.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "importers/dtd_parser.h"
#include "importers/native_format.h"
#include "importers/schema_io.h"
#include "importers/sql_ddl_parser.h"
#include "importers/xml_parser.h"
#include "importers/xml_schema_loader.h"
#include "schema/schema_printer.h"
#include "tree/tree_builder.h"

namespace cupid {
namespace {

// -------------------------------------------------------------- xml parser --

TEST(XmlParserTest, ElementsAttributesText) {
  auto r = ParseXml("<a x=\"1\" y='two'><b/><c>text</c></a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->tag, "a");
  EXPECT_EQ(*r->Attr("x"), "1");
  EXPECT_EQ(*r->Attr("y"), "two");
  EXPECT_EQ(r->Attr("z"), nullptr);
  EXPECT_EQ(r->AttrOr("z", "dflt"), "dflt");
  ASSERT_EQ(r->children.size(), 2u);
  EXPECT_EQ(r->children[0].tag, "b");
  EXPECT_EQ(r->children[1].text, "text");
  EXPECT_EQ(r->FirstChild("c")->tag, "c");
  EXPECT_EQ(r->ChildrenNamed("b").size(), 1u);
}

TEST(XmlParserTest, PrologCommentsCdataEntities) {
  auto r = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- top comment -->\n"
      "<root attr=\"a&amp;b\">\n"
      "  <!-- inner -->\n"
      "  <![CDATA[raw <stuff>]]>\n"
      "  <child>x &lt; y</child>\n"
      "</root>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(*r->Attr("attr"), "a&b");
  EXPECT_EQ(r->children[0].text, "x < y");
  EXPECT_NE(r->text.find("raw <stuff>"), std::string::npos);
}

TEST(XmlParserTest, ErrorsCarryLineNumbers) {
  auto r = ParseXml("<a>\n<b>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_NE(r.status().message().find("line 3"), std::string::npos);
}

TEST(XmlParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a x=1></a>").ok());        // unquoted attribute
  EXPECT_FALSE(ParseXml("<a><b></b></a><c/>").ok()); // trailing content
  EXPECT_FALSE(ParseXml("<a><![CDATA[oops</a>").ok());
}

// ------------------------------------------------------------- xsd loader --

TEST(XmlSchemaLoaderTest, LoadsNestedSchema) {
  auto r = LoadXmlSchema(R"(
<schema name="PO">
  <element name="Items" minOccurs="0">
    <element name="Item">
      <attribute name="Qty" type="decimal" use="optional"/>
      <element name="ItemNumber" type="int"/>
    </element>
  </element>
</schema>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  EXPECT_EQ(s.name(), "PO");
  ElementId items = s.FindByPath("PO.Items");
  ASSERT_NE(items, kNoElement);
  EXPECT_TRUE(s.element(items).optional);
  ElementId qty = s.FindByPath("PO.Items.Item.Qty");
  ASSERT_NE(qty, kNoElement);
  EXPECT_EQ(s.element(qty).data_type, DataType::kDecimal);
  EXPECT_TRUE(s.element(qty).optional);
  ElementId num = s.FindByPath("PO.Items.Item.ItemNumber");
  EXPECT_EQ(s.element(num).data_type, DataType::kInteger);
}

TEST(XmlSchemaLoaderTest, SharedComplexTypes) {
  auto r = LoadXmlSchema(R"(
<schema name="S">
  <element name="ShipTo" type="Address"/>
  <complexType name="Address">
    <attribute name="Street" type="string"/>
  </complexType>
  <element name="BillTo" type="Address"/>
</schema>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  ElementId ship = s.FindByPath("S.ShipTo");
  ElementId bill = s.FindByPath("S.BillTo");
  ASSERT_EQ(s.derived_from(ship).size(), 1u);
  ASSERT_EQ(s.derived_from(bill).size(), 1u);
  EXPECT_EQ(s.derived_from(ship)[0], s.derived_from(bill)[0]);
  EXPECT_EQ(s.element(s.derived_from(ship)[0]).kind, ElementKind::kTypeDef);
}

TEST(XmlSchemaLoaderTest, Rejections) {
  EXPECT_FALSE(LoadXmlSchema("<notschema/>").ok());
  EXPECT_FALSE(LoadXmlSchema("<schema><element/></schema>").ok());  // no name
  EXPECT_FALSE(
      LoadXmlSchema(
          "<schema><element name=\"x\" type=\"nosuchtype\"/></schema>")
          .ok());
  EXPECT_FALSE(
      LoadXmlSchema("<schema><complexType name=\"A\"/>"
                    "<complexType name=\"A\"/></schema>")
          .ok());  // duplicate type
}

// ---------------------------------------------------------------- sql ddl --

TEST(SqlDdlTest, ParsesTablesColumnsTypes) {
  auto r = ParseSqlDdl("DB", R"(
CREATE TABLE Orders (
  OrderID INT PRIMARY KEY,
  Freight DECIMAL(10,2) NULL,
  Notes VARCHAR(200),
  Placed TIMESTAMP NOT NULL
);)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  ElementId oid = s.FindByPath("DB.Orders.OrderID");
  ASSERT_NE(oid, kNoElement);
  EXPECT_TRUE(s.element(oid).is_key);
  EXPECT_FALSE(s.element(oid).optional);
  ElementId freight = s.FindByPath("DB.Orders.Freight");
  EXPECT_EQ(s.element(freight).data_type, DataType::kDecimal);
  EXPECT_TRUE(s.element(freight).optional);
  // Plain columns are NULLable by default.
  EXPECT_TRUE(s.element(s.FindByPath("DB.Orders.Notes")).optional);
  ElementId placed = s.FindByPath("DB.Orders.Placed");
  EXPECT_EQ(s.element(placed).data_type, DataType::kDateTime);
  EXPECT_FALSE(s.element(placed).optional);
}

TEST(SqlDdlTest, InlineAndTableLevelForeignKeys) {
  auto r = ParseSqlDdl("DB", R"(
CREATE TABLE Orders (
  OrderID INT PRIMARY KEY,
  CustomerID INT REFERENCES Customers(CustomerID),
  ProductID INT,
  FOREIGN KEY (ProductID) REFERENCES Products(ProductID)
);
CREATE TABLE Customers ( CustomerID INT PRIMARY KEY );
CREATE TABLE Products ( ProductID INT PRIMARY KEY );)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  auto fks = s.ElementsOfKind(ElementKind::kRefInt);
  ASSERT_EQ(fks.size(), 2u);
  for (ElementId fk : fks) {
    ASSERT_EQ(s.references(fk).size(), 1u);
    EXPECT_EQ(s.element(s.references(fk)[0]).kind, ElementKind::kKey);
  }
}

TEST(SqlDdlTest, CompoundPrimaryKeyAndConstraintClause) {
  auto r = ParseSqlDdl("DB", R"(
CREATE TABLE Link (
  A INT NOT NULL,
  B INT NOT NULL,
  CONSTRAINT pk_link PRIMARY KEY (A, B)
);)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  EXPECT_TRUE(s.element(s.FindByPath("DB.Link.A")).is_key);
  EXPECT_TRUE(s.element(s.FindByPath("DB.Link.B")).is_key);
  auto keys = s.ElementsOfKind(ElementKind::kKey);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(s.aggregates(keys[0]).size(), 2u);
}

TEST(SqlDdlTest, CommentsAndCaseInsensitivity) {
  auto r = ParseSqlDdl("DB",
                       "-- a comment\n"
                       "create table t ( x int primary key ); -- trailing\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r->FindByPath("DB.t.x"), kNoElement);
}

TEST(SqlDdlTest, Rejections) {
  EXPECT_FALSE(ParseSqlDdl("DB", "DROP TABLE x;").ok());
  EXPECT_FALSE(ParseSqlDdl("DB", "CREATE VIEW v AS SELECT 1;").ok());
  EXPECT_FALSE(ParseSqlDdl("DB", "CREATE TABLE t ( x frobtype );").ok());
  auto r = ParseSqlDdl(
      "DB", "CREATE TABLE t ( x INT REFERENCES nowhere(y) );");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown table"), std::string::npos);
  EXPECT_FALSE(
      ParseSqlDdl("DB", "CREATE TABLE t ( PRIMARY KEY (missing) );").ok());
}

// ------------------------------------------------------------ native format --

TEST(NativeFormatTest, ParseBasics) {
  auto r = ParseNativeSchema(
      "# comment\n"
      "schema PO\n"
      "node Items optional\n"
      "  node Item\n"
      "    leaf Qty decimal optional\n"
      "    leaf Line integer key\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  EXPECT_TRUE(s.element(s.FindByPath("PO.Items")).optional);
  ElementId qty = s.FindByPath("PO.Items.Item.Qty");
  ASSERT_NE(qty, kNoElement);
  EXPECT_TRUE(s.element(qty).optional);
  EXPECT_TRUE(s.element(s.FindByPath("PO.Items.Item.Line")).is_key);
}

TEST(NativeFormatTest, SharedTypesAndForwardReferences) {
  auto r = ParseNativeSchema(
      "schema S\n"
      "node ShipTo : Address\n"   // forward reference
      "node BillTo : Address\n"
      "type Address\n"
      "  leaf Street string\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  ElementId ship = s.FindByPath("S.ShipTo");
  ASSERT_EQ(s.derived_from(ship).size(), 1u);
  EXPECT_EQ(s.element(s.derived_from(ship)[0]).name, "Address");
}

TEST(NativeFormatTest, Rejections) {
  EXPECT_FALSE(ParseNativeSchema("").ok());
  EXPECT_FALSE(ParseNativeSchema("node X\n").ok());         // no schema line
  EXPECT_FALSE(ParseNativeSchema("schema S\n leaf x int\n").ok());  // odd indent
  EXPECT_FALSE(
      ParseNativeSchema("schema S\nnode A : NoSuchType\n").ok());
  EXPECT_FALSE(ParseNativeSchema("schema S\nleaf x\n").ok());  // no type
  EXPECT_FALSE(ParseNativeSchema("schema S\nbogus x\n").ok());
  EXPECT_FALSE(
      ParseNativeSchema("schema S\nnode A\n    leaf x int\n").ok());  // jump
}

// -------------------------------------------------------------------- dtd --

TEST(DtdParserTest, ElementsAttributesAndContentModels) {
  auto r = ParseDtd("PO", R"(
<!-- purchase order -->
<!ELEMENT po (header, lines+, note?)>
<!ELEMENT header (#PCDATA)>
<!ELEMENT lines (item*)>
<!ELEMENT item (#PCDATA)>
<!ATTLIST lines count CDATA #REQUIRED
                comment CDATA #IMPLIED>
<!ATTLIST item qty NMTOKEN #REQUIRED>
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  EXPECT_NE(s.FindByPath("PO.po.header"), kNoElement);
  ElementId note = s.FindByPath("PO.po.note");
  ASSERT_NE(note, kNoElement);
  EXPECT_TRUE(s.element(note).optional);  // '?' multiplicity
  ElementId count = s.FindByPath("PO.po.lines.count");
  ASSERT_NE(count, kNoElement);
  EXPECT_FALSE(s.element(count).optional);  // #REQUIRED
  ElementId comment = s.FindByPath("PO.po.lines.comment");
  EXPECT_TRUE(s.element(comment).optional);  // #IMPLIED
  ElementId item = s.FindByPath("PO.po.lines.item");
  ASSERT_NE(item, kNoElement);
  EXPECT_TRUE(s.element(item).optional);  // '*' multiplicity
}

TEST(DtdParserTest, SharedElementsBecomeTypes) {
  auto r = ParseDtd("S", R"(
<!ELEMENT order (shipto, billto)>
<!ELEMENT shipto (address)>
<!ELEMENT billto (address)>
<!ELEMENT address (#PCDATA)>
<!ATTLIST address street CDATA #REQUIRED city CDATA #REQUIRED>
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  // address is referenced twice -> shared type, expanded per context.
  auto types = s.ElementsOfKind(ElementKind::kTypeDef);
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(s.element(types[0]).name, "address");
  auto tree = BuildSchemaTree(*r);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  int street_contexts = 0;
  for (TreeNodeId n = 0; n < tree->num_nodes(); ++n) {
    std::string path = tree->PathName(n);
    if (path.find("street") != std::string::npos) ++street_contexts;
  }
  EXPECT_EQ(street_contexts, 2);  // shipto and billto contexts
}

TEST(DtdParserTest, IdIdrefBecomesRefInt) {
  auto r = ParseDtd("S", R"(
<!ELEMENT doc (product+, orderline+)>
<!ELEMENT product EMPTY>
<!ATTLIST product pid ID #REQUIRED name CDATA #REQUIRED>
<!ELEMENT orderline EMPTY>
<!ATTLIST orderline ref IDREF #REQUIRED qty CDATA #REQUIRED>
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  auto keys = s.ElementsOfKind(ElementKind::kKey);
  ASSERT_EQ(keys.size(), 1u);
  auto refs = s.ElementsOfKind(ElementKind::kRefInt);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(s.references(refs[0])[0], keys[0]);
  // The ID attribute is marked as a key member.
  ElementId pid = s.FindByPath("S.doc.product.pid");
  ASSERT_NE(pid, kNoElement);
  EXPECT_TRUE(s.element(pid).is_key);
  // Join-view augmentation picks the RefInt up.
  auto tree = BuildSchemaTree(*r);
  ASSERT_TRUE(tree.ok());
  bool has_join = false;
  for (TreeNodeId n = 0; n < tree->num_nodes(); ++n) {
    has_join |= tree->node(n).is_join_view;
  }
  EXPECT_TRUE(has_join);
}

TEST(DtdParserTest, IdrefWithoutAnyIdIsTolerated) {
  auto r = ParseDtd("S", R"(
<!ELEMENT doc (a)>
<!ELEMENT a EMPTY>
<!ATTLIST a ref IDREF #REQUIRED>
)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->ElementsOfKind(ElementKind::kRefInt).empty());
}

TEST(DtdParserTest, RecursiveDtdRejected) {
  auto r = ParseDtd("S", "<!ELEMENT a (a?)>");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCycleDetected());
}

TEST(DtdParserTest, Rejections) {
  EXPECT_FALSE(ParseDtd("S", "").ok());                       // no elements
  EXPECT_FALSE(ParseDtd("S", "<!ELEMENT a (b)").ok());        // unterminated
  EXPECT_FALSE(ParseDtd("S", "<!BOGUS a>").ok());             // unknown decl
  EXPECT_FALSE(ParseDtd("S", "<!ATTLIST nosuch x CDATA #REQUIRED>").ok());
  EXPECT_FALSE(
      ParseDtd("S", "<!ELEMENT a (b)>\n<!ELEMENT a (c)>").ok());  // duplicate
}

TEST(DtdParserTest, UndeclaredChildBecomesStringLeaf) {
  auto r = ParseDtd("S", "<!ELEMENT a (mystery)>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ElementId m = r->FindByPath("S.a.mystery");
  ASSERT_NE(m, kNoElement);
  EXPECT_EQ(r->element(m).kind, ElementKind::kAtomic);
  EXPECT_EQ(r->element(m).data_type, DataType::kString);
}

TEST(NativeFormatTest, KeysAndRefsRoundTrip) {
  // The relational subset: keys aggregating sibling columns and referential
  // constraints with forward path targets survive a serialize/parse cycle.
  auto r = ParseNativeSchema(
      "schema DB\n"
      "node Orders\n"
      "  leaf OrderID integer key\n"
      "  key Orders_pk = OrderID\n"
      "  leaf CustomerID integer\n"
      "  ref Orders_Customers_fk = CustomerID -> DB.Customers.Customers_pk\n"
      "node Customers\n"
      "  leaf CustomerID integer key\n"
      "  key Customers_pk = CustomerID\n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Schema& s = *r;
  auto keys = s.ElementsOfKind(ElementKind::kKey);
  ASSERT_EQ(keys.size(), 2u);
  auto refs = s.ElementsOfKind(ElementKind::kRefInt);
  ASSERT_EQ(refs.size(), 1u);
  ASSERT_EQ(s.references(refs[0]).size(), 1u);
  EXPECT_EQ(s.element(s.references(refs[0])[0]).name, "Customers_pk");
  ASSERT_EQ(s.aggregates(refs[0]).size(), 1u);
  EXPECT_EQ(s.element(s.aggregates(refs[0])[0]).name, "CustomerID");
  EXPECT_TRUE(s.element(refs[0]).not_instantiated);

  std::string text = SerializeNativeSchema(s);
  auto r2 = ParseNativeSchema(text);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString() << "\n" << text;
  EXPECT_EQ(PrintSchema(s), PrintSchema(*r2));
  EXPECT_EQ(PrintSchemaEdges(s), PrintSchemaEdges(*r2));
  // The join-view expansion the references drive must reproduce too.
  auto t1 = BuildSchemaTree(s);
  auto t2 = BuildSchemaTree(*r2);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(t1->num_nodes(), t2->num_nodes());
}

TEST(NativeFormatTest, KeyRefRejections) {
  EXPECT_FALSE(ParseNativeSchema("schema S\nkey\n").ok());  // no name
  EXPECT_FALSE(  // unknown member
      ParseNativeSchema("schema S\nnode T\n  key pk = NoSuchColumn\n").ok());
  EXPECT_FALSE(  // ref without target
      ParseNativeSchema("schema S\nnode T\n  ref fk\n").ok());
  EXPECT_FALSE(  // unresolvable target path
      ParseNativeSchema("schema S\nnode T\n  ref fk -> No.Such.Path\n").ok());
  EXPECT_FALSE(  // '->' on a key line
      ParseNativeSchema("schema S\nnode T\n  leaf C integer\n"
                        "  key pk = C -> S.T\n")
          .ok());
}

// ------------------------------------------------------------- schema_io --

TEST(SchemaIoTest, FormatDispatch) {
  EXPECT_EQ(*SchemaFormatFromPath("a/b/x.xml"), SchemaFormat::kXmlSchema);
  EXPECT_EQ(*SchemaFormatFromPath("x.sql"), SchemaFormat::kSqlDdl);
  EXPECT_EQ(*SchemaFormatFromPath("x.ddl"), SchemaFormat::kSqlDdl);
  EXPECT_EQ(*SchemaFormatFromPath("x.dtd"), SchemaFormat::kDtd);
  EXPECT_EQ(*SchemaFormatFromPath("x.cupid"), SchemaFormat::kNative);
  EXPECT_FALSE(SchemaFormatFromPath("x.yaml").ok());
  EXPECT_EQ(*SchemaFormatFromName("XML"), SchemaFormat::kXmlSchema);
  EXPECT_EQ(*SchemaFormatFromName("cupid"), SchemaFormat::kNative);
  EXPECT_FALSE(SchemaFormatFromName("json").ok());
}

TEST(SchemaIoTest, ParseSchemaTextDispatches) {
  auto xml = ParseSchemaText(SchemaFormat::kXmlSchema, "ignored",
                             "<schema name=\"S\"><element name=\"a\" "
                             "type=\"string\"/></schema>");
  ASSERT_TRUE(xml.ok()) << xml.status().ToString();
  EXPECT_EQ(xml->name(), "S");
  auto sql = ParseSchemaText(SchemaFormat::kSqlDdl, "DB",
                             "CREATE TABLE t ( x INT );");
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(sql->name(), "DB");
  auto native =
      ParseSchemaText(SchemaFormat::kNative, "ignored", "schema N\n");
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(native->name(), "N");
}

// --------------------------------------- shipped-fixture round trips ------

/// Flattened identity of an expanded schema tree: node count plus, per node
/// in pre-order, the context path, the element kind/type and the tree
/// flags. Two schemas with equal signatures match identically (the matcher
/// only sees the tree).
std::vector<std::string> TreeSignature(const Schema& s) {
  auto tree = BuildSchemaTree(s);
  EXPECT_TRUE(tree.ok()) << tree.status().ToString();
  std::vector<std::string> out;
  if (!tree.ok()) return out;
  for (TreeNodeId n = 0; n < tree->num_nodes(); ++n) {
    const TreeNode& node = tree->node(n);
    std::string sig = tree->PathName(n);
    if (node.source != kNoElement) {
      const Element& e = s.element(node.source);
      sig += std::string("|") + ElementKindName(e.kind) + "|" +
             DataTypeName(e.data_type);
      if (e.optional) sig += "|optional";
      if (e.is_key) sig += "|key";
    }
    if (node.optional) sig += "|tree-optional";
    if (node.is_join_view) sig += "|join-view";
    out.push_back(std::move(sig));
  }
  return out;
}

/// Every importer format -> native_format dump -> reload must be
/// tree-identical (the persistence contract of service/SchemaRepository).
void ExpectNativeRoundTripIdentical(const std::string& file) {
  std::string path = std::string(CUPID_DATA_DIR) + "/" + file;
  auto original = LoadSchemaFileAuto(path);
  ASSERT_TRUE(original.ok()) << path << ": " << original.status().ToString();
  std::string dumped = SerializeNativeSchema(*original);
  auto reloaded = ParseNativeSchema(dumped);
  ASSERT_TRUE(reloaded.ok())
      << path << ": " << reloaded.status().ToString() << "\n" << dumped;
  EXPECT_EQ(PrintSchema(*original), PrintSchema(*reloaded)) << path;
  EXPECT_EQ(TreeSignature(*original), TreeSignature(*reloaded)) << path;
  // A second cycle must be byte-stable (the fixed point of persistence).
  EXPECT_EQ(dumped, SerializeNativeSchema(*reloaded)) << path;
}

TEST(NativeRoundTripTest, XmlFixtures) {
  ExpectNativeRoundTripIdentical("cidx.xml");
  ExpectNativeRoundTripIdentical("excel.xml");
}

TEST(NativeRoundTripTest, SqlFixtures) {
  ExpectNativeRoundTripIdentical("rdb.sql");
  ExpectNativeRoundTripIdentical("star.sql");
}

TEST(NativeRoundTripTest, DtdFixture) {
  ExpectNativeRoundTripIdentical("order.dtd");
}

TEST(NativeRoundTripTest, NativeFixtures) {
  ExpectNativeRoundTripIdentical("po.cupid");
  ExpectNativeRoundTripIdentical("purchase_order.cupid");
}

TEST(NativeFormatTest, SerializeParseRoundTrip) {
  auto r = ParseNativeSchema(
      "schema S\n"
      "type Address\n"
      "  leaf Street string\n"
      "node ShipTo : Address optional\n"
      "node Items\n"
      "  leaf Count integer key\n");
  ASSERT_TRUE(r.ok());
  std::string text = SerializeNativeSchema(*r);
  auto r2 = ParseNativeSchema(text);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString() << "\n" << text;
  EXPECT_EQ(PrintSchema(*r), PrintSchema(*r2));
  EXPECT_EQ(PrintSchemaEdges(*r), PrintSchemaEdges(*r2));
}

}  // namespace
}  // namespace cupid
