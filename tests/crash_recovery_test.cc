// Crash-recovery property test: a durable SchemaRepository is crashed at
// EVERY injected filesystem syscall of a scripted 22-mutation stream
// (2 registrations + 20 random edits), then recovered, and the recovered
// state must equal exactly the acknowledged prefix — bit-identical
// schemas, intact edit lineage, and a warm incremental Rematch that is
// value-for-value identical to a from-scratch CupidMatcher run.
//
// This is the kill-point sweep from the LevelDB/RocksDB playbook: if any
// single crash point can lose an acknowledged mutation, resurrect an
// unacknowledged one, or corrupt lineage, some iteration of the sweep
// fails and names the offending syscall index.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/cupid_matcher.h"
#include "eval/datasets.h"
#include "incremental/match_session.h"
#include "schema/schema_printer.h"
#include "service/schema_repository.h"
#include "storage/fault_injection_env.h"
#include "tests/match_diff_testutil.h"
#include "thesaurus/default_thesaurus.h"
#include "util/random.h"

namespace cupid {
namespace {

struct ScriptedMutation {
  bool is_register = false;
  std::string name;
  Schema schema{"unused"};  // registers
  SchemaEdit edit;          // edits
};

struct Script {
  std::vector<ScriptedMutation> mutations;
  /// Per schema: PrintSchema of every version, in prefix order — the
  /// ground truth the recovered repository is compared against.
  std::vector<std::vector<std::string>> prints_after;  // [mutation][version]
};

/// Generates the deterministic mutation stream shared by every sweep
/// iteration: register "src" and "tgt", then `num_edits` random edits that
/// are guaranteed to apply (regenerated until valid against shadows).
Script MakeScript(int num_edits) {
  Script script;
  Schema src = Fig2Po();
  Schema tgt = Fig2PurchaseOrder();
  auto push = [&script](ScriptedMutation m) {
    script.mutations.push_back(std::move(m));
  };
  ScriptedMutation reg_src;
  reg_src.is_register = true;
  reg_src.name = "src";
  reg_src.schema = src;
  push(std::move(reg_src));
  ScriptedMutation reg_tgt;
  reg_tgt.is_register = true;
  reg_tgt.name = "tgt";
  reg_tgt.schema = tgt;
  push(std::move(reg_tgt));

  SplitMix64 rng(0xC0FFEE);
  int counter = 0;
  for (int i = 0; i < num_edits; ++i) {
    for (;;) {
      SchemaEdit edit = RandomSessionEdit(&rng, src, tgt, counter++);
      Schema& shadow = edit.side == EditSide::kSource ? src : tgt;
      Schema applied = shadow;
      if (!ApplySchemaEdit(&applied, edit).ok()) continue;
      shadow = std::move(applied);
      ScriptedMutation m;
      m.name = edit.side == EditSide::kSource ? "src" : "tgt";
      m.edit = std::move(edit);
      push(std::move(m));
      break;
    }
  }

  // Shadow version history per prefix: simply replay and snapshot prints.
  std::vector<std::string> src_prints, tgt_prints;
  Schema src_state = Fig2Po();
  Schema tgt_state = Fig2PurchaseOrder();
  for (const ScriptedMutation& m : script.mutations) {
    if (m.is_register) {
      (m.name == "src" ? src_prints : tgt_prints)
          .push_back(PrintSchema(m.schema));
    } else {
      Schema& state = m.name == "src" ? src_state : tgt_state;
      EXPECT_TRUE(ApplySchemaEdit(&state, m.edit).ok());
      (m.name == "src" ? src_prints : tgt_prints).push_back(PrintSchema(state));
    }
    script.prints_after.push_back({});  // placeholder, filled below
    script.prints_after.back() = src_prints;
    script.prints_after.back().insert(script.prints_after.back().end(),
                                      tgt_prints.begin(), tgt_prints.end());
  }
  return script;
}

/// Versions of `name` in `repo` as PrintSchema strings, v1..latest.
std::vector<std::string> RepoPrints(const SchemaRepository& repo,
                                    const std::string& name) {
  std::vector<std::string> prints;
  for (int v = 1; v <= repo.LatestVersion(name); ++v) {
    auto schema = repo.Get(name, v);
    if (!schema.ok()) {
      ADD_FAILURE() << name << "@" << v << ": " << schema.status().ToString();
      return prints;
    }
    prints.push_back(PrintSchema(**schema));
  }
  return prints;
}

/// Asserts the recovered repository serves a warm incremental Rematch
/// bit-identical to a from-scratch match: a session opened on version 1 of
/// both schemas is fast-forwarded along the *recovered* edit lineage.
void ExpectWarmRematchIdentical(const SchemaRepository& repo,
                                const Thesaurus& thesaurus) {
  int src_latest = repo.LatestVersion("src");
  int tgt_latest = repo.LatestVersion("tgt");
  if (src_latest == 0 || tgt_latest == 0) return;  // crashed before both
  auto src_v1 = repo.Get("src", 1);
  auto tgt_v1 = repo.Get("tgt", 1);
  ASSERT_TRUE(src_v1.ok() && tgt_v1.ok());
  CupidConfig config;
  config.SetNumThreads(1);
  MatchSession session(&thesaurus, **src_v1, **tgt_v1, config);
  ASSERT_TRUE(session.Rematch().ok());

  auto replay = [&session, &repo](const std::string& name, int latest,
                                  EditSide side) {
    auto chain = repo.EditChain(name, 1, latest);
    ASSERT_TRUE(chain.has_value())
        << name << " lineage 1.." << latest << " lost in recovery";
    for (SchemaEdit edit : *chain) {
      edit.side = side;
      ASSERT_TRUE(session.ApplyEdit(edit).ok());
    }
  };
  replay("src", src_latest, EditSide::kSource);
  replay("tgt", tgt_latest, EditSide::kTarget);

  auto warm = session.Rematch();
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  if (src_latest + tgt_latest > 2) {
    EXPECT_TRUE(session.last_stats().incremental);
  }
  // The fast-forwarded session must land on the repository's latest
  // versions (element ids may differ — a snapshot reparse numbers elements
  // in document order — so compare the printed trees, not ids)...
  auto src_now = repo.Get("src");
  auto tgt_now = repo.Get("tgt");
  ASSERT_TRUE(src_now.ok() && tgt_now.ok());
  EXPECT_EQ(PrintSchema(session.source()), PrintSchema(**src_now));
  EXPECT_EQ(PrintSchema(session.target()), PrintSchema(**tgt_now));
  // ...and its warm result must be bit-identical to a from-scratch match.
  CupidMatcher matcher(&thesaurus, config);
  auto ref = matcher.Match(session.source(), session.target());
  ASSERT_TRUE(ref.ok());
  ExpectIdenticalResults(**warm, *ref, "post-recovery warm rematch");
}

/// Runs the script against a fresh durable repository on `env`, stopping
/// at the first failed mutation. Returns the number acknowledged.
int RunScript(const Script& script, FaultInjectionEnv* env,
              int snapshot_every) {
  DurabilityOptions options;
  options.env = env;
  options.snapshot_every_records = snapshot_every;
  auto repo = SchemaRepository::Recover("wal", options);
  if (!repo.ok()) return 0;
  int acked = 0;
  for (const ScriptedMutation& m : script.mutations) {
    Result<int> r = m.is_register ? repo->Register(m.name, m.schema)
                                  : repo->ApplyEdit(m.name, m.edit);
    if (!r.ok()) break;
    ++acked;
  }
  return acked;
}

TEST(CrashRecoveryTest, KillPointSweepRecoversAcknowledgedPrefix) {
  const int kNumEdits = 20;
  const int kSnapshotEvery = 5;  // several compactions inside the stream
  Script script = MakeScript(kNumEdits);
  Thesaurus thesaurus = DefaultThesaurus();

  // Dry run: count the mutating filesystem ops of a fault-free stream;
  // that is the sweep's upper bound.
  FaultInjectionEnv clean_env;
  int total = static_cast<int>(script.mutations.size());
  ASSERT_EQ(RunScript(script, &clean_env, kSnapshotEvery), total);
  const int64_t num_ops = clean_env.mutating_ops();
  // The stream must actually exercise the interesting machinery: WAL
  // appends/syncs plus several snapshot compactions' worth of file ops.
  ASSERT_GT(num_ops, 100) << "fault coverage shrank unexpectedly";
  std::printf("kill-point sweep: crashing at each of %lld mutating ops\n",
              static_cast<long long>(num_ops));

  int64_t verified_points = 0;
  for (int64_t kill_at = 1; kill_at <= num_ops; ++kill_at) {
    FaultInjectionEnv env;
    FaultInjectionEnv::FailPolicy policy;
    policy.fail_after_ops = kill_at;
    policy.crash_on_failure = true;
    env.SetFailPolicy(policy);
    int acked = RunScript(script, &env, kSnapshotEvery);
    env.Heal();

    DurabilityOptions options;
    options.env = &env;
    options.snapshot_every_records = kSnapshotEvery;
    auto recovered = SchemaRepository::Recover("wal", options);
    ASSERT_TRUE(recovered.ok())
        << "kill_at=" << kill_at << ": " << recovered.status().ToString();

    // Exactly the acknowledged prefix: nothing lost, nothing resurrected.
    std::vector<std::string> expected;
    if (acked > 0) expected = script.prints_after[acked - 1];
    std::vector<std::string> got = RepoPrints(*recovered, "src");
    std::vector<std::string> got_tgt = RepoPrints(*recovered, "tgt");
    got.insert(got.end(), got_tgt.begin(), got_tgt.end());
    ASSERT_EQ(got, expected) << "kill_at=" << kill_at << " acked=" << acked;

    // The recovered repository must also be writable again...
    ASSERT_TRUE(recovered
                    ->Register("probe", Fig2Po())
                    .ok())
        << "kill_at=" << kill_at;
    ++verified_points;
  }
  EXPECT_EQ(verified_points, num_ops);

  // Full warm-rematch equivalence at the crash points where it is most
  // interesting (every prefix length shows up somewhere in the sweep; the
  // bitwise session check is costly, so sample the sweep rather than
  // running it at all num_ops points).
  for (int64_t kill_at = 7; kill_at <= num_ops; kill_at += 13) {
    FaultInjectionEnv env;
    FaultInjectionEnv::FailPolicy policy;
    policy.fail_after_ops = kill_at;
    policy.crash_on_failure = true;
    env.SetFailPolicy(policy);
    RunScript(script, &env, kSnapshotEvery);
    env.Heal();
    DurabilityOptions options;
    options.env = &env;
    options.snapshot_every_records = kSnapshotEvery;
    auto recovered = SchemaRepository::Recover("wal", options);
    ASSERT_TRUE(recovered.ok()) << "kill_at=" << kill_at;
    ExpectWarmRematchIdentical(*recovered, thesaurus);
  }

  // And once with no crash at all: the full 22-mutation lineage re-warms.
  auto final_repo = SchemaRepository::Recover("wal", [&] {
    DurabilityOptions options;
    options.env = &clean_env;
    options.snapshot_every_records = kSnapshotEvery;
    return options;
  }());
  ASSERT_TRUE(final_repo.ok());
  EXPECT_EQ(final_repo->LatestVersion("src") + final_repo->LatestVersion("tgt"),
            2 + kNumEdits);
  ExpectWarmRematchIdentical(*final_repo, thesaurus);
}

}  // namespace
}  // namespace cupid
