// Tests for the generic schema model (src/schema).

#include <gtest/gtest.h>

#include "schema/data_type.h"
#include "schema/schema.h"
#include "schema/schema_builder.h"
#include "schema/schema_printer.h"

namespace cupid {
namespace {

// ------------------------------------------------------------- DataType --

TEST(DataTypeTest, TypeClassBuckets) {
  EXPECT_EQ(TypeClassOf(DataType::kString), TypeClass::kText);
  EXPECT_EQ(TypeClassOf(DataType::kInteger), TypeClass::kNumber);
  EXPECT_EQ(TypeClassOf(DataType::kDecimal), TypeClass::kNumber);
  EXPECT_EQ(TypeClassOf(DataType::kMoney), TypeClass::kNumber);
  EXPECT_EQ(TypeClassOf(DataType::kDate), TypeClass::kTemporal);
  EXPECT_EQ(TypeClassOf(DataType::kBoolean), TypeClass::kBoolean);
  EXPECT_EQ(TypeClassOf(DataType::kComplex), TypeClass::kComplex);
  EXPECT_EQ(TypeClassOf(DataType::kUnknown), TypeClass::kUnknown);
}

TEST(DataTypeTest, ParseSqlNames) {
  EXPECT_EQ(*DataTypeFromName("VARCHAR(30)"), DataType::kString);
  EXPECT_EQ(*DataTypeFromName("int"), DataType::kInteger);
  EXPECT_EQ(*DataTypeFromName("NUMERIC"), DataType::kDecimal);
  EXPECT_EQ(*DataTypeFromName("timestamp"), DataType::kDateTime);
  EXPECT_EQ(*DataTypeFromName("double precision"), DataType::kDouble);
  EXPECT_EQ(*DataTypeFromName("MONEY"), DataType::kMoney);
}

TEST(DataTypeTest, ParseXsdNames) {
  EXPECT_EQ(*DataTypeFromName("xs:string"), DataType::kString);
  EXPECT_EQ(*DataTypeFromName("xs:int"), DataType::kInteger);
  EXPECT_EQ(*DataTypeFromName("xsd:date"), DataType::kDate);
}

TEST(DataTypeTest, ParseRejectsGarbage) {
  EXPECT_TRUE(DataTypeFromName("frobnicator").status().IsParseError());
  EXPECT_TRUE(DataTypeFromName("").status().IsParseError());
}

TEST(DataTypeTest, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(DataType::kAny); ++i) {
    DataType t = static_cast<DataType>(i);
    EXPECT_EQ(*DataTypeFromName(DataTypeName(t)), t) << DataTypeName(t);
  }
}

// --------------------------------------------------------------- Schema --

TEST(SchemaTest, RootIsCreatedByConstructor) {
  Schema s("MySchema");
  EXPECT_EQ(s.num_elements(), 1);
  EXPECT_EQ(s.name(), "MySchema");
  EXPECT_EQ(s.element(s.root()).kind, ElementKind::kRoot);
  EXPECT_EQ(s.parent(s.root()), kNoElement);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SchemaTest, ContainmentStructure) {
  Schema s("S");
  Element table;
  table.name = "Orders";
  table.kind = ElementKind::kContainer;
  ElementId t = s.AddElement(table, s.root());
  Element col;
  col.name = "OrderID";
  col.kind = ElementKind::kAtomic;
  col.data_type = DataType::kInteger;
  ElementId c = s.AddElement(col, t);

  EXPECT_EQ(s.parent(c), t);
  EXPECT_EQ(s.parent(t), s.root());
  ASSERT_EQ(s.children(t).size(), 1u);
  EXPECT_EQ(s.children(t)[0], c);
  EXPECT_TRUE(s.IsLeaf(c));
  EXPECT_FALSE(s.IsLeaf(t));
  EXPECT_TRUE(s.Validate().ok());
}

TEST(SchemaTest, PathNames) {
  RelationalSchemaBuilder b("RDB");
  ElementId t = b.AddTable("Orders");
  ElementId c = b.AddColumn(t, "OrderID", DataType::kInteger);
  const Schema& s = b.schema();
  EXPECT_EQ(s.PathName(c), "RDB.Orders.OrderID");
  EXPECT_EQ(s.PathName(s.root()), "RDB");
}

TEST(SchemaTest, FindByPath) {
  RelationalSchemaBuilder b("RDB");
  ElementId t = b.AddTable("Orders");
  ElementId c = b.AddColumn(t, "OrderID", DataType::kInteger);
  const Schema& s = b.schema();
  EXPECT_EQ(s.FindByPath("RDB.Orders.OrderID"), c);
  EXPECT_EQ(s.FindByPath("RDB.Orders"), t);
  EXPECT_EQ(s.FindByPath("RDB"), s.root());
  EXPECT_EQ(s.FindByPath("RDB.Nope"), kNoElement);
  EXPECT_EQ(s.FindByPath("Wrong.Orders"), kNoElement);
  EXPECT_EQ(s.FindByPath(""), kNoElement);
}

TEST(SchemaTest, FindByName) {
  RelationalSchemaBuilder b("RDB");
  ElementId t = b.AddTable("Orders");
  const Schema& s = b.schema();
  EXPECT_EQ(s.FindByName("Orders"), t);
  EXPECT_EQ(s.FindByName("Nope"), kNoElement);
}

TEST(SchemaTest, EdgesValidated) {
  Schema s("S");
  EXPECT_TRUE(s.AddIsDerivedFrom(0, 99).IsInvalidArgument());
  EXPECT_TRUE(s.AddAggregation(99, 0).IsInvalidArgument());
  EXPECT_TRUE(s.AddReference(0, -5).IsInvalidArgument());
}

TEST(SchemaTest, ElementsOfKind) {
  RelationalSchemaBuilder b("RDB");
  ElementId t1 = b.AddTable("A");
  b.AddTable("B");
  ElementId c = b.AddColumn(t1, "x", DataType::kInteger);
  b.SetPrimaryKey(t1, {c});
  const Schema& s = b.schema();
  EXPECT_EQ(s.ElementsOfKind(ElementKind::kContainer).size(), 2u);
  EXPECT_EQ(s.ElementsOfKind(ElementKind::kKey).size(), 1u);
  EXPECT_EQ(s.ElementsOfKind(ElementKind::kAtomic).size(), 1u);
}

// ------------------------------------------------ RelationalSchemaBuilder --

TEST(RelationalBuilderTest, PrimaryKeyAggregatesColumns) {
  RelationalSchemaBuilder b("RDB");
  ElementId t = b.AddTable("Orders");
  ElementId c1 = b.AddColumn(t, "OrderID", DataType::kInteger);
  ElementId c2 = b.AddColumn(t, "LineNo", DataType::kInteger);
  ElementId pk = b.SetPrimaryKey(t, {c1, c2});
  const Schema& s = b.schema();
  EXPECT_EQ(s.element(pk).kind, ElementKind::kKey);
  EXPECT_TRUE(s.element(pk).not_instantiated);
  EXPECT_EQ(s.aggregates(pk).size(), 2u);
  EXPECT_TRUE(s.element(c1).is_key);
  EXPECT_TRUE(s.element(c2).is_key);
  EXPECT_EQ(b.primary_key(t), pk);
}

TEST(RelationalBuilderTest, ForeignKeyReferencesTargetKey) {
  RelationalSchemaBuilder b("RDB");
  ElementId customers = b.AddTable("Customers");
  ElementId cust_id = b.AddColumn(customers, "CustomerID", DataType::kInteger);
  ElementId cust_pk = b.SetPrimaryKey(customers, {cust_id});
  ElementId orders = b.AddTable("Orders");
  ElementId fk_col = b.AddColumn(orders, "CustomerID", DataType::kInteger);
  ElementId fk = b.AddForeignKey("Orders_Customers_fk", orders, {fk_col},
                                 customers);
  const Schema& s = b.schema();
  EXPECT_EQ(s.element(fk).kind, ElementKind::kRefInt);
  ASSERT_EQ(s.references(fk).size(), 1u);
  EXPECT_EQ(s.references(fk)[0], cust_pk);
  ASSERT_EQ(s.aggregates(fk).size(), 1u);
  EXPECT_EQ(s.aggregates(fk)[0], fk_col);
  EXPECT_TRUE(s.Validate().ok());
}

TEST(RelationalBuilderTest, ForeignKeyWithoutTargetKeyReferencesTable) {
  RelationalSchemaBuilder b("RDB");
  ElementId a = b.AddTable("A");
  ElementId col = b.AddColumn(a, "bid", DataType::kInteger);
  ElementId target = b.AddTable("B");  // no PK declared
  ElementId fk = b.AddForeignKey("A_B_fk", a, {col}, target);
  EXPECT_EQ(b.schema().references(fk)[0], target);
}

TEST(RelationalBuilderTest, ViewAggregatesColumns) {
  RelationalSchemaBuilder b("RDB");
  ElementId t = b.AddTable("T");
  ElementId c1 = b.AddColumn(t, "a", DataType::kInteger);
  ElementId c2 = b.AddColumn(t, "b", DataType::kString);
  ElementId v = b.AddView("V", {c1, c2});
  const Schema& s = b.schema();
  EXPECT_EQ(s.element(v).kind, ElementKind::kView);
  EXPECT_EQ(s.aggregates(v).size(), 2u);
}

// ------------------------------------------------------ XmlSchemaBuilder --

TEST(XmlBuilderTest, SharedComplexType) {
  XmlSchemaBuilder b("X");
  ElementId addr_type = b.AddComplexType("Address");
  b.AddAttribute(addr_type, "Street", DataType::kString);
  ElementId ship = b.AddElement(b.root(), "ShipTo");
  ASSERT_TRUE(b.SetType(ship, addr_type).ok());
  const Schema& s = b.schema();
  EXPECT_EQ(s.parent(addr_type), kNoElement);
  ASSERT_EQ(s.derived_from(ship).size(), 1u);
  EXPECT_EQ(s.derived_from(ship)[0], addr_type);
  // ShipTo is not a leaf: it has an IsDerivedFrom target.
  EXPECT_FALSE(s.IsLeaf(ship));
  EXPECT_TRUE(s.Validate().ok());
}

TEST(XmlBuilderTest, SetTypeRejectsNonTypeTarget) {
  XmlSchemaBuilder b("X");
  ElementId e1 = b.AddElement(b.root(), "A");
  ElementId e2 = b.AddElement(b.root(), "B");
  EXPECT_TRUE(b.SetType(e1, e2).IsInvalidArgument());
}

TEST(XmlBuilderTest, OptionalPropagatesToElement) {
  XmlSchemaBuilder b("X");
  ElementId e = b.AddElement(b.root(), "A", /*optional=*/true);
  ElementId a = b.AddAttribute(e, "x", DataType::kString, /*optional=*/true);
  EXPECT_TRUE(b.schema().element(e).optional);
  EXPECT_TRUE(b.schema().element(a).optional);
}

// --------------------------------------------------------------- Printer --

TEST(SchemaPrinterTest, RendersTreeAndEdges) {
  RelationalSchemaBuilder b("RDB");
  ElementId t = b.AddTable("Orders");
  ElementId c = b.AddColumn(t, "OrderID", DataType::kInteger);
  b.SetPrimaryKey(t, {c});
  std::string tree = PrintSchema(b.schema());
  EXPECT_NE(tree.find("RDB [Root]"), std::string::npos);
  EXPECT_NE(tree.find("  Orders [Container]"), std::string::npos);
  EXPECT_NE(tree.find("    OrderID [Atomic integer key]"), std::string::npos);
  std::string edges = PrintSchemaEdges(b.schema());
  EXPECT_NE(edges.find("Orders_pk -Aggregates-> OrderID"), std::string::npos);
}

}  // namespace
}  // namespace cupid
