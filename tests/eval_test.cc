// Tests for the evaluation substrate (src/eval): metrics, gold mappings,
// datasets, the synthetic generator and the report renderer.

#include <gtest/gtest.h>

#include "eval/datasets.h"
#include "eval/gold_mapping.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/synthetic.h"
#include "tree/tree_builder.h"

namespace cupid {
namespace {

// ---------------------------------------------------------- gold mapping --

TEST(GoldMappingTest, AlternativesAccepted) {
  GoldMapping g;
  g.Add("src.a", "tgt.x");
  g.Add("src.b", "tgt.x");  // alternative source for the same target
  EXPECT_TRUE(g.Contains("src.a", "tgt.x"));
  EXPECT_TRUE(g.Contains("src.b", "tgt.x"));
  EXPECT_FALSE(g.Contains("src.c", "tgt.x"));
  EXPECT_TRUE(g.HasTarget("tgt.x"));
  EXPECT_FALSE(g.HasTarget("tgt.y"));
  EXPECT_EQ(g.size(), 1u);  // one target
}

// --------------------------------------------------------------- metrics --

Mapping MakeMapping(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  Mapping m;
  for (const auto& [s, t] : pairs) {
    m.elements.push_back({0, 0, s, t, 1.0, 1.0, 1.0});
  }
  return m;
}

TEST(MetricsTest, PerfectMapping) {
  GoldMapping g;
  g.Add("a", "x");
  g.Add("b", "y");
  MatchQuality q = Evaluate(MakeMapping({{"a", "x"}, {"b", "y"}}), g);
  EXPECT_EQ(q.true_positives, 2);
  EXPECT_EQ(q.false_positives, 0);
  EXPECT_EQ(q.false_negatives, 0);
  EXPECT_DOUBLE_EQ(q.precision(), 1.0);
  EXPECT_DOUBLE_EQ(q.recall(), 1.0);
  EXPECT_DOUBLE_EQ(q.f1(), 1.0);
}

TEST(MetricsTest, FalsePositivesAndNegatives) {
  GoldMapping g;
  g.Add("a", "x");
  g.Add("b", "y");
  MatchQuality q = Evaluate(MakeMapping({{"a", "x"}, {"c", "z"}}), g);
  EXPECT_EQ(q.true_positives, 1);
  EXPECT_EQ(q.false_positives, 1);
  EXPECT_EQ(q.false_negatives, 1);
  EXPECT_DOUBLE_EQ(q.precision(), 0.5);
  EXPECT_DOUBLE_EQ(q.recall(), 0.5);
  ASSERT_EQ(q.false_positive_pairs.size(), 1u);
  EXPECT_EQ(q.false_positive_pairs[0].second, "z");
  ASSERT_EQ(q.false_negative_pairs.size(), 1u);
  EXPECT_EQ(q.false_negative_pairs[0].second, "y");
}

TEST(MetricsTest, AlternativeSourceCountsOnce) {
  GoldMapping g;
  g.Add("a", "x");
  g.Add("b", "x");
  // Either alternative alone fully covers target x.
  MatchQuality q1 = Evaluate(MakeMapping({{"a", "x"}}), g);
  EXPECT_EQ(q1.false_negatives, 0);
  MatchQuality q2 = Evaluate(MakeMapping({{"b", "x"}}), g);
  EXPECT_EQ(q2.false_negatives, 0);
}

TEST(MetricsTest, DuplicatesScoredOnce) {
  GoldMapping g;
  g.Add("a", "x");
  MatchQuality q = Evaluate(MakeMapping({{"a", "x"}, {"a", "x"}}), g);
  EXPECT_EQ(q.true_positives, 1);
}

TEST(MetricsTest, EmptyEverything) {
  MatchQuality q = Evaluate(Mapping{}, GoldMapping{});
  EXPECT_DOUBLE_EQ(q.precision(), 0.0);
  EXPECT_DOUBLE_EQ(q.recall(), 0.0);
  EXPECT_DOUBLE_EQ(q.f1(), 0.0);
}

TEST(MetricsTest, FormatQualityMentionsEverything) {
  GoldMapping g;
  g.Add("a", "x");
  std::string s = FormatQuality(Evaluate(MakeMapping({{"a", "x"}}), g));
  EXPECT_NE(s.find("P=1.00"), std::string::npos);
  EXPECT_NE(s.find("R=1.00"), std::string::npos);
  EXPECT_NE(s.find("1 tp"), std::string::npos);
}

// --------------------------------------------------------------- datasets --

TEST(DatasetsTest, Fig2SchemasValidate) {
  Dataset d = Fig2Dataset();
  EXPECT_TRUE(d.source.Validate().ok());
  EXPECT_TRUE(d.target.Validate().ok());
  EXPECT_EQ(d.gold.size(), 8u);
}

TEST(DatasetsTest, CanonicalRangeChecked) {
  EXPECT_TRUE(CanonicalExample(0).status().IsInvalidArgument());
  EXPECT_TRUE(CanonicalExample(7).status().IsInvalidArgument());
  for (int i = 1; i <= 6; ++i) {
    EXPECT_TRUE(CanonicalExample(i).ok()) << i;
  }
}

TEST(DatasetsTest, CidxExcelShapesMatchFigure7) {
  auto cidx = CidxSchema();
  ASSERT_TRUE(cidx.ok()) << cidx.status().ToString();
  auto excel = ExcelSchema();
  ASSERT_TRUE(excel.ok()) << excel.status().ToString();
  // CIDX: POHeader, Contact, POBillTo, POShipTo, POLines under the root.
  EXPECT_EQ(cidx->children(cidx->root()).size(), 5u);
  // Excel: Items, DeliverTo, InvoiceTo, Header, Footer (+2 detached types).
  EXPECT_EQ(excel->children(excel->root()).size(), 5u);
  // Shared Address/Contact types expand per context in the tree.
  auto tree = BuildSchemaTree(*excel);
  ASSERT_TRUE(tree.ok());
  int address_streets = 0;
  for (TreeNodeId n = 0; n < tree->num_nodes(); ++n) {
    if (tree->PathName(n).find("Address.street1") != std::string::npos) {
      ++address_streets;
    }
  }
  EXPECT_EQ(address_streets, 2);  // one per context
}

TEST(DatasetsTest, RdbStarShapesMatchFigure8) {
  auto rdb = RdbSchema();
  ASSERT_TRUE(rdb.ok()) << rdb.status().ToString();
  auto star = StarSchema();
  ASSERT_TRUE(star.ok()) << star.status().ToString();
  EXPECT_EQ(rdb->ElementsOfKind(ElementKind::kContainer).size(), 13u);
  EXPECT_EQ(star->ElementsOfKind(ElementKind::kContainer).size(), 5u);
  // Every figure-8 foreign key is present: 12 in RDB, 4 in Star.
  EXPECT_EQ(rdb->ElementsOfKind(ElementKind::kRefInt).size(), 12u);
  EXPECT_EQ(star->ElementsOfKind(ElementKind::kRefInt).size(), 4u);
}

// -------------------------------------------------------------- synthetic --

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticOptions opt;
  opt.num_elements = 60;
  opt.seed = 7;
  SyntheticPair a = GenerateSyntheticPair(opt);
  SyntheticPair b = GenerateSyntheticPair(opt);
  EXPECT_EQ(a.source.num_elements(), b.source.num_elements());
  EXPECT_EQ(a.target.num_elements(), b.target.num_elements());
  EXPECT_EQ(a.gold.size(), b.gold.size());
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticOptions a, b;
  a.num_elements = b.num_elements = 60;
  a.seed = 1;
  b.seed = 2;
  Schema sa = GenerateSyntheticSchema(a);
  Schema sb = GenerateSyntheticSchema(b);
  // Equal counts would be a coincidence; names certainly differ.
  bool differ = sa.num_elements() != sb.num_elements();
  for (ElementId i = 1; !differ && i < std::min(sa.num_elements(),
                                                sb.num_elements());
       ++i) {
    differ = sa.element(i).name != sb.element(i).name;
  }
  EXPECT_TRUE(differ);
}

TEST(SyntheticTest, SizeScalesWithBudget) {
  SyntheticOptions small, large;
  small.num_elements = 30;
  large.num_elements = 300;
  EXPECT_LT(GenerateSyntheticSchema(small).num_elements(),
            GenerateSyntheticSchema(large).num_elements());
  // Budget is approximate but should be in the right ballpark.
  int64_t n = GenerateSyntheticSchema(large).num_elements();
  EXPECT_GE(n, 300);
  EXPECT_LE(n, 450);
}

TEST(SyntheticTest, SchemasValidateAndBuildTrees) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    SyntheticOptions opt;
    opt.num_elements = 80;
    opt.seed = seed;
    SyntheticPair p = GenerateSyntheticPair(opt);
    EXPECT_TRUE(p.source.Validate().ok());
    EXPECT_TRUE(p.target.Validate().ok());
    EXPECT_TRUE(BuildSchemaTree(p.source).ok());
    EXPECT_TRUE(BuildSchemaTree(p.target).ok());
    EXPECT_GT(p.gold.size(), 0u);
  }
}

TEST(SyntheticTest, GoldPathsResolveInTrees) {
  SyntheticOptions opt;
  opt.num_elements = 60;
  opt.seed = 11;
  SyntheticPair p = GenerateSyntheticPair(opt);
  auto t1 = BuildSchemaTree(p.source).ValueOrDie();
  auto t2 = BuildSchemaTree(p.target).ValueOrDie();
  auto resolve = [](const SchemaTree& t, const std::string& path) {
    for (TreeNodeId n = 0; n < t.num_nodes(); ++n) {
      if (t.PathName(n) == path) return true;
    }
    return false;
  };
  for (const auto& [target, sources] : p.gold.alternatives()) {
    EXPECT_TRUE(resolve(t2, target)) << target;
    for (const std::string& s : sources) {
      EXPECT_TRUE(resolve(t1, s)) << s;
    }
  }
}

// ----------------------------------------------------------------- report --

TEST(ReportTest, AlignedRendering) {
  TableReport t({"Test", "Cupid", "DIKE"});
  t.AddRow({"Identical schemas", "Y", "Y"});
  t.AddRow({"Type substitution", "Y", "N"});
  std::string out = t.Render();
  EXPECT_NE(out.find("Test               Cupid  DIKE"), std::string::npos);
  EXPECT_NE(out.find("Identical schemas  Y      Y"), std::string::npos);
  EXPECT_NE(out.find("Type substitution  Y      N"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(ReportTest, ShortRowsPadded) {
  TableReport t({"A", "B"});
  t.AddRow({"only-a"});
  std::string out = t.Render();
  EXPECT_NE(out.find("only-a"), std::string::npos);
}

TEST(ReportTest, YesNoHelper) {
  EXPECT_STREQ(YesNo(true), "Y");
  EXPECT_STREQ(YesNo(false), "N");
}

}  // namespace
}  // namespace cupid
