// Tests for schema-tree construction (src/tree): type substitution,
// context-dependent expansion, cycle detection, leaf caching, optionality,
// join-view augmentation and duplicate-subtree analysis.

#include <gtest/gtest.h>

#include <set>

#include "schema/schema_builder.h"
#include "tree/lazy_expansion.h"
#include "tree/schema_tree.h"
#include "tree/tree_builder.h"

namespace cupid {
namespace {

TreeNodeId FindNode(const SchemaTree& t, const std::string& path) {
  for (TreeNodeId n = 0; n < t.num_nodes(); ++n) {
    if (t.PathName(n) == path) return n;
  }
  return kNoTreeNode;
}

TEST(TreeBuilderTest, SimpleHierarchy) {
  XmlSchemaBuilder b("S");
  ElementId a = b.AddElement(b.root(), "A");
  b.AddAttribute(a, "x", DataType::kInteger);
  b.AddAttribute(a, "y", DataType::kString);
  Schema s = std::move(b).Build();

  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->num_nodes(), 4);  // root, A, x, y
  TreeNodeId x = FindNode(*tree, "S.A.x");
  ASSERT_NE(x, kNoTreeNode);
  EXPECT_TRUE(tree->IsLeaf(x));
  EXPECT_EQ(tree->Depth(x), 2);
  EXPECT_EQ(tree->leaves(tree->root()).size(), 2u);
}

TEST(TreeBuilderTest, TypeSubstitutionCreatesContextCopies) {
  // Section 8.2: shared Address referenced from DeliverTo and InvoiceTo is
  // materialized once per context.
  XmlSchemaBuilder b("S");
  ElementId addr_type = b.AddComplexType("AddressType");
  ElementId street = b.AddAttribute(addr_type, "Street", DataType::kString);
  ElementId deliver = b.AddElement(b.root(), "DeliverTo");
  b.SetType(deliver, addr_type);
  ElementId invoice = b.AddElement(b.root(), "InvoiceTo");
  b.SetType(invoice, addr_type);
  Schema s = std::move(b).Build();

  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok());
  EXPECT_NE(FindNode(*tree, "S.DeliverTo.Street"), kNoTreeNode);
  EXPECT_NE(FindNode(*tree, "S.InvoiceTo.Street"), kNoTreeNode);
  // The Street ELEMENT materializes twice; the type itself has no node.
  EXPECT_EQ(tree->nodes_for_element(street).size(), 2u);
  EXPECT_TRUE(tree->nodes_for_element(addr_type).empty());
}

TEST(TreeBuilderTest, NotInstantiatedElementsSkipped) {
  RelationalSchemaBuilder b("S");
  ElementId t = b.AddTable("T");
  ElementId c = b.AddColumn(t, "id", DataType::kInteger);
  ElementId pk = b.SetPrimaryKey(t, {c});
  Schema s = std::move(b).Build();
  TreeBuildOptions opts;
  opts.expand_join_views = false;
  auto tree = BuildSchemaTree(s, opts);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->nodes_for_element(pk).empty());
  EXPECT_EQ(tree->num_nodes(), 3);  // root, T, id
}

TEST(TreeBuilderTest, RecursiveTypeIsCycleDetected) {
  // A type that contains an element typed by itself (recursive definition).
  XmlSchemaBuilder b("S");
  ElementId node_type = b.AddComplexType("TreeNode");
  ElementId child = b.AddElement(node_type, "Child");
  b.SetType(child, node_type);
  ElementId root_el = b.AddElement(b.root(), "Root");
  b.SetType(root_el, node_type);
  Schema s = std::move(b).Build();

  auto tree = BuildSchemaTree(s);
  ASSERT_FALSE(tree.ok());
  EXPECT_TRUE(tree.status().IsCycleDetected());
}

TEST(TreeBuilderTest, DiamondSharingIsNotACycle) {
  // Two elements using the same type is sharing, not recursion.
  XmlSchemaBuilder b("S");
  ElementId shared = b.AddComplexType("Shared");
  b.AddAttribute(shared, "v", DataType::kInteger);
  ElementId a = b.AddElement(b.root(), "A");
  ElementId c = b.AddElement(b.root(), "B");
  b.SetType(a, shared);
  b.SetType(c, shared);
  Schema s = std::move(b).Build();
  EXPECT_TRUE(BuildSchemaTree(s).ok());
}

TEST(TreeBuilderTest, OptionalityRelativeToAncestors) {
  XmlSchemaBuilder b("S");
  ElementId a = b.AddElement(b.root(), "A", /*optional=*/true);
  ElementId req = b.AddAttribute(a, "r", DataType::kString, false);
  ElementId opt = b.AddAttribute(a, "o", DataType::kString, true);
  (void)req;
  (void)opt;
  Schema s = std::move(b).Build();
  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok());

  TreeNodeId a_node = FindNode(*tree, "S.A");
  TreeNodeId root = tree->root();
  // Relative to A: r is required, o is optional.
  std::set<std::pair<std::string, bool>> rel_a;
  for (const LeafRef& lr : tree->leaves(a_node)) {
    rel_a.insert({tree->NodeName(lr.leaf), lr.optional});
  }
  EXPECT_TRUE(rel_a.count({"r", false}));
  EXPECT_TRUE(rel_a.count({"o", true}));
  // Relative to the root, even r is optional (A itself is optional).
  std::set<std::pair<std::string, bool>> rel_root;
  for (const LeafRef& lr : tree->leaves(root)) {
    rel_root.insert({tree->NodeName(lr.leaf), lr.optional});
  }
  EXPECT_TRUE(rel_root.count({"r", true}));
  EXPECT_TRUE(rel_root.count({"o", true}));
}

TEST(TreeBuilderTest, PostOrderVisitsChildrenFirst) {
  XmlSchemaBuilder b("S");
  ElementId a = b.AddElement(b.root(), "A");
  b.AddAttribute(a, "x", DataType::kInteger);
  Schema s = std::move(b).Build();
  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok());
  std::vector<int> position(static_cast<size_t>(tree->num_nodes()));
  const auto& order = tree->post_order();
  EXPECT_EQ(order.size(), static_cast<size_t>(tree->num_nodes()));
  for (size_t i = 0; i < order.size(); ++i) {
    position[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  for (TreeNodeId n = 0; n < tree->num_nodes(); ++n) {
    for (TreeNodeId c : tree->node(n).children) {
      EXPECT_LT(position[static_cast<size_t>(c)],
                position[static_cast<size_t>(n)]);
    }
  }
}

// -------------------------------------------------------------- join views --

TEST(JoinViewTest, ForeignKeyBecomesJoinNode) {
  RelationalSchemaBuilder b("RDB");
  ElementId customers = b.AddTable("Customers");
  ElementId cid = b.AddColumn(customers, "CustomerID", DataType::kInteger);
  b.SetPrimaryKey(customers, {cid});
  b.AddColumn(customers, "Name", DataType::kString);
  ElementId orders = b.AddTable("Orders");
  ElementId oid = b.AddColumn(orders, "OrderID", DataType::kInteger);
  b.SetPrimaryKey(orders, {oid});
  ElementId fk_col = b.AddColumn(orders, "CustomerID", DataType::kInteger);
  b.AddForeignKey("Orders_Customers_fk", orders, {fk_col}, customers);
  Schema s = std::move(b).Build();

  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  TreeNodeId join = FindNode(*tree, "RDB.Orders_Customers_fk");
  ASSERT_NE(join, kNoTreeNode);
  EXPECT_TRUE(tree->node(join).is_join_view);
  // Children: columns of both tables (2 from Orders + 2 from Customers),
  // shared with the table nodes (DAG).
  EXPECT_EQ(tree->node(join).children.size(), 4u);
  for (TreeNodeId c : tree->node(join).children) {
    EXPECT_NE(tree->node(c).parent, join);  // primary parent is the table
  }
  // Leaves are deduplicated across the DAG.
  EXPECT_EQ(tree->leaves(join).size(), 4u);
  EXPECT_EQ(tree->leaves(tree->root()).size(), 4u);
}

TEST(JoinViewTest, DisabledByOption) {
  RelationalSchemaBuilder b("RDB");
  ElementId a = b.AddTable("A");
  ElementId ac = b.AddColumn(a, "bid", DataType::kInteger);
  ElementId t2 = b.AddTable("B");
  ElementId bc = b.AddColumn(t2, "id", DataType::kInteger);
  b.SetPrimaryKey(t2, {bc});
  b.AddForeignKey("A_B_fk", a, {ac}, t2);
  Schema s = std::move(b).Build();
  TreeBuildOptions opts;
  opts.expand_join_views = false;
  auto tree = BuildSchemaTree(s, opts);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(FindNode(*tree, "RDB.A_B_fk"), kNoTreeNode);
}

TEST(JoinViewTest, ViewNodeGetsSharedChildren) {
  RelationalSchemaBuilder b("RDB");
  ElementId t = b.AddTable("T");
  ElementId c1 = b.AddColumn(t, "a", DataType::kInteger);
  ElementId c2 = b.AddColumn(t, "b", DataType::kString);
  b.AddView("V", {c1, c2});
  Schema s = std::move(b).Build();
  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok());
  TreeNodeId v = FindNode(*tree, "RDB.V");
  ASSERT_NE(v, kNoTreeNode);
  EXPECT_EQ(tree->node(v).children.size(), 2u);
  EXPECT_TRUE(tree->node(v).is_join_view);
}

// -------------------------------------------------------------- duplicates --

TEST(LazyExpansionTest, AlignsTypeCopies) {
  XmlSchemaBuilder b("S");
  ElementId addr_type = b.AddComplexType("AddressType");
  b.AddAttribute(addr_type, "Street", DataType::kString);
  b.AddAttribute(addr_type, "City", DataType::kString);
  ElementId d1 = b.AddElement(b.root(), "DeliverTo");
  ElementId a1 = b.AddElement(d1, "Address");
  b.SetType(a1, addr_type);
  ElementId d2 = b.AddElement(b.root(), "InvoiceTo");
  ElementId a2 = b.AddElement(d2, "Address");
  b.SetType(a2, addr_type);
  Schema s = std::move(b).Build();
  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok());

  DuplicateInfo dup = AnalyzeDuplicates(*tree);
  EXPECT_TRUE(dup.has_duplicates);
  TreeNodeId street1 = FindNode(*tree, "S.DeliverTo.Address.Street");
  TreeNodeId street2 = FindNode(*tree, "S.InvoiceTo.Address.Street");
  ASSERT_NE(street1, kNoTreeNode);
  ASSERT_NE(street2, kNoTreeNode);
  // Later copy aligns to the first instance.
  EXPECT_EQ(dup.canon(street2), street1);
  EXPECT_EQ(dup.canon(street1), street1);
  EXPECT_TRUE(dup.is_copy(street2));
  EXPECT_FALSE(dup.is_copy(street1));
}

TEST(LazyExpansionTest, NoDuplicatesInPlainTree) {
  XmlSchemaBuilder b("S");
  ElementId a = b.AddElement(b.root(), "A");
  b.AddAttribute(a, "x", DataType::kInteger);
  Schema s = std::move(b).Build();
  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok());
  DuplicateInfo dup = AnalyzeDuplicates(*tree);
  EXPECT_FALSE(dup.has_duplicates);
  for (TreeNodeId n = 0; n < tree->num_nodes(); ++n) {
    EXPECT_EQ(dup.canon(n), n);
  }
}

TEST(LazyExpansionTest, ThreeContextsAllAlignToFirst) {
  XmlSchemaBuilder b("S");
  ElementId t = b.AddComplexType("T");
  ElementId leaf = b.AddAttribute(t, "v", DataType::kInteger);
  for (const char* ctx : {"A", "B", "C"}) {
    ElementId e = b.AddElement(b.root(), ctx);
    b.SetType(e, t);
  }
  Schema s = std::move(b).Build();
  auto tree = BuildSchemaTree(s);
  ASSERT_TRUE(tree.ok());
  DuplicateInfo dup = AnalyzeDuplicates(*tree);
  const auto& instances = tree->nodes_for_element(leaf);
  ASSERT_EQ(instances.size(), 3u);
  EXPECT_EQ(dup.canon(instances[1]), instances[0]);
  EXPECT_EQ(dup.canon(instances[2]), instances[0]);
}

}  // namespace
}  // namespace cupid
