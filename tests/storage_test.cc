// Tests for the durability subsystem: CRC32, WAL framing and prefix
// recovery, the fault-injection filesystem, and SchemaRepository's durable
// write path (WAL-before-apply, snapshot compaction, degraded read-only
// mode, atomic SaveTo, checksummed LoadFrom, crash recovery with lineage).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "schema/schema_printer.h"
#include "service/schema_repository.h"
#include "storage/edit_codec.h"
#include "storage/fault_injection_env.h"
#include "storage/wal.h"
#include "util/crc32.h"
#include "util/json.h"

namespace cupid {
namespace {

// ------------------------------------------------------------------ crc32 --

TEST(Crc32Test, KnownAnswer) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, SeedChainingMatchesOneShot) {
  std::string data = "write ahead logging";
  uint32_t whole = Crc32(data);
  uint32_t first = Crc32(data.substr(0, 7));
  EXPECT_EQ(Crc32(data.substr(7), first), whole);
  EXPECT_NE(Crc32("a"), Crc32("b"));
}

// ------------------------------------------------------------- edit codec --

TEST(EditCodecTest, RoundTripsEveryKind) {
  Element leaf;
  leaf.name = "Qty";
  leaf.kind = ElementKind::kAtomic;
  leaf.data_type = DataType::kDecimal;
  leaf.optional = true;
  leaf.documentation = "ordered quantity";
  std::vector<SchemaEdit> edits = {
      SchemaEdit::AddElement(EditSide::kSource, "PO.Lines", leaf),
      SchemaEdit::RemoveElement(EditSide::kTarget, "PO.Lines.Item"),
      SchemaEdit::RenameElement(EditSide::kSource, "PO.Lines.Qty", "Count"),
      SchemaEdit::ChangeDataType(EditSide::kTarget, "PO.Lines.Qty",
                                 DataType::kInteger),
  };
  for (const SchemaEdit& edit : edits) {
    JsonWriter w;
    WriteSchemaEditJson(edit, &w);
    auto parsed_json = ParseJson(w.str());
    ASSERT_TRUE(parsed_json.ok()) << w.str();
    auto decoded = ParseSchemaEditJson(*parsed_json);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->kind, edit.kind);
    EXPECT_EQ(decoded->side, edit.side);
    EXPECT_EQ(decoded->path, edit.path);
    EXPECT_EQ(decoded->new_name, edit.new_name);
    EXPECT_EQ(decoded->new_type, edit.new_type);
    EXPECT_EQ(decoded->element.name, edit.element.name);
    EXPECT_EQ(decoded->element.kind, edit.element.kind);
    EXPECT_EQ(decoded->element.data_type, edit.element.data_type);
    EXPECT_EQ(decoded->element.optional, edit.element.optional);
    EXPECT_EQ(decoded->element.documentation, edit.element.documentation);
  }
}

TEST(EditCodecTest, RejectsMalformedEdits) {
  for (const char* bad : {
           R"({"kind":"teleport","side":"source","path":"A"})",
           R"({"kind":"rename","side":"source","path":"A"})",
           R"({"kind":"rename","side":"neither","path":"A","to":"B"})",
           R"({"kind":"add","side":"source","path":"A"})",
           R"({"kind":"retype","side":"source","path":"A","type":"warp"})",
           R"({"kind":"remove","side":"source"})",
       }) {
    auto parsed = ParseJson(bad);
    ASSERT_TRUE(parsed.ok()) << bad;
    EXPECT_FALSE(ParseSchemaEditJson(*parsed).ok()) << bad;
  }
}

// -------------------------------------------------------------------- wal --

std::vector<std::string> Payloads(const WalReadResult& read) {
  std::vector<std::string> out;
  for (const WalRecord& r : read.records) out.push_back(r.payload);
  return out;
}

TEST(WalTest, RoundTripsRecordsWithContiguousSequences) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirs("d").ok());
  auto writer = WalWriter::Create(&env, "d/wal", 7);
  ASSERT_TRUE(writer.ok());
  for (const char* payload : {"one", "two", "three"}) {
    ASSERT_TRUE((*writer)->Append(payload, /*sync=*/true).ok());
  }
  auto read = ReadWal(&env, "d/wal", 7);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->tail_dropped);
  EXPECT_EQ(Payloads(*read),
            (std::vector<std::string>{"one", "two", "three"}));
  EXPECT_EQ(read->records.front().seq, 7u);
  EXPECT_EQ(read->records.back().seq, 9u);
  // Anchoring on the wrong first sequence rejects the whole file.
  auto misanchored = ReadWal(&env, "d/wal", 8);
  ASSERT_TRUE(misanchored.ok());
  EXPECT_TRUE(misanchored->records.empty());
  EXPECT_TRUE(misanchored->tail_dropped);
}

TEST(WalTest, TornTailIsDroppedGracefully) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirs("d").ok());
  auto writer = WalWriter::Create(&env, "d/wal", 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("kept", true).ok());
  ASSERT_TRUE((*writer)->Append("torn", true).ok());
  std::string bytes = env.FileContentForTest("d/wal");
  // Chop the last record mid-frame at every possible length (keeping at
  // least one byte of it; cutting at the frame boundary is a clean file).
  size_t first_frame = kWalFrameHeaderSize + 4;
  for (size_t keep = first_frame + 1; keep < bytes.size(); ++keep) {
    env.SetFileContentForTest("d/wal", bytes.substr(0, keep));
    auto read = ReadWal(&env, "d/wal", 1);
    ASSERT_TRUE(read.ok()) << keep;
    EXPECT_EQ(Payloads(*read), std::vector<std::string>{"kept"}) << keep;
    EXPECT_TRUE(read->tail_dropped) << keep;
    EXPECT_EQ(read->bytes_dropped,
              static_cast<int64_t>(keep - first_frame)) << keep;
  }
}

TEST(WalTest, BitFlipStopsAcceptanceAtTheFlippedFrame) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirs("d").ok());
  auto writer = WalWriter::Create(&env, "d/wal", 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("alpha", true).ok());
  ASSERT_TRUE((*writer)->Append("beta", true).ok());
  std::string bytes = env.FileContentForTest("d/wal");
  size_t second_frame = kWalFrameHeaderSize + 5;
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    env.SetFileContentForTest("d/wal", corrupt);
    auto read = ReadWal(&env, "d/wal", 1);
    ASSERT_TRUE(read.ok()) << i;
    EXPECT_TRUE(read->tail_dropped) << i;
    // A flip in the first frame loses everything; in the second, only it.
    if (i < second_frame) {
      EXPECT_TRUE(read->records.empty()) << i;
    } else {
      EXPECT_EQ(Payloads(*read), std::vector<std::string>{"alpha"}) << i;
    }
  }
}

TEST(WalTest, DuplicatedAndStitchedFramesAreRejected) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirs("d").ok());
  auto writer = WalWriter::Create(&env, "d/wal", 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("a", true).ok());
  ASSERT_TRUE((*writer)->Append("b", true).ok());
  std::string bytes = env.FileContentForTest("d/wal");
  // Replaying record 2 again (a doubled write) breaks seq contiguity.
  env.SetFileContentForTest("d/wal", bytes + EncodeWalFrame(2, "b"));
  auto read = ReadWal(&env, "d/wal", 1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_TRUE(read->tail_dropped);
  // A frame stitched in from some other log (valid CRC, alien seq) too.
  env.SetFileContentForTest("d/wal", bytes + EncodeWalFrame(40, "alien"));
  read = ReadWal(&env, "d/wal", 1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 2u);
  EXPECT_TRUE(read->tail_dropped);
}

// --------------------------------------------------------- fault injection --

TEST(FaultInjectionEnvTest, CrashDropsUnsyncedBytes) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirs("d").ok());
  auto file = env.NewWritableFile("d/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("volatile").ok());
  env.Crash();
  EXPECT_FALSE((*file)->Append("dead").ok());
  EXPECT_FALSE(env.ReadFile("d/f").ok());
  env.Heal();
  auto content = env.ReadFile("d/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "durable");
}

TEST(FaultInjectionEnvTest, FailPolicyCountdownAndShortWrite) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirs("d").ok());
  auto file = env.NewWritableFile("d/f", true);
  ASSERT_TRUE(file.ok());
  FaultInjectionEnv::FailPolicy policy;
  policy.fail_after_ops = 2;  // the op after next
  policy.short_write = true;
  policy.message = "no space left on device";
  env.SetFailPolicy(policy);
  ASSERT_TRUE((*file)->Append("ok").ok());
  Status failed = (*file)->Append("abcdef");
  EXPECT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("no space"), std::string::npos);
  // The short write left half the data behind — exactly the torn state a
  // WAL reader has to cope with.
  auto content = env.ReadFile("d/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "okabc");
  // Countdown is one-shot: the next op succeeds again.
  EXPECT_TRUE((*file)->Append("!").ok());
}

TEST(FaultInjectionEnvTest, RenameIsAtomicAndDurable) {
  FaultInjectionEnv env;
  ASSERT_TRUE(env.CreateDirs("d/sub").ok());
  auto file = env.NewWritableFile("d/sub/f", true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("payload").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE(env.RenameFile("d/sub", "d/pub").ok());
  env.Crash();
  env.Heal();
  auto content = env.ReadFile("d/pub/f");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "payload");
  EXPECT_FALSE(env.FileExists("d/sub/f"));
}

// ------------------------------------------------- durable repository --

/// Renames the Fig2Po leaf currently called `from` (edits must chase the
/// path as it changes version to version).
SchemaEdit RenameLeaf(const std::string& from, const std::string& to) {
  return SchemaEdit::RenameElement(EditSide::kSource,
                                   "PO.POLines.Item." + from, to);
}

/// Expects schemas and lineage of `got` to equal `want`, version for
/// version.
void ExpectSameRepository(const SchemaRepository& got,
                          const SchemaRepository& want) {
  ASSERT_EQ(got.Names(), want.Names());
  for (const std::string& name : want.Names()) {
    ASSERT_EQ(got.LatestVersion(name), want.LatestVersion(name)) << name;
    for (int v = 1; v <= want.LatestVersion(name); ++v) {
      auto got_schema = got.Get(name, v);
      auto want_schema = want.Get(name, v);
      ASSERT_TRUE(got_schema.ok() && want_schema.ok()) << name << "@" << v;
      EXPECT_EQ(PrintSchema(**got_schema), PrintSchema(**want_schema))
          << name << "@" << v;
      auto got_chain = got.EditChain(name, 1, v);
      auto want_chain = want.EditChain(name, 1, v);
      ASSERT_EQ(got_chain.has_value(), want_chain.has_value())
          << name << "@" << v;
      if (got_chain.has_value()) {
        EXPECT_EQ(got_chain->size(), want_chain->size()) << name << "@" << v;
      }
    }
  }
}

TEST(DurableRepositoryTest, RecoverOnFreshDirThenReopen) {
  FaultInjectionEnv env;
  DurabilityOptions options;
  options.env = &env;
  auto repo = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(repo.ok()) << repo.status().ToString();
  EXPECT_TRUE(repo->durable());
  ASSERT_TRUE(repo->Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo->Register("order", Fig2PurchaseOrder()).ok());
  ASSERT_TRUE(repo->ApplyEdit("po", RenameLeaf("Qty", "Quantity")).ok());
  ASSERT_TRUE(repo->ApplyEdit("po", RenameLeaf("Quantity", "Count")).ok());
  EXPECT_EQ(repo->durability_stats().applied_seq, 4u);

  auto reopened = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectSameRepository(*reopened, *repo);
  DurabilityStats stats = reopened->durability_stats();
  EXPECT_EQ(stats.applied_seq, 4u);
  EXPECT_EQ(stats.recovered_records, 4u);
  EXPECT_FALSE(stats.recovered_tail_dropped);
  // Lineage survived: v1 -> v3 of "po" is still an edit chain.
  auto chain = reopened->EditChain("po", 1, 3);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->size(), 2u);
  // And the reopened repository is writable at the right sequence.
  ASSERT_TRUE(reopened->ApplyEdit("po", RenameLeaf("Count", "Qty2")).ok());
  EXPECT_EQ(reopened->durability_stats().applied_seq, 5u);
}

TEST(DurableRepositoryTest, SnapshotCompactionRotatesAndStaysRecoverable) {
  FaultInjectionEnv env;
  DurabilityOptions options;
  options.env = &env;
  options.snapshot_every_records = 3;
  auto repo = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(repo->Register("po", Fig2Po()).ok());
  std::string leaf = "Qty";
  for (int i = 0; i < 7; ++i) {
    std::string next = "Qty" + std::to_string(i);
    ASSERT_TRUE(repo->ApplyEdit("po", RenameLeaf(leaf, next)).ok());
    leaf = next;
  }
  DurabilityStats stats = repo->durability_stats();
  EXPECT_GE(stats.snapshots_written, 2u);
  EXPECT_EQ(stats.snapshot_failures, 0u);
  EXPECT_EQ(stats.applied_seq, 8u);
  EXPECT_LT(stats.applied_seq - stats.snapshot_seq, 3u);

  auto reopened = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectSameRepository(*reopened, *repo);
  // Lineage restored across the snapshot boundary, not just the WAL tail.
  auto chain = reopened->EditChain("po", 1, 8);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->size(), 7u);
}

TEST(DurableRepositoryTest, LogWriteFailureDegradesToReadOnly) {
  FaultInjectionEnv env;
  DurabilityOptions options;
  options.env = &env;
  auto repo = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(repo->Register("po", Fig2Po()).ok());

  FaultInjectionEnv::FailPolicy policy;
  policy.fail_after_ops = 1;
  policy.message = "no space left on device";
  env.SetFailPolicy(policy);
  Status failed = repo->ApplyEdit("po", RenameLeaf("Qty", "Quantity")).status();
  EXPECT_TRUE(failed.IsUnavailable()) << failed.ToString();

  // Degraded: mutations keep failing fast, reads still serve.
  EXPECT_TRUE(repo->ApplyEdit("po", RenameLeaf("Qty", "Count")).status()
                  .IsUnavailable());
  EXPECT_TRUE(repo->Register("other", Fig2Po()).status().IsUnavailable());
  EXPECT_TRUE(repo->Get("po").ok());
  EXPECT_EQ(repo->LatestVersion("po"), 1);
  EXPECT_TRUE(repo->durability_stats().degraded);

  // Recovery after the fault sees exactly the acknowledged state: the
  // failed edit was never applied (and its torn frame, if any, is dropped).
  auto reopened = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->LatestVersion("po"), 1);
  EXPECT_FALSE(reopened->durability_stats().degraded);
  ASSERT_TRUE(reopened->ApplyEdit("po", RenameLeaf("Qty", "Quantity")).ok());
}

TEST(DurableRepositoryTest, RejectsSchemasTheNativeFormatCannotHold) {
  FaultInjectionEnv env;
  DurabilityOptions options;
  options.env = &env;
  auto repo = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(repo.ok());
  Schema with_view("V");
  Element view;
  view.name = "LegacyView";
  view.kind = ElementKind::kView;
  with_view.AddElement(view, 0);
  Status status = repo->Register("v", std::move(with_view)).status();
  EXPECT_EQ(status.code(), StatusCode::kUnsupported) << status.ToString();
  // A plain in-memory repository still accepts it.
  SchemaRepository transient;
  Schema again("V");
  again.AddElement(view, 0);
  EXPECT_TRUE(transient.Register("v", std::move(again)).ok());
}

TEST(DurableRepositoryTest, StaleSnapshotPlusWalTailWins) {
  // Crash between CURRENT publication and WAL rotation is modeled by
  // hand: records past the snapshot must replay, records under it must
  // not double-apply.
  FaultInjectionEnv env;
  DurabilityOptions options;
  options.env = &env;
  options.snapshot_every_records = 2;
  auto repo = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(repo->Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo->ApplyEdit("po", RenameLeaf("Qty", "A")).ok());  // snap @2
  ASSERT_TRUE(repo->ApplyEdit("po", RenameLeaf("A", "B")).ok());
  auto reopened = SchemaRepository::Recover("wal", options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->LatestVersion("po"), 3);
  DurabilityStats stats = reopened->durability_stats();
  EXPECT_EQ(stats.applied_seq, 3u);
  EXPECT_EQ(stats.snapshot_seq, 2u);
  EXPECT_EQ(stats.recovered_records, 1u);  // only the post-snapshot edit
}

// ------------------------------------------------------ SaveTo / LoadFrom --

TEST(RepositoryPersistenceTest, SaveToIsAtomicUnderMidSaveFailure) {
  FaultInjectionEnv env;
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.SaveTo("snap", &env).ok());
  ASSERT_TRUE(repo.Register("order", Fig2PurchaseOrder()).ok());

  // Fail every mutating filesystem op in turn; after each failed save the
  // published directory must still load as SOME complete repository (the
  // old two-schema one or the new one, never a torn mix).
  for (int64_t fail_at = 1;; ++fail_at) {
    FaultInjectionEnv::FailPolicy policy;
    policy.fail_after_ops = fail_at;
    env.SetFailPolicy(policy);
    Status saved = repo.SaveTo("snap", &env);
    env.SetFailPolicy(FaultInjectionEnv::FailPolicy{});
    auto loaded = SchemaRepository::LoadFrom("snap", &env);
    ASSERT_TRUE(loaded.ok())
        << "fail_at=" << fail_at << ": " << loaded.status().ToString();
    int names = static_cast<int>(loaded->Names().size());
    ASSERT_TRUE(names == 1 || names == 2) << "fail_at=" << fail_at;
    if (saved.ok()) {
      EXPECT_EQ(names, 2) << "fail_at=" << fail_at;
      break;  // the whole save ran without tripping the failpoint
    }
  }
}

TEST(RepositoryPersistenceTest, LoadFromVerifiesChecksums) {
  FaultInjectionEnv env;
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.SaveTo("snap", &env).ok());
  std::string file = "snap/po@v1.cupid";
  std::string content = env.FileContentForTest(file);
  ASSERT_FALSE(content.empty());
  content[content.size() / 2] ^= 0x1;
  env.SetFileContentForTest(file, content);
  auto loaded = SchemaRepository::LoadFrom("snap", &env);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find("checksum"), std::string::npos)
      << loaded.status().ToString();
}

TEST(RepositoryPersistenceTest, LineageSurvivesSaveLoad) {
  FaultInjectionEnv env;
  SchemaRepository repo;
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());
  ASSERT_TRUE(repo.ApplyEdit("po", RenameLeaf("Qty", "Quantity")).ok());
  ASSERT_TRUE(repo.Register("po", Fig2Po()).ok());  // lineage break at v3
  ASSERT_TRUE(repo.ApplyEdit("po", RenameLeaf("Qty", "Count")).ok());
  ASSERT_TRUE(repo.SaveTo("snap", &env).ok());
  auto loaded = SchemaRepository::LoadFrom("snap", &env);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameRepository(*loaded, repo);
  EXPECT_TRUE(loaded->EditChain("po", 1, 2).has_value());
  EXPECT_FALSE(loaded->EditChain("po", 2, 4).has_value());  // crosses break
  ASSERT_TRUE(loaded->EditChain("po", 3, 4).has_value());
}

}  // namespace
}  // namespace cupid
