// Tests for src/util: Status/Result, string utilities, PRNG, Matrix.

#include <gtest/gtest.h>

#include "util/matrix.h"
#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"

namespace cupid {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad wstruct");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad wstruct");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad wstruct");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::CycleDetected("x").IsCycleDetected());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  CUPID_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseHalf(7, &out).IsInvalidArgument());
}

// --------------------------------------------------------------- strings --

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLowerAscii("PoLines"), "polines");
  EXPECT_EQ(ToUpperAscii("qty"), "QTY");
}

TEST(StringsTest, Predicates) {
  EXPECT_TRUE(IsAllDigits("12345"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_TRUE(IsAllAlpha("abc"));
  EXPECT_FALSE(IsAllAlpha("a1"));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x y \t"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = SplitAny("a,b;;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(Join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(Join({}, "."), "");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Qty", "qty"));
  EXPECT_FALSE(EqualsIgnoreCase("Qty", "qt"));
}

TEST(StringsTest, AffixLengths) {
  EXPECT_EQ(CommonPrefixLength("street", "streetaddress"), 6u);
  EXPECT_EQ(CommonSuffixLength("customername", "name"), 4u);
  EXPECT_EQ(CommonPrefixLength("abc", "xyz"), 0u);
}

TEST(StringsTest, LongestCommonSubstring) {
  EXPECT_EQ(LongestCommonSubstringLength("postalcode", "zipcode"), 4u);
  EXPECT_EQ(LongestCommonSubstringLength("", "abc"), 0u);
  EXPECT_EQ(LongestCommonSubstringLength("same", "same"), 4u);
}

TEST(StringsTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
}

TEST(StringsTest, StemStripsPlurals) {
  EXPECT_EQ(Stem("lines"), "line");
  EXPECT_EQ(Stem("addresses"), "address");
  EXPECT_EQ(Stem("cities"), "city");
  EXPECT_EQ(Stem("items"), "item");
  // Words that must NOT be over-stemmed.
  EXPECT_EQ(Stem("address"), "address");
  EXPECT_EQ(Stem("status"), "status");
}

TEST(StringsTest, StemIsCaseInsensitive) {
  EXPECT_EQ(Stem("Lines"), Stem("lines"));
  EXPECT_EQ(Stem("QUANTITIES"), "quantity");
}

TEST(StringsTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%.2f", 0.5), "0.50");
}

// ---------------------------------------------------------------- random --

TEST(RandomTest, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, BoundedStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  SplitMix64 rng(1);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

// ---------------------------------------------------------------- matrix --

TEST(MatrixTest, ZeroInitialized) {
  Matrix<float> m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0f);
  }
}

TEST(MatrixTest, ReadWrite) {
  Matrix<int> m(2, 2);
  m(0, 1) = 5;
  m(1, 0) = -3;
  EXPECT_EQ(m(0, 1), 5);
  EXPECT_EQ(m(1, 0), -3);
  m.Fill(9);
  EXPECT_EQ(m(0, 0), 9);
  EXPECT_EQ(m(1, 1), 9);
}

}  // namespace
}  // namespace cupid
