// Tests for src/util: Status/Result, string utilities, PRNG, Matrix,
// ThreadPool shutdown semantics, JSON writer/parser, number parsing.

#include <gtest/gtest.h>

#include <atomic>

#include "util/json.h"
#include "util/matrix.h"
#include "util/random.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace cupid {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad wstruct");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad wstruct");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad wstruct");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::CycleDetected("x").IsCycleDetected());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  CUPID_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_TRUE(UseHalf(7, &out).IsInvalidArgument());
}

// --------------------------------------------------------------- strings --

TEST(StringsTest, CaseConversion) {
  EXPECT_EQ(ToLowerAscii("PoLines"), "polines");
  EXPECT_EQ(ToUpperAscii("qty"), "QTY");
}

TEST(StringsTest, Predicates) {
  EXPECT_TRUE(IsAllDigits("12345"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_TRUE(IsAllAlpha("abc"));
  EXPECT_FALSE(IsAllAlpha("a1"));
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x y \t"), "x y");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = SplitAny("a,b;;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(Join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(Join({}, "."), "");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Qty", "qty"));
  EXPECT_FALSE(EqualsIgnoreCase("Qty", "qt"));
}

TEST(StringsTest, AffixLengths) {
  EXPECT_EQ(CommonPrefixLength("street", "streetaddress"), 6u);
  EXPECT_EQ(CommonSuffixLength("customername", "name"), 4u);
  EXPECT_EQ(CommonPrefixLength("abc", "xyz"), 0u);
}

TEST(StringsTest, LongestCommonSubstring) {
  EXPECT_EQ(LongestCommonSubstringLength("postalcode", "zipcode"), 4u);
  EXPECT_EQ(LongestCommonSubstringLength("", "abc"), 0u);
  EXPECT_EQ(LongestCommonSubstringLength("same", "same"), 4u);
}

TEST(StringsTest, EditDistance) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
}

TEST(StringsTest, StemStripsPlurals) {
  EXPECT_EQ(Stem("lines"), "line");
  EXPECT_EQ(Stem("addresses"), "address");
  EXPECT_EQ(Stem("cities"), "city");
  EXPECT_EQ(Stem("items"), "item");
  // Words that must NOT be over-stemmed.
  EXPECT_EQ(Stem("address"), "address");
  EXPECT_EQ(Stem("status"), "status");
}

TEST(StringsTest, StemIsCaseInsensitive) {
  EXPECT_EQ(Stem("Lines"), Stem("lines"));
  EXPECT_EQ(Stem("QUANTITIES"), "quantity");
}

TEST(StringsTest, StringFormat) {
  EXPECT_EQ(StringFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringFormat("%.2f", 0.5), "0.50");
}

// ---------------------------------------------------------------- random --

TEST(RandomTest, Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, BoundedStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  SplitMix64 rng(1);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

// ---------------------------------------------------------------- matrix --

TEST(MatrixTest, ZeroInitialized) {
  Matrix<float> m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(m(i, j), 0.0f);
  }
}

TEST(MatrixTest, ReadWrite) {
  Matrix<int> m(2, 2);
  m(0, 1) = 5;
  m(1, 0) = -3;
  EXPECT_EQ(m(0, 1), 5);
  EXPECT_EQ(m(1, 0), -3);
  m.Fill(9);
  EXPECT_EQ(m(0, 0), 9);
  EXPECT_EQ(m(1, 1), 9);
}

// ---------------------------------------------------------- number parsing --

TEST(ParseNumbersTest, ParseDouble) {
  EXPECT_EQ(*ParseDouble("0.5"), 0.5);
  EXPECT_EQ(*ParseDouble("-2"), -2.0);
  EXPECT_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("0.5x").ok());   // partial consumption
  EXPECT_FALSE(ParseDouble(" 1").ok());     // leading space not consumed out
  EXPECT_FALSE(ParseDouble("1 ").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1e999999").ok());  // overflow
}

TEST(ParseNumbersTest, ParseInt) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_EQ(*ParseInt("0"), 0);
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("12.5").ok());
  EXPECT_FALSE(ParseInt("12x").ok());
  EXPECT_FALSE(ParseInt("9999999999999999999999").ok());  // overflow
}

// -------------------------------------------------------------- thread pool --

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ++ran; }));
  }
  pool.Shutdown();  // drains the queue before joining
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, SubmitAfterShutdownIsRejected) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<bool> ran{false};
  // The regression: this used to enqueue silently into a dead pool; the
  // task would never run and the caller had no way to notice.
  EXPECT_FALSE(pool.Submit([&ran] { ran = true; }));
  EXPECT_FALSE(ran.load());
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, ParallelForSurvivesShutdownPool) {
  ThreadPool pool(4);
  pool.Shutdown();
  // All chunks run inline on the caller when the pool rejects them; the
  // barrier must still complete with every index visited exactly once
  // (chunks are disjoint, so plain ints suffice).
  std::vector<int> hits(256, 0);
  ParallelFor(&pool, 256, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

// -------------------------------------------------------------------- json --

TEST(JsonWriterTest, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.Key("s");
  w.String("a\"b\\c\n");
  w.Key("i");
  w.Int(-3);
  w.Key("list");
  w.BeginArray();
  w.Int(1);
  w.Bool(true);
  w.Null();
  w.BeginObject();
  w.EndObject();
  w.EndArray();
  w.Key("f");
  w.FixedDouble(0.5, 3);
  w.EndObject();
  EXPECT_EQ(std::move(w).str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"i\":-3,"
            "\"list\":[1,true,null,{}],\"f\":0.500}");
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape(std::string("a\x01" "b\tc", 5)), "a\\u0001b\\tc");
}

TEST(JsonParserTest, ParsesDocuments) {
  auto r = ParseJson(
      R"({"cmd":"match","n":2.5,"deep":{"list":[1,-2,3e2]},"on":true,"x":null})");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->GetString("cmd"), "match");
  EXPECT_EQ(r->GetNumber("n"), 2.5);
  EXPECT_TRUE(r->GetBool("on"));
  const JsonValue* deep = r->Find("deep");
  ASSERT_NE(deep, nullptr);
  const JsonValue* list = deep->Find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->array.size(), 3u);
  EXPECT_EQ(list->array[1].number, -2.0);
  EXPECT_EQ(list->array[2].number, 300.0);
  EXPECT_EQ(r->Find("x")->type, JsonValue::Type::kNull);
  EXPECT_EQ(r->Find("nosuch"), nullptr);
  EXPECT_EQ(r->GetString("n", "fallback"), "fallback");  // wrong type
}

TEST(JsonParserTest, StringEscapesRoundTrip) {
  std::string original = "quote\" slash\\ tab\t newline\n unicode\xE2\x82\xAC";
  JsonWriter w;
  w.String(original);
  auto r = ParseJson(w.str());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->string, original);
}

TEST(JsonParserTest, UnicodeEscapes) {
  auto r = ParseJson("\"\\u20acA\"");  // euro sign
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->string, "\xE2\x82\xAC" "A");
  auto pair = ParseJson("\"\\ud83d\\ude00\"");  // surrogate pair (emoji)
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  EXPECT_EQ(pair->string, "\xF0\x9F\x98\x80");
  EXPECT_FALSE(ParseJson("\"\\ud83d\"").ok());  // unpaired high surrogate
}

TEST(JsonParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("01x").ok());
  EXPECT_FALSE(ParseJson("{'single':1}").ok());
}

}  // namespace
}  // namespace cupid
