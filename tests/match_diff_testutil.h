// Shared helpers of the incremental differential test harnesses
// (tests/incremental_test.cc, tests/property_test.cc): bitwise comparison
// of a MatchSession result against a from-scratch CupidMatcher run, and a
// seeded random schema-edit generator covering every supported edit kind.

#ifndef CUPID_TESTS_MATCH_DIFF_TESTUTIL_H_
#define CUPID_TESTS_MATCH_DIFF_TESTUTIL_H_

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "core/cupid_matcher.h"
#include "incremental/schema_edit.h"
#include "util/random.h"

namespace cupid {

/// Bitwise comparison of a session result against a from-scratch run:
/// element lsim, all three node-similarity matrices, and both mappings,
/// value for value. Returns on the first mismatch to keep failure output
/// readable.
inline void ExpectIdenticalResults(const MatchResult& inc,
                                   const MatchResult& ref,
                                   const std::string& context) {
  ASSERT_EQ(inc.linguistic.lsim.rows(), ref.linguistic.lsim.rows()) << context;
  ASSERT_EQ(inc.linguistic.lsim.cols(), ref.linguistic.lsim.cols()) << context;
  for (int64_t i = 0; i < inc.linguistic.lsim.rows(); ++i) {
    for (int64_t j = 0; j < inc.linguistic.lsim.cols(); ++j) {
      ASSERT_EQ(inc.linguistic.lsim(i, j), ref.linguistic.lsim(i, j))
          << context << " element lsim(" << i << "," << j << ")";
    }
  }
  const NodeSimilarities& a = inc.tree_match.sims;
  const NodeSimilarities& b = ref.tree_match.sims;
  ASSERT_EQ(a.source_nodes(), b.source_nodes()) << context;
  ASSERT_EQ(a.target_nodes(), b.target_nodes()) << context;
  for (TreeNodeId s = 0; s < a.source_nodes(); ++s) {
    for (TreeNodeId t = 0; t < a.target_nodes(); ++t) {
      ASSERT_EQ(a.lsim(s, t), b.lsim(s, t))
          << context << " lsim(" << s << "," << t << ")";
      ASSERT_EQ(a.ssim(s, t), b.ssim(s, t))
          << context << " ssim(" << s << "," << t << ") "
          << inc.source_tree.PathName(s) << " / "
          << inc.target_tree.PathName(t);
      ASSERT_EQ(a.wsim(s, t), b.wsim(s, t))
          << context << " wsim(" << s << "," << t << ") "
          << inc.source_tree.PathName(s) << " / "
          << inc.target_tree.PathName(t);
    }
  }
  auto expect_mapping = [&](const Mapping& m1, const Mapping& m2,
                            const char* which) {
    ASSERT_EQ(m1.size(), m2.size()) << context << " " << which;
    for (size_t i = 0; i < m1.size(); ++i) {
      ASSERT_EQ(m1.elements[i].source_path, m2.elements[i].source_path)
          << context << " " << which << "[" << i << "]";
      ASSERT_EQ(m1.elements[i].target_path, m2.elements[i].target_path)
          << context << " " << which << "[" << i << "]";
      ASSERT_EQ(m1.elements[i].wsim, m2.elements[i].wsim)
          << context << " " << which << "[" << i << "]";
      ASSERT_EQ(m1.elements[i].ssim, m2.elements[i].ssim)
          << context << " " << which << "[" << i << "]";
      ASSERT_EQ(m1.elements[i].lsim, m2.elements[i].lsim)
          << context << " " << which << "[" << i << "]";
    }
  };
  expect_mapping(inc.leaf_mapping, ref.leaf_mapping, "leaf mapping");
  expect_mapping(inc.nonleaf_mapping, ref.nonleaf_mapping,
                 "nonleaf mapping");
}

/// A random edit over the current schemas: every kind is exercised,
/// including renames onto vocabulary words (thesaurus hits), type drift,
/// fresh subtrees, and removals.
inline SchemaEdit RandomSessionEdit(SplitMix64* rng, const Schema& source,
                                    const Schema& target, int counter) {
  EditSide side = rng->NextBounded(2) == 0 ? EditSide::kSource
                                           : EditSide::kTarget;
  const Schema& schema = side == EditSide::kSource ? source : target;
  auto random_element = [&](bool allow_root) {
    // Root is id 0; non-root elements start at 1 (if any exist).
    if (schema.num_elements() <= 1) {
      return allow_root ? ElementId{0} : kNoElement;
    }
    return allow_root
               ? static_cast<ElementId>(rng->NextBounded(
                     static_cast<uint64_t>(schema.num_elements())))
               : static_cast<ElementId>(
                     1 + rng->NextBounded(
                             static_cast<uint64_t>(schema.num_elements() - 1)));
  };
  static const char* kNames[] = {"Qty",        "CustomerNumber", "UnitPrice",
                                 "ShipToCity", "OrderDate",      "Amount",
                                 "ContactPhone", "PostalCode"};
  static const DataType kTypes[] = {DataType::kString,  DataType::kInteger,
                                    DataType::kDecimal, DataType::kMoney,
                                    DataType::kDate,    DataType::kBoolean};
  switch (rng->NextBounded(4)) {
    case 0: {  // rename: occasionally onto a vocabulary name (collisions OK)
      ElementId id = random_element(/*allow_root=*/false);
      if (id == kNoElement || schema.FindByPath(schema.PathName(id)) != id) {
        break;  // path-ambiguous element (duplicate sibling names): skip
      }
      std::string name =
          rng->NextBernoulli(0.5)
              ? std::string(kNames[rng->NextBounded(8)])
              : schema.element(id).name + "X" + std::to_string(counter);
      return SchemaEdit::RenameElement(side, schema.PathName(id),
                                       std::move(name));
    }
    case 1: {  // retype a random element
      ElementId id = random_element(/*allow_root=*/false);
      if (id == kNoElement || schema.FindByPath(schema.PathName(id)) != id) {
        break;
      }
      return SchemaEdit::ChangeDataType(side, schema.PathName(id),
                                        kTypes[rng->NextBounded(6)]);
    }
    case 2: {  // add a leaf under a random element (leaves become containers)
      ElementId parent = random_element(/*allow_root=*/true);
      if (schema.FindByPath(schema.PathName(parent)) != parent) break;
      Element leaf;
      leaf.name = std::string(kNames[rng->NextBounded(8)]) +
                  std::to_string(counter);
      leaf.kind = ElementKind::kAtomic;
      leaf.data_type = kTypes[rng->NextBounded(6)];
      leaf.optional = rng->NextBernoulli(0.3);
      return SchemaEdit::AddElement(side, schema.PathName(parent),
                                    std::move(leaf));
    }
    default: {  // remove a random subtree (keep schemas from emptying out)
      if (schema.num_elements() > 10) {
        ElementId id = random_element(/*allow_root=*/false);
        if (schema.FindByPath(schema.PathName(id)) != id) break;
        return SchemaEdit::RemoveElement(side, schema.PathName(id));
      }
      break;
    }
  }
  // Fallback: benign rename of the root (dirties everything — also a case
  // worth covering).
  return SchemaEdit::RenameElement(side, schema.PathName(0),
                                   schema.name() + "R");
}

}  // namespace cupid

#endif  // CUPID_TESTS_MATCH_DIFF_TESTUTIL_H_
