// Tests for the comparison systems (src/baselines): LSPD, the DIKE-style
// matcher, and the ARTEMIS/MOMIS-style matcher. The expectations encode the
// behaviours Tables 2 and 3 of the paper attribute to these systems.

#include <gtest/gtest.h>

#include "baselines/artemis.h"
#include "baselines/dike.h"
#include "baselines/er_conversion.h"
#include "baselines/lspd.h"
#include "eval/datasets.h"
#include "thesaurus/default_thesaurus.h"

namespace cupid {
namespace {

// ------------------------------------------------------------------ LSPD --

TEST(LspdTest, EqualNamesScoreOneWithoutEntries) {
  Lspd l;
  EXPECT_DOUBLE_EQ(l.Get("Name", "name"), 1.0);
  EXPECT_DOUBLE_EQ(l.Get("Name", "CustomerName"), 0.0);
}

TEST(LspdTest, EntriesAreSymmetricAndClamped) {
  Lspd l;
  l.Add("Address", "StreetAddress", 2.0);
  EXPECT_DOUBLE_EQ(l.Get("StreetAddress", "address"), 1.0);
  l.Add("a", "b", 0.7);
  EXPECT_DOUBLE_EQ(l.Get("b", "a"), 0.7);
  EXPECT_EQ(l.size(), 2u);
}

// ------------------------------------------------------------------ DIKE --

TEST(DikeTest, IdenticalSchemasMergeWithoutLspd) {
  // Table 2 row 1: Y.
  Dataset d = std::move(*CanonicalExample(1));
  auto r = DikeMatch(d.source, d.target, Lspd{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->Merged("Customer", "Customer"));
  EXPECT_TRUE(r->Merged("Name", "Name"));
  EXPECT_TRUE(r->Merged("Address", "Address"));
}

TEST(DikeTest, NameVariationsNeedLspdEntries) {
  // Table 2 row 3: DIKE = Y only with LSPD entries added.
  Dataset d = std::move(*CanonicalExample(3));
  auto without = DikeMatch(d.source, d.target, Lspd{});
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without->Merged("Address", "StreetAddress"));

  Lspd lspd;
  lspd.Add("CustomerNumber", "CustomerNumberId", 1.0);
  lspd.Add("Name", "CustomerName", 1.0);
  lspd.Add("Address", "StreetAddress", 1.0);
  lspd.Add("Telephone", "TelephoneNumber", 1.0);
  auto with = DikeMatch(d.source, d.target, lspd);
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(with->Merged("Address", "StreetAddress"));
  EXPECT_TRUE(with->Merged("Name", "CustomerName"));
}

TEST(DikeTest, HandlesNestingViaEntityMerging) {
  // Table 2 row 5: DIKE = Y (merges the entities).
  Dataset d = std::move(*CanonicalExample(5));
  auto r = DikeMatch(d.source, d.target, Lspd{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Merged("Customer", "Customer"));
  EXPECT_TRUE(r->Merged("Street", "Street"));
  EXPECT_TRUE(r->Merged("Zip", "Zip"));
}

TEST(DikeTest, NoContextDependentMappings) {
  // Table 2 row 6: DIKE = N — the shared-type contexts cannot each get
  // their own mapping because every element merges at most once.
  Dataset d = std::move(*CanonicalExample(6));
  auto r = DikeMatch(d.source, d.target, Lspd{});
  ASSERT_TRUE(r.ok());
  int street_mappings = 0;
  for (const DikePair& p : r->merged) {
    if (p.first_name == "Street") ++street_mappings;
  }
  // The source schema's single shared Street element can merge only once,
  // but the correct answer needs it in two contexts.
  EXPECT_LE(street_mappings, 1);
}

TEST(DikeTest, VicinityRaisesSimilarityOfNeighbors) {
  Dataset d = std::move(*CanonicalExample(1));
  DikeOptions no_vicinity;
  no_vicinity.vicinity_weight = 0.0;
  DikeOptions with_vicinity;
  with_vicinity.vicinity_weight = 0.5;
  auto r0 = DikeMatch(d.source, d.target, Lspd{}, no_vicinity);
  auto r1 = DikeMatch(d.source, d.target, Lspd{}, with_vicinity);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  // Identical-name elements with identical vicinities keep merging either
  // way; vicinity should not destroy the result.
  EXPECT_TRUE(r1->Merged("Customer", "Customer"));
}

TEST(DikeTest, OptionValidation) {
  Dataset d = std::move(*CanonicalExample(1));
  DikeOptions bad;
  bad.vicinity_weight = 2.0;
  EXPECT_TRUE(
      DikeMatch(d.source, d.target, Lspd{}, bad).status().IsInvalidArgument());
  DikeOptions bad2;
  bad2.iterations = 0;
  EXPECT_TRUE(DikeMatch(d.source, d.target, Lspd{}, bad2)
                  .status()
                  .IsInvalidArgument());
}

// --------------------------------------------------------------- ARTEMIS --

TEST(ArtemisTest, IdenticalClassesCluster) {
  // Table 2 row 1: Y (after sense selection, which exact names satisfy).
  Dataset d = std::move(*CanonicalExample(1));
  auto r = ArtemisMatch(d.source, d.target, Thesaurus{});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->Clustered("Schema1.Customer", "Schema2.Customer"));
  EXPECT_TRUE(r->Fused("Schema1.Customer.Name", "Schema2.Customer.Name"));
}

TEST(ArtemisTest, NameVariationsNeedDictionaryEntries) {
  // Table 2 row 3: MOMIS needs explicit synonym entries per pair.
  Dataset d = std::move(*CanonicalExample(3));
  auto without = ArtemisMatch(d.source, d.target, Thesaurus{});
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without->Fused("Schema1.Customer.Address",
                              "Schema2.Customer.StreetAddress"));

  Thesaurus dict;
  dict.AddSynonym("Address", "StreetAddress", 1.0);
  dict.AddSynonym("Name", "CustomerName", 1.0);
  dict.AddSynonym("Telephone", "TelephoneNumber", 1.0);
  dict.AddSynonym("CustomerNumber", "CustomerNumberId", 1.0);
  auto with = ArtemisMatch(d.source, d.target, dict);
  ASSERT_TRUE(with.ok());
  EXPECT_TRUE(with->Fused("Schema1.Customer.Address",
                          "Schema2.Customer.StreetAddress"));
}

TEST(ArtemisTest, ClassRenameResolvedByHypernym) {
  // Table 2 row 4: Person is a WordNet hypernym of Customer.
  Dataset d = std::move(*CanonicalExample(4));
  Thesaurus wordnet;
  wordnet.AddHypernym("customer", "person", 0.8);
  auto r = ArtemisMatch(d.source, d.target, wordnet);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Clustered("Schema1.Customer", "Schema2.Person"));
}

TEST(ArtemisTest, NestingDefeatsClassGranularity) {
  // Table 2 row 5: N — the nested Name/Address classes have no counterpart
  // classes in the flat schema, so their attributes are not fused.
  Dataset d = std::move(*CanonicalExample(5));
  auto r = ArtemisMatch(d.source, d.target, Thesaurus{});
  ASSERT_TRUE(r.ok());
  // The top Customer classes cluster...
  EXPECT_TRUE(r->Clustered("Schema1.Customer", "Schema2.Customer"));
  // ...but the nested attributes (Street under the nested Address class)
  // are NOT fused with the flat schema's Street.
  EXPECT_FALSE(
      r->Fused("Schema1.Address.Street", "Schema2.Customer.Street"));
}

TEST(ArtemisTest, TypeSubstitutionNotDisambiguated) {
  // Table 2 row 6: N — ShipTo/BillTo stay in clusters separate from
  // Address; no context-dependent mapping exists.
  Dataset d = std::move(*CanonicalExample(6));
  auto r = ArtemisMatch(d.source, d.target, Thesaurus{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(
      r->Clustered("Schema1.PurchaseOrder", "Schema2.PurchaseOrder"));
  EXPECT_FALSE(r->Clustered("Schema1.Address", "Schema2.ShipTo"));
  EXPECT_FALSE(r->Clustered("Schema1.Address", "Schema2.BillTo"));
}

// --------------------------------------------------------- ER conversion --

TEST(ErConversionTest, ContainersBecomeEntities) {
  auto excel = ExcelSchema();
  ASSERT_TRUE(excel.ok());
  auto er = ConvertToEr(*excel, ErModelingChoice::kContainersAsEntities);
  ASSERT_TRUE(er.ok()) << er.status().ToString();
  // Items has an atomic child (itemCount) -> entity.
  ElementId items = er->FindByName("Items");
  ASSERT_NE(items, kNoElement);
  EXPECT_EQ(er->element(items).kind, ElementKind::kEntity);
  // DeliverTo has only container children -> relationship.
  ElementId deliver = er->FindByName("DeliverTo");
  ASSERT_NE(deliver, kNoElement);
  EXPECT_EQ(er->element(deliver).kind, ElementKind::kRelationship);
}

TEST(ErConversionTest, AlternativeChoiceFlipsIntermediates) {
  auto excel = ExcelSchema();
  ASSERT_TRUE(excel.ok());
  auto er = ConvertToEr(*excel, ErModelingChoice::kLeafContainersAsEntities);
  ASSERT_TRUE(er.ok());
  // Items has a non-atomic child (Item) -> relationship in this modeling.
  ElementId items = er->FindByName("Items");
  EXPECT_EQ(er->element(items).kind, ElementKind::kRelationship);
  // Header has only atomic members -> entity.
  ElementId header = er->FindByName("Header");
  EXPECT_EQ(er->element(header).kind, ElementKind::kEntity);
}

TEST(ErConversionTest, SharedTypesExpandPerContext) {
  auto excel = ExcelSchema();
  ASSERT_TRUE(excel.ok());
  auto er = ConvertToEr(*excel, ErModelingChoice::kContainersAsEntities);
  ASSERT_TRUE(er.ok());
  // The shared Address type appears as two separate Address elements.
  int address_count = 0;
  for (ElementId id : er->AllElements()) {
    if (er->element(id).name == "Address") ++address_count;
  }
  EXPECT_EQ(address_count, 2);
  // No type definitions survive into the ER model.
  EXPECT_TRUE(er->ElementsOfKind(ElementKind::kTypeDef).empty());
}

TEST(ErConversionTest, DikeRunsOnConvertedModel) {
  // The Section 9.2 DIKE workflow: remodel both XML schemas as ER, then
  // match. Smoke-check that the identical-name attributes merge.
  auto cidx = CidxSchema();
  auto excel = ExcelSchema();
  ASSERT_TRUE(cidx.ok() && excel.ok());
  auto er1 = ConvertToEr(*cidx, ErModelingChoice::kLeafContainersAsEntities);
  auto er2 = ConvertToEr(*excel, ErModelingChoice::kLeafContainersAsEntities);
  ASSERT_TRUE(er1.ok() && er2.ok());
  auto r = DikeMatch(*er1, *er2, Lspd{});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Merged("Contact", "Contact"));
}

TEST(ArtemisTest, OptionValidation) {
  Dataset d = std::move(*CanonicalExample(1));
  ArtemisOptions bad;
  bad.name_weight = -0.5;
  EXPECT_TRUE(ArtemisMatch(d.source, d.target, Thesaurus{}, bad)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace cupid
