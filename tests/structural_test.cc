// Tests for structural matching (src/structural): type compatibility,
// TreeMatch dynamics (increases/decreases, pruning, optionality, lazy
// expansion) and the recompute pass.

#include <gtest/gtest.h>

#include "linguistic/linguistic_matcher.h"
#include "schema/schema_builder.h"
#include "structural/tree_match.h"
#include "structural/type_compatibility.h"
#include "thesaurus/default_thesaurus.h"
#include "tree/tree_builder.h"

namespace cupid {
namespace {

TreeNodeId FindNode(const SchemaTree& t, const std::string& path) {
  for (TreeNodeId n = 0; n < t.num_nodes(); ++n) {
    if (t.PathName(n) == path) return n;
  }
  return kNoTreeNode;
}

// ---------------------------------------------------- type compatibility --

TEST(TypeCompatibilityTest, IdenticalTypesScoreHalf) {
  TypeCompatibilityTable t = TypeCompatibilityTable::Default();
  EXPECT_DOUBLE_EQ(t.Get(DataType::kInteger, DataType::kInteger), 0.5);
  EXPECT_DOUBLE_EQ(t.Get(DataType::kString, DataType::kString), 0.5);
}

TEST(TypeCompatibilityTest, SameClassBelowIdentical) {
  TypeCompatibilityTable t = TypeCompatibilityTable::Default();
  double same_class = t.Get(DataType::kInteger, DataType::kDecimal);
  EXPECT_LT(same_class, 0.5);
  EXPECT_GT(same_class, t.Get(DataType::kInteger, DataType::kBinary));
}

TEST(TypeCompatibilityTest, NeverExceedsHalf) {
  TypeCompatibilityTable t = TypeCompatibilityTable::Default();
  for (int i = 0; i <= static_cast<int>(DataType::kAny); ++i) {
    for (int j = 0; j <= static_cast<int>(DataType::kAny); ++j) {
      double v = t.Get(static_cast<DataType>(i), static_cast<DataType>(j));
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 0.5);
    }
  }
}

TEST(TypeCompatibilityTest, SymmetricByDefault) {
  TypeCompatibilityTable t = TypeCompatibilityTable::Default();
  for (int i = 0; i <= static_cast<int>(DataType::kAny); ++i) {
    for (int j = 0; j <= static_cast<int>(DataType::kAny); ++j) {
      EXPECT_DOUBLE_EQ(
          t.Get(static_cast<DataType>(i), static_cast<DataType>(j)),
          t.Get(static_cast<DataType>(j), static_cast<DataType>(i)));
    }
  }
}

TEST(TypeCompatibilityTest, SetClampsAndSymmetrizes) {
  TypeCompatibilityTable t;
  t.Set(DataType::kInteger, DataType::kString, 0.9);  // clamped to 0.5
  EXPECT_DOUBLE_EQ(t.Get(DataType::kInteger, DataType::kString), 0.5);
  EXPECT_DOUBLE_EQ(t.Get(DataType::kString, DataType::kInteger), 0.5);
}

// -------------------------------------------------------------- TreeMatch --

/// Two tiny schemas with one matching and one non-matching container.
struct Fixture {
  Fixture() {
    XmlSchemaBuilder b1("S1");
    ElementId item1 = b1.AddElement(b1.root(), "Item");
    b1.AddAttribute(item1, "Qty", DataType::kDecimal);
    b1.AddAttribute(item1, "Price", DataType::kMoney);
    s1 = std::move(b1).Build();
    XmlSchemaBuilder b2("S2");
    ElementId item2 = b2.AddElement(b2.root(), "Item");
    b2.AddAttribute(item2, "Quantity", DataType::kDecimal);
    b2.AddAttribute(item2, "Cost", DataType::kMoney);
    s2 = std::move(b2).Build();
    thesaurus = DefaultThesaurus();
  }

  Result<TreeMatchResult> Run(const TreeMatchOptions& opts = {}) {
    LinguisticMatcher lm(&thesaurus, {});
    auto lres = lm.Match(s1, s2);
    if (!lres.ok()) return lres.status();
    auto t1 = BuildSchemaTree(s1);
    auto t2 = BuildSchemaTree(s2);
    if (!t1.ok()) return t1.status();
    if (!t2.ok()) return t2.status();
    tree1 = std::move(t1).ValueOrDie();
    tree2 = std::move(t2).ValueOrDie();
    return TreeMatch(*tree1, *tree2, lres->lsim,
                     TypeCompatibilityTable::Default(), opts);
  }

  Schema s1{"S1"}, s2{"S2"};
  Thesaurus thesaurus;
  std::optional<SchemaTree> tree1, tree2;
};

TEST(TreeMatchTest, LeafSsimInitializedFromTypeTable) {
  Fixture f;
  TreeMatchOptions opts;
  // Neutralize dynamics to observe pure initialization.
  opts.th_high = 1.0;
  opts.th_low = 0.0;
  opts.th_accept = 0.5;
  auto r = f.Run(opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  TreeNodeId qty = FindNode(*f.tree1, "S1.Item.Qty");
  TreeNodeId quantity = FindNode(*f.tree2, "S2.Item.Quantity");
  EXPECT_DOUBLE_EQ(r->sims.ssim(qty, quantity), 0.5);  // decimal-decimal
  TreeNodeId price = FindNode(*f.tree1, "S1.Item.Price");
  EXPECT_LT(r->sims.ssim(price, quantity), 0.5);  // money-decimal
}

TEST(TreeMatchTest, IncreaseAppliedUnderSimilarAncestors) {
  Fixture f;
  auto r = f.Run();
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.increases_applied, 0);
  TreeNodeId qty = FindNode(*f.tree1, "S1.Item.Qty");
  TreeNodeId quantity = FindNode(*f.tree2, "S2.Item.Quantity");
  // Above the 0.5 initialization thanks to ancestor reinforcement.
  EXPECT_GT(r->sims.ssim(qty, quantity), 0.5);
  EXPECT_GE(r->sims.wsim(qty, quantity), 0.5);
}

TEST(TreeMatchTest, WsimIsConvexMix) {
  Fixture f;
  auto r = f.Run();
  ASSERT_TRUE(r.ok());
  for (TreeNodeId a = 0; a < f.tree1->num_nodes(); ++a) {
    for (TreeNodeId b = 0; b < f.tree2->num_nodes(); ++b) {
      EXPECT_GE(r->sims.wsim(a, b), 0.0);
      EXPECT_LE(r->sims.wsim(a, b), 1.0);
      EXPECT_GE(r->sims.ssim(a, b), 0.0);
      EXPECT_LE(r->sims.ssim(a, b), 1.0);
    }
  }
}

TEST(TreeMatchTest, LeafCountPruningSkipsLopsidedPairs) {
  // A 1-leaf container vs an 8-leaf container exceeds the 2x ratio.
  XmlSchemaBuilder b1("S1");
  ElementId small = b1.AddElement(b1.root(), "Small");
  b1.AddAttribute(small, "x", DataType::kInteger);
  Schema s1 = std::move(b1).Build();
  XmlSchemaBuilder b2("S2");
  ElementId big = b2.AddElement(b2.root(), "Big");
  for (int i = 0; i < 8; ++i) {
    b2.AddAttribute(big, "c" + std::to_string(i), DataType::kInteger);
  }
  Schema s2 = std::move(b2).Build();

  Thesaurus th = DefaultThesaurus();
  LinguisticMatcher lm(&th, {});
  auto lres = lm.Match(s1, s2);
  auto t1 = BuildSchemaTree(s1).ValueOrDie();
  auto t2 = BuildSchemaTree(s2).ValueOrDie();
  auto r = TreeMatch(t1, t2, lres->lsim, TypeCompatibilityTable::Default(),
                     {});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->stats.pairs_pruned_leaf_count, 0);

  TreeMatchOptions no_prune;
  no_prune.leaf_count_ratio = 0.0;
  auto r2 = TreeMatch(t1, t2, lres->lsim, TypeCompatibilityTable::Default(),
                      no_prune);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->stats.pairs_pruned_leaf_count, 0);
  EXPECT_GT(r2->stats.pairs_compared, r->stats.pairs_compared);
}

TEST(TreeMatchTest, OptionalDiscountRaisesSsim) {
  // S1.Box{a} vs S2.Box{a, opt1..opt2 optional}: with the discount the
  // unmatched optional leaves do not dilute ssim.
  XmlSchemaBuilder b1("S1");
  ElementId box1 = b1.AddElement(b1.root(), "Box");
  b1.AddAttribute(box1, "alpha", DataType::kInteger);
  Schema s1 = std::move(b1).Build();
  XmlSchemaBuilder b2("S2");
  ElementId box2 = b2.AddElement(b2.root(), "Box");
  b2.AddAttribute(box2, "alpha", DataType::kInteger);
  b2.AddAttribute(box2, "extra", DataType::kBinary, /*optional=*/true);
  Schema s2 = std::move(b2).Build();

  Thesaurus th = DefaultThesaurus();
  LinguisticMatcher lm(&th, {});
  auto lres = lm.Match(s1, s2);
  auto t1 = BuildSchemaTree(s1).ValueOrDie();
  auto t2 = BuildSchemaTree(s2).ValueOrDie();

  TreeMatchOptions with;
  with.optional_discount = true;
  TreeMatchOptions without;
  without.optional_discount = false;
  auto r1 = TreeMatch(t1, t2, lres->lsim, TypeCompatibilityTable::Default(),
                      with);
  auto r2 = TreeMatch(t1, t2, lres->lsim, TypeCompatibilityTable::Default(),
                      without);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  TreeNodeId n1 = FindNode(t1, "S1.Box");
  TreeNodeId n2 = FindNode(t2, "S2.Box");
  EXPECT_GT(r1->sims.ssim(n1, n2), r2->sims.ssim(n1, n2));
  // With the discount the single required pair dominates: ssim 1.
  EXPECT_DOUBLE_EQ(r1->sims.ssim(n1, n2), 1.0);
}

TEST(TreeMatchTest, DepthLimitedFrontierDegradesToChildren) {
  // With max_leaf_depth=1 TreeMatch uses immediate children, the
  // alternative design Section 6 argues against. Nested-vs-flat matching
  // should get WORSE.
  XmlSchemaBuilder b1("S1");
  ElementId cust1 = b1.AddElement(b1.root(), "Customer");
  ElementId name1 = b1.AddElement(cust1, "Name");
  b1.AddAttribute(name1, "First", DataType::kString);
  b1.AddAttribute(name1, "Last", DataType::kString);
  Schema s1 = std::move(b1).Build();
  XmlSchemaBuilder b2("S2");
  ElementId cust2 = b2.AddElement(b2.root(), "Customer");
  b2.AddAttribute(cust2, "First", DataType::kString);
  b2.AddAttribute(cust2, "Last", DataType::kString);
  Schema s2 = std::move(b2).Build();

  Thesaurus th = DefaultThesaurus();
  LinguisticMatcher lm(&th, {});
  auto lres = lm.Match(s1, s2);
  auto t1 = BuildSchemaTree(s1).ValueOrDie();
  auto t2 = BuildSchemaTree(s2).ValueOrDie();

  TreeMatchOptions leaves;
  TreeMatchOptions children;
  children.max_leaf_depth = 1;
  auto r_leaves = TreeMatch(t1, t2, lres->lsim,
                            TypeCompatibilityTable::Default(), leaves);
  auto r_children = TreeMatch(t1, t2, lres->lsim,
                              TypeCompatibilityTable::Default(), children);
  ASSERT_TRUE(r_leaves.ok());
  ASSERT_TRUE(r_children.ok());
  TreeNodeId c1 = FindNode(t1, "S1.Customer");
  TreeNodeId c2 = FindNode(t2, "S2.Customer");
  EXPECT_GE(r_leaves->sims.ssim(c1, c2), r_children->sims.ssim(c1, c2));
}

TEST(TreeMatchTest, OptionValidation) {
  Fixture f;
  TreeMatchOptions bad;
  bad.th_low = 0.9;  // violates th_low <= th_accept
  EXPECT_TRUE(f.Run(bad).status().IsInvalidArgument());
  TreeMatchOptions bad2;
  bad2.c_inc = 0.5;
  EXPECT_TRUE(f.Run(bad2).status().IsInvalidArgument());
  TreeMatchOptions bad3;
  bad3.c_dec = 0.0;
  EXPECT_TRUE(f.Run(bad3).status().IsInvalidArgument());
  TreeMatchOptions bad4;
  bad4.max_leaf_depth = -1;
  EXPECT_TRUE(f.Run(bad4).status().IsInvalidArgument());
}

TEST(TreeMatchTest, DimensionMismatchRejected) {
  Fixture f;
  auto t1 = BuildSchemaTree(f.s1).ValueOrDie();
  auto t2 = BuildSchemaTree(f.s2).ValueOrDie();
  Matrix<float> wrong(1, 1);
  auto r = TreeMatch(t1, t2, wrong, TypeCompatibilityTable::Default(), {});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(TreeMatchTest, SkipLeavesFastPathOnNearIdenticalSchemas) {
  // Section 8.4 last paragraph: when immediate children match very well,
  // the leaf scan is skipped. Identical schemas trigger it everywhere.
  XmlSchemaBuilder b1("S1");
  ElementId a1 = b1.AddElement(b1.root(), "Box");
  ElementId m1 = b1.AddElement(a1, "Mid");
  b1.AddAttribute(m1, "x", DataType::kInteger);
  b1.AddAttribute(m1, "y", DataType::kString);
  Schema s1 = std::move(b1).Build();
  XmlSchemaBuilder b2("S2");
  ElementId a2 = b2.AddElement(b2.root(), "Box");
  ElementId m2 = b2.AddElement(a2, "Mid");
  b2.AddAttribute(m2, "x", DataType::kInteger);
  b2.AddAttribute(m2, "y", DataType::kString);
  Schema s2 = std::move(b2).Build();

  Thesaurus th = DefaultThesaurus();
  LinguisticMatcher lm(&th, {});
  auto lres = lm.Match(s1, s2);
  auto t1 = BuildSchemaTree(s1).ValueOrDie();
  auto t2 = BuildSchemaTree(s2).ValueOrDie();

  TreeMatchOptions fast;
  fast.skip_leaves_threshold = 0.9;
  auto r_fast = TreeMatch(t1, t2, lres->lsim,
                          TypeCompatibilityTable::Default(), fast);
  ASSERT_TRUE(r_fast.ok());
  EXPECT_GT(r_fast->stats.leaf_scans_skipped, 0);

  auto r_slow = TreeMatch(t1, t2, lres->lsim,
                          TypeCompatibilityTable::Default(), {});
  ASSERT_TRUE(r_slow.ok());
  EXPECT_EQ(r_slow->stats.leaf_scans_skipped, 0);
  // The accepted links agree between the fast path and the full scan.
  for (TreeNodeId a = 0; a < t1.num_nodes(); ++a) {
    for (TreeNodeId b = 0; b < t2.num_nodes(); ++b) {
      EXPECT_EQ(r_fast->sims.wsim(a, b) >= 0.5,
                r_slow->sims.wsim(a, b) >= 0.5)
          << t1.PathName(a) << " vs " << t2.PathName(b);
    }
  }
}

TEST(TreeMatchTest, SkipLeavesThresholdValidated) {
  Fixture f;
  TreeMatchOptions bad;
  bad.skip_leaves_threshold = 1.5;
  EXPECT_TRUE(f.Run(bad).status().IsInvalidArgument());
}

// ---------------------------------------------------------- lazy expansion --

/// Shared-type schema matched against a flat schema; lazy and eager must
/// produce the same accepted leaf links.
TEST(TreeMatchTest, LazyExpansionPreservesLeafDecisions) {
  XmlSchemaBuilder b1("S1");
  ElementId addr_type = b1.AddComplexType("AddressType");
  b1.AddAttribute(addr_type, "Street", DataType::kString);
  b1.AddAttribute(addr_type, "City", DataType::kString);
  for (const char* ctx : {"ShipTo", "BillTo"}) {
    ElementId e = b1.AddElement(b1.root(), ctx);
    ElementId a = b1.AddElement(e, "Address");
    b1.SetType(a, addr_type);
  }
  Schema s1 = std::move(b1).Build();

  XmlSchemaBuilder b2("S2");
  for (const char* ctx : {"DeliverTo", "InvoiceTo"}) {
    ElementId e = b2.AddElement(b2.root(), ctx);
    b2.AddAttribute(e, "Street", DataType::kString);
    b2.AddAttribute(e, "City", DataType::kString);
  }
  Schema s2 = std::move(b2).Build();

  Thesaurus th = DefaultThesaurus();
  LinguisticMatcher lm(&th, {});
  auto lres = lm.Match(s1, s2);
  auto t1 = BuildSchemaTree(s1).ValueOrDie();
  auto t2 = BuildSchemaTree(s2).ValueOrDie();

  TreeMatchOptions eager;
  TreeMatchOptions lazy;
  lazy.lazy_expansion = true;
  auto r_eager = TreeMatch(t1, t2, lres->lsim,
                           TypeCompatibilityTable::Default(), eager);
  auto r_lazy = TreeMatch(t1, t2, lres->lsim,
                          TypeCompatibilityTable::Default(), lazy);
  ASSERT_TRUE(r_eager.ok());
  ASSERT_TRUE(r_lazy.ok());
  EXPECT_GT(r_lazy->stats.pairs_skipped_lazy, 0);
  EXPECT_LT(r_lazy->stats.pairs_compared, r_eager->stats.pairs_compared);

  // Accepted leaf links must agree.
  for (TreeNodeId a = 0; a < t1.num_nodes(); ++a) {
    if (!t1.IsLeaf(a)) continue;
    for (TreeNodeId b = 0; b < t2.num_nodes(); ++b) {
      if (!t2.IsLeaf(b)) continue;
      bool strong_eager = r_eager->sims.wsim(a, b) >= 0.5;
      bool strong_lazy = r_lazy->sims.wsim(a, b) >= 0.5;
      EXPECT_EQ(strong_eager, strong_lazy)
          << t1.PathName(a) << " vs " << t2.PathName(b);
    }
  }
}

// --------------------------------------------------------------- recompute --

TEST(TreeMatchTest, RecomputeRefreshesNonLeafSimilarities) {
  Fixture f;
  auto r = f.Run();
  ASSERT_TRUE(r.ok());
  TreeMatchResult result = std::move(r).ValueOrDie();
  TreeNodeId i1 = FindNode(*f.tree1, "S1.Item");
  TreeNodeId i2 = FindNode(*f.tree2, "S2.Item");
  double before = result.sims.ssim(i1, i2);
  ASSERT_TRUE(RecomputeNonLeafSimilarities(*f.tree1, *f.tree2, {}, &result)
                  .ok());
  double after = result.sims.ssim(i1, i2);
  // The recompute should not lower a fully-matched container's ssim.
  EXPECT_GE(after, before);
  EXPECT_DOUBLE_EQ(after, 1.0);
}

TEST(TreeMatchTest, RecomputeDimensionMismatchRejected) {
  Fixture f;
  auto r = f.Run();
  ASSERT_TRUE(r.ok());
  TreeMatchResult result = std::move(r).ValueOrDie();
  XmlSchemaBuilder other("Other");
  Schema s = std::move(other).Build();
  auto tree = BuildSchemaTree(s).ValueOrDie();
  EXPECT_TRUE(RecomputeNonLeafSimilarities(tree, *f.tree2, {}, &result)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace cupid
