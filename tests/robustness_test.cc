// Robustness / failure-injection tests: the parsers and the matcher must
// return Status errors — never crash, hang or accept garbage silently — on
// adversarial input. Deterministic fuzzing via SplitMix64.

#include <gtest/gtest.h>

#include <string>

#include "core/cupid_matcher.h"
#include "importers/dtd_parser.h"
#include "importers/native_format.h"
#include "importers/sql_ddl_parser.h"
#include "importers/xml_parser.h"
#include "importers/xml_schema_loader.h"
#include "linguistic/tokenizer.h"
#include "thesaurus/thesaurus_io.h"
#include "eval/datasets.h"
#include "schema/schema_builder.h"
#include "util/random.h"

namespace cupid {
namespace {

/// Random byte strings biased toward structural characters so the parsers
/// get past their first branch often enough to be exercised deeply.
std::string FuzzInput(SplitMix64* rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "<>!?/=\"' \n\tABCdefgh0123#();,.|*+-ELEMENTATTLISTschema";
  size_t len = rng->NextBounded(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class ParserFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, XmlParserNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string input = FuzzInput(&rng, 200);
    auto r = ParseXml(input);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsParseError()) << r.status().ToString();
    }
  }
}

TEST_P(ParserFuzz, XmlSchemaLoaderNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x1111);
  for (int i = 0; i < 200; ++i) {
    auto r = LoadXmlSchema(FuzzInput(&rng, 200));
    (void)r;  // error or schema; must not crash
  }
}

TEST_P(ParserFuzz, SqlDdlParserNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 200; ++i) {
    auto r = ParseSqlDdl("F", FuzzInput(&rng, 200));
    (void)r;
  }
}

TEST_P(ParserFuzz, DtdParserNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x3333);
  for (int i = 0; i < 200; ++i) {
    auto r = ParseDtd("F", FuzzInput(&rng, 200));
    (void)r;
  }
}

TEST_P(ParserFuzz, NativeFormatNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x4444);
  for (int i = 0; i < 200; ++i) {
    auto r = ParseNativeSchema(FuzzInput(&rng, 200));
    (void)r;
  }
}

TEST_P(ParserFuzz, ThesaurusParserNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x5555);
  for (int i = 0; i < 200; ++i) {
    auto r = ParseThesaurus(FuzzInput(&rng, 200));
    (void)r;
  }
}

TEST_P(ParserFuzz, TokenizerHandlesArbitraryBytes) {
  SplitMix64 rng(GetParam() ^ 0x6666);
  for (int i = 0; i < 200; ++i) {
    size_t len = rng.NextBounded(64);
    std::string input;
    for (size_t j = 0; j < len; ++j) {
      input += static_cast<char>(rng.NextBounded(256));
    }
    auto tokens = TokenizeName(input);
    for (const Token& t : tokens) {
      EXPECT_FALSE(t.text.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, testing::Values(1, 2, 3, 4));

// ---------------------------------------------------- structured misuse --

TEST(RobustnessTest, DeeplyNestedXmlSchema) {
  // 200 levels of nesting: recursion depth must be handled.
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<element name=\"n" + std::to_string(i) + "\">";
    close += "</element>";
  }
  auto r = LoadXmlSchema("<schema name=\"deep\">" + open +
                         "<attribute name=\"x\" type=\"int\"/>" + close +
                         "</schema>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_elements(), 202);
}

TEST(RobustnessTest, VeryLongNames) {
  std::string long_name(10000, 'a');
  auto tokens = TokenizeName(long_name);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text.size(), 10000u);

  Schema s("S");
  Element e;
  e.name = long_name;
  e.kind = ElementKind::kAtomic;
  s.AddElement(std::move(e), s.root());
  EXPECT_TRUE(s.Validate().ok());
}

TEST(RobustnessTest, ManySiblingsMatch) {
  // Wide flat schemas: no quadratic blowup surprises, results sane.
  XmlSchemaBuilder b1("W1"), b2("W2");
  ElementId t1 = b1.AddElement(b1.root(), "T");
  ElementId t2 = b2.AddElement(b2.root(), "T");
  for (int i = 0; i < 120; ++i) {
    b1.AddAttribute(t1, "col" + std::to_string(i), DataType::kInteger);
    b2.AddAttribute(t2, "col" + std::to_string(i), DataType::kInteger);
  }
  Schema s1 = std::move(b1).Build();
  Schema s2 = std::move(b2).Build();
  Thesaurus th;
  CupidMatcher m(&th);
  auto r = m.Match(s1, s2);
  ASSERT_TRUE(r.ok());
  // Every column finds its namesake.
  EXPECT_EQ(r->leaf_mapping.size(), 120u);
  for (const MappingElement& e : r->leaf_mapping.elements) {
    EXPECT_EQ(e.source_path.substr(2), e.target_path.substr(2));
  }
}

TEST(RobustnessTest, UnicodeBytesInNamesSurvive) {
  // Non-ASCII bytes must pass through without mangling or crashes.
  XmlSchemaBuilder b1("S1"), b2("S2");
  ElementId t1 = b1.AddElement(b1.root(), "Stra\xc3\x9f""e");  // "Straße"
  b1.AddAttribute(t1, "B\xc3\xa4um", DataType::kString);
  ElementId t2 = b2.AddElement(b2.root(), "Stra\xc3\x9f""e");
  b2.AddAttribute(t2, "B\xc3\xa4um", DataType::kString);
  Schema s1 = std::move(b1).Build();
  Schema s2 = std::move(b2).Build();
  Thesaurus th;
  CupidMatcher m(&th);
  auto r = m.Match(s1, s2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->leaf_mapping.size(), 1u);
}

TEST(RobustnessTest, SelfMatchOfEveryPaperSchema) {
  // Every dataset schema matched against itself must produce a mapping
  // covering all leaves with perfect similarity on the diagonal names.
  Thesaurus th;
  CupidMatcher m(&th);
  auto check = [&](const Schema& s) {
    auto r = m.Match(s, s);
    ASSERT_TRUE(r.ok()) << s.name() << ": " << r.status().ToString();
    for (const MappingElement& e : r->leaf_mapping.elements) {
      EXPECT_GE(e.wsim, 0.5);
    }
    EXPECT_FALSE(r->leaf_mapping.empty());
  };
  check(Fig2Po());
  check(Fig2PurchaseOrder());
  check(*CidxSchema());
  check(*ExcelSchema());
  check(*RdbSchema());
  check(*StarSchema());
}

}  // namespace
}  // namespace cupid
