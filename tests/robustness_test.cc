// Robustness / failure-injection tests: the parsers, the matcher and the
// durable storage layer must return Status errors — never crash, hang or
// accept garbage silently — on adversarial input. Deterministic fuzzing
// via SplitMix64.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/cupid_matcher.h"
#include "importers/dtd_parser.h"
#include "importers/native_format.h"
#include "importers/sql_ddl_parser.h"
#include "importers/xml_parser.h"
#include "importers/xml_schema_loader.h"
#include "linguistic/tokenizer.h"
#include "service/schema_repository.h"
#include "storage/fault_injection_env.h"
#include "storage/wal.h"
#include "thesaurus/thesaurus_io.h"
#include "eval/datasets.h"
#include "schema/schema_builder.h"
#include "schema/schema_printer.h"
#include "util/random.h"

namespace cupid {
namespace {

/// Random byte strings biased toward structural characters so the parsers
/// get past their first branch often enough to be exercised deeply.
std::string FuzzInput(SplitMix64* rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "<>!?/=\"' \n\tABCdefgh0123#();,.|*+-ELEMENTATTLISTschema";
  size_t len = rng->NextBounded(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)];
  }
  return out;
}

class ParserFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, XmlParserNeverCrashes) {
  SplitMix64 rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    std::string input = FuzzInput(&rng, 200);
    auto r = ParseXml(input);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsParseError()) << r.status().ToString();
    }
  }
}

TEST_P(ParserFuzz, XmlSchemaLoaderNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x1111);
  for (int i = 0; i < 200; ++i) {
    auto r = LoadXmlSchema(FuzzInput(&rng, 200));
    (void)r;  // error or schema; must not crash
  }
}

TEST_P(ParserFuzz, SqlDdlParserNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 200; ++i) {
    auto r = ParseSqlDdl("F", FuzzInput(&rng, 200));
    (void)r;
  }
}

TEST_P(ParserFuzz, DtdParserNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x3333);
  for (int i = 0; i < 200; ++i) {
    auto r = ParseDtd("F", FuzzInput(&rng, 200));
    (void)r;
  }
}

TEST_P(ParserFuzz, NativeFormatNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x4444);
  for (int i = 0; i < 200; ++i) {
    auto r = ParseNativeSchema(FuzzInput(&rng, 200));
    (void)r;
  }
}

TEST_P(ParserFuzz, ThesaurusParserNeverCrashes) {
  SplitMix64 rng(GetParam() ^ 0x5555);
  for (int i = 0; i < 200; ++i) {
    auto r = ParseThesaurus(FuzzInput(&rng, 200));
    (void)r;
  }
}

TEST_P(ParserFuzz, TokenizerHandlesArbitraryBytes) {
  SplitMix64 rng(GetParam() ^ 0x6666);
  for (int i = 0; i < 200; ++i) {
    size_t len = rng.NextBounded(64);
    std::string input;
    for (size_t j = 0; j < len; ++j) {
      input += static_cast<char>(rng.NextBounded(256));
    }
    auto tokens = TokenizeName(input);
    for (const Token& t : tokens) {
      EXPECT_FALSE(t.text.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, testing::Values(1, 2, 3, 4));

// ------------------------------------------------- storage corruption --
//
// The durable repository's on-disk state (WAL segments, snapshot files,
// the CURRENT pointer) is corrupted in the ways real disks corrupt it —
// truncation, bit flips, duplicated records — and Recover must either
// return a Status error or come back with a valid prefix of the history.
// It must never crash and never serve a schema that differs from the
// version it claims to be.

/// Builds a durable repository in `env`: two schemas plus a chain of six
/// renames on "po", with snapshot compaction forced mid-stream so the
/// final layout holds a snapshot, a CURRENT pointer, AND a live WAL
/// segment with records past the snapshot. Returns PrintSchema ground
/// truth for every version of "po".
std::vector<std::string> SeedDurableRepository(FaultInjectionEnv* env) {
  DurabilityOptions options;
  options.env = env;
  options.snapshot_every_records = 3;
  auto repo = SchemaRepository::Recover("wal", options);
  EXPECT_TRUE(repo.ok()) << repo.status().ToString();
  EXPECT_TRUE(repo->Register("po", Fig2Po()).ok());
  EXPECT_TRUE(repo->Register("order", Fig2PurchaseOrder()).ok());
  static constexpr const char* kLeafNames[] = {
      "Qty", "Quantity", "Count", "Amount", "Total", "Sum", "Units"};
  for (int i = 0; i + 1 < 7; ++i) {
    EXPECT_TRUE(
        repo->ApplyEdit("po", SchemaEdit::RenameElement(
                                  EditSide::kSource,
                                  std::string("PO.POLines.Item.") +
                                      kLeafNames[i],
                                  kLeafNames[i + 1]))
            .ok());
  }
  std::vector<std::string> prints;
  for (int v = 1; v <= repo->LatestVersion("po"); ++v) {
    prints.push_back(PrintSchema(**repo->Get("po", v)));
  }
  EXPECT_EQ(prints.size(), 7u);
  return prints;
}

/// Every file currently stored under `dir` (recursing into snapshot
/// directories), in deterministic order.
std::vector<std::string> ListFilesRecursive(FaultInjectionEnv* env,
                                            const std::string& dir) {
  std::vector<std::string> files;
  auto entries = env->ListDir(dir);
  if (!entries.ok()) return files;
  for (const std::string& entry : *entries) {
    std::string path = dir + "/" + entry;
    if (env->ListDir(path).ok()) {
      std::vector<std::string> sub = ListFilesRecursive(env, path);
      files.insert(files.end(), sub.begin(), sub.end());
    } else {
      files.push_back(path);
    }
  }
  return files;
}

/// Byte-for-byte image of the storage directory, used to reset it between
/// corruption rounds (each Recover rotates to a fresh WAL segment, which
/// would otherwise leak into the next round as a bogus extra segment).
using DirImage = std::map<std::string, std::string>;

DirImage CaptureDir(FaultInjectionEnv* env) {
  DirImage image;
  for (const std::string& f : ListFilesRecursive(env, "wal")) {
    image[f] = env->FileContentForTest(f);
  }
  return image;
}

void RestoreDir(FaultInjectionEnv* env, const DirImage& image) {
  for (const std::string& f : ListFilesRecursive(env, "wal")) {
    if (image.count(f) == 0) (void)env->RemoveFile(f);
  }
  for (const auto& [path, content] : image) {
    env->SetFileContentForTest(path, content);
  }
}

/// A recovered repository may have lost a torn tail but must never serve
/// fabricated history: whatever versions it has must match the ground
/// truth print-for-print.
void ExpectPrefixOfGroundTruth(const SchemaRepository& repo,
                               const std::vector<std::string>& po_prints) {
  int latest = repo.LatestVersion("po");
  ASSERT_LE(latest, static_cast<int>(po_prints.size()));
  for (int v = 1; v <= latest; ++v) {
    auto schema = repo.Get("po", v);
    ASSERT_TRUE(schema.ok()) << "po@" << v;
    EXPECT_EQ(PrintSchema(**schema), po_prints[v - 1]) << "po@" << v;
  }
  if (latest >= 2) {
    // "order" was registered before the second "po" version existed.
    auto order = repo.Get("order", 1);
    ASSERT_TRUE(order.ok());
    EXPECT_EQ(PrintSchema(**order), PrintSchema(Fig2PurchaseOrder()));
  }
}

class StorageFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(StorageFuzz, WalReaderNeverCrashesOnGarbage) {
  SplitMix64 rng(GetParam() ^ 0x7777);
  FaultInjectionEnv env;
  for (int i = 0; i < 200; ++i) {
    size_t len = rng.NextBounded(512);
    std::string bytes;
    for (size_t j = 0; j < len; ++j) {
      bytes += static_cast<char>(rng.NextBounded(256));
    }
    env.SetFileContentForTest("garbage.log", bytes);
    auto r = ReadWal(&env, "garbage.log", /*expected_first_seq=*/0);
    ASSERT_TRUE(r.ok());  // prefix semantics: garbage is a torn tail
    // Any records that do get accepted must carry contiguous sequences.
    for (size_t j = 1; j < r->records.size(); ++j) {
      EXPECT_EQ(r->records[j].seq, r->records[j - 1].seq + 1);
    }
  }
}

TEST_P(StorageFuzz, TruncatedWalRecoversValidPrefix) {
  SplitMix64 rng(GetParam() ^ 0x8888);
  FaultInjectionEnv env;
  std::vector<std::string> po_prints = SeedDurableRepository(&env);
  DirImage image = CaptureDir(&env);
  std::string wal_file;
  for (const auto& [f, content] : image) {
    if (f.find("/wal-") != std::string::npos) wal_file = f;
  }
  ASSERT_FALSE(wal_file.empty());
  const std::string pristine = image.at(wal_file);
  ASSERT_FALSE(pristine.empty());

  DurabilityOptions options;
  options.env = &env;
  for (int i = 0; i < 64; ++i) {
    size_t keep = rng.NextBounded(pristine.size());
    env.SetFileContentForTest(wal_file, pristine.substr(0, keep));
    auto repo = SchemaRepository::Recover("wal", options);
    ASSERT_TRUE(repo.ok()) << "keep=" << keep << ": "
                           << repo.status().ToString();
    ExpectPrefixOfGroundTruth(*repo, po_prints);
    RestoreDir(&env, image);
  }
}

TEST_P(StorageFuzz, BitFlippedStorageFilesNeverCrashRecovery) {
  SplitMix64 rng(GetParam() ^ 0x9999);
  FaultInjectionEnv env;
  std::vector<std::string> po_prints = SeedDurableRepository(&env);
  DirImage image = CaptureDir(&env);
  std::vector<std::string> files;
  for (const auto& [f, content] : image) {
    if (!content.empty()) files.push_back(f);
  }
  ASSERT_FALSE(files.empty());

  DurabilityOptions options;
  options.env = &env;
  for (int i = 0; i < 64; ++i) {
    const std::string& victim = files[rng.NextBounded(files.size())];
    std::string corrupt = image.at(victim);
    size_t pos = rng.NextBounded(corrupt.size());
    corrupt[pos] = static_cast<char>(corrupt[pos] ^
                                     (1u << rng.NextBounded(8)));
    env.SetFileContentForTest(victim, corrupt);
    auto repo = SchemaRepository::Recover("wal", options);
    // A flipped snapshot byte is allowed to fail recovery outright
    // (refusing to discard data beats silently dropping it); a flipped
    // WAL byte truncates to the valid prefix. Either way: no crash, and
    // anything served must be genuine.
    if (repo.ok()) ExpectPrefixOfGroundTruth(*repo, po_prints);
    RestoreDir(&env, image);
  }
}

TEST_P(StorageFuzz, DuplicatedWalRecordsNeverResurrectHistory) {
  SplitMix64 rng(GetParam() ^ 0xAAAA);
  FaultInjectionEnv env;
  std::vector<std::string> po_prints = SeedDurableRepository(&env);
  DirImage image = CaptureDir(&env);
  std::string wal_file;
  for (const auto& [f, content] : image) {
    if (f.find("/wal-") != std::string::npos) wal_file = f;
  }
  ASSERT_FALSE(wal_file.empty());
  auto clean = ReadWal(&env, wal_file, /*expected_first_seq=*/0);
  ASSERT_TRUE(clean.ok());
  ASSERT_FALSE(clean->records.empty());

  DurabilityOptions options;
  options.env = &env;
  for (int i = 0; i < 32; ++i) {
    // Re-assemble the segment with one record duplicated at a random
    // position — the classic replayed-write corruption.
    size_t dup = rng.NextBounded(clean->records.size());
    size_t at = rng.NextBounded(clean->records.size() + 1);
    std::string stitched;
    for (size_t j = 0; j < clean->records.size(); ++j) {
      if (j == at) {
        stitched += EncodeWalFrame(clean->records[dup].seq,
                                   clean->records[dup].payload);
      }
      stitched += EncodeWalFrame(clean->records[j].seq,
                                 clean->records[j].payload);
    }
    if (at == clean->records.size()) {
      stitched += EncodeWalFrame(clean->records[dup].seq,
                                 clean->records[dup].payload);
    }
    env.SetFileContentForTest(wal_file, stitched);
    auto repo = SchemaRepository::Recover("wal", options);
    ASSERT_TRUE(repo.ok()) << repo.status().ToString();
    // The duplicate breaks sequence contiguity: everything from the
    // insertion point on is dropped, and no mutation is applied twice.
    ExpectPrefixOfGroundTruth(*repo, po_prints);
    RestoreDir(&env, image);
  }
}

TEST_P(StorageFuzz, TruncatedSnapshotFilesNeverCrashRecovery) {
  SplitMix64 rng(GetParam() ^ 0xBBBB);
  FaultInjectionEnv env;
  std::vector<std::string> po_prints = SeedDurableRepository(&env);
  DirImage image = CaptureDir(&env);
  std::vector<std::string> snapshot_files;
  for (const auto& [f, content] : image) {
    if (f.find("/snapshot-") != std::string::npos && !content.empty()) {
      snapshot_files.push_back(f);
    }
  }
  ASSERT_FALSE(snapshot_files.empty()) << "seed produced no snapshot";

  DurabilityOptions options;
  options.env = &env;
  for (int i = 0; i < 32; ++i) {
    const std::string& victim =
        snapshot_files[rng.NextBounded(snapshot_files.size())];
    const std::string& pristine = image.at(victim);
    size_t keep = rng.NextBounded(pristine.size());
    env.SetFileContentForTest(victim, pristine.substr(0, keep));
    auto repo = SchemaRepository::Recover("wal", options);
    if (repo.ok()) ExpectPrefixOfGroundTruth(*repo, po_prints);
    RestoreDir(&env, image);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFuzz, testing::Values(1, 2, 3, 4));

// ---------------------------------------------------- structured misuse --

TEST(RobustnessTest, DeeplyNestedXmlSchema) {
  // 200 levels of nesting: recursion depth must be handled.
  std::string open, close;
  for (int i = 0; i < 200; ++i) {
    open += "<element name=\"n" + std::to_string(i) + "\">";
    close += "</element>";
  }
  auto r = LoadXmlSchema("<schema name=\"deep\">" + open +
                         "<attribute name=\"x\" type=\"int\"/>" + close +
                         "</schema>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_elements(), 202);
}

TEST(RobustnessTest, VeryLongNames) {
  std::string long_name(10000, 'a');
  auto tokens = TokenizeName(long_name);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].text.size(), 10000u);

  Schema s("S");
  Element e;
  e.name = long_name;
  e.kind = ElementKind::kAtomic;
  s.AddElement(std::move(e), s.root());
  EXPECT_TRUE(s.Validate().ok());
}

TEST(RobustnessTest, ManySiblingsMatch) {
  // Wide flat schemas: no quadratic blowup surprises, results sane.
  XmlSchemaBuilder b1("W1"), b2("W2");
  ElementId t1 = b1.AddElement(b1.root(), "T");
  ElementId t2 = b2.AddElement(b2.root(), "T");
  for (int i = 0; i < 120; ++i) {
    b1.AddAttribute(t1, "col" + std::to_string(i), DataType::kInteger);
    b2.AddAttribute(t2, "col" + std::to_string(i), DataType::kInteger);
  }
  Schema s1 = std::move(b1).Build();
  Schema s2 = std::move(b2).Build();
  Thesaurus th;
  CupidMatcher m(&th);
  auto r = m.Match(s1, s2);
  ASSERT_TRUE(r.ok());
  // Every column finds its namesake.
  EXPECT_EQ(r->leaf_mapping.size(), 120u);
  for (const MappingElement& e : r->leaf_mapping.elements) {
    EXPECT_EQ(e.source_path.substr(2), e.target_path.substr(2));
  }
}

TEST(RobustnessTest, UnicodeBytesInNamesSurvive) {
  // Non-ASCII bytes must pass through without mangling or crashes.
  XmlSchemaBuilder b1("S1"), b2("S2");
  ElementId t1 = b1.AddElement(b1.root(), "Stra\xc3\x9f""e");  // "Straße"
  b1.AddAttribute(t1, "B\xc3\xa4um", DataType::kString);
  ElementId t2 = b2.AddElement(b2.root(), "Stra\xc3\x9f""e");
  b2.AddAttribute(t2, "B\xc3\xa4um", DataType::kString);
  Schema s1 = std::move(b1).Build();
  Schema s2 = std::move(b2).Build();
  Thesaurus th;
  CupidMatcher m(&th);
  auto r = m.Match(s1, s2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->leaf_mapping.size(), 1u);
}

TEST(RobustnessTest, SelfMatchOfEveryPaperSchema) {
  // Every dataset schema matched against itself must produce a mapping
  // covering all leaves with perfect similarity on the diagonal names.
  Thesaurus th;
  CupidMatcher m(&th);
  auto check = [&](const Schema& s) {
    auto r = m.Match(s, s);
    ASSERT_TRUE(r.ok()) << s.name() << ": " << r.status().ToString();
    for (const MappingElement& e : r->leaf_mapping.elements) {
      EXPECT_GE(e.wsim, 0.5);
    }
    EXPECT_FALSE(r->leaf_mapping.empty());
  };
  check(Fig2Po());
  check(Fig2PurchaseOrder());
  check(*CidxSchema());
  check(*ExcelSchema());
  check(*RdbSchema());
  check(*StarSchema());
}

}  // namespace
}  // namespace cupid
