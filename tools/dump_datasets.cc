// dump_datasets — writes the shipped data/ files from the built-in datasets.
//
//   dump_datasets [<output-dir>]        (default: data)
//
// The generated files are committed to the repository and verified by
// tests/data_files_test.cc: loading each file through the public importers
// must reproduce the corresponding built-in dataset. Sources:
//
//   cidx.xml, excel.xml        raw XSD-lite texts of CidxSchema/ExcelSchema
//   rdb.sql, star.sql          raw DDL texts of RdbSchema/StarSchema
//   po.cupid, purchase_order.cupid
//                              SerializeNativeSchema over the Figure 2 pair
//   cidx_excel.thesaurus       SaveThesaurus over CidxExcelThesaurus()
//   order.dtd                  small DTD exercising ID/IDREF -> key/RefInt
//
// Exit code 0 on success, 1 on any error (message on stderr).

#include <filesystem>
#include <fstream>
#include <string>

#include "eval/datasets.h"
#include "importers/native_format.h"
#include "thesaurus/default_thesaurus.h"
#include "thesaurus/thesaurus_io.h"

namespace {

// Section 8.3 names ID/IDREF pairs in DTDs as referential constraints; this
// document yields one key (header_id) and one RefInt (orderline_parent_ref).
constexpr const char kOrderDtd[] =
    "<!-- Purchase order DTD: exercises the ID/IDREF -> key/RefInt path\n"
    "     of the DTD importer (see importers/dtd_parser.h). -->\n"
    "<!ELEMENT order (header, orderline+)>\n"
    "<!ELEMENT header (#PCDATA)>\n"
    "<!ATTLIST header id ID #REQUIRED>\n"
    "<!ELEMENT orderline (qty, uom?)>\n"
    "<!ATTLIST orderline parent IDREF #IMPLIED>\n";

bool WriteFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << text;
  out.close();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cupid;
  std::filesystem::path dir = argc > 1 ? argv[1] : "data";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return 1;
  }

  bool ok = true;
  ok &= WriteFile(dir / "cidx.xml", CidxSchemaXmlText());
  ok &= WriteFile(dir / "excel.xml", ExcelSchemaXmlText());
  ok &= WriteFile(dir / "rdb.sql", RdbSchemaSqlText());
  ok &= WriteFile(dir / "star.sql", StarSchemaSqlText());
  ok &= WriteFile(dir / "po.cupid", SerializeNativeSchema(Fig2Po()));
  ok &= WriteFile(dir / "purchase_order.cupid",
                  SerializeNativeSchema(Fig2PurchaseOrder()));
  ok &= WriteFile(dir / "order.dtd", kOrderDtd);

  Status saved = SaveThesaurus(CidxExcelThesaurus(),
                               (dir / "cidx_excel.thesaurus").string());
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    ok = false;
  } else {
    std::printf("wrote %s\n", (dir / "cidx_excel.thesaurus").c_str());
  }
  return ok ? 0 : 1;
}
