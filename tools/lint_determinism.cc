// lint_determinism — pattern-level determinism lint for the cupid tree.
//
// The matcher's contract is bit-identical results across runs, thread
// counts and machines (docs/PERFORMANCE.md); this tool flags the source
// patterns that historically break that contract. It is deliberately
// AST-lite: a comment/string-aware line scanner with a small amount of
// cross-line and cross-file state, not a compiler plugin. Rules:
//
//   unordered-iteration  range-for over a std::unordered_map/set in core
//                        match code (src/core, linguistic, structural,
//                        tree, mapping, incremental, perf) — hash order
//                        feeds float accumulation or output ordering.
//   pointer-key          map/set keyed by a pointer type, anywhere —
//                        pointer order changes per run (ASLR).
//   raw-random           rand()/srand()/std::random_device outside
//                        eval/synthetic code.
//   wall-clock           system_clock/time()/clock()/gettimeofday/
//                        localtime in core match code (steady_clock for
//                        trace timings is fine — it never feeds results).
//   rename-no-fsync      StorageEnv::RenameFile with no SyncDir within the
//                        next 10 lines (src/storage, src/service), and raw
//                        std::rename/fs::rename outside storage_env.cc.
//
// Suppression: `// NOLINT(determinism:<rule>)` on the offending line, or
// `// NOLINTNEXTLINE(determinism:<rule>)` on the line before; bare
// `NOLINT(determinism)` suppresses every rule. Always pair a suppression
// with a comment saying why the site is order-independent.
//
// Usage:
//   lint_determinism <path>...          scan files (directories recurse);
//                                       exit 1 when anything is flagged
//   lint_determinism --selftest <dir>   run the fixture suite: every file
//                                       must produce exactly the findings
//                                       its EXPECT-FINDING comments declare
//
// Fixtures (and only fixtures) carry `// LINT-PATH: src/...` on the first
// line: the file is scoped as if it lived at that path.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  int line = 0;
  std::string rule;
  std::string message;
};

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Blanks comments and string/char literals (preserving line lengths) so
/// rule patterns never fire on prose or literals. Block comments carry
/// state across lines; raw strings are not handled (none in this tree).
std::vector<std::string> StripCode(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block = false;
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    for (size_t i = 0; i < line.size(); ++i) {
      if (in_block) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block = false;
          ++i;
        }
        continue;
      }
      char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            ++i;
          } else if (line[i] == quote) {
            break;
          }
          ++i;
        }
        continue;
      }
      code[i] = c;
    }
    out.push_back(std::move(code));
  }
  return out;
}

/// The path rules scope on: the real path, unless the first line carries a
/// LINT-PATH override (fixture files).
std::string VirtualPath(const std::string& path,
                        const std::vector<std::string>& raw) {
  static const std::regex kRe(R"(^//\s*LINT-PATH:\s*(\S+))");
  std::smatch m;
  if (!raw.empty() && std::regex_search(raw[0], m, kRe)) return m[1];
  return path;
}

bool HasDir(const std::string& path, const std::string& dir) {
  return path.find("src/" + dir + "/") != std::string::npos;
}

bool IsCorePath(const std::string& path) {
  for (const char* d :
       {"core", "linguistic", "structural", "tree", "mapping", "incremental",
        "perf"}) {
    if (HasDir(path, d)) return true;
  }
  return false;
}

bool IsRandomExemptPath(const std::string& path) {
  return path.find("eval") != std::string::npos ||
         path.find("synthetic") != std::string::npos;
}

bool IsStoragePath(const std::string& path) {
  return HasDir(path, "storage") || HasDir(path, "service");
}

/// True when `raw_line` (or `prev_raw_line` via NOLINTNEXTLINE) suppresses
/// `rule`.
bool Suppressed(const std::string& rule, const std::string& raw_line,
                const std::string* prev_raw_line) {
  auto matches = [&](const std::string& text, const char* marker) {
    size_t pos = text.find(marker);
    while (pos != std::string::npos) {
      size_t open = text.find('(', pos);
      if (open == std::string::npos) return false;
      size_t close = text.find(')', open);
      if (close == std::string::npos) return false;
      std::string body = text.substr(open + 1, close - open - 1);
      if (body == "determinism" || body == "determinism:" + rule) return true;
      pos = text.find(marker, close);
    }
    return false;
  };
  // NOLINTNEXTLINE on the same line suppresses the *next* line only; make
  // sure plain-NOLINT matching does not also accept it.
  if (raw_line.find("NOLINTNEXTLINE") == std::string::npos &&
      matches(raw_line, "NOLINT")) {
    return true;
  }
  return prev_raw_line != nullptr && matches(*prev_raw_line, "NOLINTNEXTLINE");
}

/// First pass: names declared (anywhere in the scanned set) with an
/// unordered container type, including through `using X = unordered_...`
/// aliases. Declarations may span lines, so scanning joins up to 8 lines
/// from the `unordered_` token to the terminating `;`/`=`/`{`. Reference
/// and pointer function parameters (`...>& name,`) are collected too —
/// the plain-declaration form is tried first so a trailing `if (a > b)`
/// in the joined window cannot shadow a real declaration.
void CollectUnorderedNames(const std::vector<std::string>& code,
                           std::set<std::string>* names) {
  static const std::regex kAlias(
      R"(using\s+(\w+)\s*=\s*(?:std::)?unordered_(?:map|set)\s*<)");
  static const std::regex kDecl(
      R"(>\s*([A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*[;={])");
  static const std::regex kParam(R"(>\s*[&*]\s*([A-Za-z_]\w*)\s*[,)])");
  std::set<std::string> alias_types;
  for (size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(code[i], m, kAlias)) {
      alias_types.insert(m[1]);
      continue;
    }
    size_t pos = code[i].find("unordered_map<");
    if (pos == std::string::npos) pos = code[i].find("unordered_set<");
    if (pos == std::string::npos) continue;
    std::string joined = code[i].substr(pos);
    for (size_t j = i + 1; j < code.size() && j < i + 8; ++j) {
      if (joined.find(';') != std::string::npos) break;
      joined += " " + code[j];
    }
    if (std::regex_search(joined, m, kDecl)) {
      std::string list = m[1];
      static const std::regex kName(R"([A-Za-z_]\w*)");
      for (std::sregex_iterator it(list.begin(), list.end(), kName), end;
           it != end; ++it) {
        names->insert(it->str());
      }
    } else if (std::regex_search(joined, m, kParam)) {
      names->insert(m[1]);
    }
  }
  // Variables declared with an alias type: `VersionMap foo;` etc.
  for (const std::string& alias : alias_types) {
    const std::regex alias_decl("(?:^|[^\\w:])" + alias +
                                R"(\s+([A-Za-z_]\w*)\s*[;={(])");
    for (const std::string& line : code) {
      std::smatch m;
      if (std::regex_search(line, m, alias_decl)) names->insert(m[1]);
    }
  }
}

void ScanFile(const std::string& path, const std::vector<std::string>& raw,
              const std::set<std::string>& unordered_names,
              std::vector<Finding>* findings) {
  const std::vector<std::string> code = StripCode(raw);
  const std::string vpath = VirtualPath(path, raw);
  const bool core = IsCorePath(vpath);
  const bool in_src = vpath.find("src/") != std::string::npos;
  const std::string basename = fs::path(vpath).filename().string();

  auto add = [&](size_t i, const std::string& rule,
                 const std::string& message) {
    const std::string* prev = i > 0 ? &raw[i - 1] : nullptr;
    if (Suppressed(rule, raw[i], prev)) return;
    findings->push_back({static_cast<int>(i + 1), rule, message});
  };

  static const std::regex kRangeFor(R"(for\s*\([^;)]*:\s*([^)]+)\))");
  static const std::regex kLastIdent(R"(([A-Za-z_]\w*)\s*$)");
  static const std::regex kPointerKey(
      R"(\b(?:std::)?(?:unordered_)?(?:map|set)\s*<\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*\s*[,>])");
  static const std::regex kRawRandom(
      R"(\bstd::random_device\b|\brandom_device\b|\bsrand\s*\(|\brand\s*\()");
  static const std::regex kWallClock(
      R"(\bsystem_clock\b|\bgettimeofday\s*\(|\blocaltime\b|\bgmtime\b|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)|\bclock\s*\(\s*\))");
  static const std::regex kRenameFile(R"(\bRenameFile\s*\()");
  static const std::regex kRawRename(R"(\b(?:std::|fs::)rename\s*\()");

  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    std::smatch m;

    if (core && std::regex_search(line, m, kRangeFor)) {
      std::string expr = m[1];
      std::smatch id;
      if (std::regex_search(expr, id, kLastIdent) &&
          unordered_names.count(id[1]) != 0) {
        add(i, "unordered-iteration",
            "range-for over unordered container '" + id[1].str() +
                "' in core match code; hash order feeds float accumulation "
                "or output ordering — iterate a sorted copy or restructure");
      }
    }

    if (in_src && std::regex_search(line, kPointerKey)) {
      add(i, "pointer-key",
          "container keyed by a pointer; pointer order changes per run — "
          "key by a stable id instead");
    }

    if (in_src && !IsRandomExemptPath(vpath) &&
        std::regex_search(line, kRawRandom)) {
      add(i, "raw-random",
          "non-deterministic randomness outside eval/synthetic code; use "
          "util/random.h (seeded SplitMix64)");
    }

    if (core && std::regex_search(line, kWallClock)) {
      add(i, "wall-clock",
          "wall-clock time in core match code; results must not depend on "
          "when they run (steady_clock trace timing is exempt)");
    }

    if (IsStoragePath(vpath) && std::regex_search(line, kRenameFile)) {
      bool synced = false;
      for (size_t j = i; j < code.size() && j <= i + 10; ++j) {
        if (code[j].find("SyncDir") != std::string::npos) {
          synced = true;
          break;
        }
      }
      if (!synced) {
        add(i, "rename-no-fsync",
            "RenameFile with no SyncDir within 10 lines; the rename is not "
            "durable until the parent directory is fsync'd");
      }
    }

    if (in_src && basename != "storage_env.cc" &&
        std::regex_search(line, kRawRename)) {
      add(i, "rename-no-fsync",
          "raw rename() outside storage_env.cc; go through "
          "StorageEnv::RenameFile so fault injection and fsync policy "
          "apply");
    }
  }
}

std::vector<std::string> CollectFiles(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  auto want = [](const fs::path& p) {
    std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
  };
  for (const std::string& p : paths) {
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && want(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "lint_determinism: no such path: %s\n", p.c_str());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int RunLint(const std::vector<std::string>& paths) {
  std::vector<std::string> files = CollectFiles(paths);
  std::set<std::string> unordered_names;
  std::vector<std::pair<std::string, std::vector<std::string>>> contents;
  for (const std::string& f : files) {
    contents.emplace_back(f, ReadLines(f));
    CollectUnorderedNames(StripCode(contents.back().second),
                          &unordered_names);
  }
  int total = 0;
  for (const auto& [file, raw] : contents) {
    std::vector<Finding> findings;
    ScanFile(file, raw, unordered_names, &findings);
    for (const Finding& f : findings) {
      std::printf("%s:%d: [%s] %s\n", file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      ++total;
    }
  }
  if (total != 0) {
    std::printf("lint_determinism: %d finding(s) in %zu file(s)\n", total,
                files.size());
    return 1;
  }
  std::printf("lint_determinism: clean (%zu files)\n", files.size());
  return 0;
}

/// Selftest: each fixture is scanned in isolation and must yield exactly
/// the (line, rule) pairs its EXPECT-FINDING comments declare.
int RunSelftest(const std::string& dir) {
  std::vector<std::string> files = CollectFiles({dir});
  if (files.empty()) {
    std::fprintf(stderr, "selftest: no fixtures under %s\n", dir.c_str());
    return 1;
  }
  static const std::regex kExpect(R"(EXPECT-FINDING:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*))");
  static const std::regex kRule(R"([a-z-]+)");
  int failures = 0;
  for (const std::string& file : files) {
    std::vector<std::string> raw = ReadLines(file);
    std::set<std::string> names;
    CollectUnorderedNames(StripCode(raw), &names);
    std::vector<Finding> findings;
    ScanFile(file, raw, names, &findings);

    std::set<std::pair<int, std::string>> expected, actual;
    for (size_t i = 0; i < raw.size(); ++i) {
      std::smatch m;
      if (std::regex_search(raw[i], m, kExpect)) {
        std::string list = m[1];
        for (std::sregex_iterator it(list.begin(), list.end(), kRule), end;
             it != end; ++it) {
          expected.insert({static_cast<int>(i + 1), it->str()});
        }
      }
    }
    for (const Finding& f : findings) actual.insert({f.line, f.rule});

    if (expected == actual) {
      std::printf("PASS %s (%zu finding(s))\n", file.c_str(), actual.size());
      continue;
    }
    ++failures;
    std::printf("FAIL %s\n", file.c_str());
    for (const auto& [line, rule] : expected) {
      if (actual.count({line, rule}) == 0) {
        std::printf("  missing: line %d [%s]\n", line, rule.c_str());
      }
    }
    for (const auto& [line, rule] : actual) {
      if (expected.count({line, rule}) == 0) {
        std::printf("  unexpected: line %d [%s]\n", line, rule.c_str());
      }
    }
  }
  std::printf("selftest: %zu fixture(s), %d failure(s)\n", files.size(),
              failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "--selftest") {
    if (args.size() != 2) {
      std::fprintf(stderr, "usage: lint_determinism --selftest <dir>\n");
      return 2;
    }
    return RunSelftest(args[1]);
  }
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: lint_determinism <path>... | --selftest <dir>\n");
    return 2;
  }
  return RunLint(args);
}
