// Synthetic schema-pair generator for scalability and robustness
// experiments (Section 10 lists scalability analysis as open work; E7/E8 in
// DESIGN.md use this generator).
//
// A source schema is generated from a business vocabulary; the target is a
// mutated copy (renames via abbreviations/affixes, data-type drift,
// flattened containers) with the ground-truth leaf correspondence tracked
// through the mutations. Fully deterministic given the seed.

#ifndef CUPID_EVAL_SYNTHETIC_H_
#define CUPID_EVAL_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/gold_mapping.h"
#include "schema/schema.h"

namespace cupid {

struct SyntheticOptions {
  /// Approximate number of elements in the source schema.
  int num_elements = 100;
  /// Maximum children per container.
  int max_children = 6;
  /// Maximum nesting depth.
  int max_depth = 5;
  /// Probability a generated element is optional.
  double optional_probability = 0.2;
  /// Probability a target-side leaf/container is renamed (abbreviated or
  /// affixed).
  double rename_probability = 0.3;
  /// Probability a target-side leaf changes to a compatible data type.
  double type_change_probability = 0.1;
  /// Probability a target-side container is flattened into its parent
  /// (tests the leaf-bias of TreeMatch).
  double flatten_probability = 0.15;
  /// Skew of the vocabulary-word distribution: 0 keeps the historical
  /// uniform draw (bit-compatible with earlier seeds); > 0 draws words
  /// Zipf-like with this exponent, the realistic regime for corpus
  /// experiments (a few names dominate real repositories, which is exactly
  /// what makes candidate pruning by token overlap hard).
  double name_zipf_exponent = 0.0;
  uint64_t seed = 42;
};

struct SyntheticPair {
  Schema source;
  Schema target;
  GoldMapping gold;  ///< leaf-level, by context paths
};

/// \brief Generates only the source schema (for single-schema benchmarks).
Schema GenerateSyntheticSchema(const SyntheticOptions& options);

/// \brief Generates a (source, mutated target, gold) triple.
SyntheticPair GenerateSyntheticPair(const SyntheticOptions& options);

/// Knobs of the corpus generator (one probe schema vs. hundreds of stored
/// targets — the one-vs-N search workload).
struct SyntheticCorpusOptions {
  /// Stored target schemas.
  int num_targets = 200;
  /// Approximate elements in the probe (source) schema.
  int source_elements = 100;
  /// Element-count range of unrelated targets (drawn per target).
  int min_target_elements = 40;
  int max_target_elements = 160;
  /// Fraction of targets derived from the probe by mutation (the rest are
  /// independently generated). Related targets are what search must find.
  double related_fraction = 0.3;
  /// Mutation strength range across the related targets: the first related
  /// target mutates at min_mutation (the planted best match), the last at
  /// max_mutation. Strength scales the rename/type-change/flatten
  /// probabilities.
  double min_mutation = 0.05;
  double max_mutation = 0.6;
  /// Vocabulary skew of the UNRELATED targets (see
  /// SyntheticOptions::name_zipf_exponent); realistic corpora share names
  /// heavily across schemas.
  double name_zipf_exponent = 1.1;
  uint64_t seed = 42;
};

/// One generated corpus. Deterministic given the options.
struct SyntheticCorpus {
  Schema source = Schema("Probe");
  std::vector<Schema> targets;
  /// Repository-style names, "t000".."tNNN", aligned with `targets`.
  std::vector<std::string> names;
  /// Index of the least-mutated relative of `source` (the planted ground
  /// truth a searcher should rank first); -1 when num_targets == 0 or
  /// related_fraction rounds to zero targets.
  int closest_target = -1;
};

/// \brief Generates a probe schema plus a corpus of stored targets: a
/// related_fraction of the targets are mutated copies of the probe at
/// increasing mutation strength, the rest are independent schemas drawn
/// from the same vocabulary with Zipf-skewed name frequencies.
SyntheticCorpus GenerateSyntheticCorpus(const SyntheticCorpusOptions& options);

}  // namespace cupid

#endif  // CUPID_EVAL_SYNTHETIC_H_
