// Synthetic schema-pair generator for scalability and robustness
// experiments (Section 10 lists scalability analysis as open work; E7/E8 in
// DESIGN.md use this generator).
//
// A source schema is generated from a business vocabulary; the target is a
// mutated copy (renames via abbreviations/affixes, data-type drift,
// flattened containers) with the ground-truth leaf correspondence tracked
// through the mutations. Fully deterministic given the seed.

#ifndef CUPID_EVAL_SYNTHETIC_H_
#define CUPID_EVAL_SYNTHETIC_H_

#include <cstdint>

#include "eval/gold_mapping.h"
#include "schema/schema.h"

namespace cupid {

struct SyntheticOptions {
  /// Approximate number of elements in the source schema.
  int num_elements = 100;
  /// Maximum children per container.
  int max_children = 6;
  /// Maximum nesting depth.
  int max_depth = 5;
  /// Probability a generated element is optional.
  double optional_probability = 0.2;
  /// Probability a target-side leaf/container is renamed (abbreviated or
  /// affixed).
  double rename_probability = 0.3;
  /// Probability a target-side leaf changes to a compatible data type.
  double type_change_probability = 0.1;
  /// Probability a target-side container is flattened into its parent
  /// (tests the leaf-bias of TreeMatch).
  double flatten_probability = 0.15;
  uint64_t seed = 42;
};

struct SyntheticPair {
  Schema source;
  Schema target;
  GoldMapping gold;  ///< leaf-level, by context paths
};

/// \brief Generates only the source schema (for single-schema benchmarks).
Schema GenerateSyntheticSchema(const SyntheticOptions& options);

/// \brief Generates a (source, mutated target, gold) triple.
SyntheticPair GenerateSyntheticPair(const SyntheticOptions& options);

}  // namespace cupid

#endif  // CUPID_EVAL_SYNTHETIC_H_
