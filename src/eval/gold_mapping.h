// Gold (reference) mappings for evaluating match output.

#ifndef CUPID_EVAL_GOLD_MAPPING_H_
#define CUPID_EVAL_GOLD_MAPPING_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mapping/mapping.h"

namespace cupid {

/// \brief The correct correspondences of a schema pair.
///
/// Keyed by target path; each target may accept several alternative source
/// paths (schemas are often denormalized, so e.g. Star.SALES.Quantity is
/// correctly derived from either RDB.Orders.Quantity or
/// RDB.OrderDetails.Quantity). A produced pair is correct when its source is
/// among the target's alternatives; a target counts as missed when no
/// produced pair covers it.
class GoldMapping {
 public:
  GoldMapping() = default;

  /// Registers `source_path` as a correct source for `target_path`. Calling
  /// again with the same target adds an alternative.
  void Add(std::string source_path, std::string target_path);

  /// True if (source, target) is a correct pair.
  bool Contains(const std::string& source_path,
                const std::string& target_path) const;

  /// True if `target_path` has any gold entry.
  bool HasTarget(const std::string& target_path) const;

  /// Number of distinct gold targets.
  size_t size() const { return alternatives_.size(); }

  /// target -> accepted sources.
  const std::map<std::string, std::set<std::string>>& alternatives() const {
    return alternatives_;
  }

 private:
  std::map<std::string, std::set<std::string>> alternatives_;
};

}  // namespace cupid

#endif  // CUPID_EVAL_GOLD_MAPPING_H_
