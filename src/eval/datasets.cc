#include "eval/datasets.h"

#include "importers/native_format.h"
#include "importers/sql_ddl_parser.h"
#include "importers/xml_schema_loader.h"
#include "schema/schema_builder.h"

namespace cupid {

// ------------------------------------------------------------- Figure 2 ---

Schema Fig2Po() {
  XmlSchemaBuilder b("PO");
  ElementId ship = b.AddElement(b.root(), "POShipTo");
  b.AddAttribute(ship, "Street", DataType::kString);
  b.AddAttribute(ship, "City", DataType::kString);
  ElementId bill = b.AddElement(b.root(), "POBillTo");
  b.AddAttribute(bill, "Street", DataType::kString);
  b.AddAttribute(bill, "City", DataType::kString);
  ElementId lines = b.AddElement(b.root(), "POLines");
  b.AddAttribute(lines, "Count", DataType::kInteger);
  ElementId item = b.AddElement(lines, "Item");
  b.AddAttribute(item, "Line", DataType::kInteger);
  b.AddAttribute(item, "Qty", DataType::kDecimal);
  b.AddAttribute(item, "UoM", DataType::kString);
  return std::move(b).Build();
}

Schema Fig2PurchaseOrder() {
  XmlSchemaBuilder b("PurchaseOrder");
  // Address is a shared type referenced from both DeliverTo and InvoiceTo —
  // the Section 8.2 variant that requires context-dependent mappings.
  ElementId address_type = b.AddComplexType("AddressType");
  b.AddAttribute(address_type, "Street", DataType::kString);
  b.AddAttribute(address_type, "City", DataType::kString);

  ElementId deliver = b.AddElement(b.root(), "DeliverTo");
  ElementId addr1 = b.AddElement(deliver, "Address");
  b.SetType(addr1, address_type);
  ElementId invoice = b.AddElement(b.root(), "InvoiceTo");
  ElementId addr2 = b.AddElement(invoice, "Address");
  b.SetType(addr2, address_type);

  ElementId items = b.AddElement(b.root(), "Items");
  b.AddAttribute(items, "ItemCount", DataType::kInteger);
  ElementId item = b.AddElement(items, "Item");
  b.AddAttribute(item, "ItemNumber", DataType::kInteger);
  b.AddAttribute(item, "Quantity", DataType::kDecimal);
  b.AddAttribute(item, "UnitOfMeasure", DataType::kString);
  return std::move(b).Build();
}

Dataset Fig2Dataset() {
  Dataset d{Fig2Po(), Fig2PurchaseOrder(), {},
            "Figure 2 running example: PO vs PurchaseOrder"};
  d.gold.Add("PO.POShipTo.Street", "PurchaseOrder.DeliverTo.Address.Street");
  d.gold.Add("PO.POShipTo.City", "PurchaseOrder.DeliverTo.Address.City");
  d.gold.Add("PO.POBillTo.Street", "PurchaseOrder.InvoiceTo.Address.Street");
  d.gold.Add("PO.POBillTo.City", "PurchaseOrder.InvoiceTo.Address.City");
  d.gold.Add("PO.POLines.Count", "PurchaseOrder.Items.ItemCount");
  d.gold.Add("PO.POLines.Item.Line", "PurchaseOrder.Items.Item.ItemNumber");
  d.gold.Add("PO.POLines.Item.Qty", "PurchaseOrder.Items.Item.Quantity");
  d.gold.Add("PO.POLines.Item.UoM",
             "PurchaseOrder.Items.Item.UnitOfMeasure");
  return d;
}

// ----------------------------------------------------------- Section 9.1 --

namespace {

Result<Dataset> MakeCanonical(const std::string& s1_text,
                              const std::string& s2_text,
                              const std::vector<std::pair<std::string,
                                                          std::string>>& gold,
                              const std::string& description) {
  CUPID_ASSIGN_OR_RETURN(Schema s1, ParseNativeSchema(s1_text));
  CUPID_ASSIGN_OR_RETURN(Schema s2, ParseNativeSchema(s2_text));
  Dataset d{std::move(s1), std::move(s2), {}, description};
  for (const auto& [a, b] : gold) d.gold.Add(a, b);
  return d;
}

}  // namespace

Result<Dataset> CanonicalExample(int test) {
  switch (test) {
    case 1:  // Identical schemas.
      return MakeCanonical(
          "schema Schema1\n"
          "node Customer\n"
          "  leaf Customer_Number integer key\n"
          "  leaf Name string\n"
          "  leaf Address string\n",
          "schema Schema2\n"
          "node Customer\n"
          "  leaf Customer_Number integer key\n"
          "  leaf Name string\n"
          "  leaf Address string\n",
          {{"Schema1.Customer.Customer_Number",
            "Schema2.Customer.Customer_Number"},
           {"Schema1.Customer.Name", "Schema2.Customer.Name"},
           {"Schema1.Customer.Address", "Schema2.Customer.Address"}},
          "Canonical 1: identical schemas");
    case 2:  // Same names, different data types (Telephone).
      return MakeCanonical(
          "schema Schema1\n"
          "node Customer\n"
          "  leaf Customer_Number integer key\n"
          "  leaf Name string\n"
          "  leaf Address string\n"
          "  leaf Telephone string\n",
          "schema Schema2\n"
          "node Customer\n"
          "  leaf Customer_Number integer key\n"
          "  leaf Name string\n"
          "  leaf Address string\n"
          "  leaf Telephone integer\n",
          {{"Schema1.Customer.Customer_Number",
            "Schema2.Customer.Customer_Number"},
           {"Schema1.Customer.Name", "Schema2.Customer.Name"},
           {"Schema1.Customer.Address", "Schema2.Customer.Address"},
           {"Schema1.Customer.Telephone", "Schema2.Customer.Telephone"}},
          "Canonical 2: same names, different data types");
    case 3:  // Prefix/suffix added to every name in schema 2.
      return MakeCanonical(
          "schema Schema1\n"
          "node Customer\n"
          "  leaf CustomerNumber integer key\n"
          "  leaf Name string\n"
          "  leaf Address string\n"
          "  leaf Telephone string\n",
          "schema Schema2\n"
          "node Customer\n"
          "  leaf CustomerNumberId integer key\n"
          "  leaf CustomerName string\n"
          "  leaf StreetAddress string\n"
          "  leaf TelephoneNumber string\n",
          {{"Schema1.Customer.CustomerNumber",
            "Schema2.Customer.CustomerNumberId"},
           {"Schema1.Customer.Name", "Schema2.Customer.CustomerName"},
           {"Schema1.Customer.Address", "Schema2.Customer.StreetAddress"},
           {"Schema1.Customer.Telephone",
            "Schema2.Customer.TelephoneNumber"}},
          "Canonical 3: names varied by prefix/suffix");
    case 4:  // Class renamed (Customer -> Person), attributes identical.
      return MakeCanonical(
          "schema Schema1\n"
          "node Customer\n"
          "  leaf Customer_Number integer key\n"
          "  leaf Name string\n"
          "  leaf Address string\n",
          "schema Schema2\n"
          "node Person\n"
          "  leaf Customer_Number integer key\n"
          "  leaf Name string\n"
          "  leaf Address string\n",
          {{"Schema1.Customer.Customer_Number",
            "Schema2.Person.Customer_Number"},
           {"Schema1.Customer.Name", "Schema2.Person.Name"},
           {"Schema1.Customer.Address", "Schema2.Person.Address"}},
          "Canonical 4: different class names");
    case 5:  // Nested vs flat.
      return MakeCanonical(
          "schema Schema1\n"
          "node Customer\n"
          "  leaf SSN string key\n"
          "  leaf Telephone string\n"
          "  node Name\n"
          "    leaf FirstName string\n"
          "    leaf LastName string\n"
          "  node Address\n"
          "    leaf Street string\n"
          "    leaf City string\n"
          "    leaf State string\n"
          "    leaf Zip string\n",
          "schema Schema2\n"
          "node Customer\n"
          "  leaf SSN string key\n"
          "  leaf Telephone string\n"
          "  leaf FirstName string\n"
          "  leaf LastName string\n"
          "  leaf Street string\n"
          "  leaf City string\n"
          "  leaf State string\n"
          "  leaf Zip string\n",
          {{"Schema1.Customer.SSN", "Schema2.Customer.SSN"},
           {"Schema1.Customer.Telephone", "Schema2.Customer.Telephone"},
           {"Schema1.Customer.Name.FirstName",
            "Schema2.Customer.FirstName"},
           {"Schema1.Customer.Name.LastName", "Schema2.Customer.LastName"},
           {"Schema1.Customer.Address.Street", "Schema2.Customer.Street"},
           {"Schema1.Customer.Address.City", "Schema2.Customer.City"},
           {"Schema1.Customer.Address.State", "Schema2.Customer.State"},
           {"Schema1.Customer.Address.Zip", "Schema2.Customer.Zip"}},
          "Canonical 5: nested vs flat structure");
    case 6: {  // Type substitution / context-dependent mapping.
      std::vector<std::pair<std::string, std::string>> gold;
      for (const char* ctx : {"ShippingAddress", "BillingAddress"}) {
        for (const char* attr : {"Name", "Street", "City", "Zip",
                                 "Telephone"}) {
          gold.emplace_back(
              std::string("Schema1.PurchaseOrder.") + ctx + "." + attr,
              std::string("Schema2.PurchaseOrder.") + ctx + "." + attr);
        }
      }
      gold.emplace_back("Schema1.PurchaseOrder.OrderNumber",
                        "Schema2.PurchaseOrder.OrderNumber");
      gold.emplace_back("Schema1.PurchaseOrder.ProductName",
                        "Schema2.PurchaseOrder.ProductName");
      return MakeCanonical(
          "schema Schema1\n"
          "type Address\n"
          "  leaf Name string\n"
          "  leaf Street string\n"
          "  leaf City string\n"
          "  leaf Zip string\n"
          "  leaf Telephone string\n"
          "node PurchaseOrder\n"
          "  leaf OrderNumber integer key\n"
          "  leaf ProductName string\n"
          "  node ShippingAddress : Address\n"
          "  node BillingAddress : Address\n",
          "schema Schema2\n"
          "type ShipTo\n"
          "  leaf Name string\n"
          "  leaf Street string\n"
          "  leaf City string\n"
          "  leaf Zip string\n"
          "  leaf Telephone string\n"
          "type BillTo\n"
          "  leaf Name string\n"
          "  leaf Street string\n"
          "  leaf City string\n"
          "  leaf Zip string\n"
          "  leaf Telephone string\n"
          "node PurchaseOrder\n"
          "  leaf OrderNumber integer key\n"
          "  leaf ProductName string\n"
          "  node ShippingAddress : ShipTo\n"
          "  node BillingAddress : BillTo\n",
          gold, "Canonical 6: type substitution / context dependence");
    }
    default:
      return Status::InvalidArgument("canonical test must be in 1..6");
  }
}

// ----------------------------------------------------------- Section 9.2 --

// ----------------------------------------------- shipped data files ------
//
// The Section 9.2 dataset sources, kept as the single source of truth: the
// builders above parse them, and tools/dump_datasets writes them to data/
// for the file-loader tests and the cupid_cli workflow.

const char* CidxSchemaXmlText() {
  // Transcribed from Figure 7 (left).
  return R"xml(
<schema name="PO">
  <element name="POHeader">
    <attribute name="PODate" type="date"/>
    <attribute name="PONumber" type="string"/>
  </element>
  <element name="Contact">
    <attribute name="ContactName" type="string"/>
    <attribute name="ContactEmail" type="string" use="optional"/>
    <attribute name="ContactFunctionCode" type="string" use="optional"/>
    <attribute name="ContactPhone" type="string"/>
  </element>
  <element name="POBillTo">
    <attribute name="Street1" type="string"/>
    <attribute name="Street2" type="string" use="optional"/>
    <attribute name="Street3" type="string" use="optional"/>
    <attribute name="Street4" type="string" use="optional"/>
    <attribute name="City" type="string"/>
    <attribute name="StateProvince" type="string"/>
    <attribute name="PostalCode" type="string"/>
    <attribute name="Country" type="string"/>
    <attribute name="attn" type="string" use="optional"/>
    <attribute name="entityIdentifier" type="string" use="optional"/>
  </element>
  <element name="POShipTo">
    <attribute name="Street1" type="string"/>
    <attribute name="Street2" type="string" use="optional"/>
    <attribute name="Street3" type="string" use="optional"/>
    <attribute name="Street4" type="string" use="optional"/>
    <attribute name="City" type="string"/>
    <attribute name="StateProvince" type="string"/>
    <attribute name="PostalCode" type="string"/>
    <attribute name="Country" type="string"/>
    <attribute name="attn" type="string" use="optional"/>
    <attribute name="entityIdentifier" type="string" use="optional"/>
    <attribute name="startAt" type="string" use="optional"/>
  </element>
  <element name="POLines">
    <attribute name="count" type="int"/>
    <element name="Item">
      <attribute name="partno" type="string"/>
      <attribute name="line" type="int"/>
      <attribute name="qty" type="decimal"/>
      <attribute name="unitPrice" type="money"/>
      <attribute name="uom" type="string"/>
    </element>
  </element>
</schema>
)xml";
}

const char* ExcelSchemaXmlText() {
  // Transcribed from Figure 7 (right). Address and Contact are shared
  // complex types referenced from both DeliverTo and InvoiceTo — the 18
  // context-duplicated XML attributes Section 9.3 (conclusion 3) counts.
  return R"xml(
<schema name="PurchaseOrder">
  <complexType name="AddressType">
    <attribute name="street1" type="string"/>
    <attribute name="street2" type="string" use="optional"/>
    <attribute name="street3" type="string" use="optional"/>
    <attribute name="street4" type="string" use="optional"/>
    <attribute name="city" type="string"/>
    <attribute name="stateProvince" type="string"/>
    <attribute name="postalCode" type="string"/>
    <attribute name="country" type="string"/>
  </complexType>
  <complexType name="ContactType">
    <attribute name="contactName" type="string"/>
    <attribute name="e-mail" type="string" use="optional"/>
    <attribute name="companyName" type="string" use="optional"/>
    <attribute name="telephone" type="string"/>
  </complexType>
  <element name="Items">
    <attribute name="itemCount" type="int"/>
    <element name="Item">
      <attribute name="partNumber" type="string"/>
      <attribute name="unitPrice" type="money"/>
      <attribute name="itemNumber" type="int"/>
      <attribute name="unitOfMeasure" type="string"/>
      <attribute name="Quantity" type="decimal"/>
      <attribute name="yourPartNumber" type="string" use="optional"/>
      <attribute name="partDescription" type="string" use="optional"/>
    </element>
  </element>
  <element name="DeliverTo">
    <element name="Address" type="AddressType"/>
    <element name="Contact" type="ContactType"/>
  </element>
  <element name="InvoiceTo">
    <element name="Address" type="AddressType"/>
    <element name="Contact" type="ContactType"/>
  </element>
  <element name="Header">
    <attribute name="orderDate" type="date"/>
    <attribute name="orderNum" type="string"/>
    <attribute name="yourAccountCode" type="string" use="optional"/>
    <attribute name="ourAccountCode" type="string" use="optional"/>
  </element>
  <element name="Footer">
    <attribute name="totalValue" type="money"/>
  </element>
</schema>
)xml";
}

const char* RdbSchemaSqlText() {
  // Transcribed from Figure 8 (right column, "RDB Schema").
  return R"sql(
CREATE TABLE ShippingMethods (
  ShippingMethodID INT PRIMARY KEY,
  ShippingMethod VARCHAR(40) NOT NULL
);
CREATE TABLE Region (
  RegionID INT PRIMARY KEY,
  RegionDescription VARCHAR(50) NOT NULL
);
CREATE TABLE Territories (
  TerritoryID INT PRIMARY KEY,
  TerritoryDescription VARCHAR(50) NOT NULL
);
CREATE TABLE TerritoryRegion (
  TerritoryID INT NOT NULL REFERENCES Territories(TerritoryID),
  RegionID INT NOT NULL REFERENCES Region(RegionID),
  PRIMARY KEY (TerritoryID, RegionID)
);
CREATE TABLE Employees (
  EmployeeID INT PRIMARY KEY,
  FirstName VARCHAR(30) NOT NULL,
  LastName VARCHAR(30) NOT NULL,
  Title VARCHAR(30),
  EmailName VARCHAR(60),
  Extension VARCHAR(8),
  Workphone VARCHAR(24)
);
CREATE TABLE EmployeeTerritory (
  EmployeeID INT NOT NULL REFERENCES Employees(EmployeeID),
  TerritoryID INT NOT NULL REFERENCES Territories(TerritoryID),
  PRIMARY KEY (EmployeeID, TerritoryID)
);
CREATE TABLE Brands (
  BrandID INT PRIMARY KEY,
  BrandDescription VARCHAR(50)
);
CREATE TABLE Products (
  ProductID INT PRIMARY KEY,
  BrandID INT REFERENCES Brands(BrandID),
  ProductName VARCHAR(50) NOT NULL,
  BrandDescription VARCHAR(50)
);
CREATE TABLE Customers (
  CustomerID INT PRIMARY KEY,
  CompanyName VARCHAR(50) NOT NULL,
  ContactFirstName VARCHAR(30),
  ContactLastName VARCHAR(30),
  BillingAddress VARCHAR(60),
  City VARCHAR(30),
  StateOrProvince VARCHAR(20),
  PostalCode VARCHAR(10),
  Country VARCHAR(30),
  ContactTitle VARCHAR(30),
  PhoneNumber VARCHAR(24),
  FaxNumber VARCHAR(24)
);
CREATE TABLE Orders (
  OrderID INT PRIMARY KEY,
  ShippingMethodID INT REFERENCES ShippingMethods(ShippingMethodID),
  EmployeeID INT REFERENCES Employees(EmployeeID),
  CustomerID INT REFERENCES Customers(CustomerID),
  OrderDate DATETIME,
  Quantity DECIMAL(10,2),
  UnitPrice MONEY,
  Discount DECIMAL(4,2),
  PurchaseOrdNumber VARCHAR(20),
  ShipName VARCHAR(50),
  ShipAddress VARCHAR(60),
  ShipDate DATETIME,
  FreightCharge MONEY,
  SalesTaxRate DECIMAL(4,2)
);
CREATE TABLE OrderDetails (
  OrderDetailID INT PRIMARY KEY,
  OrderID INT NOT NULL REFERENCES Orders(OrderID),
  ProductID INT NOT NULL REFERENCES Products(ProductID),
  Quantity DECIMAL(10,2) NOT NULL,
  UnitPrice MONEY NOT NULL,
  Discount DECIMAL(4,2)
);
CREATE TABLE Payment (
  PaymentID INT PRIMARY KEY,
  OrderID INT NOT NULL REFERENCES Orders(OrderID),
  PaymentMethodID INT REFERENCES PaymentMethods(PaymentMethodID),
  PaymentAmount MONEY,
  PaymentDate DATETIME,
  CreditCardNumber VARCHAR(20),
  CardholdersName VARCHAR(50),
  CredCardExpDate DATE
);
CREATE TABLE PaymentMethods (
  PaymentMethodID INT PRIMARY KEY,
  PaymentMethod VARCHAR(30)
);
)sql";
}

const char* StarSchemaSqlText() {
  // Transcribed from Figure 8 (left column, "Star Schema").
  return R"sql(
CREATE TABLE GEOGRAPHY (
  PostalCode VARCHAR(10) PRIMARY KEY,
  TerritoryID INT,
  TerritoryDescription VARCHAR(50),
  RegionID INT,
  RegionDescription VARCHAR(50)
);
CREATE TABLE CUSTOMERS (
  CustomerID INT PRIMARY KEY,
  CustomerName VARCHAR(50),
  CustomerTypeID INT,
  CustomerTypeDescription VARCHAR(50),
  PostalCode VARCHAR(10),
  State VARCHAR(20)
);
CREATE TABLE TIME (
  Date DATETIME PRIMARY KEY,
  DayOfWeek VARCHAR(10),
  Month INT,
  Year INT,
  Quarter INT,
  DayOfYear INT,
  Holiday BOOLEAN,
  Weekend BOOLEAN,
  YearMonth VARCHAR(8),
  WeekOfYear INT
);
CREATE TABLE PRODUCTS (
  ProductID INT PRIMARY KEY,
  ProductName VARCHAR(50),
  BrandID INT,
  BrandDescription VARCHAR(50)
);
CREATE TABLE SALES (
  OrderID INT,
  OrderDetailID INT,
  CustomerID INT REFERENCES CUSTOMERS(CustomerID),
  PostalCode VARCHAR(10) REFERENCES GEOGRAPHY(PostalCode),
  ProductID INT REFERENCES PRODUCTS(ProductID),
  OrderDate DATETIME REFERENCES TIME(Date),
  Quantity DECIMAL(10,2),
  UnitPrice MONEY,
  Discount DECIMAL(4,2),
  PRIMARY KEY (OrderID, OrderDetailID)
);
)sql";
}

Result<Schema> CidxSchema() {
  return LoadXmlSchema(CidxSchemaXmlText());
}

Result<Schema> ExcelSchema() {
  return LoadXmlSchema(ExcelSchemaXmlText());
}

Result<Dataset> CidxExcelDataset() {
  CUPID_ASSIGN_OR_RETURN(Schema cidx, CidxSchema());
  CUPID_ASSIGN_OR_RETURN(Schema excel, ExcelSchema());
  Dataset d{std::move(cidx), std::move(excel), {},
            "Figure 7 / Table 3: CIDX vs Excel purchase orders"};
  GoldMapping& g = d.gold;

  g.Add("PO.POHeader.PODate", "PurchaseOrder.Header.orderDate");
  g.Add("PO.POHeader.PONumber", "PurchaseOrder.Header.orderNum");

  // The single CIDX Contact corresponds to the Contact in both Excel
  // contexts (DeliverTo and InvoiceTo).
  for (const char* ctx : {"DeliverTo", "InvoiceTo"}) {
    g.Add("PO.Contact.ContactName",
          std::string("PurchaseOrder.") + ctx + ".Contact.contactName");
    g.Add("PO.Contact.ContactEmail",
          std::string("PurchaseOrder.") + ctx + ".Contact.e-mail");
    g.Add("PO.Contact.ContactPhone",
          std::string("PurchaseOrder.") + ctx + ".Contact.telephone");
  }

  auto add_address = [&](const std::string& cidx_side,
                         const std::string& excel_ctx) {
    const std::pair<const char*, const char*> pairs[] = {
        {"Street1", "street1"},       {"Street2", "street2"},
        {"Street3", "street3"},       {"Street4", "street4"},
        {"City", "city"},             {"StateProvince", "stateProvince"},
        {"PostalCode", "postalCode"}, {"Country", "country"},
    };
    for (const auto& [c, e] : pairs) {
      g.Add("PO." + cidx_side + "." + c,
            "PurchaseOrder." + excel_ctx + ".Address." + e);
    }
  };
  add_address("POShipTo", "DeliverTo");
  add_address("POBillTo", "InvoiceTo");

  g.Add("PO.POLines.count", "PurchaseOrder.Items.itemCount");
  g.Add("PO.POLines.Item.partno", "PurchaseOrder.Items.Item.partNumber");
  g.Add("PO.POLines.Item.line", "PurchaseOrder.Items.Item.itemNumber");
  g.Add("PO.POLines.Item.qty", "PurchaseOrder.Items.Item.Quantity");
  g.Add("PO.POLines.Item.unitPrice", "PurchaseOrder.Items.Item.unitPrice");
  g.Add("PO.POLines.Item.uom", "PurchaseOrder.Items.Item.unitOfMeasure");
  return d;
}

Result<Schema> RdbSchema() {
  return ParseSqlDdl("RDB", RdbSchemaSqlText());
}

Result<Schema> StarSchema() {
  return ParseSqlDdl("Star", StarSchemaSqlText());
}

Result<Dataset> RdbStarDataset() {
  CUPID_ASSIGN_OR_RETURN(Schema rdb, RdbSchema());
  CUPID_ASSIGN_OR_RETURN(Schema star, StarSchema());
  Dataset d{std::move(rdb), std::move(star), {},
            "Figure 8: RDB vs Star warehouse schema"};
  GoldMapping& g = d.gold;

  // Customers.
  g.Add("RDB.Customers.CustomerID", "Star.CUSTOMERS.CustomerID");
  g.Add("RDB.Customers.CompanyName", "Star.CUSTOMERS.CustomerName");
  g.Add("RDB.Customers.PostalCode", "Star.CUSTOMERS.PostalCode");
  g.Add("RDB.Customers.StateOrProvince", "Star.CUSTOMERS.State");

  // Products.
  g.Add("RDB.Products.ProductID", "Star.PRODUCTS.ProductID");
  g.Add("RDB.Products.ProductName", "Star.PRODUCTS.ProductName");
  g.Add("RDB.Products.BrandID", "Star.PRODUCTS.BrandID");
  g.Add("RDB.Products.BrandDescription", "Star.PRODUCTS.BrandDescription");

  // Geography = join of Territories and Region (plus the PostalCode that
  // only Customers has; the paper calls the Customers.PostalCode mapping
  // for all three Star PostalCode columns desirable).
  g.Add("RDB.Territories.TerritoryID", "Star.GEOGRAPHY.TerritoryID");
  g.Add("RDB.Territories.TerritoryDescription",
        "Star.GEOGRAPHY.TerritoryDescription");
  g.Add("RDB.Region.RegionID", "Star.GEOGRAPHY.RegionID");
  g.Add("RDB.Region.RegionDescription", "Star.GEOGRAPHY.RegionDescription");
  g.Add("RDB.Customers.PostalCode", "Star.GEOGRAPHY.PostalCode");

  // Sales = join of Orders and OrderDetails. RDB is denormalized (Quantity,
  // UnitPrice, Discount exist in both tables; the FK columns exist in both
  // the fact sources and the dimension tables), so several targets accept
  // alternative sources.
  g.Add("RDB.Orders.OrderID", "Star.SALES.OrderID");
  g.Add("RDB.OrderDetails.OrderID", "Star.SALES.OrderID");
  g.Add("RDB.OrderDetails.OrderDetailID", "Star.SALES.OrderDetailID");
  g.Add("RDB.Orders.CustomerID", "Star.SALES.CustomerID");
  g.Add("RDB.Customers.CustomerID", "Star.SALES.CustomerID");
  g.Add("RDB.Customers.PostalCode", "Star.SALES.PostalCode");
  g.Add("RDB.OrderDetails.ProductID", "Star.SALES.ProductID");
  g.Add("RDB.Products.ProductID", "Star.SALES.ProductID");
  g.Add("RDB.Orders.OrderDate", "Star.SALES.OrderDate");
  g.Add("RDB.OrderDetails.Quantity", "Star.SALES.Quantity");
  g.Add("RDB.Orders.Quantity", "Star.SALES.Quantity");
  g.Add("RDB.OrderDetails.UnitPrice", "Star.SALES.UnitPrice");
  g.Add("RDB.Orders.UnitPrice", "Star.SALES.UnitPrice");
  g.Add("RDB.OrderDetails.Discount", "Star.SALES.Discount");
  g.Add("RDB.Orders.Discount", "Star.SALES.Discount");

  // BrandID/BrandDescription live in both Products and Brands.
  g.Add("RDB.Brands.BrandID", "Star.PRODUCTS.BrandID");
  g.Add("RDB.Brands.BrandDescription", "Star.PRODUCTS.BrandDescription");

  // The Time dimension is derived from order dates.
  g.Add("RDB.Orders.OrderDate", "Star.TIME.Date");
  return d;
}

}  // namespace cupid
