// Fixed-width table rendering for the experiment harness binaries that
// regenerate the paper's tables.

#ifndef CUPID_EVAL_REPORT_H_
#define CUPID_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace cupid {

/// \brief Accumulates rows and renders an aligned ASCII table:
///
///     TableReport t({"Test", "Cupid", "DIKE", "MOMIS"});
///     t.AddRow({"Identical schemas", "Y", "Y", "Y"});
///     std::cout << t.Render();
class TableReport {
 public:
  explicit TableReport(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders with a header separator; columns padded to max cell width.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief "Y" / "N" helper for Table 2-style comparisons.
inline const char* YesNo(bool v) { return v ? "Y" : "N"; }

}  // namespace cupid

#endif  // CUPID_EVAL_REPORT_H_
