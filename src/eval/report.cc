#include "eval/report.h"

#include <algorithm>

namespace cupid {

TableReport::TableReport(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableReport::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TableReport::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

}  // namespace cupid
