// Parameter auto-tuning — another of the paper's "immediate challenges for
// further work" (Section 10: "automatic tuning of the control parameters";
// Section 9.3 #8: "auto-tuning is an open problem, and a requirement for a
// robust solution").
//
// Simple, transparent approach: grid search over the influential parameters
// (thaccept, wstruct, cinc), scoring leaf-mapping F1 against one or more
// labeled datasets. Deterministic and exhaustive over the grid; returns the
// winning configuration plus the whole score surface for inspection.

#ifndef CUPID_EVAL_AUTOTUNE_H_
#define CUPID_EVAL_AUTOTUNE_H_

#include <string>
#include <vector>

#include "core/config.h"
#include "eval/datasets.h"
#include "thesaurus/thesaurus.h"
#include "util/status.h"

namespace cupid {

/// One labeled tuning example: a dataset plus the thesaurus to use with it.
struct TuningCase {
  const Dataset* dataset;
  const Thesaurus* thesaurus;
};

/// Grid to search; defaults bracket the Table 1 typical values.
struct TuningGrid {
  std::vector<double> th_accept = {0.45, 0.5, 0.55};
  std::vector<double> wstruct_leaf = {0.4, 0.5, 0.6};
  std::vector<double> c_inc = {1.2, 1.3, 1.4};
};

/// One evaluated grid point.
struct TuningPoint {
  double th_accept;
  double wstruct_leaf;
  double c_inc;
  /// Mean leaf-mapping F1 over the tuning cases.
  double mean_f1;
};

struct TuningResult {
  /// Best configuration found (base config with the winning values set).
  CupidConfig best_config;
  TuningPoint best;
  /// Every evaluated point, in grid order.
  std::vector<TuningPoint> surface;
};

/// \brief Exhaustive grid search. `base` supplies all non-searched
/// parameters. Fails if `cases` is empty or any case is null.
Result<TuningResult> AutoTune(const std::vector<TuningCase>& cases,
                              const CupidConfig& base = {},
                              const TuningGrid& grid = {});

}  // namespace cupid

#endif  // CUPID_EVAL_AUTOTUNE_H_
