#include "eval/synthetic.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "schema/schema_builder.h"
#include "util/random.h"
#include "util/strings.h"

namespace cupid {

namespace {

// Business vocabulary for plausible element names.
constexpr const char* kContainerWords[] = {
    "Order",    "Customer", "Invoice",  "Shipment", "Product", "Payment",
    "Address",  "Contact",  "Line",     "Account",  "Employee", "Supplier",
    "Category", "Region",   "Warehouse", "Delivery", "Header",  "Detail",
};
constexpr const char* kLeafWords[] = {
    "Id",      "Name",   "Date",     "Quantity", "Price",  "Amount",
    "Code",    "Status", "Number",   "Street",   "City",   "Country",
    "Phone",   "Email",  "Discount", "Total",    "Weight", "Description",
    "Currency", "Zip",
};
constexpr DataType kLeafTypes[] = {
    DataType::kInteger, DataType::kString,  DataType::kDecimal,
    DataType::kDate,    DataType::kMoney,   DataType::kBoolean,
    DataType::kDateTime,
};

// Rename table for target-side mutation: full word -> short form.
struct Rename {
  const char* full;
  const char* abbreviated;
};
constexpr Rename kRenames[] = {
    {"Quantity", "Qty"},     {"Number", "Num"},     {"Amount", "Amt"},
    {"Address", "Addr"},     {"Customer", "Cust"},  {"Description", "Desc"},
    {"Telephone", "Tel"},    {"Phone", "Ph"},       {"Account", "Acct"},
    {"Employee", "Emp"},     {"Order", "Ord"},      {"Product", "Prod"},
    {"Invoice", "Inv"},      {"Total", "Tot"},
};

/// Intermediate representation so mutations can be applied before emitting
/// the two schemas.
struct ProtoNode {
  std::string name;
  bool leaf = false;
  DataType type = DataType::kString;
  bool optional = false;
  std::vector<ProtoNode> children;
};

class Generator {
 public:
  explicit Generator(const SyntheticOptions& opt)
      : opt_(opt), rng_(opt.seed) {}

  ProtoNode GenerateTree() {
    budget_ = opt_.num_elements;
    ProtoNode root;
    root.name = "Root";
    // Keep adding top-level containers until the element budget runs out.
    int section = 0;
    while (budget_ > 0) {
      root.children.push_back(GenerateContainer(1, section++));
    }
    return root;
  }

  ProtoNode MutateTree(const ProtoNode& node) {
    ProtoNode out;
    out.name = MaybeRename(node.name);
    out.leaf = node.leaf;
    out.optional = node.optional;
    out.type = node.leaf ? MaybeRetype(node.type) : node.type;
    for (const ProtoNode& child : node.children) {
      ProtoNode mutated = MutateTree(child);
      if (!mutated.leaf && !mutated.children.empty() &&
          rng_.NextBernoulli(opt_.flatten_probability)) {
        // Flatten: hoist the container's children into this node.
        for (ProtoNode& grand : mutated.children) {
          out.children.push_back(std::move(grand));
        }
      } else {
        out.children.push_back(std::move(mutated));
      }
    }
    return out;
  }

 private:
  /// Vocabulary-word draw: uniform historically, Zipf-like over word rank
  /// when name_zipf_exponent > 0 (one RNG draw either way, so the exponent
  /// never shifts downstream draws of an unskewed generator).
  size_t PickWord(size_t n) {
    const double s = opt_.name_zipf_exponent;
    if (s <= 0.0) return rng_.NextBounded(n);
    double total = 0.0;
    for (size_t r = 0; r < n; ++r) {
      total += std::pow(static_cast<double>(r + 1), -s);
    }
    double x = rng_.NextDouble() * total;
    for (size_t r = 0; r < n; ++r) {
      x -= std::pow(static_cast<double>(r + 1), -s);
      if (x <= 0.0) return r;
    }
    return n - 1;
  }

  std::string PickName(const char* const* words, size_t n, int salt) {
    std::string base = words[PickWord(n)];
    // Occasionally qualify with a second word or an index to reduce
    // collisions in large schemas.
    if (rng_.NextBernoulli(0.4)) {
      base += words[PickWord(n)];
    }
    if (rng_.NextBernoulli(0.15)) {
      base += std::to_string(salt % 9 + 1);
    }
    return base;
  }

  ProtoNode GenerateContainer(int depth, int salt) {
    --budget_;
    ProtoNode node;
    node.name = PickName(kContainerWords, std::size(kContainerWords), salt);
    node.optional = rng_.NextBernoulli(opt_.optional_probability);
    int children = 2 + static_cast<int>(rng_.NextBounded(
                           static_cast<uint64_t>(opt_.max_children - 1)));
    for (int i = 0; i < children && budget_ > 0; ++i) {
      bool make_leaf = depth >= opt_.max_depth || rng_.NextBernoulli(0.6);
      if (make_leaf) {
        --budget_;
        ProtoNode leaf;
        leaf.leaf = true;
        leaf.name = PickName(kLeafWords, std::size(kLeafWords), salt + i);
        leaf.type = kLeafTypes[rng_.NextBounded(std::size(kLeafTypes))];
        leaf.optional = rng_.NextBernoulli(opt_.optional_probability);
        node.children.push_back(std::move(leaf));
      } else {
        node.children.push_back(GenerateContainer(depth + 1, salt + i));
      }
    }
    return node;
  }

  std::string MaybeRename(const std::string& name) {
    if (!rng_.NextBernoulli(opt_.rename_probability)) return name;
    // Try the abbreviation table first.
    for (const Rename& r : kRenames) {
      auto pos = name.find(r.full);
      if (pos != std::string::npos) {
        std::string out = name;
        out.replace(pos, std::string(r.full).size(), r.abbreviated);
        return out;
      }
    }
    // Otherwise add an affix.
    return rng_.NextBernoulli(0.5) ? ("The" + name) : (name + "Field");
  }

  DataType MaybeRetype(DataType t) {
    if (!rng_.NextBernoulli(opt_.type_change_probability)) return t;
    switch (t) {
      case DataType::kInteger: return DataType::kBigInt;
      case DataType::kDecimal: return DataType::kFloat;
      case DataType::kString: return DataType::kText;
      case DataType::kDate: return DataType::kDateTime;
      case DataType::kMoney: return DataType::kDecimal;
      default: return t;
    }
  }

  SyntheticOptions opt_;
  SplitMix64 rng_;
  int budget_ = 0;
};

void EmitNode(const ProtoNode& node, ElementId parent, XmlSchemaBuilder* b) {
  if (node.leaf) {
    b->AddAttribute(parent, node.name, node.type, node.optional);
    return;
  }
  ElementId el = b->AddElement(parent, node.name, node.optional);
  for (const ProtoNode& child : node.children) {
    EmitNode(child, el, b);
  }
}

/// Collects leaf context paths in generation order; mutation preserves leaf
/// order (flattening hoists but never reorders/removes leaves), so source
/// and target leaf sequences align positionally.
void CollectLeafPaths(const ProtoNode& node, const std::string& prefix,
                      std::vector<std::string>* out) {
  std::string path = prefix + "." + node.name;
  if (node.leaf) {
    out->push_back(path);
    return;
  }
  for (const ProtoNode& child : node.children) {
    CollectLeafPaths(child, path, out);
  }
}

Schema EmitSchema(const ProtoNode& root, const std::string& name) {
  XmlSchemaBuilder b(name);
  for (const ProtoNode& child : root.children) {
    EmitNode(child, b.root(), &b);
  }
  return std::move(b).Build();
}

}  // namespace

Schema GenerateSyntheticSchema(const SyntheticOptions& options) {
  Generator gen(options);
  return EmitSchema(gen.GenerateTree(), "Synthetic");
}

SyntheticPair GenerateSyntheticPair(const SyntheticOptions& options) {
  Generator gen(options);
  ProtoNode source_tree = gen.GenerateTree();
  ProtoNode target_tree = gen.MutateTree(source_tree);

  SyntheticPair pair{EmitSchema(source_tree, "Source"),
                     EmitSchema(target_tree, "Target"),
                     {}};
  std::vector<std::string> source_leaves, target_leaves;
  for (const ProtoNode& child : source_tree.children) {
    CollectLeafPaths(child, "Source", &source_leaves);
  }
  for (const ProtoNode& child : target_tree.children) {
    CollectLeafPaths(child, "Target", &target_leaves);
  }
  // Mutation preserves the number and order of leaves.
  for (size_t i = 0; i < source_leaves.size() && i < target_leaves.size();
       ++i) {
    pair.gold.Add(source_leaves[i], target_leaves[i]);
  }
  return pair;
}

SyntheticCorpus GenerateSyntheticCorpus(
    const SyntheticCorpusOptions& options) {
  SyntheticCorpus corpus;

  SyntheticOptions source_opt;
  source_opt.num_elements = options.source_elements;
  source_opt.seed = options.seed;
  Generator source_gen(source_opt);
  ProtoNode source_tree = source_gen.GenerateTree();
  corpus.source = EmitSchema(source_tree, "Probe");

  const int num_targets = std::max(options.num_targets, 0);
  corpus.targets.reserve(static_cast<size_t>(num_targets));
  corpus.names.reserve(static_cast<size_t>(num_targets));
  int related = static_cast<int>(
      std::round(options.related_fraction * num_targets));
  related = std::clamp(related, 0, num_targets);

  // Corpus-level RNG for per-target sizes; per-target generators get
  // decorrelated seeds derived from it so every schema is reproducible in
  // isolation.
  SplitMix64 rng(options.seed ^ 0x636f72707573ULL);  // "corpus"

  for (int i = 0; i < num_targets; ++i) {
    std::string name = StringFormat("t%03d", i);
    ProtoNode target_tree;
    if (i < related) {
      // Mutated relative: strength interpolates from the planted best
      // match (min_mutation, index 0) to a distant cousin (max_mutation).
      const double t = related > 1
                           ? static_cast<double>(i) / (related - 1)
                           : 0.0;
      const double strength =
          options.min_mutation +
          t * (options.max_mutation - options.min_mutation);
      SyntheticOptions mut;
      mut.rename_probability = std::min(strength, 1.0);
      mut.type_change_probability = std::min(strength * 0.4, 1.0);
      mut.flatten_probability = std::min(strength * 0.5, 1.0);
      mut.seed = rng.Next();
      Generator mutator(mut);
      target_tree = mutator.MutateTree(source_tree);
    } else {
      SyntheticOptions gen;
      const int span =
          std::max(options.max_target_elements - options.min_target_elements,
                   0);
      gen.num_elements =
          options.min_target_elements +
          (span > 0
               ? static_cast<int>(rng.NextBounded(
                     static_cast<uint64_t>(span + 1)))
               : 0);
      gen.num_elements = std::max(gen.num_elements, 1);
      gen.name_zipf_exponent = options.name_zipf_exponent;
      gen.seed = rng.Next();
      Generator unrelated(gen);
      target_tree = unrelated.GenerateTree();
    }
    corpus.targets.push_back(EmitSchema(target_tree, name));
    corpus.names.push_back(std::move(name));
  }
  corpus.closest_target = related > 0 ? 0 : -1;
  return corpus;
}

}  // namespace cupid
