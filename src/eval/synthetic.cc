#include "eval/synthetic.h"

#include <iterator>
#include <string>
#include <vector>

#include "schema/schema_builder.h"
#include "util/random.h"

namespace cupid {

namespace {

// Business vocabulary for plausible element names.
constexpr const char* kContainerWords[] = {
    "Order",    "Customer", "Invoice",  "Shipment", "Product", "Payment",
    "Address",  "Contact",  "Line",     "Account",  "Employee", "Supplier",
    "Category", "Region",   "Warehouse", "Delivery", "Header",  "Detail",
};
constexpr const char* kLeafWords[] = {
    "Id",      "Name",   "Date",     "Quantity", "Price",  "Amount",
    "Code",    "Status", "Number",   "Street",   "City",   "Country",
    "Phone",   "Email",  "Discount", "Total",    "Weight", "Description",
    "Currency", "Zip",
};
constexpr DataType kLeafTypes[] = {
    DataType::kInteger, DataType::kString,  DataType::kDecimal,
    DataType::kDate,    DataType::kMoney,   DataType::kBoolean,
    DataType::kDateTime,
};

// Rename table for target-side mutation: full word -> short form.
struct Rename {
  const char* full;
  const char* abbreviated;
};
constexpr Rename kRenames[] = {
    {"Quantity", "Qty"},     {"Number", "Num"},     {"Amount", "Amt"},
    {"Address", "Addr"},     {"Customer", "Cust"},  {"Description", "Desc"},
    {"Telephone", "Tel"},    {"Phone", "Ph"},       {"Account", "Acct"},
    {"Employee", "Emp"},     {"Order", "Ord"},      {"Product", "Prod"},
    {"Invoice", "Inv"},      {"Total", "Tot"},
};

/// Intermediate representation so mutations can be applied before emitting
/// the two schemas.
struct ProtoNode {
  std::string name;
  bool leaf = false;
  DataType type = DataType::kString;
  bool optional = false;
  std::vector<ProtoNode> children;
};

class Generator {
 public:
  explicit Generator(const SyntheticOptions& opt)
      : opt_(opt), rng_(opt.seed) {}

  ProtoNode GenerateTree() {
    budget_ = opt_.num_elements;
    ProtoNode root;
    root.name = "Root";
    // Keep adding top-level containers until the element budget runs out.
    int section = 0;
    while (budget_ > 0) {
      root.children.push_back(GenerateContainer(1, section++));
    }
    return root;
  }

  ProtoNode MutateTree(const ProtoNode& node) {
    ProtoNode out;
    out.name = MaybeRename(node.name);
    out.leaf = node.leaf;
    out.optional = node.optional;
    out.type = node.leaf ? MaybeRetype(node.type) : node.type;
    for (const ProtoNode& child : node.children) {
      ProtoNode mutated = MutateTree(child);
      if (!mutated.leaf && !mutated.children.empty() &&
          rng_.NextBernoulli(opt_.flatten_probability)) {
        // Flatten: hoist the container's children into this node.
        for (ProtoNode& grand : mutated.children) {
          out.children.push_back(std::move(grand));
        }
      } else {
        out.children.push_back(std::move(mutated));
      }
    }
    return out;
  }

 private:
  std::string PickName(const char* const* words, size_t n, int salt) {
    std::string base = words[rng_.NextBounded(n)];
    // Occasionally qualify with a second word or an index to reduce
    // collisions in large schemas.
    if (rng_.NextBernoulli(0.4)) {
      base += words[rng_.NextBounded(n)];
    }
    if (rng_.NextBernoulli(0.15)) {
      base += std::to_string(salt % 9 + 1);
    }
    return base;
  }

  ProtoNode GenerateContainer(int depth, int salt) {
    --budget_;
    ProtoNode node;
    node.name = PickName(kContainerWords, std::size(kContainerWords), salt);
    node.optional = rng_.NextBernoulli(opt_.optional_probability);
    int children = 2 + static_cast<int>(rng_.NextBounded(
                           static_cast<uint64_t>(opt_.max_children - 1)));
    for (int i = 0; i < children && budget_ > 0; ++i) {
      bool make_leaf = depth >= opt_.max_depth || rng_.NextBernoulli(0.6);
      if (make_leaf) {
        --budget_;
        ProtoNode leaf;
        leaf.leaf = true;
        leaf.name = PickName(kLeafWords, std::size(kLeafWords), salt + i);
        leaf.type = kLeafTypes[rng_.NextBounded(std::size(kLeafTypes))];
        leaf.optional = rng_.NextBernoulli(opt_.optional_probability);
        node.children.push_back(std::move(leaf));
      } else {
        node.children.push_back(GenerateContainer(depth + 1, salt + i));
      }
    }
    return node;
  }

  std::string MaybeRename(const std::string& name) {
    if (!rng_.NextBernoulli(opt_.rename_probability)) return name;
    // Try the abbreviation table first.
    for (const Rename& r : kRenames) {
      auto pos = name.find(r.full);
      if (pos != std::string::npos) {
        std::string out = name;
        out.replace(pos, std::string(r.full).size(), r.abbreviated);
        return out;
      }
    }
    // Otherwise add an affix.
    return rng_.NextBernoulli(0.5) ? ("The" + name) : (name + "Field");
  }

  DataType MaybeRetype(DataType t) {
    if (!rng_.NextBernoulli(opt_.type_change_probability)) return t;
    switch (t) {
      case DataType::kInteger: return DataType::kBigInt;
      case DataType::kDecimal: return DataType::kFloat;
      case DataType::kString: return DataType::kText;
      case DataType::kDate: return DataType::kDateTime;
      case DataType::kMoney: return DataType::kDecimal;
      default: return t;
    }
  }

  SyntheticOptions opt_;
  SplitMix64 rng_;
  int budget_ = 0;
};

void EmitNode(const ProtoNode& node, ElementId parent, XmlSchemaBuilder* b) {
  if (node.leaf) {
    b->AddAttribute(parent, node.name, node.type, node.optional);
    return;
  }
  ElementId el = b->AddElement(parent, node.name, node.optional);
  for (const ProtoNode& child : node.children) {
    EmitNode(child, el, b);
  }
}

/// Collects leaf context paths in generation order; mutation preserves leaf
/// order (flattening hoists but never reorders/removes leaves), so source
/// and target leaf sequences align positionally.
void CollectLeafPaths(const ProtoNode& node, const std::string& prefix,
                      std::vector<std::string>* out) {
  std::string path = prefix + "." + node.name;
  if (node.leaf) {
    out->push_back(path);
    return;
  }
  for (const ProtoNode& child : node.children) {
    CollectLeafPaths(child, path, out);
  }
}

Schema EmitSchema(const ProtoNode& root, const std::string& name) {
  XmlSchemaBuilder b(name);
  for (const ProtoNode& child : root.children) {
    EmitNode(child, b.root(), &b);
  }
  return std::move(b).Build();
}

}  // namespace

Schema GenerateSyntheticSchema(const SyntheticOptions& options) {
  Generator gen(options);
  return EmitSchema(gen.GenerateTree(), "Synthetic");
}

SyntheticPair GenerateSyntheticPair(const SyntheticOptions& options) {
  Generator gen(options);
  ProtoNode source_tree = gen.GenerateTree();
  ProtoNode target_tree = gen.MutateTree(source_tree);

  SyntheticPair pair{EmitSchema(source_tree, "Source"),
                     EmitSchema(target_tree, "Target"),
                     {}};
  std::vector<std::string> source_leaves, target_leaves;
  for (const ProtoNode& child : source_tree.children) {
    CollectLeafPaths(child, "Source", &source_leaves);
  }
  for (const ProtoNode& child : target_tree.children) {
    CollectLeafPaths(child, "Target", &target_leaves);
  }
  // Mutation preserves the number and order of leaves.
  for (size_t i = 0; i < source_leaves.size() && i < target_leaves.size();
       ++i) {
    pair.gold.Add(source_leaves[i], target_leaves[i]);
  }
  return pair;
}

}  // namespace cupid
