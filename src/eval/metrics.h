// Match quality metrics: precision / recall / F-measure of a produced
// mapping against a gold mapping.

#ifndef CUPID_EVAL_METRICS_H_
#define CUPID_EVAL_METRICS_H_

#include <string>
#include <vector>

#include "eval/gold_mapping.h"
#include "mapping/mapping.h"

namespace cupid {

struct MatchQuality {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;

  double precision() const {
    int denom = true_positives + false_positives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double recall() const {
    int denom = true_positives + false_negatives;
    return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
  }
  double f1() const {
    double p = precision(), r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }

  /// The produced pairs that were wrong / the gold pairs that were missed
  /// (for diagnostics in experiment harnesses).
  std::vector<std::pair<std::string, std::string>> false_positive_pairs;
  std::vector<std::pair<std::string, std::string>> false_negative_pairs;
};

/// \brief Scores `produced` against `gold` by exact path-pair matching.
MatchQuality Evaluate(const Mapping& produced, const GoldMapping& gold);

/// \brief One-line summary "P=0.92 R=0.88 F1=0.90 (23 tp, 2 fp, 3 fn)".
std::string FormatQuality(const MatchQuality& q);

}  // namespace cupid

#endif  // CUPID_EVAL_METRICS_H_
