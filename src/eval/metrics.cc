#include "eval/metrics.h"

#include "util/strings.h"

namespace cupid {

MatchQuality Evaluate(const Mapping& produced, const GoldMapping& gold) {
  MatchQuality q;
  std::set<std::pair<std::string, std::string>> seen;
  std::set<std::string> covered_targets;
  for (const MappingElement& e : produced.elements) {
    std::pair<std::string, std::string> key{e.source_path, e.target_path};
    if (!seen.insert(key).second) continue;  // duplicates scored once
    if (gold.Contains(e.source_path, e.target_path)) {
      ++q.true_positives;
      covered_targets.insert(e.target_path);
    } else {
      ++q.false_positives;
      q.false_positive_pairs.push_back(key);
    }
  }
  for (const auto& [target, sources] : gold.alternatives()) {
    if (!covered_targets.count(target)) {
      ++q.false_negatives;
      q.false_negative_pairs.emplace_back(*sources.begin(), target);
    }
  }
  return q;
}

std::string FormatQuality(const MatchQuality& q) {
  return StringFormat("P=%.2f R=%.2f F1=%.2f (%d tp, %d fp, %d fn)",
                      q.precision(), q.recall(), q.f1(), q.true_positives,
                      q.false_positives, q.false_negatives);
}

}  // namespace cupid
