#include "eval/autotune.h"

#include <algorithm>

#include "core/cupid_matcher.h"
#include "eval/metrics.h"

namespace cupid {

namespace {

double MeanF1(const std::vector<TuningCase>& cases,
              const CupidConfig& config) {
  double sum = 0.0;
  int n = 0;
  for (const TuningCase& c : cases) {
    CupidMatcher matcher(c.thesaurus, config);
    auto r = matcher.Match(c.dataset->source, c.dataset->target);
    if (!r.ok()) continue;  // invalid grid point for this case: scores 0
    sum += Evaluate(r->leaf_mapping, c.dataset->gold).f1();
    ++n;
  }
  return n == 0 ? 0.0 : sum / n;
}

}  // namespace

Result<TuningResult> AutoTune(const std::vector<TuningCase>& cases,
                              const CupidConfig& base,
                              const TuningGrid& grid) {
  if (cases.empty()) {
    return Status::InvalidArgument("AutoTune needs at least one tuning case");
  }
  for (const TuningCase& c : cases) {
    if (c.dataset == nullptr || c.thesaurus == nullptr) {
      return Status::InvalidArgument("tuning case with null dataset/thesaurus");
    }
  }
  if (grid.th_accept.empty() || grid.wstruct_leaf.empty() ||
      grid.c_inc.empty()) {
    return Status::InvalidArgument("tuning grid has an empty axis");
  }

  TuningResult result;
  result.best = {0, 0, 0, -1.0};
  for (double th_accept : grid.th_accept) {
    for (double wstruct : grid.wstruct_leaf) {
      for (double c_inc : grid.c_inc) {
        CupidConfig config = base;
        config.tree_match.th_accept = th_accept;
        config.mapping.th_accept = th_accept;
        // Keep the Table 1 ordering invariants satisfied.
        config.tree_match.th_low =
            std::min(config.tree_match.th_low, th_accept);
        config.tree_match.th_high =
            std::max(config.tree_match.th_high, th_accept);
        config.tree_match.wstruct_leaf = wstruct;
        config.tree_match.wstruct_nonleaf = std::min(1.0, wstruct + 0.1);
        config.tree_match.c_inc = c_inc;

        TuningPoint point{th_accept, wstruct, c_inc, MeanF1(cases, config)};
        result.surface.push_back(point);
        if (point.mean_f1 > result.best.mean_f1) {
          result.best = point;
          result.best_config = config;
        }
      }
    }
  }
  return result;
}

}  // namespace cupid
