// The schemas and gold mappings of the paper's evaluation (Section 9),
// hand-encoded from Figures 2, 7 and 8 and the Section 9.1 test
// descriptions. Built through the public importers/builders, so loading a
// dataset also exercises the import path.

#ifndef CUPID_EVAL_DATASETS_H_
#define CUPID_EVAL_DATASETS_H_

#include <string>
#include <utility>

#include "eval/gold_mapping.h"
#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// A matched schema pair with its reference answer.
struct Dataset {
  Schema source;
  Schema target;
  GoldMapping gold;  ///< leaf-level, context-qualified paths
  std::string description;
};

// ----------------------------------------------------------- Section 4 ----

/// Figure 2 left: the PO purchase order (running example).
Schema Fig2Po();
/// Figure 2 right: the PurchaseOrder schema with Address under both
/// DeliverTo and InvoiceTo.
Schema Fig2PurchaseOrder();
/// The running-example pair with gold correspondences from Section 4's
/// walkthrough (Qty~Quantity, UoM~UnitOfMeasure, Line~ItemNumber, context
/// binding of City/Street).
Dataset Fig2Dataset();

// --------------------------------------------------------- Section 9.1 ----

/// The six canonical examples of Table 2. `test` is 1-based:
///   1 identical schemas          4 different class names
///   2 different data types       5 different nesting
///   3 name prefix/suffix         6 type substitution
/// Gold mappings are attribute(leaf)-level.
Result<Dataset> CanonicalExample(int test);

// --------------------------------------------------------- Section 9.2 ----

/// Figure 7 left: the CIDX purchase order (XML), built via the XSD-lite
/// importer.
Result<Schema> CidxSchema();
/// Figure 7 right: the Excel purchase order (XML) with shared Address and
/// Contact types under DeliverTo/InvoiceTo.
Result<Schema> ExcelSchema();
/// CIDX -> Excel with the leaf-level gold mapping described in Section 9.2
/// and Table 3.
Result<Dataset> CidxExcelDataset();

/// Figure 8 left: the RDB relational schema, built via the SQL DDL importer
/// (includes every foreign key shown in the figure).
Result<Schema> RdbSchema();
/// Figure 8 right: the Star warehouse schema.
Result<Schema> StarSchema();

// --------------------------------------------------- shipped data files ----

/// Raw source texts of the Section 9.2 datasets, exactly the inputs that
/// CidxSchema()/ExcelSchema()/RdbSchema()/StarSchema() parse. The
/// tools/dump_datasets binary writes them (plus the native/thesaurus/DTD
/// companions) into data/, which tests/data_files_test.cc verifies against
/// the built-in datasets.
const char* CidxSchemaXmlText();
const char* ExcelSchemaXmlText();
const char* RdbSchemaSqlText();
const char* StarSchemaSqlText();
/// RDB -> Star with the column-level gold mapping described in Section 9.2
/// (Orders/OrderDetails -> Sales, Territories+Region -> Geography, three
/// PostalCode contexts -> Customers.PostalCode, ...).
Result<Dataset> RdbStarDataset();

}  // namespace cupid

#endif  // CUPID_EVAL_DATASETS_H_
