#include "eval/gold_mapping.h"

namespace cupid {

void GoldMapping::Add(std::string source_path, std::string target_path) {
  alternatives_[std::move(target_path)].insert(std::move(source_path));
}

bool GoldMapping::Contains(const std::string& source_path,
                           const std::string& target_path) const {
  auto it = alternatives_.find(target_path);
  return it != alternatives_.end() && it->second.count(source_path) > 0;
}

bool GoldMapping::HasTarget(const std::string& target_path) const {
  return alternatives_.count(target_path) > 0;
}

}  // namespace cupid
