#include "baselines/artemis.h"

#include <algorithm>
#include <numeric>

#include "schema/data_type.h"
#include "util/strings.h"

namespace cupid {

namespace {

/// A class definition: its schema (0/1), element id, label and attributes.
struct ClassDef {
  int schema;  // 0 = s1, 1 = s2
  ElementId id;
  std::string label;                 // "<schema>.<class>"
  std::vector<ElementId> attributes; // atomic members
};

std::vector<ClassDef> CollectClasses(const Schema& s, int schema_index) {
  std::vector<ClassDef> out;
  for (ElementId id : s.AllElements()) {
    const Element& e = s.element(id);
    bool class_like = e.kind == ElementKind::kContainer ||
                      e.kind == ElementKind::kTypeDef ||
                      e.kind == ElementKind::kEntity;
    bool top_level = s.parent(id) == s.root() || s.parent(id) == kNoElement;
    if (!class_like || !top_level || id == s.root()) continue;
    ClassDef c;
    c.schema = schema_index;
    c.id = id;
    c.label = s.name() + "." + e.name;
    for (ElementId child : s.children(id)) {
      if (s.element(child).kind == ElementKind::kAtomic) {
        c.attributes.push_back(child);
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

double NameAffinity(const std::string& a, const std::string& b,
                    const Thesaurus& dict) {
  if (EqualsIgnoreCase(a, b)) return 1.0;
  return dict.Relationship(a, b);
}

double DomainAffinity(const Element& a, const Element& b) {
  // Generous floor: like the other systems, MOMIS resolves pure data-type
  // conflicts through its compatibility table (Section 9.1 test 2), so a
  // dictionary-confirmed name with a different type still fuses.
  if (a.data_type == b.data_type) return 1.0;
  if (TypeClassOf(a.data_type) == TypeClassOf(b.data_type)) return 0.85;
  return 0.5;
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      x = parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
    }
    return x;
  }
  void Union(int a, int b) { parent[static_cast<size_t>(Find(a))] = Find(b); }
};

}  // namespace

bool ArtemisResult::Clustered(const std::string& class_label1,
                              const std::string& class_label2) const {
  for (const ArtemisCluster& c : clusters) {
    bool has1 = false, has2 = false;
    for (const std::string& m : c.classes) {
      has1 |= (m == class_label1);
      has2 |= (m == class_label2);
    }
    if (has1 && has2) return true;
  }
  return false;
}

bool ArtemisResult::Fused(const std::string& attr1,
                          const std::string& attr2) const {
  for (const ArtemisCluster& c : clusters) {
    for (const auto& [a, b] : c.fused_attributes) {
      if (a == attr1 && b == attr2) return true;
    }
  }
  return false;
}

Result<ArtemisResult> ArtemisMatch(const Schema& s1, const Schema& s2,
                                   const Thesaurus& dictionary,
                                   const ArtemisOptions& opt) {
  if (opt.name_weight < 0.0 || opt.name_weight > 1.0) {
    return Status::InvalidArgument("name_weight must be within [0,1]");
  }
  std::vector<ClassDef> classes = CollectClasses(s1, 0);
  {
    std::vector<ClassDef> c2 = CollectClasses(s2, 1);
    classes.insert(classes.end(), c2.begin(), c2.end());
  }
  const Schema* schemas[2] = {&s1, &s2};

  auto attribute_affinity = [&](const ClassDef& ca, ElementId a,
                                const ClassDef& cb, ElementId b) {
    const Element& ea = schemas[ca.schema]->element(a);
    const Element& eb = schemas[cb.schema]->element(b);
    double na = NameAffinity(ea.name, eb.name, dictionary);
    return na * DomainAffinity(ea, eb);
  };

  // Structural affinity: Dice-style share of attribute best pairs.
  auto structural_affinity = [&](const ClassDef& a, const ClassDef& b) {
    if (a.attributes.empty() && b.attributes.empty()) return 0.0;
    double sum = 0.0;
    for (ElementId x : a.attributes) {
      double best = 0.0;
      for (ElementId y : b.attributes) {
        best = std::max(best, attribute_affinity(a, x, b, y));
      }
      sum += best;
    }
    for (ElementId y : b.attributes) {
      double best = 0.0;
      for (ElementId x : a.attributes) {
        best = std::max(best, attribute_affinity(a, x, b, y));
      }
      sum += best;
    }
    return sum /
           static_cast<double>(a.attributes.size() + b.attributes.size());
  };

  // Global affinity drives single-linkage agglomeration.
  UnionFind uf(classes.size());
  for (size_t i = 0; i < classes.size(); ++i) {
    for (size_t j = i + 1; j < classes.size(); ++j) {
      const Element& ei = schemas[classes[i].schema]->element(classes[i].id);
      const Element& ej = schemas[classes[j].schema]->element(classes[j].id);
      double na = NameAffinity(ei.name, ej.name, dictionary);
      double sa = structural_affinity(classes[i], classes[j]);
      double ga = opt.name_weight * na + (1.0 - opt.name_weight) * sa;
      // MOMIS requires a dictionary-confirmed sense for clustering: with no
      // name affinity at all, structure alone does not cluster classes
      // (Table 2 row 4 works because Person~Customer is in WordNet).
      if (na > 0.0 && ga >= opt.cluster_threshold) {
        uf.Union(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }

  // Materialize clusters.
  ArtemisResult result;
  std::vector<int> cluster_of(classes.size());
  std::vector<int> cluster_index(classes.size(), -1);
  for (size_t i = 0; i < classes.size(); ++i) {
    cluster_of[i] = uf.Find(static_cast<int>(i));
  }
  for (size_t i = 0; i < classes.size(); ++i) {
    int root = cluster_of[i];
    if (cluster_index[static_cast<size_t>(root)] < 0) {
      cluster_index[static_cast<size_t>(root)] =
          static_cast<int>(result.clusters.size());
      result.clusters.emplace_back();
    }
    result.clusters[static_cast<size_t>(cluster_index[static_cast<size_t>(root)])]
        .classes.push_back(classes[i].label);
  }

  // Attribute fusion within clusters: greedy best pairs across schemas.
  for (size_t i = 0; i < classes.size(); ++i) {
    if (classes[i].schema != 0) continue;
    for (size_t j = 0; j < classes.size(); ++j) {
      if (classes[j].schema != 1) continue;
      if (cluster_of[i] != cluster_of[j]) continue;
      ArtemisCluster& cluster =
          result.clusters[static_cast<size_t>(
              cluster_index[static_cast<size_t>(cluster_of[i])])];
      struct Cand {
        ElementId x, y;
        double aff;
      };
      std::vector<Cand> cands;
      for (ElementId x : classes[i].attributes) {
        for (ElementId y : classes[j].attributes) {
          double aff = attribute_affinity(classes[i], x, classes[j], y);
          if (aff >= opt.fuse_threshold) cands.push_back({x, y, aff});
        }
      }
      std::stable_sort(cands.begin(), cands.end(),
                       [](const Cand& a, const Cand& b) {
                         return a.aff > b.aff;
                       });
      std::vector<ElementId> used_x, used_y;
      for (const Cand& c : cands) {
        if (std::count(used_x.begin(), used_x.end(), c.x) ||
            std::count(used_y.begin(), used_y.end(), c.y)) {
          continue;
        }
        used_x.push_back(c.x);
        used_y.push_back(c.y);
        cluster.fused_attributes.emplace_back(
            classes[i].label + "." + s1.element(c.x).name,
            classes[j].label + "." + s2.element(c.y).name);
      }
    }
  }
  return result;
}

}  // namespace cupid
