// ARTEMIS/MOMIS-style baseline matcher (Bergamaschi, Castano, Vincini —
// SIGMOD Record 28(1); Castano, De Antonellis — IDEAS'99), reimplemented
// from the descriptions in Sections 3 and 9 of the Cupid paper:
//
//   * schemas are sets of class definitions (classes = children of the
//     schema root; attributes = their atomic members);
//   * *name affinity* comes from a dictionary in which the user has chosen
//     one sense per element name — modeled here by exact-name equality plus
//     explicitly supplied synonym/hypernym entries (no tokenization, which
//     reproduces MOMIS's need for manual input on name variations,
//     Table 2 row 3);
//   * *structural affinity* of two classes is computed from their attribute
//     sets (best-pair name-and-domain affinity);
//   * classes cluster hierarchically on global affinity; each cluster is a
//     global class of the mediated schema;
//   * attributes are fused only within clusters (Section 9.2's observation
//     that itemCount was matched inside the Items/Item cluster).
//
// Class-level granularity is the point of comparison: nesting variations
// (Table 2 row 5) and shared-type substitution (row 6) defeat it.

#ifndef CUPID_BASELINES_ARTEMIS_H_
#define CUPID_BASELINES_ARTEMIS_H_

#include <string>
#include <vector>

#include "schema/schema.h"
#include "thesaurus/thesaurus.h"
#include "util/status.h"

namespace cupid {

struct ArtemisOptions {
  /// Weight of name affinity in global affinity (structural gets 1 - w).
  double name_weight = 0.5;
  /// Minimum global affinity for two classes to join a cluster.
  double cluster_threshold = 0.5;
  /// Minimum affinity for two attributes to fuse within a cluster.
  double fuse_threshold = 0.5;
};

/// One global class: the classes clustered into it and the attribute pairs
/// fused inside it.
struct ArtemisCluster {
  /// "<schema>.<class>" labels of member classes.
  std::vector<std::string> classes;
  /// Fused attribute pairs across the two schemas:
  /// ("<schema1>.<class>.<attr>", "<schema2>.<class>.<attr>").
  std::vector<std::pair<std::string, std::string>> fused_attributes;
};

struct ArtemisResult {
  std::vector<ArtemisCluster> clusters;

  /// True if the two classes (by bare name from schema 1 / schema 2, given
  /// as full "<schema>.<class>" labels) ended up in one cluster.
  bool Clustered(const std::string& class_label1,
                 const std::string& class_label2) const;

  /// True if the given attribute pair was fused in some cluster.
  bool Fused(const std::string& attr1, const std::string& attr2) const;
};

/// \brief Runs the ARTEMIS-style matcher. `dictionary` supplies the
/// user-confirmed name relationships (WordNet senses in MOMIS).
Result<ArtemisResult> ArtemisMatch(const Schema& s1, const Schema& s2,
                                   const Thesaurus& dictionary,
                                   const ArtemisOptions& options = {});

}  // namespace cupid

#endif  // CUPID_BASELINES_ARTEMIS_H_
