// XML/hierarchical schema -> ER remodeling for the DIKE baseline.
//
// DIKE operates on ER models; Section 9.2 of the paper describes two
// alternative remodelings of the XML purchase orders ("We first chose to
// model the root elements and all XML-elements that had any attributes as
// entities... As an alternative, we chose to model POShipTo, POBillTo,
// POLines, POHeader and Contact as entities... DeliverTo and InvoiceTo are
// ternary relationships") and notes the abstracted schema depends on the
// choice. This module implements both conversions programmatically.

#ifndef CUPID_BASELINES_ER_CONVERSION_H_
#define CUPID_BASELINES_ER_CONVERSION_H_

#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// The two remodeling strategies of Section 9.2.
enum class ErModelingChoice {
  /// Every container with atomic members becomes an entity; containers with
  /// only container children become relationships linking their members.
  kContainersAsEntities = 0,
  /// Only containers whose members are all atomic become entities; every
  /// intermediate container becomes a relationship — the paper's
  /// "alternative" modeling where DeliverTo/InvoiceTo are relationships.
  kLeafContainersAsEntities,
};

/// \brief Converts a hierarchical schema into an ER-style schema: elements
/// keep their names and data types, but kinds become kEntity /
/// kRelationship / kAtomic, and shared types are expanded per context (ER
/// models have no type sharing).
Result<Schema> ConvertToEr(const Schema& schema, ErModelingChoice choice);

}  // namespace cupid

#endif  // CUPID_BASELINES_ER_CONVERSION_H_
