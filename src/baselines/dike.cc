#include "baselines/dike.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "schema/data_type.h"

namespace cupid {

namespace {

/// Undirected adjacency over all relationship kinds: containment (both
/// directions), aggregation, IsDerivedFrom, reference. DIKE's vicinity is
/// graph distance, not tree depth.
std::vector<std::vector<ElementId>> BuildAdjacency(const Schema& s) {
  std::vector<std::vector<ElementId>> adj(
      static_cast<size_t>(s.num_elements()));
  auto link = [&](ElementId a, ElementId b) {
    adj[static_cast<size_t>(a)].push_back(b);
    adj[static_cast<size_t>(b)].push_back(a);
  };
  for (ElementId id : s.AllElements()) {
    for (ElementId c : s.children(id)) link(id, c);
    for (ElementId t : s.derived_from(id)) link(id, t);
    for (ElementId t : s.aggregates(id)) link(id, t);
    for (ElementId t : s.references(id)) link(id, t);
  }
  return adj;
}

/// Elements at exactly distance 1..max_distance from `from` (BFS rings).
std::vector<std::vector<ElementId>> NeighborRings(
    const std::vector<std::vector<ElementId>>& adj, ElementId from,
    int max_distance) {
  std::vector<std::vector<ElementId>> rings(
      static_cast<size_t>(max_distance) + 1);
  std::vector<int> dist(adj.size(), -1);
  std::queue<ElementId> q;
  dist[static_cast<size_t>(from)] = 0;
  q.push(from);
  while (!q.empty()) {
    ElementId cur = q.front();
    q.pop();
    int d = dist[static_cast<size_t>(cur)];
    if (d >= max_distance) continue;
    for (ElementId n : adj[static_cast<size_t>(cur)]) {
      if (dist[static_cast<size_t>(n)] < 0) {
        dist[static_cast<size_t>(n)] = d + 1;
        rings[static_cast<size_t>(d) + 1].push_back(n);
        q.push(n);
      }
    }
  }
  return rings;
}

double DomainCompatibility(const Element& a, const Element& b) {
  if (a.data_type == b.data_type) return 1.0;
  if (TypeClassOf(a.data_type) == TypeClassOf(b.data_type)) return 0.7;
  return 0.2;
}

}  // namespace

bool DikeResult::Merged(const std::string& a, const std::string& b) const {
  for (const DikePair& p : merged) {
    if (p.first_name == a && p.second_name == b) return true;
  }
  return false;
}

Result<DikeResult> DikeMatch(const Schema& s1, const Schema& s2,
                             const Lspd& lspd, const DikeOptions& opt) {
  if (opt.vicinity_weight < 0.0 || opt.vicinity_weight > 1.0) {
    return Status::InvalidArgument("vicinity_weight must be within [0,1]");
  }
  if (opt.max_distance < 1 || opt.iterations < 1) {
    return Status::InvalidArgument(
        "max_distance and iterations must be >= 1");
  }
  const int64_t n1 = s1.num_elements(), n2 = s2.num_elements();

  // Initial similarity: LSPD + domain + keyness (Section 9: "initialized to
  // a combination of their LSPD entry, data domains and keyness").
  Matrix<float> base(n1, n2);
  for (ElementId a = 0; a < n1; ++a) {
    const Element& ea = s1.element(a);
    for (ElementId b = 0; b < n2; ++b) {
      const Element& eb = s2.element(b);
      double name = lspd.Get(ea.name, eb.name);
      double domain = DomainCompatibility(ea, eb);
      double keyness = (ea.is_key == eb.is_key) ? 1.0 : 0.0;
      double v = (1.0 - opt.domain_weight - opt.keyness_weight) * name +
                 opt.domain_weight * domain * (name > 0.0 ? 1.0 : 0.5) +
                 opt.keyness_weight * keyness * (name > 0.0 ? 1.0 : 0.0);
      base(a, b) = static_cast<float>(std::clamp(v, 0.0, 1.0));
    }
  }

  auto adj1 = BuildAdjacency(s1);
  auto adj2 = BuildAdjacency(s2);
  std::vector<std::vector<std::vector<ElementId>>> rings1(
      static_cast<size_t>(n1)),
      rings2(static_cast<size_t>(n2));
  for (ElementId a = 0; a < n1; ++a) {
    rings1[static_cast<size_t>(a)] = NeighborRings(adj1, a, opt.max_distance);
  }
  for (ElementId b = 0; b < n2; ++b) {
    rings2[static_cast<size_t>(b)] = NeighborRings(adj2, b, opt.max_distance);
  }

  // Iterative re-evaluation: nearby elements influence the match, decaying
  // with distance (2^-d).
  Matrix<float> sim = base;
  Matrix<float> next(n1, n2);
  for (int iter = 0; iter < opt.iterations; ++iter) {
    for (ElementId a = 0; a < n1; ++a) {
      for (ElementId b = 0; b < n2; ++b) {
        double vicinity_num = 0.0, vicinity_den = 0.0;
        for (int d = 1; d <= opt.max_distance; ++d) {
          const auto& ra = rings1[static_cast<size_t>(a)][static_cast<size_t>(d)];
          const auto& rb = rings2[static_cast<size_t>(b)][static_cast<size_t>(d)];
          if (ra.empty() || rb.empty()) continue;
          // Average of each neighbor's best counterpart in the other ring.
          double sum = 0.0;
          for (ElementId x : ra) {
            double best = 0.0;
            for (ElementId y : rb) best = std::max<double>(best, sim(x, y));
            sum += best;
          }
          for (ElementId y : rb) {
            double best = 0.0;
            for (ElementId x : ra) best = std::max<double>(best, sim(x, y));
            sum += best;
          }
          double ring_avg = sum / static_cast<double>(ra.size() + rb.size());
          double weight = std::pow(2.0, -d);
          vicinity_num += weight * ring_avg;
          vicinity_den += weight;
        }
        double vicinity = vicinity_den > 0.0 ? vicinity_num / vicinity_den : 0.0;
        next(a, b) = static_cast<float>(
            (1.0 - opt.vicinity_weight) * base(a, b) +
            opt.vicinity_weight * vicinity);
      }
    }
    std::swap(sim, next);
  }

  // Merge decision: greedy 1:1 on converged similarity — each element merges
  // at most once (no context-dependent mappings).
  DikeResult result;
  result.similarity = sim;
  struct Cand {
    ElementId a, b;
    double s;
  };
  std::vector<Cand> cands;
  for (ElementId a = 1; a < n1; ++a) {  // skip roots
    for (ElementId b = 1; b < n2; ++b) {
      if (sim(a, b) >= opt.merge_threshold) {
        cands.push_back({a, b, sim(a, b)});
      }
    }
  }
  std::stable_sort(cands.begin(), cands.end(),
                   [](const Cand& x, const Cand& y) { return x.s > y.s; });
  std::vector<bool> used1(static_cast<size_t>(n1), false),
      used2(static_cast<size_t>(n2), false);
  for (const Cand& c : cands) {
    if (used1[static_cast<size_t>(c.a)] || used2[static_cast<size_t>(c.b)]) {
      continue;
    }
    used1[static_cast<size_t>(c.a)] = used2[static_cast<size_t>(c.b)] = true;
    result.merged.push_back({c.a, c.b, s1.element(c.a).name,
                             s2.element(c.b).name, c.s});
  }
  return result;
}

}  // namespace cupid
