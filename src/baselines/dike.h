// DIKE-style baseline matcher (Palopoli, Terracina, Ursino — ADBIS-DASFAA
// 2000), reimplemented from the descriptions in Sections 3 and 9 of the
// Cupid paper:
//
//   * operates on ER-style schema graphs (entities, relationships,
//     attributes as nodes);
//   * node similarity is initialized from the LSPD entry, data-domain
//     compatibility and keyness;
//   * similarities are re-evaluated iteratively from the similarity of
//     nodes in the vicinity — "the relevance of elements is inversely
//     proportional to their distance", modeled as a 2^-d decay;
//   * elements merge (map) when their converged similarity passes a
//     threshold; each element merges at most once — there is no
//     context-dependent matching, reproducing Table 2 row 6 = N.
//
// The original system's schema-integration extras (type conflict
// resolution, abstracted-schema construction) are out of scope: the
// comparative study only records which elements end up merged, which is
// what DikeMatch reports.

#ifndef CUPID_BASELINES_DIKE_H_
#define CUPID_BASELINES_DIKE_H_

#include <string>
#include <vector>

#include "baselines/lspd.h"
#include "schema/schema.h"
#include "util/matrix.h"
#include "util/status.h"

namespace cupid {

struct DikeOptions {
  /// Share of the vicinity contribution in re-evaluated similarity.
  double vicinity_weight = 0.5;
  /// Maximum graph distance considered; contribution decays as 2^-d.
  int max_distance = 3;
  /// Fixpoint iterations of the re-evaluation.
  int iterations = 4;
  /// Similarity at or above which two elements are merged.
  double merge_threshold = 0.55;
  /// Weight of data-domain compatibility in the initial similarity.
  double domain_weight = 0.3;
  /// Bonus when both elements are key members.
  double keyness_weight = 0.1;
};

/// One merged (mapped) element pair in DIKE's output.
struct DikePair {
  ElementId first;   ///< element of schema 1
  ElementId second;  ///< element of schema 2
  std::string first_name;
  std::string second_name;
  double similarity;
};

struct DikeResult {
  std::vector<DikePair> merged;
  /// Converged similarities, indexed by (ElementId of s1, ElementId of s2).
  Matrix<float> similarity;

  /// True if elements named `a` (schema 1) and `b` (schema 2) merged.
  bool Merged(const std::string& a, const std::string& b) const;
};

/// \brief Runs the DIKE-style matcher over two schema graphs with the given
/// manual linguistic input.
Result<DikeResult> DikeMatch(const Schema& s1, const Schema& s2,
                             const Lspd& lspd, const DikeOptions& options = {});

}  // namespace cupid

#endif  // CUPID_BASELINES_DIKE_H_
