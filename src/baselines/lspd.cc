#include "baselines/lspd.h"

#include <algorithm>

#include "util/strings.h"

namespace cupid {

std::string Lspd::Key(std::string_view a, std::string_view b) {
  std::string la = ToLowerAscii(a), lb = ToLowerAscii(b);
  return la <= lb ? la + "|" + lb : lb + "|" + la;
}

void Lspd::Add(std::string_view a, std::string_view b, double coefficient) {
  entries_[Key(a, b)] = std::clamp(coefficient, 0.0, 1.0);
}

double Lspd::Get(std::string_view a, std::string_view b) const {
  if (EqualsIgnoreCase(a, b)) return 1.0;
  auto it = entries_.find(Key(a, b));
  return it == entries_.end() ? 0.0 : it->second;
}

}  // namespace cupid
