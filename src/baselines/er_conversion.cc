#include "baselines/er_conversion.h"

#include "tree/tree_builder.h"

namespace cupid {

namespace {

/// True if the tree node has at least one atomic (leaf) child.
bool HasAtomicChild(const SchemaTree& tree, TreeNodeId n) {
  for (TreeNodeId c : tree.node(n).children) {
    if (tree.IsLeaf(c)) return true;
  }
  return false;
}

/// True if all children of the node are atomic.
bool AllChildrenAtomic(const SchemaTree& tree, TreeNodeId n) {
  for (TreeNodeId c : tree.node(n).children) {
    if (!tree.IsLeaf(c)) return false;
  }
  return !tree.node(n).children.empty();
}

void Convert(const SchemaTree& tree, TreeNodeId node, ElementId parent,
             ErModelingChoice choice, Schema* out) {
  const Element& src = tree.schema().element(tree.node(node).source);
  Element e;
  e.name = src.name;
  e.data_type = src.data_type;
  e.optional = tree.node(node).optional;
  e.is_key = src.is_key;
  if (tree.IsLeaf(node)) {
    e.kind = ElementKind::kAtomic;
  } else {
    bool entity = choice == ErModelingChoice::kContainersAsEntities
                      ? HasAtomicChild(tree, node)
                      : AllChildrenAtomic(tree, node);
    e.kind = entity ? ElementKind::kEntity : ElementKind::kRelationship;
    e.data_type = DataType::kComplex;
  }
  ElementId id = out->AddElement(std::move(e), parent);
  for (TreeNodeId c : tree.node(node).children) {
    // Join-view nodes are a Cupid concept, not part of the ER remodeling.
    if (tree.node(c).is_join_view) continue;
    if (tree.node(c).parent != node) continue;  // skip shared (DAG) children
    Convert(tree, c, id, choice, out);
  }
}

}  // namespace

Result<Schema> ConvertToEr(const Schema& schema, ErModelingChoice choice) {
  // Expanding to the schema tree materializes shared types per context,
  // which is what an ER model (no type sharing) requires.
  TreeBuildOptions opts;
  opts.expand_join_views = false;
  opts.expand_views = false;
  CUPID_ASSIGN_OR_RETURN(SchemaTree tree, BuildSchemaTree(schema, opts));

  Schema out(schema.name());
  for (TreeNodeId c : tree.node(tree.root()).children) {
    Convert(tree, c, out.root(), choice, &out);
  }
  CUPID_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace cupid
