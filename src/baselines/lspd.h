// Lexical Synonymy Property Dictionary (LSPD) — DIKE's linguistic input.
//
// DIKE's linguistic matching "is based on manual inputs" (Section 3 of the
// paper): the user supplies pairwise similarity coefficients between element
// names of the two schemas. No tokenization or thesaurus reasoning happens —
// that is the behaviour the comparative study contrasts Cupid against
// (Table 2, row 3: "LSPD entries have to be added to identify corresponding
// elements").

#ifndef CUPID_BASELINES_LSPD_H_
#define CUPID_BASELINES_LSPD_H_

#include <string>
#include <string_view>
#include <unordered_map>

namespace cupid {

/// \brief Pairwise name-similarity dictionary, symmetric, case-insensitive.
class Lspd {
 public:
  Lspd() = default;

  /// Registers sim(`a`, `b`) = `coefficient` (clamped to [0,1]).
  void Add(std::string_view a, std::string_view b, double coefficient);

  /// \brief Coefficient for the pair: 1.0 for equal names (case-insensitive)
  /// even without an entry, otherwise the registered value, otherwise 0.
  double Get(std::string_view a, std::string_view b) const;

  size_t size() const { return entries_.size(); }

 private:
  static std::string Key(std::string_view a, std::string_view b);
  std::unordered_map<std::string, double> entries_;
};

}  // namespace cupid

#endif  // CUPID_BASELINES_LSPD_H_
