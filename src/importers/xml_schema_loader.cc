#include "importers/xml_schema_loader.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "importers/xml_parser.h"
#include "schema/schema_builder.h"

namespace cupid {

namespace {

bool IsOptional(const XmlNode& node) {
  if (node.AttrOr("use", "") == "optional") return true;
  if (node.AttrOr("minOccurs", "") == "0") return true;
  if (node.AttrOr("optional", "") == "true") return true;
  return false;
}

class Loader {
 public:
  Status Load(const XmlNode& root, XmlSchemaBuilder* builder) {
    if (root.tag != "schema") {
      return Status::ParseError("document element must be <schema>, got <" +
                                root.tag + ">");
    }
    // Pass 1: declare complex types so elements can reference them in any
    // order.
    for (const XmlNode* ct : root.ChildrenNamed("complexType")) {
      const std::string* name = ct->Attr("name");
      if (!name) return Status::ParseError("<complexType> needs a name");
      if (types_.count(*name)) {
        return Status::ParseError("duplicate complexType '" + *name + "'");
      }
      types_[*name] = builder->AddComplexType(*name);
    }
    // Pass 2: type members and the element tree.
    for (const XmlNode* ct : root.ChildrenNamed("complexType")) {
      ElementId type_id = types_[*ct->Attr("name")];
      CUPID_RETURN_NOT_OK(LoadMembers(*ct, type_id, builder));
    }
    for (const XmlNode& child : root.children) {
      if (child.tag == "complexType") continue;
      CUPID_RETURN_NOT_OK(LoadNode(child, builder->root(), builder));
    }
    return Status::OK();
  }

 private:
  Status LoadMembers(const XmlNode& node, ElementId parent,
                     XmlSchemaBuilder* builder) {
    for (const XmlNode& child : node.children) {
      CUPID_RETURN_NOT_OK(LoadNode(child, parent, builder));
    }
    return Status::OK();
  }

  Status LoadNode(const XmlNode& node, ElementId parent,
                  XmlSchemaBuilder* builder) {
    const std::string* name = node.Attr("name");
    if (!name) {
      return Status::ParseError("<" + node.tag + "> needs a name attribute");
    }
    bool optional = IsOptional(node);

    if (node.tag == "attribute") {
      CUPID_ASSIGN_OR_RETURN(DataType dt,
                             DataTypeFromName(node.AttrOr("type", "string")));
      ElementId attr = builder->AddAttribute(parent, *name, dt, optional);
      SetDocumentation(node, attr, builder);
      return Status::OK();
    }
    if (node.tag != "element") {
      return Status::ParseError("unexpected tag <" + node.tag + ">");
    }

    const std::string* type = node.Attr("type");
    if (type) {
      auto it = types_.find(*type);
      if (it != types_.end()) {
        // Shared complex type: container + IsDerivedFrom edge.
        ElementId el = builder->AddElement(parent, *name, optional);
        SetDocumentation(node, el, builder);
        CUPID_RETURN_NOT_OK(builder->SetType(el, it->second));
        return LoadMembers(node, el, builder);
      }
      if (node.children.empty()) {
        CUPID_ASSIGN_OR_RETURN(DataType dt, DataTypeFromName(*type));
        ElementId attr = builder->AddAttribute(parent, *name, dt, optional);
        SetDocumentation(node, attr, builder);
        return Status::OK();
      }
      return Status::ParseError("element '" + *name +
                                "' has both a simple type and children");
    }
    if (node.children.empty()) {
      // Leaf element without a type: default to string.
      ElementId attr =
          builder->AddAttribute(parent, *name, DataType::kString, optional);
      SetDocumentation(node, attr, builder);
      return Status::OK();
    }
    ElementId el = builder->AddElement(parent, *name, optional);
    SetDocumentation(node, el, builder);
    return LoadMembers(node, el, builder);
  }

  /// Annotations come from a `doc` attribute (data-dictionary description).
  static void SetDocumentation(const XmlNode& node, ElementId element,
                               XmlSchemaBuilder* builder) {
    const std::string* doc = node.Attr("doc");
    if (doc && !doc->empty()) {
      builder->mutable_schema()->mutable_element(element)->documentation =
          *doc;
    }
  }

  std::unordered_map<std::string, ElementId> types_;
};

}  // namespace

Result<Schema> LoadXmlSchema(const std::string& xml_text) {
  CUPID_ASSIGN_OR_RETURN(XmlNode root, ParseXml(xml_text));
  XmlSchemaBuilder builder(root.AttrOr("name", "schema"));
  Loader loader;
  CUPID_RETURN_NOT_OK(loader.Load(root, &builder));
  Schema schema = std::move(builder).Build();
  CUPID_RETURN_NOT_OK(schema.Validate());
  return schema;
}

Result<Schema> LoadXmlSchemaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open schema file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return LoadXmlSchema(buf.str());
}

}  // namespace cupid
