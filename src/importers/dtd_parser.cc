#include "importers/dtd_parser.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "util/strings.h"

namespace cupid {

namespace {

struct ChildRef {
  std::string name;
  bool optional = false;  // '?' or '*' multiplicity
};

struct AttrDecl {
  std::string name;
  std::string type;  // CDATA, ID, IDREF, IDREFS, NMTOKEN, enumeration...
  bool optional = false;
};

struct ElementDecl {
  std::string name;
  std::vector<ChildRef> children;
  std::vector<AttrDecl> attributes;
  bool pcdata = false;
  int declaration_order = 0;
};

/// Extracts `<!KEYWORD ...>` declarations, tolerating comments.
class DtdScanner {
 public:
  explicit DtdScanner(const std::string& text) : s_(text) {}

  /// Next declaration as (keyword, body); false at end of input.
  Result<bool> Next(std::string* keyword, std::string* body) {
    while (pos_ < s_.size()) {
      if (std::isspace(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        continue;
      }
      if (s_.compare(pos_, 4, "<!--") == 0) {
        size_t end = s_.find("-->", pos_);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated DTD comment");
        }
        pos_ = end + 3;
        continue;
      }
      if (s_.compare(pos_, 2, "<!") == 0) {
        size_t end = s_.find('>', pos_);
        if (end == std::string::npos) {
          return Status::ParseError("unterminated DTD declaration");
        }
        std::string inner = s_.substr(pos_ + 2, end - pos_ - 2);
        pos_ = end + 1;
        size_t space = inner.find_first_of(" \t\r\n");
        *keyword = inner.substr(0, space);
        *body = space == std::string::npos ? "" : inner.substr(space + 1);
        return true;
      }
      return Status::ParseError(
          StringFormat("unexpected character '%c' in DTD", s_[pos_]));
    }
    return false;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

/// Pulls the child element references out of a content model, recording
/// '?'/'*' multiplicity as optionality. Group structure beyond that is not
/// needed by the schema model.
void ParseContentModel(std::string_view model, ElementDecl* decl) {
  std::string name;
  auto flush = [&](bool optional) {
    if (name.empty()) return;
    if (name == "#PCDATA") {
      decl->pcdata = true;
    } else if (name != "EMPTY" && name != "ANY") {
      decl->children.push_back({name, optional});
    }
    name.clear();
  };
  for (char c : model) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
        c == '.' || c == '#') {
      name += c;
    } else if (c == '?' || c == '*') {
      flush(/*optional=*/true);
    } else {
      flush(/*optional=*/false);
    }
  }
  flush(false);
}

Status ParseAttList(std::string_view body,
                    std::map<std::string, ElementDecl>* decls) {
  std::vector<std::string> tokens = SplitAny(body, " \t\r\n");
  if (tokens.empty()) return Status::ParseError("empty ATTLIST");
  auto it = decls->find(tokens[0]);
  if (it == decls->end()) {
    return Status::ParseError("ATTLIST for undeclared element '" +
                              tokens[0] + "'");
  }
  // Groups of: name type default. Enumerations "(a|b|c)" count as one type
  // token; defaults are #REQUIRED/#IMPLIED/#FIXED "v"/quoted literal.
  size_t i = 1;
  while (i < tokens.size()) {
    if (i + 2 > tokens.size()) {
      return Status::ParseError("truncated ATTLIST entry for element '" +
                                tokens[0] + "'");
    }
    AttrDecl attr;
    attr.name = tokens[i++];
    attr.type = tokens[i++];
    if (i < tokens.size() &&
        (tokens[i] == "#REQUIRED" || tokens[i] == "#IMPLIED")) {
      attr.optional = tokens[i] == "#IMPLIED";
      ++i;
    } else if (i < tokens.size() && tokens[i] == "#FIXED") {
      i += 2;  // #FIXED "value"
    } else if (i < tokens.size()) {
      ++i;  // default literal
      attr.optional = true;
    }
    it->second.attributes.push_back(std::move(attr));
  }
  return Status::OK();
}

DataType AttrDataType(const std::string& dtd_type) {
  if (dtd_type == "ID" || dtd_type == "IDREF" || dtd_type == "IDREFS") {
    return DataType::kIdRef;
  }
  if (dtd_type == "NMTOKEN" || dtd_type == "NMTOKENS") {
    return DataType::kString;
  }
  return DataType::kString;  // CDATA, enumerations
}

/// Builds the schema graph from the parsed declarations.
class DtdBuilder {
 public:
  DtdBuilder(std::string schema_name,
             std::map<std::string, ElementDecl> decls)
      : schema_(std::move(schema_name)), decls_(std::move(decls)) {}

  Result<Schema> Build() {
    CountReferences();

    // Shared elements (multiple referencing parents) become type
    // definitions instantiated per context.
    for (const auto& [name, decl] : decls_) {
      if (reference_count_[name] > 1) {
        Element type;
        type.name = name;
        type.kind = ElementKind::kTypeDef;
        type.data_type = DataType::kComplex;
        shared_types_[name] = schema_.AddElement(std::move(type), kNoElement);
      }
    }
    // Populate shared type members first, then the containment tree from
    // roots (declared elements nobody references).
    for (const auto& [name, id] : shared_types_) {
      CUPID_RETURN_NOT_OK(PopulateMembers(decls_.at(name), id));
    }
    std::vector<const ElementDecl*> roots;
    for (const auto& [name, decl] : decls_) {
      if (reference_count_[name] == 0) roots.push_back(&decl);
    }
    if (roots.empty() && !decls_.empty()) {
      return Status::CycleDetected(
          "DTD has no root element (every element is referenced)");
    }
    std::sort(roots.begin(), roots.end(),
              [](const ElementDecl* a, const ElementDecl* b) {
                return a->declaration_order < b->declaration_order;
              });
    for (const ElementDecl* root : roots) {
      CUPID_RETURN_NOT_OK(
          InstantiateElement(*root, schema_.root(), /*optional=*/false));
    }
    CUPID_RETURN_NOT_OK(LinkIdRefs());
    CUPID_RETURN_NOT_OK(schema_.Validate());
    return std::move(schema_);
  }

 private:
  void CountReferences() {
    for (const auto& [name, decl] : decls_) {
      reference_count_.emplace(name, 0);
    }
    for (const auto& [name, decl] : decls_) {
      for (const ChildRef& child : decl.children) {
        ++reference_count_[child.name];
      }
    }
  }

  /// Creates the container element for `decl` under `parent` and fills it
  /// (or types it by the shared type definition).
  Status InstantiateElement(const ElementDecl& decl, ElementId parent,
                            bool optional) {
    Element e;
    e.name = decl.name;
    e.kind = decl.children.empty() && decl.attributes.empty()
                 ? ElementKind::kAtomic
                 : ElementKind::kContainer;
    e.data_type = e.kind == ElementKind::kAtomic ? DataType::kString
                                                 : DataType::kComplex;
    e.optional = optional;
    ElementId id = schema_.AddElement(std::move(e), parent);

    auto shared = shared_types_.find(decl.name);
    if (shared != shared_types_.end()) {
      return schema_.AddIsDerivedFrom(id, shared->second);
    }
    return PopulateMembers(decl, id);
  }

  /// Adds `decl`'s attributes and child elements under `owner`.
  Status PopulateMembers(const ElementDecl& decl, ElementId owner) {
    if (!on_path_.insert(decl.name).second) {
      return Status::CycleDetected("recursive DTD element '" + decl.name +
                                   "' (recursive types are unsupported)");
    }
    for (const AttrDecl& attr : decl.attributes) {
      Element a;
      a.name = attr.name;
      a.kind = ElementKind::kAtomic;
      a.data_type = AttrDataType(attr.type);
      a.optional = attr.optional;
      a.is_key = attr.type == "ID";
      ElementId attr_id = schema_.AddElement(std::move(a), owner);
      if (attr.type == "ID") {
        id_attrs_.push_back({owner, attr_id});
      } else if (attr.type == "IDREF" || attr.type == "IDREFS") {
        idref_attrs_.push_back({owner, attr_id});
      }
    }
    for (const ChildRef& child : decl.children) {
      auto it = decls_.find(child.name);
      if (it == decls_.end()) {
        // Child never declared: treat as a string leaf.
        Element leaf;
        leaf.name = child.name;
        leaf.kind = ElementKind::kAtomic;
        leaf.data_type = DataType::kString;
        leaf.optional = child.optional;
        schema_.AddElement(std::move(leaf), owner);
        continue;
      }
      CUPID_RETURN_NOT_OK(
          InstantiateElement(it->second, owner, child.optional));
    }
    on_path_.erase(decl.name);
    return Status::OK();
  }

  /// Reifies ID/IDREF pairs as key + RefInt elements (Section 8.3 / Fig 5).
  Status LinkIdRefs() {
    if (idref_attrs_.empty()) return Status::OK();
    // One key element per ID attribute.
    std::vector<ElementId> keys;
    for (const auto& [owner, attr] : id_attrs_) {
      Element key;
      key.name = schema_.element(owner).name + "_id";
      key.kind = ElementKind::kKey;
      key.not_instantiated = true;
      ElementId key_id = schema_.AddElement(std::move(key), owner);
      CUPID_RETURN_NOT_OK(schema_.AddAggregation(key_id, attr));
      keys.push_back(key_id);
    }
    if (keys.empty()) return Status::OK();  // IDREFs with no IDs: leave bare
    for (const auto& [owner, attr] : idref_attrs_) {
      Element ref;
      ref.name = schema_.element(owner).name + "_" +
                 schema_.element(attr).name + "_ref";
      ref.kind = ElementKind::kRefInt;
      ref.not_instantiated = true;
      ElementId ref_id = schema_.AddElement(std::move(ref), owner);
      CUPID_RETURN_NOT_OK(schema_.AddAggregation(ref_id, attr));
      // The 1:n reference relationship: a single IDREF may reference any of
      // the document's IDs (Section 8.3).
      for (ElementId key : keys) {
        CUPID_RETURN_NOT_OK(schema_.AddReference(ref_id, key));
      }
    }
    return Status::OK();
  }

  Schema schema_;
  std::map<std::string, ElementDecl> decls_;
  std::map<std::string, int> reference_count_;
  std::map<std::string, ElementId> shared_types_;
  std::set<std::string> on_path_;
  std::vector<std::pair<ElementId, ElementId>> id_attrs_;    // (owner, attr)
  std::vector<std::pair<ElementId, ElementId>> idref_attrs_;
};

}  // namespace

Result<Schema> ParseDtd(const std::string& schema_name,
                        const std::string& dtd) {
  DtdScanner scanner(dtd);
  std::map<std::string, ElementDecl> decls;
  int order = 0;
  std::string keyword, body;
  std::vector<std::pair<std::string, std::string>> attlists;
  while (true) {
    CUPID_ASSIGN_OR_RETURN(bool more, scanner.Next(&keyword, &body));
    if (!more) break;
    if (keyword == "ELEMENT") {
      std::vector<std::string> head = SplitAny(body, " \t\r\n");
      if (head.empty()) return Status::ParseError("ELEMENT without a name");
      ElementDecl decl;
      decl.name = head[0];
      decl.declaration_order = order++;
      size_t name_end = body.find(head[0]) + head[0].size();
      ParseContentModel(std::string_view(body).substr(name_end), &decl);
      if (!decls.emplace(decl.name, decl).second) {
        return Status::ParseError("duplicate ELEMENT declaration '" +
                                  decl.name + "'");
      }
    } else if (keyword == "ATTLIST") {
      attlists.emplace_back(keyword, body);  // resolved after all ELEMENTs
    } else if (keyword == "ENTITY" || keyword == "NOTATION" ||
               keyword == "DOCTYPE") {
      continue;  // ignored
    } else {
      return Status::ParseError("unsupported DTD declaration <!" + keyword +
                                ">");
    }
  }
  for (const auto& [kw, attr_body] : attlists) {
    CUPID_RETURN_NOT_OK(ParseAttList(attr_body, &decls));
  }
  if (decls.empty()) {
    return Status::ParseError("DTD declares no elements");
  }
  return DtdBuilder(schema_name, std::move(decls)).Build();
}

Result<Schema> LoadDtdFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open DTD file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string stem = path;
  if (auto slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (auto dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return ParseDtd(stem, buf.str());
}

}  // namespace cupid
