// XML DTD importer. The paper's Section 8.3 names ID/IDREF pairs in DTDs as
// referential constraints; this importer turns a DTD into the generic
// schema model, including RefInt elements for IDREF attributes.
//
// Supported subset:
//
//     <!ELEMENT po (header, lines+, note?)>
//     <!ELEMENT header (#PCDATA)>
//     <!ATTLIST lines count CDATA #REQUIRED
//                     owner IDREF #IMPLIED>
//     <!ATTLIST header id ID #REQUIRED>
//
// * element content models: child names with ?/*/+ suffixes, ',' and '|'
//   separators, nesting parentheses, #PCDATA, EMPTY, ANY;
// * '?'/'*' multiplicity and #IMPLIED attributes map to `optional`;
// * attribute types CDATA -> string, ID -> idref (key-ish), IDREF/IDREFS ->
//   a RefInt element referencing the document's ID-carrying elements;
// * the first declared element is the root of the containment tree;
//   elements referenced by several parents become shared types
//   (IsDerivedFrom), matching how the schema graph models reuse.

#ifndef CUPID_IMPORTERS_DTD_PARSER_H_
#define CUPID_IMPORTERS_DTD_PARSER_H_

#include <string>

#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// \brief Parses DTD text into a schema named `schema_name`.
Result<Schema> ParseDtd(const std::string& schema_name,
                        const std::string& dtd);

/// \brief Reads `path` and calls ParseDtd with the file stem as name.
Result<Schema> LoadDtdFile(const std::string& path);

}  // namespace cupid

#endif  // CUPID_IMPORTERS_DTD_PARSER_H_
