// Format-dispatching schema I/O shared by cupid_cli, the schema repository
// and the cupid_server JSONL protocol: one place that knows which importer
// owns which file extension / format name.

#ifndef CUPID_IMPORTERS_SCHEMA_IO_H_
#define CUPID_IMPORTERS_SCHEMA_IO_H_

#include <string>
#include <string_view>

#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// The source dialects the importers understand.
enum class SchemaFormat {
  kXmlSchema,  ///< XSD-lite XML (importers/xml_schema_loader.h)
  kSqlDdl,     ///< SQL DDL (importers/sql_ddl_parser.h)
  kDtd,        ///< document type definitions (importers/dtd_parser.h)
  kNative,     ///< native ".cupid" text (importers/native_format.h)
};

/// \brief Canonical lowercase name ("xml", "sql", "dtd", "native").
const char* SchemaFormatName(SchemaFormat format);

/// \brief Parses a format name as used by the JSONL protocol: "xml", "sql"
/// / "ddl", "dtd", "native" / "cupid" (case-insensitive).
Result<SchemaFormat> SchemaFormatFromName(std::string_view name);

/// \brief Format of `path` by extension: .xml, .sql/.ddl, .dtd, .cupid.
Result<SchemaFormat> SchemaFormatFromPath(const std::string& path);

/// \brief Parses schema text in the given format. `schema_name` names the
/// root element for the formats that do not embed a name (SQL, DTD); the
/// XML and native formats ignore it in favor of the embedded name.
Result<Schema> ParseSchemaText(SchemaFormat format,
                               const std::string& schema_name,
                               const std::string& text);

/// \brief Loads a schema file, dispatching on the extension. SQL/DTD root
/// names default to the file stem, matching the per-format Load*File
/// helpers.
Result<Schema> LoadSchemaFileAuto(const std::string& path);

}  // namespace cupid

#endif  // CUPID_IMPORTERS_SCHEMA_IO_H_
