// SQL DDL importer: parses a practical subset of CREATE TABLE statements
// into the generic schema model, capturing the constraints Cupid exploits —
// primary keys, foreign keys (as RefInt elements, Section 8.3) and
// NULLability (optional columns).
//
// Supported grammar (case-insensitive keywords, ';'-separated statements,
// '--' line comments):
//
//     CREATE TABLE Orders (
//       OrderID INT PRIMARY KEY,
//       CustomerID INT NOT NULL REFERENCES Customers(CustomerID),
//       Freight DECIMAL(10,2) NULL,
//       PRIMARY KEY (OrderID),
//       FOREIGN KEY (CustomerID) REFERENCES Customers(CustomerID)
//     );
//
// Forward references between tables are allowed (FK edges are resolved
// after all tables are read).

#ifndef CUPID_IMPORTERS_SQL_DDL_PARSER_H_
#define CUPID_IMPORTERS_SQL_DDL_PARSER_H_

#include <string>

#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// \brief Parses DDL text into a schema named `schema_name`.
Result<Schema> ParseSqlDdl(const std::string& schema_name,
                           const std::string& ddl);

/// \brief Reads `path` and calls ParseSqlDdl with the file stem as name.
Result<Schema> LoadSqlDdlFile(const std::string& path);

}  // namespace cupid

#endif  // CUPID_IMPORTERS_SQL_DDL_PARSER_H_
