// Loader from an XSD-like XML dialect into the generic schema model.
//
// Supported document shape:
//
//     <schema name="PurchaseOrder">
//       <element name="Items" minOccurs="0">
//         <element name="Item">
//           <element name="ItemNumber" type="int"/>
//           <attribute name="Quantity" type="decimal" use="optional"/>
//         </element>
//       </element>
//       <complexType name="Address">
//         <attribute name="Street" type="string"/>
//         <attribute name="City" type="string"/>
//       </complexType>
//       <element name="DeliverTo" type="Address"/>   <!-- shared type -->
//     </schema>
//
// * <element> with child elements/attributes -> container;
// * <element type="..."> naming a <complexType> -> container with an
//   IsDerivedFrom edge (type substitution happens at tree build);
// * <element type="..."> naming a simple type -> atomic leaf;
// * <attribute> -> atomic; `use="optional"`/`minOccurs="0"` -> optional.

#ifndef CUPID_IMPORTERS_XML_SCHEMA_LOADER_H_
#define CUPID_IMPORTERS_XML_SCHEMA_LOADER_H_

#include <string>

#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// \brief Parses the document and builds the schema graph.
Result<Schema> LoadXmlSchema(const std::string& xml_text);

/// \brief Reads `path` and calls LoadXmlSchema.
Result<Schema> LoadXmlSchemaFile(const std::string& path);

}  // namespace cupid

#endif  // CUPID_IMPORTERS_XML_SCHEMA_LOADER_H_
