// The native ".cupid" schema text format: a compact, indentation-based
// notation for hierarchical schemas with shared types. Round-trips through
// ParseNativeSchema / SerializeNativeSchema.
//
//     schema PurchaseOrder
//     type Address
//       leaf Street string
//       leaf City string
//     node DeliverTo : Address
//     node InvoiceTo : Address
//     node Items
//       node Item optional
//         leaf ItemNumber integer
//         leaf Quantity decimal optional
//
// Grammar (2-space indentation, '#' comments):
//   schema <name>                  — first non-comment line
//   type <name>                    — shared type definition (top level)
//   node <name> [: <type>] [optional]
//   leaf <name> <datatype> [optional] [key]

#ifndef CUPID_IMPORTERS_NATIVE_FORMAT_H_
#define CUPID_IMPORTERS_NATIVE_FORMAT_H_

#include <string>

#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// \brief Parses the native text format into a schema graph.
Result<Schema> ParseNativeSchema(const std::string& text);

/// \brief Serializes `schema` to the native format. Only containment,
/// IsDerivedFrom and the atomic/optional/key flags are represented; RefInt
/// and view elements are skipped (use the SQL importer for those).
std::string SerializeNativeSchema(const Schema& schema);

/// \brief Reads `path` and calls ParseNativeSchema.
Result<Schema> LoadNativeSchemaFile(const std::string& path);

}  // namespace cupid

#endif  // CUPID_IMPORTERS_NATIVE_FORMAT_H_
