// The native ".cupid" schema text format: a compact, indentation-based
// notation for hierarchical schemas with shared types, keys and referential
// constraints. Round-trips through ParseNativeSchema /
// SerializeNativeSchema.
//
//     schema PurchaseOrder
//     type Address
//       leaf Street string
//       leaf City string
//     node DeliverTo : Address
//     node InvoiceTo : Address
//     node Items
//       node Item optional
//         leaf ItemNumber integer
//         leaf Quantity decimal optional
//     node Orders
//       leaf OrderID integer key
//       key Orders_pk = OrderID
//       ref Orders_Items_fk = OrderID -> PurchaseOrder.Items.Item
//
// Grammar (2-space indentation, '#' comments):
//   schema <name>                  — first non-comment line
//   type <name>                    — shared type definition (top level)
//   node <name> [: <type>] [optional]
//   leaf <name> <datatype> [optional] [key]
//   key <name> [= <member> ...]    — key element aggregating sibling members
//   ref <name> [= <member> ...] -> <path> [<path> ...]
//                                  — referential constraint; paths are dotted
//                                    containment paths (root name included)
//                                    of the referenced key/container, which
//                                    may be defined later in the file
//
// key/ref members are resolved by name among siblings (children of the same
// parent) after the whole file is parsed. View elements are the one
// ElementKind the format does not represent (no importer produces them).

#ifndef CUPID_IMPORTERS_NATIVE_FORMAT_H_
#define CUPID_IMPORTERS_NATIVE_FORMAT_H_

#include <string>

#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// \brief Parses the native text format into a schema graph.
Result<Schema> ParseNativeSchema(const std::string& text);

/// \brief Serializes `schema` to the native format. Only containment,
/// IsDerivedFrom and the atomic/optional/key flags are represented; RefInt
/// and view elements are skipped (use the SQL importer for those).
std::string SerializeNativeSchema(const Schema& schema);

/// \brief Reads `path` and calls ParseNativeSchema.
Result<Schema> LoadNativeSchemaFile(const std::string& path);

}  // namespace cupid

#endif  // CUPID_IMPORTERS_NATIVE_FORMAT_H_
