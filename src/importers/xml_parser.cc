#include "importers/xml_parser.h"

#include <cctype>

#include "util/strings.h"

namespace cupid {

const std::string* XmlNode::Attr(const std::string& name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::string XmlNode::AttrOr(const std::string& name,
                            const std::string& fallback) const {
  const std::string* v = Attr(name);
  return v ? *v : fallback;
}

std::vector<const XmlNode*> XmlNode::ChildrenNamed(
    const std::string& tag_name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& c : children) {
    if (c.tag == tag_name) out.push_back(&c);
  }
  return out;
}

const XmlNode* XmlNode::FirstChild(const std::string& tag_name) const {
  for (const XmlNode& c : children) {
    if (c.tag == tag_name) return &c;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<XmlNode> Parse() {
    SkipProlog();
    XmlNode root;
    CUPID_RETURN_NOT_OK(ParseElement(&root));
    SkipMisc();
    if (pos_ != s_.size()) {
      return Err("trailing content after document element");
    }
    return root;
  }

 private:
  Status Err(const std::string& what) const {
    // Report 1-based line for editor-friendly messages.
    int line = 1;
    for (size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') ++line;
    }
    return Status::ParseError(
        StringFormat("XML line %d: %s", line, what.c_str()));
  }

  bool Eof() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  bool Consume(char c) {
    if (!Eof() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeStr(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }
  void SkipWs() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) ++pos_;
  }

  void SkipProlog() {
    SkipWs();
    while (true) {
      if (ConsumeStr("<?")) {
        size_t end = s_.find("?>", pos_);
        pos_ = end == std::string::npos ? s_.size() : end + 2;
      } else if (ConsumeStr("<!--")) {
        size_t end = s_.find("-->", pos_);
        pos_ = end == std::string::npos ? s_.size() : end + 3;
      } else if (ConsumeStr("<!")) {  // DOCTYPE etc. — skip to '>'
        size_t end = s_.find('>', pos_);
        pos_ = end == std::string::npos ? s_.size() : end + 1;
      } else {
        break;
      }
      SkipWs();
    }
  }
  void SkipMisc() { SkipProlog(); }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (!Eof() && IsNameChar(Peek())) ++pos_;
    if (pos_ == start) return Err("expected a name");
    return s_.substr(start, pos_ - start);
  }

  static std::string DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      auto try_entity = [&](std::string_view ent, char ch) {
        if (raw.compare(i, ent.size(), ent) == 0) {
          out += ch;
          i += ent.size();
          return true;
        }
        return false;
      };
      if (try_entity("&lt;", '<') || try_entity("&gt;", '>') ||
          try_entity("&amp;", '&') || try_entity("&quot;", '"') ||
          try_entity("&apos;", '\'')) {
        continue;
      }
      out += raw[i++];
    }
    return out;
  }

  Status ParseAttributes(XmlNode* node) {
    while (true) {
      SkipWs();
      if (Eof()) return Err("unterminated start tag");
      if (Peek() == '>' || Peek() == '/' || Peek() == '?') return Status::OK();
      CUPID_ASSIGN_OR_RETURN(std::string name, ParseName());
      SkipWs();
      if (!Consume('=')) return Err("expected '=' in attribute");
      SkipWs();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Err("expected quoted attribute value");
      }
      ++pos_;
      size_t start = pos_;
      while (!Eof() && Peek() != quote) ++pos_;
      if (Eof()) return Err("unterminated attribute value");
      node->attributes.emplace_back(
          std::move(name),
          DecodeEntities(std::string_view(s_).substr(start, pos_ - start)));
      ++pos_;  // closing quote
    }
  }

  Status ParseElement(XmlNode* node) {
    if (!Consume('<')) return Err("expected '<'");
    CUPID_ASSIGN_OR_RETURN(node->tag, ParseName());
    CUPID_RETURN_NOT_OK(ParseAttributes(node));
    SkipWs();
    if (ConsumeStr("/>")) return Status::OK();
    if (!Consume('>')) return Err("expected '>' to close start tag");

    std::string text;
    while (true) {
      if (Eof()) return Err("unexpected end of input inside <" + node->tag + ">");
      if (ConsumeStr("<!--")) {
        size_t end = s_.find("-->", pos_);
        if (end == std::string::npos) return Err("unterminated comment");
        pos_ = end + 3;
        continue;
      }
      if (ConsumeStr("<![CDATA[")) {
        size_t end = s_.find("]]>", pos_);
        if (end == std::string::npos) return Err("unterminated CDATA");
        text.append(s_, pos_, end - pos_);
        pos_ = end + 3;
        continue;
      }
      if (ConsumeStr("</")) {
        CUPID_ASSIGN_OR_RETURN(std::string closing, ParseName());
        if (closing != node->tag) {
          return Err("mismatched end tag </" + closing + "> for <" +
                     node->tag + ">");
        }
        SkipWs();
        if (!Consume('>')) return Err("expected '>' in end tag");
        node->text = std::string(TrimWhitespace(DecodeEntities(text)));
        return Status::OK();
      }
      if (Peek() == '<') {
        XmlNode child;
        CUPID_RETURN_NOT_OK(ParseElement(&child));
        node->children.push_back(std::move(child));
        continue;
      }
      text += s_[pos_++];
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<XmlNode> ParseXml(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace cupid
