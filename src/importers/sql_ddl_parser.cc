#include "importers/sql_ddl_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "schema/schema_builder.h"
#include "util/strings.h"

namespace cupid {

namespace {

// ------------------------------------------------------------- tokenizer --

struct SqlToken {
  enum Kind { kWord, kPunct, kEnd } kind = kEnd;
  std::string text;  // words upper-cased for keyword checks; original kept
  std::string raw;
  int line = 1;
};

class SqlLexer {
 public:
  explicit SqlLexer(const std::string& text) : s_(text) { Advance(); }

  const SqlToken& cur() const { return cur_; }

  void Advance() {
    SkipWsAndComments();
    cur_.line = line_;
    if (pos_ >= s_.size()) {
      cur_ = {SqlToken::kEnd, "", "", line_};
      return;
    }
    char c = s_[pos_];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '"') {
      bool quoted = c == '"';
      if (quoted) ++pos_;
      size_t start = pos_;
      while (pos_ < s_.size()) {
        char d = s_[pos_];
        if (quoted ? d != '"'
                   : (std::isalnum(static_cast<unsigned char>(d)) ||
                      d == '_')) {
          ++pos_;
        } else {
          break;
        }
      }
      std::string raw = s_.substr(start, pos_ - start);
      if (quoted && pos_ < s_.size()) ++pos_;  // closing quote
      cur_ = {SqlToken::kWord, ToUpperAscii(raw), raw, line_};
      return;
    }
    ++pos_;
    cur_ = {SqlToken::kPunct, std::string(1, c), std::string(1, c), line_};
  }

 private:
  void SkipWsAndComments() {
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '-') {
        while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
  int line_ = 1;
  SqlToken cur_;
};

// ---------------------------------------------------------------- parser --

struct PendingFk {
  std::string name;
  ElementId table;
  std::vector<std::string> columns;
  std::string target_table;
  int line;
};

class DdlParser {
 public:
  DdlParser(const std::string& schema_name, const std::string& ddl)
      : builder_(schema_name), lex_(ddl) {}

  Result<Schema> Parse() {
    while (lex_.cur().kind != SqlToken::kEnd) {
      if (!IsWord("CREATE")) {
        return Err("expected CREATE");
      }
      lex_.Advance();
      if (!IsWord("TABLE")) return Err("only CREATE TABLE is supported");
      lex_.Advance();
      CUPID_RETURN_NOT_OK(ParseTable());
      // Optional statement separator.
      if (IsPunct(";")) lex_.Advance();
    }
    CUPID_RETURN_NOT_OK(ResolveForeignKeys());
    Schema schema = std::move(builder_).Build();
    CUPID_RETURN_NOT_OK(schema.Validate());
    return schema;
  }

 private:
  bool IsWord(std::string_view w) const {
    return lex_.cur().kind == SqlToken::kWord && lex_.cur().text == w;
  }
  bool IsPunct(std::string_view p) const {
    return lex_.cur().kind == SqlToken::kPunct && lex_.cur().text == p;
  }
  Status Err(const std::string& what) const {
    return Status::ParseError(StringFormat("DDL line %d: %s (near '%s')",
                                           lex_.cur().line, what.c_str(),
                                           lex_.cur().raw.c_str()));
  }
  Status Expect(std::string_view p) {
    if (!IsPunct(p)) return Err("expected '" + std::string(p) + "'");
    lex_.Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (lex_.cur().kind != SqlToken::kWord) return Err("expected identifier");
    std::string raw = lex_.cur().raw;
    lex_.Advance();
    return raw;
  }

  Status ParseTable() {
    CUPID_ASSIGN_OR_RETURN(std::string table_name, ExpectIdentifier());
    ElementId table = builder_.AddTable(table_name);
    tables_[ToUpperAscii(table_name)] = table;
    CUPID_RETURN_NOT_OK(Expect("("));

    std::vector<ElementId> pk_columns;
    while (true) {
      if (IsWord("PRIMARY")) {
        CUPID_RETURN_NOT_OK(ParseTablePrimaryKey(table, &pk_columns));
      } else if (IsWord("FOREIGN")) {
        CUPID_RETURN_NOT_OK(ParseTableForeignKey(table));
      } else if (IsWord("CONSTRAINT")) {
        lex_.Advance();
        CUPID_RETURN_NOT_OK(ExpectIdentifier().status());  // constraint name
        continue;  // next loop iteration sees PRIMARY/FOREIGN
      } else {
        CUPID_RETURN_NOT_OK(ParseColumn(table, &pk_columns));
      }
      if (IsPunct(",")) {
        lex_.Advance();
        continue;
      }
      break;
    }
    CUPID_RETURN_NOT_OK(Expect(")"));
    if (!pk_columns.empty()) {
      builder_.SetPrimaryKey(table, pk_columns);
    }
    return Status::OK();
  }

  Status ParseColumn(ElementId table, std::vector<ElementId>* pk_columns) {
    CUPID_ASSIGN_OR_RETURN(std::string col_name, ExpectIdentifier());
    CUPID_ASSIGN_OR_RETURN(std::string type_name, ParseTypeName());
    CUPID_ASSIGN_OR_RETURN(DataType dt, DataTypeFromName(type_name));

    bool optional = true;  // SQL columns are NULLable by default
    bool is_pk = false;
    std::string fk_target;
    while (lex_.cur().kind == SqlToken::kWord) {
      if (IsWord("NOT")) {
        lex_.Advance();
        if (!IsWord("NULL")) return Err("expected NULL after NOT");
        lex_.Advance();
        optional = false;
      } else if (IsWord("NULL")) {
        lex_.Advance();
        optional = true;
      } else if (IsWord("PRIMARY")) {
        lex_.Advance();
        if (!IsWord("KEY")) return Err("expected KEY after PRIMARY");
        lex_.Advance();
        is_pk = true;
        optional = false;
      } else if (IsWord("UNIQUE") || IsWord("DEFAULT")) {
        bool had_default = IsWord("DEFAULT");
        lex_.Advance();
        if (had_default && lex_.cur().kind == SqlToken::kWord) lex_.Advance();
      } else if (IsWord("REFERENCES")) {
        lex_.Advance();
        CUPID_ASSIGN_OR_RETURN(fk_target, ExpectIdentifier());
        // Optional "(col)" — the referenced key is resolved via the target
        // table's primary key, so the column list is consumed and ignored.
        if (IsPunct("(")) {
          CUPID_RETURN_NOT_OK(SkipParenGroup());
        }
      } else {
        break;
      }
    }

    ElementId col = builder_.AddColumn(table, col_name, dt, optional);
    if (is_pk) pk_columns->push_back(col);
    if (!fk_target.empty()) {
      std::string table_name = builder_.schema().element(table).name;
      pending_fks_.push_back({table_name + "_" + fk_target + "_fk",
                              table,
                              {col_name},
                              fk_target,
                              lex_.cur().line});
    }
    return Status::OK();
  }

  Result<std::string> ParseTypeName() {
    if (lex_.cur().kind != SqlToken::kWord) return Err("expected a type name");
    std::string type = lex_.cur().raw;
    lex_.Advance();
    // Multi-word types: DOUBLE PRECISION, CHARACTER VARYING.
    if (EqualsIgnoreCase(type, "double") && IsWord("PRECISION")) {
      lex_.Advance();
    } else if (EqualsIgnoreCase(type, "character") && IsWord("VARYING")) {
      type = "varchar";
      lex_.Advance();
    }
    if (IsPunct("(")) CUPID_RETURN_NOT_OK(SkipParenGroup());
    return type;
  }

  Status SkipParenGroup() {
    CUPID_RETURN_NOT_OK(Expect("("));
    int depth = 1;
    while (depth > 0) {
      if (lex_.cur().kind == SqlToken::kEnd) {
        return Err("unterminated '(' group");
      }
      if (IsPunct("(")) ++depth;
      if (IsPunct(")")) --depth;
      lex_.Advance();
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ParseColumnList() {
    CUPID_RETURN_NOT_OK(Expect("("));
    std::vector<std::string> cols;
    while (true) {
      CUPID_ASSIGN_OR_RETURN(std::string c, ExpectIdentifier());
      cols.push_back(std::move(c));
      if (IsPunct(",")) {
        lex_.Advance();
        continue;
      }
      break;
    }
    CUPID_RETURN_NOT_OK(Expect(")"));
    return cols;
  }

  Status ParseTablePrimaryKey(ElementId table,
                              std::vector<ElementId>* pk_columns) {
    lex_.Advance();  // PRIMARY
    if (!IsWord("KEY")) return Err("expected KEY after PRIMARY");
    lex_.Advance();
    CUPID_ASSIGN_OR_RETURN(std::vector<std::string> cols, ParseColumnList());
    for (const std::string& c : cols) {
      ElementId col = FindColumn(table, c);
      if (col == kNoElement) {
        return Err("PRIMARY KEY references unknown column '" + c + "'");
      }
      pk_columns->push_back(col);
    }
    return Status::OK();
  }

  Status ParseTableForeignKey(ElementId table) {
    lex_.Advance();  // FOREIGN
    if (!IsWord("KEY")) return Err("expected KEY after FOREIGN");
    lex_.Advance();
    CUPID_ASSIGN_OR_RETURN(std::vector<std::string> cols, ParseColumnList());
    if (!IsWord("REFERENCES")) return Err("expected REFERENCES");
    lex_.Advance();
    CUPID_ASSIGN_OR_RETURN(std::string target, ExpectIdentifier());
    if (IsPunct("(")) CUPID_RETURN_NOT_OK(SkipParenGroup());
    std::string table_name = builder_.schema().element(table).name;
    pending_fks_.push_back({table_name + "_" + target + "_fk", table, cols,
                            target, lex_.cur().line});
    return Status::OK();
  }

  ElementId FindColumn(ElementId table, const std::string& name) const {
    for (ElementId c : builder_.schema().children(table)) {
      if (EqualsIgnoreCase(builder_.schema().element(c).name, name)) return c;
    }
    return kNoElement;
  }

  Status ResolveForeignKeys() {
    for (const PendingFk& fk : pending_fks_) {
      auto it = tables_.find(ToUpperAscii(fk.target_table));
      if (it == tables_.end()) {
        return Status::ParseError(StringFormat(
            "DDL line %d: foreign key references unknown table '%s'", fk.line,
            fk.target_table.c_str()));
      }
      std::vector<ElementId> cols;
      for (const std::string& c : fk.columns) {
        ElementId col = FindColumn(fk.table, c);
        if (col == kNoElement) {
          return Status::ParseError(StringFormat(
              "DDL line %d: foreign key uses unknown column '%s'", fk.line,
              c.c_str()));
        }
        cols.push_back(col);
      }
      builder_.AddForeignKey(fk.name, fk.table, cols, it->second);
    }
    return Status::OK();
  }

  RelationalSchemaBuilder builder_;
  SqlLexer lex_;
  std::unordered_map<std::string, ElementId> tables_;
  std::vector<PendingFk> pending_fks_;
};

}  // namespace

Result<Schema> ParseSqlDdl(const std::string& schema_name,
                           const std::string& ddl) {
  return DdlParser(schema_name, ddl).Parse();
}

Result<Schema> LoadSqlDdlFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open DDL file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  // File stem as schema name.
  std::string stem = path;
  if (auto slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (auto dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return ParseSqlDdl(stem, buf.str());
}

}  // namespace cupid
