// A minimal, dependency-free XML parser — enough to read schema documents
// (elements, attributes, text, comments, self-closing tags, XML
// declarations). Not a general-purpose XML library: no namespaces beyond
// prefix passthrough, no DTD processing, no entities other than the five
// predefined ones.

#ifndef CUPID_IMPORTERS_XML_PARSER_H_
#define CUPID_IMPORTERS_XML_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace cupid {

/// One element of the parsed document tree.
struct XmlNode {
  std::string tag;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;
  /// Concatenated character data directly inside this element, trimmed.
  std::string text;

  /// Value of attribute `name`, or nullptr.
  const std::string* Attr(const std::string& name) const;

  /// Value of attribute `name`, or `fallback`.
  std::string AttrOr(const std::string& name,
                     const std::string& fallback) const;

  /// Children whose tag equals `tag`.
  std::vector<const XmlNode*> ChildrenNamed(const std::string& tag) const;

  /// First child with tag `tag`, or nullptr.
  const XmlNode* FirstChild(const std::string& tag) const;
};

/// \brief Parses `text` into a document tree; returns the root element.
/// ParseError on malformed input (mismatched tags, unterminated constructs).
Result<XmlNode> ParseXml(const std::string& text);

}  // namespace cupid

#endif  // CUPID_IMPORTERS_XML_PARSER_H_
