#include "importers/schema_io.h"

#include "importers/dtd_parser.h"
#include "importers/native_format.h"
#include "importers/sql_ddl_parser.h"
#include "importers/xml_schema_loader.h"
#include "util/strings.h"

namespace cupid {

const char* SchemaFormatName(SchemaFormat format) {
  switch (format) {
    case SchemaFormat::kXmlSchema: return "xml";
    case SchemaFormat::kSqlDdl: return "sql";
    case SchemaFormat::kDtd: return "dtd";
    case SchemaFormat::kNative: return "native";
  }
  return "?";
}

Result<SchemaFormat> SchemaFormatFromName(std::string_view name) {
  std::string n = ToLowerAscii(name);
  if (n == "xml") return SchemaFormat::kXmlSchema;
  if (n == "sql" || n == "ddl") return SchemaFormat::kSqlDdl;
  if (n == "dtd") return SchemaFormat::kDtd;
  if (n == "native" || n == "cupid") return SchemaFormat::kNative;
  return Status::Unsupported("unknown schema format: " + n);
}

Result<SchemaFormat> SchemaFormatFromPath(const std::string& path) {
  if (EndsWith(path, ".xml")) return SchemaFormat::kXmlSchema;
  if (EndsWith(path, ".sql") || EndsWith(path, ".ddl")) {
    return SchemaFormat::kSqlDdl;
  }
  if (EndsWith(path, ".dtd")) return SchemaFormat::kDtd;
  if (EndsWith(path, ".cupid")) return SchemaFormat::kNative;
  return Status::Unsupported(
      "unrecognized schema extension (want .xml, .sql/.ddl, .dtd or "
      ".cupid): " +
      path);
}

Result<Schema> ParseSchemaText(SchemaFormat format,
                               const std::string& schema_name,
                               const std::string& text) {
  switch (format) {
    case SchemaFormat::kXmlSchema: return LoadXmlSchema(text);
    case SchemaFormat::kSqlDdl: return ParseSqlDdl(schema_name, text);
    case SchemaFormat::kDtd: return ParseDtd(schema_name, text);
    case SchemaFormat::kNative: return ParseNativeSchema(text);
  }
  return Status::Internal("unhandled schema format");
}

Result<Schema> LoadSchemaFileAuto(const std::string& path) {
  CUPID_ASSIGN_OR_RETURN(SchemaFormat format, SchemaFormatFromPath(path));
  switch (format) {
    case SchemaFormat::kXmlSchema: return LoadXmlSchemaFile(path);
    case SchemaFormat::kSqlDdl: return LoadSqlDdlFile(path);
    case SchemaFormat::kDtd: return LoadDtdFile(path);
    case SchemaFormat::kNative: return LoadNativeSchemaFile(path);
  }
  return Status::Internal("unhandled schema format");
}

}  // namespace cupid
