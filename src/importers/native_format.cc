#include "importers/native_format.h"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "schema/schema_builder.h"
#include "util/strings.h"

namespace cupid {

namespace {

struct Line {
  int number;
  int depth;  // indentation level (2 spaces per level)
  std::vector<std::string> words;
};

Result<std::vector<Line>> SplitLines(const std::string& text) {
  std::vector<Line> out;
  std::istringstream in(text);
  std::string raw;
  int number = 0;
  while (std::getline(in, raw)) {
    ++number;
    // Strip comments.
    if (auto hash = raw.find('#'); hash != std::string::npos) {
      raw = raw.substr(0, hash);
    }
    size_t indent = 0;
    while (indent < raw.size() && raw[indent] == ' ') ++indent;
    if (TrimWhitespace(raw).empty()) continue;
    if (indent % 2 != 0) {
      return Status::ParseError(
          StringFormat("line %d: odd indentation (use 2 spaces per level)",
                       number));
    }
    out.push_back({number, static_cast<int>(indent / 2),
                   SplitAny(TrimWhitespace(raw), " \t")});
  }
  return out;
}

}  // namespace

Result<Schema> ParseNativeSchema(const std::string& text) {
  CUPID_ASSIGN_OR_RETURN(std::vector<Line> lines, SplitLines(text));
  if (lines.empty() || lines[0].words[0] != "schema" ||
      lines[0].words.size() != 2) {
    return Status::ParseError("first line must be 'schema <name>'");
  }
  XmlSchemaBuilder builder(lines[0].words[1]);

  // Forward-declare types (pass 1) so nodes may reference types defined
  // later in the file.
  std::unordered_map<std::string, ElementId> types;
  for (const Line& line : lines) {
    if (line.words[0] == "type") {
      if (line.words.size() != 2 || line.depth != 0) {
        return Status::ParseError(StringFormat(
            "line %d: expected top-level 'type <name>'", line.number));
      }
      if (types.count(line.words[1])) {
        return Status::ParseError(StringFormat("line %d: duplicate type '%s'",
                                               line.number,
                                               line.words[1].c_str()));
      }
      types[line.words[1]] = builder.AddComplexType(line.words[1]);
    }
  }

  // key/ref member names and ref target paths are resolved after the whole
  // file is parsed (targets may be forward references).
  struct PendingEdges {
    int line_number;
    ElementId owner;
    ElementId parent;
    std::vector<std::string> members;  // sibling names to aggregate
    std::vector<std::string> targets;  // dotted paths to reference (ref only)
  };
  std::vector<PendingEdges> pending;

  // Pass 2: build the tree. parents[d] = element open at depth d.
  std::vector<ElementId> parents{builder.root()};
  for (size_t i = 1; i < lines.size(); ++i) {
    const Line& line = lines[i];
    const std::string& kind = line.words[0];

    if (kind == "type") {
      parents.resize(1);
      parents.push_back(types[line.words[1]]);
      continue;
    }
    if (kind == "key" || kind == "ref") {
      if (line.words.size() < 2) {
        return Status::ParseError(
            StringFormat("line %d: missing name", line.number));
      }
      if (line.depth >= static_cast<int>(parents.size())) {
        return Status::ParseError(
            StringFormat("line %d: indentation jumps a level", line.number));
      }
      parents.resize(static_cast<size_t>(line.depth) + 1);
      PendingEdges edges;
      edges.line_number = line.number;
      edges.parent = parents[static_cast<size_t>(line.depth)];
      // `key N = A B` / `ref N = A B -> P [P ...]` / `ref N -> P`.
      size_t w = 2;
      bool in_targets = false;
      if (w < line.words.size() && line.words[w] == "=") ++w;
      for (; w < line.words.size(); ++w) {
        if (line.words[w] == "->") {
          if (kind == "key" || in_targets) {
            return Status::ParseError(StringFormat(
                "line %d: unexpected '->'", line.number));
          }
          in_targets = true;
        } else if (in_targets) {
          edges.targets.push_back(line.words[w]);
        } else {
          edges.members.push_back(line.words[w]);
        }
      }
      if (kind == "ref" && edges.targets.empty()) {
        return Status::ParseError(StringFormat(
            "line %d: 'ref' needs '-> <path>'", line.number));
      }
      Element el;
      el.name = line.words[1];
      el.kind = kind == "key" ? ElementKind::kKey : ElementKind::kRefInt;
      el.not_instantiated = true;
      edges.owner = builder.mutable_schema()->AddElement(std::move(el),
                                                         edges.parent);
      ElementId owner = edges.owner;
      pending.push_back(std::move(edges));
      // Keys/refs never have children; keep depths aligned like leaves do.
      parents.push_back(owner);
      continue;
    }
    if (kind != "node" && kind != "leaf") {
      return Status::ParseError(StringFormat(
          "line %d: unknown keyword '%s'", line.number, kind.c_str()));
    }
    if (line.words.size() < 2) {
      return Status::ParseError(
          StringFormat("line %d: missing name", line.number));
    }
    if (line.depth >= static_cast<int>(parents.size())) {
      return Status::ParseError(
          StringFormat("line %d: indentation jumps a level", line.number));
    }
    parents.resize(static_cast<size_t>(line.depth) + 1);
    ElementId parent = parents[static_cast<size_t>(line.depth)];
    const std::string& name = line.words[1];

    if (kind == "node") {
      bool optional = false;
      std::string type_ref;
      for (size_t w = 2; w < line.words.size(); ++w) {
        if (line.words[w] == ":") {
          if (w + 1 >= line.words.size()) {
            return Status::ParseError(StringFormat(
                "line %d: ':' must be followed by a type name", line.number));
          }
          type_ref = line.words[++w];
        } else if (line.words[w] == "optional") {
          optional = true;
        } else {
          return Status::ParseError(StringFormat("line %d: unexpected '%s'",
                                                 line.number,
                                                 line.words[w].c_str()));
        }
      }
      ElementId el = builder.AddElement(parent, name, optional);
      if (!type_ref.empty()) {
        auto it = types.find(type_ref);
        if (it == types.end()) {
          return Status::ParseError(StringFormat(
              "line %d: unknown type '%s'", line.number, type_ref.c_str()));
        }
        CUPID_RETURN_NOT_OK(builder.SetType(el, it->second));
      }
      parents.push_back(el);
    } else {  // leaf
      if (line.words.size() < 3) {
        return Status::ParseError(StringFormat(
            "line %d: 'leaf <name> <datatype>' expected", line.number));
      }
      CUPID_ASSIGN_OR_RETURN(DataType dt, DataTypeFromName(line.words[2]));
      bool optional = false, key = false;
      for (size_t w = 3; w < line.words.size(); ++w) {
        if (line.words[w] == "optional") {
          optional = true;
        } else if (line.words[w] == "key") {
          key = true;
        } else {
          return Status::ParseError(StringFormat("line %d: unexpected '%s'",
                                                 line.number,
                                                 line.words[w].c_str()));
        }
      }
      ElementId leaf = builder.AddAttribute(parent, name, dt, optional);
      if (key) {
        builder.mutable_schema()->mutable_element(leaf)->is_key = true;
      }
      parents.push_back(leaf);  // keeps depths aligned; leaves get no kids
    }
  }

  // Pass 3: resolve key/ref members (by name among siblings) and ref
  // targets (by dotted path anywhere in the schema).
  Schema* s = builder.mutable_schema();
  for (const PendingEdges& edges : pending) {
    for (const std::string& member : edges.members) {
      ElementId resolved = kNoElement;
      for (ElementId sibling : s->children(edges.parent)) {
        if (sibling != edges.owner && s->element(sibling).name == member) {
          resolved = sibling;
          break;
        }
      }
      if (resolved == kNoElement) {
        return Status::ParseError(StringFormat(
            "line %d: unknown member '%s'", edges.line_number,
            member.c_str()));
      }
      CUPID_RETURN_NOT_OK(s->AddAggregation(edges.owner, resolved));
    }
    for (const std::string& target : edges.targets) {
      ElementId resolved = s->FindByPath(target);
      if (resolved == kNoElement) {
        return Status::ParseError(StringFormat(
            "line %d: unresolvable reference target '%s'", edges.line_number,
            target.c_str()));
      }
      CUPID_RETURN_NOT_OK(s->AddReference(edges.owner, resolved));
    }
  }

  Schema schema = std::move(builder).Build();
  CUPID_RETURN_NOT_OK(schema.Validate());
  return schema;
}

namespace {

void SerializeElement(const Schema& s, ElementId id, int depth,
                      std::string* out) {
  const Element& e = s.element(id);
  if (e.kind == ElementKind::kView) return;  // not representable
  if (e.kind == ElementKind::kKey || e.kind == ElementKind::kRefInt) {
    out->append(static_cast<size_t>(depth) * 2, ' ');
    out->append(e.kind == ElementKind::kKey ? "key " : "ref ");
    out->append(e.name);
    if (!s.aggregates(id).empty()) {
      out->append(" =");
      for (ElementId member : s.aggregates(id)) {
        out->append(" ");
        out->append(s.element(member).name);
      }
    }
    if (e.kind == ElementKind::kRefInt) {
      out->append(" ->");
      for (ElementId target : s.references(id)) {
        out->append(" ");
        out->append(s.PathName(target));
      }
    }
    out->append("\n");
    return;
  }
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (e.kind == ElementKind::kAtomic) {
    out->append("leaf ");
    out->append(e.name);
    out->append(" ");
    out->append(DataTypeName(e.data_type));
    if (e.optional) out->append(" optional");
    if (e.is_key) out->append(" key");
  } else {
    out->append(depth == 0 && e.kind == ElementKind::kTypeDef ? "type "
                                                              : "node ");
    out->append(e.name);
    if (!s.derived_from(id).empty()) {
      out->append(" : ");
      out->append(s.element(s.derived_from(id)[0]).name);
    }
    if (e.optional) out->append(" optional");
  }
  out->append("\n");
  for (ElementId c : s.children(id)) {
    SerializeElement(s, c, depth + 1, out);
  }
}

}  // namespace

std::string SerializeNativeSchema(const Schema& schema) {
  std::string out = "schema " + schema.name() + "\n";
  for (ElementId id : schema.AllElements()) {
    if (id == schema.root()) continue;
    if (schema.parent(id) == kNoElement &&
        schema.element(id).kind == ElementKind::kTypeDef) {
      SerializeElement(schema, id, 0, &out);
    }
  }
  for (ElementId c : schema.children(schema.root())) {
    SerializeElement(schema, c, 0, &out);
  }
  return out;
}

Result<Schema> LoadNativeSchemaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open schema file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseNativeSchema(buf.str());
}

}  // namespace cupid
