#include "mapping/mapping_io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace cupid {

namespace {
constexpr const char* kHeader = "# cupid mapping v1";
}

std::string SerializeMapping(const Mapping& mapping) {
  std::string out = std::string(kHeader) + "\n";
  out += "mapping " + mapping.source_schema + " -> " +
         mapping.target_schema + "\n";
  for (const MappingElement& e : mapping.elements) {
    out += StringFormat("%s|%s|%.6f|%.6f|%.6f\n", e.source_path.c_str(),
                        e.target_path.c_str(), e.wsim, e.ssim, e.lsim);
  }
  return out;
}

Result<Mapping> ParseMapping(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  Mapping out;
  bool saw_header = false, saw_schemas = false;
  auto err = [&](const std::string& what) {
    return Status::ParseError(
        StringFormat("mapping line %d: %s", lineno, what.c_str()));
  };
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed[0] == '#') {
      saw_header |= trimmed == kHeader;
      continue;
    }
    if (StartsWith(trimmed, "mapping ")) {
      size_t arrow = trimmed.find(" -> ");
      if (arrow == std::string_view::npos) {
        return err("expected 'mapping <source> -> <target>'");
      }
      out.source_schema =
          std::string(TrimWhitespace(trimmed.substr(8, arrow - 8)));
      out.target_schema = std::string(TrimWhitespace(trimmed.substr(arrow + 4)));
      if (out.source_schema.empty() || out.target_schema.empty()) {
        return err("empty schema name");
      }
      saw_schemas = true;
      continue;
    }
    if (!saw_schemas) {
      return err("mapping elements before the 'mapping' header line");
    }
    std::vector<std::string> fields = SplitAny(trimmed, "|");
    if (fields.size() != 5) {
      return err("expected 5 '|'-separated fields");
    }
    MappingElement e;
    e.source_path = fields[0];
    e.target_path = fields[1];
    char* end = nullptr;
    e.wsim = std::strtod(fields[2].c_str(), &end);
    if (end == fields[2].c_str()) return err("bad wsim");
    e.ssim = std::strtod(fields[3].c_str(), &end);
    if (end == fields[3].c_str()) return err("bad ssim");
    e.lsim = std::strtod(fields[4].c_str(), &end);
    if (end == fields[4].c_str()) return err("bad lsim");
    if (e.wsim < 0.0 || e.wsim > 1.0 || e.ssim < 0.0 || e.ssim > 1.0 ||
        e.lsim < 0.0 || e.lsim > 1.0) {
      return err("similarities must be within [0,1]");
    }
    out.elements.push_back(std::move(e));
  }
  if (!saw_schemas) {
    return Status::ParseError("mapping file has no 'mapping' header line");
  }
  (void)saw_header;  // tolerated if absent: hand-written files
  return out;
}

Status SaveMapping(const Mapping& mapping, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot write mapping file: " + path);
  out << SerializeMapping(mapping);
  return out.good() ? Status::OK() : Status::IoError("write failed: " + path);
}

Result<Mapping> LoadMapping(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open mapping file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseMapping(buf.str());
}

}  // namespace cupid
