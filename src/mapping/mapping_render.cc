#include "mapping/mapping_render.h"

#include "util/json.h"
#include "util/strings.h"

namespace cupid {

std::string RenderMappingText(const Mapping& mapping) {
  std::string out = StringFormat("Mapping %s -> %s (%zu elements)\n",
                                 mapping.source_schema.c_str(),
                                 mapping.target_schema.c_str(),
                                 mapping.elements.size());
  for (const MappingElement& e : mapping.elements) {
    out += StringFormat("  %s -> %s  (wsim=%.3f ssim=%.3f lsim=%.3f)\n",
                        e.source_path.c_str(), e.target_path.c_str(), e.wsim,
                        e.ssim, e.lsim);
  }
  return out;
}

std::string RenderMappingJson(const Mapping& mapping) {
  std::string out = "{\n";
  out += StringFormat("  \"source_schema\": \"%s\",\n",
                      JsonEscape(mapping.source_schema).c_str());
  out += StringFormat("  \"target_schema\": \"%s\",\n",
                      JsonEscape(mapping.target_schema).c_str());
  out += "  \"elements\": [\n";
  for (size_t i = 0; i < mapping.elements.size(); ++i) {
    const MappingElement& e = mapping.elements[i];
    out += StringFormat(
        "    {\"source\": \"%s\", \"target\": \"%s\", "
        "\"wsim\": %.6f, \"ssim\": %.6f, \"lsim\": %.6f}%s\n",
        JsonEscape(e.source_path).c_str(), JsonEscape(e.target_path).c_str(),
        e.wsim, e.ssim, e.lsim, i + 1 < mapping.elements.size() ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace cupid
