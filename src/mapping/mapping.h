// Mappings — the output of the Match operation (Section 2 of the paper).
//
// A mapping is a set of mapping elements, each relating one node of the
// source schema tree to one node of the target schema tree, qualified by
// context (the full tree path), with its similarity coefficients attached.
// Mappings are non-directional in meaning; "source"/"target" only name the
// two input roles.

#ifndef CUPID_MAPPING_MAPPING_H_
#define CUPID_MAPPING_MAPPING_H_

#include <string>
#include <vector>

#include "tree/schema_tree.h"

namespace cupid {

/// One correspondence between a source and a target schema-tree node.
struct MappingElement {
  TreeNodeId source = kNoTreeNode;
  TreeNodeId target = kNoTreeNode;
  /// Context-qualified paths ("PurchaseOrder.DeliverTo.Address.Street").
  std::string source_path;
  std::string target_path;
  double wsim = 0.0;
  double ssim = 0.0;
  double lsim = 0.0;
};

/// A set of mapping elements between two schemas.
struct Mapping {
  std::string source_schema;
  std::string target_schema;
  std::vector<MappingElement> elements;

  /// True if some element maps `source_path` to `target_path`.
  bool ContainsPair(const std::string& source_path,
                    const std::string& target_path) const;

  /// All elements whose target is `target_path` (useful with 1:n output).
  std::vector<MappingElement> ForTarget(const std::string& target_path) const;

  size_t size() const { return elements.size(); }
  bool empty() const { return elements.empty(); }
};

}  // namespace cupid

#endif  // CUPID_MAPPING_MAPPING_H_
