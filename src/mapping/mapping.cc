#include "mapping/mapping.h"

namespace cupid {

bool Mapping::ContainsPair(const std::string& source_path,
                           const std::string& target_path) const {
  for (const MappingElement& e : elements) {
    if (e.source_path == source_path && e.target_path == target_path) {
      return true;
    }
  }
  return false;
}

std::vector<MappingElement> Mapping::ForTarget(
    const std::string& target_path) const {
  std::vector<MappingElement> out;
  for (const MappingElement& e : elements) {
    if (e.target_path == target_path) out.push_back(e);
  }
  return out;
}

}  // namespace cupid
