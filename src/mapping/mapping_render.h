// Rendering of mappings for humans and downstream tools. The paper displayed
// mappings in BizTalk Mapper; these renderers replace that display path with
// plain text and JSON.

#ifndef CUPID_MAPPING_MAPPING_RENDER_H_
#define CUPID_MAPPING_MAPPING_RENDER_H_

#include <string>

#include "mapping/mapping.h"

namespace cupid {

/// \brief One line per mapping element:
/// "src.path -> tgt.path  (wsim=0.82 ssim=0.91 lsim=0.73)".
std::string RenderMappingText(const Mapping& mapping);

/// \brief JSON document with schema names and an `elements` array. Paths are
/// escaped; suitable for consumption by query-discovery tooling.
std::string RenderMappingJson(const Mapping& mapping);

}  // namespace cupid

#endif  // CUPID_MAPPING_MAPPING_RENDER_H_
