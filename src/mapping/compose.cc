#include "mapping/compose.h"

#include <map>
#include <vector>

namespace cupid {

Result<Mapping> ComposeMappings(const Mapping& ab, const Mapping& bc,
                                const ComposeOptions& options) {
  if (ab.target_schema != bc.source_schema) {
    return Status::InvalidArgument(
        "cannot compose: middle schemas disagree ('" + ab.target_schema +
        "' vs '" + bc.source_schema + "')");
  }
  // Index bc by its source (B-side) path.
  std::multimap<std::string, const MappingElement*> by_b;
  for (const MappingElement& e : bc.elements) {
    by_b.emplace(e.source_path, &e);
  }

  Mapping out;
  out.source_schema = ab.source_schema;
  out.target_schema = bc.target_schema;
  // Strongest derivation per (A,C) pair.
  std::map<std::pair<std::string, std::string>, MappingElement> best;
  for (const MappingElement& first : ab.elements) {
    auto [lo, hi] = by_b.equal_range(first.target_path);
    for (auto it = lo; it != hi; ++it) {
      const MappingElement& second = *it->second;
      MappingElement composed;
      composed.source = first.source;
      composed.target = second.target;
      composed.source_path = first.source_path;
      composed.target_path = second.target_path;
      composed.wsim = first.wsim * second.wsim;
      composed.ssim = first.ssim * second.ssim;
      composed.lsim = first.lsim * second.lsim;
      if (composed.wsim < options.min_wsim) continue;
      auto key = std::make_pair(composed.source_path, composed.target_path);
      auto [slot, inserted] = best.emplace(key, composed);
      if (!inserted && composed.wsim > slot->second.wsim) {
        slot->second = composed;
      }
    }
  }
  for (auto& [key, element] : best) {
    out.elements.push_back(std::move(element));
  }
  return out;
}

Mapping InvertMapping(const Mapping& m) {
  Mapping out;
  out.source_schema = m.target_schema;
  out.target_schema = m.source_schema;
  for (const MappingElement& e : m.elements) {
    MappingElement inv = e;
    std::swap(inv.source, inv.target);
    std::swap(inv.source_path, inv.target_path);
    out.elements.push_back(std::move(inv));
  }
  return out;
}

}  // namespace cupid
