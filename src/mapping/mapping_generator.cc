#include "mapping/mapping_generator.h"

#include <algorithm>
#include <tuple>
#include <utility>
#include <vector>

namespace cupid {

namespace {

bool InScope(const SchemaTree& tree, TreeNodeId n, MappingScope scope) {
  switch (scope) {
    case MappingScope::kLeaves:
      return tree.IsLeaf(n);
    case MappingScope::kNonLeaves:
      return !tree.IsLeaf(n);
    case MappingScope::kAll:
      return true;
  }
  return false;
}

/// Secondary ordering for wsim ties. Saturated similarities (the c_inc cap)
/// can leave several sources tied at the same wsim for one target — e.g.
/// identically-named leaves under two type-substitution contexts. The
/// context disambiguates: prefer the candidate whose *parent pair* has the
/// higher wsim, then the higher lsim.
class CandidateRank {
 public:
  CandidateRank(const SchemaTree& source, const SchemaTree& target,
                const NodeSimilarities& sims)
      : source_(source), target_(target), sims_(sims) {}

  double ParentWsim(TreeNodeId s, TreeNodeId t) const {
    TreeNodeId ps = source_.node(s).parent;
    TreeNodeId pt = target_.node(t).parent;
    if (ps == kNoTreeNode || pt == kNoTreeNode) return 0.0;
    return sims_.wsim(ps, pt);
  }

  /// Ranking key: wsim first, then context (parent-pair wsim), then lsim.
  std::tuple<double, double, double> Key(TreeNodeId s, TreeNodeId t) const {
    return {sims_.wsim(s, t), ParentWsim(s, t), sims_.lsim(s, t)};
  }

  /// True if (s1,t) ranks strictly better than (s2,t).
  bool Better(TreeNodeId s1, TreeNodeId s2, TreeNodeId t) const {
    return Key(s1, t) > Key(s2, t);
  }

 private:
  const SchemaTree& source_;
  const SchemaTree& target_;
  const NodeSimilarities& sims_;
};

MappingElement MakeElement(const SchemaTree& source, const SchemaTree& target,
                           const NodeSimilarities& sims, TreeNodeId s,
                           TreeNodeId t) {
  MappingElement e;
  e.source = s;
  e.target = t;
  e.source_path = source.PathName(s);
  e.target_path = target.PathName(t);
  e.wsim = sims.wsim(s, t);
  e.ssim = sims.ssim(s, t);
  e.lsim = sims.lsim(s, t);
  return e;
}

/// The paper's naive scheme: best acceptable source per target node.
/// Scope lists are hoisted and the wsim submatrix is transposed into a
/// target-major buffer once, so the per-target argmax scans stream
/// sequential floats instead of striding a column through the full matrix.
/// Candidate visit order (ascending source id per target) is unchanged, so
/// the selected pairs are identical to the naive double loop's.
void GenerateOneToMany(const SchemaTree& source, const SchemaTree& target,
                       const NodeSimilarities& sims,
                       const MappingGeneratorOptions& opt, Mapping* out) {
  CandidateRank rank(source, target, sims);
  std::vector<TreeNodeId> srcs, tgts;
  for (TreeNodeId s = 0; s < source.num_nodes(); ++s) {
    if (InScope(source, s, opt.scope)) srcs.push_back(s);
  }
  for (TreeNodeId t = 0; t < target.num_nodes(); ++t) {
    if (InScope(target, t, opt.scope)) tgts.push_back(t);
  }
  std::vector<float> wsim_t(srcs.size() * tgts.size());
  for (size_t si = 0; si < srcs.size(); ++si) {
    for (size_t ti = 0; ti < tgts.size(); ++ti) {
      wsim_t[ti * srcs.size() + si] =
          static_cast<float>(sims.wsim(srcs[si], tgts[ti]));
    }
  }
  for (size_t ti = 0; ti < tgts.size(); ++ti) {
    const TreeNodeId t = tgts[ti];
    const float* row = &wsim_t[ti * srcs.size()];
    TreeNodeId best = kNoTreeNode;
    for (size_t si = 0; si < srcs.size(); ++si) {
      if (static_cast<double>(row[si]) < opt.th_accept) continue;
      TreeNodeId s = srcs[si];
      if (best == kNoTreeNode || rank.Better(s, best, t)) best = s;
    }
    if (best != kNoTreeNode) {
      out->elements.push_back(MakeElement(source, target, sims, best, t));
    }
  }
}

void GenerateOneToOneGreedy(const SchemaTree& source, const SchemaTree& target,
                            const NodeSimilarities& sims,
                            const MappingGeneratorOptions& opt, Mapping* out) {
  struct Candidate {
    TreeNodeId s, t;
    double wsim;
  };
  CandidateRank rank(source, target, sims);
  std::vector<Candidate> candidates;
  for (TreeNodeId s = 0; s < source.num_nodes(); ++s) {
    if (!InScope(source, s, opt.scope)) continue;
    for (TreeNodeId t = 0; t < target.num_nodes(); ++t) {
      if (!InScope(target, t, opt.scope)) continue;
      double w = sims.wsim(s, t);
      if (w >= opt.th_accept) candidates.push_back({s, t, w});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](const Candidate& a, const Candidate& b) {
                     return std::make_pair(a.wsim,
                                           rank.ParentWsim(a.s, a.t)) >
                            std::make_pair(b.wsim,
                                           rank.ParentWsim(b.s, b.t));
                   });
  std::vector<bool> used_s(static_cast<size_t>(source.num_nodes()), false);
  std::vector<bool> used_t(static_cast<size_t>(target.num_nodes()), false);
  for (const Candidate& c : candidates) {
    if (used_s[static_cast<size_t>(c.s)] || used_t[static_cast<size_t>(c.t)]) {
      continue;
    }
    used_s[static_cast<size_t>(c.s)] = used_t[static_cast<size_t>(c.t)] = true;
    out->elements.push_back(MakeElement(source, target, sims, c.s, c.t));
  }
}

/// Gale-Shapley with target nodes proposing; preference = wsim, pairs below
/// th_accept excluded.
void GenerateOneToOneStable(const SchemaTree& source, const SchemaTree& target,
                            const NodeSimilarities& sims,
                            const MappingGeneratorOptions& opt, Mapping* out) {
  std::vector<TreeNodeId> targets, sources;
  for (TreeNodeId t = 0; t < target.num_nodes(); ++t) {
    if (InScope(target, t, opt.scope)) targets.push_back(t);
  }
  for (TreeNodeId s = 0; s < source.num_nodes(); ++s) {
    if (InScope(source, s, opt.scope)) sources.push_back(s);
  }

  // Preference lists for targets: acceptable sources, best (wsim, then
  // context) first.
  CandidateRank rank(source, target, sims);
  std::vector<std::vector<TreeNodeId>> prefs(targets.size());
  // Row-major candidate collection (sequential wsim reads); per-target push
  // order stays ascending source id, so the stable sorts see the same
  // input sequence as a per-target column scan would.
  for (TreeNodeId s : sources) {
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      if (sims.wsim(s, targets[ti]) >= opt.th_accept) {
        prefs[ti].push_back(s);
      }
    }
  }
  for (size_t ti = 0; ti < targets.size(); ++ti) {
    std::stable_sort(prefs[ti].begin(), prefs[ti].end(),
                     [&](TreeNodeId a, TreeNodeId b) {
                       return rank.Better(a, b, targets[ti]);
                     });
  }

  std::vector<size_t> next_proposal(targets.size(), 0);
  // source node -> index into `targets` currently engaged, or npos.
  constexpr size_t kFree = static_cast<size_t>(-1);
  std::vector<size_t> engaged_to(static_cast<size_t>(source.num_nodes()),
                                 kFree);
  std::vector<size_t> queue;
  for (size_t ti = 0; ti < targets.size(); ++ti) queue.push_back(ti);

  while (!queue.empty()) {
    size_t ti = queue.back();
    queue.pop_back();
    while (next_proposal[ti] < prefs[ti].size()) {
      TreeNodeId s = prefs[ti][next_proposal[ti]++];
      size_t current = engaged_to[static_cast<size_t>(s)];
      if (current == kFree) {
        engaged_to[static_cast<size_t>(s)] = ti;
        break;
      }
      if (sims.wsim(s, targets[ti]) > sims.wsim(s, targets[current])) {
        engaged_to[static_cast<size_t>(s)] = ti;
        queue.push_back(current);  // displaced target proposes again
        break;
      }
    }
  }

  for (TreeNodeId s : sources) {
    size_t ti = engaged_to[static_cast<size_t>(s)];
    if (ti != kFree) {
      out->elements.push_back(
          MakeElement(source, target, sims, s, targets[ti]));
    }
  }
  std::stable_sort(out->elements.begin(), out->elements.end(),
                   [](const MappingElement& a, const MappingElement& b) {
                     return a.target < b.target;
                   });
}

}  // namespace

Result<Mapping> GenerateMapping(const SchemaTree& source,
                                const SchemaTree& target,
                                const TreeMatchResult& result,
                                const MappingGeneratorOptions& options) {
  if (options.th_accept < 0.0 || options.th_accept > 1.0) {
    return Status::InvalidArgument("th_accept must be within [0,1]");
  }
  if (result.sims.source_nodes() != source.num_nodes() ||
      result.sims.target_nodes() != target.num_nodes()) {
    return Status::InvalidArgument(
        "similarity matrix does not match the trees");
  }
  Mapping out;
  out.source_schema = source.schema().name();
  out.target_schema = target.schema().name();
  switch (options.cardinality) {
    case MappingCardinality::kOneToMany:
      GenerateOneToMany(source, target, result.sims, options, &out);
      break;
    case MappingCardinality::kOneToOneGreedy:
      GenerateOneToOneGreedy(source, target, result.sims, options, &out);
      break;
    case MappingCardinality::kOneToOneStable:
      GenerateOneToOneStable(source, target, result.sims, options, &out);
      break;
  }
  return out;
}

}  // namespace cupid
