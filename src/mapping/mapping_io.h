// Mapping persistence: a line-oriented text format so mappings can be
// stored, reviewed/edited by hand, and fed back later — the "library of
// known mappings" auxiliary-information source from the taxonomy
// (Section 3), and the storage half of mapping reuse (mapping/compose.h).
//
//     # cupid mapping v1
//     mapping PO -> PurchaseOrder
//     PO.POLines.Item.Qty|PurchaseOrder.Items.Item.Quantity|1.0|1.0|1.0
//     ...
//
// Fields: source path | target path | wsim | ssim | lsim. Paths must not
// contain '|' (none of the importers produce such names).

#ifndef CUPID_MAPPING_MAPPING_IO_H_
#define CUPID_MAPPING_MAPPING_IO_H_

#include <string>

#include "mapping/mapping.h"
#include "util/status.h"

namespace cupid {

/// \brief Serializes `mapping` in the text format above.
std::string SerializeMapping(const Mapping& mapping);

/// \brief Parses the text format; ParseError (with line numbers) on
/// malformed input. Node ids are not persisted and come back as
/// kNoTreeNode — path-based consumers (Compose, Evaluate, initial
/// mappings) do not need them.
Result<Mapping> ParseMapping(const std::string& text);

/// \brief Writes `mapping` to `path`.
Status SaveMapping(const Mapping& mapping, const std::string& path);

/// \brief Reads and parses `path`.
Result<Mapping> LoadMapping(const std::string& path);

}  // namespace cupid

#endif  // CUPID_MAPPING_MAPPING_IO_H_
