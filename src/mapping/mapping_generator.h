// Mapping generation (Section 7 of the paper).
//
// The paper's naive generator: for each *target* leaf, return the source
// leaf with the highest weighted similarity, provided wsim >= thaccept —
// producing a (possibly) 1:n mapping. Non-leaf mappings require the second
// post-order recompute pass first (RecomputeNonLeafSimilarities). "The exact
// nature of a mapping is often dependent on requirements of the module that
// accepts [it]", so tool-specific 1:1 generators (greedy, stable-marriage)
// are provided as alternatives.

#ifndef CUPID_MAPPING_MAPPING_GENERATOR_H_
#define CUPID_MAPPING_MAPPING_GENERATOR_H_

#include "mapping/mapping.h"
#include "structural/tree_match.h"
#include "tree/schema_tree.h"
#include "util/status.h"

namespace cupid {

/// Cardinality policy of the generator.
enum class MappingCardinality {
  /// The paper's naive scheme: best source per target, sources may repeat.
  kOneToMany = 0,
  /// Greedy 1:1: pairs taken in decreasing wsim order, endpoints used once.
  kOneToOneGreedy,
  /// Stable-marriage 1:1 (Gale-Shapley on wsim preference lists).
  kOneToOneStable,
};

/// What level of nodes to emit.
enum class MappingScope {
  kLeaves = 0,   ///< leaf-level mapping elements only
  kNonLeaves,    ///< non-leaf elements only (Section 7, second pass)
  kAll,          ///< both
};

struct MappingGeneratorOptions {
  /// Acceptance threshold thaccept (Table 1: 0.5).
  double th_accept = 0.5;
  MappingCardinality cardinality = MappingCardinality::kOneToMany;
  MappingScope scope = MappingScope::kLeaves;
};

/// \brief Derives a mapping from computed similarities.
///
/// For scope kNonLeaves / kAll the caller should have run
/// RecomputeNonLeafSimilarities on `result` first; GenerateMapping does not
/// do it implicitly so that callers can inspect both states.
Result<Mapping> GenerateMapping(const SchemaTree& source,
                                const SchemaTree& target,
                                const TreeMatchResult& result,
                                const MappingGeneratorOptions& options = {});

}  // namespace cupid

#endif  // CUPID_MAPPING_MAPPING_GENERATOR_H_
