// Mapping composition — the taxonomy's "auxiliary information" reuse
// technique (Section 3: "Reusing past match information can also help, for
// example, to compute a mapping that is the composition of mappings that
// were performed earlier"). Given mappings A->B and B->C, derives A->C.

#ifndef CUPID_MAPPING_COMPOSE_H_
#define CUPID_MAPPING_COMPOSE_H_

#include "mapping/mapping.h"
#include "util/status.h"

namespace cupid {

struct ComposeOptions {
  /// Similarity of a composed pair is the product of the two hops'
  /// similarities; pairs below this are dropped.
  double min_wsim = 0.25;
};

/// \brief Composes `ab` (schema A -> schema B) with `bc` (B -> C) into an
/// A -> C mapping. Join key: the B-side context path (ab.target_path ==
/// bc.source_path). Similarities multiply; duplicates keep the strongest
/// derivation. Fails if the mappings' middle schemas disagree.
Result<Mapping> ComposeMappings(const Mapping& ab, const Mapping& bc,
                                const ComposeOptions& options = {});

/// \brief Inverts a mapping (Match results are non-directional, Section 2):
/// sources become targets and vice versa.
Mapping InvertMapping(const Mapping& m);

}  // namespace cupid

#endif  // CUPID_MAPPING_COMPOSE_H_
