// Clang thread-safety-analysis macros (-Wthread-safety), LevelDB/Abseil
// style. Under any other compiler — or Clang without the attributes — every
// macro expands to nothing, so annotated headers stay portable.
//
// The annotations turn the repo's lock discipline into compile-time checked
// contracts:
//
//   * members carry GUARDED_BY(mu_): every access must hold mu_;
//   * "*Locked()" helpers carry REQUIRES(mu_): callers must already hold it;
//   * util/mutex.h provides the CAPABILITY-annotated Mutex, the
//     SCOPED_CAPABILITY MutexLock RAII wrapper, and a CondVar whose Wait
//     REQUIRES the mutex it atomically releases.
//
// CI builds src/ with `clang++ -Wthread-safety -Werror` (see
// docs/STATIC_ANALYSIS.md), so an unannotated access to a guarded member is
// a build break, not a latent race.

#ifndef CUPID_UTIL_THREAD_ANNOTATIONS_H_
#define CUPID_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define CUPID_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CUPID_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// The annotated type is a lockable capability ("mutex").
#define CAPABILITY(x) CUPID_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define SCOPED_CAPABILITY CUPID_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GUARDED_BY(x) CUPID_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose pointee is protected by `x` (the pointer itself is
/// not).
#define PT_GUARDED_BY(x) CUPID_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function that may only be called while holding the given capabilities;
/// they are held on entry and still held on exit.
#define REQUIRES(...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Shared-mode variant of REQUIRES: the caller holds the capability in
/// shared (reader) mode.
#define REQUIRES_SHARED(...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function that may only be called while NOT holding the given
/// capabilities (it acquires them itself).
#define EXCLUDES(...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define ACQUIRE(...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that acquires the capability in shared (reader) mode.
#define ACQUIRE_SHARED(...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define RELEASE(...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that releases a capability held in shared (reader) mode.
#define RELEASE_SHARED(...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function that acquires the capability only when it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(ret, __VA_ARGS__))

/// Declares one capability must be acquired after/before another
/// (deadlock-ordering documentation, checked by the analysis).
#define ACQUIRED_AFTER(...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

/// Function returning a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's locking is intentionally invisible to the
/// analysis. Use sparingly and say why at the call site.
#define NO_THREAD_SAFETY_ANALYSIS \
  CUPID_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CUPID_UTIL_THREAD_ANNOTATIONS_H_
