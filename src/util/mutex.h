// Annotated mutex primitives: a CAPABILITY-carrying Mutex over std::mutex,
// the MutexLock RAII guard, and a CondVar that re-exposes
// std::condition_variable against Mutex (LevelDB port:: style).
//
// std::mutex itself carries no thread-safety-analysis attributes, so code
// locking it directly is invisible to `clang++ -Wthread-safety`. Everything
// in src/ locks through these wrappers instead; see
// util/thread_annotations.h for the macro contract.

#ifndef CUPID_UTIL_MUTEX_H_
#define CUPID_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

namespace cupid {

class CondVar;

/// \brief std::mutex with thread-safety-analysis attributes.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII guard: holds `mu` for its whole scope (the only way src/
/// code takes a Mutex, so every critical section has block-scoped extent).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief std::shared_mutex with thread-safety-analysis attributes.
///
/// Writer/reader lock for state that is mostly read concurrently and only
/// occasionally mutated (the corpus-search shared LsimCache: candidate
/// matches read the warmed name-pair table in parallel, warming is
/// exclusive). Exclusive mode composes with GUARDED_BY exactly like Mutex;
/// shared mode satisfies REQUIRES_SHARED-annotated read paths.
class CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// \brief RAII exclusive (writer) guard over SharedMutex.
class SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~SharedMutexLock() RELEASE() { mu_->Unlock(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII shared (reader) guard over SharedMutex.
class SCOPED_CAPABILITY SharedReaderLock {
 public:
  explicit SharedReaderLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~SharedReaderLock() RELEASE() { mu_->UnlockShared(); }

  SharedReaderLock(const SharedReaderLock&) = delete;
  SharedReaderLock& operator=(const SharedReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief Condition variable usable with Mutex.
///
/// Wait atomically releases and reacquires the caller's Mutex; the analysis
/// sees it as "held before, held after" (REQUIRES), which is exactly the
/// caller-visible contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller still owns the mutex
  }

  /// \brief Wait bounded by `timeout_ms`; returns false on timeout. Like
  /// Wait, the caller's mutex is held again on return either way.
  bool WaitFor(Mutex* mu, int timeout_ms) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    bool signaled = cv_.wait_for(lock, std::chrono::milliseconds(
                                           timeout_ms)) ==
                    std::cv_status::no_timeout;
    lock.release();  // the caller still owns the mutex
    return signaled;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cupid

#endif  // CUPID_UTIL_MUTEX_H_
