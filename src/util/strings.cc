#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cupid {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c); });
}

bool IsAllAlpha(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isalpha(c); });
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> SplitAny(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

size_t CommonPrefixLength(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

size_t CommonSuffixLength(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[a.size() - 1 - i] == b[b.size() - 1 - i]) ++i;
  return i;
}

size_t LongestCommonSubstringLength(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  // Rolling one-row DP over b for each character of a.
  std::vector<size_t> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  size_t best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return best;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  std::vector<size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string Stem(std::string_view word) {
  std::string w = ToLowerAscii(word);
  auto ends = [&](std::string_view suf) { return EndsWith(w, suf); };
  if (w.size() > 4 && ends("ies")) {
    w.replace(w.size() - 3, 3, "y");
  } else if (w.size() > 4 && ends("sses")) {
    w.erase(w.size() - 2);
  } else if (w.size() > 3 && ends("es") && !ends("ses")) {
    // "addresses" handled above; "types" -> "type", "prices" -> "price".
    w.erase(w.size() - 1);
  } else if (w.size() > 3 && ends("s") && !ends("ss") && !ends("us")) {
    w.erase(w.size() - 1);
  } else if (w.size() > 5 && ends("ing")) {
    w.erase(w.size() - 3);
  } else if (w.size() > 4 && ends("ed")) {
    w.erase(w.size() - 2);
  }
  return w;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty number");
  if (std::isspace(static_cast<unsigned char>(s.front()))) {
    return Status::ParseError("not a number: " + std::string(s));
  }
  // strtod needs NUL termination; inputs are short (flags, JSON tokens).
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') {
    return Status::ParseError("not a number: " + buf);
  }
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return Status::ParseError("number out of range: " + buf);
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty number");
  if (std::isspace(static_cast<unsigned char>(s.front()))) {
    return Status::ParseError("not an integer: " + std::string(s));
  }
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0') {
    return Status::ParseError("not an integer: " + buf);
  }
  if (errno == ERANGE) {
    return Status::ParseError("integer out of range: " + buf);
  }
  return static_cast<int64_t>(v);
}

bool IsValidUtf8(std::string_view s) {
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    unsigned char b0 = static_cast<unsigned char>(s[i]);
    if (b0 < 0x80) {
      ++i;
      continue;
    }
    int len;
    uint32_t cp;
    if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1F;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0F;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07;
    } else {
      return false;  // stray continuation byte or 0xF8..0xFF lead
    }
    if (i + len > n) return false;
    for (int k = 1; k < len; ++k) {
      unsigned char bk = static_cast<unsigned char>(s[i + k]);
      if ((bk & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (bk & 0x3F);
    }
    // Shortest-form and code-point range checks.
    if (len == 2 && cp < 0x80) return false;
    if (len == 3 && cp < 0x800) return false;
    if (len == 4 && cp < 0x10000) return false;
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;  // UTF-16 surrogates
    if (cp > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

}  // namespace cupid
