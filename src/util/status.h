// Status / Result error model, in the style of Apache Arrow and RocksDB.
//
// All fallible operations in the cupid library return Status (or Result<T>
// for operations that produce a value). Exceptions are not used on library
// paths.

#ifndef CUPID_UTIL_STATUS_H_
#define CUPID_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace cupid {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kCycleDetected,
  kParseError,
  kIoError,
  kInternal,
  kUnavailable,
};

/// \brief Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an error message.
///
/// An OK status carries no message and is cheap to copy. Construction of
/// error statuses goes through the named factory functions:
///
///     return Status::InvalidArgument("wstruct must be within [0,1]");
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status CycleDetected(std::string msg) {
    return Status(StatusCode::kCycleDetected, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// The operation cannot currently be served (e.g. a durable repository
  /// in degraded read-only mode after a log-write failure).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCycleDetected() const { return code_ == StatusCode::kCycleDetected; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Usage:
///     Result<Schema> r = LoadSchema(path);
///     if (!r.ok()) return r.status();
///     Schema s = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; Status::OK() if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(payload_));
  }

  /// Value access with the conventional shorter names.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Value if OK, otherwise the provided fallback.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace cupid

/// Propagates a non-OK Status out of the enclosing function.
#define CUPID_RETURN_NOT_OK(expr)           \
  do {                                      \
    ::cupid::Status _st = (expr);           \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Assigns the value of a Result to `lhs`, or propagates its error status.
#define CUPID_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define CUPID_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define CUPID_ASSIGN_OR_RETURN_CONCAT(x, y) \
  CUPID_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define CUPID_ASSIGN_OR_RETURN(lhs, rexpr) \
  CUPID_ASSIGN_OR_RETURN_IMPL(             \
      CUPID_ASSIGN_OR_RETURN_CONCAT(_cupid_result_, __LINE__), lhs, rexpr)

#endif  // CUPID_UTIL_STATUS_H_
