// A small fixed-size thread pool plus a deterministic ParallelFor helper.
//
// Used to parallelize the embarrassingly parallel row blocks of the matcher
// (lsim matrix fill, ProjectLsim, InitLeafSsim). Tasks must write disjoint
// state; under that contract results are identical at any thread count,
// which the perf tests assert.

#ifndef CUPID_UTIL_THREAD_POOL_H_
#define CUPID_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cupid {

/// \brief Fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads) {
    int n = std::max(1, num_threads);
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { Shutdown(); }

  /// \brief Stops accepting tasks, drains everything already queued, and
  /// joins the workers. Idempotent, including from concurrent callers
  /// (join_mu_ serializes the join loop; late callers see already-joined
  /// threads). Called by the destructor.
  void Shutdown() EXCLUDES(mu_, join_mu_) {
    {
      MutexLock lock(&mu_);
      stop_ = true;
    }
    cv_.SignalAll();
    MutexLock join_lock(&join_mu_);
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  int size() const { return static_cast<int>(workers_.size()); }

  /// \brief Enqueues `fn` for execution on some worker.
  ///
  /// Returns false — and does NOT take ownership of running `fn` — once
  /// Shutdown() has begun. Callers that submit concurrently with shutdown
  /// must check the result; a rejected task is never silently dropped into
  /// the queue.
  [[nodiscard]] bool Submit(std::function<void()> fn) EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (stop_) return false;
      queue_.push_back(std::move(fn));
    }
    cv_.Signal();
    return true;
  }

  /// Resolves a user-facing thread-count knob: n > 0 is taken literally,
  /// 0 (the default everywhere) means "all hardware threads".
  static int EffectiveThreads(int requested) {
    if (requested > 0) return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

 private:
  void WorkerLoop() EXCLUDES(mu_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(&mu_);
        while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  /// Immutable after the constructor returns (never resized), so size()
  /// reads it without a lock; joining is serialized by join_mu_.
  std::vector<std::thread> workers_;
  Mutex mu_;
  /// Serializes concurrent Shutdown calls (never held with mu_).
  Mutex join_mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

/// \brief Runs body(begin, end) over [0, n) split into contiguous chunks.
///
/// Runs inline when `pool` is null, has one worker, or the range is tiny.
/// Blocks until every chunk finished. Chunk boundaries depend only on n and
/// the pool size, never on scheduling, so disjoint-write bodies are
/// deterministic.
inline void ParallelFor(ThreadPool* pool, int64_t n,
                        const std::function<void(int64_t, int64_t)>& body) {
  constexpr int64_t kMinPerThread = 16;
  if (n <= 0) return;
  if (pool == nullptr || pool->size() <= 1 || n < 2 * kMinPerThread) {
    body(0, n);
    return;
  }
  int64_t chunks = std::min<int64_t>(pool->size(), n / kMinPerThread);
  chunks = std::max<int64_t>(chunks, 1);
  int64_t chunk_size = (n + chunks - 1) / chunks;

  Mutex mu;
  CondVar done;
  int64_t remaining = chunks;  // guarded by mu (local, so not annotatable)
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t begin = c * chunk_size;
    int64_t end = std::min(n, begin + chunk_size);
    bool accepted = pool->Submit([&, begin, end] {
      body(begin, end);
      MutexLock lock(&mu);
      if (--remaining == 0) done.SignalAll();
    });
    if (!accepted) {
      // Pool shut down mid-loop: run the chunk inline so the barrier below
      // still completes.
      body(begin, end);
      MutexLock lock(&mu);
      if (--remaining == 0) done.SignalAll();
    }
  }
  MutexLock lock(&mu);
  while (remaining != 0) done.Wait(&mu);
}

}  // namespace cupid

#endif  // CUPID_UTIL_THREAD_POOL_H_
