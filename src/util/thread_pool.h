// A small fixed-size thread pool plus a deterministic ParallelFor helper.
//
// Used to parallelize the embarrassingly parallel row blocks of the matcher
// (lsim matrix fill, ProjectLsim, InitLeafSsim). Tasks must write disjoint
// state; under that contract results are identical at any thread count,
// which the perf tests assert.

#ifndef CUPID_UTIL_THREAD_POOL_H_
#define CUPID_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cupid {

/// \brief Fixed-size worker pool with a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads) {
    int n = std::max(1, num_threads);
    workers_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() { Shutdown(); }

  /// \brief Stops accepting tasks, drains everything already queued, and
  /// joins the workers. Idempotent, including from concurrent callers
  /// (join_mu_ serializes the join loop; late callers see already-joined
  /// threads). Called by the destructor.
  void Shutdown() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    std::lock_guard<std::mutex> join_lock(join_mu_);
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  int size() const { return static_cast<int>(workers_.size()); }

  /// \brief Enqueues `fn` for execution on some worker.
  ///
  /// Returns false — and does NOT take ownership of running `fn` — once
  /// Shutdown() has begun. Callers that submit concurrently with shutdown
  /// must check the result; a rejected task is never silently dropped into
  /// the queue.
  [[nodiscard]] bool Submit(std::function<void()> fn) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_) return false;
      queue_.push_back(std::move(fn));
    }
    cv_.notify_one();
    return true;
  }

  /// Resolves a user-facing thread-count knob: n > 0 is taken literally,
  /// 0 (the default everywhere) means "all hardware threads".
  static int EffectiveThreads(int requested) {
    if (requested > 0) return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  /// Serializes concurrent Shutdown calls (never held with mu_).
  std::mutex join_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// \brief Runs body(begin, end) over [0, n) split into contiguous chunks.
///
/// Runs inline when `pool` is null, has one worker, or the range is tiny.
/// Blocks until every chunk finished. Chunk boundaries depend only on n and
/// the pool size, never on scheduling, so disjoint-write bodies are
/// deterministic.
inline void ParallelFor(ThreadPool* pool, int64_t n,
                        const std::function<void(int64_t, int64_t)>& body) {
  constexpr int64_t kMinPerThread = 16;
  if (n <= 0) return;
  if (pool == nullptr || pool->size() <= 1 || n < 2 * kMinPerThread) {
    body(0, n);
    return;
  }
  int64_t chunks = std::min<int64_t>(pool->size(), n / kMinPerThread);
  chunks = std::max<int64_t>(chunks, 1);
  int64_t chunk_size = (n + chunks - 1) / chunks;

  std::mutex mu;
  std::condition_variable done;
  int64_t remaining = chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t begin = c * chunk_size;
    int64_t end = std::min(n, begin + chunk_size);
    bool accepted = pool->Submit([&, begin, end] {
      body(begin, end);
      std::unique_lock<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_all();
    });
    if (!accepted) {
      // Pool shut down mid-loop: run the chunk inline so the barrier below
      // still completes.
      body(begin, end);
      std::unique_lock<std::mutex> lock(mu);
      if (--remaining == 0) done.notify_all();
    }
  }
  std::unique_lock<std::mutex> lock(mu);
  done.wait(lock, [&] { return remaining == 0; });
}

}  // namespace cupid

#endif  // CUPID_UTIL_THREAD_POOL_H_
