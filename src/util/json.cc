#include "util/json.h"

#include <cassert>
#include <cctype>
#include <cstdio>

#include "util/strings.h"

namespace cupid {

void JsonEscapeTo(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StringFormat("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  JsonEscapeTo(s, &out);
  return out;
}

// ----------------------------------------------------------------- writer --

void JsonWriter::Prefix() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
}

void JsonWriter::Key(std::string_view name) {
  assert(!after_key_);
  Prefix();
  out_ += '"';
  JsonEscapeTo(name, &out_);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Prefix();
  out_ += '"';
  JsonEscapeTo(value, &out_);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  Prefix();
  out_ += std::to_string(value);
}

void JsonWriter::UInt(uint64_t value) {
  Prefix();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  Prefix();
  // %.17g round-trips every double; trim the common integral case so small
  // counters read naturally.
  std::string s = StringFormat("%.17g", value);
  out_ += s;
}

void JsonWriter::FixedDouble(double value, int precision) {
  Prefix();
  out_ += StringFormat("%.*f", precision, value);
}

void JsonWriter::Bool(bool value) {
  Prefix();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Prefix();
  out_ += "null";
}

// ------------------------------------------------------------------ value --

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = Find(key);
  return (v && v->type == Type::kString) ? v->string : std::move(fallback);
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v && v->type == Type::kNumber) ? v->number : fallback;
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return (v && v->type == Type::kNumber) ? static_cast<int64_t>(v->number)
                                         : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v && v->type == Type::kBool) ? v->bool_value : fallback;
}

// ----------------------------------------------------------------- parser --

namespace {

/// Hand-rolled recursive-descent parser; positions tracked for error
/// messages ("offset N" — JSONL lines are short, column == offset).
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    CUPID_RETURN_NOT_OK(ParseValue(&v, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing content after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::ParseError(
        StringFormat("JSON offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) return Error(StringFormat("expected '%c'", c));
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string);
      case 't':
      case 'f': return ParseLiteral(out);
      case 'n': return ParseLiteral(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    CUPID_RETURN_NOT_OK(Expect('{'));
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      CUPID_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      CUPID_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      CUPID_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      CUPID_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    CUPID_RETURN_NOT_OK(Expect('['));
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      CUPID_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      CUPID_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseLiteral(JsonValue* out) {
    auto match = [&](std::string_view word) {
      if (text_.substr(pos_, word.size()) != word) return false;
      pos_ += word.size();
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = true;
      return Status::OK();
    }
    if (match("false")) {
      out->type = JsonValue::Type::kBool;
      out->bool_value = false;
      return Status::OK();
    }
    if (match("null")) {
      out->type = JsonValue::Type::kNull;
      return Status::OK();
    }
    return Error("invalid literal");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    auto parsed = ParseDouble(text_.substr(start, pos_ - start));
    if (!parsed.ok()) return Error("invalid number");
    out->type = JsonValue::Type::kNumber;
    out->number = *parsed;
    return Status::OK();
  }

  /// Appends `cp` to `out` as UTF-8.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    CUPID_RETURN_NOT_OK(Expect('"'));
    out->clear();
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Error("truncated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          uint32_t cp = 0;
          CUPID_RETURN_NOT_OK(ParseHex4(&cp));
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low half must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            CUPID_RETURN_NOT_OK(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default: return Error("invalid escape");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace cupid
