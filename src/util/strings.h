// String utilities shared across the cupid library.
//
// Everything here is pure and allocation-conscious; these helpers are on the
// hot path of linguistic matching (tokenization, substring similarity).

#ifndef CUPID_UTIL_STRINGS_H_
#define CUPID_UTIL_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cupid {

/// \brief Lower-cases ASCII characters; non-ASCII bytes pass through.
std::string ToLowerAscii(std::string_view s);

/// \brief Upper-cases ASCII characters; non-ASCII bytes pass through.
std::string ToUpperAscii(std::string_view s);

/// \brief True if `s` consists only of ASCII digits (and is non-empty).
bool IsAllDigits(std::string_view s);

/// \brief True if `s` consists only of ASCII letters (and is non-empty).
bool IsAllAlpha(std::string_view s);

/// \brief Removes leading and trailing whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// \brief Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitAny(std::string_view s, std::string_view delims);

/// \brief Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// \brief True if `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief True if `s` ends with `suffix` (case-sensitive).
bool EndsWith(std::string_view s, std::string_view suffix);

/// \brief Length of the longest common prefix of `a` and `b`.
size_t CommonPrefixLength(std::string_view a, std::string_view b);

/// \brief Length of the longest common suffix of `a` and `b`.
size_t CommonSuffixLength(std::string_view a, std::string_view b);

/// \brief Length of the longest common substring of `a` and `b`.
///
/// O(|a|*|b|) dynamic program; fine for the short identifiers that appear in
/// schema element names.
size_t LongestCommonSubstringLength(std::string_view a, std::string_view b);

/// \brief Levenshtein edit distance between `a` and `b`.
size_t EditDistance(std::string_view a, std::string_view b);

/// \brief Crude English stemmer used for thesaurus lookups.
///
/// Strips common inflectional suffixes ("-ies"→"y", "-es", "-s", "-ing",
/// "-ed"). This intentionally mirrors the "stemming" step of Section 5.1
/// without pulling in a full Porter stemmer; schema identifiers are short
/// and mostly nouns.
std::string Stem(std::string_view word);

/// \brief printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Parses a decimal floating-point number, requiring the whole input
/// to be consumed ("0.5x", "", "  1" are ParseError; atof/strtod would
/// silently accept or zero them). Overflow is ParseError too.
Result<double> ParseDouble(std::string_view s);

/// \brief Parses a base-10 integer with the same full-consumption and range
/// rules as ParseDouble ("12.5" and "9999999999999999999999" are errors).
Result<int64_t> ParseInt(std::string_view s);

/// \brief True if `s` is well-formed UTF-8: correct continuation bytes,
/// shortest-form encodings only (overlongs rejected), no surrogate code
/// points, nothing above U+10FFFF. The network boundary rejects frames that
/// fail this before handing bytes to the JSON parser.
bool IsValidUtf8(std::string_view s);

}  // namespace cupid

#endif  // CUPID_UTIL_STRINGS_H_
