#include "util/status.h"

namespace cupid {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kCycleDetected:
      return "CycleDetected";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace cupid
