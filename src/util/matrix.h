// Small dense row-major matrix used for similarity tables.

#ifndef CUPID_UTIL_MATRIX_H_
#define CUPID_UTIL_MATRIX_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace cupid {

/// \brief Dense row-major matrix of T, sized (rows x cols), zero-initialized.
///
/// Similarity tables are dense in practice — categorization prunes which
/// *pairs get computed*, not which entries exist — so a flat vector wins over
/// any sparse representation at these sizes.
template <typename T>
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), T{}) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  T operator()(int64_t r, int64_t c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  T& operator()(int64_t r, int64_t c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  void Fill(T value) { data_.assign(data_.size(), value); }

  /// Raw row access for hot loops.
  const T* row(int64_t r) const {
    assert(r >= 0 && r < rows_);
    return &data_[static_cast<size_t>(r * cols_)];
  }
  T* row(int64_t r) {
    assert(r >= 0 && r < rows_);
    return &data_[static_cast<size_t>(r * cols_)];
  }

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<T> data_;
};

}  // namespace cupid

#endif  // CUPID_UTIL_MATRIX_H_
