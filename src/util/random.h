// Deterministic PRNG for synthetic workload generation.

#ifndef CUPID_UTIL_RANDOM_H_
#define CUPID_UTIL_RANDOM_H_

#include <cstdint>

namespace cupid {

/// \brief SplitMix64 PRNG: tiny, fast, and deterministic across platforms.
///
/// Used by the synthetic schema generator so that benchmark workloads are
/// reproducible bit-for-bit regardless of the standard library in use.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

 private:
  uint64_t state_;
};

}  // namespace cupid

#endif  // CUPID_UTIL_RANDOM_H_
