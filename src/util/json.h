// Minimal JSON support shared by mapping rendering, the match service's
// response serialization, and the cupid_server JSONL protocol.
//
// One escaper for the whole library (previously private to
// mapping/mapping_render.cc), a small comma-managing writer, and a
// recursive-descent parser for the request side of the JSONL protocol.
// Deliberately tiny: no DOM mutation API, no streaming reads — schema
// matching requests are one object per line.

#ifndef CUPID_UTIL_JSON_H_
#define CUPID_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace cupid {

/// \brief Appends the JSON string-escaped form of `s` (no quotes) to `out`.
///
/// Escapes '"', '\\', control characters (as \n, \t, or \u00XX); all other
/// bytes pass through, so UTF-8 input stays UTF-8.
void JsonEscapeTo(std::string_view s, std::string* out);

/// \brief JSON string-escaped copy of `s` (no surrounding quotes).
std::string JsonEscape(std::string_view s);

/// \brief Compact JSON emitter with automatic comma placement.
///
///     JsonWriter w;
///     w.BeginObject();
///     w.Key("status"); w.String("ok");
///     w.Key("hits");   w.Int(3);
///     w.EndObject();
///     std::string line = std::move(w).str();   // {"status":"ok","hits":3}
///
/// The writer trusts its caller to produce well-formed nesting (asserted in
/// debug builds): every Key is followed by exactly one value, Begin/End
/// calls balance.
class JsonWriter {
 public:
  void BeginObject() { Prefix(); out_ += '{'; PushContainer(); }
  void EndObject() { PopContainer(); out_ += '}'; }
  void BeginArray() { Prefix(); out_ += '['; PushContainer(); }
  void EndArray() { PopContainer(); out_ += ']'; }

  /// Emits `"name":` (must be inside an object, before a value).
  void Key(std::string_view name);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// Shortest round-trippable representation ("%.17g" trimmed).
  void Double(double value);
  /// Fixed-point representation, e.g. FixedDouble(0.5, 6) -> "0.500000".
  void FixedDouble(double value, int precision);
  void Bool(bool value);
  void Null();

  /// The document built so far; call after the outermost End*.
  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  /// Emits the separating comma when a value follows a prior sibling.
  void Prefix();
  void PushContainer() { first_in_scope_.push_back(true); }
  void PopContainer() { first_in_scope_.pop_back(); }

  std::string out_;
  /// first_in_scope_[d] — no sibling emitted yet at nesting depth d.
  std::vector<bool> first_in_scope_{true};
  /// A Key was just written; the next value must not emit a comma.
  bool after_key_ = false;
};

/// \brief A parsed JSON value (object keys keep their input order).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Member of an object by key; null when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member access with a fallback for absent keys. A present member
  /// of the wrong type is NOT coerced; the fallback is returned.
  std::string GetString(std::string_view key, std::string fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0.0) const;
  int64_t GetInt(std::string_view key, int64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;
};

/// \brief Parses exactly one JSON document (trailing whitespace allowed;
/// trailing content is a ParseError). Numbers go through util ParseDouble;
/// \uXXXX escapes are decoded to UTF-8 (surrogate pairs supported).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace cupid

#endif  // CUPID_UTIL_JSON_H_
