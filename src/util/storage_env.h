// StorageEnv — the filesystem seam of the durability subsystem
// (src/storage/). Every byte the write-ahead log and the snapshot writer
// touch goes through this interface, so tests can substitute a
// fault-injecting implementation (src/storage/fault_injection_env.h) that
// produces short writes, fsync failures, ENOSPC, and crash-at-every-syscall
// schedules, while production uses the POSIX-backed DefaultStorageEnv().
//
// Durability contract of the default implementation:
//   * WritableFile::Sync flushes user-space buffers and fsyncs the file;
//     data appended but not yet synced may be lost on a crash.
//   * RenameFile is atomic (POSIX rename) and is the commit point for
//     snapshot publication; pair it with SyncDir on the parent directory
//     to make the new directory entry itself durable.

#ifndef CUPID_UTIL_STORAGE_ENV_H_
#define CUPID_UTIL_STORAGE_ENV_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cupid {

/// \brief An append-only file handle. Close() without Sync() leaves the
/// written data vulnerable to crashes; callers that need durability must
/// Sync first.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;
  /// Flushes application buffers and fsyncs to stable storage.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// \brief Abstract filesystem used by the durable repository's write path.
class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  /// \brief Opens `path` for writing. `truncate` discards existing
  /// contents; otherwise writes append to the current end.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// \brief Whole-file read (WAL files and snapshot artifacts are small).
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  virtual Status CreateDirs(const std::string& path) = 0;

  /// \brief Atomic rename of a file or directory; the durability commit
  /// point of snapshot publication.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// \brief Recursive removal (retired snapshots, temp dirs). Removing a
  /// missing path is OK.
  virtual Status RemoveAll(const std::string& path) = 0;

  /// \brief Entry names (not full paths) in `path`, sorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// \brief fsyncs the directory itself so created/renamed entries survive
  /// a crash.
  virtual Status SyncDir(const std::string& path) = 0;
};

/// \brief The process-wide POSIX-backed environment.
StorageEnv* DefaultStorageEnv();

}  // namespace cupid

#endif  // CUPID_UTIL_STORAGE_ENV_H_
