// Maximal runs of consecutively-mapped ids — the unit of the gather
// engines' bulk row copies (one memcpy per run per row). Shared by the
// structural gather (structural/tree_match.cc, over TreeNodeId maps) and
// the lsim gather (linguistic/linguistic_matcher.cc, over ElementId maps);
// both id types are int32_t with -1 as the "unmapped" sentinel.

#ifndef CUPID_UTIL_ID_RUNS_H_
#define CUPID_UTIL_ID_RUNS_H_

#include <cstdint>
#include <vector>

namespace cupid {

/// One maximal run: map[dst + k] == src + k for k in [0, len).
struct IdRun {
  int32_t dst = 0;
  int32_t src = 0;
  int32_t len = 0;
};

/// Coalesces `map` (new id -> previous id, -1 = unmapped) into maximal
/// consecutively-mapped runs, in ascending dst order. Unmapped ids are in
/// no run.
inline std::vector<IdRun> BuildMappedIdRuns(const std::vector<int32_t>& map) {
  std::vector<IdRun> runs;
  const int32_t n = static_cast<int32_t>(map.size());
  for (int32_t dst = 0; dst < n;) {
    int32_t src = map[static_cast<size_t>(dst)];
    if (src < 0) {
      ++dst;
      continue;
    }
    int32_t end = dst + 1;
    while (end < n && map[static_cast<size_t>(end)] == src + (end - dst)) {
      ++end;
    }
    runs.push_back({dst, src, end - dst});
    dst = end;
  }
  return runs;
}

}  // namespace cupid

#endif  // CUPID_UTIL_ID_RUNS_H_
