// Centralized environment-variable toggles: the one place src/ reads the
// process environment.
//
// Raw getenv calls sprinkled through match code made it impossible to see
// which knobs exist or what an unset / empty / "0" value means, and every
// site re-invented the parse. All lookups now go through the helpers
// below; grep for EnvFlag/EnvString to enumerate every toggle.
//
// Known variables (all optional; defaults in parentheses):
//
//   CUPID_TRACE              (off)  enable the stderr JSONL span sink for
//                                   every traced phase (see obs/trace.h).
//   CUPID_TRACE_INCREMENTAL  (off)  compatibility alias for CUPID_TRACE —
//                                   the pre-obs incremental-phase traces
//                                   were gated on this name.
//
// Parsing contract: a flag is ON when the variable is set to anything
// except "" / "0" / "false" / "off" / "no" (ASCII case-insensitive). The
// historical sites treated "set at all" as on; the explicit off-values let
// an inherited environment disable a flag without unsetting it.

#ifndef CUPID_UTIL_ENV_H_
#define CUPID_UTIL_ENV_H_

#include <string>
#include <string_view>

namespace cupid {

/// \brief Boolean environment toggle. Unset returns `default_value`; set
/// returns true unless the value is one of the off-spellings above.
bool EnvFlag(const char* name, bool default_value = false);

/// \brief String environment lookup; unset (but not empty) returns
/// `default_value`.
std::string EnvString(const char* name, std::string_view default_value = "");

}  // namespace cupid

#endif  // CUPID_UTIL_ENV_H_
