// CRC32 (IEEE 802.3, polynomial 0xEDB88320) used to frame write-ahead-log
// records and to checksum snapshot files. Table-driven software
// implementation: deterministic across platforms, no hardware dependency.

#ifndef CUPID_UTIL_CRC32_H_
#define CUPID_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cupid {

/// \brief CRC32 of `data`. `seed` chains incremental computations: pass the
/// previous call's return value to continue a running checksum.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace cupid

#endif  // CUPID_UTIL_CRC32_H_
