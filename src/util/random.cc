#include "util/random.h"

namespace cupid {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t SplitMix64::NextBounded(uint64_t bound) {
  // Rejection-free modulo; bias is negligible for the small bounds used in
  // workload generation.
  return Next() % bound;
}

double SplitMix64::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool SplitMix64::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace cupid
