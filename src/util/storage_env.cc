#include "util/storage_env.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

namespace cupid {

namespace fs = std::filesystem;

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IoError(op + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) return Status::IoError("append to closed " + path_);
    if (data.empty()) return Status::OK();
    size_t written = std::fwrite(data.data(), 1, data.size(), file_);
    if (written != data.size()) return ErrnoStatus("write", path_);
    return Status::OK();
  }

  Status Sync() override {
    if (file_ == nullptr) return Status::IoError("sync of closed " + path_);
    if (std::fflush(file_) != 0) return ErrnoStatus("flush", path_);
#ifndef _WIN32
    if (::fsync(fileno(file_)) != 0) return ErrnoStatus("fsync", path_);
#endif
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    int rc = std::fclose(file_);
    file_ = nullptr;
    if (rc != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

class PosixStorageEnv : public StorageEnv {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    std::FILE* f = std::fopen(path.c_str(), truncate ? "wb" : "ab");
    if (f == nullptr) return ErrnoStatus("open", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(f, path));
  }

  Result<std::string> ReadFile(const std::string& path) override {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return Status::IoError("read failed: " + path);
    return std::move(buffer).str();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) {
      return Status::IoError("mkdir " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::error_code ec;
    fs::rename(from, to, ec);
    if (ec) {
      return Status::IoError("rename " + from + " -> " + to + ": " +
                             ec.message());
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    std::error_code ec;
    if (!fs::remove(path, ec) || ec) {
      if (ec) return Status::IoError("remove " + path + ": " + ec.message());
      return Status::IoError("remove " + path + ": no such file");
    }
    return Status::OK();
  }

  Status RemoveAll(const std::string& path) override {
    std::error_code ec;
    fs::remove_all(path, ec);
    if (ec) {
      return Status::IoError("remove_all " + path + ": " + ec.message());
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    fs::directory_iterator it(path, ec);
    if (ec) {
      return Status::IoError("list " + path + ": " + ec.message());
    }
    std::vector<std::string> names;
    for (const fs::directory_entry& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  Status SyncDir(const std::string& path) override {
#ifndef _WIN32
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus("open dir", path);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) return ErrnoStatus("fsync dir", path);
#else
    (void)path;
#endif
    return Status::OK();
  }
};

}  // namespace

StorageEnv* DefaultStorageEnv() {
  static PosixStorageEnv* env = new PosixStorageEnv();
  return env;
}

}  // namespace cupid
