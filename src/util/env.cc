#include "util/env.h"

#include <cctype>
#include <cstdlib>

namespace cupid {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool EnvFlag(const char* name, bool default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return default_value;
  std::string_view value(raw);
  if (value.empty()) return false;
  for (std::string_view off : {"0", "false", "off", "no"}) {
    if (EqualsIgnoreCase(value, off)) return false;
  }
  return true;
}

std::string EnvString(const char* name, std::string_view default_value) {
  const char* raw = std::getenv(name);
  return raw == nullptr ? std::string(default_value) : std::string(raw);
}

}  // namespace cupid
