#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>

#include "util/json.h"

namespace cupid {
namespace obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

/// Percentile estimate from per-bucket counts: linear interpolation
/// between the containing bucket's bounds; the +Inf bucket reports the
/// last finite bound (a floor). Deterministic — integer counts in, one
/// fixed expression out.
double Percentile(const std::vector<double>& bounds,
                  const std::vector<int64_t>& buckets, int64_t count,
                  double q) {
  if (count <= 0) return 0.0;
  // Rank of the target observation, 1-based.
  const double rank = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const int64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < rank) continue;
    if (i >= bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double upper = bounds[i];
    const double fraction =
        (rank - before) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dotted registry
/// names map '.' and '-' to '_'.
std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

}  // namespace

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double>* kBuckets = new std::vector<double>{
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,   5.0,    10.0,
      25.0, 50.0,  100., 250., 500., 1000., 2500.0, 5000., 10000.};
  return *kBuckets;
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* kDefault = new MetricsRegistry();
  return kDefault;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(
    std::string_view name, std::string_view help, MetricType type,
    std::vector<double> bounds) {
  MutexLock lock(&mu_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Entry* entry = entries_[it->second].get();
    if (entry->type != type) {
      // Names are compile-time constants; a type clash is a bug in the
      // instrumentation, not a runtime condition to recover from.
      std::fprintf(stderr,
                   "metrics: %.*s already registered as %s, requested %s\n",
                   static_cast<int>(name.size()), name.data(),
                   TypeName(entry->type), TypeName(type));
      std::abort();
    }
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->type = type;
  switch (type) {
    case MetricType::kCounter:
      entry->counter = std::unique_ptr<Counter>(new Counter());
      break;
    case MetricType::kGauge:
      entry->gauge = std::unique_ptr<Gauge>(new Gauge());
      break;
    case MetricType::kHistogram:
      if (bounds.empty()) bounds = DefaultLatencyBucketsMs();
      entry->histogram =
          std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
      break;
  }
  Entry* raw = entry.get();
  index_[raw->name] = entries_.size();
  entries_.push_back(std::move(entry));
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help) {
  return FindOrCreate(name, help, MetricType::kCounter, {})->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 std::string_view help) {
  return FindOrCreate(name, help, MetricType::kGauge, {})->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::vector<double> bounds) {
  return FindOrCreate(name, help, MetricType::kHistogram, std::move(bounds))
      ->histogram.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const std::unique_ptr<Entry>& entry : entries_) {
    MetricSnapshot snap;
    snap.name = entry->name;
    snap.help = entry->help;
    snap.type = entry->type;
    switch (entry->type) {
      case MetricType::kCounter:
        snap.value = entry->counter->value();
        break;
      case MetricType::kGauge:
        snap.value = entry->gauge->value();
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *entry->histogram;
        snap.bounds = h.bounds();
        snap.buckets.resize(snap.bounds.size() + 1);
        for (size_t i = 0; i < snap.buckets.size(); ++i) {
          snap.buckets[i] = h.buckets_[i].load(std::memory_order_relaxed);
        }
        snap.count = h.count();
        snap.sum_ms = h.sum_ms();
        snap.p50 = Percentile(snap.bounds, snap.buckets, snap.count, 0.50);
        snap.p95 = Percentile(snap.bounds, snap.buckets, snap.count, 0.95);
        snap.p99 = Percentile(snap.bounds, snap.buckets, snap.count, 0.99);
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::vector<MetricSnapshot> snapshot = Snapshot();
  JsonWriter w;
  w.BeginArray();
  for (const MetricSnapshot& m : snapshot) {
    w.BeginObject();
    w.Key("name");
    w.String(m.name);
    w.Key("type");
    w.String(TypeName(m.type));
    w.Key("help");
    w.String(m.help);
    if (m.type == MetricType::kHistogram) {
      w.Key("count");
      w.Int(m.count);
      w.Key("sum_ms");
      w.FixedDouble(m.sum_ms, 3);
      w.Key("p50_ms");
      w.FixedDouble(m.p50, 3);
      w.Key("p95_ms");
      w.FixedDouble(m.p95, 3);
      w.Key("p99_ms");
      w.FixedDouble(m.p99, 3);
      w.Key("le");
      w.BeginArray();
      for (double bound : m.bounds) w.Double(bound);
      w.EndArray();
      w.Key("buckets");
      w.BeginArray();
      for (int64_t bucket : m.buckets) w.Int(bucket);
      w.EndArray();
    } else {
      w.Key("value");
      w.Int(m.value);
    }
    w.EndObject();
  }
  w.EndArray();
  return std::move(w).str();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::vector<MetricSnapshot> snapshot = Snapshot();
  std::string out;
  char line[256];
  for (const MetricSnapshot& m : snapshot) {
    const std::string name = PrometheusName(m.name);
    out += "# HELP " + name + " " + m.help + "\n";
    out += "# TYPE " + name + " ";
    out += TypeName(m.type);
    out += "\n";
    switch (m.type) {
      case MetricType::kCounter:
      case MetricType::kGauge:
        std::snprintf(line, sizeof(line), "%s %lld\n", name.c_str(),
                      static_cast<long long>(m.value));
        out += line;
        break;
      case MetricType::kHistogram: {
        int64_t cumulative = 0;
        for (size_t i = 0; i < m.buckets.size(); ++i) {
          cumulative += m.buckets[i];
          if (i < m.bounds.size()) {
            std::snprintf(line, sizeof(line), "%s_bucket{le=\"%g\"} %lld\n",
                          name.c_str(), m.bounds[i],
                          static_cast<long long>(cumulative));
          } else {
            std::snprintf(line, sizeof(line), "%s_bucket{le=\"+Inf\"} %lld\n",
                          name.c_str(), static_cast<long long>(cumulative));
          }
          out += line;
        }
        std::snprintf(line, sizeof(line), "%s_sum %.3f\n", name.c_str(),
                      m.sum_ms);
        out += line;
        std::snprintf(line, sizeof(line), "%s_count %lld\n", name.c_str(),
                      static_cast<long long>(m.count));
        out += line;
        break;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace cupid
