#include "obs/trace.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "util/env.h"

namespace cupid {
namespace obs {

namespace trace_internal {

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<bool> g_env_checked{false};

namespace {
std::once_flag g_env_once;

void CheckEnvOnce() {
  std::call_once(g_env_once, [] {
    if (g_sink.load(std::memory_order_acquire) == nullptr &&
        (EnvFlag("CUPID_TRACE") || EnvFlag("CUPID_TRACE_INCREMENTAL"))) {
      // Leaked: the env-installed sink must outlive every span, including
      // ones emitted during static teardown.
      g_sink.store(new StderrTraceSink(), std::memory_order_release);
    }
    g_env_checked.store(true, std::memory_order_release);
  });
}
}  // namespace

TraceSink* SinkSlowPath() {
  CheckEnvOnce();
  return g_sink.load(std::memory_order_acquire);
}

int64_t NowUs() {
  // Steady clock against a process-wide epoch: trace timestamps order
  // events within one run and never consult wall-clock time.
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - kEpoch)
      .count();
}

void EmitSpan(TraceSink* sink, TraceContext* ctx, const char* name, int depth,
              int64_t start_us, const SpanRecord::Attr* attrs,
              size_t attr_count) {
  SpanRecord record;
  record.name = name;
  record.label = ctx->label();
  record.depth = depth;
  record.start_us = start_us;
  record.duration_us = NowUs() - start_us;
  record.attr_count = attr_count;
  for (size_t i = 0; i < attr_count; ++i) record.attrs[i] = attrs[i];
  sink->Emit(record);
}

}  // namespace trace_internal

namespace {

/// Appends at most `avail` bytes of formatted output; returns bytes that
/// snprintf would have written (standard truncation-aware accounting).
template <typename... Args>
size_t AppendF(char* buf, size_t pos, size_t size, const char* fmt,
               Args... args) {
  if (pos >= size) return 0;
  int n = std::snprintf(buf + pos, size - pos, fmt, args...);
  return n < 0 ? 0 : static_cast<size_t>(n);
}

TraceContext* AmbientContext() {
  static TraceContext* kAmbient = new TraceContext("ambient");
  return kAmbient;
}

TraceContext*& TlsContext() {
  thread_local TraceContext* ctx = nullptr;
  return ctx;
}

}  // namespace

size_t FormatSpanJson(const SpanRecord& span, char* buf, size_t buf_size) {
  // Span names, labels and attribute keys are identifiers we author; no
  // JSON string escaping is needed (and none is attempted).
  size_t pos = 0;
  pos += AppendF(buf, pos, buf_size,
                 "{\"span\":\"%s\",\"label\":\"%s\",\"depth\":%d,"
                 "\"start_us\":%lld,\"dur_us\":%lld",
                 span.name, span.label, span.depth,
                 static_cast<long long>(span.start_us),
                 static_cast<long long>(span.duration_us));
  if (span.attr_count > 0) {
    pos += AppendF(buf, pos, buf_size, ",\"attrs\":{");
    for (size_t i = 0; i < span.attr_count; ++i) {
      const SpanRecord::Attr& attr = span.attrs[i];
      const char* sep = i == 0 ? "" : ",";
      // Counts print as integers, durations keep microsecond precision.
      if (attr.value == std::floor(attr.value) &&
          std::abs(attr.value) < 9.0e15) {
        pos += AppendF(buf, pos, buf_size, "%s\"%s\":%lld", sep, attr.key,
                       static_cast<long long>(attr.value));
      } else {
        pos += AppendF(buf, pos, buf_size, "%s\"%s\":%.3f", sep, attr.key,
                       attr.value);
      }
    }
    pos += AppendF(buf, pos, buf_size, "}");
  }
  pos += AppendF(buf, pos, buf_size, "}\n");
  return pos < buf_size ? pos : buf_size - 1;
}

void StderrTraceSink::Emit(const SpanRecord& span) {
  char buf[1024];
  size_t n = FormatSpanJson(span, buf, sizeof(buf));
  MutexLock lock(&mu_);
  std::fwrite(buf, 1, n, stderr);
}

void VectorTraceSink::Emit(const SpanRecord& span) {
  MutexLock lock(&mu_);
  spans_.push_back(span);
}

std::vector<SpanRecord> VectorTraceSink::spans() const {
  MutexLock lock(&mu_);
  return spans_;
}

size_t VectorTraceSink::size() const {
  MutexLock lock(&mu_);
  return spans_.size();
}

void VectorTraceSink::Clear() {
  MutexLock lock(&mu_);
  spans_.clear();
}

void SetGlobalTraceSink(TraceSink* sink) {
  // Run the env probe first so it can never overwrite an explicit sink.
  trace_internal::SinkSlowPath();
  trace_internal::g_sink.store(sink, std::memory_order_release);
}

TraceSink* GlobalTraceSink() { return trace_internal::SinkSlowPath(); }

TraceContext* CurrentTraceContext() {
  TraceContext* ctx = TlsContext();
  return ctx != nullptr ? ctx : AmbientContext();
}

ScopedTraceContext::ScopedTraceContext(TraceContext* ctx)
    : previous_(TlsContext()) {
  TlsContext() = ctx;
}

ScopedTraceContext::~ScopedTraceContext() { TlsContext() = previous_; }

}  // namespace obs
}  // namespace cupid
