// Metrics registry: named monotonic counters, gauges and fixed-bucket
// latency histograms with one uniform export path.
//
// Before this subsystem every layer grew its own one-off stats struct
// (MatchService::CacheStats, DurabilityStats, per-job queue/run times)
// with no way to see them all at once; the registry is the single system
// those structs are now views over. Design constraints, in order:
//
//   * Metrics must never influence match results. Handles only ever
//     accumulate numbers — no metric feeds back into any decision.
//   * Hot-path updates are lock-free: counters, gauges and histogram
//     buckets are relaxed atomics; the registry mutex is touched only at
//     registration and snapshot time.
//   * Snapshots are deterministic: metrics iterate in registration order
//     (a vector, never hash order), and histogram sums accumulate in
//     integer microseconds, so totals are independent of the interleaving
//     of concurrent updaters — the same workload at any thread count
//     snapshots to identical values (tests/obs_test.cc pins this).
//
// Naming: dotted lowercase ("cupid.service.result_cache.hits"). The
// Prometheus exposition (RenderPrometheus) maps '.' and '-' to '_' and
// appends no implicit suffixes; the JSON exposition (RenderJson) keeps the
// dotted names. docs/OBSERVABILITY.md is the metric catalog.
//
// Instances: components default to the process-wide registry
// (MetricsRegistry::Default()), so one `metrics` server command exports
// everything. Two components registering the same name share the metric;
// per-instance views (e.g. MatchService::cache_stats) subtract a baseline
// captured at construction, which is exact while the instance is the only
// concurrent updater of its metrics — the serving topology (one service,
// one scheduler, one repository per process) and the sequential test
// pattern both satisfy that. Tests needing hard isolation pass their own
// registry.

#ifndef CUPID_OBS_METRICS_H_
#define CUPID_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cupid {
namespace obs {

/// \brief Monotonic counter. Thread-safe, lock-free.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<int64_t> value_{0};
};

/// \brief Up/down gauge. Add/Sub compose across instances sharing the
/// metric (e.g. queue depth sums over schedulers); Set is last-writer-wins.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Default latency bucket upper bounds, milliseconds. Spans the observed
/// dynamic range: ~10us result-cache hits up to multi-second cold corpus
/// sweeps.
const std::vector<double>& DefaultLatencyBucketsMs();

/// \brief Fixed-bucket histogram of millisecond values.
///
/// Observations land in the first bucket whose upper bound is >= the
/// value; values beyond the last bound land in an implicit +Inf bucket.
/// The sum accumulates in integer microseconds (sub-microsecond precision
/// is dropped), which keeps snapshot totals bit-identical across updater
/// interleavings — no float accumulation order anywhere.
class Histogram {
 public:
  void Observe(double value_ms) {
    size_t i = 0;
    while (i < bounds_.size() && value_ms > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(static_cast<int64_t>(value_ms * 1000.0),
                      std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_ms() const {
    return static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)),
        buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
    for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  }

  std::vector<double> bounds_;  ///< ascending finite upper bounds
  /// bounds_.size() + 1 buckets; the last is +Inf.
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_us_{0};
};

enum class MetricType { kCounter, kGauge, kHistogram };

/// Point-in-time value of one metric (see MetricsRegistry::Snapshot).
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;

  /// Counter / gauge value.
  int64_t value = 0;

  /// Histogram state; empty for counters/gauges. `buckets` are
  /// per-bucket (non-cumulative) counts, one per bound plus the final
  /// +Inf bucket. Percentiles are linear interpolations within the
  /// containing bucket; observations in the +Inf bucket report the last
  /// finite bound (a floor, not an estimate).
  int64_t count = 0;
  double sum_ms = 0.0;
  std::vector<double> bounds;
  std::vector<int64_t> buckets;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// \brief Owner of named metrics with registration-order iteration.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every component defaults to. Never
  /// destroyed (metric handles stay valid through static teardown).
  static MetricsRegistry* Default();

  /// \brief Returns the counter registered under `name`, creating it on
  /// first use. `help` is recorded at creation and ignored afterwards.
  /// Registering a name that exists with a different type is a programming
  /// error and aborts (metric names are compile-time constants; a clash is
  /// a bug, not an input condition).
  Counter* GetCounter(std::string_view name, std::string_view help);
  Gauge* GetGauge(std::string_view name, std::string_view help);
  /// `bounds` must be ascending; empty uses DefaultLatencyBucketsMs().
  /// Bounds of an existing histogram are kept (first registration wins).
  Histogram* GetHistogram(std::string_view name, std::string_view help,
                          std::vector<double> bounds = {});

  /// \brief Point-in-time values of every metric, in registration order.
  /// Values are individually atomic but not mutually consistent (updates
  /// may land between reads) — standard scrape semantics.
  std::vector<MetricSnapshot> Snapshot() const;

  /// JSON array of metric objects (the `metrics` protocol payload).
  std::string RenderJson() const;
  /// Prometheus text exposition (one scrape page).
  std::string RenderPrometheus() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, std::string_view help,
                      MetricType type, std::vector<double> bounds)
      EXCLUDES(mu_);

  mutable Mutex mu_;
  /// Registration order — the deterministic iteration the snapshot and
  /// both expositions follow.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mu_);
  std::unordered_map<std::string, size_t> index_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace cupid

#endif  // CUPID_OBS_METRICS_H_
