// Scoped-span tracing: structured phase-boundary timings as JSONL records
// to a pluggable sink, with a guaranteed zero-cost disabled path.
//
// The pre-obs tracing was four fprintf sites gated on
// getenv("CUPID_TRACE_INCREMENTAL"), each with its own ad-hoc text format.
// Spans replace those sites with one structured record shape
// (docs/OBSERVABILITY.md lists the span taxonomy) while keeping the
// non-negotiable property that observability never influences match
// results: a span only reads clocks and writes to the sink; nothing in
// match code branches on tracing state except the trace emission itself.
// tests/obs_test.cc asserts bit-identical match results traced vs
// untraced through the differential harness.
//
// Cost model:
//   * Disabled (no sink installed): ScopedSpan's constructor is one
//     relaxed atomic load; Attr() and the destructor are no-ops. No
//     clock reads, no allocation, nothing.
//   * Enabled: two steady_clock reads per span, attributes in a
//     fixed-capacity inline array, one formatted write on destruction.
//     Still no heap allocation per span.
//
// Nesting: spans record their depth from the active TraceContext, and
// because emission happens in the destructor, inner spans appear in the
// stream before the outer span that contains them (close order).
//
// Context: services install a TraceContext per request with
// ScopedTraceContext (thread-local). Code running outside any installed
// context — direct MatchSession use, CLI tools, tests — falls back to a
// process-wide ambient context, which is what keeps the historical
// CUPID_TRACE_INCREMENTAL behavior working: set the variable and every
// traced phase logs to stderr, service or not.

#ifndef CUPID_OBS_TRACE_H_
#define CUPID_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cupid {
namespace obs {

/// One completed span. `name`, `label` and attribute keys are expected to
/// be string literals (they are stored as raw pointers and may be read
/// after the emitting frame returns, e.g. by VectorTraceSink).
struct SpanRecord {
  static constexpr size_t kMaxAttrs = 16;

  const char* name = "";   ///< span name, e.g. "session.rematch"
  const char* label = "";  ///< request label from the TraceContext
  int depth = 0;           ///< nesting depth at open (0 = top level)
  int64_t start_us = 0;    ///< microseconds since process trace epoch
  int64_t duration_us = 0;

  struct Attr {
    const char* key;
    double value;
  };
  Attr attrs[kMaxAttrs];
  size_t attr_count = 0;
};

/// \brief Destination for completed spans. Emit may be called
/// concurrently from any thread; implementations synchronize internally.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const SpanRecord& span) = 0;
};

/// \brief One JSONL object per span on stderr (the CUPID_TRACE sink).
class StderrTraceSink : public TraceSink {
 public:
  void Emit(const SpanRecord& span) override EXCLUDES(mu_);

 private:
  Mutex mu_;  ///< serializes writes so lines never interleave
};

/// \brief Captures spans in memory, in emission order. Test support.
class VectorTraceSink : public TraceSink {
 public:
  void Emit(const SpanRecord& span) override EXCLUDES(mu_);
  std::vector<SpanRecord> spans() const EXCLUDES(mu_);
  size_t size() const EXCLUDES(mu_);
  void Clear() EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<SpanRecord> spans_ GUARDED_BY(mu_);
};

/// \brief Accepts and discards spans. Measures the full record-building
/// path without I/O (bench_service traced-overhead runs).
class NullTraceSink : public TraceSink {
 public:
  void Emit(const SpanRecord& span) override { (void)span; }
};

/// Formats one span as a single JSONL line into `buf`; returns the number
/// of bytes written (no trailing NUL guarantee beyond snprintf's).
/// Exposed for sink implementations and tests.
size_t FormatSpanJson(const SpanRecord& span, char* buf, size_t buf_size);

/// \brief Installs the process-wide span sink. nullptr disables tracing.
/// The sink must outlive all subsequent spans; callers keep ownership.
/// Overrides any sink the environment variables installed.
void SetGlobalTraceSink(TraceSink* sink);

/// The installed sink, after a one-time environment check: if CUPID_TRACE
/// or CUPID_TRACE_INCREMENTAL is on and no sink was set programmatically,
/// a StderrTraceSink is installed. nullptr means tracing is disabled.
TraceSink* GlobalTraceSink();

/// True when a sink is installed (spans will be recorded and emitted).
inline bool TracingEnabledFast();

/// \brief Per-request trace state: a label stamped on every span and the
/// current nesting depth. `label` must be a string literal or otherwise
/// outlive the context.
class TraceContext {
 public:
  explicit TraceContext(const char* label) : label_(label) {}
  const char* label() const { return label_; }

  std::atomic<int> depth{0};

 private:
  const char* label_;
};

/// The context spans attach to on this thread: the innermost installed
/// ScopedTraceContext, else the process-wide ambient context.
TraceContext* CurrentTraceContext();

/// \brief Installs `ctx` as this thread's trace context for the scope,
/// restoring the previous one on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext* ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext* previous_;
};

namespace trace_internal {
extern std::atomic<TraceSink*> g_sink;  ///< set only via SetGlobalTraceSink
/// Runs the env check once and returns the current sink.
TraceSink* SinkSlowPath();
/// Microseconds on the steady clock since the process trace epoch.
int64_t NowUs();
/// Builds the record and hands it to `sink` (out-of-line cold path).
void EmitSpan(TraceSink* sink, TraceContext* ctx, const char* name, int depth,
              int64_t start_us, const SpanRecord::Attr* attrs,
              size_t attr_count);
extern std::atomic<bool> g_env_checked;
}  // namespace trace_internal

inline bool TracingEnabledFast() {
  return trace_internal::g_sink.load(std::memory_order_acquire) != nullptr;
}

/// \brief RAII span: opens at construction, emits at destruction.
///
///   obs::ScopedSpan span("treematch.sweep");
///   ...
///   span.Attr("visited", visited);
///
/// When tracing is disabled every member is a no-op (see cost model
/// above). Attributes beyond SpanRecord::kMaxAttrs are dropped silently —
/// spans are fixed-shape by design, not a general logging channel.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    using trace_internal::g_env_checked;
    // One-time env probe, then a single acquire load per span.
    sink_ = g_env_checked.load(std::memory_order_acquire)
                ? trace_internal::g_sink.load(std::memory_order_acquire)
                : trace_internal::SinkSlowPath();
    if (sink_ == nullptr) return;
    name_ = name;
    ctx_ = CurrentTraceContext();
    depth_ = ctx_->depth.fetch_add(1, std::memory_order_relaxed);
    start_us_ = trace_internal::NowUs();
  }

  ~ScopedSpan() {
    if (sink_ == nullptr) return;
    ctx_->depth.fetch_sub(1, std::memory_order_relaxed);
    trace_internal::EmitSpan(sink_, ctx_, name_, depth_, start_us_, attrs_,
                             attr_count_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when this span will be emitted; callers may skip computing
  /// expensive attribute values when false.
  bool enabled() const { return sink_ != nullptr; }

  /// Attaches a numeric attribute. `key` must be a string literal.
  /// Integer counts convert implicitly (exact below 2^53; the JSONL
  /// formatter prints integral values without a decimal point).
  void Attr(const char* key, double value) {
    if (sink_ == nullptr || attr_count_ >= SpanRecord::kMaxAttrs) return;
    attrs_[attr_count_++] = {key, value};
  }

 private:
  TraceSink* sink_ = nullptr;
  TraceContext* ctx_ = nullptr;
  const char* name_ = "";
  int depth_ = 0;
  int64_t start_us_ = 0;
  SpanRecord::Attr attrs_[SpanRecord::kMaxAttrs];
  size_t attr_count_ = 0;
};

}  // namespace obs
}  // namespace cupid

#endif  // CUPID_OBS_TRACE_H_
