// ProtocolExecutor — the JSONL command protocol of cupid_server, factored
// out of the example binary so the stdin driver and the socket server run
// the exact same dispatch (docs/SERVICE.md, "The JSONL protocol").
//
// One Execute call handles one request line: validate at the boundary
// (UTF-8, JSON shape, knob domains), run the command against the warm
// service stack, and emit zero or more response lines through the caller's
// sink. Every response carries "v":1 and "status":"ok"/"error"; failures
// are structured {"error":{"code","message"}} objects and never throw or
// tear down the transport — the caller decides what a failed command means
// (the stdin driver counts it toward the exit code, the socket server just
// keeps serving).
//
// The executor is stateless between calls apart from the service stack it
// fronts, and is safe to call concurrently from scheduler workers EXCEPT
// for the repository-replacing "load" command — socket mode therefore
// rejects "load" (Unsupported), and the stdin driver, which executes
// commands one at a time, keeps it.

#ifndef CUPID_NET_PROTOCOL_H_
#define CUPID_NET_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "net/subscription.h"
#include "service/corpus_search.h"
#include "service/job_scheduler.h"
#include "service/match_service.h"
#include "service/schema_repository.h"
#include "thesaurus/thesaurus.h"
#include "util/json.h"
#include "util/status.h"

namespace cupid {

/// Protocol version stamped into every response line. Bump on incompatible
/// response-shape changes; clients reject versions they do not know.
inline constexpr int kProtocolVersion = 1;

class ProtocolExecutor {
 public:
  struct Options {
    /// Re-run every match directly through CupidMatcher and report
    /// "selfcheck":"ok"/"mismatch" per response (CI).
    bool selfcheck = false;
    /// Default of the per-request "mappings" flag.
    bool default_mappings = true;
    /// Socket mode: Execute runs on scheduler workers, so match/batch call
    /// MatchService directly instead of submit-and-wait (a worker waiting
    /// on its own pool deadlocks a single-worker scheduler), and the
    /// repository-replacing "load" command is rejected.
    bool socket_mode = false;
  };

  /// Receives one response line (no trailing newline) per call.
  using Sink = std::function<void(const std::string&)>;

  /// All pointers must outlive the executor. `search` and `broker` may be
  /// null: the corresponding commands then fail with Unsupported.
  ProtocolExecutor(const Thesaurus* thesaurus, SchemaRepository* repository,
                   MatchService* service, JobScheduler* scheduler,
                   CorpusSearchService* search, SubscriptionBroker* broker,
                   Options options);

  /// \brief Executes one request line on behalf of `client_id` (0 for the
  /// stdin driver). Returns true when every emitted response was "ok"
  /// (selfcheck mismatches count as failures).
  bool Execute(uint64_t client_id, const std::string& line, const Sink& sink);

  /// \brief One protocol-v1 error line (the shape every failure uses).
  static std::string ErrorFrame(const std::string& cmd, const Status& status);

 private:
  bool CmdRegister(const JsonValue& v, const Sink& sink);
  bool CmdEdit(const JsonValue& v, const Sink& sink);
  bool CmdMatch(const JsonValue& v, const Sink& sink);
  bool CmdBatch(const JsonValue& v, const Sink& sink);
  bool CmdSearch(const JsonValue& v, const Sink& sink);
  bool CmdSaveLoad(const std::string& cmd, const JsonValue& v,
                   const Sink& sink);
  bool CmdStats(const Sink& sink);
  bool CmdMetrics(const JsonValue& v, const Sink& sink);
  bool CmdSubscribe(uint64_t client_id, const JsonValue& v, const Sink& sink);
  bool CmdUnsubscribe(uint64_t client_id, const JsonValue& v,
                      const Sink& sink);

  /// Runs one parsed match request on the path the mode allows (scheduler
  /// submit-and-wait for stdin, direct service call on a worker).
  Result<MatchResponse> RunMatch(MatchRequest request);

  /// Emits a MatchResponse with the protocol envelope spliced in; returns
  /// false on a selfcheck mismatch.
  bool EmitMatchResponse(const MatchResponse& response,
                         const CupidConfig& config, bool include_mappings,
                         const Sink& sink);

  const Thesaurus* thesaurus_;
  SchemaRepository* repository_;
  MatchService* service_;
  JobScheduler* scheduler_;
  CorpusSearchService* search_;
  SubscriptionBroker* broker_;
  Options options_;
};

}  // namespace cupid

#endif  // CUPID_NET_PROTOCOL_H_
