#include "net/poll_reader.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

namespace cupid {

PollLineReader::PollLineReader(int fd, WakeupFd* wakeup)
    : fd_(fd), wakeup_(wakeup) {}

PollLineReader::Event PollLineReader::Next(std::string* line) {
  for (;;) {
    // Serve buffered lines first: a single read can fetch several.
    size_t nl = buffer_.find('\n', scanned_);
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      scanned_ = 0;
      return Event::kLine;
    }
    scanned_ = buffer_.size();
    if (eof_) {
      if (!buffer_.empty()) {  // unterminated final line
        *line = std::move(buffer_);
        buffer_.clear();
        scanned_ = 0;
        return Event::kLine;
      }
      return Event::kEof;
    }

    struct pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    nfds_t nfds = 1;
    if (wakeup_ != nullptr && wakeup_->ok()) {
      fds[1].fd = wakeup_->fd();
      fds[1].events = POLLIN;
      fds[1].revents = 0;
      nfds = 2;
    }
    int ready = poll(fds, nfds, -1);
    if (ready < 0) {
      if (errno == EINTR) {
        // A handler ran on this thread; its Notify() byte (if any) makes
        // the wakeup fd readable on the retry, so looping is enough even
        // without one.
        continue;
      }
      status_ = Status::IoError(std::string("poll: ") + strerror(errno));
      return Event::kError;
    }
    if (nfds == 2 && (fds[1].revents & POLLIN) != 0) {
      wakeup_->Drain();
      return Event::kWakeup;
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;

    char chunk[4096];
    ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
    } else if (n == 0) {
      eof_ = true;
    } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
      status_ = Status::IoError(std::string("read: ") + strerror(errno));
      return Event::kError;
    }
  }
}

}  // namespace cupid
