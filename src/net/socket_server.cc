#include "net/socket_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace cupid {

namespace {

bool MakeNonBlockingCloexec(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  int fdflags = fcntl(fd, F_GETFD, 0);
  return fdflags >= 0 && fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) >= 0;
}

/// A write error that means "the client went away", not "the server is
/// broken": close that one connection, keep serving the rest.
bool IsDisconnectErrno(int err) {
  return err == EPIPE || err == ECONNRESET || err == ETIMEDOUT ||
         err == ENOTCONN || err == EBADF;
}

}  // namespace

Status SocketServer::Options::Validate() const {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("listen port must be within [0,65535]");
  }
  if (max_connections <= 0) {
    return Status::InvalidArgument("max_connections must be > 0");
  }
  if (max_frame_bytes == 0) {
    return Status::InvalidArgument("max_frame_bytes must be > 0");
  }
  if (write_queue_limit_bytes == 0) {
    return Status::InvalidArgument("write_queue_limit_bytes must be > 0");
  }
  if (idle_timeout_ms < 0) {
    return Status::InvalidArgument("idle_timeout_ms must be >= 0");
  }
  if (drain_timeout_ms < 0) {
    return Status::InvalidArgument("drain_timeout_ms must be >= 0");
  }
  return Status::OK();
}

SocketServer::SocketServer(Options options, JobScheduler* scheduler)
    : options_(std::move(options)), scheduler_(scheduler) {
  obs::MetricsRegistry* reg = options_.metrics != nullptr
                                  ? options_.metrics
                                  : obs::MetricsRegistry::Default();
  connections_gauge_ =
      reg->GetGauge("cupid.net.connections", "Open client connections");
  write_queue_bytes_gauge_ = reg->GetGauge(
      "cupid.net.write_queue_bytes",
      "Bytes queued but not yet written across all connections");
  accepted_ =
      reg->GetCounter("cupid.net.connections_accepted", "Connections accepted");
  frames_received_ =
      reg->GetCounter("cupid.net.frames_received", "Request frames received");
  frames_rejected_ = reg->GetCounter(
      "cupid.net.frames_rejected",
      "Frames rejected at the boundary (oversized, before parsing)");
  responses_sent_ = reg->GetCounter(
      "cupid.net.frames_sent", "Response and push frames queued for send");
  disconnects_ =
      reg->GetCounter("cupid.net.disconnects", "Connections closed, any cause");
  disconnects_write_error_ = reg->GetCounter(
      "cupid.net.disconnects_write_error",
      "Connections closed because a write failed (EPIPE/ECONNRESET)");
  slow_subscriber_drops_ = reg->GetCounter(
      "cupid.net.slow_subscriber_drops",
      "Connections dropped because their write queue overflowed");
  idle_timeouts_ = reg->GetCounter("cupid.net.idle_timeouts",
                                   "Connections closed by the idle timeout");
  inline_executions_ = reg->GetCounter(
      "cupid.net.inline_executions",
      "Frames executed on the I/O thread because the scheduler was full");
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) close(listen_fd_);
  std::vector<std::shared_ptr<Connection>> leftover;
  {
    // A drain task still queued in the scheduler captures `this`; it must
    // finish before any member is torn down. Tasks always terminate (the
    // handler returns and the per-connection queue is finite), and the
    // scheduler outlives the server, so this wait is bounded by the work
    // already admitted.
    MutexLock lock(&mu_);
    while (outstanding_tasks_ > 0) tasks_cv_.Wait(&mu_);
    for (auto& [id, conn] : connections_) leftover.push_back(conn);
    connections_.clear();
  }
  for (auto& conn : leftover) close(conn->fd);
}

Status SocketServer::Start() {
  CUPID_RETURN_NOT_OK(options_.Validate());
  if (!wakeup_.ok()) return wakeup_.status();
  if (handler_ == nullptr) {
    return Status::InvalidArgument("SocketServer needs a handler");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status =
        Status::IoError("bind " + options_.host + ":" +
                        std::to_string(options_.port) + ": " + strerror(errno));
    close(fd);
    return status;
  }
  if (listen(fd, 128) != 0) {
    Status status = Status::IoError(std::string("listen: ") + strerror(errno));
    close(fd);
    return status;
  }
  if (!MakeNonBlockingCloexec(fd)) {
    Status status = Status::IoError(std::string("fcntl: ") + strerror(errno));
    close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    Status status =
        Status::IoError(std::string("getsockname: ") + strerror(errno));
    close(fd);
    return status;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  return Status::OK();
}

void SocketServer::RequestShutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  wakeup_.Notify();
}

int64_t SocketServer::connections() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(connections_.size());
}

void SocketServer::SetIdleExempt(uint64_t client_id, bool exempt) {
  MutexLock lock(&mu_);
  auto it = connections_.find(client_id);
  if (it != connections_.end()) it->second->idle_exempt = exempt;
}

bool SocketServer::EnqueueLocked(const std::shared_ptr<Connection>& conn,
                                 const std::string& line) {
  size_t bytes = line.size() + 1;
  if (conn->write_queued_bytes + bytes > options_.write_queue_limit_bytes) {
    conn->drop = true;
    return false;
  }
  conn->write_queue.push_back(line + "\n");
  conn->write_queued_bytes += bytes;
  write_queue_bytes_gauge_->Add(static_cast<int64_t>(bytes));
  responses_sent_->Increment();
  UpdatePauseStateLocked(conn);
  return true;
}

bool SocketServer::PushFrame(uint64_t client_id, const std::string& line) {
  bool queued = false;
  bool overflowed = false;
  {
    MutexLock lock(&mu_);
    auto it = connections_.find(client_id);
    if (it != connections_.end() && !it->second->drop) {
      queued = EnqueueLocked(it->second, line);
      overflowed = !queued;
    }
  }
  if (overflowed) slow_subscriber_drops_->Increment();
  wakeup_.Notify();
  return queued;
}

void SocketServer::UpdatePauseStateLocked(
    const std::shared_ptr<Connection>& conn) {
  // High water: stop reading while the peer is not consuming responses or
  // the execution backlog for this connection is deep. Low water: resume.
  // The flag is consumed by the I/O thread when it builds the poll set.
  size_t high = options_.write_queue_limit_bytes / 2;
  size_t low = options_.write_queue_limit_bytes / 4;
  if (!conn->reads_paused &&
      (conn->write_queued_bytes > high || conn->pending_requests.size() > 64)) {
    conn->reads_paused = true;
  } else if (conn->reads_paused && conn->write_queued_bytes < low &&
             conn->pending_requests.size() <= 16) {
    conn->reads_paused = false;
  }
}

bool SocketServer::ScheduleLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->executing || conn->pending_requests.empty() || conn->drop) {
    return false;
  }
  conn->executing = true;
  if (scheduler_ != nullptr) {
    uint64_t id = conn->id;
    auto job = scheduler_->SubmitTask([this, id]() -> Result<MatchResponse> {
      DrainRequests(id);
      {
        MutexLock lock(&mu_);
        if (--outstanding_tasks_ == 0) tasks_cv_.SignalAll();
      }
      return MatchResponse{};  // sentinel; the socket path ignores it
    });
    if (job.ok()) {
      // Counted under the same mu_ hold that submitted it, so the task's
      // decrement (which blocks on mu_) cannot run first.
      ++outstanding_tasks_;
      return false;
    }
    // Admission queue full: overload backpressure — execute on the I/O
    // thread (the caller, after releasing the lock).
    inline_executions_->Increment();
  }
  return true;
}

void SocketServer::DrainRequests(uint64_t id) {
  auto sink = [this, id](const std::string& response) {
    bool overflowed = false;
    {
      MutexLock lock(&mu_);
      auto it = connections_.find(id);
      if (it == connections_.end() || it->second->drop) return;
      overflowed = !EnqueueLocked(it->second, response);
    }
    if (overflowed) slow_subscriber_drops_->Increment();
    wakeup_.Notify();
  };
  for (;;) {
    std::string line;
    {
      MutexLock lock(&mu_);
      auto it = connections_.find(id);
      if (it == connections_.end()) return;
      auto& conn = it->second;
      if (conn->pending_requests.empty() || conn->drop) {
        conn->executing = false;
        break;
      }
      line = std::move(conn->pending_requests.front());
      conn->pending_requests.pop_front();
      UpdatePauseStateLocked(conn);
    }
    handler_(id, line, sink);
  }
  // Reads may have been paused on backlog; let the I/O thread re-evaluate.
  wakeup_.Notify();
}

void SocketServer::AcceptNew() {
  for (;;) {
    struct sockaddr_in peer;
    socklen_t len = sizeof(peer);
    int fd =
        accept(listen_fd_, reinterpret_cast<struct sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient failure; poll again
    }
    if (!MakeNonBlockingCloexec(fd)) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    bool over_capacity;
    {
      MutexLock lock(&mu_);
      over_capacity = static_cast<int>(connections_.size()) >=
                      options_.max_connections;
    }
    if (over_capacity) {
      // Best-effort structured refusal, then close; the fd is fresh so a
      // single short write will almost always go through.
      static const char kFull[] =
          "{\"v\":1,\"status\":\"error\",\"error\":{\"code\":\"Unavailable\","
          "\"message\":\"server at max_connections\"}}\n";
      ssize_t ignored = write(fd, kFull, sizeof(kFull) - 1);
      (void)ignored;
      close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_activity = Clock::now();
    {
      MutexLock lock(&mu_);
      conn->id = next_id_++;
      connections_.emplace(conn->id, conn);
    }
    connections_gauge_->Add(1);
    accepted_->Increment();
  }
}

void SocketServer::ReadFrames(const std::shared_ptr<Connection>& conn) {
  char chunk[8192];
  bool closed = false;
  int oversized = 0;
  std::vector<std::string> lines;
  for (;;) {
    ssize_t n = read(conn->fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn->last_activity = Clock::now();
      size_t start = 0;
      if (conn->discarding) {
        // Skip the tail of an oversized frame; framing resynchronizes at
        // the next newline.
        const char* nl = static_cast<const char*>(
            memchr(chunk, '\n', static_cast<size_t>(n)));
        if (nl == nullptr) continue;
        start = static_cast<size_t>(nl - chunk) + 1;
        conn->discarding = false;
      }
      conn->read_buf.append(chunk + start, static_cast<size_t>(n) - start);
      size_t pos = 0;
      size_t nl;
      while ((nl = conn->read_buf.find('\n', pos)) != std::string::npos) {
        if (nl - pos > options_.max_frame_bytes) {
          // A complete line can still exceed the bound when it arrived
          // within one read burst; reject it like the streamed case.
          frames_rejected_->Increment();
          ++oversized;
        } else {
          lines.emplace_back(conn->read_buf, pos, nl - pos);
        }
        pos = nl + 1;
      }
      conn->read_buf.erase(0, pos);
      if (conn->read_buf.size() > options_.max_frame_bytes) {
        frames_rejected_->Increment();
        conn->read_buf.clear();
        conn->discarding = true;
        ++oversized;
      }
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
    } else if (n == 0) {
      closed = true;
      break;
    } else {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      closed = true;
      break;
    }
  }

  bool run_inline = false;
  {
    MutexLock lock(&mu_);
    for (std::string& line : lines) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      frames_received_->Increment();
      conn->pending_requests.push_back(std::move(line));
    }
    for (int i = 0; i < oversized; ++i) {
      // Boundary rejection: answered here, never parsed. The connection
      // stays usable — only the oversized line was discarded.
      EnqueueLocked(
          conn,
          "{\"v\":1,\"status\":\"error\",\"error\":{\"code\":\"OutOfRange\","
          "\"message\":\"frame exceeds max_frame_bytes (" +
              std::to_string(options_.max_frame_bytes) +
              "); line discarded\"}}");
    }
    UpdatePauseStateLocked(conn);
    run_inline = ScheduleLocked(conn);
  }
  if (run_inline) DrainRequests(conn->id);
  if (closed) CloseConnection(conn, "peer closed");
}

bool SocketServer::FlushWrites(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    std::string* front = nullptr;
    {
      MutexLock lock(&mu_);
      if (conn->write_queue.empty()) return true;
      front = &conn->write_queue.front();
    }
    // Only the I/O thread pops the queue, so `front` stays valid while we
    // write without the lock held.
    ssize_t n = write(conn->fd, front->data() + conn->write_offset,
                      front->size() - conn->write_offset);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      if (IsDisconnectErrno(errno)) {
        disconnects_write_error_->Increment();
      }
      return false;
    }
    conn->write_offset += static_cast<size_t>(n);
    if (conn->write_offset == front->size()) {
      MutexLock lock(&mu_);
      size_t bytes = conn->write_queue.front().size();
      conn->write_queue.pop_front();
      conn->write_queued_bytes -= bytes;
      write_queue_bytes_gauge_->Add(-static_cast<int64_t>(bytes));
      conn->write_offset = 0;
      UpdatePauseStateLocked(conn);
    } else {
      return true;  // partial write: socket buffer full, wait for POLLOUT
    }
  }
}

void SocketServer::CloseConnection(const std::shared_ptr<Connection>& conn,
                                   const char* reason) {
  (void)reason;
  {
    MutexLock lock(&mu_);
    if (connections_.erase(conn->id) == 0) return;  // already closed
    write_queue_bytes_gauge_->Add(
        -static_cast<int64_t>(conn->write_queued_bytes));
    conn->write_queued_bytes = 0;
    conn->write_queue.clear();
    conn->pending_requests.clear();
    conn->drop = true;
  }
  close(conn->fd);
  connections_gauge_->Add(-1);
  disconnects_->Increment();
  if (disconnect_hook_) disconnect_hook_(conn->id);
}

void SocketServer::Run() {
  std::vector<struct pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  std::vector<std::shared_ptr<Connection>> to_close;

  auto build_poll_set = [&](bool draining) {
    fds.clear();
    polled.clear();
    struct pollfd w = {};
    w.fd = wakeup_.fd();
    w.events = POLLIN;
    fds.push_back(w);
    if (!draining && listen_fd_ >= 0) {
      struct pollfd l = {};
      l.fd = listen_fd_;
      l.events = POLLIN;
      fds.push_back(l);
    }
    MutexLock lock(&mu_);
    for (auto& [id, conn] : connections_) {
      struct pollfd p = {};
      p.fd = conn->fd;
      if (!draining && !conn->reads_paused && !conn->drop) p.events |= POLLIN;
      if (!conn->write_queue.empty()) p.events |= POLLOUT;
      if (p.events == 0 && !draining) {
        // Still watch for hangup so dead subscribers are reaped.
        p.events = POLLIN;
      }
      if (p.events == 0) continue;
      fds.push_back(p);
      polled.push_back(conn);
    }
  };

  auto service_poll = [&](bool draining, int timeout_ms) {
    build_poll_set(draining);
    int ready = poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms);
    if (ready < 0) return;
    size_t base = 1;
    if (fds[0].revents & POLLIN) wakeup_.Drain();
    if (!draining && listen_fd_ >= 0) {
      if (fds[1].revents & POLLIN) AcceptNew();
      base = 2;
    }
    to_close.clear();
    for (size_t i = base; i < fds.size(); ++i) {
      auto& conn = polled[i - base];
      short re = fds[i].revents;
      if (re & POLLOUT) {
        if (!FlushWrites(conn)) {
          to_close.push_back(conn);
          continue;
        }
      }
      if (!draining && (re & (POLLIN | POLLHUP | POLLERR))) {
        ReadFrames(conn);  // closes internally on EOF
      } else if (draining && (re & (POLLHUP | POLLERR))) {
        to_close.push_back(conn);
      }
    }
    for (auto& conn : to_close) CloseConnection(conn, "io error");

    // Reap connections flagged for dropping (queue overflow) and idle ones.
    std::vector<std::shared_ptr<Connection>> reap;
    Clock::time_point now = Clock::now();
    {
      MutexLock lock(&mu_);
      for (auto& [id, conn] : connections_) {
        if (conn->drop) {
          reap.push_back(conn);
        } else if (!draining && options_.idle_timeout_ms > 0 &&
                   !conn->idle_exempt &&
                   now - conn->last_activity >
                       std::chrono::milliseconds(options_.idle_timeout_ms)) {
          conn->drop = true;
          reap.push_back(conn);
          idle_timeouts_->Increment();
        }
      }
    }
    for (auto& conn : reap) CloseConnection(conn, "reaped");
  };

  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    int timeout = options_.idle_timeout_ms > 0
                      ? std::min(options_.idle_timeout_ms, 1000)
                      : 1000;
    service_poll(/*draining=*/false, timeout);
  }

  // ---- graceful drain ----
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_timeout_ms);

  // Phase 1: let in-flight commands finish (they may still produce
  // responses and subscription events); keep flushing while waiting.
  for (;;) {
    bool busy = false;
    {
      MutexLock lock(&mu_);
      busy = outstanding_tasks_ > 0;
      for (auto& [id, conn] : connections_) {
        if (busy) break;
        if (conn->executing || !conn->pending_requests.empty()) {
          busy = true;
        }
      }
    }
    if (!busy || Clock::now() >= deadline) break;
    service_poll(/*draining=*/true, 20);
  }

  // Phase 2: drain the subscription broker — queued schema edits turn into
  // their final pushes before connections go away.
  if (drain_hook_) drain_hook_();

  // Phase 3: flush every write queue (responses and final pushes).
  for (;;) {
    bool bytes_pending = false;
    {
      MutexLock lock(&mu_);
      for (auto& [id, conn] : connections_) {
        if (conn->write_queued_bytes > 0) {
          bytes_pending = true;
          break;
        }
      }
    }
    if (!bytes_pending || Clock::now() >= deadline) break;
    service_poll(/*draining=*/true, 20);
  }

  std::vector<std::shared_ptr<Connection>> all;
  {
    MutexLock lock(&mu_);
    for (auto& [id, conn] : connections_) all.push_back(conn);
  }
  for (auto& conn : all) CloseConnection(conn, "shutdown");
}

}  // namespace cupid
