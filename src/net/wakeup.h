// WakeupFd — a self-pipe that makes poll(2) loops interruptible.
//
// The classic fix for the signal/poll race: a signal handler (or any other
// thread) calls Notify(), which writes one byte into a non-blocking pipe;
// a poll loop that includes fd() in its read set wakes up immediately and
// checks whatever flag the notifier set. Both cupid_server input drivers
// share one instance: the stdin driver polls {input, wakeup} instead of
// blocking in std::getline (where a SIGTERM used to sit unnoticed until
// the next input line arrived), and the socket server polls
// {listener, wakeup, connections...}.
//
// Notify() is async-signal-safe (one write(2) on a pre-opened fd, no
// allocation, no locks) and idempotent while a wakeup is pending: the pipe
// is non-blocking, so a full pipe simply drops the redundant byte — the
// reader is already going to wake.

#ifndef CUPID_NET_WAKEUP_H_
#define CUPID_NET_WAKEUP_H_

#include "util/status.h"

namespace cupid {

class WakeupFd {
 public:
  /// Opens the pipe; failures surface through ok()/status() (a process
  /// out of fds cannot build a server loop).
  WakeupFd();
  ~WakeupFd();

  WakeupFd(const WakeupFd&) = delete;
  WakeupFd& operator=(const WakeupFd&) = delete;

  bool ok() const { return read_fd_ >= 0; }
  Status status() const { return status_; }

  /// The fd to include (POLLIN) in a poll set.
  int fd() const { return read_fd_; }

  /// \brief Wakes the poller. Async-signal-safe; never blocks.
  void Notify();

  /// \brief Consumes pending wakeup bytes so the next poll blocks again.
  /// Call from the poll loop after observing readability.
  void Drain();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
  Status status_;
};

}  // namespace cupid

#endif  // CUPID_NET_WAKEUP_H_
