// SocketServer — a poll(2)-based TCP server speaking the line-framed
// protocol-v1 JSON of cupid_server (docs/SERVICE.md, "The socket server").
//
// One thread owns all I/O: it accepts connections, reads newline-framed
// request lines, flushes bounded per-connection write queues, enforces
// idle timeouts, and drains gracefully on shutdown. Request *execution*
// never runs on the I/O thread under normal load: complete frames queue
// per connection and a connection with pending frames is scheduled onto
// the shared JobScheduler (one task drains one connection's queue, so
// responses keep request order per connection while distinct connections
// execute concurrently). If the scheduler's admission queue is full the
// frame executes inline on the I/O thread — the overload form of
// backpressure: while the I/O thread computes, it reads nobody, and TCP
// receive windows fill.
//
// Backpressure and overflow policy, per connection:
//   * when the write queue passes the high-water mark (half the limit),
//     the I/O thread stops reading from that connection (POLLIN removed)
//     until the queue drains below a quarter of the limit — a client that
//     does not read its responses stops being able to send requests;
//   * a frame that would push the queue past the hard limit drops the
//     connection. For pushes this is the slow-subscriber policy: the
//     publisher never blocks, the laggard is disconnected and counted
//     (cupid.net.slow_subscriber_drops).
//
// Writes treat EPIPE/ECONNRESET as a normal client disconnect: the
// connection is closed and counted, the process never dies (callers must
// ignore SIGPIPE; cupid_server does so at startup).
//
// Thread-safety: Run() owns the poll loop. PushFrame/RequestShutdown/
// SetIdleExempt are safe from any thread. The handler runs on scheduler
// workers (or the I/O thread under overload) and emits responses through
// the sink it is given.

#ifndef CUPID_NET_SOCKET_SERVER_H_
#define CUPID_NET_SOCKET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wakeup.h"
#include "obs/metrics.h"
#include "service/job_scheduler.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace cupid {

class SocketServer {
 public:
  struct Options {
    /// Listen address. Loopback by default: the protocol has no auth.
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port (read it back via port()).
    int port = 0;
    /// Accepted connections beyond this are closed immediately after a
    /// one-line structured error.
    int max_connections = 1024;
    /// Longest accepted request frame. Longer lines get a structured
    /// OutOfRange error; the remainder of the oversized line is discarded
    /// so the connection stays usable from the next newline on.
    size_t max_frame_bytes = 1 << 20;
    /// Hard bound on queued-but-unsent response/push bytes per connection;
    /// overflow drops the connection (see the policy above).
    size_t write_queue_limit_bytes = 4 << 20;
    /// Close connections that sent no bytes for this long. 0 disables.
    /// Connections marked idle-exempt (active subscribers) are spared.
    int idle_timeout_ms = 0;
    /// Upper bound on the graceful-drain phase of shutdown (finishing
    /// in-flight commands and flushing write queues).
    int drain_timeout_ms = 5000;
    /// nullptr = obs::MetricsRegistry::Default().
    obs::MetricsRegistry* metrics = nullptr;

    Status Validate() const;
  };

  /// Executes one request line on behalf of `client_id`, emitting zero or
  /// more response lines (without trailing newline) through `sink`.
  using Handler = std::function<void(
      uint64_t client_id, const std::string& line,
      const std::function<void(const std::string&)>& sink)>;

  /// Invoked (from the I/O thread, no server lock held) after a
  /// connection closed for any reason; the subscription broker uses it to
  /// drop the client's subscriptions.
  using DisconnectHook = std::function<void(uint64_t client_id)>;

  /// Invoked once by Run() when shutdown begins, after request intake
  /// stopped but while queued pushes can still be delivered; cupid_server
  /// drains the subscription broker here.
  using DrainHook = std::function<void()>;

  /// `scheduler` may be null (every frame then executes on the I/O
  /// thread); if set it must outlive the server.
  SocketServer(Options options, JobScheduler* scheduler);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Set before Start(); not thread-safe afterwards.
  void set_handler(Handler handler) { handler_ = std::move(handler); }
  void set_disconnect_hook(DisconnectHook hook) {
    disconnect_hook_ = std::move(hook);
  }
  void set_drain_hook(DrainHook hook) { drain_hook_ = std::move(hook); }

  /// \brief Binds and listens. On success port() is the bound port.
  Status Start();

  /// Bound port after Start() (the concrete one when Options::port was 0).
  int port() const { return port_; }

  /// \brief Runs the poll loop until RequestShutdown(); returns after the
  /// graceful drain (stop accepting, finish in-flight commands, run the
  /// drain hook, flush write queues up to drain_timeout_ms, close).
  void Run();

  /// \brief Asks Run() to begin the graceful drain. Safe from any thread;
  /// signal handlers should instead Notify() the wakeup() fd after setting
  /// their flag, and the Run() caller translates that into this call —
  /// cupid_server wires it so either works.
  void RequestShutdown();

  /// The wakeup fd Run() polls; signal handlers Notify() it.
  WakeupFd* wakeup() { return &wakeup_; }

  /// \brief Queues one line (newline appended on the wire) to `client_id`.
  /// Returns false when the client is unknown/closing or the frame
  /// overflowed its write queue (the connection is then dropped and the
  /// slow-subscriber counter bumped). Safe from any thread.
  bool PushFrame(uint64_t client_id, const std::string& line);

  /// \brief Exempts `client_id` from the idle timeout (subscribers wait
  /// silently by design). Safe from any thread.
  void SetIdleExempt(uint64_t client_id, bool exempt);

  /// Live connection count (the cupid.net.connections gauge's source).
  int64_t connections() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Connection {
    int fd = -1;
    uint64_t id = 0;

    // --- I/O-thread-only state (never touched by workers) ---
    std::string read_buf;
    bool discarding = false;  ///< in an oversized frame, skip to next '\n'
    size_t write_offset = 0;  ///< bytes of the queue front already written
    Clock::time_point last_activity{};

    // --- shared state, guarded by SocketServer::mu_ ---
    std::deque<std::string> write_queue;
    size_t write_queued_bytes = 0;
    std::deque<std::string> pending_requests;
    bool executing = false;  ///< a drain task for this connection is live
    bool drop = false;       ///< close as soon as the I/O thread sees it
    bool idle_exempt = false;
    bool reads_paused = false;  ///< backpressure: POLLIN withheld
  };

  /// Accept loop body; returns false when the listener died.
  void AcceptNew() EXCLUDES(mu_);
  /// Reads frames from `conn`, queues complete lines, schedules execution.
  void ReadFrames(const std::shared_ptr<Connection>& conn) EXCLUDES(mu_);
  /// Flushes `conn`'s write queue as far as the socket allows.
  /// Returns false on a fatal write error (connection must close).
  bool FlushWrites(const std::shared_ptr<Connection>& conn) EXCLUDES(mu_);
  /// Executes queued request lines of connection `id` until its pending
  /// queue is empty (runs on a scheduler worker or, under overload, the
  /// I/O thread).
  void DrainRequests(uint64_t id) EXCLUDES(mu_);
  /// Schedules DrainRequests for `conn` if not already running. Must be
  /// called with mu_ held; may execute inline (releasing and reacquiring
  /// nothing — inline execution happens after the caller releases mu_, via
  /// the returned flag).
  bool ScheduleLocked(const std::shared_ptr<Connection>& conn) REQUIRES(mu_);
  /// Closes and forgets `conn` (I/O thread only); runs the disconnect
  /// hook outside the lock.
  void CloseConnection(const std::shared_ptr<Connection>& conn,
                       const char* reason) EXCLUDES(mu_);
  /// Queues `line` + '\n' on `conn`; false = overflow (caller drops).
  bool EnqueueLocked(const std::shared_ptr<Connection>& conn,
                     const std::string& line) REQUIRES(mu_);
  void UpdatePauseStateLocked(const std::shared_ptr<Connection>& conn)
      REQUIRES(mu_);

  Options options_;
  JobScheduler* scheduler_;
  Handler handler_;
  DisconnectHook disconnect_hook_;
  DrainHook drain_hook_;

  int listen_fd_ = -1;
  int port_ = 0;
  WakeupFd wakeup_;
  std::atomic<bool> shutdown_requested_{false};

  mutable Mutex mu_;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Connection>> connections_
      GUARDED_BY(mu_);
  /// Drain tasks handed to the scheduler that have not finished yet. The
  /// destructor blocks until zero — a queued task captures `this` and may
  /// run after its connection is gone, so the scheduler must outlive the
  /// server and the server must not die under a pending task.
  int outstanding_tasks_ GUARDED_BY(mu_) = 0;
  CondVar tasks_cv_;

  obs::Gauge* connections_gauge_;
  obs::Gauge* write_queue_bytes_gauge_;
  obs::Counter* accepted_;
  obs::Counter* frames_received_;
  obs::Counter* frames_rejected_;
  obs::Counter* responses_sent_;
  obs::Counter* disconnects_;
  obs::Counter* disconnects_write_error_;
  obs::Counter* slow_subscriber_drops_;
  obs::Counter* idle_timeouts_;
  obs::Counter* inline_executions_;
};

}  // namespace cupid

#endif  // CUPID_NET_SOCKET_SERVER_H_
