#include "net/protocol.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/cupid_matcher.h"
#include "importers/schema_io.h"
#include "incremental/schema_edit.h"
#include "obs/metrics.h"
#include "schema/data_type.h"
#include "util/strings.h"

namespace cupid {

namespace {

void WriteDurabilityJson(const DurabilityStats& stats, JsonWriter* w) {
  w->BeginObject();
  w->Key("degraded");
  w->Bool(stats.degraded);
  w->Key("applied_seq");
  w->UInt(stats.applied_seq);
  w->Key("snapshot_seq");
  w->UInt(stats.snapshot_seq);
  w->Key("wal_records");
  w->UInt(stats.wal_records);
  w->Key("wal_bytes");
  w->Int(stats.wal_bytes);
  w->Key("snapshots_written");
  w->UInt(stats.snapshots_written);
  w->Key("snapshot_failures");
  w->UInt(stats.snapshot_failures);
  w->Key("recovered_records");
  w->UInt(stats.recovered_records);
  w->Key("recovered_bytes_dropped");
  w->Int(stats.recovered_bytes_dropped);
  w->Key("recovered_tail_dropped");
  w->Bool(stats.recovered_tail_dropped);
  w->EndObject();
}

/// Applies an optional "config" sub-object onto `config`. Without one the
/// server default applies: per-match phases run single-threaded;
/// concurrency comes from the scheduler's workers.
Status ApplyConfigJson(const JsonValue& v, CupidConfig* out) {
  const JsonValue* config = v.Find("config");
  if (config == nullptr) {
    out->SetNumThreads(1);
    return Status::OK();
  }
  if (!config->is_object()) {
    return Status::InvalidArgument("config must be an object");
  }
  double th = config->GetNumber("th_accept", 0.5);
  out->mapping.th_accept = th;
  out->tree_match.th_accept = th;
  out->tree_match.th_low = std::min(out->tree_match.th_low, th);
  out->tree_match.th_high = std::max(out->tree_match.th_high, th);
  if (config->GetBool("one_to_one", false)) {
    out->mapping.cardinality = MappingCardinality::kOneToOneStable;
  }
  out->SetNumThreads(static_cast<int>(config->GetInt("num_threads", 0)));
  if (config->GetBool("strong_link_cache", false)) {
    out->tree_match.use_strong_link_cache = true;
  }
  return Status::OK();
}

/// Builds a MatchRequest from the fields of a match/batch JSON object.
Result<MatchRequest> ParseMatchRequest(const JsonValue& v) {
  MatchRequest request;
  request.source = v.GetString("source");
  request.target = v.GetString("target");
  if (request.source.empty() || request.target.empty()) {
    return Status::InvalidArgument("match needs source and target");
  }
  request.source_version = static_cast<int>(v.GetInt("source_version", 0));
  request.target_version = static_cast<int>(v.GetInt("target_version", 0));
  request.use_result_cache = v.GetBool("use_result_cache", true);
  request.use_session = v.GetBool("use_session", true);
  CUPID_RETURN_NOT_OK(ApplyConfigJson(v, &request.config));
  CUPID_RETURN_NOT_OK(request.config.Validate());
  return request;
}

/// Builds a SearchRequest from the fields of a search JSON object. Knob
/// validation is left to SearchRequest::Validate inside the service.
Result<SearchRequest> ParseSearchRequest(const JsonValue& v) {
  SearchRequest request;
  request.source = v.GetString("source");
  if (request.source.empty()) {
    return Status::InvalidArgument("search needs source");
  }
  request.source_version = static_cast<int>(v.GetInt("source_version", 0));
  request.top_k = static_cast<int>(v.GetInt("top_k", request.top_k));
  request.exhaustive = v.GetBool("exhaustive", request.exhaustive);
  request.prune = v.GetBool("prune", request.prune);
  request.prune_fraction =
      v.GetNumber("prune_fraction", request.prune_fraction);
  request.prune_min_keep =
      static_cast<int>(v.GetInt("prune_min_keep", request.prune_min_keep));
  CUPID_RETURN_NOT_OK(ApplyConfigJson(v, &request.config));
  return request;
}

Result<SchemaEdit> ParseEdit(const JsonValue& v) {
  std::string op = v.GetString("op");
  std::string path = v.GetString("path");
  if (op == "rename") {
    std::string to = v.GetString("to");
    if (path.empty() || to.empty()) {
      return Status::InvalidArgument("rename needs path and to");
    }
    return SchemaEdit::RenameElement(EditSide::kSource, path, to);
  }
  if (op == "retype") {
    CUPID_ASSIGN_OR_RETURN(DataType type,
                           DataTypeFromName(v.GetString("type")));
    if (path.empty()) return Status::InvalidArgument("retype needs path");
    return SchemaEdit::ChangeDataType(EditSide::kSource, path, type);
  }
  if (op == "add") {
    std::string parent = v.GetString("parent");
    std::string leaf_name = v.GetString("leaf");
    if (parent.empty() || leaf_name.empty()) {
      return Status::InvalidArgument("add needs parent and leaf");
    }
    Element leaf;
    leaf.name = leaf_name;
    leaf.kind = ElementKind::kAtomic;
    leaf.data_type = DataType::kString;
    if (const JsonValue* type = v.Find("type")) {
      CUPID_ASSIGN_OR_RETURN(leaf.data_type, DataTypeFromName(type->string));
    }
    leaf.optional = v.GetBool("optional", false);
    return SchemaEdit::AddElement(EditSide::kSource, parent, std::move(leaf));
  }
  if (op == "remove") {
    if (path.empty()) return Status::InvalidArgument("remove needs path");
    return SchemaEdit::RemoveElement(EditSide::kSource, path);
  }
  return Status::InvalidArgument("unknown edit op: " + op);
}

/// Re-runs `response`'s request directly through CupidMatcher and compares
/// mappings value-for-value ("ok" / "mismatch: <detail>").
std::string Selfcheck(const MatchResponse& response,
                      const SchemaRepository& repo, const Thesaurus& thesaurus,
                      const CupidConfig& config) {
  auto source = repo.Get(response.source, response.source_version);
  auto target = repo.Get(response.target, response.target_version);
  if (!source.ok() || !target.ok()) return "mismatch: schema gone";
  CupidMatcher matcher(&thesaurus, config);
  auto ref = matcher.Match(**source, **target);
  if (!ref.ok()) return "mismatch: direct match failed";
  auto compare = [](const Mapping& got, const Mapping& want,
                    const char* which) -> std::string {
    if (got.size() != want.size()) {
      return StringFormat("mismatch: %s size %zu != %zu", which, got.size(),
                          want.size());
    }
    for (size_t i = 0; i < got.size(); ++i) {
      if (got.elements[i].source_path != want.elements[i].source_path ||
          got.elements[i].target_path != want.elements[i].target_path ||
          got.elements[i].wsim != want.elements[i].wsim ||
          got.elements[i].ssim != want.elements[i].ssim ||
          got.elements[i].lsim != want.elements[i].lsim) {
        return StringFormat("mismatch: %s element %zu", which, i);
      }
    }
    return "";
  };
  std::string leaf = compare(response.leaf_mapping, ref->leaf_mapping, "leaf");
  if (!leaf.empty()) return leaf;
  std::string nonleaf =
      compare(response.nonleaf_mapping, ref->nonleaf_mapping, "nonleaf");
  if (!nonleaf.empty()) return nonleaf;
  return "ok";
}

/// Small ok-response builder for commands whose payload is a few scalar
/// fields (register/edit/save/subscribe/...).
class OkFrame {
 public:
  explicit OkFrame(const std::string& cmd) {
    w_.BeginObject();
    w_.Key("v");
    w_.Int(kProtocolVersion);
    w_.Key("status");
    w_.String("ok");
    w_.Key("cmd");
    w_.String(cmd);
  }
  OkFrame& Str(const char* key, const std::string& value) {
    w_.Key(key);
    w_.String(value);
    return *this;
  }
  OkFrame& Int(const char* key, int64_t value) {
    w_.Key(key);
    w_.Int(value);
    return *this;
  }
  std::string Finish() {
    w_.EndObject();
    return w_.str();
  }

 private:
  JsonWriter w_;
};

/// The pair fields of subscribe/unsubscribe: "source"/"target", with
/// "src"/"tgt" accepted as aliases.
Status ParsePair(const JsonValue& v, std::string* source,
                 std::string* target) {
  *source = v.GetString("source", v.GetString("src"));
  *target = v.GetString("target", v.GetString("tgt"));
  if (source->empty() || target->empty()) {
    return Status::InvalidArgument("needs source (src) and target (tgt)");
  }
  return Status::OK();
}

}  // namespace

ProtocolExecutor::ProtocolExecutor(const Thesaurus* thesaurus,
                                   SchemaRepository* repository,
                                   MatchService* service,
                                   JobScheduler* scheduler,
                                   CorpusSearchService* search,
                                   SubscriptionBroker* broker, Options options)
    : thesaurus_(thesaurus),
      repository_(repository),
      service_(service),
      scheduler_(scheduler),
      search_(search),
      broker_(broker),
      options_(options) {}

std::string ProtocolExecutor::ErrorFrame(const std::string& cmd,
                                         const Status& status) {
  JsonWriter w;
  w.BeginObject();
  w.Key("v");
  w.Int(kProtocolVersion);
  w.Key("status");
  w.String("error");
  w.Key("cmd");
  w.String(cmd);
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.String(StatusCodeToString(status.code()));
  w.Key("message");
  w.String(status.message());
  w.EndObject();
  w.EndObject();
  return w.str();
}

Result<MatchResponse> ProtocolExecutor::RunMatch(MatchRequest request) {
  if (options_.socket_mode || scheduler_ == nullptr) {
    // Already on a scheduler worker (or there is no scheduler): run the
    // request here. Submitting and waiting from a worker would deadlock a
    // pool whose every worker does the same.
    return service_->Match(std::move(request));
  }
  auto job = scheduler_->Submit(std::move(request));
  if (!job.ok()) return job.status();
  return (*job)->Wait();
}

bool ProtocolExecutor::EmitMatchResponse(const MatchResponse& response,
                                         const CupidConfig& config,
                                         bool include_mappings,
                                         const Sink& sink) {
  std::string json = response.ToJson(include_mappings);
  // Splice server-side fields into the response object: the protocol
  // version up front, status (and selfcheck) at the tail.
  json.insert(1, "\"v\":" + std::to_string(kProtocolVersion) + ",");
  json.pop_back();  // trailing '}'
  json += ",\"status\":\"ok\"";
  bool ok = true;
  if (options_.selfcheck) {
    std::string verdict =
        Selfcheck(response, *repository_, *thesaurus_, config);
    json += ",\"selfcheck\":\"" + JsonEscape(verdict) + "\"";
    if (verdict != "ok") ok = false;
  }
  json += "}";
  sink(json);
  return ok;
}

bool ProtocolExecutor::CmdRegister(const JsonValue& v, const Sink& sink) {
  std::string name = v.GetString("name");
  if (name.empty()) {
    sink(ErrorFrame("register", Status::InvalidArgument("register needs name")));
    return false;
  }
  Result<int> version = Status::Internal("unreachable");
  if (const JsonValue* text = v.Find("text")) {
    auto format = SchemaFormatFromName(v.GetString("format", "native"));
    if (!format.ok()) {
      sink(ErrorFrame("register", format.status()));
      return false;
    }
    version = repository_->RegisterText(name, *format, text->string);
  } else {
    std::string path = v.GetString("file");
    if (path.empty()) {
      sink(ErrorFrame("register",
                      Status::InvalidArgument("register needs file or text")));
      return false;
    }
    version = repository_->RegisterFile(name, path);
  }
  if (!version.ok()) {
    sink(ErrorFrame("register", version.status()));
    return false;
  }
  sink(OkFrame("register").Str("name", name).Int("version", *version)
           .Finish());
  return true;
}

bool ProtocolExecutor::CmdEdit(const JsonValue& v, const Sink& sink) {
  std::string name = v.GetString("name");
  auto edit = ParseEdit(v);
  Result<int> version = edit.ok() ? repository_->ApplyEdit(name, *edit)
                                  : Result<int>(edit.status());
  if (!version.ok()) {
    sink(ErrorFrame("edit", version.status()));
    return false;
  }
  sink(OkFrame("edit").Str("name", name).Int("version", *version).Finish());
  return true;
}

bool ProtocolExecutor::CmdMatch(const JsonValue& v, const Sink& sink) {
  auto request = ParseMatchRequest(v);
  if (!request.ok()) {
    sink(ErrorFrame("match", request.status()));
    return false;
  }
  bool include_mappings = v.GetBool("mappings", options_.default_mappings);
  CupidConfig config = request->config;
  Result<MatchResponse> response = RunMatch(*std::move(request));
  if (!response.ok()) {
    sink(ErrorFrame("match", response.status()));
    return false;
  }
  return EmitMatchResponse(*response, config, include_mappings, sink);
}

bool ProtocolExecutor::CmdBatch(const JsonValue& v, const Sink& sink) {
  const JsonValue* requests = v.Find("requests");
  if (requests == nullptr || !requests->is_array()) {
    sink(ErrorFrame("batch", Status::InvalidArgument("batch needs requests[]")));
    return false;
  }
  std::vector<MatchRequest> batch;
  std::vector<CupidConfig> configs;
  std::vector<bool> include;
  for (const JsonValue& item : requests->array) {
    auto request = ParseMatchRequest(item);
    if (!request.ok()) {
      sink(ErrorFrame("batch", request.status()));
      return false;
    }
    configs.push_back(request->config);
    include.push_back(item.GetBool("mappings", options_.default_mappings));
    batch.push_back(*std::move(request));
  }
  bool all_ok = true;
  if (options_.socket_mode || scheduler_ == nullptr) {
    // On a scheduler worker the batch runs serially (see RunMatch);
    // cross-request concurrency comes from other connections' workers.
    for (size_t i = 0; i < batch.size(); ++i) {
      Result<MatchResponse> response = service_->Match(batch[i]);
      if (!response.ok()) {
        sink(ErrorFrame("batch", response.status()));
        all_ok = false;
        continue;
      }
      if (!EmitMatchResponse(*response, configs[i], include[i], sink)) {
        all_ok = false;
      }
    }
    return all_ok;
  }
  // Concurrent fan-out over the scheduler's workers; responses are
  // emitted in request order.
  std::vector<Result<MatchResponse>> responses =
      scheduler_->MatchBatch(std::move(batch));
  for (size_t i = 0; i < responses.size(); ++i) {
    if (!responses[i].ok()) {
      sink(ErrorFrame("batch", responses[i].status()));
      all_ok = false;
      continue;
    }
    if (!EmitMatchResponse(*responses[i], configs[i], include[i], sink)) {
      all_ok = false;
    }
  }
  return all_ok;
}

bool ProtocolExecutor::CmdSearch(const JsonValue& v, const Sink& sink) {
  if (search_ == nullptr) {
    sink(ErrorFrame("search",
                    Status::Unsupported("search is not available here")));
    return false;
  }
  auto request = ParseSearchRequest(v);
  if (!request.ok()) {
    sink(ErrorFrame("search", request.status()));
    return false;
  }
  auto response = search_->Search(*request);
  if (!response.ok()) {
    sink(ErrorFrame("search", response.status()));
    return false;
  }
  std::string json = response->ToJson();
  json.insert(1, "\"v\":" + std::to_string(kProtocolVersion) + ",");
  json.pop_back();  // trailing '}'
  json += ",\"status\":\"ok\",\"cmd\":\"search\"}";
  sink(json);
  return true;
}

bool ProtocolExecutor::CmdSaveLoad(const std::string& cmd, const JsonValue& v,
                                   const Sink& sink) {
  std::string dir = v.GetString("dir");
  Status status =
      dir.empty() ? Status::InvalidArgument(cmd + " needs dir") : Status::OK();
  if (status.ok() && cmd == "save") status = repository_->SaveTo(dir);
  if (status.ok() && cmd == "load" && options_.socket_mode) {
    // Replacing the repository wholesale while scheduler workers and the
    // subscription broker read it concurrently is unsafe; socket servers
    // restart to load.
    status = Status::Unsupported(
        "load is not supported in --listen mode; restart the server "
        "pointing at the directory to load");
  }
  if (status.ok() && cmd == "load" && repository_->durable()) {
    // Swapping in a non-durable repository would silently stop
    // logging mutations; durable servers only ever load their WAL dir.
    status = Status::Unsupported(
        "load is not supported on a durable server; restart with "
        "--wal-dir pointing at the directory to recover");
  }
  if (status.ok() && cmd == "load") {
    auto loaded = SchemaRepository::LoadFrom(dir);
    if (!loaded.ok()) {
      status = loaded.status();
    } else {
      // Replace wholesale; stale sessions/results must not survive the
      // version-number restart.
      *repository_ = std::move(*loaded);
      service_->InvalidateAll();
      if (search_ != nullptr) search_->InvalidateAll();
    }
  }
  if (!status.ok()) {
    sink(ErrorFrame(cmd, status));
    return false;
  }
  sink(OkFrame(cmd).Str("dir", dir).Finish());
  return true;
}

bool ProtocolExecutor::CmdStats(const Sink& sink) {
  MatchService::CacheStats stats = service_->cache_stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("v");
  w.Int(kProtocolVersion);
  w.Key("status");
  w.String("ok");
  w.Key("cmd");
  w.String("stats");
  w.Key("result_hits");
  w.Int(stats.result_hits);
  w.Key("result_misses");
  w.Int(stats.result_misses);
  w.Key("result_evictions");
  w.Int(stats.result_evictions);
  w.Key("sessions_created");
  w.Int(stats.sessions_created);
  w.Key("sessions_reused");
  w.Int(stats.sessions_reused);
  w.Key("sessions_evicted");
  w.Int(stats.sessions_evicted);
  w.Key("incremental_rematches");
  w.Int(stats.incremental_rematches);
  if (scheduler_ != nullptr) {
    w.Key("scheduler_threads");
    w.Int(scheduler_->num_threads());
    w.Key("scheduler_pending");
    w.Int(static_cast<int64_t>(scheduler_->pending()));
  }
  if (broker_ != nullptr) {
    w.Key("subscriptions");
    w.Int(broker_->subscriptions());
  }
  if (repository_->durable()) {
    w.Key("durability");
    WriteDurabilityJson(repository_->durability_stats(), &w);
  }
  w.Key("schemas");
  w.BeginArray();
  for (const std::string& name : repository_->Names()) {
    w.BeginObject();
    w.Key("name");
    w.String(name);
    w.Key("latest_version");
    w.Int(repository_->LatestVersion(name));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  sink(w.str());
  return true;
}

bool ProtocolExecutor::CmdMetrics(const JsonValue& v, const Sink& sink) {
  // The whole process-wide registry, either as a JSON array of metric
  // objects (machine-readable, the protocol-native shape) or as a
  // Prometheus text page embedded in "text" (multi-line exposition
  // kept inside the JSONL framing).
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
  std::string format = v.GetString("format", "json");
  if (format == "prometheus") {
    JsonWriter w;
    w.BeginObject();
    w.Key("v");
    w.Int(kProtocolVersion);
    w.Key("status");
    w.String("ok");
    w.Key("cmd");
    w.String("metrics");
    w.Key("format");
    w.String(format);
    w.Key("text");
    w.String(reg->RenderPrometheus());
    w.EndObject();
    sink(w.str());
    return true;
  }
  if (format == "json") {
    // RenderJson is already a JSON array; splice it into the envelope.
    sink("{\"v\":" + std::to_string(kProtocolVersion) +
         ",\"status\":\"ok\",\"cmd\":\"metrics\"," +
         "\"format\":\"json\",\"metrics\":" + reg->RenderJson() + "}");
    return true;
  }
  sink(ErrorFrame("metrics",
                  Status::InvalidArgument("unknown metrics format: " + format)));
  return false;
}

bool ProtocolExecutor::CmdSubscribe(uint64_t client_id, const JsonValue& v,
                                    const Sink& sink) {
  if (broker_ == nullptr) {
    sink(ErrorFrame("subscribe", Status::Unsupported(
                                     "subscribe requires --listen mode")));
    return false;
  }
  std::string source, target;
  Status status = ParsePair(v, &source, &target);
  if (!status.ok()) {
    sink(ErrorFrame("subscribe", status));
    return false;
  }
  CupidConfig config;
  status = ApplyConfigJson(v, &config);
  if (status.ok()) status = config.Validate();
  if (status.ok() && service_->repository()->LatestVersion(source) == 0) {
    status = Status::NotFound("unknown source schema: " + source);
  }
  if (status.ok() && service_->repository()->LatestVersion(target) == 0) {
    status = Status::NotFound("unknown target schema: " + target);
  }
  if (!status.ok()) {
    sink(ErrorFrame("subscribe", status));
    return false;
  }
  // The ack is sinked by the broker atomically with registration (under
  // its lock): the ok-response precedes the first push on the connection,
  // and a client that has read the ok is guaranteed to be registered —
  // an edit racing the subscribe cannot slip between ack and liveness.
  status = broker_->Subscribe(
      client_id, source, target, config, [&sink, &source, &target] {
        sink(OkFrame("subscribe").Str("source", source).Str("target", target)
                 .Finish());
      });
  if (!status.ok()) {
    // Only shutdown races land here (the pair was validated above, and
    // schemas are never deleted).
    sink(ErrorFrame("subscribe", status));
    return false;
  }
  return true;
}

bool ProtocolExecutor::CmdUnsubscribe(uint64_t client_id, const JsonValue& v,
                                      const Sink& sink) {
  if (broker_ == nullptr) {
    sink(ErrorFrame("unsubscribe", Status::Unsupported(
                                       "unsubscribe requires --listen mode")));
    return false;
  }
  std::string source, target;
  Status status = ParsePair(v, &source, &target);
  if (!status.ok()) {
    sink(ErrorFrame("unsubscribe", status));
    return false;
  }
  // Remove BEFORE acknowledging: events observed after the ok-response
  // must not produce pushes.
  status = broker_->Unsubscribe(client_id, source, target);
  if (!status.ok()) {
    sink(ErrorFrame("unsubscribe", status));
    return false;
  }
  sink(OkFrame("unsubscribe").Str("source", source).Str("target", target)
           .Finish());
  return true;
}

bool ProtocolExecutor::Execute(uint64_t client_id, const std::string& line,
                               const Sink& sink) {
  if (!IsValidUtf8(line)) {
    sink(ErrorFrame("?", Status::InvalidArgument(
                             "request is not valid UTF-8")));
    return false;
  }
  auto parsed = ParseJson(line);
  if (!parsed.ok()) {
    sink(ErrorFrame("?", parsed.status()));
    return false;
  }
  if (!parsed->is_object()) {
    sink(ErrorFrame("?", Status::InvalidArgument(
                             "request must be a JSON object")));
    return false;
  }
  std::string cmd = parsed->GetString("cmd");
  if (cmd == "register") return CmdRegister(*parsed, sink);
  if (cmd == "edit") return CmdEdit(*parsed, sink);
  if (cmd == "match") return CmdMatch(*parsed, sink);
  if (cmd == "batch") return CmdBatch(*parsed, sink);
  if (cmd == "search") return CmdSearch(*parsed, sink);
  if (cmd == "save" || cmd == "load") return CmdSaveLoad(cmd, *parsed, sink);
  if (cmd == "stats") return CmdStats(sink);
  if (cmd == "metrics") return CmdMetrics(*parsed, sink);
  if (cmd == "subscribe") return CmdSubscribe(client_id, *parsed, sink);
  if (cmd == "unsubscribe") return CmdUnsubscribe(client_id, *parsed, sink);
  sink(ErrorFrame(cmd.empty() ? "?" : cmd,
                  Status::InvalidArgument("unknown cmd")));
  return false;
}

}  // namespace cupid
