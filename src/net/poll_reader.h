// PollLineReader — interruptible line-at-a-time reads from a file
// descriptor.
//
// Replaces the std::getline loop of the cupid_server stdin driver, which
// had a real bug: a SIGINT/SIGTERM arriving while the process sat in a
// blocking read(2) was only observed after the *next* input line (or EOF)
// arrived, because the shutdown flag was checked between getline calls.
// PollLineReader instead polls {input fd, wakeup fd} before every read, so
// a signal handler that calls WakeupFd::Notify() interrupts an idle read
// immediately and Next() returns kWakeup.
//
// Framing matches the JSONL protocol: one '\n'-terminated line per
// request; a trailing unterminated line at EOF is delivered as a final
// kLine (same behavior as std::getline).

#ifndef CUPID_NET_POLL_READER_H_
#define CUPID_NET_POLL_READER_H_

#include <string>

#include "net/wakeup.h"

namespace cupid {

class PollLineReader {
 public:
  enum class Event {
    kLine,    ///< *line holds the next input line (newline stripped)
    kWakeup,  ///< the wakeup fd fired (check your shutdown flag)
    kEof,     ///< end of input; no more lines
    kError,   ///< unrecoverable read error (errno-based message in status)
  };

  /// Reads from `fd` (not owned, not closed). `wakeup` may be null for an
  /// uninterruptible reader; it must outlive the reader.
  PollLineReader(int fd, WakeupFd* wakeup);

  PollLineReader(const PollLineReader&) = delete;
  PollLineReader& operator=(const PollLineReader&) = delete;

  /// \brief Blocks until a full line, a wakeup, EOF, or an error.
  /// kWakeup drains the wakeup fd before returning; calling Next() again
  /// resumes reading exactly where the interrupted read stopped (buffered
  /// partial lines are kept).
  Event Next(std::string* line);

  Status status() const { return status_; }

 private:
  int fd_;
  WakeupFd* wakeup_;
  std::string buffer_;   ///< bytes read but not yet returned
  size_t scanned_ = 0;   ///< prefix of buffer_ known to contain no '\n'
  bool eof_ = false;
  Status status_;
};

}  // namespace cupid

#endif  // CUPID_NET_POLL_READER_H_
