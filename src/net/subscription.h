// SubscriptionBroker — change-notification push for matched schema pairs.
//
// A client subscribed to (source, target) wants the mapping kept current:
// whenever either schema mutates through the SchemaRepository, the broker
// re-matches the pair and pushes the result. The incremental engine makes
// this cheap — the re-match rides MatchService's warm per-pair session, so
// an edit costs a warm Rematch (docs/INCREMENTAL.md), not a cold match,
// and the pushed payload is bit-identical to a fresh `match` response for
// the same versions (the Rematch guarantee turned into a live-update
// guarantee).
//
// Pipeline and ordering:
//
//   repository mutation ──(listener, under repo lock)──▶ event queue
//        event queue ──(single notifier thread)──▶ per-pair re-matches
//             re-matches ──(sharded over the JobScheduler)──▶ push frames
//                  push frames ──(PushFn, per-client order)──▶ sockets
//
//   * The repository invokes the listener while holding its mutation lock,
//     so events enter the queue in true mutation order.
//   * One notifier thread consumes events strictly in order and delivers
//     every push of event N before any push of event N+1 — pushes are
//     totally ordered per connection even under concurrent edits.
//   * Within one event, the distinct (source, target, config) groups
//     re-match concurrently over the shared JobScheduler (inline fallback
//     when its admission queue is full); delivery then walks subscriptions
//     in a deterministic order.
//   * The edit path never blocks on slow subscribers: PushFn enqueues into
//     the socket server's bounded write queue and reports overflow, which
//     drops the laggard (counted, never waited on).
//
// Each push carries the full mapping plus a delta against the previous
// push of the same subscription (leaf pairs added/removed) — the delta is
// a convenience for clients; the full payload is the source of truth.

#ifndef CUPID_NET_SUBSCRIPTION_H_
#define CUPID_NET_SUBSCRIPTION_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "core/config.h"
#include "obs/metrics.h"
#include "service/job_scheduler.h"
#include "service/match_service.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace cupid {

class SubscriptionBroker {
 public:
  struct Options {
    /// nullptr = obs::MetricsRegistry::Default().
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Delivers one push frame to a client; returns false when the client is
  /// gone or was dropped for overflow (the broker then removes its
  /// subscriptions). Must be callable from the notifier thread and must
  /// not call back into the broker.
  using PushFn = std::function<bool(uint64_t client_id, const std::string&)>;

  /// Optional: toggles a client's idle-timeout exemption as its first
  /// subscription appears / last one goes away.
  using IdleExemptFn = std::function<void(uint64_t client_id, bool exempt)>;

  /// `service` and `scheduler` must outlive the broker; `scheduler` may be
  /// null (re-matches then run on the notifier thread). Starts the
  /// notifier thread; install the repository listener with
  /// AttachTo(repository).
  SubscriptionBroker(MatchService* service, JobScheduler* scheduler,
                     PushFn push, Options options);
  SubscriptionBroker(MatchService* service, JobScheduler* scheduler,
                     PushFn push)
      : SubscriptionBroker(service, scheduler, std::move(push), Options()) {}
  ~SubscriptionBroker();

  SubscriptionBroker(const SubscriptionBroker&) = delete;
  SubscriptionBroker& operator=(const SubscriptionBroker&) = delete;

  void set_idle_exempt_fn(IdleExemptFn fn) { idle_exempt_ = std::move(fn); }

  /// \brief Installs this broker as `repository`'s mutation listener.
  void AttachTo(SchemaRepository* repository);

  /// \brief Registers `client_id`'s interest in (source, target) under
  /// `config`. Re-subscribing the same pair replaces the config. Fails
  /// with NotFound when either schema is absent and InvalidArgument on a
  /// bad config. When `ack` is non-null it runs under the broker lock,
  /// atomically with registration — sinking the ok-response there
  /// guarantees both that the ok precedes any push on the connection
  /// (event processing snapshots subscriptions under the same lock; the
  /// write queue is FIFO) and that a client which has read the ok is
  /// already registered. `ack` must not call back into the broker.
  Status Subscribe(uint64_t client_id, const std::string& source,
                   const std::string& target, const CupidConfig& config,
                   const std::function<void()>& ack = nullptr);

  /// \brief Removes one subscription; NotFound when it does not exist.
  Status Unsubscribe(uint64_t client_id, const std::string& source,
                     const std::string& target);

  /// \brief Drops every subscription of `client_id` (disconnect hook).
  void DropClient(uint64_t client_id);

  /// \brief Mutation event intake (the repository listener target). Fast:
  /// appends to the event queue and wakes the notifier. Safe to call with
  /// the repository lock held.
  void OnSchemaMutated(const std::string& name, int version);

  /// \brief Processes every queued event (delivering its pushes), then
  /// stops the notifier thread. Idempotent; called on graceful shutdown
  /// *before* the socket server closes connections.
  void Stop();

  /// Active subscriptions (the cupid.net.subscriptions gauge's source).
  int64_t subscriptions() const;

 private:
  struct Event {
    std::string name;
    int version = 0;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One client's interest in one pair.
  struct Subscription {
    uint64_t client_id = 0;
    std::string source, target;
    CupidConfig config;
    uint64_t fingerprint = 0;
    /// Leaf (source_path, target_path) pairs of the last pushed mapping,
    /// sorted — the baseline the next push's delta diffs against.
    std::vector<std::pair<std::string, std::string>> last_leaf_pairs;
    bool primed = false;  ///< last_leaf_pairs is meaningful
  };

  /// Key: client + pair. std::map keeps delivery order deterministic.
  using SubKey = std::tuple<uint64_t, std::string, std::string>;

  void NotifierLoop();
  void ProcessEvent(const Event& event);

  MatchService* service_;
  JobScheduler* scheduler_;
  PushFn push_;
  IdleExemptFn idle_exempt_;
  Options options_;

  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Event> events_ GUARDED_BY(mu_);
  std::map<SubKey, Subscription> subs_ GUARDED_BY(mu_);
  /// Subscriptions per client (drives the idle-exemption toggle).
  std::map<uint64_t, int> client_sub_counts_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;

  std::thread notifier_;

  obs::Gauge* subscriptions_gauge_;
  obs::Counter* pushes_;
  obs::Counter* push_failures_;
  obs::Counter* events_counter_;  // mutation events consumed
  obs::Histogram* push_ms_;
};

}  // namespace cupid

#endif  // CUPID_NET_SUBSCRIPTION_H_
