#include "net/wakeup.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

namespace cupid {

namespace {

/// O_NONBLOCK + FD_CLOEXEC on `fd`; the server must never block on its own
/// wakeup pipe and must not leak it into exec'd children.
bool MakeNonBlockingCloexec(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return false;
  int fdflags = fcntl(fd, F_GETFD, 0);
  return fdflags >= 0 && fcntl(fd, F_SETFD, fdflags | FD_CLOEXEC) >= 0;
}

}  // namespace

WakeupFd::WakeupFd() {
  int fds[2];
  if (pipe(fds) != 0) {
    status_ = Status::IoError(std::string("pipe: ") + strerror(errno));
    return;
  }
  if (!MakeNonBlockingCloexec(fds[0]) || !MakeNonBlockingCloexec(fds[1])) {
    status_ = Status::IoError(std::string("fcntl: ") + strerror(errno));
    close(fds[0]);
    close(fds[1]);
    return;
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
}

WakeupFd::~WakeupFd() {
  if (read_fd_ >= 0) close(read_fd_);
  if (write_fd_ >= 0) close(write_fd_);
}

void WakeupFd::Notify() {
  if (write_fd_ < 0) return;
  // A full pipe (EAGAIN) means a wakeup is already pending; EINTR on a
  // non-blocking one-byte write cannot leave partial state. Either way
  // there is nothing useful to do with the error — and nothing
  // async-signal-safe either.
  const char byte = 1;
  ssize_t ignored = write(write_fd_, &byte, 1);
  (void)ignored;
}

void WakeupFd::Drain() {
  if (read_fd_ < 0) return;
  char buf[64];
  while (read(read_fd_, buf, sizeof(buf)) > 0) {
  }
}

}  // namespace cupid
