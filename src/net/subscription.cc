#include "net/subscription.h"

#include <algorithm>
#include <tuple>

#include "util/json.h"

namespace cupid {

namespace {

std::vector<std::pair<std::string, std::string>> LeafPairs(
    const Mapping& mapping) {
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(mapping.elements.size());
  for (const MappingElement& e : mapping.elements) {
    pairs.emplace_back(e.source_path, e.target_path);
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

void AppendPairArray(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    std::string* out) {
  out->push_back('[');
  bool first = true;
  for (const auto& p : pairs) {
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"source_path\":\"");
    JsonEscapeTo(p.first, out);
    out->append("\",\"target_path\":\"");
    JsonEscapeTo(p.second, out);
    out->append("\"}");
  }
  out->push_back(']');
}

}  // namespace

SubscriptionBroker::SubscriptionBroker(MatchService* service,
                                       JobScheduler* scheduler, PushFn push,
                                       Options options)
    : service_(service),
      scheduler_(scheduler),
      push_(std::move(push)),
      options_(options) {
  obs::MetricsRegistry* reg =
      options_.metrics ? options_.metrics : obs::MetricsRegistry::Default();
  subscriptions_gauge_ = reg->GetGauge("cupid.net.subscriptions",
                                       "active (client, pair) subscriptions");
  pushes_ = reg->GetCounter("cupid.net.pushes",
                            "mapping-delta push frames delivered");
  push_failures_ = reg->GetCounter(
      "cupid.net.push_failures",
      "push frames not delivered (client gone or dropped for overflow)");
  events_counter_ =
      reg->GetCounter("cupid.net.mutation_events",
                      "schema mutation events consumed by the broker");
  push_ms_ = reg->GetHistogram(
      "cupid.net.push_ms",
      "mutation-to-delivery latency of push frames, milliseconds");
  notifier_ = std::thread([this] { NotifierLoop(); });
}

SubscriptionBroker::~SubscriptionBroker() { Stop(); }

void SubscriptionBroker::AttachTo(SchemaRepository* repository) {
  repository->SetMutationListener(
      [this](const std::string& name, int version) {
        OnSchemaMutated(name, version);
      });
}

Status SubscriptionBroker::Subscribe(uint64_t client_id,
                                     const std::string& source,
                                     const std::string& target,
                                     const CupidConfig& config,
                                     const std::function<void()>& ack) {
  Status config_ok = config.Validate();
  if (!config_ok.ok()) return config_ok;
  SchemaRepository* repo = service_->repository();
  if (repo->LatestVersion(source) == 0) {
    return Status::NotFound("unknown source schema: " + source);
  }
  if (repo->LatestVersion(target) == 0) {
    return Status::NotFound("unknown target schema: " + target);
  }
  Subscription sub;
  sub.client_id = client_id;
  sub.source = source;
  sub.target = target;
  sub.config = config;
  sub.fingerprint = ConfigFingerprint(config);
  // Prime the pair's session now: the subscription's whole point is the
  // warm incremental path, so the first edit must already find a session
  // to replay into (its push reports incremental=true), and the current
  // mapping becomes the baseline the first delta diffs against.
  {
    MatchRequest request;
    request.source = source;
    request.target = target;
    request.config = config;
    auto primed = service_->Match(request);
    if (primed.ok()) {
      sub.last_leaf_pairs = LeafPairs(primed->leaf_mapping);
      sub.primed = true;
    }
    // On failure the subscription still registers; the first push is then
    // all-added against an empty baseline.
  }
  MutexLock lock(&mu_);
  if (stop_) return Status::Unavailable("broker is shutting down");
  SubKey key{client_id, source, target};
  auto it = subs_.find(key);
  if (it == subs_.end()) {
    subs_.emplace(std::move(key), std::move(sub));
    ++client_sub_counts_[client_id];
    if (client_sub_counts_[client_id] == 1 && idle_exempt_) {
      idle_exempt_(client_id, true);
    }
  } else {
    it->second = std::move(sub);  // re-subscribe replaces config, resets delta
  }
  subscriptions_gauge_->Set(static_cast<int64_t>(subs_.size()));
  if (ack) ack();  // under mu_: ordered before any push for this sub
  return Status::OK();
}

Status SubscriptionBroker::Unsubscribe(uint64_t client_id,
                                       const std::string& source,
                                       const std::string& target) {
  MutexLock lock(&mu_);
  auto it = subs_.find(SubKey{client_id, source, target});
  if (it == subs_.end()) {
    return Status::NotFound("no subscription for (" + source + ", " + target +
                            ")");
  }
  subs_.erase(it);
  auto cit = client_sub_counts_.find(client_id);
  if (cit != client_sub_counts_.end() && --cit->second == 0) {
    client_sub_counts_.erase(cit);
    if (idle_exempt_) idle_exempt_(client_id, false);
  }
  subscriptions_gauge_->Set(static_cast<int64_t>(subs_.size()));
  return Status::OK();
}

void SubscriptionBroker::DropClient(uint64_t client_id) {
  MutexLock lock(&mu_);
  auto it = subs_.lower_bound(SubKey{client_id, "", ""});
  while (it != subs_.end() && std::get<0>(it->first) == client_id) {
    it = subs_.erase(it);
  }
  client_sub_counts_.erase(client_id);
  // No idle_exempt_ callback: the client is disconnecting anyway.
  subscriptions_gauge_->Set(static_cast<int64_t>(subs_.size()));
}

void SubscriptionBroker::OnSchemaMutated(const std::string& name,
                                         int version) {
  Event event;
  event.name = name;
  event.version = version;
  event.enqueued = std::chrono::steady_clock::now();
  MutexLock lock(&mu_);
  if (stop_) return;
  events_.push_back(std::move(event));
  cv_.Signal();
}

void SubscriptionBroker::Stop() {
  {
    MutexLock lock(&mu_);
    if (!stop_) {
      stop_ = true;
      cv_.SignalAll();
    }
  }
  if (notifier_.joinable()) notifier_.join();
}

int64_t SubscriptionBroker::subscriptions() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(subs_.size());
}

void SubscriptionBroker::NotifierLoop() {
  for (;;) {
    Event event;
    {
      MutexLock lock(&mu_);
      while (events_.empty() && !stop_) cv_.Wait(&mu_);
      if (events_.empty()) {
        // stop_ set and the queue drained: every pre-Stop event delivered.
        return;
      }
      event = std::move(events_.front());
      events_.pop_front();
    }
    events_counter_->Increment();
    ProcessEvent(event);
  }
}

void SubscriptionBroker::ProcessEvent(const Event& event) {
  // Snapshot the subscriptions touching the mutated schema. std::map order
  // makes delivery deterministic: by client id, then source, then target.
  std::vector<Subscription> affected;
  {
    MutexLock lock(&mu_);
    for (const auto& [key, sub] : subs_) {
      if (sub.source == event.name || sub.target == event.name) {
        affected.push_back(sub);
      }
    }
  }
  if (affected.empty()) return;

  // One re-match per distinct (source, target, fingerprint) group — N
  // subscribers of the same pair share a single warm Rematch. Groups run
  // concurrently over the scheduler (it is safe to Wait here: the notifier
  // is not a scheduler worker).
  struct Group {
    MatchRequest request;
    Result<MatchResponse> result{Status::Internal("not run")};
  };
  std::map<std::tuple<std::string, std::string, uint64_t>, Group> groups;
  for (const Subscription& sub : affected) {
    auto key = std::make_tuple(sub.source, sub.target, sub.fingerprint);
    if (groups.count(key)) continue;
    Group g;
    g.request.source = sub.source;
    g.request.target = sub.target;
    g.request.config = sub.config;
    groups.emplace(std::move(key), std::move(g));
  }
  std::vector<std::pair<Group*, std::shared_ptr<MatchJob>>> jobs;
  for (auto& [key, group] : groups) {
    Group* g = &group;
    std::shared_ptr<MatchJob> job;
    if (scheduler_ != nullptr) {
      MatchRequest request = g->request;
      MatchService* service = service_;
      auto submitted = scheduler_->SubmitTask(
          [service, request] { return service->Match(request); });
      if (submitted.ok()) job = *submitted;
    }
    if (job == nullptr) {
      // No scheduler, or its admission queue is full — run here.
      g->result = service_->Match(g->request);
    }
    jobs.emplace_back(g, std::move(job));
  }
  for (auto& [g, job] : jobs) {
    if (job != nullptr) g->result = job->Wait();
  }

  // Build and deliver one frame per subscription, sequentially (per-client
  // ordering comes from this single loop + the per-connection FIFO write
  // queue downstream).
  for (const Subscription& sub : affected) {
    auto git =
        groups.find(std::make_tuple(sub.source, sub.target, sub.fingerprint));
    if (git == groups.end()) continue;
    const Result<MatchResponse>& result = git->second.result;
    std::string frame;
    std::vector<std::pair<std::string, std::string>> leaf_pairs;
    if (result.ok()) {
      const MatchResponse& response = *result;
      leaf_pairs = LeafPairs(response.leaf_mapping);
      std::vector<std::pair<std::string, std::string>> added, removed;
      if (sub.primed) {
        std::set_difference(leaf_pairs.begin(), leaf_pairs.end(),
                            sub.last_leaf_pairs.begin(),
                            sub.last_leaf_pairs.end(),
                            std::back_inserter(added));
        std::set_difference(sub.last_leaf_pairs.begin(),
                            sub.last_leaf_pairs.end(), leaf_pairs.begin(),
                            leaf_pairs.end(), std::back_inserter(removed));
      } else {
        added = leaf_pairs;  // first push: everything is new
      }
      frame = "{\"v\":1,\"event\":\"push\",\"source\":\"";
      JsonEscapeTo(sub.source, &frame);
      frame.append("\",\"target\":\"");
      JsonEscapeTo(sub.target, &frame);
      frame.append("\",\"edited\":{\"name\":\"");
      JsonEscapeTo(event.name, &frame);
      frame.append("\",\"version\":");
      frame.append(std::to_string(event.version));
      frame.append("},\"delta\":{\"added\":");
      AppendPairArray(added, &frame);
      frame.append(",\"removed\":");
      AppendPairArray(removed, &frame);
      // The embedded response is MatchResponse::ToJson verbatim — byte-equal
      // to the `response` object of a fresh `match` at these versions.
      frame.append("},\"response\":");
      frame.append(response.ToJson(true));
      frame.push_back('}');
    } else {
      // Re-match failure (e.g. the repository went read-only): tell the
      // subscriber rather than silently going stale.
      frame = "{\"v\":1,\"event\":\"push_error\",\"source\":\"";
      JsonEscapeTo(sub.source, &frame);
      frame.append("\",\"target\":\"");
      JsonEscapeTo(sub.target, &frame);
      frame.append("\",\"error\":{\"code\":\"");
      frame.append(StatusCodeToString(result.status().code()));
      frame.append("\",\"message\":\"");
      JsonEscapeTo(result.status().message(), &frame);
      frame.append("\"}}");
    }

    bool delivered = push_(sub.client_id, frame);
    if (delivered) {
      pushes_->Increment();
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - event.enqueued)
                      .count();
      push_ms_->Observe(ms);
    } else {
      push_failures_->Increment();
    }

    // Persist the delta baseline (skip if the subscription changed or went
    // away while we were matching — a replacement resets the baseline on
    // purpose).
    if (result.ok()) {
      MutexLock lock(&mu_);
      auto sit = subs_.find(SubKey{sub.client_id, sub.source, sub.target});
      if (sit != subs_.end() && sit->second.fingerprint == sub.fingerprint) {
        sit->second.last_leaf_pairs = std::move(leaf_pairs);
        sit->second.primed = true;
      }
    }
  }
}

}  // namespace cupid
