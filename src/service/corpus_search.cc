#include "service/corpus_search.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "linguistic/normalizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "structural/tree_match.h"
#include "tree/tree_builder.h"
#include "util/json.h"
#include "util/strings.h"

namespace cupid {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Distinct informative token texts of every element name: the pre-screen's
/// bag. kCommon tokens are excluded (they are down-weighted to near zero in
/// real name similarity, so letting them create overlap would only blur the
/// screen). Built from the normalizer directly — no matcher, no cache — so
/// pre-screen scores are identical with the shared cache on or off.
std::unordered_set<std::string> DistinctTokens(const Schema& schema,
                                               const NameNormalizer& norm) {
  std::unordered_set<std::string> texts;
  std::unordered_set<std::string> seen_names;
  for (ElementId id : schema.AllElements()) {
    const std::string& raw = schema.element(id).name;
    if (!seen_names.insert(raw).second) continue;  // names repeat heavily
    NormalizedName name = norm.Normalize(raw);
    for (const Token& t : name.tokens) {
      if (t.type == TokenType::kCommon) continue;
      texts.insert(t.text);
    }
  }
  return texts;
}

/// Cosine overlap of two distinct-token sets: |A∩B| / sqrt(|A|·|B|).
/// Set-membership counting, so iteration order of the hash sets cannot
/// affect the value.
double TokenCosine(const std::unordered_set<std::string>& a,
                   const std::unordered_set<std::string>& b) {
  if (a.empty() || b.empty()) return 0.0;
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t common = 0;
  for (const std::string& t : small) {
    if (large.count(t) != 0) ++common;
  }
  return static_cast<double>(common) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

/// Score of one full match, plus the hit diagnostics.
struct CandidateScore {
  double score = 0.0;
  int64_t leaf_elements = 0;
};

/// Full three-phase match of (source, target) — the same pipeline as
/// CupidMatcher::Match, with the linguistic phase optionally served from
/// the shared cache: the warmed read path first, falling back to the
/// exclusive cached path when the candidate misses (all three produce
/// bit-identical lsim, so the score never depends on which path ran).
Result<CandidateScore> ScoreCandidate(const Thesaurus* thesaurus,
                                      const CupidConfig& config,
                                      const Schema& source,
                                      const Schema& target,
                                      LsimCache* cache) {
  LinguisticMatcher linguistic(thesaurus, config.linguistic);
  LinguisticResult lres;
  if (cache != nullptr) {
    static obs::Counter* shared_hits = obs::MetricsRegistry::Default()->GetCounter(
        "cupid.corpus.shared_cache.hits",
        "Candidates whose linguistic phase was served warm from the shared cache");
    static obs::Counter* shared_misses = obs::MetricsRegistry::Default()->GetCounter(
        "cupid.corpus.shared_cache.misses",
        "Candidates that fell back to the exclusive cached path");
    Result<LinguisticResult> warmed =
        linguistic.MatchWarmed(source, target, *cache);
    if (warmed.ok()) {
      shared_hits->Increment();
      lres = std::move(warmed).ValueOrDie();
    } else if (warmed.status().IsUnavailable()) {
      shared_misses->Increment();
      CUPID_ASSIGN_OR_RETURN(lres, linguistic.Match(source, target, cache));
    } else {
      return warmed.status();
    }
  } else {
    CUPID_ASSIGN_OR_RETURN(lres, linguistic.Match(source, target));
  }

  CUPID_ASSIGN_OR_RETURN(SchemaTree source_tree,
                         BuildSchemaTree(source, config.tree_build));
  CUPID_ASSIGN_OR_RETURN(SchemaTree target_tree,
                         BuildSchemaTree(target, config.tree_build));
  CUPID_ASSIGN_OR_RETURN(
      TreeMatchResult tmres,
      TreeMatch(source_tree, target_tree, lres.lsim,
                config.type_compatibility, config.tree_match));
  CUPID_RETURN_NOT_OK(RecomputeNonLeafSimilarities(
      source_tree, target_tree, config.tree_match, &tmres));

  Mapping leaf_mapping, nonleaf_mapping;
  CUPID_RETURN_NOT_OK(GenerateStandardMappings(source_tree, target_tree,
                                               tmres, config, &leaf_mapping,
                                               &nonleaf_mapping));

  MatchResult result{std::move(source_tree), std::move(target_tree),
                     std::move(lres),        std::move(tmres),
                     std::move(leaf_mapping), std::move(nonleaf_mapping)};
  CandidateScore out;
  out.score = CorpusRankingScore(result);
  out.leaf_elements = static_cast<int64_t>(result.leaf_mapping.size());
  return out;
}

}  // namespace

double CorpusRankingScore(const MatchResult& result) {
  double total = 0.0;
  for (const MappingElement& e : result.leaf_mapping.elements) {
    total += e.wsim;
  }
  const int64_t source_leaves = static_cast<int64_t>(
      result.source_tree.leaves(result.source_tree.root()).size());
  const int64_t target_leaves = static_cast<int64_t>(
      result.target_tree.leaves(result.target_tree.root()).size());
  const int64_t denom =
      std::max<int64_t>({source_leaves, target_leaves, int64_t{1}});
  return total / static_cast<double>(denom);
}

Status SearchRequest::Validate() const {
  if (source.empty()) {
    return Status::InvalidArgument("search source name must not be empty");
  }
  if (top_k <= 0) {
    return Status::InvalidArgument("top_k must be > 0");
  }
  if (prune_fraction < 0.0 || prune_fraction > 1.0) {
    return Status::InvalidArgument("prune_fraction must be within [0,1]");
  }
  if (prune_min_keep < 0) {
    return Status::InvalidArgument("prune_min_keep must be >= 0");
  }
  return config.Validate();
}

Status CorpusSearchService::Options::Validate() const { return Status::OK(); }

std::string SearchResponse::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("source");
  w.String(source);
  w.Key("source_version");
  w.Int(source_version);
  w.Key("config_fingerprint");
  w.String(StringFormat("%016llx",
                        static_cast<unsigned long long>(config_fingerprint)));
  w.Key("candidates_total");
  w.Int(candidates_total);
  w.Key("candidates_pruned");
  w.Int(candidates_pruned);
  w.Key("full_matches");
  w.Int(full_matches);
  w.Key("shared_cache");
  w.Bool(shared_cache);
  w.Key("timings");
  w.BeginObject();
  w.Key("total_ms");
  w.FixedDouble(timings.total_ms, 3);
  w.Key("prescreen_ms");
  w.FixedDouble(timings.prescreen_ms, 3);
  w.Key("match_ms");
  w.FixedDouble(timings.match_ms, 3);
  w.EndObject();
  w.Key("hits");
  w.BeginArray();
  for (const SearchHit& hit : hits) {
    w.BeginObject();
    w.Key("target");
    w.String(hit.target);
    w.Key("target_version");
    w.Int(hit.target_version);
    w.Key("score");
    w.FixedDouble(hit.score, 6);
    w.Key("prescreen");
    w.FixedDouble(hit.prescreen, 6);
    w.Key("leaf_elements");
    w.Int(hit.leaf_elements);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

CorpusSearchService::CorpusSearchService(const Thesaurus* thesaurus,
                                         SchemaRepository* repository,
                                         JobScheduler* scheduler,
                                         Options options)
    : thesaurus_(thesaurus),
      repository_(repository),
      scheduler_(scheduler),
      options_(options) {}

LsimCache* CorpusSearchService::SharedCacheFor(const CupidConfig& config) {
  // Key on exactly the fields LinguisticMatcher's cache binding check
  // compares (bit patterns, so e.g. -0.0 vs 0.0 never alias): requests
  // whose bindings agree share one cache — and one TokenInterner — across
  // searches; anything else gets its own.
  const LinguisticOptions& lo = config.linguistic;
  std::string key;
  auto add_double = [&key](double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    key += StringFormat("%016llx.", static_cast<unsigned long long>(bits));
  };
  add_double(lo.substring.scale);
  key += StringFormat("%llu.",
                      static_cast<unsigned long long>(lo.substring.min_affix));
  for (double w : lo.token_weights.w) add_double(w);

  MutexLock lock(&caches_mu_);
  std::unique_ptr<LsimCache>& slot = caches_[key];
  if (slot == nullptr) {
    slot = std::make_unique<LsimCache>(thesaurus_, lo);
  }
  return slot.get();
}

void CorpusSearchService::InvalidateAll() {
  MutexLock lock(&caches_mu_);
  caches_.clear();
}

Result<SearchResponse> CorpusSearchService::Search(
    const SearchRequest& request) {
  obs::TraceContext trace_ctx("search");
  obs::ScopedTraceContext scoped_ctx(&trace_ctx);
  obs::ScopedSpan span("corpus.search");

  Clock::time_point t_start = Clock::now();
  CUPID_RETURN_NOT_OK(options_.Validate());
  CUPID_RETURN_NOT_OK(request.Validate());

  CUPID_ASSIGN_OR_RETURN(
      SchemaRepository::SchemaSnapshot source,
      repository_->Resolve(request.source, request.source_version));

  SearchResponse response;
  response.source = request.source;
  response.source_version = source.version;
  response.config_fingerprint = ConfigFingerprint(request.config);

  // Candidates: every stored schema except the probe itself, at its latest
  // version, in name order (Names() is sorted — the deterministic spine
  // every later ordering decision hangs off).
  struct Candidate {
    std::string name;
    SchemaRepository::SchemaSnapshot snapshot;
    double prescreen = 0.0;
  };
  std::vector<Candidate> candidates;
  for (const std::string& name : repository_->Names()) {
    if (name == request.source) continue;
    CUPID_ASSIGN_OR_RETURN(SchemaRepository::SchemaSnapshot snapshot,
                           repository_->Resolve(name));
    candidates.push_back(Candidate{name, std::move(snapshot), 0.0});
  }
  response.candidates_total = static_cast<int64_t>(candidates.size());

  // Pre-screen every candidate (scores are reported on hits even when the
  // screen does not prune).
  Clock::time_point t_prescreen = Clock::now();
  NameNormalizer normalizer(thesaurus_);
  std::unordered_set<std::string> source_tokens =
      DistinctTokens(*source.schema, normalizer);
  for (Candidate& c : candidates) {
    c.prescreen =
        TokenCosine(source_tokens, DistinctTokens(*c.snapshot.schema,
                                                  normalizer));
  }
  response.timings.prescreen_ms = MsSince(t_prescreen);

  // Survivors of the screen, in (prescreen desc, name asc) order. The kept
  // indices are then restored to name order so the execution schedule —
  // and every warm/submit sequence — is independent of pre-screen scores.
  std::vector<size_t> kept(candidates.size());
  for (size_t i = 0; i < kept.size(); ++i) kept[i] = i;
  const bool prune = request.prune && !request.exhaustive;
  if (prune && !candidates.empty()) {
    const auto n = static_cast<double>(candidates.size());
    size_t keep = static_cast<size_t>(
        std::ceil(request.prune_fraction * n));
    keep = std::max<size_t>(keep, static_cast<size_t>(request.top_k));
    keep = std::max<size_t>(keep,
                            static_cast<size_t>(request.prune_min_keep));
    keep = std::min(keep, candidates.size());
    std::sort(kept.begin(), kept.end(), [&](size_t a, size_t b) {
      if (candidates[a].prescreen != candidates[b].prescreen) {
        return candidates[a].prescreen > candidates[b].prescreen;
      }
      return candidates[a].name < candidates[b].name;
    });
    kept.resize(keep);
    std::sort(kept.begin(), kept.end());
  }
  response.candidates_pruned =
      response.candidates_total - static_cast<int64_t>(kept.size());
  response.full_matches = static_cast<int64_t>(kept.size());

  Clock::time_point t_match = Clock::now();
  LsimCache* cache = nullptr;
  if (options_.share_lsim_cache) {
    cache = SharedCacheFor(request.config);
    response.shared_cache = true;
    // Exclusive warm phase: register names and fill every name-pair
    // similarity each survivor will need, so the sharded phase below reads
    // the table under a shared lock without ever mutating it. Warm work is
    // what repeated searches amortize — a probe already seen costs nothing
    // here.
    for (size_t idx : kept) {
      LinguisticMatcher linguistic(thesaurus_, request.config.linguistic);
      CUPID_RETURN_NOT_OK(linguistic.WarmNames(
          *source.schema, *candidates[idx].snapshot.schema, cache));
    }
    obs::MetricsRegistry::Default()
        ->GetCounter("cupid.corpus.shared_cache.warms",
                     "Candidate schemas warmed into the shared cache")
        ->Add(static_cast<int64_t>(kept.size()));
  }

  // Sharded scoring: one task per survivor, each writing its preallocated
  // slot (the job's done-handshake orders the write before our read), so
  // results assemble in candidate order no matter which worker finished
  // first. A rejected submission (queue full, shutdown) runs inline — same
  // closure, same slot, same result.
  std::vector<Result<CandidateScore>> slots(
      kept.size(), Result<CandidateScore>(Status::Internal("pending")));
  auto run_one = [&](size_t slot_index) {
    const Candidate& c = candidates[kept[slot_index]];
    slots[slot_index] = ScoreCandidate(thesaurus_, request.config,
                                       *source.schema, *c.snapshot.schema,
                                       cache);
  };
  if (scheduler_ != nullptr) {
    std::vector<std::shared_ptr<MatchJob>> jobs(kept.size());
    for (size_t i = 0; i < kept.size(); ++i) {
      Result<std::shared_ptr<MatchJob>> job =
          scheduler_->SubmitTask([&run_one, i]() -> Result<MatchResponse> {
            run_one(i);
            return MatchResponse{};
          });
      if (job.ok()) {
        jobs[i] = *job;
      } else {
        run_one(i);
      }
    }
    for (const std::shared_ptr<MatchJob>& job : jobs) {
      if (job != nullptr) job->Wait();
    }
  } else {
    for (size_t i = 0; i < kept.size(); ++i) run_one(i);
  }
  response.timings.match_ms = MsSince(t_match);

  // First failure in candidate order wins (deterministic, like MatchBatch's
  // per-slot statuses).
  for (const Result<CandidateScore>& slot : slots) {
    if (!slot.ok()) return slot.status();
  }

  response.hits.reserve(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    const Candidate& c = candidates[kept[i]];
    SearchHit hit;
    hit.target = c.name;
    hit.target_version = c.snapshot.version;
    hit.score = slots[i]->score;
    hit.prescreen = c.prescreen;
    hit.leaf_elements = slots[i]->leaf_elements;
    response.hits.push_back(std::move(hit));
  }
  std::sort(response.hits.begin(), response.hits.end(),
            [](const SearchHit& a, const SearchHit& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.target != b.target) return a.target < b.target;
              return a.target_version < b.target_version;
            });
  if (response.hits.size() > static_cast<size_t>(request.top_k)) {
    response.hits.resize(static_cast<size_t>(request.top_k));
  }
  response.timings.total_ms = MsSince(t_start);

  obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
  reg->GetCounter("cupid.corpus.searches", "Corpus search requests completed")
      ->Increment();
  reg->GetCounter("cupid.corpus.candidates_pruned",
                  "Candidates dropped by the pre-screen across searches")
      ->Add(response.candidates_pruned);
  reg->GetCounter("cupid.corpus.candidates_matched",
                  "Candidates fully matched across searches")
      ->Add(response.full_matches);
  reg->GetHistogram("cupid.corpus.search_ms",
                    "End-to-end corpus search latency, ms")
      ->Observe(response.timings.total_ms);
  span.Attr("candidates_total", response.candidates_total);
  span.Attr("candidates_pruned", response.candidates_pruned);
  span.Attr("full_matches", response.full_matches);
  span.Attr("shared_cache", response.shared_cache ? 1 : 0);
  span.Attr("prescreen_ms", response.timings.prescreen_ms);
  span.Attr("match_ms", response.timings.match_ms);
  return response;
}

}  // namespace cupid
