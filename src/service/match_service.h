// MatchService — the long-lived front door for matching traffic.
//
// Every consumer so far (CLI, examples, benches) builds schemas and a
// CupidMatcher from scratch per call. MatchService instead fronts a
// SchemaRepository with the warm state worth keeping between requests:
//
//   * an LRU result cache keyed by (source@version, target@version,
//     ConfigFingerprint) — a repeated request is a lookup;
//   * one MatchSession per (source, target, ConfigFingerprint) pair,
//     carrying the session's LsimCache/TokenInterner and similarity
//     snapshots across requests — when the repository's latest versions
//     moved by a pure edit chain, the service replays the edits into the
//     session and Rematch takes the incremental path;
//   * a direct CupidMatcher path for requests that opt out of session
//     state (use_session=false).
//
// Responses carry value-semantic mappings (safe to cache and share) and
// are bit-identical to CupidMatcher::Match on the same schema versions
// regardless of which path served them (tests/service_test.cc hammers this
// from N concurrent clients).

#ifndef CUPID_SERVICE_MATCH_SERVICE_H_
#define CUPID_SERVICE_MATCH_SERVICE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/config.h"
#include "incremental/match_session.h"
#include "mapping/mapping.h"
#include "obs/metrics.h"
#include "service/schema_repository.h"
#include "thesaurus/thesaurus.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace cupid {

/// One match request against repository schemas.
struct MatchRequest {
  std::string source;      ///< repository name of the source schema
  std::string target;      ///< repository name of the target schema
  int source_version = 0;  ///< 0 = latest
  int target_version = 0;  ///< 0 = latest
  CupidConfig config;
  /// Serve / store this request through the LRU result cache.
  bool use_result_cache = true;
  /// Use the per-pair warm MatchSession (incremental path after repository
  /// edits). When false the request runs a one-shot CupidMatcher.
  bool use_session = true;
};

/// Wall-clock phases of one request, milliseconds.
struct ServiceTimings {
  double total_ms = 0.0;
  /// Time inside the matcher (0 for result-cache hits).
  double match_ms = 0.0;
  /// Time spent queued before a worker picked the job up (filled by
  /// JobScheduler; 0 for synchronous calls).
  double queue_ms = 0.0;
};

/// Everything a match request returns. Value semantics: safe to copy out,
/// cache, and serialize after the repository has moved on.
struct MatchResponse {
  std::string source, target;
  int source_version = 0, target_version = 0;
  uint64_t config_fingerprint = 0;

  Mapping leaf_mapping;
  Mapping nonleaf_mapping;

  /// Served straight from the LRU result cache.
  bool result_cache_hit = false;
  /// A previously warmed session was reused (same or edit-derived versions).
  bool session_reused = false;
  /// The session's Rematch took the incremental (warm-start) path.
  bool incremental = false;
  /// Session diagnostics of the run that produced the mappings (zeroed for
  /// result-cache hits and direct runs).
  RematchStats stats;

  ServiceTimings timings;

  /// \brief Compact JSON object (the JSONL protocol payload). Mapping
  /// similarity values use 6 fixed decimals, matching RenderMappingJson.
  std::string ToJson(bool include_mappings = true) const;
};

/// \brief Concurrent match front door over a SchemaRepository.
class MatchService {
 public:
  struct Options {
    /// Capacity of the LRU result cache (responses; they are small —
    /// mappings only). 0 disables result caching entirely.
    int result_cache_capacity = 128;
    /// Bound on warm pair sessions kept between requests. Sessions hold
    /// full similarity snapshots (megabytes at large schema sizes), so an
    /// idle pair's state must not live forever: the least recently used
    /// pair is dropped beyond this. A re-requested evicted pair just warms
    /// a fresh session — results stay bit-identical, only the first
    /// request pays the cold cost again. 0 = unbounded.
    int session_capacity = 64;

    /// Registry the service's counters live in; nullptr = the process-wide
    /// obs::MetricsRegistry::Default(). Tests pass a private registry for
    /// hard isolation.
    obs::MetricsRegistry* metrics = nullptr;

    /// InvalidArgument on out-of-domain capacities (negative values would
    /// silently disable eviction or underflow size comparisons). Checked on
    /// every Match call, so a misconfigured service fails loudly.
    Status Validate() const;
  };

  /// `thesaurus` and `repository` must outlive the service.
  MatchService(const Thesaurus* thesaurus, SchemaRepository* repository,
               Options options);
  MatchService(const Thesaurus* thesaurus, SchemaRepository* repository)
      : MatchService(thesaurus, repository, Options()) {}

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  /// \brief Executes one request synchronously. Thread-safe; requests for
  /// the same (source, target, fingerprint) pair serialize on the pair's
  /// session, everything else runs concurrently.
  Result<MatchResponse> Match(const MatchRequest& request);

  SchemaRepository* repository() const { return repository_; }

  /// \brief Drops every cached result and warm session. Required after the
  /// backing repository is replaced wholesale (e.g. a "load" command):
  /// version numbers restart, so stale sessions could otherwise collide
  /// with the new lineage.
  void InvalidateAll();

  /// Cross-request cache effectiveness counters (monotonic). A view over
  /// the cupid.service.* registry counters: each field is the counter's
  /// current value minus its value when this service was constructed, so
  /// the historical per-instance semantics survive the registry re-base
  /// (exact while this instance is the counters' only concurrent updater —
  /// the one-service-per-process topology; tests wanting isolation pass
  /// Options::metrics).
  struct CacheStats {
    int64_t result_hits = 0;
    int64_t result_misses = 0;
    int64_t result_evictions = 0;
    int64_t sessions_created = 0;
    int64_t sessions_reused = 0;
    int64_t sessions_evicted = 0;
    int64_t incremental_rematches = 0;
  };
  CacheStats cache_stats() const;

 private:
  struct ResultKey {
    std::string source;
    int source_version;
    std::string target;
    int target_version;
    uint64_t config_fingerprint;
    bool operator==(const ResultKey& o) const {
      return source == o.source && source_version == o.source_version &&
             target == o.target && target_version == o.target_version &&
             config_fingerprint == o.config_fingerprint;
    }
  };
  struct ResultKeyHash {
    size_t operator()(const ResultKey& k) const;
  };

  /// Warm per-pair state; `mu` serializes matches on the pair.
  struct PairEntry {
    Mutex mu;
    std::unique_ptr<MatchSession> session GUARDED_BY(mu);
    int source_version GUARDED_BY(mu) = 0;
    int target_version GUARDED_BY(mu) = 0;
  };

  std::shared_ptr<const MatchResponse> CacheLookup(const ResultKey& key);
  void CacheInsert(const ResultKey& key,
                   std::shared_ptr<const MatchResponse> response);

  /// Runs the request on the pair's (possibly warmed) session, filling
  /// `response`'s mappings/flags/stats (its header fields — names,
  /// versions, fingerprint — are already set by Match). entry->mu must be
  /// held.
  Status MatchOnSession(const MatchRequest& request, PairEntry* entry,
                        std::shared_ptr<const Schema> source,
                        std::shared_ptr<const Schema> target,
                        MatchResponse* response) REQUIRES(entry->mu);

  const Thesaurus* thesaurus_;
  SchemaRepository* repository_;
  Options options_;

  mutable Mutex cache_mu_;
  /// LRU: most recent at front; map values point into the list.
  std::list<std::pair<ResultKey, std::shared_ptr<const MatchResponse>>> lru_
      GUARDED_BY(cache_mu_);
  std::unordered_map<ResultKey,
                     std::list<std::pair<
                         ResultKey, std::shared_ptr<const MatchResponse>>>::
                         iterator,
                     ResultKeyHash>
      result_cache_ GUARDED_BY(cache_mu_);

  mutable Mutex sessions_mu_;
  /// Bounded LRU over warm pair state, keyed (source \x1f target \x1f
  /// fingerprint): most recently requested pair at the front of
  /// session_lru_; map values point into the list. Evicting a pair only
  /// drops the map's reference — an in-flight request holding the
  /// shared_ptr finishes safely on the detached entry.
  std::list<std::pair<std::string, std::shared_ptr<PairEntry>>> session_lru_
      GUARDED_BY(sessions_mu_);
  std::unordered_map<
      std::string,
      std::list<std::pair<std::string, std::shared_ptr<PairEntry>>>::iterator>
      sessions_ GUARDED_BY(sessions_mu_);

  /// Registry counter handles (lock-free increments on the request path)
  /// and the construction-time baseline cache_stats() subtracts.
  obs::Counter* result_hits_;
  obs::Counter* result_misses_;
  obs::Counter* result_evictions_;
  obs::Counter* sessions_created_;
  obs::Counter* sessions_reused_;
  obs::Counter* sessions_evicted_;
  obs::Counter* incremental_rematches_;
  obs::Histogram* request_ms_;
  CacheStats baseline_;
};

}  // namespace cupid

#endif  // CUPID_SERVICE_MATCH_SERVICE_H_
