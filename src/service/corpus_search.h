// CorpusSearchService — ranked one-vs-N schema search over a repository.
//
// The corpus-scale scenario of Section 8.4: a repository stores hundreds of
// schemas and the serving question is "which of them best matches this
// one?". Running the full three-phase matcher against every stored schema
// is the naive answer; this service layers three optimizations on top of
// it, each preserving bit-identical results:
//
//   1. one shared cross-pair LsimCache (single TokenInterner) for the whole
//      service: the probe schema's name-pair work is paid once, candidates
//      read the warmed similarity table concurrently under a shared lock
//      (LinguisticMatcher::MatchWarmed);
//   2. a cheap linguistic pre-screen — distinct-token cosine overlap,
//      computed without touching the matcher — prunes the candidate set to
//      top-k' before any full TreeMatch runs (an exhaustive knob disables
//      it when recall must be perfect);
//   3. the surviving candidates shard over a JobScheduler; results land in
//      per-candidate slots, so ranking is deterministic and bit-identical
//      to a serial per-pair loop at any thread count.
//
// tests/corpus_search_test.cc pins the equality: ranked hits (order and
// scores) match an exhaustive per-pair CupidMatcher sweep across thread
// counts and with the shared cache on or off.

#ifndef CUPID_SERVICE_CORPUS_SEARCH_H_
#define CUPID_SERVICE_CORPUS_SEARCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/cupid_matcher.h"
#include "linguistic/lsim_cache.h"
#include "service/job_scheduler.h"
#include "service/schema_repository.h"
#include "thesaurus/thesaurus.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace cupid {

/// One ranked search against the repository's stored schemas.
struct SearchRequest {
  std::string source;      ///< repository name of the probe schema
  int source_version = 0;  ///< 0 = latest
  /// Ranked hits to return (every candidate is still scored or pruned).
  int top_k = 10;
  CupidConfig config;
  /// Pre-screen candidates by linguistic token overlap and run the full
  /// matcher only on the survivors. Pruning trades recall for latency; the
  /// kept fraction below bounds the loss.
  bool prune = true;
  /// Fraction of the candidate set kept past the pre-screen (ceil(f * N)).
  double prune_fraction = 0.25;
  /// Floor on kept candidates, so small corpora are never over-pruned; the
  /// effective keep count is max(top_k, prune_min_keep, ceil(f * N)).
  int prune_min_keep = 16;
  /// Full TreeMatch on every candidate regardless of `prune` (the perfect-
  /// recall fallback; pre-screen scores are still reported on hits).
  bool exhaustive = false;

  /// InvalidArgument on out-of-domain knobs (top_k <= 0, prune fraction
  /// outside [0,1], negative prune_min_keep, empty source) and on an
  /// invalid embedded config.
  Status Validate() const;
};

/// One scored candidate of a search.
struct SearchHit {
  std::string target;      ///< repository name of the candidate
  int target_version = 0;  ///< version that was matched
  /// Ranking score of the full match: leaf-mapping wsim mass normalized by
  /// the larger leaf count (see CorpusRankingScore).
  double score = 0.0;
  /// Linguistic pre-screen score (distinct-token cosine overlap in [0,1]).
  double prescreen = 0.0;
  /// Size of the leaf mapping the score was computed from.
  int64_t leaf_elements = 0;
};

/// Wall-clock phases of one search, milliseconds.
struct SearchTimings {
  double total_ms = 0.0;
  /// Candidate enumeration + pre-screen scoring.
  double prescreen_ms = 0.0;
  /// Cache warming plus every full per-candidate match (wall clock of the
  /// sharded phase, not the sum of per-candidate times).
  double match_ms = 0.0;
};

/// Everything a search returns. Value semantics, like MatchResponse.
struct SearchResponse {
  std::string source;
  int source_version = 0;
  uint64_t config_fingerprint = 0;

  /// Ranked best-first: (score desc, target asc, version asc). At most
  /// top_k entries.
  std::vector<SearchHit> hits;

  /// Stored schemas considered (everything in the repository except the
  /// probe itself).
  int64_t candidates_total = 0;
  /// Candidates dropped by the pre-screen (0 when exhaustive).
  int64_t candidates_pruned = 0;
  /// Candidates that went through the full three-phase matcher.
  int64_t full_matches = 0;
  /// The shared cross-pair LsimCache served this search.
  bool shared_cache = false;

  SearchTimings timings;

  /// \brief Compact JSON object (the JSONL protocol payload). Scores use 6
  /// fixed decimals, timings 3, matching MatchResponse::ToJson.
  std::string ToJson() const;
};

/// \brief Ranking score of one full match result: total leaf-mapping wsim
/// normalized by the larger side's leaf count, in [0,1]. Symmetric in
/// intent — a small schema matching a fragment of a huge one ranks below
/// two schemas that cover each other. Public so tests and benches can rank
/// an exhaustive CupidMatcher sweep with the exact same formula.
double CorpusRankingScore(const MatchResult& result);

/// \brief Ranked one-vs-N search front door over a SchemaRepository.
class CorpusSearchService {
 public:
  struct Options {
    /// Serve linguistic name-pair work from one service-wide LsimCache per
    /// option binding (off = every candidate pays its own linguistic
    /// phase; results are bit-identical either way — the ablation knob the
    /// bench and tests exercise).
    bool share_lsim_cache = true;

    /// InvalidArgument on out-of-domain values; checked on every Search.
    Status Validate() const;
  };

  /// `thesaurus` and `repository` must outlive the service. `scheduler` is
  /// optional (null = candidates run serially on the calling thread) and
  /// must also outlive the service; search shards per-candidate work
  /// through JobScheduler::SubmitTask, so one scheduler can serve match
  /// and search traffic concurrently.
  CorpusSearchService(const Thesaurus* thesaurus,
                      SchemaRepository* repository, JobScheduler* scheduler,
                      Options options);
  CorpusSearchService(const Thesaurus* thesaurus,
                      SchemaRepository* repository,
                      JobScheduler* scheduler = nullptr)
      : CorpusSearchService(thesaurus, repository, scheduler, Options()) {}

  CorpusSearchService(const CorpusSearchService&) = delete;
  CorpusSearchService& operator=(const CorpusSearchService&) = delete;

  /// \brief Executes one ranked search synchronously. Thread-safe; hits
  /// are deterministic and bit-identical to a serial exhaustive loop over
  /// the same candidates at any scheduler thread count.
  Result<SearchResponse> Search(const SearchRequest& request);

  SchemaRepository* repository() const { return repository_; }

  /// \brief Drops the shared linguistic caches (required after the backing
  /// repository is replaced wholesale, mirroring
  /// MatchService::InvalidateAll).
  void InvalidateAll();

 private:
  /// The shared cache for the request's linguistic option binding, created
  /// on first use. One cache (and thus one TokenInterner) per binding;
  /// requests with equal bindings share it across searches.
  LsimCache* SharedCacheFor(const CupidConfig& config);

  const Thesaurus* thesaurus_;
  SchemaRepository* repository_;
  JobScheduler* scheduler_;
  Options options_;

  mutable Mutex caches_mu_;
  /// Keyed by the linguistic option fields the cache binding check uses
  /// (substring scale/min_affix, token type weights).
  std::unordered_map<std::string, std::unique_ptr<LsimCache>> caches_
      GUARDED_BY(caches_mu_);
};

}  // namespace cupid

#endif  // CUPID_SERVICE_CORPUS_SEARCH_H_
