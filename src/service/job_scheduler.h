// JobScheduler — bounded concurrent execution of match requests.
//
// A thin admission-controlled layer over util/thread_pool.h: jobs are
// accepted up to a pending bound (back-pressure instead of unbounded queue
// growth), each job records queue-wait and run time, and MatchBatch is the
// submit-all-then-wait convenience the JSONL batch protocol and the service
// bench use.

#ifndef CUPID_SERVICE_JOB_SCHEDULER_H_
#define CUPID_SERVICE_JOB_SCHEDULER_H_

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "service/match_service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace cupid {

/// \brief Handle to one scheduled match; created by JobScheduler::Submit.
class MatchJob {
 public:
  /// Blocks until the job finished; the result stays owned by the job.
  const Result<MatchResponse>& Wait() const;

  bool done() const;
  /// Milliseconds spent queued before a worker started the job (0.0 until
  /// done; also copied into the response's timings.queue_ms).
  double queue_ms() const;
  /// Milliseconds the job ran on its worker (0.0 until done).
  double run_ms() const;

 private:
  friend class JobScheduler;
  using Clock = std::chrono::steady_clock;

  void Finish(Result<MatchResponse> result, double queue_ms, double run_ms);

  mutable Mutex mu_;
  mutable CondVar cv_;
  bool done_ GUARDED_BY(mu_) = false;
  Result<MatchResponse> result_ GUARDED_BY(mu_){
      Status::Internal("job still pending")};
  /// Written by the submitting thread before the job is published to the
  /// pool (the pool's queue lock orders it before the worker's read).
  Clock::time_point enqueued_;
  double queue_ms_ GUARDED_BY(mu_) = 0.0;
  double run_ms_ GUARDED_BY(mu_) = 0.0;
};

/// \brief Bounded worker pool executing MatchService requests.
class JobScheduler {
 public:
  struct Options {
    /// Worker threads; 0 = all hardware threads.
    int num_threads = 0;
    /// Maximum jobs admitted but not yet finished; further Submits are
    /// rejected with OutOfRange (callers retry or shed load).
    int max_pending = 1024;

    /// InvalidArgument on out-of-domain knobs: negative num_threads, or a
    /// non-positive max_pending (which would reject every submission).
    /// Checked on every Submit/SubmitTask so a misconfigured scheduler
    /// fails loudly instead of silently shedding all load.
    Status Validate() const;
  };

  /// `service` must outlive the scheduler.
  JobScheduler(MatchService* service, Options options);
  explicit JobScheduler(MatchService* service)
      : JobScheduler(service, Options()) {}

  /// Finishes in-flight jobs, rejects the rest (see Shutdown).
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// \brief Admits `request` for asynchronous execution. OutOfRange when
  /// max_pending jobs are in flight; Unsupported after Shutdown.
  Result<std::shared_ptr<MatchJob>> Submit(MatchRequest request);

  /// \brief Generic admission path: schedules an arbitrary closure under
  /// the same bounded-admission rules as Submit (OutOfRange when full,
  /// Unsupported after Shutdown). Corpus search shards its per-candidate
  /// work through this; Submit wraps a MatchRequest into a closure and
  /// forwards here.
  Result<std::shared_ptr<MatchJob>> SubmitTask(
      std::function<Result<MatchResponse>()> task);

  /// \brief Submits every request, then waits for all of them; results come
  /// back in request order. Rejected submissions surface as their error
  /// status in the corresponding slot.
  std::vector<Result<MatchResponse>> MatchBatch(
      std::vector<MatchRequest> requests);

  /// \brief Drains queued jobs, then stops accepting new ones. Idempotent.
  void Shutdown();

  int num_threads() const { return pool_.size(); }
  /// Jobs admitted but not yet finished.
  int pending() const;

 private:
  friend class JobSchedulerTestPeer;

  MatchService* service_;
  Options options_;
  ThreadPool pool_;

  mutable Mutex mu_;
  int pending_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;

  /// Default-registry handles (cupid.scheduler.*): the queue-depth gauge
  /// composes additively across schedulers sharing the registry.
  obs::Gauge* queue_depth_;
  obs::Counter* jobs_submitted_;
  obs::Counter* jobs_rejected_;
  obs::Histogram* queue_ms_;
  obs::Histogram* run_ms_;
};

}  // namespace cupid

#endif  // CUPID_SERVICE_JOB_SCHEDULER_H_
