// SchemaRepository — named, versioned, thread-safe schema storage with
// optional database-grade durability.
//
// The serving half of the Section 8.4 story: schemas live in a repository,
// evolve a few elements at a time, and get re-matched after every change.
// Every mutation creates a new immutable version (an edit records its
// lineage, a re-registration starts a fresh line), so concurrent match
// requests always see a consistent snapshot and MatchService can replay the
// edit chain between two versions into a warm MatchSession instead of
// rematching from scratch.
//
// Durability (src/storage/): a repository opened with Recover() appends
// every mutation to a write-ahead log (CRC32-framed records, fsync on
// commit) *before* applying it, compacts the log into SaveTo-format
// snapshots once it grows past the configured thresholds, and reloads
// after a crash by loading the latest valid snapshot and replaying the WAL
// tail — dropping a torn trailing record gracefully. Edit lineage is
// persisted (WAL records and snapshot manifests both carry the edits), so
// a recovered repository re-warms MatchService sessions instead of
// serving cold re-matches. A failed log write flips the repository into
// degraded read-only mode: reads keep working, mutations return
// Status::Unavailable, the process never aborts.
//
// Persistence uses the native ".cupid" text format (which round-trips
// keys and referential constraints; tests/importers_test.cc asserts
// tree-identity for every importer format) plus a JSONL manifest with
// per-file CRC32 checksums and lineage entries.

#ifndef CUPID_SERVICE_SCHEMA_REPOSITORY_H_
#define CUPID_SERVICE_SCHEMA_REPOSITORY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "importers/schema_io.h"
#include "incremental/schema_edit.h"
#include "schema/schema.h"
#include "storage/wal.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/storage_env.h"
#include "util/thread_annotations.h"

namespace cupid {

/// Knobs of the durable write path (see docs/DURABILITY.md).
struct DurabilityOptions {
  /// Filesystem to operate through; nullptr = DefaultStorageEnv(). Tests
  /// substitute a FaultInjectionEnv here.
  StorageEnv* env = nullptr;
  /// Snapshot-compact once this many records accumulated past the last
  /// snapshot (<= 0 disables the record trigger).
  int snapshot_every_records = 256;
  /// ... or once the live WAL exceeds this many bytes (<= 0 disables).
  int64_t snapshot_every_bytes = 8 << 20;
  /// fsync the log on every commit (the durability guarantee). Turning
  /// this off trades the "acknowledged => survives power loss" invariant
  /// for throughput; a crash may then lose a suffix of acknowledged
  /// mutations (never corrupt state — recovery still yields a prefix).
  bool sync_every_commit = true;
};

/// Observable state of the durability subsystem (server "stats" command,
/// tests).
struct DurabilityStats {
  bool durable = false;
  /// A log write failed; the repository is read-only until reopened.
  bool degraded = false;
  /// Sequence number of the last applied mutation record.
  uint64_t applied_seq = 0;
  /// Sequence covered by the latest snapshot (records <= this are
  /// compacted).
  uint64_t snapshot_seq = 0;
  /// Records / bytes in the live (uncompacted) log.
  uint64_t wal_records = 0;
  int64_t wal_bytes = 0;
  uint64_t snapshots_written = 0;
  uint64_t snapshot_failures = 0;
  /// Filled by Recover: records replayed from the WAL tail, and bytes of
  /// torn/corrupt tail discarded.
  uint64_t recovered_records = 0;
  int64_t recovered_bytes_dropped = 0;
  bool recovered_tail_dropped = false;
};

/// \brief Thread-safe store of named schema version chains.
///
/// Versions are 1-based and immutable once created; Get hands out
/// shared_ptr snapshots that stay valid regardless of later mutations.
class SchemaRepository {
 public:
  SchemaRepository() = default;
  SchemaRepository(const SchemaRepository&) = delete;
  SchemaRepository& operator=(const SchemaRepository&) = delete;
  /// Movable (for LoadFrom/Recover); the mutex itself is not moved. The
  /// source must not be in concurrent use.
  SchemaRepository(SchemaRepository&& other) noexcept {
    MutexLock lock(&other.mu_);
    schemas_ = std::move(other.schemas_);
    dur_ = std::move(other.dur_);
  }
  SchemaRepository& operator=(SchemaRepository&& other) noexcept {
    if (this != &other) {
      // Not deadlock-prone: move-assignment requires that neither side is
      // in concurrent use, so no other thread can hold these in the
      // opposite order.
      MutexLock lock(&mu_);
      MutexLock other_lock(&other.mu_);
      schemas_ = std::move(other.schemas_);
      dur_ = std::move(other.dur_);
    }
    return *this;
  }
  ~SchemaRepository();

  /// \brief Stores `schema` as the next version of `name` (version 1 for a
  /// new name). A re-registration starts a fresh lineage: no edit chain
  /// connects it to prior versions. Returns the new version number.
  ///
  /// On a durable repository the registration is WAL-logged (and fsync'd)
  /// before it is applied; schemas that do not round-trip through the
  /// native format are rejected with Unsupported rather than logged
  /// lossily.
  Result<int> Register(const std::string& name, Schema schema);

  /// \brief Loads `path` through the extension-dispatched importers and
  /// registers the result under `name`.
  Result<int> RegisterFile(const std::string& name, const std::string& path);

  /// \brief Parses `text` in `format` (root named `name` for SQL/DTD) and
  /// registers the result.
  Result<int> RegisterText(const std::string& name, SchemaFormat format,
                           const std::string& text);

  /// \brief Applies `edit` (its `side` field is ignored) to the latest
  /// version of `name`, storing the result as a new version whose lineage
  /// records the edit. Returns the new version number. WAL-logged before
  /// application on durable repositories.
  Result<int> ApplyEdit(const std::string& name, const SchemaEdit& edit);

  /// A pinned (version, schema) pair handed out by Resolve/Get.
  struct SchemaSnapshot {
    int version = 0;
    std::shared_ptr<const Schema> schema;
  };

  /// \brief Snapshot of `name` at `version`, with 0 resolved to the latest
  /// version atomically (callers that need the concrete version for cache
  /// keys must not LatestVersion-then-Get). The pointer is never
  /// invalidated by later repository activity.
  Result<SchemaSnapshot> Resolve(const std::string& name,
                                 int version = 0) const;

  /// \brief Schema-only variant of Resolve.
  Result<std::shared_ptr<const Schema>> Get(const std::string& name,
                                            int version = 0) const;

  /// Latest version number of `name`; 0 when absent.
  int LatestVersion(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// \brief The edits leading from `from_version` to `to_version` of
  /// `name`, in application order. nullopt when the two versions are not
  /// connected by a pure edit chain (re-registration in between, unknown
  /// versions, or from > to). Lineage survives SaveTo/LoadFrom and crash
  /// recovery.
  std::optional<std::vector<SchemaEdit>> EditChain(const std::string& name,
                                                   int from_version,
                                                   int to_version) const;

  /// \brief Writes every version of every schema into `dir`: one
  /// native-format file per version plus a "MANIFEST.jsonl" index carrying
  /// per-file CRC32 checksums and edit lineage. Atomic: the snapshot is
  /// assembled in a temp directory and renamed into place, so a crash
  /// mid-save never corrupts a previous good snapshot at `dir` (in the
  /// worst case the previous state survives at `dir + ".old"`).
  Status SaveTo(const std::string& dir) const;
  Status SaveTo(const std::string& dir, StorageEnv* env) const;

  /// \brief Loads a repository previously written by SaveTo, verifying
  /// checksums and restoring edit lineage. The result is not durable;
  /// use Recover to (re)open a WAL-backed repository.
  static Result<SchemaRepository> LoadFrom(const std::string& dir);
  static Result<SchemaRepository> LoadFrom(const std::string& dir,
                                           StorageEnv* env);

  /// \brief Opens (or creates) the durable repository rooted at `dir`:
  /// loads the latest valid snapshot, replays the WAL tail (a torn
  /// trailing record is dropped gracefully; corruption earlier in the log
  /// is an error), rebuilds edit lineage, and starts a fresh log segment
  /// for subsequent mutations.
  static Result<SchemaRepository> Recover(const std::string& dir,
                                          DurabilityOptions options = {});

  /// \brief Forces snapshot compaction now (clean-shutdown flush; also the
  /// SIGTERM path of cupid_server). No-op on non-durable repositories.
  Status ForceSnapshot();

  /// True when backed by a write-ahead log.
  bool durable() const;

  DurabilityStats durability_stats() const;

  /// \brief Called after every successful mutation (Register*/ApplyEdit)
  /// with the schema name and its new version, in mutation order — the
  /// subscription push path hangs off this (docs/SERVICE.md).
  ///
  /// The listener is invoked while the repository lock is held, which is
  /// what makes "in mutation order" true under concurrent mutators; in
  /// exchange it must be fast and must not call back into the repository
  /// (the SubscriptionBroker's listener only appends to its own queue and
  /// wakes its notifier thread). Not invoked for bootstrap loads
  /// (LoadFrom/Recover replay). One listener at a time; empty clears.
  void SetMutationListener(
      std::function<void(const std::string& name, int version)> listener);

 private:
  struct VersionEntry {
    std::shared_ptr<const Schema> schema;
    /// Version this one was derived from by `edits` (0 = lineage root).
    int parent_version = 0;
    std::vector<SchemaEdit> edits;
  };

  /// Durable-mode state; null for plain in-memory repositories.
  struct Durability {
    DurabilityOptions options;
    StorageEnv* env = nullptr;
    std::string dir;
    std::unique_ptr<WalWriter> wal;
    uint64_t applied_seq = 0;
    uint64_t snapshot_seq = 0;
    /// Live WAL bytes in segments older than the current writer (after a
    /// recovery that did not compact).
    int64_t carried_wal_bytes = 0;
    bool degraded = false;
    uint64_t snapshots_written = 0;
    uint64_t snapshot_failures = 0;
    uint64_t recovered_records = 0;
    int64_t recovered_bytes_dropped = 0;
    bool recovered_tail_dropped = false;
  };

  /// name -> versions; versions[i] is version i+1.
  using VersionMap = std::unordered_map<std::string, std::vector<VersionEntry>>;

  /// Registers under an already-held lock (shared by public mutators).
  int RegisterLocked(const std::string& name, Schema schema) REQUIRES(mu_);

  /// Rejects mutations on degraded durable repositories.
  Status CheckWritableLocked() const REQUIRES(mu_);
  /// Appends one record to the WAL (fsync per options); a failure flips
  /// the repository into degraded read-only mode.
  Status LogMutationLocked(const std::string& payload) REQUIRES(mu_);
  /// Snapshot + rotate when the live log passed a threshold; failures are
  /// counted but do not fail the triggering mutation (its record is
  /// already durable in the log).
  void MaybeCompactLocked() REQUIRES(mu_);
  Status WriteSnapshotLocked() REQUIRES(mu_);
  /// Writes the SaveTo layout into `dir` (no atomicity dance; callers
  /// rename). Assumes mu_ is held.
  Status SaveContentsLocked(const std::string& dir, StorageEnv* env) const
      REQUIRES(mu_);
  /// Loads a SaveTo layout from `dir` into `schemas` (a plain map, so the
  /// bootstrap paths need no repository lock; callers install the result
  /// under mu_).
  static Status LoadInto(const std::string& dir, StorageEnv* env,
                         VersionMap* schemas);
  /// Applies one WAL record during recovery.
  Status ApplyWalRecordLocked(const WalRecord& record) REQUIRES(mu_);

  /// Invokes the mutation listener (if any) under mu_.
  void NotifyMutationLocked(const std::string& name, int version)
      REQUIRES(mu_);

  mutable Mutex mu_;
  VersionMap schemas_ GUARDED_BY(mu_);
  std::unique_ptr<Durability> dur_ GUARDED_BY(mu_);
  /// Serving-process property, not data: move construction/assignment of
  /// the repository (LoadFrom/Recover swaps) leaves the destination's
  /// listener in place and never transfers the source's.
  std::function<void(const std::string&, int)> mutation_listener_
      GUARDED_BY(mu_);
};

}  // namespace cupid

#endif  // CUPID_SERVICE_SCHEMA_REPOSITORY_H_
