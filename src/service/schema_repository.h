// SchemaRepository — named, versioned, thread-safe schema storage.
//
// The serving half of the Section 8.4 story: schemas live in a repository,
// evolve a few elements at a time, and get re-matched after every change.
// Every mutation creates a new immutable version (an edit records its
// lineage, a re-registration starts a fresh line), so concurrent match
// requests always see a consistent snapshot and MatchService can replay the
// edit chain between two versions into a warm MatchSession instead of
// rematching from scratch.
//
// Persistence uses the native ".cupid" text format (which round-trips
// keys and referential constraints; tests/importers_test.cc asserts
// tree-identity for every importer format) plus a JSONL manifest.

#ifndef CUPID_SERVICE_SCHEMA_REPOSITORY_H_
#define CUPID_SERVICE_SCHEMA_REPOSITORY_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "importers/schema_io.h"
#include "incremental/schema_edit.h"
#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// \brief Thread-safe store of named schema version chains.
///
/// Versions are 1-based and immutable once created; Get hands out
/// shared_ptr snapshots that stay valid regardless of later mutations.
class SchemaRepository {
 public:
  SchemaRepository() = default;
  SchemaRepository(const SchemaRepository&) = delete;
  SchemaRepository& operator=(const SchemaRepository&) = delete;
  /// Movable (for LoadFrom); the mutex itself is not moved. The source must
  /// not be in concurrent use.
  SchemaRepository(SchemaRepository&& other) noexcept {
    std::lock_guard<std::mutex> lock(other.mu_);
    schemas_ = std::move(other.schemas_);
  }
  SchemaRepository& operator=(SchemaRepository&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lock(mu_, other.mu_);
      schemas_ = std::move(other.schemas_);
    }
    return *this;
  }

  /// \brief Stores `schema` as the next version of `name` (version 1 for a
  /// new name). A re-registration starts a fresh lineage: no edit chain
  /// connects it to prior versions. Returns the new version number.
  Result<int> Register(const std::string& name, Schema schema);

  /// \brief Loads `path` through the extension-dispatched importers and
  /// registers the result under `name`.
  Result<int> RegisterFile(const std::string& name, const std::string& path);

  /// \brief Parses `text` in `format` (root named `name` for SQL/DTD) and
  /// registers the result.
  Result<int> RegisterText(const std::string& name, SchemaFormat format,
                           const std::string& text);

  /// \brief Applies `edit` (its `side` field is ignored) to the latest
  /// version of `name`, storing the result as a new version whose lineage
  /// records the edit. Returns the new version number.
  Result<int> ApplyEdit(const std::string& name, const SchemaEdit& edit);

  /// A pinned (version, schema) pair handed out by Resolve/Get.
  struct SchemaSnapshot {
    int version = 0;
    std::shared_ptr<const Schema> schema;
  };

  /// \brief Snapshot of `name` at `version`, with 0 resolved to the latest
  /// version atomically (callers that need the concrete version for cache
  /// keys must not LatestVersion-then-Get). The pointer is never
  /// invalidated by later repository activity.
  Result<SchemaSnapshot> Resolve(const std::string& name,
                                 int version = 0) const;

  /// \brief Schema-only variant of Resolve.
  Result<std::shared_ptr<const Schema>> Get(const std::string& name,
                                            int version = 0) const;

  /// Latest version number of `name`; 0 when absent.
  int LatestVersion(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> Names() const;

  /// \brief The edits leading from `from_version` to `to_version` of
  /// `name`, in application order. nullopt when the two versions are not
  /// connected by a pure edit chain (re-registration in between, unknown
  /// versions, or from > to).
  std::optional<std::vector<SchemaEdit>> EditChain(const std::string& name,
                                                   int from_version,
                                                   int to_version) const;

  /// \brief Writes every version of every schema into `dir` (created if
  /// missing): one native-format file per version plus a "MANIFEST.jsonl"
  /// index. Edit lineage is not persisted — a reloaded repository serves
  /// full matches first and re-warms.
  Status SaveTo(const std::string& dir) const;

  /// \brief Loads a repository previously written by SaveTo.
  static Result<SchemaRepository> LoadFrom(const std::string& dir);

 private:
  struct VersionEntry {
    std::shared_ptr<const Schema> schema;
    /// Version this one was derived from by `edits` (0 = lineage root).
    int parent_version = 0;
    std::vector<SchemaEdit> edits;
  };

  /// Registers under an already-held lock (shared by public mutators).
  int RegisterLocked(const std::string& name, Schema schema);

  mutable std::mutex mu_;
  /// name -> versions; versions[i] is version i+1.
  std::unordered_map<std::string, std::vector<VersionEntry>> schemas_;
};

}  // namespace cupid

#endif  // CUPID_SERVICE_SCHEMA_REPOSITORY_H_
