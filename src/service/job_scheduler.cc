#include "service/job_scheduler.h"

#include "util/strings.h"

namespace cupid {

const Result<MatchResponse>& MatchJob::Wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return done_; });
  return result_;
}

bool MatchJob::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

void MatchJob::Finish(Result<MatchResponse> result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    result_ = std::move(result);
    done_ = true;
  }
  cv_.notify_all();
}

JobScheduler::JobScheduler(MatchService* service, Options options)
    : service_(service),
      options_(options),
      pool_(ThreadPool::EffectiveThreads(options.num_threads)) {
  if (options_.max_pending < 1) options_.max_pending = 1;
}

JobScheduler::~JobScheduler() { Shutdown(); }

void JobScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  pool_.Shutdown();  // drains the queue; every admitted job still finishes
}

int JobScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

Result<std::shared_ptr<MatchJob>> JobScheduler::SubmitTask(
    std::function<Result<MatchResponse>()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return Status::Unsupported("scheduler is shut down");
    if (pending_ >= options_.max_pending) {
      return Status::OutOfRange(
          StringFormat("job queue full (%d pending)", pending_));
    }
    ++pending_;
  }
  auto job = std::make_shared<MatchJob>();
  job->enqueued_ = MatchJob::Clock::now();
  bool accepted = pool_.Submit([this, job, task = std::move(task)] {
    MatchJob::Clock::time_point started = MatchJob::Clock::now();
    job->queue_ms_ =
        std::chrono::duration<double, std::milli>(started - job->enqueued_)
            .count();
    Result<MatchResponse> result = task();
    if (result.ok()) {
      result.ValueOrDie().timings.queue_ms = job->queue_ms_;
    }
    job->run_ms_ = std::chrono::duration<double, std::milli>(
                       MatchJob::Clock::now() - started)
                       .count();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    job->Finish(std::move(result));
  });
  if (!accepted) {
    // Raced with Shutdown: undo the admission.
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    return Status::Unsupported("scheduler is shut down");
  }
  return job;
}

Result<std::shared_ptr<MatchJob>> JobScheduler::Submit(MatchRequest request) {
  return SubmitTask([service = service_, request = std::move(request)] {
    return service->Match(request);
  });
}

std::vector<Result<MatchResponse>> JobScheduler::MatchBatch(
    std::vector<MatchRequest> requests) {
  std::vector<Result<std::shared_ptr<MatchJob>>> jobs;
  jobs.reserve(requests.size());
  for (MatchRequest& request : requests) {
    jobs.push_back(Submit(std::move(request)));
  }
  std::vector<Result<MatchResponse>> out;
  out.reserve(jobs.size());
  for (auto& job : jobs) {
    if (!job.ok()) {
      out.push_back(job.status());
    } else {
      out.push_back((*job)->Wait());
    }
  }
  return out;
}

}  // namespace cupid
