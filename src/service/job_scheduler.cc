#include "service/job_scheduler.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/strings.h"

namespace cupid {

Status JobScheduler::Options::Validate() const {
  if (num_threads < 0) {
    return Status::InvalidArgument(
        StringFormat("num_threads must be >= 0, got %d", num_threads));
  }
  if (max_pending <= 0) {
    return Status::InvalidArgument(StringFormat(
        "max_pending must be positive, got %d (a non-positive bound would "
        "reject every submission)",
        max_pending));
  }
  return Status::OK();
}

const Result<MatchResponse>& MatchJob::Wait() const {
  MutexLock lock(&mu_);
  while (!done_) cv_.Wait(&mu_);
  return result_;
}

bool MatchJob::done() const {
  MutexLock lock(&mu_);
  return done_;
}

double MatchJob::queue_ms() const {
  MutexLock lock(&mu_);
  return queue_ms_;
}

double MatchJob::run_ms() const {
  MutexLock lock(&mu_);
  return run_ms_;
}

void MatchJob::Finish(Result<MatchResponse> result, double queue_ms,
                      double run_ms) {
  {
    MutexLock lock(&mu_);
    result_ = std::move(result);
    queue_ms_ = queue_ms;
    run_ms_ = run_ms;
    done_ = true;
  }
  cv_.SignalAll();
}

JobScheduler::JobScheduler(MatchService* service, Options options)
    : service_(service),
      options_(options),
      pool_(ThreadPool::EffectiveThreads(std::max(options.num_threads, 0))) {
  obs::MetricsRegistry* reg = obs::MetricsRegistry::Default();
  queue_depth_ = reg->GetGauge("cupid.scheduler.queue_depth",
                               "Jobs admitted but not yet finished");
  jobs_submitted_ = reg->GetCounter("cupid.scheduler.jobs_submitted",
                                    "Jobs admitted to the scheduler");
  jobs_rejected_ = reg->GetCounter(
      "cupid.scheduler.jobs_rejected",
      "Submissions refused (queue full or shut down)");
  queue_ms_ = reg->GetHistogram("cupid.scheduler.queue_ms",
                                "Queue wait before a worker started, ms");
  run_ms_ = reg->GetHistogram("cupid.scheduler.run_ms",
                              "Job execution time on its worker, ms");
}

JobScheduler::~JobScheduler() { Shutdown(); }

void JobScheduler::Shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  pool_.Shutdown();  // drains the queue; every admitted job still finishes
}

int JobScheduler::pending() const {
  MutexLock lock(&mu_);
  return pending_;
}

Result<std::shared_ptr<MatchJob>> JobScheduler::SubmitTask(
    std::function<Result<MatchResponse>()> task) {
  Status valid = options_.Validate();
  if (!valid.ok()) {
    jobs_rejected_->Increment();
    return valid;
  }
  {
    MutexLock lock(&mu_);
    if (shutdown_) {
      jobs_rejected_->Increment();
      return Status::Unsupported("scheduler is shut down");
    }
    if (pending_ >= options_.max_pending) {
      jobs_rejected_->Increment();
      return Status::OutOfRange(
          StringFormat("job queue full (%d pending)", pending_));
    }
    ++pending_;
  }
  jobs_submitted_->Increment();
  queue_depth_->Add(1);
  auto job = std::make_shared<MatchJob>();
  job->enqueued_ = MatchJob::Clock::now();
  bool accepted = pool_.Submit([this, job, task = std::move(task)] {
    MatchJob::Clock::time_point started = MatchJob::Clock::now();
    double queue_ms =
        std::chrono::duration<double, std::milli>(started - job->enqueued_)
            .count();
    Result<MatchResponse> result = task();
    if (result.ok()) {
      result.ValueOrDie().timings.queue_ms = queue_ms;
    }
    double run_ms = std::chrono::duration<double, std::milli>(
                        MatchJob::Clock::now() - started)
                        .count();
    {
      MutexLock lock(&mu_);
      --pending_;
    }
    queue_depth_->Add(-1);
    queue_ms_->Observe(queue_ms);
    run_ms_->Observe(run_ms);
    job->Finish(std::move(result), queue_ms, run_ms);
  });
  if (!accepted) {
    // Raced with Shutdown: undo the admission.
    {
      MutexLock lock(&mu_);
      --pending_;
    }
    queue_depth_->Add(-1);
    return Status::Unsupported("scheduler is shut down");
  }
  return job;
}

Result<std::shared_ptr<MatchJob>> JobScheduler::Submit(MatchRequest request) {
  return SubmitTask([service = service_, request = std::move(request)] {
    return service->Match(request);
  });
}

std::vector<Result<MatchResponse>> JobScheduler::MatchBatch(
    std::vector<MatchRequest> requests) {
  std::vector<Result<std::shared_ptr<MatchJob>>> jobs;
  jobs.reserve(requests.size());
  for (MatchRequest& request : requests) {
    jobs.push_back(Submit(std::move(request)));
  }
  std::vector<Result<MatchResponse>> out;
  out.reserve(jobs.size());
  for (auto& job : jobs) {
    if (!job.ok()) {
      out.push_back(job.status());
    } else {
      out.push_back((*job)->Wait());
    }
  }
  return out;
}

}  // namespace cupid
