#include "service/schema_repository.h"

#include <algorithm>

#include "importers/native_format.h"
#include "obs/metrics.h"
#include "schema/schema_printer.h"
#include "storage/edit_codec.h"
#include "util/crc32.h"
#include "util/json.h"
#include "util/strings.h"

namespace cupid {

namespace {

/// Repository names become map keys, session-key components and on-disk
/// filenames; reject anything that could collide or traverse. Control
/// bytes cover the service's '\x1f' session-key separator (reachable via
/// JSONL unicode escapes), separators/dot-names cover SaveTo/LoadFrom
/// paths.
Status ValidateRepositoryName(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty schema name");
  if (name == "." || name == "..") {
    return Status::InvalidArgument("invalid schema name: " + name);
  }
  for (char c : name) {
    if (static_cast<unsigned char>(c) < 0x20 || c == '/' || c == '\\') {
      return Status::InvalidArgument(
          "schema name must not contain control characters or path "
          "separators: " +
          name);
    }
  }
  return Status::OK();
}

std::string WalFileName(uint64_t first_seq) {
  return StringFormat("wal-%020llu.log",
                      static_cast<unsigned long long>(first_seq));
}

std::string SnapshotDirName(uint64_t applied_seq) {
  return StringFormat("snapshot-%020llu",
                      static_cast<unsigned long long>(applied_seq));
}

/// Extracts the zero-padded sequence number from "wal-<seq>.log" /
/// "snapshot-<seq>" names; nullopt for anything else.
std::optional<uint64_t> ParseSeqFromName(std::string_view name,
                                         std::string_view prefix,
                                         std::string_view suffix) {
  if (!StartsWith(name, prefix) || !EndsWith(name, suffix)) {
    return std::nullopt;
  }
  std::string_view digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() || digits.size() > 20) return std::nullopt;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

std::string ParentDir(const std::string& path) {
  auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Writes `content` to `path` through `env`, fsync'd.
Status WriteFileSynced(StorageEnv* env, const std::string& path,
                       const std::string& content) {
  CUPID_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(path, /*truncate=*/true));
  CUPID_RETURN_NOT_OK(file->Append(content));
  CUPID_RETURN_NOT_OK(file->Sync());
  return file->Close();
}

constexpr const char* kManifestName = "MANIFEST.jsonl";
constexpr const char* kCurrentName = "CURRENT";

}  // namespace

SchemaRepository::~SchemaRepository() = default;

Result<int> SchemaRepository::Register(const std::string& name,
                                       Schema schema) {
  CUPID_RETURN_NOT_OK(ValidateRepositoryName(name));
  CUPID_RETURN_NOT_OK(schema.Validate());
  MutexLock lock(&mu_);
  CUPID_RETURN_NOT_OK(CheckWritableLocked());
  if (dur_ != nullptr) {
    // A durable registration is persisted in the native text format; a
    // schema the format cannot represent (e.g. view elements) would come
    // back different after recovery, breaking the bit-identical re-match
    // guarantee. Reject it up front instead of logging it lossily.
    std::string text = SerializeNativeSchema(schema);
    Result<Schema> reparsed = ParseNativeSchema(text);
    if (!reparsed.ok() || PrintSchema(schema) != PrintSchema(*reparsed)) {
      return Status::Unsupported(
          "schema '" + name +
          "' does not round-trip through the native format and cannot be "
          "stored durably" +
          (reparsed.ok() ? "" : ": " + reparsed.status().ToString()));
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("op");
    w.String("register");
    w.Key("name");
    w.String(name);
    w.Key("schema");
    w.String(text);
    w.EndObject();
    CUPID_RETURN_NOT_OK(LogMutationLocked(w.str()));
    int version = RegisterLocked(name, std::move(schema));
    MaybeCompactLocked();
    NotifyMutationLocked(name, version);
    return version;
  }
  int version = RegisterLocked(name, std::move(schema));
  NotifyMutationLocked(name, version);
  return version;
}

int SchemaRepository::RegisterLocked(const std::string& name, Schema schema) {
  std::vector<VersionEntry>& versions = schemas_[name];
  VersionEntry entry;
  entry.schema = std::make_shared<const Schema>(std::move(schema));
  entry.parent_version = 0;  // fresh lineage
  versions.push_back(std::move(entry));
  return static_cast<int>(versions.size());
}

Result<int> SchemaRepository::RegisterFile(const std::string& name,
                                           const std::string& path) {
  CUPID_ASSIGN_OR_RETURN(Schema schema, LoadSchemaFileAuto(path));
  return Register(name, std::move(schema));
}

Result<int> SchemaRepository::RegisterText(const std::string& name,
                                           SchemaFormat format,
                                           const std::string& text) {
  CUPID_ASSIGN_OR_RETURN(Schema schema, ParseSchemaText(format, name, text));
  return Register(name, std::move(schema));
}

Result<int> SchemaRepository::ApplyEdit(const std::string& name,
                                        const SchemaEdit& edit) {
  MutexLock lock(&mu_);
  CUPID_RETURN_NOT_OK(CheckWritableLocked());
  auto it = schemas_.find(name);
  if (it == schemas_.end() || it->second.empty()) {
    return Status::NotFound("no such schema: " + name);
  }
  // Copy-on-edit: versions are immutable, so mutate a private copy. The
  // edit is validated *before* it is logged — a rejected edit must never
  // reach the WAL (replay applies records unconditionally).
  Schema edited = *it->second.back().schema;
  CUPID_RETURN_NOT_OK(ApplySchemaEdit(&edited, edit));
  if (dur_ != nullptr) {
    JsonWriter w;
    w.BeginObject();
    w.Key("op");
    w.String("edit");
    w.Key("name");
    w.String(name);
    w.Key("edit");
    WriteSchemaEditJson(edit, &w);
    w.EndObject();
    CUPID_RETURN_NOT_OK(LogMutationLocked(w.str()));
  }
  VersionEntry entry;
  entry.schema = std::make_shared<const Schema>(std::move(edited));
  entry.parent_version = static_cast<int>(it->second.size());
  entry.edits.push_back(edit);
  it->second.push_back(std::move(entry));
  int version = static_cast<int>(it->second.size());
  MaybeCompactLocked();
  NotifyMutationLocked(name, version);
  return version;
}

void SchemaRepository::SetMutationListener(
    std::function<void(const std::string&, int)> listener) {
  MutexLock lock(&mu_);
  mutation_listener_ = std::move(listener);
}

void SchemaRepository::NotifyMutationLocked(const std::string& name,
                                            int version) {
  if (mutation_listener_) mutation_listener_(name, version);
}

Result<SchemaRepository::SchemaSnapshot> SchemaRepository::Resolve(
    const std::string& name, int version) const {
  MutexLock lock(&mu_);
  auto it = schemas_.find(name);
  if (it == schemas_.end() || it->second.empty()) {
    return Status::NotFound("no such schema: " + name);
  }
  int latest = static_cast<int>(it->second.size());
  int v = version == 0 ? latest : version;
  if (v < 1 || v > latest) {
    return Status::NotFound(StringFormat("%s has no version %d (latest %d)",
                                         name.c_str(), version, latest));
  }
  return SchemaSnapshot{v, it->second[static_cast<size_t>(v - 1)].schema};
}

Result<std::shared_ptr<const Schema>> SchemaRepository::Get(
    const std::string& name, int version) const {
  CUPID_ASSIGN_OR_RETURN(SchemaSnapshot snap, Resolve(name, version));
  return snap.schema;
}

int SchemaRepository::LatestVersion(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = schemas_.find(name);
  return it == schemas_.end() ? 0 : static_cast<int>(it->second.size());
}

std::vector<std::string> SchemaRepository::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(schemas_.size());
  for (const auto& [name, versions] : schemas_) {
    if (!versions.empty()) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::vector<SchemaEdit>> SchemaRepository::EditChain(
    const std::string& name, int from_version, int to_version) const {
  MutexLock lock(&mu_);
  auto it = schemas_.find(name);
  if (it == schemas_.end()) return std::nullopt;
  int latest = static_cast<int>(it->second.size());
  if (from_version < 1 || to_version < from_version || to_version > latest) {
    return std::nullopt;
  }
  std::vector<SchemaEdit> chain;
  // Walk backwards via parent links; every hop must be an edit derivation.
  int v = to_version;
  std::vector<const VersionEntry*> hops;
  while (v > from_version) {
    const VersionEntry& entry = it->second[static_cast<size_t>(v - 1)];
    if (entry.parent_version != v - 1) return std::nullopt;  // re-registered
    hops.push_back(&entry);
    v = entry.parent_version;
  }
  for (auto hop = hops.rbegin(); hop != hops.rend(); ++hop) {
    chain.insert(chain.end(), (*hop)->edits.begin(), (*hop)->edits.end());
  }
  return chain;
}

// ---------------------------------------------------------------------------
// Persistence: SaveTo / LoadFrom (snapshot format, also used by the WAL's
// compaction snapshots).

Status SchemaRepository::SaveContentsLocked(const std::string& dir,
                                            StorageEnv* env) const {
  CUPID_RETURN_NOT_OK(env->CreateDirs(dir));
  // Sorted for reproducible manifests.
  std::vector<std::string> names;
  for (const auto& [name, versions] : schemas_) names.push_back(name);
  std::sort(names.begin(), names.end());
  std::string manifest;
  for (const std::string& name : names) {
    const std::vector<VersionEntry>& versions = schemas_.at(name);
    for (size_t i = 0; i < versions.size(); ++i) {
      const VersionEntry& entry = versions[i];
      std::string file =
          StringFormat("%s@v%d.cupid", name.c_str(), static_cast<int>(i + 1));
      std::string content = SerializeNativeSchema(*entry.schema);
      CUPID_RETURN_NOT_OK(WriteFileSynced(env, dir + "/" + file, content));
      JsonWriter w;
      w.BeginObject();
      w.Key("name");
      w.String(name);
      w.Key("version");
      w.Int(static_cast<int64_t>(i + 1));
      w.Key("file");
      w.String(file);
      w.Key("crc");
      w.String(StringFormat("%08x", Crc32(content)));
      w.Key("parent");
      w.Int(entry.parent_version);
      w.Key("edits");
      w.BeginArray();
      for (const SchemaEdit& edit : entry.edits) WriteSchemaEditJson(edit, &w);
      w.EndArray();
      w.EndObject();
      manifest += w.str();
      manifest += '\n';
    }
  }
  CUPID_RETURN_NOT_OK(
      WriteFileSynced(env, dir + "/" + kManifestName, manifest));
  return env->SyncDir(dir);
}

Status SchemaRepository::SaveTo(const std::string& dir) const {
  return SaveTo(dir, DefaultStorageEnv());
}

Status SchemaRepository::SaveTo(const std::string& dir,
                                StorageEnv* env) const {
  // Assemble in a temp directory and rename into place: a crash mid-save
  // leaves either the old state at `dir`, or the old state at `dir`.old
  // with the new one complete at `dir` — never a half-written snapshot
  // under the published name.
  const std::string tmp = dir + ".tmp";
  const std::string old = dir + ".old";
  (void)env->RemoveAll(tmp);
  {
    MutexLock lock(&mu_);
    CUPID_RETURN_NOT_OK(SaveContentsLocked(tmp, env));
  }
  if (env->FileExists(dir)) {
    (void)env->RemoveAll(old);
    CUPID_RETURN_NOT_OK(env->RenameFile(dir, old));
  }
  CUPID_RETURN_NOT_OK(env->RenameFile(tmp, dir));
  CUPID_RETURN_NOT_OK(env->SyncDir(ParentDir(dir)));
  (void)env->RemoveAll(old);
  return Status::OK();
}

Status SchemaRepository::LoadInto(const std::string& dir, StorageEnv* env,
                                  VersionMap* schemas) {
  CUPID_ASSIGN_OR_RETURN(std::string manifest,
                         env->ReadFile(dir + "/" + kManifestName));
  int line_number = 0;
  size_t pos = 0;
  while (pos <= manifest.size()) {
    size_t eol = manifest.find('\n', pos);
    std::string line = manifest.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? manifest.size() + 1 : eol + 1;
    ++line_number;
    if (TrimWhitespace(line).empty()) continue;
    auto parsed = ParseJson(line);
    if (!parsed.ok()) {
      return Status::ParseError(
          StringFormat("manifest line %d: %s", line_number,
                       parsed.status().ToString().c_str()));
    }
    std::string name = parsed->GetString("name");
    int version = static_cast<int>(parsed->GetInt("version"));
    std::string file = parsed->GetString("file");
    if (name.empty() || version < 1 || file.empty()) {
      return Status::ParseError(StringFormat(
          "manifest line %d: need name/version/file", line_number));
    }
    CUPID_RETURN_NOT_OK(ValidateRepositoryName(name));
    // SaveTo only ever writes `name@vN.cupid` next to the manifest; any
    // other 'file' value is corruption (a flipped byte in the name field
    // would otherwise serve history under the wrong schema) or hostile
    // input (a traversing path).
    if (file != StringFormat("%s@v%d.cupid", name.c_str(), version)) {
      return Status::ParseError(StringFormat(
          "manifest line %d: file %s does not match %s@v%d", line_number,
          file.c_str(), name.c_str(), version));
    }
    CUPID_ASSIGN_OR_RETURN(std::string content,
                           env->ReadFile(dir + "/" + file));
    std::string crc = parsed->GetString("crc");
    if (!crc.empty() && crc != StringFormat("%08x", Crc32(content))) {
      return Status::ParseError(
          StringFormat("manifest line %d: checksum mismatch for %s",
                       line_number, file.c_str()));
    }
    auto schema = ParseNativeSchema(content);
    if (!schema.ok()) return schema.status();
    int parent = static_cast<int>(parsed->GetInt("parent", 0));
    if (parent != 0 && parent != version - 1) {
      return Status::ParseError(
          StringFormat("manifest line %d: %s@v%d has invalid parent %d",
                       line_number, name.c_str(), version, parent));
    }
    VersionEntry entry;
    entry.schema = std::make_shared<const Schema>(std::move(*schema));
    entry.parent_version = parent;
    if (const JsonValue* edits = parsed->Find("edits");
        edits != nullptr && edits->is_array()) {
      for (const JsonValue& e : edits->array) {
        auto edit = ParseSchemaEditJson(e);
        if (!edit.ok()) {
          return Status::ParseError(
              StringFormat("manifest line %d: %s", line_number,
                           edit.status().ToString().c_str()));
        }
        entry.edits.push_back(std::move(*edit));
      }
    }
    // Manifests are written in version order; appending reproduces it.
    std::vector<VersionEntry>& versions = (*schemas)[name];
    if (static_cast<int>(versions.size()) + 1 != version) {
      return Status::ParseError(StringFormat(
          "manifest line %d: %s versions out of order (expected %d, got %d)",
          line_number, name.c_str(), static_cast<int>(versions.size()) + 1,
          version));
    }
    versions.push_back(std::move(entry));
  }
  return Status::OK();
}

Result<SchemaRepository> SchemaRepository::LoadFrom(const std::string& dir) {
  return LoadFrom(dir, DefaultStorageEnv());
}

Result<SchemaRepository> SchemaRepository::LoadFrom(const std::string& dir,
                                                    StorageEnv* env) {
  VersionMap schemas;
  CUPID_RETURN_NOT_OK(LoadInto(dir, env, &schemas));
  SchemaRepository repo;
  {
    MutexLock lock(&repo.mu_);
    repo.schemas_ = std::move(schemas);
  }
  return repo;
}

// ---------------------------------------------------------------------------
// Durability: WAL write path, snapshot compaction, crash recovery.

Status SchemaRepository::CheckWritableLocked() const {
  if (dur_ != nullptr && dur_->degraded) {
    return Status::Unavailable(
        "schema repository is in degraded read-only mode after a log-write "
        "failure; reopen it with Recover to resume mutations");
  }
  return Status::OK();
}

Status SchemaRepository::LogMutationLocked(const std::string& payload) {
  Status logged =
      dur_->wal->Append(payload, dur_->options.sync_every_commit);
  if (!logged.ok()) {
    // The log file may now hold a torn frame; recovery tolerates that, but
    // this process must not acknowledge further mutations it cannot make
    // durable. Degrade to read-only instead of aborting.
    dur_->degraded = true;
    return Status::Unavailable("log write failed (" + logged.message() +
                               "); schema repository is now read-only");
  }
  ++dur_->applied_seq;
  return Status::OK();
}

void SchemaRepository::MaybeCompactLocked() {
  if (dur_ == nullptr || dur_->degraded) return;
  const DurabilityOptions& opts = dur_->options;
  uint64_t uncompacted = dur_->applied_seq - dur_->snapshot_seq;
  int64_t live_bytes = dur_->carried_wal_bytes + dur_->wal->bytes_written();
  bool want =
      (opts.snapshot_every_records > 0 &&
       uncompacted >= static_cast<uint64_t>(opts.snapshot_every_records)) ||
      (opts.snapshot_every_bytes > 0 && live_bytes >= opts.snapshot_every_bytes);
  if (!want) return;
  Status snap = WriteSnapshotLocked();
  // A failed compaction is not a failed mutation: the triggering record is
  // already durable in the log. Count it and retry at the next threshold.
  if (!snap.ok()) {
    ++dur_->snapshot_failures;
    obs::MetricsRegistry::Default()
        ->GetCounter("cupid.repo.snapshot_failures",
                     "Compactions that failed (retried at next threshold)")
        ->Increment();
  }
}

Status SchemaRepository::WriteSnapshotLocked() {
  Durability* d = dur_.get();
  if (d->applied_seq == d->snapshot_seq) return Status::OK();  // nothing new
  StorageEnv* env = d->env;
  const std::string snap_name = SnapshotDirName(d->applied_seq);
  const std::string snap_dir = d->dir + "/" + snap_name;
  const std::string tmp_dir = snap_dir + ".tmp";
  (void)env->RemoveAll(tmp_dir);
  CUPID_RETURN_NOT_OK(SaveContentsLocked(tmp_dir, env));
  // Rename is the commit point; CURRENT (also temp+rename) makes the new
  // snapshot authoritative for recovery.
  CUPID_RETURN_NOT_OK(env->RenameFile(tmp_dir, snap_dir));
  CUPID_RETURN_NOT_OK(env->SyncDir(d->dir));
  const std::string current_tmp = d->dir + "/" + kCurrentName + ".tmp";
  CUPID_RETURN_NOT_OK(WriteFileSynced(env, current_tmp, snap_name + "\n"));
  CUPID_RETURN_NOT_OK(
      env->RenameFile(current_tmp, d->dir + "/" + kCurrentName));
  CUPID_RETURN_NOT_OK(env->SyncDir(d->dir));
  // Rotate to a fresh log segment. On failure the old writer stays in
  // place — its records are all <= the published snapshot and recovery
  // skips them, so state remains consistent either way.
  const std::string old_wal = d->wal->path();
  const std::string new_wal = d->dir + "/" + WalFileName(d->applied_seq + 1);
  CUPID_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> writer,
                         WalWriter::Create(env, new_wal, d->applied_seq + 1));
  d->wal = std::move(writer);
  d->snapshot_seq = d->applied_seq;
  d->carried_wal_bytes = 0;
  ++d->snapshots_written;
  obs::MetricsRegistry::Default()
      ->GetCounter("cupid.repo.compactions",
                   "Snapshots written and WAL segments rotated")
      ->Increment();
  // Best-effort GC of segments and snapshots the new snapshot supersedes;
  // leftovers only cost disk and are skipped or re-collected on recovery.
  if (auto entries = env->ListDir(d->dir); entries.ok()) {
    for (const std::string& entry : *entries) {
      const std::string path = d->dir + "/" + entry;
      if (auto seq = ParseSeqFromName(entry, "wal-", ".log");
          seq.has_value() && *seq <= d->snapshot_seq && path != new_wal) {
        (void)env->RemoveFile(path);
      } else if (auto snap_seq = ParseSeqFromName(entry, "snapshot-", "");
                 snap_seq.has_value() && *snap_seq < d->snapshot_seq) {
        (void)env->RemoveAll(path);
      } else if (EndsWith(entry, ".tmp") && path != tmp_dir) {
        (void)env->RemoveAll(path);
      }
    }
  }
  return Status::OK();
}

Status SchemaRepository::ApplyWalRecordLocked(const WalRecord& record) {
  auto prefix = [&record](const std::string& detail) {
    return StringFormat("WAL record %llu: %s",
                        static_cast<unsigned long long>(record.seq),
                        detail.c_str());
  };
  auto parsed = ParseJson(record.payload);
  if (!parsed.ok()) {
    return Status::ParseError(prefix(parsed.status().ToString()));
  }
  std::string op = parsed->GetString("op");
  std::string name = parsed->GetString("name");
  CUPID_RETURN_NOT_OK(ValidateRepositoryName(name));
  if (op == "register") {
    auto schema = ParseNativeSchema(parsed->GetString("schema"));
    if (!schema.ok()) {
      return Status::ParseError(prefix(schema.status().ToString()));
    }
    RegisterLocked(name, std::move(*schema));
    return Status::OK();
  }
  if (op == "edit") {
    const JsonValue* edit_json = parsed->Find("edit");
    if (edit_json == nullptr) {
      return Status::ParseError(prefix("missing 'edit' payload"));
    }
    auto edit = ParseSchemaEditJson(*edit_json);
    if (!edit.ok()) {
      return Status::ParseError(prefix(edit.status().ToString()));
    }
    auto it = schemas_.find(name);
    if (it == schemas_.end() || it->second.empty()) {
      return Status::ParseError(prefix("edit of unknown schema " + name));
    }
    Schema edited = *it->second.back().schema;
    Status applied = ApplySchemaEdit(&edited, *edit);
    if (!applied.ok()) return Status::ParseError(prefix(applied.ToString()));
    VersionEntry entry;
    entry.schema = std::make_shared<const Schema>(std::move(edited));
    entry.parent_version = static_cast<int>(it->second.size());
    entry.edits.push_back(std::move(*edit));
    it->second.push_back(std::move(entry));
    return Status::OK();
  }
  return Status::ParseError(prefix("unknown op '" + op + "'"));
}

Result<SchemaRepository> SchemaRepository::Recover(const std::string& dir,
                                                   DurabilityOptions options) {
  StorageEnv* env = options.env != nullptr ? options.env : DefaultStorageEnv();
  CUPID_RETURN_NOT_OK(env->CreateDirs(dir));
  CUPID_ASSIGN_OR_RETURN(std::vector<std::string> entries, env->ListDir(dir));
  std::vector<std::pair<uint64_t, std::string>> snapshots;  // (seq, name)
  std::vector<std::pair<uint64_t, std::string>> wals;       // (first seq, name)
  std::vector<std::string> leftovers;
  for (const std::string& entry : entries) {
    if (EndsWith(entry, ".tmp")) {
      leftovers.push_back(entry);
    } else if (auto snap_seq = ParseSeqFromName(entry, "snapshot-", "")) {
      snapshots.emplace_back(*snap_seq, entry);
    } else if (auto wal_seq = ParseSeqFromName(entry, "wal-", ".log")) {
      wals.emplace_back(*wal_seq, entry);
    }
  }
  std::sort(snapshots.begin(), snapshots.end());
  std::sort(wals.begin(), wals.end());

  SchemaRepository repo;
  // The repository is private to this thread until returned, but its
  // members are lock-annotated, so recovery holds the (uncontended) lock;
  // released before the return statement's move construction relocks it.
  {
    MutexLock lock(&repo.mu_);
    repo.dur_ = std::make_unique<Durability>();
    Durability* d = repo.dur_.get();
    d->options = options;
    d->env = env;
    d->dir = dir;

    // Pick the snapshot: the CURRENT pointer first, then any other snapshot
    // newest-first. If snapshots exist but none loads, fail hard — silently
    // recovering from an older state would drop acknowledged mutations.
    std::string current_target;
    if (env->FileExists(dir + "/" + kCurrentName)) {
      if (auto current = env->ReadFile(dir + "/" + kCurrentName);
          current.ok()) {
        current_target = std::string(TrimWhitespace(*current));
      }
    }
    std::vector<std::pair<uint64_t, std::string>> candidates;
    if (!current_target.empty()) {
      if (auto seq = ParseSeqFromName(current_target, "snapshot-", "")) {
        candidates.emplace_back(*seq, current_target);
      }
    }
    for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
      if (it->second != current_target) candidates.push_back(*it);
    }
    bool loaded = false;
    Status last_error = Status::OK();
    for (const auto& [seq, name] : candidates) {
      VersionMap fresh;
      Status status = LoadInto(dir + "/" + name, env, &fresh);
      if (status.ok()) {
        repo.schemas_ = std::move(fresh);
        d->snapshot_seq = seq;
        loaded = true;
        break;
      }
      last_error = status;
    }
    if (!loaded && !snapshots.empty()) {
      return Status::IoError(StringFormat(
          "no loadable snapshot among %d candidates in %s (last error: %s); "
          "refusing to discard data",
          static_cast<int>(snapshots.size()), dir.c_str(),
          last_error.ToString().c_str()));
    }
    d->applied_seq = d->snapshot_seq;

    // Replay the log tail. Segments are contiguous by construction (each is
    // named after its first sequence number); a hole means lost segments.
    for (size_t i = 0; i < wals.size(); ++i) {
      const auto& [first_seq, name] = wals[i];
      if (first_seq > d->applied_seq + 1) {
        return Status::IoError(StringFormat(
            "WAL gap in %s: segment %s starts at record %llu but only %llu "
            "recovered",
            dir.c_str(), name.c_str(),
            static_cast<unsigned long long>(first_seq),
            static_cast<unsigned long long>(d->applied_seq)));
      }
      CUPID_ASSIGN_OR_RETURN(WalReadResult read,
                             ReadWal(env, dir + "/" + name, first_seq));
      for (const WalRecord& record : read.records) {
        if (record.seq <= d->applied_seq) continue;  // covered by the snapshot
        CUPID_RETURN_NOT_OK(repo.ApplyWalRecordLocked(record));
        ++d->applied_seq;
        ++d->recovered_records;
        if (record.seq > d->snapshot_seq) {
          d->carried_wal_bytes += static_cast<int64_t>(kWalFrameHeaderSize +
                                                       record.payload.size());
        }
      }
      if (read.tail_dropped) {
        d->recovered_bytes_dropped += read.bytes_dropped;
        d->recovered_tail_dropped = true;
        // A torn tail is only acceptable where a crash can produce one: in
        // the final segment, or where the next segment continues exactly at
        // the accepted boundary (rotation after an earlier torn append).
        if (i + 1 < wals.size() && wals[i + 1].first != d->applied_seq + 1) {
          return Status::IoError(
              "WAL corruption is not confined to the tail: " +
              read.drop_reason);
        }
      }
    }

    // Start a fresh segment for new mutations; the torn tail (if any) stays
    // behind in the old segment, which the next compaction garbage-collects.
    const std::string new_wal = dir + "/" + WalFileName(d->applied_seq + 1);
    CUPID_ASSIGN_OR_RETURN(
        d->wal, WalWriter::Create(env, new_wal, d->applied_seq + 1));
    CUPID_RETURN_NOT_OK(env->SyncDir(dir));
    obs::MetricsRegistry::Default()
        ->GetCounter("cupid.repo.recovered_records",
                     "WAL records replayed during recovery across opens")
        ->Add(static_cast<int64_t>(d->recovered_records));
  }
  for (const std::string& leftover : leftovers) {
    (void)env->RemoveAll(dir + "/" + leftover);
  }
  return repo;
}

Status SchemaRepository::ForceSnapshot() {
  MutexLock lock(&mu_);
  if (dur_ == nullptr) return Status::OK();
  return WriteSnapshotLocked();
}

bool SchemaRepository::durable() const {
  MutexLock lock(&mu_);
  return dur_ != nullptr;
}

DurabilityStats SchemaRepository::durability_stats() const {
  MutexLock lock(&mu_);
  DurabilityStats stats;
  if (dur_ == nullptr) return stats;
  stats.durable = true;
  stats.degraded = dur_->degraded;
  stats.applied_seq = dur_->applied_seq;
  stats.snapshot_seq = dur_->snapshot_seq;
  stats.wal_records = dur_->applied_seq - dur_->snapshot_seq;
  stats.wal_bytes = dur_->carried_wal_bytes + dur_->wal->bytes_written();
  stats.snapshots_written = dur_->snapshots_written;
  stats.snapshot_failures = dur_->snapshot_failures;
  stats.recovered_records = dur_->recovered_records;
  stats.recovered_bytes_dropped = dur_->recovered_bytes_dropped;
  stats.recovered_tail_dropped = dur_->recovered_tail_dropped;
  return stats;
}

}  // namespace cupid
