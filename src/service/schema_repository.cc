#include "service/schema_repository.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "importers/native_format.h"
#include "util/json.h"
#include "util/strings.h"

namespace cupid {

namespace fs = std::filesystem;

namespace {

/// Repository names become map keys, session-key components and on-disk
/// filenames; reject anything that could collide or traverse. Control
/// bytes cover the service's '\x1f' session-key separator (reachable via
/// JSONL unicode escapes), separators/dot-names cover SaveTo/LoadFrom
/// paths.
Status ValidateRepositoryName(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty schema name");
  if (name == "." || name == "..") {
    return Status::InvalidArgument("invalid schema name: " + name);
  }
  for (char c : name) {
    if (static_cast<unsigned char>(c) < 0x20 || c == '/' || c == '\\') {
      return Status::InvalidArgument(
          "schema name must not contain control characters or path "
          "separators: " +
          name);
    }
  }
  return Status::OK();
}

}  // namespace

Result<int> SchemaRepository::Register(const std::string& name,
                                       Schema schema) {
  CUPID_RETURN_NOT_OK(ValidateRepositoryName(name));
  CUPID_RETURN_NOT_OK(schema.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(name, std::move(schema));
}

int SchemaRepository::RegisterLocked(const std::string& name, Schema schema) {
  std::vector<VersionEntry>& versions = schemas_[name];
  VersionEntry entry;
  entry.schema = std::make_shared<const Schema>(std::move(schema));
  entry.parent_version = 0;  // fresh lineage
  versions.push_back(std::move(entry));
  return static_cast<int>(versions.size());
}

Result<int> SchemaRepository::RegisterFile(const std::string& name,
                                           const std::string& path) {
  CUPID_ASSIGN_OR_RETURN(Schema schema, LoadSchemaFileAuto(path));
  return Register(name, std::move(schema));
}

Result<int> SchemaRepository::RegisterText(const std::string& name,
                                           SchemaFormat format,
                                           const std::string& text) {
  CUPID_ASSIGN_OR_RETURN(Schema schema, ParseSchemaText(format, name, text));
  return Register(name, std::move(schema));
}

Result<int> SchemaRepository::ApplyEdit(const std::string& name,
                                        const SchemaEdit& edit) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = schemas_.find(name);
  if (it == schemas_.end() || it->second.empty()) {
    return Status::NotFound("no such schema: " + name);
  }
  // Copy-on-edit: versions are immutable, so mutate a private copy.
  Schema edited = *it->second.back().schema;
  CUPID_RETURN_NOT_OK(ApplySchemaEdit(&edited, edit));
  VersionEntry entry;
  entry.schema = std::make_shared<const Schema>(std::move(edited));
  entry.parent_version = static_cast<int>(it->second.size());
  entry.edits.push_back(edit);
  it->second.push_back(std::move(entry));
  return static_cast<int>(it->second.size());
}

Result<SchemaRepository::SchemaSnapshot> SchemaRepository::Resolve(
    const std::string& name, int version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = schemas_.find(name);
  if (it == schemas_.end() || it->second.empty()) {
    return Status::NotFound("no such schema: " + name);
  }
  int latest = static_cast<int>(it->second.size());
  int v = version == 0 ? latest : version;
  if (v < 1 || v > latest) {
    return Status::NotFound(StringFormat("%s has no version %d (latest %d)",
                                         name.c_str(), version, latest));
  }
  return SchemaSnapshot{v, it->second[static_cast<size_t>(v - 1)].schema};
}

Result<std::shared_ptr<const Schema>> SchemaRepository::Get(
    const std::string& name, int version) const {
  CUPID_ASSIGN_OR_RETURN(SchemaSnapshot snap, Resolve(name, version));
  return snap.schema;
}

int SchemaRepository::LatestVersion(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = schemas_.find(name);
  return it == schemas_.end() ? 0 : static_cast<int>(it->second.size());
}

std::vector<std::string> SchemaRepository::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(schemas_.size());
  for (const auto& [name, versions] : schemas_) {
    if (!versions.empty()) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::vector<SchemaEdit>> SchemaRepository::EditChain(
    const std::string& name, int from_version, int to_version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = schemas_.find(name);
  if (it == schemas_.end()) return std::nullopt;
  int latest = static_cast<int>(it->second.size());
  if (from_version < 1 || to_version < from_version || to_version > latest) {
    return std::nullopt;
  }
  std::vector<SchemaEdit> chain;
  // Walk backwards via parent links; every hop must be an edit derivation.
  int v = to_version;
  std::vector<const VersionEntry*> hops;
  while (v > from_version) {
    const VersionEntry& entry = it->second[static_cast<size_t>(v - 1)];
    if (entry.parent_version != v - 1) return std::nullopt;  // re-registered
    hops.push_back(&entry);
    v = entry.parent_version;
  }
  for (auto hop = hops.rbegin(); hop != hops.rend(); ++hop) {
    chain.insert(chain.end(), (*hop)->edits.begin(), (*hop)->edits.end());
  }
  return chain;
}

Status SchemaRepository::SaveTo(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create directory " + dir + ": " +
                           ec.message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream manifest(fs::path(dir) / "MANIFEST.jsonl");
  if (!manifest) return Status::IoError("cannot write manifest in " + dir);
  // Sorted for reproducible manifests.
  std::vector<std::string> names;
  for (const auto& [name, versions] : schemas_) names.push_back(name);
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::vector<VersionEntry>& versions = schemas_.at(name);
    for (size_t i = 0; i < versions.size(); ++i) {
      std::string file =
          StringFormat("%s@v%d.cupid", name.c_str(), static_cast<int>(i + 1));
      std::ofstream out(fs::path(dir) / file);
      if (!out) return Status::IoError("cannot write " + file);
      out << SerializeNativeSchema(*versions[i].schema);
      if (!out.flush()) return Status::IoError("short write to " + file);
      JsonWriter w;
      w.BeginObject();
      w.Key("name");
      w.String(name);
      w.Key("version");
      w.Int(static_cast<int64_t>(i + 1));
      w.Key("file");
      w.String(file);
      w.EndObject();
      manifest << w.str() << "\n";
    }
  }
  if (!manifest.flush()) return Status::IoError("short manifest write");
  return Status::OK();
}

Result<SchemaRepository> SchemaRepository::LoadFrom(const std::string& dir) {
  std::ifstream manifest(fs::path(dir) / "MANIFEST.jsonl");
  if (!manifest) {
    return Status::IoError("cannot open " + dir + "/MANIFEST.jsonl");
  }
  SchemaRepository repo;
  std::string line;
  int line_number = 0;
  while (std::getline(manifest, line)) {
    ++line_number;
    if (TrimWhitespace(line).empty()) continue;
    auto parsed = ParseJson(line);
    if (!parsed.ok()) {
      return Status::ParseError(StringFormat("manifest line %d: %s",
                                             line_number,
                                             parsed.status().ToString().c_str()));
    }
    std::string name = parsed->GetString("name");
    int version = static_cast<int>(parsed->GetInt("version"));
    std::string file = parsed->GetString("file");
    if (name.empty() || version < 1 || file.empty()) {
      return Status::ParseError(
          StringFormat("manifest line %d: need name/version/file", line_number));
    }
    CUPID_RETURN_NOT_OK(ValidateRepositoryName(name));
    // Manifests only ever reference flat files inside their own directory;
    // a traversing 'file' field is hostile input, not a SaveTo product.
    if (file.find('/') != std::string::npos ||
        file.find('\\') != std::string::npos) {
      return Status::ParseError(StringFormat(
          "manifest line %d: file must be a bare name: %s", line_number,
          file.c_str()));
    }
    auto schema = LoadNativeSchemaFile((fs::path(dir) / file).string());
    if (!schema.ok()) return schema.status();
    // Manifests are written in version order; appending reproduces it.
    int got = repo.RegisterLocked(name, std::move(*schema));
    if (got != version) {
      return Status::ParseError(StringFormat(
          "manifest line %d: %s versions out of order (expected %d, got %d)",
          line_number, name.c_str(), got, version));
    }
  }
  return repo;
}

}  // namespace cupid
