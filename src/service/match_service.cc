#include "service/match_service.h"

#include <chrono>

#include "core/cupid_matcher.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/strings.h"

namespace cupid {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void WriteMapping(const Mapping& mapping, JsonWriter* w) {
  w->BeginObject();
  w->Key("source_schema");
  w->String(mapping.source_schema);
  w->Key("target_schema");
  w->String(mapping.target_schema);
  w->Key("elements");
  w->BeginArray();
  for (const MappingElement& e : mapping.elements) {
    w->BeginObject();
    w->Key("source");
    w->String(e.source_path);
    w->Key("target");
    w->String(e.target_path);
    w->Key("wsim");
    w->FixedDouble(e.wsim, 6);
    w->Key("ssim");
    w->FixedDouble(e.ssim, 6);
    w->Key("lsim");
    w->FixedDouble(e.lsim, 6);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string MatchResponse::ToJson(bool include_mappings) const {
  JsonWriter w;
  w.BeginObject();
  w.Key("source");
  w.String(source);
  w.Key("source_version");
  w.Int(source_version);
  w.Key("target");
  w.String(target);
  w.Key("target_version");
  w.Int(target_version);
  w.Key("config_fingerprint");
  w.String(StringFormat("%016llx",
                        static_cast<unsigned long long>(config_fingerprint)));
  w.Key("result_cache_hit");
  w.Bool(result_cache_hit);
  w.Key("session_reused");
  w.Bool(session_reused);
  w.Key("incremental");
  w.Bool(incremental);
  w.Key("timings");
  w.BeginObject();
  w.Key("total_ms");
  w.FixedDouble(timings.total_ms, 3);
  w.Key("match_ms");
  w.FixedDouble(timings.match_ms, 3);
  w.Key("queue_ms");
  w.FixedDouble(timings.queue_ms, 3);
  w.EndObject();
  w.Key("stats");
  w.BeginObject();
  w.Key("pairs_reused");
  w.Int(stats.tree_match.pairs_reused);
  w.Key("link_tests");
  w.Int(stats.tree_match.link_tests);
  w.Key("lsim_cached_pairs");
  w.Int(stats.lsim_cached_pairs);
  w.EndObject();
  if (include_mappings) {
    w.Key("leaf_mapping");
    WriteMapping(leaf_mapping, &w);
    w.Key("nonleaf_mapping");
    WriteMapping(nonleaf_mapping, &w);
  } else {
    w.Key("leaf_elements");
    w.Int(static_cast<int64_t>(leaf_mapping.size()));
    w.Key("nonleaf_elements");
    w.Int(static_cast<int64_t>(nonleaf_mapping.size()));
  }
  w.EndObject();
  return std::move(w).str();
}

size_t MatchService::ResultKeyHash::operator()(const ResultKey& k) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(std::hash<std::string>{}(k.source));
  mix(static_cast<uint64_t>(k.source_version));
  mix(std::hash<std::string>{}(k.target));
  mix(static_cast<uint64_t>(k.target_version));
  mix(k.config_fingerprint);
  return static_cast<size_t>(h);
}

Status MatchService::Options::Validate() const {
  if (result_cache_capacity < 0) {
    return Status::InvalidArgument("result_cache_capacity must be >= 0");
  }
  if (session_capacity < 0) {
    return Status::InvalidArgument("session_capacity must be >= 0");
  }
  return Status::OK();
}

MatchService::MatchService(const Thesaurus* thesaurus,
                           SchemaRepository* repository, Options options)
    : thesaurus_(thesaurus), repository_(repository), options_(options) {
  obs::MetricsRegistry* reg = options_.metrics != nullptr
                                  ? options_.metrics
                                  : obs::MetricsRegistry::Default();
  result_hits_ = reg->GetCounter("cupid.service.result_cache.hits",
                                 "Requests served from the result LRU");
  result_misses_ = reg->GetCounter("cupid.service.result_cache.misses",
                                   "Result-LRU lookups that missed");
  result_evictions_ = reg->GetCounter("cupid.service.result_cache.evictions",
                                      "Responses dropped by the result LRU");
  sessions_created_ = reg->GetCounter("cupid.service.sessions.created",
                                      "Cold pair sessions built");
  sessions_reused_ = reg->GetCounter(
      "cupid.service.sessions.reused",
      "Requests served on a surviving warm pair session");
  sessions_evicted_ = reg->GetCounter("cupid.service.sessions.evicted",
                                      "Warm pair sessions dropped by the LRU");
  incremental_rematches_ = reg->GetCounter(
      "cupid.service.rematch.incremental",
      "Rematches that took the incremental warm-start path");
  request_ms_ = reg->GetHistogram("cupid.service.request_ms",
                                  "End-to-end Match() latency, ms");
  baseline_ = CacheStats{result_hits_->value(),
                         result_misses_->value(),
                         result_evictions_->value(),
                         sessions_created_->value(),
                         sessions_reused_->value(),
                         sessions_evicted_->value(),
                         incremental_rematches_->value()};
}

std::shared_ptr<const MatchResponse> MatchService::CacheLookup(
    const ResultKey& key) {
  MutexLock lock(&cache_mu_);
  auto it = result_cache_.find(key);
  if (it == result_cache_.end()) {
    result_misses_->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  result_hits_->Increment();
  return it->second->second;
}

void MatchService::CacheInsert(const ResultKey& key,
                               std::shared_ptr<const MatchResponse> response) {
  MutexLock lock(&cache_mu_);
  auto it = result_cache_.find(key);
  if (it != result_cache_.end()) {
    it->second->second = std::move(response);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(response));
  result_cache_[key] = lru_.begin();
  while (result_cache_.size() >
         static_cast<size_t>(options_.result_cache_capacity)) {
    result_cache_.erase(lru_.back().first);
    lru_.pop_back();
    result_evictions_->Increment();
  }
}

Result<MatchResponse> MatchService::Match(const MatchRequest& request) {
  // Per-request trace state: inner spans (session.rematch, lsim.gather,
  // treematch.*) pick this up from the thread-local and stamp "match" as
  // their label.
  obs::TraceContext trace_ctx("match");
  obs::ScopedTraceContext scoped_ctx(&trace_ctx);
  obs::ScopedSpan span("service.match");

  Clock::time_point t_start = Clock::now();
  CUPID_RETURN_NOT_OK(options_.Validate());
  CUPID_RETURN_NOT_OK(request.config.Validate());
  CUPID_ASSIGN_OR_RETURN(SchemaRepository::SchemaSnapshot source,
                         repository_->Resolve(request.source,
                                              request.source_version));
  CUPID_ASSIGN_OR_RETURN(SchemaRepository::SchemaSnapshot target,
                         repository_->Resolve(request.target,
                                              request.target_version));
  uint64_t fingerprint = ConfigFingerprint(request.config);
  ResultKey key{request.source, source.version, request.target,
                target.version, fingerprint};

  bool cacheable =
      request.use_result_cache && options_.result_cache_capacity > 0;
  if (cacheable) {
    if (std::shared_ptr<const MatchResponse> hit = CacheLookup(key)) {
      MatchResponse response = *hit;  // value copy; the cached one is shared
      response.result_cache_hit = true;
      response.session_reused = false;
      response.incremental = false;
      response.stats = RematchStats{};
      response.timings = ServiceTimings{};
      response.timings.total_ms = MsSince(t_start);
      request_ms_->Observe(response.timings.total_ms);
      span.Attr("cache_hit", 1);
      return response;
    }
  }

  MatchResponse response;
  response.source = request.source;
  response.target = request.target;
  response.source_version = source.version;
  response.target_version = target.version;
  response.config_fingerprint = fingerprint;

  if (!request.use_session) {
    // One-shot path: no state kept beyond the response.
    CupidMatcher matcher(thesaurus_, request.config);
    Clock::time_point t_match = Clock::now();
    CUPID_ASSIGN_OR_RETURN(MatchResult result,
                           matcher.Match(*source.schema, *target.schema));
    response.timings.match_ms = MsSince(t_match);
    response.leaf_mapping = std::move(result.leaf_mapping);
    response.nonleaf_mapping = std::move(result.nonleaf_mapping);
  } else {
    std::shared_ptr<PairEntry> entry;
    {
      MutexLock lock(&sessions_mu_);
      // \x1f cannot appear in schema names read from files or protocols.
      std::string pair_key =
          request.source + '\x1f' + request.target + '\x1f' +
          StringFormat("%016llx", static_cast<unsigned long long>(fingerprint));
      auto it = sessions_.find(pair_key);
      if (it != sessions_.end()) {
        // Touch: most recently used pair moves to the front.
        session_lru_.splice(session_lru_.begin(), session_lru_, it->second);
      } else {
        session_lru_.emplace_front(pair_key, std::make_shared<PairEntry>());
        sessions_[pair_key] = session_lru_.begin();
        if (options_.session_capacity > 0 &&
            static_cast<int>(session_lru_.size()) >
                options_.session_capacity) {
          // Drop the idlest pair. In-flight holders of the shared_ptr
          // finish on the detached entry; the next request for that pair
          // warms a fresh session (bit-identical results, cold cost once).
          sessions_.erase(session_lru_.back().first);
          session_lru_.pop_back();
          sessions_evicted_->Increment();
        }
      }
      entry = session_lru_.front().second;
    }
    PairEntry* e = entry.get();
    MutexLock lock(&e->mu);
    CUPID_RETURN_NOT_OK(
        MatchOnSession(request, e, source.schema, target.schema, &response));
  }

  response.timings.total_ms = MsSince(t_start);
  request_ms_->Observe(response.timings.total_ms);
  span.Attr("cache_hit", 0);
  span.Attr("session_reused", response.session_reused ? 1 : 0);
  span.Attr("incremental", response.incremental ? 1 : 0);
  span.Attr("match_ms", response.timings.match_ms);
  if (cacheable) {
    CacheInsert(key, std::make_shared<const MatchResponse>(response));
  }
  return response;
}

Status MatchService::MatchOnSession(const MatchRequest& request,
                                    PairEntry* entry,
                                    std::shared_ptr<const Schema> source,
                                    std::shared_ptr<const Schema> target,
                                    MatchResponse* response) {
  const int source_version = response->source_version;
  const int target_version = response->target_version;
  bool reused;
  if (entry->session != nullptr &&
      (entry->source_version != source_version ||
       entry->target_version != target_version)) {
    // The repository moved under the session. If both sides moved by pure
    // edit chains, replay them so Rematch can warm-start; anything else
    // (re-registration, version rollback) rebuilds cold.
    auto source_chain = repository_->EditChain(
        request.source, entry->source_version, source_version);
    auto target_chain = repository_->EditChain(
        request.target, entry->target_version, target_version);
    if (source_chain.has_value() && target_chain.has_value()) {
      bool applied = true;
      for (SchemaEdit edit : *source_chain) {
        edit.side = EditSide::kSource;
        if (!entry->session->ApplyEdit(edit).ok()) {
          applied = false;
          break;
        }
      }
      if (applied) {
        for (SchemaEdit edit : *target_chain) {
          edit.side = EditSide::kTarget;
          if (!entry->session->ApplyEdit(edit).ok()) {
            applied = false;
            break;
          }
        }
      }
      if (!applied) {
        // A partially applied chain leaves the session diverged from the
        // repository; discard it rather than serve from unknown state.
        entry->session.reset();
      }
    } else {
      entry->session.reset();
    }
  }
  // Surviving session == warm reuse (same versions, or chain replayed).
  reused = entry->session != nullptr;

  if (entry->session == nullptr) {
    entry->session = std::make_unique<MatchSession>(
        thesaurus_, *source, *target, request.config);
    sessions_created_->Increment();
  } else {
    sessions_reused_->Increment();
  }

  Clock::time_point t_match = Clock::now();
  auto rematch = entry->session->Rematch();
  if (!rematch.ok()) {
    // Do not leave a session that failed mid-update warm.
    entry->session.reset();
    entry->source_version = entry->target_version = 0;
    return rematch.status();
  }
  response->timings.match_ms = MsSince(t_match);
  entry->source_version = source_version;
  entry->target_version = target_version;

  const MatchResult* result = *rematch;
  response->leaf_mapping = result->leaf_mapping;
  response->nonleaf_mapping = result->nonleaf_mapping;
  response->session_reused = reused;
  response->stats = entry->session->last_stats();
  response->incremental = response->stats.incremental;
  if (response->incremental) incremental_rematches_->Increment();
  return Status::OK();
}

void MatchService::InvalidateAll() {
  // Lock order matches Match(): cache_mu_ and sessions_mu_ never nest.
  {
    MutexLock lock(&cache_mu_);
    lru_.clear();
    result_cache_.clear();
  }
  MutexLock lock(&sessions_mu_);
  // In-flight requests holding a PairEntry shared_ptr finish safely on the
  // detached entry; new requests build fresh ones.
  sessions_.clear();
  session_lru_.clear();
}

MatchService::CacheStats MatchService::cache_stats() const {
  return CacheStats{
      result_hits_->value() - baseline_.result_hits,
      result_misses_->value() - baseline_.result_misses,
      result_evictions_->value() - baseline_.result_evictions,
      sessions_created_->value() - baseline_.sessions_created,
      sessions_reused_->value() - baseline_.sessions_reused,
      sessions_evicted_->value() - baseline_.sessions_evicted,
      incremental_rematches_->value() - baseline_.incremental_rematches};
}

}  // namespace cupid
