// The expanded schema tree (Sections 8.2-8.3 of the paper).
//
// Structure matching runs on a per-context expansion of the schema graph:
// every path of containment/IsDerivedFrom relationships from the root to an
// element materializes one *tree node*, so a shared type referenced from two
// places appears twice, enabling context-dependent mappings.
//
// Join-view augmentation (Section 8.3) adds nodes whose children are the
// *shared* column nodes of the joined tables, which turns the structure into
// a DAG — the paper calls this out explicitly ("The additional join view
// nodes create a directed acyclic graph (DAG) of schema paths"). Nodes
// therefore may have multiple parents; `parent` stores the primary
// (containment) parent used for path names.

#ifndef CUPID_TREE_SCHEMA_TREE_H_
#define CUPID_TREE_SCHEMA_TREE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "schema/schema.h"
#include "util/status.h"

namespace cupid {

/// Index of a node within its SchemaTree.
using TreeNodeId = int32_t;

inline constexpr TreeNodeId kNoTreeNode = -1;

/// A leaf reachable from some node, with its optionality *relative to that
/// node*: optional iff every path from the node to the leaf passes through
/// at least one optional node (Section 8.4 "Optionality").
struct LeafRef {
  TreeNodeId leaf;
  bool optional;

  bool operator==(const LeafRef& o) const {
    return leaf == o.leaf && optional == o.optional;
  }
};

/// One node of the expanded schema tree/DAG.
struct TreeNode {
  /// Element of the underlying schema this node materializes; kNoElement for
  /// synthesized nodes (join views have their RefInt element as source).
  ElementId source = kNoElement;
  /// Primary (containment) parent; kNoTreeNode for the root.
  TreeNodeId parent = kNoTreeNode;
  std::vector<TreeNodeId> children;
  /// Node itself is optional in its context.
  bool optional = false;
  /// Synthesized join-view node (Section 8.3) or view node (Section 8.4).
  bool is_join_view = false;
};

/// \brief Expanded schema tree with cached leaf sets and traversal orders.
///
/// Built by BuildSchemaTree (tree/tree_builder.h); immutable afterwards.
class SchemaTree {
 public:
  SchemaTree(const Schema* schema) : schema_(schema) {}  // NOLINT

  const Schema& schema() const { return *schema_; }

  TreeNodeId root() const { return 0; }
  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  const TreeNode& node(TreeNodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  TreeNode* mutable_node(TreeNodeId id) {
    return &nodes_[static_cast<size_t>(id)];
  }

  bool IsLeaf(TreeNodeId id) const { return node(id).children.empty(); }

  /// Leaves of the subtree rooted at `id` (id itself when a leaf), with
  /// per-leaf optionality relative to `id`. Deduplicated (DAG-safe).
  const std::vector<LeafRef>& leaves(TreeNodeId id) const {
    return leaves_[static_cast<size_t>(id)];
  }

  /// \brief Inverse-topological enumeration of all nodes: every node appears
  /// after all of its children. Equals post-order for pure trees.
  const std::vector<TreeNodeId>& post_order() const { return post_order_; }

  /// Tree nodes materializing schema element `e` (one per context).
  const std::vector<TreeNodeId>& nodes_for_element(ElementId e) const {
    return element_nodes_[static_cast<size_t>(e)];
  }

  /// Dotted context path, e.g. "PurchaseOrder.DeliverTo.Address.Street".
  std::string PathName(TreeNodeId id) const;

  /// \brief Node whose dotted context path equals `path`; kNoTreeNode when
  /// absent. Hashed lookup over the index built by Finalize. When the DAG
  /// yields duplicate paths the lowest node id wins (the answer a linear
  /// scan in id order would give).
  TreeNodeId FindNodeByPath(const std::string& path) const {
    auto it = path_index_.find(path);
    return it == path_index_.end() ? kNoTreeNode : it->second;
  }

  /// Source element name of `id` (join views use their RefInt name).
  const std::string& NodeName(TreeNodeId id) const {
    return schema_->element(node(id).source).name;
  }

  /// Depth of `id` along primary parents (root = 0).
  int Depth(TreeNodeId id) const;

  // -- Construction interface (used by tree_builder / join_view) ------------

  /// Appends a node; links it under `parent` (primary). Returns its id.
  TreeNodeId AddNode(ElementId source, TreeNodeId parent, bool optional);

  /// Adds `child` as an additional (non-primary) child of `parent`; used by
  /// join-view augmentation, creating the DAG.
  void AddSharedChild(TreeNodeId parent, TreeNodeId child);

  /// \brief Recomputes leaves_, post_order_ and element_nodes_. Must be
  /// called after all nodes/edges are added. Fails on malformed structure.
  Status Finalize();

 private:
  const Schema* schema_;
  std::vector<TreeNode> nodes_;
  std::vector<std::vector<LeafRef>> leaves_;
  std::vector<TreeNodeId> post_order_;
  std::vector<std::vector<TreeNodeId>> element_nodes_;
  std::unordered_map<std::string, TreeNodeId> path_index_;
};

}  // namespace cupid

#endif  // CUPID_TREE_SCHEMA_TREE_H_
