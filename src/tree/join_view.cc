#include "tree/join_view.h"

#include <unordered_set>

namespace cupid {

namespace {

/// Nearest common ancestor along primary parents; falls back to the root.
TreeNodeId CommonAncestor(const SchemaTree& tree, TreeNodeId a, TreeNodeId b) {
  std::unordered_set<TreeNodeId> ancestors;
  for (TreeNodeId cur = a; cur != kNoTreeNode; cur = tree.node(cur).parent) {
    ancestors.insert(cur);
  }
  for (TreeNodeId cur = b; cur != kNoTreeNode; cur = tree.node(cur).parent) {
    if (ancestors.count(cur)) return cur;
  }
  return tree.root();
}

/// First materialized tree node of `element`, or kNoTreeNode.
TreeNodeId FirstNodeOf(const SchemaTree& tree, ElementId element) {
  const auto& nodes = tree.nodes_for_element(element);
  return nodes.empty() ? kNoTreeNode : nodes[0];
}

}  // namespace

Result<int> AugmentWithJoinViews(SchemaTree* tree) {
  const Schema& schema = tree->schema();
  int added = 0;
  for (ElementId fk : schema.ElementsOfKind(ElementKind::kRefInt)) {
    ElementId source_table = schema.parent(fk);
    if (source_table == kNoElement) continue;

    // The RefInt references either the target table's key or the table.
    if (schema.references(fk).empty()) {
      return Status::Internal("RefInt '" + schema.element(fk).name +
                              "' references nothing");
    }
    ElementId target = schema.references(fk)[0];
    ElementId target_table = schema.element(target).kind == ElementKind::kKey
                                 ? schema.parent(target)
                                 : target;
    if (target_table == kNoElement) continue;

    TreeNodeId src_node = FirstNodeOf(*tree, source_table);
    TreeNodeId tgt_node = FirstNodeOf(*tree, target_table);
    if (src_node == kNoTreeNode || tgt_node == kNoTreeNode) continue;

    TreeNodeId parent = CommonAncestor(*tree, src_node, tgt_node);
    TreeNodeId join = tree->AddNode(fk, parent, /*optional=*/false);
    tree->mutable_node(join)->is_join_view = true;
    // Children: the columns of both tables, shared with the table nodes.
    for (TreeNodeId child : tree->node(src_node).children) {
      tree->AddSharedChild(join, child);
    }
    for (TreeNodeId child : tree->node(tgt_node).children) {
      tree->AddSharedChild(join, child);
    }
    ++added;
  }
  return added;
}

Result<int> AugmentWithViewNodes(SchemaTree* tree) {
  const Schema& schema = tree->schema();
  int added = 0;
  for (ElementId view : schema.ElementsOfKind(ElementKind::kView)) {
    TreeNodeId view_node = FirstNodeOf(*tree, view);
    if (view_node == kNoTreeNode) continue;
    if (!tree->node(view_node).children.empty()) continue;  // already done
    for (ElementId member : schema.aggregates(view)) {
      TreeNodeId member_node = FirstNodeOf(*tree, member);
      if (member_node != kNoTreeNode) {
        tree->AddSharedChild(view_node, member_node);
      }
    }
    tree->mutable_node(view_node)->is_join_view = true;
    ++added;
  }
  return added;
}

}  // namespace cupid
