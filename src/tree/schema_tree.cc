#include "tree/schema_tree.h"

#include <algorithm>
#include <unordered_map>

namespace cupid {

TreeNodeId SchemaTree::AddNode(ElementId source, TreeNodeId parent,
                               bool optional) {
  TreeNodeId id = static_cast<TreeNodeId>(nodes_.size());
  TreeNode n;
  n.source = source;
  n.parent = parent;
  n.optional = optional;
  nodes_.push_back(std::move(n));
  if (parent != kNoTreeNode) {
    nodes_[static_cast<size_t>(parent)].children.push_back(id);
  }
  return id;
}

void SchemaTree::AddSharedChild(TreeNodeId parent, TreeNodeId child) {
  nodes_[static_cast<size_t>(parent)].children.push_back(child);
}

std::string SchemaTree::PathName(TreeNodeId id) const {
  std::vector<TreeNodeId> chain;
  for (TreeNodeId cur = id; cur != kNoTreeNode;
       cur = nodes_[static_cast<size_t>(cur)].parent) {
    chain.push_back(cur);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += '.';
    out += NodeName(*it);
  }
  return out;
}

int SchemaTree::Depth(TreeNodeId id) const {
  int d = 0;
  for (TreeNodeId cur = node(id).parent; cur != kNoTreeNode;
       cur = node(cur).parent) {
    ++d;
  }
  return d;
}

Status SchemaTree::Finalize() {
  const size_t n = nodes_.size();
  if (n == 0) return Status::Internal("schema tree has no nodes");

  // Inverse-topological order over child edges (DFS post-order with visited
  // marks; children may be shared). color: 0 unvisited, 1 on stack, 2 done.
  post_order_.clear();
  post_order_.reserve(n);
  std::vector<uint8_t> color(n, 0);
  // Iterative DFS from every node to also cover disconnected nodes (none
  // expected, but cheap to be safe).
  std::vector<std::pair<TreeNodeId, size_t>> stack;
  for (TreeNodeId start = 0; start < static_cast<TreeNodeId>(n); ++start) {
    if (color[static_cast<size_t>(start)] != 0) continue;
    stack.emplace_back(start, 0);
    color[static_cast<size_t>(start)] = 1;
    while (!stack.empty()) {
      auto& [cur, next_child] = stack.back();
      const auto& kids = nodes_[static_cast<size_t>(cur)].children;
      if (next_child < kids.size()) {
        TreeNodeId c = kids[next_child++];
        if (color[static_cast<size_t>(c)] == 1) {
          return Status::CycleDetected("schema tree contains a cycle at '" +
                                       NodeName(c) + "'");
        }
        if (color[static_cast<size_t>(c)] == 0) {
          color[static_cast<size_t>(c)] = 1;
          stack.emplace_back(c, 0);
        }
      } else {
        color[static_cast<size_t>(cur)] = 2;
        post_order_.push_back(cur);
        stack.pop_back();
      }
    }
  }

  // Leaf sets with relative optionality, bottom-up over post_order_.
  // A leaf l is optional relative to node v iff every path v->l passes an
  // optional node below v; merging over children:
  //   opt_v(l) = AND over children c reaching l of (c.optional || opt_c(l)).
  leaves_.assign(n, {});
  for (TreeNodeId v : post_order_) {
    auto& out = leaves_[static_cast<size_t>(v)];
    const TreeNode& nv = nodes_[static_cast<size_t>(v)];
    if (nv.children.empty()) {
      out.push_back({v, false});
      continue;
    }
    // Concatenate the children's (sorted) leaf lists, sort, and fold runs
    // of the same leaf with AND — the same merge a leaf->optional map
    // would produce, without a hash table per node. Duplicates only exist
    // under shared children (join views / type sharing).
    for (TreeNodeId c : nv.children) {
      bool child_opt = nodes_[static_cast<size_t>(c)].optional;
      for (const LeafRef& lr : leaves_[static_cast<size_t>(c)]) {
        out.push_back({lr.leaf, child_opt || lr.optional});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const LeafRef& a, const LeafRef& b) { return a.leaf < b.leaf; });
    size_t w = 0;
    for (size_t r = 0; r < out.size();) {
      LeafRef folded = out[r];
      for (++r; r < out.size() && out[r].leaf == folded.leaf; ++r) {
        folded.optional = folded.optional && out[r].optional;
      }
      out[w++] = folded;
    }
    out.resize(w);
  }

  // Element -> nodes index.
  element_nodes_.assign(static_cast<size_t>(schema_->num_elements()), {});
  for (size_t i = 0; i < n; ++i) {
    ElementId e = nodes_[i].source;
    if (e != kNoElement) {
      element_nodes_[static_cast<size_t>(e)].push_back(
          static_cast<TreeNodeId>(i));
    }
  }

  // Path -> node index; first (lowest-id) node wins on duplicate paths.
  // Paths are built top-down reusing the parent's string (parents have
  // lower ids than their primary children in AddNode order) — the same
  // strings PathName produces, in O(total path length).
  path_index_.clear();
  path_index_.reserve(n);
  {
    std::vector<std::string> paths(n);
    for (size_t i = 0; i < n; ++i) {
      TreeNodeId p = nodes_[i].parent;
      if (p == kNoTreeNode) {
        paths[i] = NodeName(static_cast<TreeNodeId>(i));
      } else if (static_cast<size_t>(p) < i) {
        paths[i] = paths[static_cast<size_t>(p)];
        paths[i] += '.';
        paths[i] += NodeName(static_cast<TreeNodeId>(i));
      } else {
        paths[i] = PathName(static_cast<TreeNodeId>(i));
      }
      path_index_.emplace(paths[i], static_cast<TreeNodeId>(i));
    }
  }
  return Status::OK();
}

}  // namespace cupid
