// Schema tree construction (Section 8.2, Figure 4) plus the augmentations of
// Sections 8.3-8.4 (join views for referential constraints, view nodes).

#ifndef CUPID_TREE_TREE_BUILDER_H_
#define CUPID_TREE_TREE_BUILDER_H_

#include <memory>

#include "tree/schema_tree.h"

namespace cupid {

/// Options controlling expansion.
struct TreeBuildOptions {
  /// Reify referential constraints as join-view nodes (Section 8.3).
  bool expand_join_views = true;
  /// Materialize view elements as shared-children nodes (Section 8.4).
  bool expand_views = true;
};

/// \brief Expands `schema` into a schema tree by the pre-order traversal of
/// Figure 4.
///
/// A tree node is created for each element reached through a containment
/// relationship (or the root); IsDerivedFrom targets are *type-substituted*:
/// their members are expanded in place under the referring element, once per
/// context. Elements tagged not-instantiated (keys, RefInts) produce no
/// node. A cycle of containment/IsDerivedFrom relationships yields
/// Status::CycleDetected (the paper defers recursive types to future work).
///
/// The returned tree holds a pointer to `schema`, which must outlive it.
Result<SchemaTree> BuildSchemaTree(const Schema& schema,
                                   const TreeBuildOptions& options = {});

}  // namespace cupid

#endif  // CUPID_TREE_TREE_BUILDER_H_
