// Referential-constraint and view augmentation of the schema tree
// (Sections 8.3-8.4 of the paper).

#ifndef CUPID_TREE_JOIN_VIEW_H_
#define CUPID_TREE_JOIN_VIEW_H_

#include "tree/schema_tree.h"

namespace cupid {

/// \brief Reifies each RefInt element (foreign key, keyref) as a join-view
/// node (Section 8.3, Figure 6).
///
/// The node's children are the *shared* column nodes of both participating
/// structures — the source table (the RefInt's containment parent) and the
/// referenced table (parent of the referenced key) — and its parent is the
/// two tables' nearest common ancestor. Sharing children makes the structure
/// a DAG, exactly as the paper notes. Following the paper's tractability
/// choices, no nodes are added for FK combinations and the expansion is not
/// escalated transitively.
///
/// Returns the number of nodes added. Caller must re-Finalize() the tree;
/// BuildSchemaTree does this automatically.
Result<int> AugmentWithJoinViews(SchemaTree* tree);

/// \brief Attaches the elements listed in each kView element as shared
/// children of the view's tree node (Section 8.4 "Views"), giving those
/// elements a common context matchable against tables or views of the other
/// schema.
Result<int> AugmentWithViewNodes(SchemaTree* tree);

}  // namespace cupid

#endif  // CUPID_TREE_JOIN_VIEW_H_
