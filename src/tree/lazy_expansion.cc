#include "tree/lazy_expansion.h"

namespace cupid {

namespace {

/// Walks the primary-children subtrees of `a` (canonical) and `b` (copy) in
/// parallel; returns false on any shape/source mismatch, otherwise fills
/// map[b-descendant] = a-descendant for the whole subtree.
bool AlignSubtrees(const SchemaTree& tree, TreeNodeId a, TreeNodeId b,
                   std::vector<TreeNodeId>* map) {
  const TreeNode& na = tree.node(a);
  const TreeNode& nb = tree.node(b);
  if (na.source != nb.source) return false;
  if (na.is_join_view || nb.is_join_view) return false;
  if (na.children.size() != nb.children.size()) return false;
  for (size_t i = 0; i < na.children.size(); ++i) {
    // Only align children whose primary parent is this node (type copies
    // never share children; join views are excluded above).
    if (tree.node(na.children[i]).parent != a ||
        tree.node(nb.children[i]).parent != b) {
      return false;
    }
    if (!AlignSubtrees(tree, na.children[i], nb.children[i], map)) {
      return false;
    }
  }
  (*map)[static_cast<size_t>(b)] = a;
  return true;
}

}  // namespace

DuplicateInfo AnalyzeDuplicates(const SchemaTree& tree) {
  DuplicateInfo info;
  const size_t n = static_cast<size_t>(tree.num_nodes());
  info.canonical.resize(n);
  for (size_t i = 0; i < n; ++i) {
    info.canonical[i] = static_cast<TreeNodeId>(i);
  }

  for (ElementId e = 0; e < tree.schema().num_elements(); ++e) {
    const std::vector<TreeNodeId>& instances = tree.nodes_for_element(e);
    if (instances.size() < 2) continue;
    // Instances are recorded in node-id (creation) order; first = canonical.
    TreeNodeId canon = instances[0];
    for (size_t k = 1; k < instances.size(); ++k) {
      std::vector<TreeNodeId> trial = info.canonical;
      if (AlignSubtrees(tree, canon, instances[k], &trial)) {
        info.canonical = std::move(trial);
        info.has_duplicates = true;
      }
    }
  }

  // Resolve chains (copies of copies) to fixpoints.
  for (size_t i = 0; i < n; ++i) {
    TreeNodeId cur = info.canonical[i];
    while (info.canonical[static_cast<size_t>(cur)] != cur) {
      cur = info.canonical[static_cast<size_t>(cur)];
    }
    info.canonical[i] = cur;
  }
  return info;
}

}  // namespace cupid
