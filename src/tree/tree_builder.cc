#include "tree/tree_builder.h"

#include <unordered_set>

#include "tree/join_view.h"

namespace cupid {

namespace {

/// Recursive expansion per Figure 4 of the paper. `via_containment` is true
/// when `element` was reached through a containment relationship (or is the
/// root), in which case it materializes a node; IsDerivedFrom targets are
/// expanded in place (type substitution). `on_path` detects
/// containment/IsDerivedFrom cycles.
Status ConstructSchemaTree(const Schema& schema, ElementId element,
                           TreeNodeId current_stn, bool via_containment,
                           std::unordered_set<ElementId>* on_path,
                           SchemaTree* tree) {
  if (!on_path->insert(element).second) {
    return Status::CycleDetected(
        "recursive type definition at element '" +
        schema.element(element).name +
        "' (cyclic schemas are not supported; see Section 8.2)");
  }

  TreeNodeId stn = current_stn;
  if (via_containment) {
    if (schema.element(element).not_instantiated) {
      on_path->erase(element);
      return Status::OK();
    }
    stn = tree->AddNode(element, current_stn,
                        schema.element(element).optional);
  }

  for (ElementId child : schema.children(element)) {
    CUPID_RETURN_NOT_OK(ConstructSchemaTree(schema, child, stn,
                                            /*via_containment=*/true, on_path,
                                            tree));
  }
  for (ElementId type : schema.derived_from(element)) {
    CUPID_RETURN_NOT_OK(ConstructSchemaTree(schema, type, stn,
                                            /*via_containment=*/false,
                                            on_path, tree));
  }

  on_path->erase(element);
  return Status::OK();
}

}  // namespace

Result<SchemaTree> BuildSchemaTree(const Schema& schema,
                                   const TreeBuildOptions& options) {
  CUPID_RETURN_NOT_OK(schema.Validate());
  SchemaTree tree(&schema);
  std::unordered_set<ElementId> on_path;
  CUPID_RETURN_NOT_OK(ConstructSchemaTree(schema, schema.root(), kNoTreeNode,
                                          /*via_containment=*/true, &on_path,
                                          &tree));
  // Tentative finalize so augmentation can look up element -> node.
  CUPID_RETURN_NOT_OK(tree.Finalize());
  bool augmented = false;
  if (options.expand_join_views) {
    CUPID_ASSIGN_OR_RETURN(int added, AugmentWithJoinViews(&tree));
    augmented |= added > 0;
  }
  if (options.expand_views) {
    CUPID_ASSIGN_OR_RETURN(int added, AugmentWithViewNodes(&tree));
    augmented |= added > 0;
  }
  if (augmented) {
    CUPID_RETURN_NOT_OK(tree.Finalize());
  }
  return tree;
}

}  // namespace cupid
