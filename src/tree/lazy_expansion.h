// Duplicate-subtree analysis supporting lazy expansion (Section 8.4).
//
// Schema-tree construction duplicates the subtree of a shared type once per
// context, so identical subtrees get re-compared for every context pair.
// Lazy expansion avoids this: the first (canonical) copy is compared
// normally, and every later copy inherits the similarities computed for the
// canonical one at the moment it is reached in the match traversal —
// context-dependent increases from ancestors still apply per copy
// afterwards, which is exactly the paper's argument for why the computed
// values match a-priori expansion.
//
// This module computes the alignment: for every tree node, the canonical
// node it mirrors (itself when unique or first copy). TreeMatch consults it
// when its lazy_expansion option is on.

#ifndef CUPID_TREE_LAZY_EXPANSION_H_
#define CUPID_TREE_LAZY_EXPANSION_H_

#include <vector>

#include "tree/schema_tree.h"

namespace cupid {

/// Alignment of duplicated subtrees within one schema tree.
struct DuplicateInfo {
  /// canonical[n] = the canonical node `n` mirrors; n itself when unique.
  /// Fully resolved (following the map again is a fixpoint).
  std::vector<TreeNodeId> canonical;
  /// True if any node has a canonical other than itself.
  bool has_duplicates = false;

  TreeNodeId canon(TreeNodeId n) const {
    return canonical[static_cast<size_t>(n)];
  }
  bool is_copy(TreeNodeId n) const { return canon(n) != n; }
};

/// \brief Aligns every duplicated subtree to its first (canonical) instance.
///
/// Two nodes are aligned when they materialize the same schema element and
/// their primary-children subtrees are shape-identical (always true for
/// type-substitution copies; join-view/view nodes are never aligned).
DuplicateInfo AnalyzeDuplicates(const SchemaTree& tree);

}  // namespace cupid

#endif  // CUPID_TREE_LAZY_EXPANSION_H_
