#include "storage/fault_injection_env.h"

#include <algorithm>

namespace cupid {

namespace {

/// True when `path` names `dir` itself or something beneath it.
bool IsUnder(const std::string& path, const std::string& dir) {
  if (path == dir) return true;
  return path.size() > dir.size() && path.compare(0, dir.size(), dir) == 0 &&
         path[dir.size()] == '/';
}

}  // namespace

class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(FaultInjectionEnv* env, std::string path)
      : env_(env), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    bool short_write = false;
    Status injected = env_->CountOp(&short_write);
    MutexLock lock(&env_->mu_);
    if (env_->crashed_) return Status::IoError("crashed");
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return Status::IoError("append to removed file " + path_);
    }
    if (!injected.ok()) {
      if (short_write) {
        it->second.content.append(data.substr(0, data.size() / 2));
      }
      return injected;
    }
    it->second.content.append(data);
    return Status::OK();
  }

  Status Sync() override {
    CUPID_RETURN_NOT_OK(env_->CountOp(nullptr));
    MutexLock lock(&env_->mu_);
    if (env_->crashed_) return Status::IoError("crashed");
    auto it = env_->files_.find(path_);
    if (it == env_->files_.end()) {
      return Status::IoError("sync of removed file " + path_);
    }
    it->second.synced_size = it->second.content.size();
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
};

void FaultInjectionEnv::SetFailPolicy(FailPolicy policy) {
  MutexLock lock(&mu_);
  policy_ = std::move(policy);
}

void FaultInjectionEnv::Crash() {
  MutexLock lock(&mu_);
  CrashLocked();
}

void FaultInjectionEnv::CrashLocked() {
  crashed_ = true;
  for (auto& [path, state] : files_) {
    state.content.resize(state.synced_size);
  }
}

void FaultInjectionEnv::Heal() {
  MutexLock lock(&mu_);
  crashed_ = false;
  policy_ = FailPolicy{};
}

bool FaultInjectionEnv::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

int64_t FaultInjectionEnv::mutating_ops() const {
  MutexLock lock(&mu_);
  return ops_;
}

Status FaultInjectionEnv::CountOp(bool* short_write) {
  MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("crashed");
  ++ops_;
  if (policy_.fail_after_ops > 0 && --policy_.fail_after_ops == 0) {
    if (short_write != nullptr) *short_write = policy_.short_write;
    if (policy_.crash_on_failure) {
      CrashLocked();
      return Status::IoError("crashed");
    }
    return Status::IoError(policy_.message);
  }
  return Status::OK();
}

Status FaultInjectionEnv::CheckReadable() const {
  if (crashed_) return Status::IoError("crashed");
  return Status::OK();
}

std::string FaultInjectionEnv::Normalize(const std::string& path) {
  std::string out = path;
  while (out.size() > 1 && out.back() == '/') out.pop_back();
  return out;
}

bool FaultInjectionEnv::DirExistsLocked(const std::string& path) const {
  return dirs_.count(path) > 0;
}

bool FaultInjectionEnv::ParentDirExistsLocked(const std::string& path) const {
  auto slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) return true;  // top level
  return DirExistsLocked(path.substr(0, slash));
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& raw_path, bool truncate) {
  CUPID_RETURN_NOT_OK(CountOp(nullptr));
  std::string path = Normalize(raw_path);
  MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("crashed");
  if (!ParentDirExistsLocked(path)) {
    return Status::IoError("no such directory for " + path);
  }
  FileState& state = files_[path];
  if (truncate) {
    state.content.clear();
    state.synced_size = 0;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionWritableFile>(this, path));
}

Result<std::string> FaultInjectionEnv::ReadFile(const std::string& raw_path) {
  std::string path = Normalize(raw_path);
  MutexLock lock(&mu_);
  CUPID_RETURN_NOT_OK(CheckReadable());
  auto it = files_.find(path);
  if (it == files_.end()) return Status::IoError("cannot open " + path);
  return it->second.content;
}

Status FaultInjectionEnv::CreateDirs(const std::string& raw_path) {
  CUPID_RETURN_NOT_OK(CountOp(nullptr));
  std::string path = Normalize(raw_path);
  MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("crashed");
  // Create every prefix, mirroring fs::create_directories.
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      dirs_.insert(path.substr(0, i));
    }
  }
  return Status::OK();
}

// The env primitive itself, not a commit path: renames are modeled atomic
// and durable in this in-memory filesystem, so no SyncDir follows.
// NOLINTNEXTLINE(determinism:rename-no-fsync)
Status FaultInjectionEnv::RenameFile(const std::string& raw_from,
                                     const std::string& raw_to) {
  CUPID_RETURN_NOT_OK(CountOp(nullptr));
  std::string from = Normalize(raw_from);
  std::string to = Normalize(raw_to);
  MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("crashed");
  if (auto it = files_.find(from); it != files_.end()) {
    // Renames are modeled as atomic + durable: the moved bytes keep their
    // synced status.
    files_[to] = std::move(it->second);
    files_.erase(it);
    return Status::OK();
  }
  if (DirExistsLocked(from)) {
    if (DirExistsLocked(to) || files_.count(to) > 0) {
      return Status::IoError("rename target exists: " + to);
    }
    std::map<std::string, FileState> moved;
    for (auto it = files_.begin(); it != files_.end();) {
      if (IsUnder(it->first, from)) {
        moved[to + it->first.substr(from.size())] = std::move(it->second);
        it = files_.erase(it);
      } else {
        ++it;
      }
    }
    files_.insert(std::make_move_iterator(moved.begin()),
                  std::make_move_iterator(moved.end()));
    std::vector<std::string> dir_renames;
    for (const std::string& d : dirs_) {
      if (IsUnder(d, from)) dir_renames.push_back(d);
    }
    for (const std::string& d : dir_renames) {
      dirs_.erase(d);
      dirs_.insert(to + d.substr(from.size()));
    }
    return Status::OK();
  }
  return Status::IoError("rename source missing: " + from);
}

Status FaultInjectionEnv::RemoveFile(const std::string& raw_path) {
  CUPID_RETURN_NOT_OK(CountOp(nullptr));
  std::string path = Normalize(raw_path);
  MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("crashed");
  if (files_.erase(path) == 0) {
    return Status::IoError("remove " + path + ": no such file");
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveAll(const std::string& raw_path) {
  CUPID_RETURN_NOT_OK(CountOp(nullptr));
  std::string path = Normalize(raw_path);
  MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("crashed");
  for (auto it = files_.begin(); it != files_.end();) {
    it = IsUnder(it->first, path) ? files_.erase(it) : std::next(it);
  }
  for (auto it = dirs_.begin(); it != dirs_.end();) {
    it = IsUnder(*it, path) ? dirs_.erase(it) : std::next(it);
  }
  return Status::OK();
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& raw_path) {
  std::string path = Normalize(raw_path);
  MutexLock lock(&mu_);
  CUPID_RETURN_NOT_OK(CheckReadable());
  if (!DirExistsLocked(path)) {
    return Status::IoError("list " + path + ": no such directory");
  }
  std::set<std::string> names;
  auto add_child = [&](const std::string& entry) {
    if (!IsUnder(entry, path) || entry == path) return;
    std::string rest = entry.substr(path.size() + 1);
    names.insert(rest.substr(0, rest.find('/')));
  };
  for (const auto& [file, state] : files_) add_child(file);
  for (const std::string& dir : dirs_) add_child(dir);
  return std::vector<std::string>(names.begin(), names.end());
}

bool FaultInjectionEnv::FileExists(const std::string& raw_path) {
  std::string path = Normalize(raw_path);
  MutexLock lock(&mu_);
  if (crashed_) return false;
  return files_.count(path) > 0 || DirExistsLocked(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& raw_path) {
  CUPID_RETURN_NOT_OK(CountOp(nullptr));
  MutexLock lock(&mu_);
  if (crashed_) return Status::IoError("crashed");
  std::string path = Normalize(raw_path);
  // "." and "/" are the implicit top level every path hangs off.
  if (path != "." && path != "/" && !DirExistsLocked(path)) {
    return Status::IoError("sync dir " + raw_path + ": no such directory");
  }
  return Status::OK();
}

std::string FaultInjectionEnv::FileContentForTest(const std::string& path) {
  MutexLock lock(&mu_);
  auto it = files_.find(Normalize(path));
  return it == files_.end() ? std::string() : it->second.content;
}

void FaultInjectionEnv::SetFileContentForTest(const std::string& path,
                                              std::string content) {
  MutexLock lock(&mu_);
  FileState& state = files_[Normalize(path)];
  state.content = std::move(content);
  state.synced_size = state.content.size();
}

}  // namespace cupid
