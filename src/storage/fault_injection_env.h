// FaultInjectionEnv — an in-memory StorageEnv with failpoints, used by the
// storage tests to inject short writes, fsync failures, ENOSPC, and
// crash-at-every-syscall schedules (tests/crash_recovery_test.cc sweeps
// fail_after_ops over every mutating call of a whole edit stream).
//
// Durability model (deliberately pessimistic, mirroring what a kernel may
// do on power loss):
//   * Appended bytes become durable only when Sync() succeeds; Crash()
//     truncates every file back to its last synced length — a crash mid
//     append leaves a torn frame, exactly what ReadWal must tolerate.
//   * RenameFile is atomic and durable once it returns (the rename-as-
//     commit-point idiom the snapshot writer relies on).
//   * While crashed, every operation — including reads — fails, like a
//     dead process's file descriptors. Heal() models the restart after
//     which recovery runs over the surviving state.
//
// Lives in src/storage (not tests/) the way LevelDB ships its test env:
// the failpoint seam is part of the subsystem's contract.

#ifndef CUPID_STORAGE_FAULT_INJECTION_ENV_H_
#define CUPID_STORAGE_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "util/mutex.h"
#include "util/storage_env.h"
#include "util/thread_annotations.h"

namespace cupid {

class FaultInjectionEnv : public StorageEnv {
 public:
  struct FailPolicy {
    /// Fail the Nth mutating call from now (1 = the very next one);
    /// <= 0 disables the countdown.
    int64_t fail_after_ops = 0;
    /// When the countdown fires: simulate power loss (drop unsynced data,
    /// all subsequent calls fail until Heal) instead of a plain error.
    bool crash_on_failure = false;
    /// A failing Append writes the first half of its data before erroring
    /// (short write), instead of writing nothing.
    bool short_write = false;
    /// Message of injected non-crash errors (e.g. "no space left on
    /// device").
    std::string message = "injected fault";
  };

  FaultInjectionEnv() = default;

  void SetFailPolicy(FailPolicy policy);

  /// \brief Simulates power loss now: unsynced appends are discarded and
  /// every subsequent call fails until Heal().
  void Crash();

  /// \brief Clears the crashed state (the "restart" before recovery).
  void Heal();

  bool crashed() const;

  /// Mutating calls observed so far (Append/Sync/rename/remove/mkdir/...);
  /// the crash-point sweep uses this as its upper bound.
  int64_t mutating_ops() const;

  // StorageEnv:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveAll(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status SyncDir(const std::string& path) override;

  // Test inspection / tampering hooks (operate on the durable image).
  /// Raw current content of `path` (synced + unsynced), empty if absent.
  std::string FileContentForTest(const std::string& path);
  /// Overwrites `path` (marking the content synced) — corruption injection.
  void SetFileContentForTest(const std::string& path, std::string content);

 private:
  friend class FaultInjectionWritableFile;

  struct FileState {
    std::string content;
    /// Prefix of `content` guaranteed to survive Crash().
    size_t synced_size = 0;
  };

  /// Counts one mutating call; returns the injected failure, if any, and
  /// whether the caller should still perform a partial (short) write.
  Status CountOp(bool* short_write) EXCLUDES(mu_);
  Status CheckReadable() const REQUIRES(mu_);
  void CrashLocked() REQUIRES(mu_);

  static std::string Normalize(const std::string& path);
  bool DirExistsLocked(const std::string& path) const REQUIRES(mu_);
  bool ParentDirExistsLocked(const std::string& path) const REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, FileState> files_ GUARDED_BY(mu_);
  std::set<std::string> dirs_ GUARDED_BY(mu_);
  FailPolicy policy_ GUARDED_BY(mu_);
  bool crashed_ GUARDED_BY(mu_) = false;
  int64_t ops_ GUARDED_BY(mu_) = 0;
};

}  // namespace cupid

#endif  // CUPID_STORAGE_FAULT_INJECTION_ENV_H_
