// JSON (de)serialization of SchemaEdit — the payload vocabulary shared by
// the write-ahead log (src/storage/wal.h) and the snapshot manifest's
// lineage entries (SchemaRepository::SaveTo). Round-trips every edit kind
// and the full Element payload of kAddElement, so a recovered repository
// rebuilds bit-identical EditChain lineage.

#ifndef CUPID_STORAGE_EDIT_CODEC_H_
#define CUPID_STORAGE_EDIT_CODEC_H_

#include "incremental/schema_edit.h"
#include "util/json.h"
#include "util/status.h"

namespace cupid {

/// \brief Writes `edit` as one JSON object on `w` (caller brackets it with
/// Key()/array context as needed).
void WriteSchemaEditJson(const SchemaEdit& edit, JsonWriter* w);

/// \brief Parses an object written by WriteSchemaEditJson. Unknown kinds,
/// missing payload fields, and bad enum names are ParseErrors.
Result<SchemaEdit> ParseSchemaEditJson(const JsonValue& v);

/// \brief Parses a canonical ElementKind name ("Atomic", "Container", ...).
Result<ElementKind> ElementKindFromName(std::string_view name);

}  // namespace cupid

#endif  // CUPID_STORAGE_EDIT_CODEC_H_
