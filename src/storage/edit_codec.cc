#include "storage/edit_codec.h"

#include <cstring>

#include "schema/data_type.h"

namespace cupid {

namespace {

const char* EditKindName(SchemaEdit::Kind kind) {
  switch (kind) {
    case SchemaEdit::Kind::kAddElement:
      return "add";
    case SchemaEdit::Kind::kRemoveElement:
      return "remove";
    case SchemaEdit::Kind::kRenameElement:
      return "rename";
    case SchemaEdit::Kind::kChangeDataType:
      return "retype";
  }
  return "?";
}

Result<SchemaEdit::Kind> EditKindFromName(std::string_view name) {
  if (name == "add") return SchemaEdit::Kind::kAddElement;
  if (name == "remove") return SchemaEdit::Kind::kRemoveElement;
  if (name == "rename") return SchemaEdit::Kind::kRenameElement;
  if (name == "retype") return SchemaEdit::Kind::kChangeDataType;
  return Status::ParseError("unknown edit kind: " + std::string(name));
}

}  // namespace

Result<ElementKind> ElementKindFromName(std::string_view name) {
  static constexpr ElementKind kKinds[] = {
      ElementKind::kRoot,   ElementKind::kContainer,
      ElementKind::kAtomic, ElementKind::kTypeDef,
      ElementKind::kKey,    ElementKind::kRefInt,
      ElementKind::kView,   ElementKind::kEntity,
      ElementKind::kRelationship};
  for (ElementKind kind : kKinds) {
    if (name == ElementKindName(kind)) return kind;
  }
  return Status::ParseError("unknown element kind: " + std::string(name));
}

void WriteSchemaEditJson(const SchemaEdit& edit, JsonWriter* w) {
  w->BeginObject();
  w->Key("kind");
  w->String(EditKindName(edit.kind));
  w->Key("side");
  w->String(edit.side == EditSide::kSource ? "source" : "target");
  w->Key("path");
  w->String(edit.path);
  switch (edit.kind) {
    case SchemaEdit::Kind::kAddElement: {
      const Element& e = edit.element;
      w->Key("element");
      w->BeginObject();
      w->Key("name");
      w->String(e.name);
      w->Key("ekind");
      w->String(ElementKindName(e.kind));
      w->Key("type");
      w->String(DataTypeName(e.data_type));
      if (e.optional) {
        w->Key("optional");
        w->Bool(true);
      }
      if (e.not_instantiated) {
        w->Key("not_instantiated");
        w->Bool(true);
      }
      if (e.is_key) {
        w->Key("is_key");
        w->Bool(true);
      }
      if (!e.documentation.empty()) {
        w->Key("doc");
        w->String(e.documentation);
      }
      w->EndObject();
      break;
    }
    case SchemaEdit::Kind::kRenameElement:
      w->Key("to");
      w->String(edit.new_name);
      break;
    case SchemaEdit::Kind::kChangeDataType:
      w->Key("type");
      w->String(DataTypeName(edit.new_type));
      break;
    case SchemaEdit::Kind::kRemoveElement:
      break;
  }
  w->EndObject();
}

Result<SchemaEdit> ParseSchemaEditJson(const JsonValue& v) {
  if (!v.is_object()) return Status::ParseError("edit must be an object");
  SchemaEdit edit;
  CUPID_ASSIGN_OR_RETURN(edit.kind, EditKindFromName(v.GetString("kind")));
  std::string side = v.GetString("side", "source");
  if (side != "source" && side != "target") {
    return Status::ParseError("bad edit side: " + side);
  }
  edit.side = side == "source" ? EditSide::kSource : EditSide::kTarget;
  edit.path = v.GetString("path");
  if (edit.path.empty()) return Status::ParseError("edit needs path");
  switch (edit.kind) {
    case SchemaEdit::Kind::kAddElement: {
      const JsonValue* element = v.Find("element");
      if (element == nullptr || !element->is_object()) {
        return Status::ParseError("add edit needs element object");
      }
      Element e;
      e.name = element->GetString("name");
      if (e.name.empty()) return Status::ParseError("element needs name");
      CUPID_ASSIGN_OR_RETURN(
          e.kind, ElementKindFromName(element->GetString("ekind", "Atomic")));
      CUPID_ASSIGN_OR_RETURN(
          e.data_type, DataTypeFromName(element->GetString("type", "unknown")));
      e.optional = element->GetBool("optional", false);
      e.not_instantiated = element->GetBool("not_instantiated", false);
      e.is_key = element->GetBool("is_key", false);
      e.documentation = element->GetString("doc");
      edit.element = std::move(e);
      break;
    }
    case SchemaEdit::Kind::kRenameElement:
      edit.new_name = v.GetString("to");
      if (edit.new_name.empty()) {
        return Status::ParseError("rename edit needs to");
      }
      break;
    case SchemaEdit::Kind::kChangeDataType: {
      CUPID_ASSIGN_OR_RETURN(edit.new_type,
                             DataTypeFromName(v.GetString("type")));
      break;
    }
    case SchemaEdit::Kind::kRemoveElement:
      break;
  }
  return edit;
}

}  // namespace cupid
