#include "storage/wal.h"

#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/strings.h"

namespace cupid {

namespace {

constexpr size_t kFrameHeaderSize = kWalFrameHeaderSize;
/// Upper bound on one record; a length field beyond this is corruption,
/// not a gigantic schema (the largest snapshot-worthy schemas serialize to
/// a few megabytes).
constexpr uint32_t kMaxPayloadSize = 64u << 20;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

std::string EncodeWalFrame(uint64_t seq, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  std::string checked;
  checked.reserve(8 + payload.size());
  PutU64(&checked, seq);
  checked.append(payload);
  PutU32(&frame, Crc32(checked));
  frame.append(checked);
  return frame;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(StorageEnv* env,
                                                     const std::string& path,
                                                     uint64_t next_seq) {
  CUPID_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         env->NewWritableFile(path, /*truncate=*/true));
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), path, next_seq));
}

Status WalWriter::Append(std::string_view payload, bool sync) {
  // Static Default-registry handles: one registry lookup per process, one
  // relaxed add per record after that. Appends run under the repository
  // mutex, so the extra clock reads are off every match path.
  static obs::Counter* records = obs::MetricsRegistry::Default()->GetCounter(
      "cupid.wal.records_appended", "WAL records appended");
  static obs::Counter* bytes = obs::MetricsRegistry::Default()->GetCounter(
      "cupid.wal.bytes_appended", "WAL bytes appended (framed size)");
  static obs::Histogram* append_ms =
      obs::MetricsRegistry::Default()->GetHistogram(
          "cupid.wal.append_ms", "WAL frame encode+write latency, ms");
  static obs::Histogram* fsync_ms =
      obs::MetricsRegistry::Default()->GetHistogram(
          "cupid.wal.fsync_ms", "WAL fsync latency on commit, ms");
  using Clock = std::chrono::steady_clock;
  auto ms_since = [](Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  };

  if (payload.size() > kMaxPayloadSize) {
    return Status::InvalidArgument(
        StringFormat("WAL payload of %zu bytes exceeds the %u-byte bound",
                     payload.size(), kMaxPayloadSize));
  }
  Clock::time_point t_append = Clock::now();
  std::string frame = EncodeWalFrame(next_seq_, payload);
  CUPID_RETURN_NOT_OK(file_->Append(frame));
  append_ms->Observe(ms_since(t_append));
  if (sync) {
    Clock::time_point t_sync = Clock::now();
    CUPID_RETURN_NOT_OK(file_->Sync());
    fsync_ms->Observe(ms_since(t_sync));
  }
  ++next_seq_;
  bytes_written_ += static_cast<int64_t>(frame.size());
  records->Increment();
  bytes->Add(static_cast<int64_t>(frame.size()));
  return Status::OK();
}

Status WalWriter::Sync() { return file_->Sync(); }

Result<WalReadResult> ReadWal(StorageEnv* env, const std::string& path,
                              uint64_t expected_first_seq) {
  CUPID_ASSIGN_OR_RETURN(std::string data, env->ReadFile(path));
  WalReadResult result;
  size_t offset = 0;
  uint64_t expected_seq = expected_first_seq;
  auto drop_rest = [&](const std::string& reason) {
    result.bytes_dropped = static_cast<int64_t>(data.size() - offset);
    result.tail_dropped = true;
    result.drop_reason =
        StringFormat("%s at offset %zu of %s", reason.c_str(), offset,
                     path.c_str());
  };
  while (offset < data.size()) {
    if (data.size() - offset < kFrameHeaderSize) {
      drop_rest("torn frame header");
      break;
    }
    const char* frame = data.data() + offset;
    uint32_t payload_len = GetU32(frame);
    if (payload_len > kMaxPayloadSize) {
      drop_rest("corrupt frame length");
      break;
    }
    if (data.size() - offset - kFrameHeaderSize < payload_len) {
      drop_rest("torn frame payload");
      break;
    }
    uint32_t stored_crc = GetU32(frame + 4);
    // The checksum covers seq || payload.
    uint32_t actual_crc =
        Crc32(static_cast<const void*>(frame + 8), 8 + payload_len);
    if (stored_crc != actual_crc) {
      drop_rest("checksum mismatch");
      break;
    }
    uint64_t seq = GetU64(frame + 8);
    if (expected_seq == 0) expected_seq = seq;  // anchor on the first record
    if (seq != expected_seq) {
      drop_rest(StringFormat("sequence break (record %llu, expected %llu)",
                             static_cast<unsigned long long>(seq),
                             static_cast<unsigned long long>(expected_seq)));
      break;
    }
    WalRecord record;
    record.seq = seq;
    record.payload.assign(frame + kFrameHeaderSize, payload_len);
    result.records.push_back(std::move(record));
    offset += kFrameHeaderSize + payload_len;
    ++expected_seq;
  }
  return result;
}

}  // namespace cupid
