// WriteAheadLog — CRC32-framed, length-prefixed mutation records with
// fsync-on-commit, the durability backbone of SchemaRepository.
//
// Record frame (all integers little-endian):
//
//   +----------------+----------------+----------------+---------------+
//   | u32 payload_len| u32 crc32      | u64 seq        | payload bytes |
//   +----------------+----------------+----------------+---------------+
//
// The checksum covers seq || payload, so a bit flip anywhere in the frame
// body, a truncated tail, or a record stitched in from another log is
// detected. `seq` is the global mutation sequence number of the record
// (1-based, monotonically increasing across log rotations); readers verify
// contiguity, so duplicated or reordered frames are rejected rather than
// replayed twice.
//
// Read policy (ReadWal): records are accepted until the first frame that
// is torn (file ends mid-frame) or corrupt (bad checksum, insane length,
// sequence break). Everything before that point is returned, everything
// from it on is reported as dropped bytes — prefix recovery, never
// silently accepting garbage. A torn *trailing* record is the expected
// artifact of a crash mid-append and is not an error.

#ifndef CUPID_STORAGE_WAL_H_
#define CUPID_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/storage_env.h"

namespace cupid {

/// Bytes of the fixed frame prefix (len + crc + seq).
inline constexpr size_t kWalFrameHeaderSize = 4 + 4 + 8;

/// One durable mutation record.
struct WalRecord {
  uint64_t seq = 0;
  std::string payload;
};

/// \brief Appends framed records to one log file.
class WalWriter {
 public:
  /// \brief Creates (truncates) `path`; the first appended record gets
  /// sequence number `next_seq`.
  static Result<std::unique_ptr<WalWriter>> Create(StorageEnv* env,
                                                   const std::string& path,
                                                   uint64_t next_seq);

  /// \brief Frames and writes one record. With `sync` the record is fsync'd
  /// before returning — the commit point of the mutation. On any error the
  /// writer must be considered broken (the file may hold a torn frame);
  /// the owning repository degrades to read-only.
  Status Append(std::string_view payload, bool sync);

  /// \brief fsyncs everything appended so far.
  Status Sync();

  uint64_t next_seq() const { return next_seq_; }
  int64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::string path,
            uint64_t next_seq)
      : file_(std::move(file)), path_(std::move(path)), next_seq_(next_seq) {}

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  uint64_t next_seq_;
  int64_t bytes_written_ = 0;
};

/// Outcome of scanning one log file.
struct WalReadResult {
  std::vector<WalRecord> records;
  /// Bytes discarded from the first bad frame to end-of-file.
  int64_t bytes_dropped = 0;
  /// A frame was dropped (torn tail or corruption); see drop_reason.
  bool tail_dropped = false;
  std::string drop_reason;
};

/// \brief Scans `path`, accepting the longest valid record prefix.
/// `expected_first_seq` anchors the contiguity check (pass 0 to accept
/// whatever the first record carries). IoError only when the file cannot
/// be read at all; corruption is reported via the result, not a Status.
Result<WalReadResult> ReadWal(StorageEnv* env, const std::string& path,
                              uint64_t expected_first_seq);

/// \brief Frames `payload` with `seq` exactly as WalWriter::Append does
/// (exposed so tests can craft duplicated / corrupted frames).
std::string EncodeWalFrame(uint64_t seq, std::string_view payload);

}  // namespace cupid

#endif  // CUPID_STORAGE_WAL_H_
