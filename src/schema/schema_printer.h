// Debug/inspection rendering of schema graphs.

#ifndef CUPID_SCHEMA_SCHEMA_PRINTER_H_
#define CUPID_SCHEMA_SCHEMA_PRINTER_H_

#include <string>

#include "schema/schema.h"

namespace cupid {

/// \brief Renders the containment tree with kind/type annotations, one
/// element per line, two-space indentation per depth level.
///
///     PO [Root]
///       POLines [Container]
///         Item [Container]
///           Line [Atomic integer]
std::string PrintSchema(const Schema& schema);

/// \brief Renders all non-containment edges, one per line, e.g.
/// "Order_Customer_fk -Reference-> Customers_pk".
std::string PrintSchemaEdges(const Schema& schema);

}  // namespace cupid

#endif  // CUPID_SCHEMA_SCHEMA_PRINTER_H_
