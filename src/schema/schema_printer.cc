#include "schema/schema_printer.h"

#include <functional>

namespace cupid {

namespace {

void PrintElement(const Schema& schema, ElementId id, int depth,
                  std::string* out) {
  const Element& e = schema.element(id);
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(e.name);
  out->append(" [");
  out->append(ElementKindName(e.kind));
  if (e.kind == ElementKind::kAtomic) {
    out->append(" ");
    out->append(DataTypeName(e.data_type));
  }
  if (e.optional) out->append(" optional");
  if (e.is_key) out->append(" key");
  if (e.not_instantiated) out->append(" not-instantiated");
  out->append("]\n");
  for (ElementId c : schema.children(id)) {
    PrintElement(schema, c, depth + 1, out);
  }
}

}  // namespace

std::string PrintSchema(const Schema& schema) {
  std::string out;
  PrintElement(schema, schema.root(), 0, &out);
  // Detached elements (shared types) after the containment tree.
  for (ElementId id : schema.AllElements()) {
    if (id != schema.root() && schema.parent(id) == kNoElement) {
      PrintElement(schema, id, 0, &out);
    }
  }
  return out;
}

std::string PrintSchemaEdges(const Schema& schema) {
  std::string out;
  for (ElementId id : schema.AllElements()) {
    for (ElementId t : schema.derived_from(id)) {
      out += schema.element(id).name + " -IsDerivedFrom-> " +
             schema.element(t).name + "\n";
    }
    for (ElementId t : schema.aggregates(id)) {
      out += schema.element(id).name + " -Aggregates-> " +
             schema.element(t).name + "\n";
    }
    for (ElementId t : schema.references(id)) {
      out += schema.element(id).name + " -References-> " +
             schema.element(t).name + "\n";
    }
  }
  return out;
}

}  // namespace cupid
