// Data types attached to atomic schema elements, plus the broad "type class"
// buckets used by the categorization step of linguistic matching (Section
// 5.2 of the paper) and by the data-type compatibility table of structural
// matching (Section 6).

#ifndef CUPID_SCHEMA_DATA_TYPE_H_
#define CUPID_SCHEMA_DATA_TYPE_H_

#include <cstdint>
#include <string_view>

#include "util/status.h"

namespace cupid {

/// Concrete data type of an atomic schema element (column, XML attribute).
enum class DataType : uint8_t {
  kUnknown = 0,
  kString,
  kText,      ///< long-form / CLOB-ish text
  kChar,      ///< fixed-width character
  kInteger,
  kSmallInt,
  kBigInt,
  kDecimal,
  kFloat,
  kDouble,
  kMoney,
  kBoolean,
  kDate,
  kTime,
  kDateTime,
  kBinary,
  kUuid,
  kIdRef,     ///< XML ID / IDREF
  kComplex,   ///< non-atomic (has internal structure)
  kAny,
};

/// Broad bucket a DataType belongs to; one linguistic category per bucket.
enum class TypeClass : uint8_t {
  kUnknown = 0,
  kText,
  kNumber,
  kTemporal,
  kBoolean,
  kBinary,
  kComplex,
};

/// \brief Broad bucket for `t` (e.g. kInteger -> kNumber).
TypeClass TypeClassOf(DataType t);

/// \brief Canonical lower-case name, e.g. "integer".
const char* DataTypeName(DataType t);

/// \brief Canonical name of a TypeClass, e.g. "Number" (used as the category
/// keyword per Section 5.2).
const char* TypeClassName(TypeClass c);

/// \brief Parses SQL/XSD-ish type names ("varchar", "xs:int", "NUMERIC"...).
///
/// Returns ParseError for names that cannot be interpreted.
Result<DataType> DataTypeFromName(std::string_view name);

}  // namespace cupid

#endif  // CUPID_SCHEMA_DATA_TYPE_H_
