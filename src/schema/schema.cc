#include "schema/schema.h"

#include <unordered_set>

namespace cupid {

const char* ElementKindName(ElementKind k) {
  switch (k) {
    case ElementKind::kRoot: return "Root";
    case ElementKind::kContainer: return "Container";
    case ElementKind::kAtomic: return "Atomic";
    case ElementKind::kTypeDef: return "TypeDef";
    case ElementKind::kKey: return "Key";
    case ElementKind::kRefInt: return "RefInt";
    case ElementKind::kView: return "View";
    case ElementKind::kEntity: return "Entity";
    case ElementKind::kRelationship: return "Relationship";
  }
  return "Unknown";
}

const char* RelationshipTypeName(RelationshipType t) {
  switch (t) {
    case RelationshipType::kContainment: return "Containment";
    case RelationshipType::kAggregation: return "Aggregation";
    case RelationshipType::kIsDerivedFrom: return "IsDerivedFrom";
    case RelationshipType::kReference: return "Reference";
  }
  return "Unknown";
}

Schema::Schema(std::string name) {
  Element root;
  root.name = std::move(name);
  root.kind = ElementKind::kRoot;
  root.data_type = DataType::kComplex;
  elements_.push_back(std::move(root));
  parents_.push_back(kNoElement);
  children_.emplace_back();
  derived_from_.emplace_back();
  aggregates_.emplace_back();
  references_.emplace_back();
}

ElementId Schema::AddElement(Element element, ElementId parent) {
  ElementId id = static_cast<ElementId>(elements_.size());
  elements_.push_back(std::move(element));
  parents_.push_back(parent);
  children_.emplace_back();
  derived_from_.emplace_back();
  aggregates_.emplace_back();
  references_.emplace_back();
  if (parent != kNoElement && Contains(parent)) {
    children_[parent].push_back(id);
  }
  return id;
}

Status Schema::AddIsDerivedFrom(ElementId from, ElementId to) {
  if (!Contains(from) || !Contains(to)) {
    return Status::InvalidArgument("IsDerivedFrom endpoint out of range");
  }
  derived_from_[from].push_back(to);
  return Status::OK();
}

Status Schema::AddAggregation(ElementId from, ElementId to) {
  if (!Contains(from) || !Contains(to)) {
    return Status::InvalidArgument("aggregation endpoint out of range");
  }
  aggregates_[from].push_back(to);
  return Status::OK();
}

Status Schema::AddReference(ElementId from, ElementId to) {
  if (!Contains(from) || !Contains(to)) {
    return Status::InvalidArgument("reference endpoint out of range");
  }
  references_[from].push_back(to);
  return Status::OK();
}

std::string Schema::PathName(ElementId id) const {
  if (!Contains(id)) return "";
  std::vector<ElementId> chain;
  for (ElementId cur = id; cur != kNoElement; cur = parents_[cur]) {
    chain.push_back(cur);
  }
  std::string out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (!out.empty()) out += '.';
    out += elements_[*it].name;
  }
  return out;
}

ElementId Schema::FindByPath(std::string_view dotted_path) const {
  size_t start = 0;
  ElementId cur = kNoElement;
  while (start <= dotted_path.size()) {
    size_t dot = dotted_path.find('.', start);
    std::string_view part =
        dotted_path.substr(start, dot == std::string_view::npos
                                      ? std::string_view::npos
                                      : dot - start);
    if (cur == kNoElement) {
      if (part != elements_[0].name) return kNoElement;
      cur = 0;
    } else {
      ElementId next = kNoElement;
      for (ElementId c : children_[cur]) {
        if (elements_[c].name == part) {
          next = c;
          break;
        }
      }
      if (next == kNoElement) return kNoElement;
      cur = next;
    }
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return cur;
}

ElementId Schema::FindByName(std::string_view name) const {
  for (ElementId id = 0; id < num_elements(); ++id) {
    if (elements_[id].name == name) return id;
  }
  return kNoElement;
}

std::vector<ElementId> Schema::AllElements() const {
  std::vector<ElementId> ids(elements_.size());
  for (size_t i = 0; i < elements_.size(); ++i) {
    ids[i] = static_cast<ElementId>(i);
  }
  return ids;
}

std::vector<ElementId> Schema::ElementsOfKind(ElementKind kind) const {
  std::vector<ElementId> out;
  for (size_t i = 0; i < elements_.size(); ++i) {
    if (elements_[i].kind == kind) out.push_back(static_cast<ElementId>(i));
  }
  return out;
}

Status Schema::Validate() const {
  if (elements_.empty() || elements_[0].kind != ElementKind::kRoot) {
    return Status::Internal("schema has no root element");
  }
  for (ElementId id = 0; id < num_elements(); ++id) {
    ElementId p = parents_[id];
    if (id == 0) {
      if (p != kNoElement) {
        return Status::Internal("root element has a parent");
      }
      continue;
    }
    if (elements_[id].kind == ElementKind::kRoot) {
      return Status::Internal("multiple root elements");
    }
    if (p != kNoElement) {
      if (!Contains(p)) {
        return Status::Internal("parent id out of range for element '" +
                                elements_[id].name + "'");
      }
      bool found = false;
      for (ElementId c : children_[p]) found |= (c == id);
      if (!found) {
        return Status::Internal("parent/child asymmetry at element '" +
                                elements_[id].name + "'");
      }
    }
    for (ElementId t : derived_from_[id]) {
      if (!Contains(t)) return Status::Internal("dangling IsDerivedFrom edge");
    }
    for (ElementId t : aggregates_[id]) {
      if (!Contains(t)) return Status::Internal("dangling aggregation edge");
    }
    for (ElementId t : references_[id]) {
      if (!Contains(t)) return Status::Internal("dangling reference edge");
    }
    if (elements_[id].kind == ElementKind::kRefInt &&
        references_[id].empty()) {
      return Status::Internal("RefInt element '" + elements_[id].name +
                              "' references nothing");
    }
  }
  // Containment must be acyclic (each element one parent; reaching the root).
  for (ElementId id = 0; id < num_elements(); ++id) {
    std::unordered_set<ElementId> seen;
    ElementId cur = id;
    while (cur != kNoElement) {
      if (!seen.insert(cur).second) {
        return Status::CycleDetected("containment cycle involving element '" +
                                     elements_[id].name + "'");
      }
      cur = parents_[cur];
    }
  }
  return Status::OK();
}

}  // namespace cupid
