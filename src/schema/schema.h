// The generic schema model of Section 8.1 of the paper.
//
// A schema is a rooted graph whose nodes are *elements* (tables, columns,
// XML elements/attributes, type definitions, keys, referential constraints,
// views, ER entities...). Elements are interconnected by four relationship
// types:
//
//   * containment    — physical containment; every element except the root
//                      has exactly one containment parent.
//   * aggregation    — weaker grouping (e.g. a compound key aggregates the
//                      columns of its table); multiple parents allowed.
//   * IsDerivedFrom  — abstracts IsA / IsTypeOf; models shared types. The
//                      members of the target type are implicitly members of
//                      the source element.
//   * reference      — from a RefInt element to the key it refers to.
//
// Containment alone forms a tree; the other relationships make the schema a
// general (possibly cyclic) graph. Cycles of containment + IsDerivedFrom are
// detected at schema-tree construction time (src/tree).

#ifndef CUPID_SCHEMA_SCHEMA_H_
#define CUPID_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "schema/data_type.h"
#include "util/status.h"

namespace cupid {

/// Index of an element within its Schema. Stable for the schema's lifetime.
using ElementId = int32_t;

/// Sentinel for "no element" (e.g. the root's parent).
inline constexpr ElementId kNoElement = -1;

/// Structural role of an element in the schema graph.
enum class ElementKind : uint8_t {
  kRoot = 0,      ///< the schema itself
  kContainer,     ///< table, XML element with children, class
  kAtomic,        ///< column, XML attribute, leaf XML element
  kTypeDef,       ///< shared type definition (XSD complexType, OO class type)
  kKey,           ///< primary/unique key (aggregates columns)
  kRefInt,        ///< referential constraint (foreign key, keyref, IDREF)
  kView,          ///< view definition (children = elements in the view)
  kEntity,        ///< ER entity (used by the DIKE baseline's input model)
  kRelationship,  ///< ER relationship
};

/// \brief Canonical name of an ElementKind ("Container", "RefInt", ...).
const char* ElementKindName(ElementKind k);

/// One node of the schema graph.
struct Element {
  std::string name;
  ElementKind kind = ElementKind::kAtomic;
  DataType data_type = DataType::kUnknown;
  /// Optional (non-required) element, Section 8.4 "Optionality".
  bool optional = false;
  /// Excluded from schema-tree construction (e.g. keys), Section 8.2.
  bool not_instantiated = false;
  /// Member of a key (influences the DIKE baseline's initial similarity).
  bool is_key = false;
  /// Free-text annotation (data-dictionary description).
  std::string documentation;
};

/// A directed edge of the schema graph.
enum class RelationshipType : uint8_t {
  kContainment = 0,
  kAggregation,
  kIsDerivedFrom,
  kReference,
};

/// \brief Canonical name of a RelationshipType.
const char* RelationshipTypeName(RelationshipType t);

/// \brief A rooted schema graph (Section 8.1).
///
/// Elements are created through AddElement / Schema-building helpers and are
/// addressed by ElementId. The root element (kind kRoot, id 0) is created by
/// the constructor and carries the schema name.
class Schema {
 public:
  /// Creates a schema whose root element is named `name`.
  explicit Schema(std::string name);

  /// \brief Adds an element contained by `parent` (kNoElement only valid for
  /// elements that are attached later or deliberately parentless, such as
  /// shared kTypeDef definitions hung off the root).
  ///
  /// Returns the id of the new element.
  ElementId AddElement(Element element, ElementId parent);

  /// \brief Adds an IsDerivedFrom edge: `from` derives from (is typed by)
  /// `to`. Members of `to` become implicit members of `from`.
  Status AddIsDerivedFrom(ElementId from, ElementId to);

  /// \brief Adds an aggregation edge: `from` (e.g. a key) aggregates `to`
  /// (e.g. a column).
  Status AddAggregation(ElementId from, ElementId to);

  /// \brief Adds a reference edge: `from` (a RefInt) references `to` (a key
  /// or container in the target structure).
  Status AddReference(ElementId from, ElementId to);

  // -- Accessors ------------------------------------------------------------

  const std::string& name() const { return elements_[0].name; }
  ElementId root() const { return 0; }
  int64_t num_elements() const {
    return static_cast<int64_t>(elements_.size());
  }
  bool Contains(ElementId id) const {
    return id >= 0 && id < num_elements();
  }

  const Element& element(ElementId id) const { return elements_[id]; }
  Element* mutable_element(ElementId id) { return &elements_[id]; }

  /// Containment parent (kNoElement for the root / detached elements).
  ElementId parent(ElementId id) const { return parents_[id]; }

  /// Containment children, in insertion order.
  const std::vector<ElementId>& children(ElementId id) const {
    return children_[id];
  }

  /// Outgoing IsDerivedFrom targets of `id`.
  const std::vector<ElementId>& derived_from(ElementId id) const {
    return derived_from_[id];
  }

  /// Elements aggregated by `id`.
  const std::vector<ElementId>& aggregates(ElementId id) const {
    return aggregates_[id];
  }

  /// Elements referenced by `id`.
  const std::vector<ElementId>& references(ElementId id) const {
    return references_[id];
  }

  /// \brief True if `id` has neither containment children nor IsDerivedFrom
  /// targets, i.e. it will be a leaf of the expanded schema tree.
  bool IsLeaf(ElementId id) const {
    return children_[id].empty() && derived_from_[id].empty();
  }

  /// \brief Dotted path of containment names from the root, e.g.
  /// "PO.POLines.Item.Qty". The root name is included.
  std::string PathName(ElementId id) const;

  /// \brief Resolves a dotted containment path ("PO.POLines.Item.Qty" —
  /// root name included) to an element id; kNoElement if absent.
  ElementId FindByPath(std::string_view dotted_path) const;

  /// \brief First element (in id order) named `name`, of any kind;
  /// kNoElement if absent.
  ElementId FindByName(std::string_view name) const;

  /// \brief All element ids in insertion order (0 = root).
  std::vector<ElementId> AllElements() const;

  /// \brief Ids of elements for which `kind` matches.
  std::vector<ElementId> ElementsOfKind(ElementKind kind) const;

  /// \brief Structural sanity checks: parent/child symmetry, edge targets in
  /// range, exactly one root, RefInt elements reference something.
  Status Validate() const;

 private:
  std::vector<Element> elements_;
  std::vector<ElementId> parents_;
  std::vector<std::vector<ElementId>> children_;
  std::vector<std::vector<ElementId>> derived_from_;
  std::vector<std::vector<ElementId>> aggregates_;
  std::vector<std::vector<ElementId>> references_;
};

}  // namespace cupid

#endif  // CUPID_SCHEMA_SCHEMA_H_
