#include "schema/schema_builder.h"

namespace cupid {

ElementId RelationalSchemaBuilder::AddTable(const std::string& name) {
  Element e;
  e.name = name;
  e.kind = ElementKind::kContainer;
  e.data_type = DataType::kComplex;
  return schema_.AddElement(std::move(e), schema_.root());
}

ElementId RelationalSchemaBuilder::AddColumn(ElementId table,
                                             const std::string& name,
                                             DataType type, bool optional) {
  Element e;
  e.name = name;
  e.kind = ElementKind::kAtomic;
  e.data_type = type;
  e.optional = optional;
  return schema_.AddElement(std::move(e), table);
}

ElementId RelationalSchemaBuilder::SetPrimaryKey(
    ElementId table, const std::vector<ElementId>& columns) {
  Element key;
  key.name = schema_.element(table).name + "_pk";
  key.kind = ElementKind::kKey;
  key.not_instantiated = true;
  ElementId key_id = schema_.AddElement(std::move(key), table);
  for (ElementId col : columns) {
    schema_.AddAggregation(key_id, col);
    schema_.mutable_element(col)->is_key = true;
  }
  primary_keys_.emplace_back(table, key_id);
  return key_id;
}

ElementId RelationalSchemaBuilder::AddForeignKey(
    const std::string& name, ElementId source_table,
    const std::vector<ElementId>& source_columns, ElementId target_table) {
  Element fk;
  fk.name = name;
  fk.kind = ElementKind::kRefInt;
  fk.not_instantiated = true;
  ElementId fk_id = schema_.AddElement(std::move(fk), source_table);
  for (ElementId col : source_columns) {
    schema_.AddAggregation(fk_id, col);
  }
  ElementId target_key = primary_key(target_table);
  schema_.AddReference(fk_id,
                       target_key == kNoElement ? target_table : target_key);
  return fk_id;
}

ElementId RelationalSchemaBuilder::AddView(
    const std::string& name, const std::vector<ElementId>& columns) {
  Element view;
  view.name = name;
  view.kind = ElementKind::kView;
  view.data_type = DataType::kComplex;
  ElementId view_id = schema_.AddElement(std::move(view), schema_.root());
  for (ElementId col : columns) {
    schema_.AddAggregation(view_id, col);
  }
  return view_id;
}

ElementId RelationalSchemaBuilder::primary_key(ElementId table) const {
  for (const auto& [t, k] : primary_keys_) {
    if (t == table) return k;
  }
  return kNoElement;
}

ElementId XmlSchemaBuilder::AddElement(ElementId parent,
                                       const std::string& name,
                                       bool optional) {
  Element e;
  e.name = name;
  e.kind = ElementKind::kContainer;
  e.data_type = DataType::kComplex;
  e.optional = optional;
  return schema_.AddElement(std::move(e), parent);
}

ElementId XmlSchemaBuilder::AddAttribute(ElementId parent,
                                         const std::string& name,
                                         DataType type, bool optional) {
  Element e;
  e.name = name;
  e.kind = ElementKind::kAtomic;
  e.data_type = type;
  e.optional = optional;
  return schema_.AddElement(std::move(e), parent);
}

ElementId XmlSchemaBuilder::AddComplexType(const std::string& name) {
  Element e;
  e.name = name;
  e.kind = ElementKind::kTypeDef;
  e.data_type = DataType::kComplex;
  // Shared types hang off no containment parent: they are reached only via
  // IsDerivedFrom edges and expanded per context (Section 8.2).
  return schema_.AddElement(std::move(e), kNoElement);
}

Status XmlSchemaBuilder::SetType(ElementId element, ElementId type_def) {
  if (schema_.element(type_def).kind != ElementKind::kTypeDef) {
    return Status::InvalidArgument(
        "SetType target must be a TypeDef element");
  }
  return schema_.AddIsDerivedFrom(element, type_def);
}

}  // namespace cupid
