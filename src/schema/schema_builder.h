// Fluent construction helpers over the generic schema model.
//
// Two dialect-specific facades are provided: RelationalSchemaBuilder (tables,
// columns, keys, foreign keys, views) and XmlSchemaBuilder (nested elements,
// attributes, shared complex types). Both produce plain Schema graphs; the
// matcher never sees the dialect.

#ifndef CUPID_SCHEMA_SCHEMA_BUILDER_H_
#define CUPID_SCHEMA_SCHEMA_BUILDER_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "schema/schema.h"

namespace cupid {

/// \brief Builder for relational schemas (Section 8.3's running model).
///
///     RelationalSchemaBuilder b("RDB");
///     auto orders = b.AddTable("Orders");
///     auto oid = b.AddColumn(orders, "OrderID", DataType::kInteger);
///     b.SetPrimaryKey(orders, {oid});
///     b.AddForeignKey("Orders_Customers_fk", orders, {cust_id_col},
///                     customers);
///     Schema s = std::move(b).Build();
class RelationalSchemaBuilder {
 public:
  explicit RelationalSchemaBuilder(std::string name) : schema_(std::move(name)) {}

  /// Adds a table under the schema root.
  ElementId AddTable(const std::string& name);

  /// Adds a column to `table`. `optional` marks NULLable columns.
  ElementId AddColumn(ElementId table, const std::string& name, DataType type,
                      bool optional = false);

  /// \brief Declares the primary key of `table` over `columns`.
  ///
  /// Creates a not-instantiated kKey element aggregating the columns and
  /// marks the columns `is_key`.
  ElementId SetPrimaryKey(ElementId table,
                          const std::vector<ElementId>& columns);

  /// \brief Declares a foreign key named `name` from `source_columns` (in
  /// `source_table`) to the primary key of `target_table`.
  ///
  /// Creates a not-instantiated kRefInt element that aggregates the source
  /// columns and references the target table's key (or the table itself if
  /// no key was declared). Section 8.3, Figure 5.
  ElementId AddForeignKey(const std::string& name, ElementId source_table,
                          const std::vector<ElementId>& source_columns,
                          ElementId target_table);

  /// \brief Declares a view over existing columns (Section 8.4 "Views").
  ElementId AddView(const std::string& name,
                    const std::vector<ElementId>& columns);

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }
  Schema Build() && { return std::move(schema_); }

  /// Primary key element of `table`, or kNoElement.
  ElementId primary_key(ElementId table) const;

 private:
  Schema schema_;
  // (table, key) pairs; small schemas, linear scan is fine.
  std::vector<std::pair<ElementId, ElementId>> primary_keys_;
};

/// \brief Builder for XML-style hierarchical schemas with shared types.
class XmlSchemaBuilder {
 public:
  explicit XmlSchemaBuilder(std::string name) : schema_(std::move(name)) {}

  ElementId root() const { return schema_.root(); }

  /// Adds a complex (container) XML element under `parent`.
  ElementId AddElement(ElementId parent, const std::string& name,
                       bool optional = false);

  /// Adds a leaf element/attribute with a simple type under `parent`.
  ElementId AddAttribute(ElementId parent, const std::string& name,
                         DataType type, bool optional = false);

  /// \brief Declares a shared complex type (not contained by the root;
  /// reached only via IsDerivedFrom edges).
  ElementId AddComplexType(const std::string& name);

  /// \brief Types `element` by `type_def` (IsDerivedFrom edge): members of
  /// the type become implicit members of the element (Section 8.1).
  Status SetType(ElementId element, ElementId type_def);

  const Schema& schema() const { return schema_; }
  Schema* mutable_schema() { return &schema_; }
  Schema Build() && { return std::move(schema_); }

 private:
  Schema schema_;
};

}  // namespace cupid

#endif  // CUPID_SCHEMA_SCHEMA_BUILDER_H_
