#include "schema/data_type.h"

#include <string>

#include "util/strings.h"

namespace cupid {

TypeClass TypeClassOf(DataType t) {
  switch (t) {
    case DataType::kString:
    case DataType::kText:
    case DataType::kChar:
    case DataType::kUuid:
    case DataType::kIdRef:
      return TypeClass::kText;
    case DataType::kInteger:
    case DataType::kSmallInt:
    case DataType::kBigInt:
    case DataType::kDecimal:
    case DataType::kFloat:
    case DataType::kDouble:
    case DataType::kMoney:
      return TypeClass::kNumber;
    case DataType::kBoolean:
      return TypeClass::kBoolean;
    case DataType::kDate:
    case DataType::kTime:
    case DataType::kDateTime:
      return TypeClass::kTemporal;
    case DataType::kBinary:
      return TypeClass::kBinary;
    case DataType::kComplex:
      return TypeClass::kComplex;
    case DataType::kUnknown:
    case DataType::kAny:
      return TypeClass::kUnknown;
  }
  return TypeClass::kUnknown;
}

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kUnknown: return "unknown";
    case DataType::kString: return "string";
    case DataType::kText: return "text";
    case DataType::kChar: return "char";
    case DataType::kInteger: return "integer";
    case DataType::kSmallInt: return "smallint";
    case DataType::kBigInt: return "bigint";
    case DataType::kDecimal: return "decimal";
    case DataType::kFloat: return "float";
    case DataType::kDouble: return "double";
    case DataType::kMoney: return "money";
    case DataType::kBoolean: return "boolean";
    case DataType::kDate: return "date";
    case DataType::kTime: return "time";
    case DataType::kDateTime: return "datetime";
    case DataType::kBinary: return "binary";
    case DataType::kUuid: return "uuid";
    case DataType::kIdRef: return "idref";
    case DataType::kComplex: return "complex";
    case DataType::kAny: return "any";
  }
  return "unknown";
}

const char* TypeClassName(TypeClass c) {
  switch (c) {
    case TypeClass::kUnknown: return "Unknown";
    case TypeClass::kText: return "Text";
    case TypeClass::kNumber: return "Number";
    case TypeClass::kTemporal: return "Temporal";
    case TypeClass::kBoolean: return "Boolean";
    case TypeClass::kBinary: return "Binary";
    case TypeClass::kComplex: return "Complex";
  }
  return "Unknown";
}

Result<DataType> DataTypeFromName(std::string_view raw) {
  std::string name = ToLowerAscii(TrimWhitespace(raw));
  // Strip XSD namespace prefixes and size suffixes: "xs:string", "varchar(30)".
  if (auto colon = name.find(':'); colon != std::string::npos) {
    name = name.substr(colon + 1);
  }
  if (auto paren = name.find('('); paren != std::string::npos) {
    name = std::string(TrimWhitespace(name.substr(0, paren)));
  }

  struct Alias {
    const char* name;
    DataType type;
  };
  static constexpr Alias kAliases[] = {
      {"string", DataType::kString},   {"varchar", DataType::kString},
      {"varchar2", DataType::kString}, {"nvarchar", DataType::kString},
      {"character varying", DataType::kString},
      {"text", DataType::kText},       {"clob", DataType::kText},
      {"char", DataType::kChar},       {"nchar", DataType::kChar},
      {"character", DataType::kChar},
      {"int", DataType::kInteger},     {"integer", DataType::kInteger},
      {"int4", DataType::kInteger},    {"number", DataType::kInteger},
      {"smallint", DataType::kSmallInt}, {"int2", DataType::kSmallInt},
      {"tinyint", DataType::kSmallInt},
      {"bigint", DataType::kBigInt},   {"int8", DataType::kBigInt},
      {"long", DataType::kBigInt},
      {"decimal", DataType::kDecimal}, {"numeric", DataType::kDecimal},
      {"float", DataType::kFloat},     {"real", DataType::kFloat},
      {"double", DataType::kDouble},   {"double precision", DataType::kDouble},
      {"money", DataType::kMoney},     {"currency", DataType::kMoney},
      {"bool", DataType::kBoolean},    {"boolean", DataType::kBoolean},
      {"bit", DataType::kBoolean},
      {"date", DataType::kDate},
      {"time", DataType::kTime},
      {"datetime", DataType::kDateTime}, {"timestamp", DataType::kDateTime},
      {"binary", DataType::kBinary},   {"blob", DataType::kBinary},
      {"varbinary", DataType::kBinary}, {"bytea", DataType::kBinary},
      {"uuid", DataType::kUuid},       {"guid", DataType::kUuid},
      {"id", DataType::kIdRef},        {"idref", DataType::kIdRef},
      {"complex", DataType::kComplex}, {"complextype", DataType::kComplex},
      {"any", DataType::kAny},         {"anytype", DataType::kAny},
      {"unknown", DataType::kUnknown},
  };
  for (const Alias& a : kAliases) {
    if (name == a.name) return a.type;
  }
  return Status::ParseError("unrecognized data type name: '" +
                            std::string(raw) + "'");
}

}  // namespace cupid
