// Interned element names: per-name token-type spans over TokenIds, plus a
// memoized mirror of ElementNameSimilarity.
//
// The naive ElementNameSimilarity materializes two std::vector<Token> per
// token type per call (10 heap allocations per element pair). InternName
// groups a name's token ids by type once; InternedNameSimilarity then walks
// those spans with TokenPairMemo lookups and performs the exact arithmetic
// of the Section 5.2/5.3 formulas, so its result is bit-identical to the
// naive path.

#ifndef CUPID_PERF_INTERNED_NAMES_H_
#define CUPID_PERF_INTERNED_NAMES_H_

#include <array>
#include <vector>

#include "linguistic/name_similarity.h"
#include "linguistic/normalizer.h"
#include "perf/token_interner.h"

namespace cupid {

/// A normalized name reduced to interned token ids, grouped by token type.
/// Within each group the original token order is preserved (matching
/// NormalizedName::TokensOfType), which keeps summation order — and thus
/// floating-point results — identical to the naive implementation.
struct InternedName {
  std::array<std::vector<TokenId>, 5> by_type;
};

/// \brief Interns every token of `name` into `interner` and groups the ids
/// by token type.
InternedName InternName(const NormalizedName& name, TokenInterner* interner);

/// \brief The Section 5.2 token-set similarity over interned spans; equal to
/// TokenSetSimilarity on the corresponding token vectors.
double InternedTokenSetSimilarity(const std::vector<TokenId>& t1,
                                  const std::vector<TokenId>& t2,
                                  TokenPairMemo* memo);

/// \brief The Section 5.3 element name similarity over interned names;
/// equal to ElementNameSimilarity on the corresponding NormalizedNames
/// (given a memo built with the same thesaurus and substring options).
double InternedNameSimilarity(const InternedName& n1, const InternedName& n2,
                              const TokenTypeWeights& weights,
                              TokenPairMemo* memo);

}  // namespace cupid

#endif  // CUPID_PERF_INTERNED_NAMES_H_
