#include "perf/leaf_bitset_index.h"

#include <algorithm>

namespace cupid {

LeafIndex::LeafIndex(const SchemaTree& tree) {
  const size_t n = static_cast<size_t>(tree.num_nodes());
  dense_.assign(n, -1);
  for (TreeNodeId id = 0; id < tree.num_nodes(); ++id) {
    if (tree.IsLeaf(id)) {
      dense_[static_cast<size_t>(id)] = static_cast<int32_t>(leaf_ids_.size());
      leaf_ids_.push_back(id);
    }
  }
  words_ = WordsFor(leaf_ids_.size());
  node_masks_.assign(n * words_, 0);
  mask_begin_.assign(n, 0);
  mask_end_.assign(n, 0);
  range_begin_.assign(n, 0);
  range_end_.assign(n, 0);
  range_contiguous_.assign(n, 0);
  for (TreeNodeId id = 0; id < tree.num_nodes(); ++id) {
    uint64_t* mask = &node_masks_[static_cast<size_t>(id) * words_];
    uint32_t lo = static_cast<uint32_t>(words_), hi = 0;
    int32_t dlo = static_cast<int32_t>(leaf_ids_.size()), dhi = 0;
    size_t count = 0;
    for (const LeafRef& lr : tree.leaves(id)) {
      int32_t j = dense_[static_cast<size_t>(lr.leaf)];
      uint32_t w = static_cast<uint32_t>(j) / kWordBits;
      mask[w] |= uint64_t{1} << (static_cast<uint32_t>(j) % kWordBits);
      lo = std::min(lo, w);
      hi = std::max(hi, w + 1);
      dlo = std::min(dlo, j);
      dhi = std::max(dhi, j + 1);
      ++count;
    }
    mask_begin_[static_cast<size_t>(id)] = lo;
    mask_end_[static_cast<size_t>(id)] = hi;
    if (count == 0) {
      dlo = dhi = 0;
    }
    range_begin_[static_cast<size_t>(id)] = dlo;
    range_end_[static_cast<size_t>(id)] = dhi;
    // Gapless iff the bounding interval holds exactly the member count
    // (DFS id clustering makes this the common case; DAG sharing breaks it).
    range_contiguous_[static_cast<size_t>(id)] =
        static_cast<size_t>(dhi - dlo) == count ? 1 : 0;
  }
}

void LeafPairBits::Set(TreeNodeId x, TreeNodeId y) {
  size_t r = static_cast<size_t>(rows_->dense(x));
  size_t c = static_cast<size_t>(cols_->dense(y));
  row(r)[c / LeafIndex::kWordBits] |= uint64_t{1}
                                      << (c % LeafIndex::kWordBits);
  FlagRow(r);
  ++set_count_;
}

void LeafPairBits::SetRowAll(TreeNodeId x) {
  size_t r = static_cast<size_t>(rows_->dense(x));
  size_t full = cols_->num_leaves() / LeafIndex::kWordBits;
  uint64_t* bits = row(r);
  for (size_t w = 0; w < full; ++w) bits[w] = ~uint64_t{0};
  size_t rest = cols_->num_leaves() % LeafIndex::kWordBits;
  if (rest > 0) bits[full] = (uint64_t{1} << rest) - 1;
  FlagRow(r);
  ++set_count_;
}

void LeafPairBits::SetColAll(TreeNodeId y) {
  size_t c = static_cast<size_t>(cols_->dense(y));
  uint64_t bit = uint64_t{1} << (c % LeafIndex::kWordBits);
  size_t w = c / LeafIndex::kWordBits;
  for (size_t r = 0; r < rows_->num_leaves(); ++r) {
    row(r)[w] |= bit;
    FlagRow(r);
  }
  ++set_count_;
}

void LeafPairBits::SetBlock(TreeNodeId ns, TreeNodeId nt) {
  const uint64_t* row_mask = rows_->mask(ns);
  const uint64_t* col_mask = cols_->mask(nt);
  uint32_t cb = cols_->mask_begin(nt), ce = cols_->mask_end(nt);
  for (uint32_t rw = rows_->mask_begin(ns); rw < rows_->mask_end(ns); ++rw) {
    uint64_t word = row_mask[rw];
    while (word != 0) {
      size_t r = static_cast<size_t>(rw) * LeafIndex::kWordBits +
                 static_cast<size_t>(__builtin_ctzll(word));
      word &= word - 1;
      uint64_t* bits = row(r);
      for (uint32_t w = cb; w < ce; ++w) bits[w] |= col_mask[w];
      FlagRow(r);
    }
  }
  ++set_count_;
}

bool LeafPairBits::AnyInBlock(TreeNodeId ns, TreeNodeId nt) const {
  const uint64_t* row_mask = rows_->mask(ns);
  for (uint32_t rw = rows_->mask_begin(ns); rw < rows_->mask_end(ns); ++rw) {
    uint64_t flagged = row_mask[rw] & row_any_[rw];
    while (flagged != 0) {
      size_t r = static_cast<size_t>(rw) * LeafIndex::kWordBits +
                 static_cast<size_t>(__builtin_ctzll(flagged));
      flagged &= flagged - 1;
      const uint64_t* bits = row(r);
      const uint64_t* col_mask = cols_->mask(nt);
      for (uint32_t w = cols_->mask_begin(nt); w < cols_->mask_end(nt); ++w) {
        if (bits[w] & col_mask[w]) return true;
      }
    }
  }
  return false;
}

bool LeafPairBits::AnyInRow(TreeNodeId x, TreeNodeId nt) const {
  size_t r = static_cast<size_t>(rows_->dense(x));
  if (!(row_any_[r / LeafIndex::kWordBits] >> (r % LeafIndex::kWordBits) &
        1)) {
    return false;
  }
  const uint64_t* bits = row(r);
  const uint64_t* col_mask = cols_->mask(nt);
  for (uint32_t w = cols_->mask_begin(nt); w < cols_->mask_end(nt); ++w) {
    if (bits[w] & col_mask[w]) return true;
  }
  return false;
}

}  // namespace cupid
