// Token interning and token-pair similarity memoization.
//
// The linguistic phase compares O(E1*E2) element-name pairs, but real
// schemas draw their names from a small vocabulary: the same tokens recur
// across hundreds of elements. Interning maps each distinct (text, type)
// token to a dense TokenId once, and TokenPairMemo resolves the
// thesaurus/affix work of TokenSimilarity once per distinct unordered id
// pair instead of once per element pair.
//
// The memoized value is bit-identical to TokenSimilarity (it is computed by
// calling it), so cached matching reproduces the naive lsim exactly.

#ifndef CUPID_PERF_TOKEN_INTERNER_H_
#define CUPID_PERF_TOKEN_INTERNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "linguistic/name_similarity.h"
#include "linguistic/tokenizer.h"
#include "thesaurus/thesaurus.h"

namespace cupid {

/// Dense id of a distinct (text, type) token within a TokenInterner.
using TokenId = int32_t;

/// \brief Assigns dense ids to distinct tokens.
class TokenInterner {
 public:
  /// Returns the id of `token`, allocating one on first sight. Two tokens
  /// receive the same id iff they compare equal (same text and type).
  TokenId Intern(const Token& token);

  /// The token behind an id.
  const Token& token(TokenId id) const {
    return tokens_[static_cast<size_t>(id)];
  }

  /// Number of distinct tokens interned so far.
  size_t size() const { return tokens_.size(); }

 private:
  // Key: token text with the type appended as a trailing tag byte.
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<Token> tokens_;
};

/// \brief Memoized TokenSimilarity over interned token ids.
///
/// Keys are unordered (TokenSimilarity is symmetric), so (a,b) and (b,a)
/// share one entry. For small vocabularies (the normal case — schemas draw
/// from a few hundred distinct tokens) the memo is a dense array indexed by
/// id pair, making a lookup two loads; larger vocabularies fall back to a
/// hash map.
///
/// Construct AFTER interning is complete: the dense table is sized to the
/// interner at construction time, and later ids would be out of range.
class TokenPairMemo {
 public:
  /// All three referents must outlive the memo. Pass use_dense = false for
  /// short-lived per-thread memos: the dense table costs a vocab-squared
  /// zero-fill up front, which several concurrent memos would each repeat.
  TokenPairMemo(const TokenInterner* interner, const Thesaurus* thesaurus,
                const SubstringSimilarityOptions& opts, bool use_dense = true)
      : interner_(interner), thesaurus_(thesaurus), opts_(opts),
        num_tokens_(interner->size()) {
    if (use_dense && num_tokens_ <= kDenseLimit) {
      dense_.assign(num_tokens_ * num_tokens_, 0.0);
      known_.assign(num_tokens_ * num_tokens_, 0);
    }
  }

  /// TokenSimilarity of the two interned tokens; computed on first request
  /// per unordered pair, served from the memo afterwards.
  double Similarity(TokenId a, TokenId b);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  /// Above this vocabulary size the dense table (size^2 doubles) would cost
  /// more memory than the hash map saves time.
  static constexpr size_t kDenseLimit = 1024;

  static uint64_t PairKey(TokenId a, TokenId b) {
    uint32_t lo = static_cast<uint32_t>(a < b ? a : b);
    uint32_t hi = static_cast<uint32_t>(a < b ? b : a);
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }

  double Compute(TokenId a, TokenId b) const;

  const TokenInterner* interner_;
  const Thesaurus* thesaurus_;
  SubstringSimilarityOptions opts_;
  size_t num_tokens_;
  std::vector<double> dense_;   // both (a,b) and (b,a) slots are filled
  std::vector<uint8_t> known_;
  std::unordered_map<uint64_t, double> memo_;  // fallback beyond kDenseLimit
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace cupid

#endif  // CUPID_PERF_TOKEN_INTERNER_H_
