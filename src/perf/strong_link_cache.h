// Strong-link bitset cache for TreeMatch's structural similarity.
//
// StructuralSimilarity asks, for every node pair (ns, nt), whether each leaf
// of one subtree has a strong link (wsim >= th_accept) into the other
// subtree's leaf set — naively an O(|Ls|*|Lt|) scan per pair, re-running the
// same leaf-level link tests for every ancestor pair.
//
// This cache keeps, per source leaf, a bitset over all target leaves marking
// accepted links (and the transposed bitsets per target leaf). A query for
// (leaf, node) then reduces to AND-ing the leaf's bitset against the node's
// precomputed leaf-set mask, word by word with early exit.
//
// Leaf-pair similarities evolve during the sweep (ScaleSubtreeLeaves), so
// bitsets are kept fresh three ways:
//   * epochs for bulk staleness: construction, InvalidateBlock and
//     InvalidateAll bump the epoch of affected leaf bitsets; a query on a
//     bitset whose built-epoch lags its epoch drops its valid words;
//   * per-word lazy fill: a query only materializes the 64-leaf words its
//     node mask actually probes, with early exit on the first linked word —
//     eager full-row rebuilds would recompute hundreds of link strengths
//     where a naive scan early-exits after a handful;
//   * UpdatePair for point mutations: the ScaleSubtreeLeaves loop already
//     visits every rescaled (x,y) pair, so the corresponding bit of each
//     MATERIALIZED word is recomputed in place in O(1).
// Link strengths are evaluated with the exact MixWsim arithmetic of
// tree_match.cc, so cached answers equal the naive scan bit for bit.
//
// The cache is only valid when the leaf sets consist of true leaves (the
// default max_leaf_depth == 0); depth-pruned frontiers consult stored wsim
// snapshots of interior nodes, which this cache does not track.

#ifndef CUPID_PERF_STRONG_LINK_CACHE_H_
#define CUPID_PERF_STRONG_LINK_CACHE_H_

#include <cstdint>
#include <vector>

#include "perf/leaf_bitset_index.h"
#include "structural/similarity_matrix.h"
#include "tree/schema_tree.h"

namespace cupid {

/// \brief Per-leaf accepted-link bitsets with epoch invalidation.
class StrongLinkCache {
 public:
  struct Stats {
    int64_t queries = 0;
    int64_t rebuilds = 0;  ///< 64-leaf bitset words materialized
  };

  /// Both trees must outlive the cache. `th_accept` and `wstruct_leaf`
  /// must match the TreeMatchOptions driving the sweep.
  StrongLinkCache(const SchemaTree& source, const SchemaTree& target,
                  double th_accept, double wstruct_leaf);

  /// Does source leaf `x` have an accepted link into leaves(nt)?
  bool SourceLeafHasLink(const NodeSimilarities& sims, TreeNodeId x,
                         TreeNodeId nt);

  /// Does target leaf `y` have an accepted link into leaves(ns)?
  bool TargetLeafHasLink(const NodeSimilarities& sims, TreeNodeId y,
                         TreeNodeId ns);

  /// Recomputes the bits of leaf pair (x, y) in both directions after its
  /// ssim changed. Bitsets that are stale anyway (epoch-lagged) are left for
  /// their lazy rebuild. This is the per-pair hook of ScaleSubtreeLeaves.
  void UpdatePair(const NodeSimilarities& sims, TreeNodeId x, TreeNodeId y);

  /// Bumps the epoch of every row in leaves(ns) and every column in
  /// leaves(nt), forcing lazy rebuilds on next query. Coarser than
  /// UpdatePair; kept for callers that mutate blocks without visiting the
  /// individual pairs.
  void InvalidateBlock(TreeNodeId ns, TreeNodeId nt);

  /// Invalidates every bitset (used after bulk row propagation).
  void InvalidateAll();

  const Stats& stats() const { return stats_; }

 private:
  /// One direction: a bitset per own-side leaf over the other side's leaves.
  /// The dense leaf numbering and per-node leaf-set masks live in the shared
  /// LeafIndex (perf/leaf_bitset_index.h).
  struct Side {
    explicit Side(const SchemaTree& tree) : index(tree) {}

    LeafIndex index;                   ///< leaves + masks of THIS side
    size_t words = 0;                  ///< bitset width over the OTHER side
    size_t valid_words = 0;            ///< width of one valid mask
    std::vector<uint64_t> bits;        ///< leaf bitsets, `words` per leaf
    /// One bit per bitset word: whether that word is materialized.
    std::vector<uint64_t> valid;
    std::vector<uint64_t> epoch;       ///< invalidation epoch per leaf
    std::vector<uint64_t> built;       ///< epoch the bitset was built at
  };

  /// Shared query kernel: probes `own`'s bitset of leaf `x` against the
  /// mask of `other_node` on `other`, materializing stale words on the way.
  /// `transposed` flips the (source, target) argument order of LeafStrength.
  bool HasLink(const NodeSimilarities& sims, Side* own, Side* other,
               TreeNodeId x, TreeNodeId other_node, bool transposed);

  /// The leaf-pair MixWsim of tree_match.cc.
  double LeafStrength(const NodeSimilarities& sims, TreeNodeId x,
                      TreeNodeId y) const {
    return wstruct_leaf_ * sims.ssim(x, y) +
           (1.0 - wstruct_leaf_) * sims.lsim(x, y);
  }

  const SchemaTree& s_;
  const SchemaTree& t_;
  double th_accept_;
  double wstruct_leaf_;
  Side src_;  // bitsets over target leaves, masks over source leaves
  Side tgt_;  // bitsets over source leaves, masks over target leaves
  uint64_t event_ = 1;
  Stats stats_;
};

}  // namespace cupid

#endif  // CUPID_PERF_STRONG_LINK_CACHE_H_
