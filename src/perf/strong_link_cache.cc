#include "perf/strong_link_cache.h"

#include <algorithm>

namespace cupid {

namespace {
constexpr size_t kWordBits = LeafIndex::kWordBits;
}  // namespace

StrongLinkCache::StrongLinkCache(const SchemaTree& source,
                                 const SchemaTree& target, double th_accept,
                                 double wstruct_leaf)
    : s_(source), t_(target), th_accept_(th_accept),
      wstruct_leaf_(wstruct_leaf), src_(source), tgt_(target) {
  src_.words = tgt_.index.words();  // source-leaf bitsets span target leaves
  tgt_.words = src_.index.words();  // target-leaf bitsets span source leaves
  src_.valid_words = LeafIndex::WordsFor(src_.words);
  tgt_.valid_words = LeafIndex::WordsFor(tgt_.words);
  src_.bits.assign(src_.index.num_leaves() * src_.words, 0);
  tgt_.bits.assign(tgt_.index.num_leaves() * tgt_.words, 0);
  src_.valid.assign(src_.index.num_leaves() * src_.valid_words, 0);
  tgt_.valid.assign(tgt_.index.num_leaves() * tgt_.valid_words, 0);
  // built < epoch: every bitset starts stale; words materialize on demand.
  src_.epoch.assign(src_.index.num_leaves(), event_);
  src_.built.assign(src_.index.num_leaves(), 0);
  tgt_.epoch.assign(tgt_.index.num_leaves(), event_);
  tgt_.built.assign(tgt_.index.num_leaves(), 0);
}

bool StrongLinkCache::HasLink(const NodeSimilarities& sims, Side* own,
                              Side* other, TreeNodeId x,
                              TreeNodeId other_node, bool transposed) {
  ++stats_.queries;
  size_t row = static_cast<size_t>(own->index.dense(x));
  if (own->built[row] < own->epoch[row]) {
    // Stale: drop every materialized word, refill lazily below.
    std::fill(own->valid.begin() +
                  static_cast<int64_t>(row * own->valid_words),
              own->valid.begin() +
                  static_cast<int64_t>((row + 1) * own->valid_words),
              0);
    own->built[row] = own->epoch[row];
  }
  uint64_t* bits = &own->bits[row * own->words];
  uint64_t* valid = &own->valid[row * own->valid_words];
  const uint64_t* mask = other->index.mask(other_node);
  size_t end = other->index.mask_end(other_node);
  const size_t other_leaves = other->index.num_leaves();
  for (size_t w = other->index.mask_begin(other_node); w < end; ++w) {
    if (mask[w] == 0) continue;
    if (!(valid[w / kWordBits] >> (w % kWordBits) & 1)) {
      // Materialize word w: link strengths of 64 consecutive other-side
      // leaves against leaf x.
      uint64_t built_bits = 0;
      size_t j_end = std::min(other_leaves, (w + 1) * kWordBits);
      for (size_t j = w * kWordBits; j < j_end; ++j) {
        TreeNodeId y = other->index.leaf(j);
        double strength =
            transposed ? LeafStrength(sims, y, x) : LeafStrength(sims, x, y);
        if (strength >= th_accept_) {
          built_bits |= uint64_t{1} << (j % kWordBits);
        }
      }
      bits[w] = built_bits;
      valid[w / kWordBits] |= uint64_t{1} << (w % kWordBits);
      ++stats_.rebuilds;
    }
    if (bits[w] & mask[w]) return true;
  }
  return false;
}

bool StrongLinkCache::SourceLeafHasLink(const NodeSimilarities& sims,
                                        TreeNodeId x, TreeNodeId nt) {
  return HasLink(sims, &src_, &tgt_, x, nt, /*transposed=*/false);
}

bool StrongLinkCache::TargetLeafHasLink(const NodeSimilarities& sims,
                                        TreeNodeId y, TreeNodeId ns) {
  return HasLink(sims, &tgt_, &src_, y, ns, /*transposed=*/true);
}

void StrongLinkCache::UpdatePair(const NodeSimilarities& sims, TreeNodeId x,
                                 TreeNodeId y) {
  size_t row = static_cast<size_t>(src_.index.dense(x));
  size_t col = static_cast<size_t>(tgt_.index.dense(y));
  bool linked = LeafStrength(sims, x, y) >= th_accept_;
  // Patch only fresh, materialized words; stale or unbuilt words will be
  // recomputed from ssim/lsim on their next materialization anyway.
  auto patch = [linked](Side* side, size_t own_idx, size_t other_idx) {
    size_t w = other_idx / kWordBits;
    bool fresh = side->built[own_idx] >= side->epoch[own_idx];
    bool materialized =
        side->valid[own_idx * side->valid_words + w / kWordBits] >>
            (w % kWordBits) &
        1;
    if (!fresh || !materialized) return;
    uint64_t& word = side->bits[own_idx * side->words + w];
    uint64_t bit = uint64_t{1} << (other_idx % kWordBits);
    if (linked) {
      word |= bit;
    } else {
      word &= ~bit;
    }
  };
  patch(&src_, row, col);
  patch(&tgt_, col, row);
}

void StrongLinkCache::InvalidateBlock(TreeNodeId ns, TreeNodeId nt) {
  ++event_;
  for (const LeafRef& x : s_.leaves(ns)) {
    src_.epoch[static_cast<size_t>(src_.index.dense(x.leaf))] = event_;
  }
  for (const LeafRef& y : t_.leaves(nt)) {
    tgt_.epoch[static_cast<size_t>(tgt_.index.dense(y.leaf))] = event_;
  }
}

void StrongLinkCache::InvalidateAll() {
  ++event_;
  std::fill(src_.epoch.begin(), src_.epoch.end(), event_);
  std::fill(tgt_.epoch.begin(), tgt_.epoch.end(), event_);
}

}  // namespace cupid
