#include "perf/interned_names.h"

#include <algorithm>

namespace cupid {

InternedName InternName(const NormalizedName& name, TokenInterner* interner) {
  InternedName out;
  for (const Token& t : name.tokens) {
    out.by_type[static_cast<size_t>(t.type)].push_back(interner->Intern(t));
  }
  return out;
}

double InternedTokenSetSimilarity(const std::vector<TokenId>& t1,
                                  const std::vector<TokenId>& t2,
                                  TokenPairMemo* memo) {
  if (t1.empty() && t2.empty()) return 0.0;
  double sum = 0.0;
  for (TokenId a : t1) {
    double best = 0.0;
    for (TokenId b : t2) {
      best = std::max(best, memo->Similarity(a, b));
    }
    sum += best;
  }
  for (TokenId b : t2) {
    double best = 0.0;
    for (TokenId a : t1) {
      best = std::max(best, memo->Similarity(a, b));
    }
    sum += best;
  }
  return sum / static_cast<double>(t1.size() + t2.size());
}

double InternedNameSimilarity(const InternedName& n1, const InternedName& n2,
                              const TokenTypeWeights& weights,
                              TokenPairMemo* memo) {
  double numer = 0.0;
  double denom = 0.0;
  for (int i = 0; i < 5; ++i) {
    const std::vector<TokenId>& a = n1.by_type[static_cast<size_t>(i)];
    const std::vector<TokenId>& b = n2.by_type[static_cast<size_t>(i)];
    size_t count = a.size() + b.size();
    if (count == 0) continue;
    double w = weights.of(static_cast<TokenType>(i));
    numer += w * InternedTokenSetSimilarity(a, b, memo) *
             static_cast<double>(count);
    denom += w * static_cast<double>(count);
  }
  return denom == 0.0 ? 0.0 : numer / denom;
}

}  // namespace cupid
