// Dense leaf numbering with per-node leaf-set bitmasks, and a leaf-pair bit
// matrix built on top of it.
//
// Extracted from strong_link_cache.* so both consumers share one
// implementation:
//   * StrongLinkCache keeps per-leaf accepted-link bitsets and probes them
//     against node masks;
//   * the incremental TreeMatch warm start (structural/tree_match.h) keeps
//     per-leaf *dirtiness* bitsets and asks "does the block
//     leaves(ns) x leaves(nt) contain any dirty pair?" for every node pair.
//
// Leaves of a subtree are id-clustered (trees are built in DFS order), so
// every node mask occupies a short [begin, end) word span; block queries
// scan a few words instead of the full bitset width.

#ifndef CUPID_PERF_LEAF_BITSET_INDEX_H_
#define CUPID_PERF_LEAF_BITSET_INDEX_H_

#include <cstdint>
#include <vector>

#include "tree/schema_tree.h"

namespace cupid {

/// \brief Dense numbering of a tree's leaves plus, per tree node, the bitset
/// mask of its leaf set in that dense space.
class LeafIndex {
 public:
  static constexpr size_t kWordBits = 64;
  static constexpr size_t WordsFor(size_t bits) {
    return (bits + kWordBits - 1) / kWordBits;
  }

  /// The tree must outlive the index (node masks are derived from its
  /// leaves() sets).
  explicit LeafIndex(const SchemaTree& tree);

  size_t num_leaves() const { return leaf_ids_.size(); }
  /// Words per node mask (WordsFor(num_leaves)).
  size_t words() const { return words_; }

  /// Dense index of leaf `id`; -1 for non-leaf nodes.
  int32_t dense(TreeNodeId id) const {
    return dense_[static_cast<size_t>(id)];
  }
  /// Leaf node behind a dense index.
  TreeNodeId leaf(size_t j) const { return leaf_ids_[j]; }

  /// Bitset of node `id`'s leaf set (words() words).
  const uint64_t* mask(TreeNodeId id) const {
    return &node_masks_[static_cast<size_t>(id) * words_];
  }
  /// [begin, end) word span actually occupied by `id`'s mask.
  uint32_t mask_begin(TreeNodeId id) const {
    return mask_begin_[static_cast<size_t>(id)];
  }
  uint32_t mask_end(TreeNodeId id) const {
    return mask_end_[static_cast<size_t>(id)];
  }

  /// [begin, end) of node `id`'s leaf set in dense space. Subtree node ids
  /// are contiguous in DFS trees, so the range is normally gapless and
  /// dense-matrix consumers (the gather engine's block scaling and scans)
  /// can iterate it directly; range_contiguous distinguishes the DAG-shaped
  /// exceptions (join views), where the range is a bounding interval only.
  int32_t range_begin(TreeNodeId id) const {
    return range_begin_[static_cast<size_t>(id)];
  }
  int32_t range_end(TreeNodeId id) const {
    return range_end_[static_cast<size_t>(id)];
  }
  bool range_contiguous(TreeNodeId id) const {
    return range_contiguous_[static_cast<size_t>(id)] != 0;
  }

 private:
  std::vector<int32_t> dense_;        // TreeNodeId -> dense leaf index
  std::vector<TreeNodeId> leaf_ids_;  // dense index -> TreeNodeId
  size_t words_ = 0;
  std::vector<uint64_t> node_masks_;  // per node, `words_` words
  std::vector<uint32_t> mask_begin_;
  std::vector<uint32_t> mask_end_;
  std::vector<int32_t> range_begin_;  // dense leaf range per node
  std::vector<int32_t> range_end_;
  std::vector<uint8_t> range_contiguous_;
};

/// \brief Bit matrix over (row-side leaf, column-side leaf) pairs with
/// block-level queries against node leaf sets. Used as the dirty-pair set of
/// the incremental TreeMatch warm start.
class LeafPairBits {
 public:
  /// Both indexes must outlive this object.
  LeafPairBits(const LeafIndex* rows, const LeafIndex* cols)
      : rows_(rows),
        cols_(cols),
        bits_(rows->num_leaves() * cols->words(), 0),
        row_any_(LeafIndex::WordsFor(rows->num_leaves()), 0) {}

  /// Marks pair (row leaf x, column leaf y).
  void Set(TreeNodeId x, TreeNodeId y);

  /// Marks every pair in row leaf `x`'s row.
  void SetRowAll(TreeNodeId x);

  /// Marks every pair in column leaf `y`'s column.
  void SetColAll(TreeNodeId y);

  /// Marks the whole block leaves(ns) x leaves(nt), given as node masks of
  /// the respective indexes.
  void SetBlock(TreeNodeId ns, TreeNodeId nt);

  /// True iff some marked pair lies in leaves(ns) x leaves(nt). Two-level:
  /// a summary bitset of non-empty rows rejects clean regions in a few word
  /// ANDs; only flagged rows are probed against the column mask.
  bool AnyInBlock(TreeNodeId ns, TreeNodeId nt) const;

  /// True iff any pair of row leaf `x`'s row within leaves(nt) is marked.
  bool AnyInRow(TreeNodeId x, TreeNodeId nt) const;

  /// Calls `fn(row leaf id)` for every row leaf in leaves(ns) whose row has
  /// a marked pair within leaves(nt). Flagged-row enumeration: cost is a
  /// few word ANDs plus work proportional to the marked rows only.
  template <typename Fn>
  void ForEachDirtyRowInBlock(TreeNodeId ns, TreeNodeId nt, Fn&& fn) const {
    const uint64_t* row_mask = rows_->mask(ns);
    for (uint32_t rw = rows_->mask_begin(ns); rw < rows_->mask_end(ns);
         ++rw) {
      uint64_t flagged = row_mask[rw] & row_any_[rw];
      while (flagged != 0) {
        size_t r = static_cast<size_t>(rw) * LeafIndex::kWordBits +
                   static_cast<size_t>(__builtin_ctzll(flagged));
        flagged &= flagged - 1;
        const uint64_t* bits = row(r);
        const uint64_t* col_mask = cols_->mask(nt);
        for (uint32_t w = cols_->mask_begin(nt); w < cols_->mask_end(nt);
             ++w) {
          if (bits[w] & col_mask[w]) {
            fn(rows_->leaf(r));
            break;
          }
        }
      }
    }
  }

  /// Calls `fn(row leaf id, col leaf id)` for every marked pair. Skips
  /// clean rows through the summary bitset, then word-scans only marked
  /// rows: cost is proportional to the marked pairs, not the matrix.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t rw = 0; rw < row_any_.size(); ++rw) {
      uint64_t flagged = row_any_[rw];
      while (flagged != 0) {
        size_t r = rw * LeafIndex::kWordBits +
                   static_cast<size_t>(__builtin_ctzll(flagged));
        flagged &= flagged - 1;
        const uint64_t* bits = row(r);
        for (size_t w = 0; w < cols_->words(); ++w) {
          uint64_t word = bits[w];
          while (word != 0) {
            size_t c = w * LeafIndex::kWordBits +
                       static_cast<size_t>(__builtin_ctzll(word));
            word &= word - 1;
            fn(rows_->leaf(r), cols_->leaf(c));
          }
        }
      }
    }
  }

  int64_t set_count() const { return set_count_; }

 private:
  const uint64_t* row(size_t dense_row) const {
    return &bits_[dense_row * cols_->words()];
  }
  uint64_t* row(size_t dense_row) { return &bits_[dense_row * cols_->words()]; }
  void FlagRow(size_t dense_row) {
    row_any_[dense_row / LeafIndex::kWordBits] |=
        uint64_t{1} << (dense_row % LeafIndex::kWordBits);
  }

  const LeafIndex* rows_;
  const LeafIndex* cols_;
  std::vector<uint64_t> bits_;     // per row leaf, cols_->words() words
  std::vector<uint64_t> row_any_;  // summary: rows with any bit set
  int64_t set_count_ = 0;          // marks applied (diagnostics)
};

}  // namespace cupid

#endif  // CUPID_PERF_LEAF_BITSET_INDEX_H_
