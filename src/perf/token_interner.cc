#include "perf/token_interner.h"

namespace cupid {

TokenId TokenInterner::Intern(const Token& token) {
  std::string key = token.text;
  key.push_back(static_cast<char>(token.type));
  auto [it, inserted] =
      ids_.emplace(std::move(key), static_cast<TokenId>(tokens_.size()));
  if (inserted) tokens_.push_back(token);
  return it->second;
}

double TokenPairMemo::Compute(TokenId a, TokenId b) const {
  return TokenSimilarity(interner_->token(a), interner_->token(b),
                         *thesaurus_, opts_);
}

double TokenPairMemo::Similarity(TokenId a, TokenId b) {
  if (!known_.empty()) {
    size_t idx = static_cast<size_t>(a) * num_tokens_ + static_cast<size_t>(b);
    if (known_[idx]) {
      ++hits_;
      return dense_[idx];
    }
    ++misses_;
    double sim = Compute(a, b);
    size_t mirror =
        static_cast<size_t>(b) * num_tokens_ + static_cast<size_t>(a);
    dense_[idx] = sim;
    known_[idx] = 1;
    dense_[mirror] = sim;
    known_[mirror] = 1;
    return sim;
  }
  uint64_t key = PairKey(a, b);
  auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  double sim = Compute(a, b);
  memo_.emplace(key, sim);
  return sim;
}

}  // namespace cupid
