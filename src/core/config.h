// CupidConfig — every tunable of the algorithm in one place, defaulted to
// the "typical values" of Table 1 of the paper.

#ifndef CUPID_CORE_CONFIG_H_
#define CUPID_CORE_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "linguistic/linguistic_matcher.h"
#include "mapping/mapping_generator.h"
#include "structural/tree_match.h"
#include "tree/tree_builder.h"
#include "util/status.h"

namespace cupid {

/// A user-supplied hint that two elements correspond (Section 8.4 "Initial
/// mappings"). Paths are dotted containment paths in the respective schemas.
struct InitialMappingEntry {
  std::string source_path;
  std::string target_path;
};

/// A set of hints; the result map of a previous run, possibly corrected by
/// the user, can be fed back through this.
using InitialMapping = std::vector<InitialMappingEntry>;

/// Full configuration of a Cupid match run.
struct CupidConfig {
  LinguisticOptions linguistic;
  TreeBuildOptions tree_build;
  TreeMatchOptions tree_match;
  MappingGeneratorOptions mapping;
  TypeCompatibilityTable type_compatibility =
      TypeCompatibilityTable::Default();
  /// lsim assigned to pairs named in an initial mapping ("initialized to a
  /// predefined maximum value", Section 8.4).
  double initial_mapping_boost = 1.0;

  /// \brief Sets the worker-thread count of every parallelized phase
  /// (linguistic lsim fill, structural row inits). 0 (the default) uses all
  /// hardware threads; 1 forces fully sequential execution. Results are
  /// identical at any setting.
  void SetNumThreads(int n) {
    linguistic.num_threads = n;
    tree_match.num_threads = n;
  }

  /// \brief Toggles the src/perf caching layer (token interning, name
  /// deduplication, strong-link bitsets) in every phase at once. Results
  /// are identical either way. Note the default config is NOT
  /// SetPerfCacheEnabled(true): the linguistic cache defaults on, the
  /// strong-link cache off (see TreeMatchOptions::use_strong_link_cache).
  void SetPerfCacheEnabled(bool enabled) {
    linguistic.use_perf_cache = enabled;
    tree_match.use_strong_link_cache = enabled;
  }

  /// \brief Range-checks every parameter; keeps Table 1's ordering
  /// constraints (th_low <= th_accept <= th_high).
  Status Validate() const;
};

/// \brief Renders the Table 1 parameters of `config` as an aligned text
/// table (used by bench_table1_parameters and diagnostics).
std::string DescribeParameters(const CupidConfig& config);

/// \brief Stable 64-bit digest of every result-affecting tunable (all
/// thresholds, weights, flags, the type-compatibility table, cardinality
/// and scope). Two configs with equal fingerprints produce identical match
/// results on identical inputs, so the fingerprint is a safe result-cache
/// key component (service/match_service.h). Thread counts and perf-cache
/// toggles ARE included even though results are invariant to them — a
/// conservative over-split that can only cost cache hits, never serve a
/// wrong result.
uint64_t ConfigFingerprint(const CupidConfig& config);

}  // namespace cupid

#endif  // CUPID_CORE_CONFIG_H_
