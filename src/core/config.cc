#include "core/config.h"

#include "util/strings.h"

namespace cupid {

Status CupidConfig::Validate() const {
  if (linguistic.thns < 0.0 || linguistic.thns > 1.0) {
    return Status::InvalidArgument("thns must be within [0,1]");
  }
  if (linguistic.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  CUPID_RETURN_NOT_OK(ValidateTreeMatchOptions(tree_match));
  if (mapping.th_accept < 0.0 || mapping.th_accept > 1.0) {
    return Status::InvalidArgument("mapping th_accept must be within [0,1]");
  }
  if (initial_mapping_boost < 0.0 || initial_mapping_boost > 1.0) {
    return Status::InvalidArgument(
        "initial_mapping_boost must be within [0,1]");
  }
  return Status::OK();
}

std::string DescribeParameters(const CupidConfig& c) {
  std::string out;
  out += "parameter        value   description\n";
  out += StringFormat("thns             %-7.2f category compatibility threshold\n",
                      c.linguistic.thns);
  out += StringFormat("thhigh           %-7.2f wsim above: increase leaf ssim\n",
                      c.tree_match.th_high);
  out += StringFormat("thlow            %-7.2f wsim below: decrease leaf ssim\n",
                      c.tree_match.th_low);
  out += StringFormat("cinc             %-7.2f leaf ssim increase factor\n",
                      c.tree_match.c_inc);
  out += StringFormat("cdec             %-7.2f leaf ssim decrease factor\n",
                      c.tree_match.c_dec);
  out += StringFormat("thaccept         %-7.2f strong link / mapping threshold\n",
                      c.tree_match.th_accept);
  out += StringFormat("wstruct(leaf)    %-7.2f structural weight, leaf pairs\n",
                      c.tree_match.wstruct_leaf);
  out += StringFormat("wstruct(nonleaf) %-7.2f structural weight, non-leaf pairs\n",
                      c.tree_match.wstruct_nonleaf);
  return out;
}

namespace {

/// FNV-1a accumulator over the raw bytes of config fields.
class Digest {
 public:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001b3ULL;
    }
  }
  void F64(double v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { Bytes(&v, sizeof(v)); }
  void B(bool v) { I64(v ? 1 : 0); }
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace

uint64_t ConfigFingerprint(const CupidConfig& c) {
  Digest d;
  // Linguistic phase.
  d.F64(c.linguistic.thns);
  for (double w : c.linguistic.token_weights.w) d.F64(w);
  d.F64(c.linguistic.substring.scale);
  d.I64(static_cast<int64_t>(c.linguistic.substring.min_affix));
  d.B(c.linguistic.use_categories);
  d.F64(c.linguistic.annotation_weight);
  d.B(c.linguistic.use_perf_cache);
  d.I64(c.linguistic.num_threads);
  // Tree building.
  d.B(c.tree_build.expand_join_views);
  d.B(c.tree_build.expand_views);
  // Structural phase.
  d.F64(c.tree_match.th_high);
  d.F64(c.tree_match.th_low);
  d.F64(c.tree_match.c_inc);
  d.F64(c.tree_match.c_dec);
  d.F64(c.tree_match.th_accept);
  d.F64(c.tree_match.wstruct_leaf);
  d.F64(c.tree_match.wstruct_nonleaf);
  d.F64(c.tree_match.leaf_count_ratio);
  d.B(c.tree_match.optional_discount);
  d.B(c.tree_match.leaf_pair_feedback);
  d.B(c.tree_match.lazy_expansion);
  d.I64(c.tree_match.max_leaf_depth);
  d.F64(c.tree_match.skip_leaves_threshold);
  d.B(c.tree_match.use_strong_link_cache);
  d.I64(c.tree_match.num_threads);
  // Mapping generation.
  d.F64(c.mapping.th_accept);
  d.I64(static_cast<int64_t>(c.mapping.cardinality));
  d.I64(static_cast<int64_t>(c.mapping.scope));
  // Type compatibility: the full symmetric table.
  constexpr int kNumTypes = static_cast<int>(DataType::kAny) + 1;
  for (int a = 0; a < kNumTypes; ++a) {
    for (int b = a; b < kNumTypes; ++b) {
      d.F64(c.type_compatibility.Get(static_cast<DataType>(a),
                                     static_cast<DataType>(b)));
    }
  }
  d.F64(c.initial_mapping_boost);
  return d.value();
}

}  // namespace cupid
