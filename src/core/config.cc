#include "core/config.h"

#include "util/strings.h"

namespace cupid {

Status CupidConfig::Validate() const {
  if (linguistic.thns < 0.0 || linguistic.thns > 1.0) {
    return Status::InvalidArgument("thns must be within [0,1]");
  }
  if (linguistic.num_threads < 0) {
    return Status::InvalidArgument("num_threads must be >= 0");
  }
  CUPID_RETURN_NOT_OK(ValidateTreeMatchOptions(tree_match));
  if (mapping.th_accept < 0.0 || mapping.th_accept > 1.0) {
    return Status::InvalidArgument("mapping th_accept must be within [0,1]");
  }
  if (initial_mapping_boost < 0.0 || initial_mapping_boost > 1.0) {
    return Status::InvalidArgument(
        "initial_mapping_boost must be within [0,1]");
  }
  return Status::OK();
}

std::string DescribeParameters(const CupidConfig& c) {
  std::string out;
  out += "parameter        value   description\n";
  out += StringFormat("thns             %-7.2f category compatibility threshold\n",
                      c.linguistic.thns);
  out += StringFormat("thhigh           %-7.2f wsim above: increase leaf ssim\n",
                      c.tree_match.th_high);
  out += StringFormat("thlow            %-7.2f wsim below: decrease leaf ssim\n",
                      c.tree_match.th_low);
  out += StringFormat("cinc             %-7.2f leaf ssim increase factor\n",
                      c.tree_match.c_inc);
  out += StringFormat("cdec             %-7.2f leaf ssim decrease factor\n",
                      c.tree_match.c_dec);
  out += StringFormat("thaccept         %-7.2f strong link / mapping threshold\n",
                      c.tree_match.th_accept);
  out += StringFormat("wstruct(leaf)    %-7.2f structural weight, leaf pairs\n",
                      c.tree_match.wstruct_leaf);
  out += StringFormat("wstruct(nonleaf) %-7.2f structural weight, non-leaf pairs\n",
                      c.tree_match.wstruct_nonleaf);
  return out;
}

}  // namespace cupid
