// CupidMatcher — the public entry point of the library.
//
// Runs the three phases of the paper end to end:
//   1. linguistic matching (Section 5)     -> element lsim table
//   2. structural TreeMatch (Sections 6,8) -> node ssim/wsim
//   3. mapping generation (Section 7)      -> leaf and non-leaf mappings
//
// Quickstart:
//
//     Thesaurus thesaurus = DefaultThesaurus();
//     CupidMatcher matcher(&thesaurus);
//     CUPID_ASSIGN_OR_RETURN(MatchResult r, matcher.Match(po, purchase_order));
//     std::cout << RenderMappingText(r.leaf_mapping);

#ifndef CUPID_CORE_CUPID_MATCHER_H_
#define CUPID_CORE_CUPID_MATCHER_H_

#include "core/config.h"
#include "linguistic/linguistic_matcher.h"
#include "mapping/mapping.h"
#include "structural/tree_match.h"
#include "thesaurus/thesaurus.h"
#include "tree/schema_tree.h"

namespace cupid {

/// Everything a match run produces. The contained trees reference the input
/// schemas; keep the schemas alive while using the result.
struct MatchResult {
  SchemaTree source_tree;
  SchemaTree target_tree;
  /// Phase-1 output (normalized names, categories, element lsim).
  LinguisticResult linguistic;
  /// Phase-2 similarities after the Section 7 recompute pass.
  TreeMatchResult tree_match;
  /// Leaf-level mapping, generated with the configured cardinality.
  Mapping leaf_mapping;
  /// Non-leaf mapping (naive 1:n over recomputed non-leaf similarities).
  Mapping nonleaf_mapping;

  /// \brief wsim of the node pair addressed by dotted context paths;
  /// 0 when either path does not resolve.
  double WsimByPath(const std::string& source_path,
                    const std::string& target_path) const;

  /// \brief Best-wsim target path for a source path (diagnostics).
  std::string BestTargetFor(const std::string& source_path) const;
};

/// \brief Phase-3 mapping generation shared by CupidMatcher::Match and
/// MatchSession::Rematch: the leaf mapping with the configured cardinality
/// plus the naive 1:n non-leaf mapping. `tmres` must already have been
/// through the Section 7 recompute pass.
Status GenerateStandardMappings(const SchemaTree& source,
                                const SchemaTree& target,
                                const TreeMatchResult& tmres,
                                const CupidConfig& config, Mapping* leaf,
                                Mapping* nonleaf);

/// \brief The Cupid generic schema matcher.
class CupidMatcher {
 public:
  /// `thesaurus` must outlive the matcher.
  explicit CupidMatcher(const Thesaurus* thesaurus, CupidConfig config = {})
      : thesaurus_(thesaurus), config_(std::move(config)) {}

  /// \brief Matches two schemas. The schemas must outlive the MatchResult.
  Result<MatchResult> Match(const Schema& source, const Schema& target) const;

  /// \brief Matches with user hints: the lsim of each hinted element pair is
  /// raised to config.initial_mapping_boost before structural matching
  /// (Section 8.4 "Initial mappings"). Unresolvable paths are an error.
  Result<MatchResult> Match(const Schema& source, const Schema& target,
                            const InitialMapping& hints) const;

  const CupidConfig& config() const { return config_; }

 private:
  const Thesaurus* thesaurus_;
  CupidConfig config_;
};

}  // namespace cupid

#endif  // CUPID_CORE_CUPID_MATCHER_H_
