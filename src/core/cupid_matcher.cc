#include "core/cupid_matcher.h"

#include <algorithm>
#include <tuple>

#include "mapping/mapping_generator.h"
#include "tree/tree_builder.h"

namespace cupid {

double MatchResult::WsimByPath(const std::string& source_path,
                               const std::string& target_path) const {
  TreeNodeId s = source_tree.FindNodeByPath(source_path);
  TreeNodeId t = target_tree.FindNodeByPath(target_path);
  if (s == kNoTreeNode || t == kNoTreeNode) return 0.0;
  return tree_match.sims.wsim(s, t);
}

std::string MatchResult::BestTargetFor(const std::string& source_path) const {
  TreeNodeId s = source_tree.FindNodeByPath(source_path);
  if (s == kNoTreeNode) return "";
  // Same ranking as mapping generation: wsim, then parent-pair wsim
  // (context), then lsim — ties at the similarity cap are broken by context.
  auto key = [&](TreeNodeId t) {
    TreeNodeId ps = source_tree.node(s).parent;
    TreeNodeId pt = target_tree.node(t).parent;
    double parent_wsim = (ps == kNoTreeNode || pt == kNoTreeNode)
                             ? 0.0
                             : tree_match.sims.wsim(ps, pt);
    return std::tuple<double, double, double>(tree_match.sims.wsim(s, t),
                                              parent_wsim,
                                              tree_match.sims.lsim(s, t));
  };
  TreeNodeId best = kNoTreeNode;
  for (TreeNodeId t = 0; t < target_tree.num_nodes(); ++t) {
    if (best == kNoTreeNode || key(t) > key(best)) best = t;
  }
  return best == kNoTreeNode ? "" : target_tree.PathName(best);
}

Result<MatchResult> CupidMatcher::Match(const Schema& source,
                                        const Schema& target) const {
  return Match(source, target, InitialMapping{});
}

Result<MatchResult> CupidMatcher::Match(const Schema& source,
                                        const Schema& target,
                                        const InitialMapping& hints) const {
  CUPID_RETURN_NOT_OK(config_.Validate());

  // Phase 1: linguistic matching on the schema graphs ("the linguistic
  // matching process is unaffected" by graph extensions, Section 8.2).
  LinguisticMatcher linguistic(thesaurus_, config_.linguistic);
  CUPID_ASSIGN_OR_RETURN(LinguisticResult lres,
                         linguistic.Match(source, target));

  // Initial-mapping hints raise lsim to the configured maximum.
  for (const InitialMappingEntry& hint : hints) {
    ElementId es = source.FindByPath(hint.source_path);
    ElementId et = target.FindByPath(hint.target_path);
    if (es == kNoElement) {
      return Status::NotFound("initial mapping path not in source schema: " +
                              hint.source_path);
    }
    if (et == kNoElement) {
      return Status::NotFound("initial mapping path not in target schema: " +
                              hint.target_path);
    }
    lres.lsim(es, et) = std::max<float>(
        lres.lsim(es, et), static_cast<float>(config_.initial_mapping_boost));
  }

  // Phase 2: expand to schema trees and run TreeMatch.
  CUPID_ASSIGN_OR_RETURN(SchemaTree source_tree,
                         BuildSchemaTree(source, config_.tree_build));
  CUPID_ASSIGN_OR_RETURN(SchemaTree target_tree,
                         BuildSchemaTree(target, config_.tree_build));
  CUPID_ASSIGN_OR_RETURN(
      TreeMatchResult tmres,
      TreeMatch(source_tree, target_tree, lres.lsim,
                config_.type_compatibility, config_.tree_match));

  // Phase 3: the Section 7 second pass, then mapping generation.
  CUPID_RETURN_NOT_OK(RecomputeNonLeafSimilarities(
      source_tree, target_tree, config_.tree_match, &tmres));

  Mapping leaf_mapping, nonleaf_mapping;
  CUPID_RETURN_NOT_OK(GenerateStandardMappings(source_tree, target_tree,
                                               tmres, config_, &leaf_mapping,
                                               &nonleaf_mapping));

  MatchResult result{std::move(source_tree), std::move(target_tree),
                     std::move(lres),        std::move(tmres),
                     std::move(leaf_mapping), std::move(nonleaf_mapping)};
  return result;
}

Status GenerateStandardMappings(const SchemaTree& source,
                                const SchemaTree& target,
                                const TreeMatchResult& tmres,
                                const CupidConfig& config, Mapping* leaf,
                                Mapping* nonleaf) {
  MappingGeneratorOptions leaf_opts = config.mapping;
  leaf_opts.scope = MappingScope::kLeaves;
  CUPID_ASSIGN_OR_RETURN(*leaf,
                         GenerateMapping(source, target, tmres, leaf_opts));

  MappingGeneratorOptions nonleaf_opts = config.mapping;
  nonleaf_opts.scope = MappingScope::kNonLeaves;
  nonleaf_opts.cardinality = MappingCardinality::kOneToMany;
  CUPID_ASSIGN_OR_RETURN(
      *nonleaf, GenerateMapping(source, target, tmres, nonleaf_opts));
  return Status::OK();
}

}  // namespace cupid
