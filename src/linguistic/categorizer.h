// Categorization (Section 5.2 of the paper).
//
// Schema elements are clustered into categories identified by keyword sets,
// derived from three sources:
//   * concept tags       — one category per unique concept in the schema;
//   * broad data types   — one category per TypeClass ("Number", ...);
//   * containers         — the elements contained by element X form a
//                          category keyed by X's name tokens.
//
// Categories prune linguistic comparison: only elements of *compatible*
// categories (keyword-set name similarity above thns) get compared, and the
// best compatible-category similarity scales lsim.
//
// Locality contract (relied on by the incremental lsim gather,
// linguistic/linguistic_matcher.h): every category an element belongs to,
// and that category's keyword set, is a pure function of the element's own
// local features — its raw name (concepts and name tokens derive from it),
// its data type, and its containment parent's raw name and kind. Keywords
// are a pure function of the category label, never of which element was
// seen first. Therefore lsim(e1, e2) depends only on the local features of
// e1 and e2, and an edit can only change lsim cells in the rows/columns of
// elements whose local features changed.

#ifndef CUPID_LINGUISTIC_CATEGORIZER_H_
#define CUPID_LINGUISTIC_CATEGORIZER_H_

#include <string>
#include <vector>

#include "linguistic/name_similarity.h"
#include "linguistic/normalizer.h"
#include "schema/schema.h"

namespace cupid {

/// A group of schema elements identified by a set of keyword tokens.
struct Category {
  /// Human-readable label ("concept:money", "type:Number", "container:Address").
  std::string label;
  /// Keyword tokens identifying the category.
  std::vector<Token> keywords;
  /// Member elements.
  std::vector<ElementId> members;
};

/// The category decomposition of one schema; element -> categories is
/// many-to-many.
struct Categorization {
  std::vector<Category> categories;
  /// For each element id, the indices into `categories` it belongs to.
  std::vector<std::vector<int>> element_categories;
};

/// \brief Builds the categories of `schema` per Section 5.2.
///
/// `names` must hold the normalized name of every element, indexed by
/// ElementId (as produced by NameNormalizer). Elements flagged
/// not-instantiated, and kKey/kRefInt elements, are not categorized (they
/// are excluded from linguistic matching, Section 8.2).
Categorization CategorizeSchema(const Schema& schema,
                                const std::vector<NormalizedName>& names,
                                const NameNormalizer& normalizer);

/// \brief Category compatibility: ns(keywords1, keywords2) computed with the
/// Section 5.2 token-set formula. Two categories are compatible when this
/// exceeds thns.
double CategorySimilarity(const Category& c1, const Category& c2,
                          const Thesaurus& thesaurus,
                          const SubstringSimilarityOptions& opts = {});

}  // namespace cupid

#endif  // CUPID_LINGUISTIC_CATEGORIZER_H_
