// Name tokenization (Section 5.1 of the paper).
//
// Schema element names are parsed into tokens on punctuation, case
// transitions, digits and special symbols: "POLines" -> {po, lines},
// "unit_price#2" -> {unit, price, #, 2}. Each token carries one of the five
// token types of the paper: number, special symbol, common word, concept_name, or
// content.

#ifndef CUPID_LINGUISTIC_TOKENIZER_H_
#define CUPID_LINGUISTIC_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace cupid {

/// The five token types of Section 5.1 ("Each name token is also marked as
/// being one of five token types").
enum class TokenType : uint8_t {
  kNumber = 0,   ///< all digits
  kSpecial,      ///< special symbol, e.g. '#'
  kCommon,       ///< preposition/conjunction/article (ignored in comparison)
  kConcept,      ///< token tagged with a known concept
  kContent,      ///< everything else — the informative words
};

/// \brief Canonical name of a TokenType.
const char* TokenTypeName(TokenType t);

/// One token of a normalized element name. `text` is lower-case.
struct Token {
  std::string text;
  TokenType type = TokenType::kContent;

  bool operator==(const Token& other) const {
    return text == other.text && type == other.type;
  }
};

/// \brief Splits `name` into raw tokens.
///
/// Boundaries: any non-alphanumeric character (which itself becomes a
/// kSpecial token unless it is '_', '-', '.', ' ', or '/' — pure
/// separators), lower→upper case transitions ("POLines" -> "PO", "Lines"),
/// letter↔digit transitions. Digit runs become kNumber tokens. All text is
/// lower-cased. Type assignment beyond kNumber/kSpecial (common/concept) is
/// the normalizer's job; the tokenizer marks everything else kContent.
std::vector<Token> TokenizeName(std::string_view name);

/// \brief Renders tokens as "[a b c]" for diagnostics.
std::string TokensToString(const std::vector<Token>& tokens);

}  // namespace cupid

#endif  // CUPID_LINGUISTIC_TOKENIZER_H_
